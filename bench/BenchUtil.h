//===- BenchUtil.h - Shared benchmark harness helpers ------------*- C++ -*-===//

#ifndef MESH_BENCH_BENCHUTIL_H
#define MESH_BENCH_BENCHUTIL_H

#include "core/Options.h"
#include "support/Env.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace mesh {

inline double toMiB(double Bytes) { return Bytes / (1024.0 * 1024.0); }

/// Version stamped as "schema" into every JSON result line. The CI
/// comparator (tools/bench_compare.py) and the committed BENCH_*.json
/// trajectory refuse to interpret lines whose version they do not
/// know, so bump this whenever a key changes meaning or type — adding
/// new keys is backward compatible and needs no bump.
constexpr int kBenchJsonSchemaVersion = 1;

/// True after benchInit saw --smoke: the ctest registrations run every
/// benchmark in this mode so CI catches bench rot without paying for
/// full measurement runs. Numbers printed under --smoke are not
/// paper-comparable.
inline bool &benchSmokeMode() {
  static bool Smoke = false;
  return Smoke;
}

/// True after benchInit saw --json: each measured configuration also
/// emits one machine-readable result line (see benchReportJson), so CI
/// can append the perf trajectory to BENCH_*.json files.
inline bool &benchJsonMode() {
  static bool Json = false;
  return Json;
}

/// Destination for a copy of every JSON line when --json-out=PATH was
/// given (stdout always gets the lines too). Owned here; intentionally
/// never fclosed — benches _exit through main's return and the stream
/// is flushed per line.
inline FILE *&benchJsonOutFile() {
  static FILE *Out = nullptr;
  return Out;
}

/// Parses benchmark argv: --smoke, --json, --json-out=PATH (implies
/// --json). Call first in main. \p ExtraArg lets a bench accept its
/// own flags (return true when consumed). Unrecognized arguments are
/// an error: a typoed --smoke silently running the full measurement
/// workload would defeat the ctest smoke registrations.
inline void benchInit(int argc, char **argv,
                      bool (*ExtraArg)(const char *) = nullptr) {
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      benchSmokeMode() = true;
    } else if (std::strcmp(argv[I], "--json") == 0) {
      benchJsonMode() = true;
    } else if (std::strncmp(argv[I], "--json-out=", 11) == 0) {
      const char *Path = argv[I] + 11;
      FILE *Out = fopen(Path, "w");
      if (Out == nullptr) {
        fprintf(stderr, "%s: cannot open --json-out file '%s'\n", argv[0],
                Path);
        exit(2);
      }
      benchJsonOutFile() = Out;
      benchJsonMode() = true;
    } else if (ExtraArg != nullptr && ExtraArg(argv[I])) {
      // Consumed by the bench's own flag handler.
    } else {
      fprintf(stderr,
              "%s: unknown argument '%s' (supported: --smoke, --json, "
              "--json-out=PATH)\n",
              argv[0], argv[I]);
      exit(2);
    }
  }
}

/// Writes one finished JSON line to stdout and, when --json-out is
/// active, to the output file. Lines are flushed immediately so a
/// crashed bench still leaves every completed measurement on disk.
inline void benchEmitJsonLine(const std::string &Line) {
  fprintf(stdout, "%s\n", Line.c_str());
  fflush(stdout);
  if (FILE *Out = benchJsonOutFile()) {
    fprintf(Out, "%s\n", Line.c_str());
    fflush(Out);
  }
}

/// Incremental builder for one schema-versioned JSON result line.
/// Handles only what the benches need — fixed ASCII keys, numbers,
/// short strings without escapes, and arrays (optionally nested one
/// level for [op, seconds, value] series rows). benchReportJson is the
/// convenience wrapper for flat all-numeric lines; the soak harness
/// drives this directly for its series-bearing documents.
class BenchJsonWriter {
public:
  BenchJsonWriter(const char *Bench, const char *Config) {
    Line.reserve(512);
    Line += "{\"schema\":";
    appendNumber(kBenchJsonSchemaVersion);
    Line += ",\"bench\":\"";
    Line += Bench;
    Line += '"';
    if (Config != nullptr && Config[0] != '\0') {
      Line += ",\"config\":\"";
      Line += Config;
      Line += '"';
    }
    if (benchSmokeMode())
      Line += ",\"smoke\":true";
  }

  void number(const char *Key, double Value) {
    key(Key);
    appendNumber(Value);
  }

  void string(const char *Key, const char *Value) {
    key(Key);
    Line += '"';
    Line += Value;
    Line += '"';
  }

  void beginArray(const char *Key) {
    key(Key);
    Line += '[';
    FirstElement = true;
  }

  /// One nested fixed-width row, e.g. a [op, seconds, mib] series
  /// sample.
  void arrayRow(std::initializer_list<double> Values) {
    element();
    Line += '[';
    bool First = true;
    for (double V : Values) {
      if (!First)
        Line += ',';
      First = false;
      appendNumber(V);
    }
    Line += ']';
  }

  void arrayNumber(double Value) {
    element();
    appendNumber(Value);
  }

  void endArray() { Line += ']'; }

  /// Finishes the line and hands it to benchEmitJsonLine when --json
  /// is active (mirrors benchReportJson's no-op-without---json
  /// contract so call sites need no mode checks).
  void emit() {
    Line += '}';
    if (benchJsonMode())
      benchEmitJsonLine(Line);
  }

  /// The closed document without emitting (tests).
  std::string finish() {
    Line += '}';
    return Line;
  }

private:
  void key(const char *Key) {
    Line += ",\"";
    Line += Key;
    Line += "\":";
  }

  void element() {
    if (!FirstElement)
      Line += ',';
    FirstElement = false;
  }

  void appendNumber(double Value) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%.17g", Value);
    Line += Buf;
  }

  std::string Line;
  bool FirstElement = true;
};

/// One metric in a JSON result line. Values are doubles; counts and
/// byte totals fit exactly up to 2^53.
struct BenchMetric {
  const char *Key;
  double Value;
};

/// Emits one line of machine-readable results when --json is active:
///
///   {"schema":1,"bench":"bench_redis","config":"Mesh","ops_per_sec":...}
///
/// \p Config distinguishes multiple measurements within one binary
/// (allocator under test, workload mix); pass "" for single-config
/// benches. Call once per measured configuration.
inline void benchReportJson(const char *Bench, const char *Config,
                            std::initializer_list<BenchMetric> Metrics) {
  if (!benchJsonMode())
    return;
  BenchJsonWriter W(Bench, Config);
  for (const BenchMetric &M : Metrics)
    W.number(M.Key, M.Value);
  W.emit();
}

/// Interpolated quantile over \p Samples (sorted in place), \p Q in
/// [0, 1]. Linear interpolation between closest ranks (R type 7 /
/// numpy default): unlike the old nearest-rank `size()*99/100`
/// shortcut, a p99 over fewer than 100 samples no longer degenerates
/// to the sample maximum. Callers should report the sample count
/// alongside (samples_n) so consumers can judge how much the tail
/// estimate is worth.
inline double benchQuantile(std::vector<uint64_t> &Samples, double Q) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  if (Samples.size() == 1)
    return static_cast<double>(Samples[0]);
  const double Rank = Q * static_cast<double>(Samples.size() - 1);
  const size_t Lo =
      std::min(static_cast<size_t>(Rank), Samples.size() - 2);
  const double Frac = Rank - static_cast<double>(Lo);
  return static_cast<double>(Samples[Lo]) +
         Frac * (static_cast<double>(Samples[Lo + 1]) -
                 static_cast<double>(Samples[Lo]));
}

/// Divides an iteration count by \p Divisor in smoke mode (floor 1).
inline size_t benchScaled(size_t N, size_t Divisor = 8) {
  return benchSmokeMode() ? std::max<size_t>(1, N / Divisor) : N;
}

/// Mesh configured for benchmarking: the paper's default 100 ms mesh
/// rate limit (Section 4.5). MESH_BACKGROUND=1 in the environment
/// switches every bench's instance heap to the background meshing
/// runtime (the CI preload/background job runs the suites both ways).
inline MeshOptions benchMeshOptions(bool Meshing = true, bool Rand = true,
                                    uint64_t Seed = 20190622) {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{8} << 30;
  Opts.MeshingEnabled = Meshing;
  Opts.Randomized = Rand;
  Opts.MeshPeriodMs = kDefaultMeshPeriodMs;
  // The paper's 64 MB dirty-page budget is sized for Firefox/Redis
  // scale heaps (hundreds of MB); our stand-ins run at tens of MB, so
  // scale the cache proportionally to keep RSS comparisons meaningful.
  Opts.MaxDirtyBytes = 8 * 1024 * 1024;
  Opts.Seed = Seed;
  Opts.BackgroundMeshing = envBool("MESH_BACKGROUND", false);
  return Opts;
}

inline void printHeader(const char *Figure, const char *Title) {
  printf("==============================================================\n");
  printf("%s: %s\n", Figure, Title);
  printf("==============================================================\n");
}

} // namespace mesh

#endif // MESH_BENCH_BENCHUTIL_H
