//===- BenchUtil.h - Shared benchmark harness helpers ------------*- C++ -*-===//

#ifndef MESH_BENCH_BENCHUTIL_H
#define MESH_BENCH_BENCHUTIL_H

#include "core/Options.h"
#include "support/Env.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mesh {

inline double toMiB(double Bytes) { return Bytes / (1024.0 * 1024.0); }

/// True after benchInit saw --smoke: the ctest registrations run every
/// benchmark in this mode so CI catches bench rot without paying for
/// full measurement runs. Numbers printed under --smoke are not
/// paper-comparable.
inline bool &benchSmokeMode() {
  static bool Smoke = false;
  return Smoke;
}

/// True after benchInit saw --json: each measured configuration also
/// emits one machine-readable result line (see benchReportJson), so CI
/// can append the perf trajectory to BENCH_*.json files.
inline bool &benchJsonMode() {
  static bool Json = false;
  return Json;
}

/// Parses benchmark argv (--smoke, --json). Call first in main.
/// Unrecognized arguments are an error: a typoed --smoke silently
/// running the full measurement workload would defeat the ctest smoke
/// registrations.
inline void benchInit(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      benchSmokeMode() = true;
    } else if (std::strcmp(argv[I], "--json") == 0) {
      benchJsonMode() = true;
    } else {
      fprintf(stderr,
              "%s: unknown argument '%s' (supported: --smoke, --json)\n",
              argv[0], argv[I]);
      exit(2);
    }
  }
}

/// One metric in a JSON result line. Values are doubles; counts and
/// byte totals fit exactly up to 2^53.
struct BenchMetric {
  const char *Key;
  double Value;
};

/// Emits one line of machine-readable results when --json is active:
///
///   {"bench":"bench_redis","config":"Mesh","ops_per_sec":1.2e6,...}
///
/// \p Config distinguishes multiple measurements within one binary
/// (allocator under test, workload mix); pass "" for single-config
/// benches. Call once per measured configuration.
inline void benchReportJson(const char *Bench, const char *Config,
                            std::initializer_list<BenchMetric> Metrics) {
  if (!benchJsonMode())
    return;
  printf("{\"bench\":\"%s\"", Bench);
  if (Config != nullptr && Config[0] != '\0')
    printf(",\"config\":\"%s\"", Config);
  if (benchSmokeMode())
    printf(",\"smoke\":true");
  for (const BenchMetric &M : Metrics)
    printf(",\"%s\":%.17g", M.Key, M.Value);
  printf("}\n");
  fflush(stdout);
}

/// Divides an iteration count by \p Divisor in smoke mode (floor 1).
inline size_t benchScaled(size_t N, size_t Divisor = 8) {
  return benchSmokeMode() ? std::max<size_t>(1, N / Divisor) : N;
}

/// Mesh configured for benchmarking: the paper's default 100 ms mesh
/// rate limit (Section 4.5). MESH_BACKGROUND=1 in the environment
/// switches every bench's instance heap to the background meshing
/// runtime (the CI preload/background job runs the suites both ways).
inline MeshOptions benchMeshOptions(bool Meshing = true, bool Rand = true,
                                    uint64_t Seed = 20190622) {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{8} << 30;
  Opts.MeshingEnabled = Meshing;
  Opts.Randomized = Rand;
  Opts.MeshPeriodMs = kDefaultMeshPeriodMs;
  // The paper's 64 MB dirty-page budget is sized for Firefox/Redis
  // scale heaps (hundreds of MB); our stand-ins run at tens of MB, so
  // scale the cache proportionally to keep RSS comparisons meaningful.
  Opts.MaxDirtyBytes = 8 * 1024 * 1024;
  Opts.Seed = Seed;
  Opts.BackgroundMeshing = envBool("MESH_BACKGROUND", false);
  return Opts;
}

inline void printHeader(const char *Figure, const char *Title) {
  printf("==============================================================\n");
  printf("%s: %s\n", Figure, Title);
  printf("==============================================================\n");
}

} // namespace mesh

#endif // MESH_BENCH_BENCHUTIL_H
