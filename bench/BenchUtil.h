//===- BenchUtil.h - Shared benchmark harness helpers ------------*- C++ -*-===//

#ifndef MESH_BENCH_BENCHUTIL_H
#define MESH_BENCH_BENCHUTIL_H

#include "core/Options.h"

#include <cstdio>

namespace mesh {

inline double toMiB(double Bytes) { return Bytes / (1024.0 * 1024.0); }

/// Mesh configured for benchmarking: the paper's default 100 ms mesh
/// rate limit (Section 4.5).
inline MeshOptions benchMeshOptions(bool Meshing = true, bool Rand = true,
                                    uint64_t Seed = 20190622) {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{8} << 30;
  Opts.MeshingEnabled = Meshing;
  Opts.Randomized = Rand;
  Opts.MeshPeriodMs = kDefaultMeshPeriodMs;
  // The paper's 64 MB dirty-page budget is sized for Firefox/Redis
  // scale heaps (hundreds of MB); our stand-ins run at tens of MB, so
  // scale the cache proportionally to keep RSS comparisons meaningful.
  Opts.MaxDirtyBytes = 8 * 1024 * 1024;
  Opts.Seed = Seed;
  return Opts;
}

inline void printHeader(const char *Figure, const char *Title) {
  printf("==============================================================\n");
  printf("%s: %s\n", Figure, Title);
  printf("==============================================================\n");
}

} // namespace mesh

#endif // MESH_BENCH_BENCHUTIL_H
