//===- bench_ablation.cpp - Design-choice ablations ----------------------------===//
///
/// Sweeps the design knobs DESIGN.md calls out, on a fixed fragmented
/// heap image (64-span, 1/8-occupancy):
///  - SplitMesher probe budget t (Section 3.3's space/time trade-off;
///    the paper ships t=64);
///  - write barrier on/off (cost of mprotect + epoch bookkeeping per
///    mesh);
///  - randomization on/off under a *regular* allocation pattern (the
///    Section 6.3 mechanism, at the allocator level).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Runtime.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <vector>

using namespace mesh;

namespace {

MeshOptions ablationOptions() {
  MeshOptions Opts = benchMeshOptions();
  Opts.ArenaBytes = size_t{2} << 30;
  Opts.MeshPeriodMs = ~uint64_t{0}; // only explicit meshNow
  Opts.MaxDirtyBytes = 0;
  return Opts;
}

/// Builds the standard fragmented image: \p Spans spans of 16-byte
/// objects, 1-in-8 survivors, spans rotated to the global heap.
std::vector<void *> buildFragmentedHeap(Runtime &R, int Spans) {
  std::vector<void *> Kept;
  std::vector<void *> Toss;
  for (int I = 0; I < Spans * 256; ++I) {
    void *P = R.malloc(16);
    (I % 8 == 0 ? Kept : Toss).push_back(P);
  }
  for (void *P : Toss)
    R.free(P);
  R.localHeap().releaseAll();
  return Kept;
}

} // namespace

int main(int argc, char **argv) {
  benchInit(argc, argv);
  printHeader("Ablations", "probe budget t, write barrier, randomization");
  const int Runs = benchSmokeMode() ? 2 : 5;
  const int SpanCount = static_cast<int>(benchScaled(64));

  // --- t sweep: pages released and pass time per budget. ---
  printf("t-sweep on the %d-span 1/8-occupancy image (%d runs each):\n",
         SpanCount, Runs);
  printf("%6s %12s %12s %12s\n", "t", "freed_KiB", "probes", "pass_us");
  for (uint32_t T : {1u, 4u, 16u, 64u, 256u}) {
    size_t Freed = 0;
    uint64_t Probes = 0, Ns = 0;
    for (int Run = 0; Run < Runs; ++Run) {
      MeshOptions Opts = ablationOptions();
      Opts.MeshProbes = T;
      Opts.Seed = 100 + Run;
      Runtime R(Opts);
      auto Kept = buildFragmentedHeap(R, SpanCount);
      Freed += R.meshNow();
      Probes += R.global().stats().MeshProbeCount.load();
      Ns += R.global().stats().TotalMeshNs.load();
      for (void *P : Kept)
        R.free(P);
    }
    printf("%6u %12.1f %12llu %12.1f\n", T,
           static_cast<double>(Freed) / Runs / 1024.0,
           static_cast<unsigned long long>(Probes / Runs),
           static_cast<double>(Ns) / Runs / 1000.0);
    char Config[32];
    snprintf(Config, sizeof(Config), "t=%u", T);
    benchReportJson("bench_ablation", Config,
                    {{"freed_kib", static_cast<double>(Freed) / Runs / 1024.0},
                     {"probes", static_cast<double>(Probes / Runs)},
                     {"pass_us", static_cast<double>(Ns) / Runs / 1000.0}});
  }

  // --- Write barrier cost per mesh pass. ---
  for (bool Barrier : {true, false}) {
    uint64_t Ns = 0;
    size_t Freed = 0;
    for (int Run = 0; Run < Runs; ++Run) {
      MeshOptions Opts = ablationOptions();
      Opts.BarrierEnabled = Barrier;
      Opts.Seed = 200 + Run;
      Runtime R(Opts);
      auto Kept = buildFragmentedHeap(R, SpanCount);
      Freed += R.meshNow();
      Ns += R.global().stats().TotalMeshNs.load();
      for (void *P : Kept)
        R.free(P);
    }
    printf("RESULT mesh_pass_us_barrier_%s %.1f (freed %.0f KiB avg)\n",
           Barrier ? "on" : "off", static_cast<double>(Ns) / Runs / 1000.0,
           static_cast<double>(Freed) / Runs / 1024.0);
    benchReportJson("bench_ablation", Barrier ? "barrier=on" : "barrier=off",
                    {{"pass_us", static_cast<double>(Ns) / Runs / 1000.0},
                     {"freed_kib",
                      static_cast<double>(Freed) / Runs / 1024.0}});
  }

  // --- Randomization under a REGULAR allocation pattern. ---
  // Allocate spans fully, then free a *prefix-structured* subset
  // (every slot except slot k of each 32-slot stride). Without
  // randomization all survivors land at identical offsets across spans
  // and nothing meshes; with randomization survivors scatter.
  for (bool Rand : {true, false}) {
    MeshOptions Opts = ablationOptions();
    Opts.Randomized = Rand;
    Runtime R(Opts);
    std::vector<void *> All;
    for (int I = 0; I < SpanCount * 256; ++I)
      All.push_back(R.malloc(16));
    std::vector<void *> Kept;
    for (size_t I = 0; I < All.size(); ++I) {
      if (I % 32 == 7)
        Kept.push_back(All[I]);
      else
        R.free(All[I]);
    }
    R.localHeap().releaseAll();
    size_t Freed = 0;
    for (int Pass = 0; Pass < 8; ++Pass)
      Freed += R.meshNow();
    printf("RESULT regular_pattern_freed_KiB_rand_%s %.1f\n",
           Rand ? "on" : "off", Freed / 1024.0);
    benchReportJson("bench_ablation", Rand ? "rand=on" : "rand=off",
                    {{"freed_kib", Freed / 1024.0}});
    for (void *P : Kept)
      R.free(P);
  }
  printf("(paper Section 6.3: randomization is what makes meshing\n"
         " effective under regular allocation patterns)\n");

  // --- Background vs inline meshing: who pays the pause. ---
  // Same fragmented image both times. Inline: passes run on the
  // (simulated) mutator via meshNow, so the foreground max pause is
  // the whole pass. Background: the pressure monitor compacts from the
  // mesher thread; the mutator-side max pause must read zero. This is
  // the measurable form of the paper's Section 4.5 claim that meshing
  // runs concurrently with the application.
  for (bool Background : {false, true}) {
    MeshOptions Opts = ablationOptions();
    Opts.BackgroundMeshing = Background;
    Opts.BackgroundWakeMs = 2;
    Opts.PressureFragThresholdPct = 10;
    // Below the smoke image's footprint (8 one-page spans) so the
    // pressure trigger fires in both smoke and full runs.
    Opts.PressureMinCommittedBytes = 16 * 1024;
    size_t Freed = 0;
    uint64_t FgPauseNs = 0, BgPauseNs = 0, BgPasses = 0;
    for (int Run = 0; Run < Runs; ++Run) {
      Runtime R(Opts);
      auto Kept = buildFragmentedHeap(R, SpanCount);
      const size_t Before = R.committedBytes();
      if (Background) {
        // Idle from here: only the pressure monitor may compact.
        uint64_t Passes = 0;
        size_t Len = sizeof(Passes);
        for (int Spin = 0; Spin < 2000 && Passes == 0; ++Spin) {
          timespec Ts{0, 2 * 1000 * 1000};
          nanosleep(&Ts, nullptr);
          Len = sizeof(Passes);
          R.mallctl("background.pressure_passes", &Passes, &Len, nullptr,
                    0);
        }
        Freed += Before - R.committedBytes();
      } else {
        Freed += R.meshNow();
      }
      const auto &S = R.global().stats();
      FgPauseNs = std::max(FgPauseNs, S.MaxForegroundPassNs.load());
      BgPauseNs = std::max(BgPauseNs, S.MaxBackgroundPassNs.load());
      BgPasses += S.MeshPassesBackground.load();
      for (void *P : Kept)
        R.free(P);
    }
    const char *Config = Background ? "mesh=background" : "mesh=inline";
    printf("RESULT %s mutator_max_pause_us %.1f (mesher-side %.1f us, "
           "freed %.0f KiB avg, %llu bg passes)\n",
           Config, FgPauseNs / 1000.0, BgPauseNs / 1000.0,
           static_cast<double>(Freed) / Runs / 1024.0,
           static_cast<unsigned long long>(BgPasses));
    benchReportJson("bench_ablation", Config,
                    {{"mutator_max_pause_us", FgPauseNs / 1000.0},
                     {"background_max_pause_us", BgPauseNs / 1000.0},
                     {"background_passes", static_cast<double>(BgPasses)},
                     {"freed_kib",
                      static_cast<double>(Freed) / Runs / 1024.0}});
  }

  // --- Telemetry recording overhead on the slow path it instruments. ---
  // Same fragmented image, same explicit passes, flight recorder +
  // histograms off vs on. The delta is the total per-pass cost of the
  // clock reads, ring stores, and histogram increments (the fast path
  // is not instrumented at all — see the bench_mt guard in CI). This
  // number backs the overhead budget in DESIGN.md "Observability".
  for (bool Rec : {false, true}) {
    uint64_t Ns = 0;
    size_t Freed = 0;
    for (int Run = 0; Run < Runs; ++Run) {
      MeshOptions Opts = ablationOptions();
      Opts.Seed = 300 + Run;
      if (Rec)
        telemetry::enable();
      else
        telemetry::disable();
      Runtime R(Opts);
      auto Kept = buildFragmentedHeap(R, SpanCount);
      Freed += R.meshNow();
      Ns += R.global().stats().TotalMeshNs.load();
      for (void *P : Kept)
        R.free(P);
    }
    telemetry::disable();
    printf("RESULT mesh_pass_us_telemetry_%s %.1f (freed %.0f KiB avg)\n",
           Rec ? "on" : "off", static_cast<double>(Ns) / Runs / 1000.0,
           static_cast<double>(Freed) / Runs / 1024.0);
    benchReportJson("bench_ablation",
                    Rec ? "telemetry=on" : "telemetry=off",
                    {{"pass_us", static_cast<double>(Ns) / Runs / 1000.0},
                     {"freed_kib",
                      static_cast<double>(Freed) / Runs / 1024.0}});
  }
  return 0;
}
