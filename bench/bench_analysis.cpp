//===- bench_analysis.cpp - Sections 2.2 & 5.2 number regenerator -------------===//
///
/// Reproduces the paper's analytical quantities and validates them by
/// Monte Carlo:
///  - Section 2.2: the probability that randomized allocation leaves n
///    single-object spans pairwise unmeshable is (1/b)^(n-1) — about
///    1e-152 for 64 spans of 256 slots ("10^82 particles" comparison);
///  - Section 5.2: for b=32, r=10, n=1000, expected triangles in the
///    meshing graph are below 2, vs 167 if edges were independent (the
///    flaw in DRM's analysis discussed in Section 7);
///  - Section 1: the Robson bound factor log2(max/min) = 13 for
///    16 B..128 KB.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/MeshingGraph.h"
#include "analysis/Probability.h"

#include <cstdio>

using namespace mesh;
using namespace mesh::analysis;

int main(int argc, char **argv) {
  benchInit(argc, argv);
  printHeader("Sections 2.2 / 5.2", "analytic quantities + Monte Carlo");

  // --- Section 1: Robson bound. ---
  printf("RESULT robson_factor_16B_128KB %.1f (paper: 13x blowup)\n",
         robsonFactor(16, 128 * 1024));

  // --- Section 2.2: worst-case non-meshable probability. ---
  printf("RESULT log10_p_all_same_offset_b256_n64 %.1f (paper: ~-152)\n",
         log10AllSameOffsetProbability(256, 64));

  // --- Section 5.2: triangle scarcity, closed form. ---
  const double Dependent = expectedTriangles(1000, 32, 10);
  const double Independent = expectedTrianglesIndependent(1000, 32, 10);
  printf("RESULT expected_triangles_dependent %.2f (paper: < 2)\n",
         Dependent);
  printf("RESULT expected_triangles_independent %.1f (paper: 167)\n",
         Independent);

  // --- Monte Carlo validation of the dependent model. ---
  Rng Random(424242);
  const unsigned N = static_cast<unsigned>(benchScaled(1000, 4));
  const unsigned B = 32, R = 10;
  const int Trials = benchSmokeMode() ? 1 : 5;
  double TotalTriangles = 0, TotalEdges = 0;
  for (int T = 0; T < Trials; ++T) {
    auto Spans = randomSpans(N, B, R, Random);
    MeshingGraph G(Spans);
    TotalTriangles += static_cast<double>(G.triangleCount());
    TotalEdges += static_cast<double>(G.edgeCount());
  }
  printf("RESULT montecarlo_triangles %.2f (closed form: %.2f)\n",
         TotalTriangles / Trials, Dependent);
  const double Q = pairMeshProbability(B, R, R);
  printf("RESULT montecarlo_edges %.0f (expected n(n-1)/2*q = %.0f)\n",
         TotalEdges / Trials, N * (N - 1) / 2.0 * Q);

  benchReportJson(
      "bench_analysis", "",
      {{"robson_factor", robsonFactor(16, 128 * 1024)},
       {"expected_triangles_dependent", Dependent},
       {"expected_triangles_independent", Independent},
       {"montecarlo_triangles", TotalTriangles / Trials},
       {"montecarlo_edges", TotalEdges / Trials}});

  // --- Mesh probability table across occupancy (context for t=64). ---
  printf("\noccupancy sweep for b=256 (probability two spans mesh):\n");
  printf("%8s %12s %14s\n", "live", "occupancy", "q");
  for (unsigned Live : {4u, 8u, 16u, 32u, 64u, 96u, 128u}) {
    printf("%8u %11.1f%% %14.3e\n", Live, 100.0 * Live / 256,
           pairMeshProbability(256, Live, Live));
  }
  return 0;
}
