//===- bench_firefox.cpp - Figure 6 regenerator -------------------------------===//
///
/// Paper Figure 6 + Section 6.2.1: Firefox running Speedometer 2.0.
/// The stand-in browser workload runs under the bundled-jemalloc
/// baseline and under Mesh; the paper reports a 16% mean-heap
/// reduction (632 MB -> 530 MB) with under 1% score change, with both
/// configs peaking similarly but Mesh holding the heap consistently
/// lower.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/SizeClassAllocator.h"
#include "workloads/BrowserWorkload.h"

#include <cstdio>

using namespace mesh;

namespace {

struct RunOutput {
  BrowserWorkloadResult Result;
  double MeanMiB;
  double PeakMiB;
};

RunOutput runOne(HeapBackend &Backend, const char *Label) {
  BrowserWorkloadConfig Config;
  if (benchSmokeMode()) {
    Config.Episodes = 6;
    Config.AllocsPerEpisode = benchScaled(Config.AllocsPerEpisode);
    Config.CooldownRounds = 3;
  }
  MemoryMeter Meter(Backend, Config.OpsPerSample);
  const BrowserWorkloadResult Result =
      runBrowserWorkload(Backend, Meter, Config);
  Meter.printSeries(Label);
  return RunOutput{Result, toMiB(Meter.meanCommittedBytes()),
                   toMiB(static_cast<double>(Meter.peakCommittedBytes()))};
}

} // namespace

int main(int argc, char **argv) {
  benchInit(argc, argv);
  printHeader("Figure 6",
              "Firefox/Speedometer stand-in: RSS over time, two configs");

  SizeClassAllocator Jemalloc(size_t{4} << 30);
  const RunOutput Base = runOne(Jemalloc, "mozjemalloc");

  MeshBackend Full(benchMeshOptions(), "Mesh");
  const RunOutput Mesh = runOne(Full, "Mesh");

  printf("\nconfig        seconds     score  mean_MiB  peak_MiB\n");
  printf("mozjemalloc   %7.2f  %8.0f  %8.1f  %8.1f\n", Base.Result.Seconds,
         Base.Result.Score, Base.MeanMiB, Base.PeakMiB);
  printf("Mesh          %7.2f  %8.0f  %8.1f  %8.1f\n", Mesh.Result.Seconds,
         Mesh.Result.Score, Mesh.MeanMiB, Mesh.PeakMiB);

  auto EmitJson = [](const char *Config, const RunOutput &O) {
    benchReportJson("bench_firefox", Config,
                    {{"seconds", O.Result.Seconds},
                     {"score", O.Result.Score},
                     {"mean_rss_mib", O.MeanMiB},
                     {"peak_rss_mib", O.PeakMiB}});
  };
  EmitJson("mozjemalloc", Base);
  EmitJson("Mesh", Mesh);

  printf("\nRESULT firefox_final_footprint_reduction_pct %.1f "
         "(after the cooldown tail)\n",
         100.0 * (1.0 - static_cast<double>(
                            Mesh.Result.FinalCommittedBytes) /
                            Base.Result.FinalCommittedBytes));
  printf("RESULT firefox_mean_heap_reduction_pct %.1f (paper: 16)\n",
         100.0 * (1.0 - Mesh.MeanMiB / Base.MeanMiB));
  printf("RESULT firefox_score_change_pct %.2f (paper: < 1)\n",
         100.0 * (Mesh.Result.Score / Base.Result.Score - 1.0));
  printf("RESULT firefox_peak_ratio %.2f (paper: ~1, peaks similar)\n",
         Mesh.PeakMiB / Base.PeakMiB);
  return 0;
}
