//===- bench_mt.cpp - Multi-threaded hot-path benchmark ---------------------===//
///
/// The paper's core speed claim (Sections 4.3-4.4): malloc and free
/// complete without locks in the common case, and a non-local free is
/// one atomic bitmap update. This harness measures exactly those two
/// regimes:
///
///   - local  mix: every thread allocates and frees its own objects —
///     the pure thread-local fast path.
///   - cross  mix: allocator threads hand 90% of their objects to
///     dedicated freeing threads over SPSC rings — the lock-free
///     remote-free path under maximum cross-thread pressure.
///   - multiclass mix: the cross mix spread uniformly over all 24 size
///     classes, so refills and remote frees from different threads land
///     on *different* per-class shards of the global heap concurrently.
///     The large span geometry of the top classes (8 objects per span)
///     makes refills frequent: this mix measures the sharded
///     allocation path, where the old design serialized every refill,
///     re-bin, and pending-free drain on one global lock.
///   - refillmiss mix: whole-span allocate/free batches with a TLS
///     release between batches, so every batch misses the thread cache
///     and lands on the global heap's refill and the arena's span
///     recycling. This is the regression guard for the per-class arena
///     shards: before the split, every one of these batches crossed
///     one process-wide arena lock.
///
/// Reports aggregate ops/sec (mallocs + frees) and sampled p99 per-op
/// latency for each mix. This is the regression guard for the TLS heap
/// cache, the page-table free dispatch, and the epoch-protected remote
/// free; run before/after any hot-path change.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Runtime.h"
#include "core/SizeClass.h"
#include "runtime/BackgroundMesher.h"
#include "support/Rng.h"
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace mesh;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Single-producer single-consumer pointer ring. The producer is an
/// allocator thread, the consumer a freeing thread.
class Ring {
public:
  static constexpr size_t kSlots = 4096;

  bool tryPush(void *Ptr) {
    const size_t Tail = TailIdx.load(std::memory_order_relaxed);
    if (Tail - HeadIdx.load(std::memory_order_acquire) == kSlots)
      return false;
    Slots[Tail % kSlots].store(Ptr, std::memory_order_relaxed);
    TailIdx.store(Tail + 1, std::memory_order_release);
    return true;
  }

  void *tryPop() {
    const size_t Head = HeadIdx.load(std::memory_order_relaxed);
    if (Head == TailIdx.load(std::memory_order_acquire))
      return nullptr;
    void *Ptr = Slots[Head % kSlots].load(std::memory_order_relaxed);
    HeadIdx.store(Head + 1, std::memory_order_release);
    return Ptr;
  }

private:
  std::atomic<void *> Slots[kSlots] = {};
  alignas(64) std::atomic<size_t> HeadIdx{0};
  alignas(64) std::atomic<size_t> TailIdx{0};
};

struct MixResult {
  double OpsPerSec = 0;
  double P99MallocNs = 0;
  double P99FreeNs = 0;
  double PeakRssMiB = 0;
};

constexpr int kAllocThreads = 4;
constexpr int kFreeThreads = 4;
constexpr int kLatencySampleEvery = 64;

/// One benchmark configuration: \p RemotePermille of allocations are
/// handed to a freeing thread (0 = local-only mix). \p AllClasses
/// draws sizes uniformly from every size class instead of the 16B-512B
/// band, spreading the load across the global heap's per-class
/// structures.
MixResult runMix(const char *Name, uint32_t RemotePermille,
                 size_t OpsPerThread, bool AllClasses = false) {
  Runtime R(benchMeshOptions());
  Ring Rings[kAllocThreads];
  std::atomic<int> ProducersDone{0};
  std::atomic<uint64_t> TotalOps{0};
  std::vector<uint64_t> MallocSamples[kAllocThreads];
  std::vector<uint64_t> FreeSamples[kAllocThreads + kFreeThreads];

  const uint64_t Start = nowNs();

  std::vector<std::thread> Threads;
  for (int T = 0; T < kAllocThreads; ++T)
    Threads.emplace_back([&, T] {
      Rng Driver(9000 + T);
      auto &Mallocs = MallocSamples[T];
      auto &Frees = FreeSamples[T];
      Mallocs.reserve(OpsPerThread / kLatencySampleEvery + 1);
      Frees.reserve(OpsPerThread / kLatencySampleEvery + 1);
      uint64_t Ops = 0;
      std::vector<void *> Local;
      Local.reserve(128);
      for (size_t I = 0; I < OpsPerThread; ++I) {
        const size_t Size =
            AllClasses
                ? objectSizeForClass(
                      static_cast<int>(Driver.inRange(0, kNumSizeClasses - 1)))
                : 16 << Driver.inRange(0, 5); // 16B..512B
        void *P;
        if (I % kLatencySampleEvery == 0) {
          const uint64_t T0 = nowNs();
          P = R.malloc(Size);
          Mallocs.push_back(nowNs() - T0);
        } else {
          P = R.malloc(Size);
        }
        static_cast<char *>(P)[0] = static_cast<char>(I);
        ++Ops;
        const bool Remote = Driver.inRange(0, 999) < RemotePermille;
        if (Remote) {
          // Block until the consumer drains: the cross mix must
          // actually measure remote frees, not silently degrade to
          // local ones when the ring fills. Yield rather than spin so
          // oversubscribed machines hand the CPU to the consumer.
          while (!Rings[T].tryPush(P))
            std::this_thread::yield();
          continue; // Freed (and counted) by a freeing thread.
        }
        Local.push_back(P);
        if (Local.size() >= 64) {
          // Free in shuffled batches so the local mix still exercises
          // non-LIFO frees.
          for (void *Q : Local) {
            if (Ops % kLatencySampleEvery == 0) {
              const uint64_t T0 = nowNs();
              R.free(Q);
              Frees.push_back(nowNs() - T0);
            } else {
              R.free(Q);
            }
            ++Ops;
          }
          Local.clear();
        }
      }
      for (void *Q : Local) {
        R.free(Q);
        ++Ops;
      }
      R.localHeap().releaseAll();
      TotalOps.fetch_add(Ops);
      ProducersDone.fetch_add(1);
    });

  for (int T = 0; T < kFreeThreads; ++T)
    Threads.emplace_back([&, T] {
      auto &Frees = FreeSamples[kAllocThreads + T];
      uint64_t Ops = 0;
      for (;;) {
        bool Idle = true;
        for (int Src = T; Src < kAllocThreads; Src += kFreeThreads) {
          while (void *P = Rings[Src].tryPop()) {
            Idle = false;
            if (Ops % kLatencySampleEvery == 0) {
              const uint64_t T0 = nowNs();
              R.free(P);
              Frees.push_back(nowNs() - T0);
            } else {
              R.free(P);
            }
            ++Ops;
          }
        }
        if (Idle) {
          if (ProducersDone.load() == kAllocThreads)
            break;
          std::this_thread::yield();
        }
      }
      TotalOps.fetch_add(Ops);
    });

  for (auto &Th : Threads)
    Th.join();

  const double Seconds = static_cast<double>(nowNs() - Start) / 1e9;

  MixResult Result;
  Result.OpsPerSec = static_cast<double>(TotalOps.load()) / Seconds;
  Result.PeakRssMiB = toMiB(static_cast<double>(pagesToBytes(
      R.global().stats().PeakCommittedPages.load())));
  std::vector<uint64_t> AllMallocs, AllFrees;
  for (auto &S : MallocSamples)
    AllMallocs.insert(AllMallocs.end(), S.begin(), S.end());
  for (auto &S : FreeSamples)
    AllFrees.insert(AllFrees.end(), S.begin(), S.end());
  // Shared interpolated-quantile helper (BenchUtil.h): the old local
  // `size()*99/100` nearest-rank was ~= max() on the small smoke-mode
  // sample sets, which made --smoke --json p99s pure noise.
  Result.P99MallocNs = benchQuantile(AllMallocs, 0.99);
  Result.P99FreeNs = benchQuantile(AllFrees, 0.99);

  // Pass attribution (who executed compaction): with MESH_BACKGROUND=1
  // every pass should land on the mesher thread and the foreground max
  // pause should be zero — exactly what the json line lets CI assert.
  const auto &Stats = R.global().stats();
  const double FgPasses = static_cast<double>(
      Stats.MeshPassesForeground.load(std::memory_order_relaxed));
  const double BgPasses = static_cast<double>(
      Stats.MeshPassesBackground.load(std::memory_order_relaxed));
  const BackgroundMesher *Bg = R.backgroundMesher();

  printf("  %-12s %10.2f Mops/s   p99 malloc %7.0f ns   p99 free %7.0f ns"
         "   peak RSS %7.1f MiB   passes fg/bg %.0f/%.0f\n",
         Name, Result.OpsPerSec / 1e6, Result.P99MallocNs, Result.P99FreeNs,
         Result.PeakRssMiB, FgPasses, BgPasses);
  benchReportJson(
      "bench_mt", Name,
      {{"alloc_threads", kAllocThreads},
       {"free_threads", kFreeThreads},
       {"ops_per_sec", Result.OpsPerSec},
       {"p99_malloc_ns", Result.P99MallocNs},
       {"p99_free_ns", Result.P99FreeNs},
       // Sample counts let consumers judge the tail estimates: a p99
       // over a dozen smoke-mode samples is shape, not measurement.
       {"samples_n_malloc", static_cast<double>(AllMallocs.size())},
       {"samples_n_free", static_cast<double>(AllFrees.size())},
       {"peak_rss_mib", Result.PeakRssMiB},
       {"background_enabled", Bg != nullptr && Bg->running() ? 1.0 : 0.0},
       {"background_wakeups",
        Bg != nullptr ? static_cast<double>(Bg->wakeups()) : 0.0},
       {"background_requests",
        Bg != nullptr ? static_cast<double>(Bg->requests()) : 0.0},
       {"background_passes", BgPasses},
       {"foreground_passes", FgPasses},
       {"max_pause_foreground_ns",
        static_cast<double>(
            Stats.MaxForegroundPassNs.load(std::memory_order_relaxed))},
       {"max_pause_background_ns",
        static_cast<double>(
            Stats.MaxBackgroundPassNs.load(std::memory_order_relaxed))}});
  return Result;
}

/// The anti-cache mix: every batch allocates one whole span's worth of
/// objects for a class and then frees all of them, ending with a TLS
/// release — so the next batch's first allocation always misses the
/// thread cache, refills from the global heap, and the free side
/// destroys the emptied span back into the arena. Nothing here
/// measures the TLS fast path; it is all shard refill + arena span
/// recycling, the two paths the arena-bin sharding parallelized.
/// Threads work disjoint class slices so a correctly sharded arena
/// shows no cross-thread lock transfer at all.
MixResult runRefillMiss(size_t BatchesPerThread) {
  Runtime R(benchMeshOptions());
  std::atomic<uint64_t> TotalOps{0};
  std::vector<uint64_t> MallocSamples[kAllocThreads];
  std::vector<uint64_t> FreeSamples[kAllocThreads];
  constexpr int kClassesPerThread = kNumSizeClasses / kAllocThreads;

  const uint64_t Start = nowNs();
  std::vector<std::thread> Threads;
  for (int T = 0; T < kAllocThreads; ++T)
    Threads.emplace_back([&, T] {
      Rng Driver(4200 + T);
      auto &Mallocs = MallocSamples[T];
      auto &Frees = FreeSamples[T];
      uint64_t Ops = 0;
      std::vector<void *> Batch;
      for (size_t B = 0; B < BatchesPerThread; ++B) {
        const int Class =
            T * kClassesPerThread +
            static_cast<int>(Driver.inRange(0, kClassesPerThread - 1));
        const SizeClassInfo &Info = sizeClassInfo(Class);
        Batch.clear();
        Batch.reserve(Info.ObjectCount);
        for (uint32_t I = 0; I < Info.ObjectCount; ++I) {
          void *P;
          if (Ops % kLatencySampleEvery == 0) {
            const uint64_t T0 = nowNs();
            P = R.malloc(Info.ObjectSize);
            Mallocs.push_back(nowNs() - T0);
          } else {
            P = R.malloc(Info.ObjectSize);
          }
          static_cast<char *>(P)[0] = static_cast<char>(I);
          ++Ops;
          Batch.push_back(P);
        }
        for (void *P : Batch) {
          if (Ops % kLatencySampleEvery == 0) {
            const uint64_t T0 = nowNs();
            R.free(P);
            Frees.push_back(nowNs() - T0);
          } else {
            R.free(P);
          }
          ++Ops;
        }
        // Hand the (now empty) spans back to the global heap so the
        // next batch is a guaranteed refill miss.
        R.localHeap().releaseAll();
      }
      TotalOps.fetch_add(Ops);
    });
  for (auto &Th : Threads)
    Th.join();

  const double Seconds = static_cast<double>(nowNs() - Start) / 1e9;
  MixResult Result;
  Result.OpsPerSec = static_cast<double>(TotalOps.load()) / Seconds;
  Result.PeakRssMiB = toMiB(static_cast<double>(
      pagesToBytes(R.global().stats().PeakCommittedPages.load())));
  std::vector<uint64_t> AllMallocs, AllFrees;
  for (auto &S : MallocSamples)
    AllMallocs.insert(AllMallocs.end(), S.begin(), S.end());
  for (auto &S : FreeSamples)
    AllFrees.insert(AllFrees.end(), S.begin(), S.end());
  Result.P99MallocNs = benchQuantile(AllMallocs, 0.99);
  Result.P99FreeNs = benchQuantile(AllFrees, 0.99);

  const auto &Stats = R.global().stats();
  const double FgPasses = static_cast<double>(
      Stats.MeshPassesForeground.load(std::memory_order_relaxed));
  const double BgPasses = static_cast<double>(
      Stats.MeshPassesBackground.load(std::memory_order_relaxed));
  const BackgroundMesher *Bg = R.backgroundMesher();

  printf("  %-12s %10.2f Mops/s   p99 malloc %7.0f ns   p99 free %7.0f ns"
         "   peak RSS %7.1f MiB   passes fg/bg %.0f/%.0f\n",
         "refillmiss", Result.OpsPerSec / 1e6, Result.P99MallocNs,
         Result.P99FreeNs, Result.PeakRssMiB, FgPasses, BgPasses);
  benchReportJson(
      "bench_mt", "refillmiss",
      {{"alloc_threads", kAllocThreads},
       {"free_threads", 0},
       {"ops_per_sec", Result.OpsPerSec},
       {"p99_malloc_ns", Result.P99MallocNs},
       {"p99_free_ns", Result.P99FreeNs},
       {"samples_n_malloc", static_cast<double>(AllMallocs.size())},
       {"samples_n_free", static_cast<double>(AllFrees.size())},
       {"peak_rss_mib", Result.PeakRssMiB},
       {"background_enabled", Bg != nullptr && Bg->running() ? 1.0 : 0.0},
       {"background_wakeups",
        Bg != nullptr ? static_cast<double>(Bg->wakeups()) : 0.0},
       {"background_requests",
        Bg != nullptr ? static_cast<double>(Bg->requests()) : 0.0},
       {"background_passes", BgPasses},
       {"foreground_passes", FgPasses},
       {"max_pause_foreground_ns",
        static_cast<double>(
            Stats.MaxForegroundPassNs.load(std::memory_order_relaxed))},
       {"max_pause_background_ns",
        static_cast<double>(
            Stats.MaxBackgroundPassNs.load(std::memory_order_relaxed))}});
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  benchInit(argc, argv);
  printHeader("MT hot paths",
              "lock-free malloc/free under cross-thread pressure");
  printf("%d allocator threads, %d freeing threads, sizes 16B-512B\n\n",
         kAllocThreads, kFreeThreads);
  const size_t Ops = benchScaled(2000000, 64);
  runMix("local", /*RemotePermille=*/0, Ops);
  runMix("cross", /*RemotePermille=*/900, Ops);
  // Multi-class spread keeps span sizes large (up to 16 KiB objects at
  // 8 per span), so this mix is refill-dominated; scale it down to keep
  // the default run time comparable to the other mixes.
  runMix("multiclass", /*RemotePermille=*/900, Ops / 4, /*AllClasses=*/true);
  // Batches, not ops: each batch is a span's worth of objects (8..256)
  // plus a forced refill; ~100 ops per batch on average keeps this in
  // the same time band as the mixes above.
  runRefillMiss(benchScaled(20000, 16));
  return 0;
}
