//===- bench_redis.cpp - Figure 7 regenerator --------------------------------===//
///
/// Paper Figure 7 + Section 6.2.2: Redis as a 100 MB LRU cache,
/// 700k x 240 B inserts then 170k x 492 B inserts, then idle.
/// Configurations: jemalloc-like + application-level activedefrag,
/// Mesh, and Mesh with meshing disabled. The paper reports Mesh
/// matching activedefrag's 39% heap reduction automatically, with
/// compaction time 0.23 s vs defragmentation's 1.49 s (5.5x slower)
/// and a longest mesh pause of 22 ms.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/SizeClassAllocator.h"
#include "workloads/RedisWorkload.h"

#include <cstdio>

using namespace mesh;

namespace {

struct RunOutput {
  RedisWorkloadResult Result;
  double MeanMiB;
  double PeakMiB;
  double FinalMiB;
};

RunOutput runOne(HeapBackend &Backend, const char *Label,
                 bool UseActiveDefrag) {
  RedisWorkloadConfig Config;
  Config.UseActiveDefrag = UseActiveDefrag;
  if (benchSmokeMode()) {
    Config.Scale = 0.05;
    Config.IdleRounds = 3;
  }
  MemoryMeter Meter(Backend, Config.OpsPerSample);
  const RedisWorkloadResult Result =
      runRedisWorkload(Backend, Meter, Config);
  Meter.printSeries(Label);
  return RunOutput{Result, toMiB(Meter.meanCommittedBytes()),
                   toMiB(static_cast<double>(Meter.peakCommittedBytes())),
                   toMiB(static_cast<double>(Result.FinalCommittedBytes))};
}

} // namespace

int main(int argc, char **argv) {
  benchInit(argc, argv);
  printHeader("Figure 7",
              "Redis LRU-cache benchmark: RSS over time, three configs");

  SizeClassAllocator Jemalloc(size_t{4} << 30);
  const RunOutput Defrag =
      runOne(Jemalloc, "jemalloc+activedefrag", /*UseActiveDefrag=*/true);

  MeshBackend Mesh(benchMeshOptions(), "Mesh");
  const RunOutput WithMesh = runOne(Mesh, "Mesh", false);
  const auto &Stats = Mesh.runtime().global().stats();

  MeshBackend NoMesh(benchMeshOptions(/*Meshing=*/false), "Mesh-nomesh");
  const RunOutput NoMeshOut = runOne(NoMesh, "Mesh(no-meshing)", false);

  printf("\nconfig                     insert_s  maint_s  mean_MiB  "
         "peak_MiB  final_MiB\n");
  printf("jemalloc+activedefrag      %8.2f %8.3f  %8.1f  %8.1f  %8.1f\n",
         Defrag.Result.InsertSeconds, Defrag.Result.MaintenanceSeconds,
         Defrag.MeanMiB, Defrag.PeakMiB, Defrag.FinalMiB);
  printf("Mesh                       %8.2f %8.3f  %8.1f  %8.1f  %8.1f\n",
         WithMesh.Result.InsertSeconds, WithMesh.Result.MaintenanceSeconds,
         WithMesh.MeanMiB, WithMesh.PeakMiB, WithMesh.FinalMiB);
  printf("Mesh (no meshing)          %8.2f %8.3f  %8.1f  %8.1f  %8.1f\n",
         NoMeshOut.Result.InsertSeconds,
         NoMeshOut.Result.MaintenanceSeconds, NoMeshOut.MeanMiB,
         NoMeshOut.PeakMiB, NoMeshOut.FinalMiB);

  auto EmitJson = [](const char *Config, const RunOutput &O,
                     double MaxPauseNs) {
    // Mirror runOne's scaling so --smoke --json reports honest
    // throughput, not the full-scale op count over a smoke-sized run.
    RedisWorkloadConfig Defaults;
    const double Scale = benchSmokeMode() ? 0.05 : Defaults.Scale;
    const double Ops =
        (Defaults.Phase1Keys + Defaults.Phase2Keys) * Scale;
    benchReportJson(
        "bench_redis", Config,
        {{"ops_per_sec", Ops / (O.Result.InsertSeconds + 1e-9)},
         {"insert_s", O.Result.InsertSeconds},
         {"maint_s", O.Result.MaintenanceSeconds},
         {"mean_rss_mib", O.MeanMiB},
         {"peak_rss_mib", O.PeakMiB},
         {"final_rss_mib", O.FinalMiB},
         {"max_pause_ns", MaxPauseNs}});
  };
  EmitJson("jemalloc+activedefrag", Defrag, 0);
  EmitJson("Mesh", WithMesh, static_cast<double>(Stats.MaxMeshPassNs.load()));
  EmitJson("Mesh-nomesh", NoMeshOut, 0);

  const double Reduction =
      100.0 * (1.0 - WithMesh.FinalMiB / NoMeshOut.FinalMiB);
  printf("\nRESULT redis_heap_reduction_vs_nomesh_pct %.1f (paper: 39)\n",
         Reduction);
  printf("RESULT redis_mesh_total_s %.3f (paper: 0.23)\n",
         WithMesh.Result.MaintenanceSeconds);
  printf("RESULT redis_defrag_total_s %.3f (paper: 1.49)\n",
         Defrag.Result.MaintenanceSeconds);
  printf("RESULT redis_defrag_vs_mesh_slowdown %.1fx (paper: 5.5x)\n",
         Defrag.Result.MaintenanceSeconds /
             (WithMesh.Result.MaintenanceSeconds + 1e-9));
  printf("RESULT redis_longest_mesh_pause_ms %.2f (paper: 22)\n",
         Stats.MaxMeshPassNs.load() * 1e-6);
  printf("RESULT redis_insert_overhead_pct %.1f (paper: ~2)\n",
         100.0 * (WithMesh.Result.InsertSeconds /
                      (Defrag.Result.InsertSeconds + 1e-9) -
                  1.0));
  return 0;
}
