//===- bench_ruby.cpp - Figure 8 regenerator ----------------------------------===//
///
/// Paper Figure 8 + Section 6.3: the Ruby-style string accumulate/
/// filter microbenchmark with a *regular* allocation pattern, run under
/// four configurations: jemalloc-like baseline, Mesh, Mesh without
/// meshing, and Mesh without randomization. The paper's findings:
/// randomization is essential here — full Mesh cuts mean heap ~18-19%
/// vs both the baseline and no-rand (which only manages ~3%), at
/// ~10.7% runtime overhead.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/SizeClassAllocator.h"
#include "workloads/RubyWorkload.h"

#include <cstdio>

using namespace mesh;

namespace {

struct RunOutput {
  RubyWorkloadResult Result;
  double MeanMiB;
};

RunOutput runOne(HeapBackend &Backend, const char *Label) {
  RubyWorkloadConfig Config;
  Config.BytesPerRound = benchScaled(Config.BytesPerRound, 16);
  MemoryMeter Meter(Backend, Config.OpsPerSample);
  const RubyWorkloadResult Result = runRubyWorkload(Backend, Meter, Config);
  Meter.printSeries(Label);
  return RunOutput{Result, toMiB(Meter.meanCommittedBytes())};
}

} // namespace

int main(int argc, char **argv) {
  benchInit(argc, argv);
  printHeader("Figure 8", "Ruby string-churn microbenchmark, four configs");

  SizeClassAllocator Jemalloc(size_t{4} << 30);
  const RunOutput Base = runOne(Jemalloc, "jemalloc");

  MeshBackend Full(benchMeshOptions(), "Mesh");
  const RunOutput Mesh = runOne(Full, "Mesh");

  MeshBackend NoMesh(benchMeshOptions(/*Meshing=*/false), "Mesh-nomesh");
  const RunOutput NoMeshOut = runOne(NoMesh, "Mesh(no-meshing)");

  MeshBackend NoRand(benchMeshOptions(true, /*Rand=*/false), "Mesh-norand");
  const RunOutput NoRandOut = runOne(NoRand, "Mesh(no-rand)");

  printf("\nconfig             seconds  mean_MiB  final_MiB\n");
  auto Row = [](const char *Name, const RunOutput &O) {
    printf("%-18s %7.2f  %8.1f  %9.1f\n", Name, O.Result.Seconds, O.MeanMiB,
           toMiB(static_cast<double>(O.Result.FinalCommittedBytes)));
  };
  Row("jemalloc", Base);
  Row("Mesh", Mesh);
  Row("Mesh (no mesh)", NoMeshOut);
  Row("Mesh (no rand)", NoRandOut);

  auto EmitJson = [](const char *Config, const RunOutput &O) {
    benchReportJson(
        "bench_ruby", Config,
        {{"seconds", O.Result.Seconds},
         {"mean_rss_mib", O.MeanMiB},
         {"final_rss_mib",
          toMiB(static_cast<double>(O.Result.FinalCommittedBytes))}});
  };
  EmitJson("jemalloc", Base);
  EmitJson("Mesh", Mesh);
  EmitJson("Mesh-nomesh", NoMeshOut);
  EmitJson("Mesh-norand", NoRandOut);

  printf("\nRESULT ruby_mesh_final_footprint_reduction_pct %.1f "
         "(robust metric; paper's fig-8 gap at end of run is ~19)\n",
         100.0 * (1.0 - static_cast<double>(
                            Mesh.Result.FinalCommittedBytes) /
                            NoMeshOut.Result.FinalCommittedBytes));
  printf("RESULT ruby_mesh_mean_heap_reduction_pct %.1f (paper: ~18-19)\n",
         100.0 * (1.0 - Mesh.MeanMiB / Base.MeanMiB));
  printf("RESULT ruby_norand_mean_heap_reduction_pct %.1f (paper: ~3)\n",
         100.0 * (1.0 - NoRandOut.MeanMiB / Base.MeanMiB));
  printf("RESULT ruby_nomesh_mean_heap_reduction_pct %.1f (paper: ~0)\n",
         100.0 * (1.0 - NoMeshOut.MeanMiB / Base.MeanMiB));
  printf("RESULT ruby_mesh_time_overhead_pct %.1f (paper: 10.7)\n",
         100.0 * (Mesh.Result.Seconds / Base.Result.Seconds - 1.0));
  return 0;
}
