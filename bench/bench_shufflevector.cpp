//===- bench_shufflevector.cpp - Section 4.2 microbenchmarks -------------------===//
///
/// google-benchmark suite for the data-structure claims of Section 4.2:
/// shuffle vectors give O(1) malloc and free with no overprovisioning,
/// vs random probing into a bitmap (O(1) expected only while the span
/// is underfull — it degrades sharply as occupancy rises) — plus
/// end-to-end malloc/free costs for Mesh and the baselines.
///
//===----------------------------------------------------------------------===//

#include "baseline/FreeListAllocator.h"
#include "baseline/SizeClassAllocator.h"
#include "core/MiniHeap.h"
#include "core/Runtime.h"
#include "core/ShuffleVector.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <vector>

namespace {

using namespace mesh;

// --- Shuffle vector pop/push cycle (the malloc/free fast path). ---
void BM_ShuffleVectorMallocFree(benchmark::State &State) {
  std::vector<char> Buffer(kPageSize);
  Rng Random(1);
  MiniHeap MH(0, 1, 16, 256, 0, true);
  ShuffleVector VStorage;
  VStorage.init(&Random, true);
  VStorage.attach(&MH, Buffer.data());
  // Measure through an opaque reference. Without this, the optimizer
  // can scalarize the whole vector and constant-fold the span geometry
  // (16-byte objects become a shift) — a specialization no real call
  // site gets, since MiniHeaps arrive from the global heap at runtime.
  ShuffleVector *VP = &VStorage;
  benchmark::DoNotOptimize(VP);
  ShuffleVector &V = *VP;
  // Run at the occupancy given by the benchmark argument (percent).
  const size_t Target = 256 - 256 * State.range(0) / 100;
  std::vector<void *> Live;
  while (V.length() > Target)
    Live.push_back(V.malloc());
  for (auto _ : State) {
    void *P = V.malloc();
    benchmark::DoNotOptimize(P);
    V.free(P);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShuffleVectorMallocFree)->Arg(10)->Arg(50)->Arg(90)->Arg(99);

// --- Random probing into a bitmap (DieHard-style allocation). ---
void BM_RandomProbingMallocFree(benchmark::State &State) {
  Rng Random(2);
  Bitmap Bits(256);
  const uint32_t Target = 256 * State.range(0) / 100;
  uint32_t Placed = 0;
  while (Placed < Target)
    Placed += Bits.tryToSet(Random.inRange(0, 255));
  for (auto _ : State) {
    // Probe until a free slot is found (the paper's point: expected
    // O(1) only with heavy overprovisioning; degrades with occupancy).
    uint32_t Off;
    do {
      Off = Random.inRange(0, 255);
    } while (!Bits.tryToSet(Off));
    benchmark::DoNotOptimize(Off);
    Bits.unset(Off);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RandomProbingMallocFree)->Arg(10)->Arg(50)->Arg(90)->Arg(99);

// --- End-to-end allocator malloc/free cycles, 64-byte objects. ---
void BM_MeshMallocFree(benchmark::State &State) {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{1} << 30;
  Runtime R(Opts);
  for (auto _ : State) {
    void *P = R.malloc(64);
    benchmark::DoNotOptimize(P);
    R.free(P);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MeshMallocFree);

void BM_SizeClassBaselineMallocFree(benchmark::State &State) {
  SizeClassAllocator A(size_t{1} << 30);
  for (auto _ : State) {
    void *P = A.malloc(64);
    benchmark::DoNotOptimize(P);
    A.free(P);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SizeClassBaselineMallocFree);

void BM_FreeListBaselineMallocFree(benchmark::State &State) {
  FreeListAllocator A;
  for (auto _ : State) {
    void *P = A.malloc(64);
    benchmark::DoNotOptimize(P);
    A.free(P);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FreeListBaselineMallocFree);

void BM_SystemMallocFree(benchmark::State &State) {
  for (auto _ : State) {
    void *P = ::malloc(64);
    benchmark::DoNotOptimize(P);
    ::free(P);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SystemMallocFree);

// --- Varied sizes through the whole Mesh stack. ---
void BM_MeshMallocFreeSized(benchmark::State &State) {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{1} << 30;
  Runtime R(Opts);
  const size_t Size = State.range(0);
  for (auto _ : State) {
    void *P = R.malloc(Size);
    benchmark::DoNotOptimize(P);
    R.free(P);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MeshMallocFreeSized)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(65536);

// --- Attach cost (span adoption + Fisher-Yates shuffle). ---
void BM_ShuffleVectorAttach(benchmark::State &State) {
  std::vector<char> Buffer(kPageSize);
  Rng Random(3);
  for (auto _ : State) {
    MiniHeap MH(0, 1, 16, 256, 0, true);
    ShuffleVector V;
    V.init(&Random, true);
    benchmark::DoNotOptimize(V.attach(&MH, Buffer.data()));
    V.detach();
  }
  State.SetItemsProcessed(State.iterations() * 256);
}
BENCHMARK(BM_ShuffleVectorAttach);

} // namespace
