//===- bench_soak.cpp - Server-scale soak harness -----------------------------===//
///
/// The measurement substrate behind every "heavy traffic" claim in
/// ROADMAP.md: long-running KVStore and Redis workload soaks at
/// production shape — skewed (Zipfian) key popularity, value-size
/// churn across generations, Redis-style activeDefrag phases,
/// connection churn via freshly spawned worker threads per
/// generation, and fork bursts *while mutators run* (the
/// copy-to-fresh-memfd fork path under load). Each configuration
/// reports per-request p50/p99/p99.9 latency, mutator max pause split
/// foreground/background, an RSS-over-time series, and meshing
/// effectiveness (committed vs in-use vs kernel-charged file pages) as
/// one schema-versioned JSON line.
///
/// Two backends:
///   - mesh   (default): an in-process instance Runtime behind
///     MeshBackend — the library-API shape.
///   - system: plain ::malloc/::free. Run under
///     LD_PRELOAD=libmesh.so this measures the interposition shim's
///     default runtime (stats read through the preloaded mesh_mallctl,
///     found via dlsym(RTLD_NEXT)); without the preload it degrades to
///     a glibc reference run.
///
/// The committed BENCH_<pr>.json trajectory is produced by running the
/// "ci" profile in both modes (tools/make_bench_baseline.sh);
/// tools/bench_compare.py gates CI on it. Full runs remain manual:
///
///   ./build/bench/bench_soak --profile=full --json
///
/// Every get() verifies a deterministic per-key fill byte, so the soak
/// doubles as an end-to-end corruption fence across threads, defrag
/// passes, and forks; any mismatch fails the run with exit code 3.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/HeapBackend.h"
#include "core/Runtime.h"
#include "runtime/PressureMonitor.h"
#include "support/Rng.h"
#include "support/Sys.h"
#include "support/Telemetry.h"
#include "workloads/KVStore.h"
#include "workloads/MemoryMeter.h"
#include "workloads/Zipfian.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <dlfcn.h>
#include <malloc.h>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mesh;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Hard cap on coordinator RSS samples; the series is reserved up
/// front (MemoryMeter self-measurement contract) and downsampled to
/// kSeriesRowsMax rows at emission.
constexpr size_t kMaxRssSamples = 4096;
constexpr size_t kSeriesRowsMax = 120;

//===----------------------------------------------------------------------===//
// Allocator stats: one snapshot shape, two sources.
//===----------------------------------------------------------------------===//

struct AllocatorSnapshot {
  double CommittedBytes = 0;
  double InUseBytes = 0;
  double KernelFileBytes = 0;
  double RssBytes = 0;
  double MaxPauseFgNs = 0;
  double MaxPauseBgNs = 0;
  double PassesFg = 0;
  double PassesBg = 0;
  /// telemetry.hist.mesh_pass buckets (all zero for glibc). Deltas
  /// between two snapshots give this run's pause distribution.
  uint64_t MeshPassBuckets[telemetry::kHistBuckets] = {};
};

class StatsReader {
public:
  virtual ~StatsReader() = default;
  virtual AllocatorSnapshot snapshot() const = 0;
  /// "mesh" / "mesh-preload" / "glibc" — baked into the config string
  /// so the comparator never matches a preload run against a glibc
  /// one.
  virtual const char *allocatorName() const = 0;
};

/// Instance-heap runs: read the Runtime's own counters directly.
class RuntimeStatsReader final : public StatsReader {
public:
  explicit RuntimeStatsReader(Runtime &R) : R(R) {}

  AllocatorSnapshot snapshot() const override {
    AllocatorSnapshot S;
    const MeshStats &Stats = R.global().stats();
    S.CommittedBytes = static_cast<double>(R.committedBytes());
    S.KernelFileBytes =
        static_cast<double>(pagesToBytes(R.global().kernelFilePages()));
    S.InUseBytes = static_cast<double>(
        GlobalHeapFootprintSource(R.global()).sampleFootprint().InUseBytes);
    S.RssBytes = static_cast<double>(PressureMonitor::readRssBytes());
    S.MaxPauseFgNs = static_cast<double>(
        Stats.MaxForegroundPassNs.load(std::memory_order_relaxed));
    S.MaxPauseBgNs = static_cast<double>(
        Stats.MaxBackgroundPassNs.load(std::memory_order_relaxed));
    S.PassesFg = static_cast<double>(
        Stats.MeshPassesForeground.load(std::memory_order_relaxed));
    S.PassesBg = static_cast<double>(
        Stats.MeshPassesBackground.load(std::memory_order_relaxed));
    // Instance heaps share the process-wide telemetry rings, so this
    // reads the same histogram the mallctl leaf would.
    telemetry::readHistogram(telemetry::HistId::kHistMeshPass,
                             S.MeshPassBuckets);
    return S;
  }

  const char *allocatorName() const override { return "mesh"; }

private:
  Runtime &R;
};

using MallctlFn = int (*)(const char *, void *, size_t *, void *, size_t);

/// The preloaded shim's mesh_mallctl, or nullptr when not preloaded.
/// RTLD_NEXT skips this binary's statically linked copy (which fronts
/// a *different*, never-constructed default runtime) and finds the
/// LD_PRELOAD object's export — the allocator actually serving
/// ::malloc in that mode.
MallctlFn preloadedMallctl() {
  static MallctlFn Fn =
      reinterpret_cast<MallctlFn>(dlsym(RTLD_NEXT, "mesh_mallctl"));
  return Fn;
}

/// System-allocator runs: stats via the preloaded shim when present,
/// else process RSS only (glibc reference).
class SystemStatsReader final : public StatsReader {
public:
  AllocatorSnapshot snapshot() const override {
    AllocatorSnapshot S;
    S.RssBytes = static_cast<double>(PressureMonitor::readRssBytes());
    MallctlFn Ctl = preloadedMallctl();
    if (Ctl == nullptr)
      return S;
    S.CommittedBytes = readU64(Ctl, "stats.committed_bytes");
    S.KernelFileBytes = readU64(Ctl, "stats.kernel_file_bytes");
    S.InUseBytes = readU64(Ctl, "pressure.in_use_bytes");
    S.MaxPauseFgNs = readU64(Ctl, "stats.max_pause_foreground_ns");
    S.MaxPauseBgNs = readU64(Ctl, "stats.max_pause_background_ns");
    S.PassesFg = readU64(Ctl, "stats.mesh_passes_foreground");
    S.PassesBg = readU64(Ctl, "stats.mesh_passes_background");
    // The preloaded .so has its own telemetry globals (distinct from
    // this binary's statically linked copy), so the buckets must come
    // through its mallctl, not a direct telemetry:: call.
    size_t Len = sizeof(S.MeshPassBuckets);
    if (Ctl("telemetry.hist.mesh_pass", S.MeshPassBuckets, &Len, nullptr,
            0) != 0)
      memset(S.MeshPassBuckets, 0, sizeof(S.MeshPassBuckets));
    return S;
  }

  const char *allocatorName() const override {
    return preloadedMallctl() != nullptr ? "mesh-preload" : "glibc";
  }

private:
  static double readU64(MallctlFn Ctl, const char *Name) {
    uint64_t Value = 0;
    size_t Len = sizeof(Value);
    if (Ctl(Name, &Value, &Len, nullptr, 0) != 0)
      return 0;
    return static_cast<double>(Value);
  }
};

/// HeapBackend over ::malloc — under LD_PRELOAD=libmesh.so this is the
/// shim (production shape: *every* allocation in the process routes
/// through Mesh); without the preload, glibc.
class SystemBackend final : public HeapBackend {
public:
  void *malloc(size_t Bytes) override { return ::malloc(Bytes); }
  void free(void *Ptr) override { ::free(Ptr); }
  size_t usableSize(const void *Ptr) const override {
    return ::malloc_usable_size(const_cast<void *>(Ptr));
  }
  size_t committedBytes() const override {
    MallctlFn Ctl = preloadedMallctl();
    if (Ctl != nullptr) {
      uint64_t Value = 0;
      size_t Len = sizeof(Value);
      if (Ctl("stats.committed_bytes", &Value, &Len, nullptr, 0) == 0)
        return static_cast<size_t>(Value);
    }
    return PressureMonitor::readRssBytes();
  }
  size_t peakCommittedBytes() const override { return committedBytes(); }
  const char *name() const override { return "system"; }
};

//===----------------------------------------------------------------------===//
// Soak profiles.
//===----------------------------------------------------------------------===//

struct SoakProfile {
  const char *Name;
  // KVStore soak: Generations x Threads x OpsPerThread requests over a
  // Zipfian keyspace, sharded so worker threads contend on the
  // allocator rather than one store lock.
  uint64_t KvKeyspace;
  int KvGenerations;
  int KvThreads;
  uint64_t KvOpsPerThread;
  size_t KvBudgetBytes;
  // Redis soak: waves of the Section 6.2.2 aging shape, each phase on
  // a fresh connection thread.
  int RedisWaves;
  uint64_t RedisPhase1Keys;
  uint64_t RedisPhase2Keys;
  size_t RedisBudgetBytes;
  // Shared knobs.
  int ForksTotal;         ///< Fork bursts injected while mutators run.
  uint64_t ChildBurstOps; ///< Allocator ops each forked child performs.
  int SampleEveryMs;      ///< Coordinator RSS sampling cadence.
  uint64_t LatencySampleEvery;
};

const SoakProfile kProfiles[] = {
    // ~4M + ~1.8M requests, minutes of heap aging: the manual
    // measurement run.
    {"full", uint64_t{1} << 20, 16, 4, 62500, size_t{160} << 20, 6, 245000,
     59500, size_t{35} << 20, 8, 4000, 100, 8},
    // ~800k + ~313k requests, seconds: what CI runs per PR and what
    // BENCH_<pr>.json is committed from.
    {"ci", 150000, 8, 4, 25000, size_t{24} << 20, 3, 84000, 20400,
     size_t{12} << 20, 4, 2000, 20, 8},
    // The ctest bench-rot fence.
    {"smoke", 4096, 2, 2, 1500, size_t{1} << 20, 2, 1400, 340,
     size_t{512} << 10, 2, 500, 5, 1},
};

//===----------------------------------------------------------------------===//
// Fork bursts and the coordinator loop.
//===----------------------------------------------------------------------===//

/// --faults: run the KVStore soak with the canned syscall fault storm
/// armed (set in soakArg, consumed by the driver and the fork bursts).
bool GFaults = false;

/// Spreads the profile's fork budget across the soak at evenly spaced
/// operation thresholds, so children always fork off a process whose
/// worker threads are mid-mutation — the shape that historically
/// flushed the shared-memfd fork corruption.
class ForkPlan {
public:
  ForkPlan(const SoakProfile &P, uint64_t TotalOps)
      : Left(P.ForksTotal), BurstOps(P.ChildBurstOps),
        Interval(TotalOps / (static_cast<uint64_t>(P.ForksTotal) + 1)),
        NextAt(Interval) {}

  void maybeFork(HeapBackend &Backend, uint64_t OpsNow) {
    while (Left > 0 && OpsNow >= NextAt) {
      runBurst(Backend);
      NextAt += Interval;
    }
  }

  /// Runs any forks a faster-than-expected soak never triggered.
  void drain(HeapBackend &Backend) {
    while (Left > 0)
      runBurst(Backend);
  }

  uint64_t count() const { return Count; }

private:
  void runBurst(HeapBackend &Backend) {
    const pid_t Pid = fork();
    if (Pid < 0) {
      fprintf(stderr, "bench_soak: fork failed (errno %d)\n", errno);
      exit(3);
    }
    if (Pid == 0) {
      // Forked child of a multithreaded process: allocator calls only
      // (exactly what the fork protocol guarantees), no stdio, _exit.
      Rng Random(0xF07C + static_cast<uint64_t>(getpid()));
      void *Held[64] = {};
      for (uint64_t I = 0; I < BurstOps; ++I) {
        const size_t Slot = I % 64;
        if (Held[Slot] != nullptr)
          Backend.free(Held[Slot]);
        const size_t Size = size_t{16} << Random.inRange(0, 9); // 16B..8KiB
        Held[Slot] = Backend.malloc(Size);
        if (Held[Slot] == nullptr) {
          // Under --faults a null is the expected degradation, not a
          // protocol failure: skip the slot and keep churning.
          if (!GFaults)
            _exit(4);
          continue;
        }
        memset(Held[Slot], 0x5A, Size < 64 ? Size : 64);
      }
      for (void *P : Held)
        if (P != nullptr)
          Backend.free(P);
      _exit(0);
    }
    int Status = 0;
    if (waitpid(Pid, &Status, 0) != Pid || !WIFEXITED(Status) ||
        WEXITSTATUS(Status) != 0) {
      fprintf(stderr,
              "bench_soak: forked child failed (status 0x%x) — the fork "
              "path corrupted or killed it\n",
              Status);
      exit(3);
    }
    --Left;
    ++Count;
  }

  int Left;
  uint64_t BurstOps;
  uint64_t Interval;
  uint64_t NextAt;
  uint64_t Count = 0;
};

/// Coordinator loop, run on the main thread while \p Remaining worker
/// threads mutate: advances the meter by the workers' aggregate op
/// count, samples RSS on the profile cadence, and injects fork bursts
/// at their op thresholds.
void superviseWorkers(const SoakProfile &P, std::atomic<int> &Remaining,
                      std::atomic<uint64_t> &OpsDone, HeapBackend &Backend,
                      MemoryMeter &Meter, uint64_t &LastMetered,
                      ForkPlan &Forks) {
  while (Remaining.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(P.SampleEveryMs));
    const uint64_t Now = OpsDone.load(std::memory_order_relaxed);
    Meter.advanceOps(Now - LastMetered);
    LastMetered = Now;
    if (Meter.samples().size() < kMaxRssSamples)
      Meter.sampleNow();
    Forks.maybeFork(Backend, Now);
  }
  const uint64_t Now = OpsDone.load(std::memory_order_relaxed);
  Meter.advanceOps(Now - LastMetered);
  LastMetered = Now;
}

//===----------------------------------------------------------------------===//
// Soak results.
//===----------------------------------------------------------------------===//

struct SoakResult {
  uint64_t Ops = 0;
  uint64_t Forks = 0;
  int Threads = 0;
  double Seconds = 0;
  uint64_t Evictions = 0;
  uint64_t DefragMovedBytes = 0;
  uint64_t DefragPasses = 0;
  uint64_t GetMismatches = 0;
  std::vector<uint64_t> LatencySamples;
};

//===----------------------------------------------------------------------===//
// KVStore soak: sharded stores, Zipfian keys, mixed get/set/del.
//===----------------------------------------------------------------------===//

constexpr int kKvShards = 4;

/// Per-generation value length: cycles size classes so long-lived hot
/// keys and churning cold keys repeatedly change shape — the value
/// churn that ages a real cache's heap.
size_t valueLenForGeneration(int Generation) {
  static const size_t Cycle[] = {96, 240, 492, 128, 640, 1024, 64, 320};
  return Cycle[static_cast<size_t>(Generation) %
               (sizeof(Cycle) / sizeof(Cycle[0]))];
}

/// Deterministic per-key fill byte, verified on every get: the soak's
/// cross-thread / cross-defrag / cross-fork corruption fence.
char fillByteForKey(uint64_t KeyId) {
  return static_cast<char>('a' + (KeyId * 31) % 26);
}

SoakResult runKvSoak(HeapBackend &Backend, MemoryMeter &Meter,
                     const SoakProfile &P) {
  SoakResult Result;
  Result.Threads = P.KvThreads;
  const uint64_t TotalOps = static_cast<uint64_t>(P.KvGenerations) *
                            static_cast<uint64_t>(P.KvThreads) *
                            P.KvOpsPerThread;
  ForkPlan Forks(P, TotalOps);
  const uint64_t Start = nowNs();

  // Shards: worker threads hash keys across independently locked
  // stores, so the soak contends on the allocator, not one store lock.
  struct KvShard {
    std::mutex Lock;
    KVStore *Store = nullptr;
  };
  KvShard Shards[kKvShards];
  std::vector<std::unique_ptr<KVStore>> Stores;
  Stores.reserve(kKvShards);
  for (int S = 0; S < kKvShards; ++S) {
    Stores.push_back(
        std::make_unique<KVStore>(Backend, P.KvBudgetBytes / kKvShards));
    Shards[S].Store = Stores.back().get();
  }
  const ZipfianGenerator Zipf(P.KvKeyspace);

  std::atomic<uint64_t> OpsDone{0};
  std::atomic<uint64_t> Mismatches{0};
  std::mutex MergeLock;
  Result.LatencySamples.reserve(
      static_cast<size_t>(TotalOps / P.LatencySampleEvery) + 16);

  uint64_t LastMetered = 0;
  for (int Gen = 0; Gen < P.KvGenerations; ++Gen) {
    const size_t ValueLen = valueLenForGeneration(Gen);
    std::atomic<int> Remaining{P.KvThreads};
    // Connection churn: every generation runs on freshly spawned
    // worker threads (new TLS heaps; the dead generation's heaps
    // rotate their spans back to the global heap).
    std::vector<std::thread> Workers;
    Workers.reserve(static_cast<size_t>(P.KvThreads));
    for (int T = 0; T < P.KvThreads; ++T) {
      Workers.emplace_back([&, T, Gen, ValueLen] {
        Rng Random(0x50AC + static_cast<uint64_t>(Gen) * 131 +
                   static_cast<uint64_t>(T));
        std::vector<uint64_t> Latencies;
        Latencies.reserve(
            static_cast<size_t>(P.KvOpsPerThread / P.LatencySampleEvery) + 2);
        std::vector<char> Value(ValueLen);
        char Key[24];
        uint64_t LocalMismatches = 0;
        for (uint64_t I = 0; I < P.KvOpsPerThread; ++I) {
          // Scramble the Zipfian rank so hot keys scatter across the
          // key space (and therefore across shards and hash buckets).
          const uint64_t KeyId =
              (Zipf.next(Random) * 0x9E3779B97F4A7C15ULL) % P.KvKeyspace;
          const int Len = snprintf(Key, sizeof(Key), "user:%012llu",
                                   static_cast<unsigned long long>(KeyId));
          KvShard &Shard = Shards[KeyId % kKvShards];
          const uint32_t Op = Random.inRange(0, 99);
          const bool Sample = I % P.LatencySampleEvery == 0;
          const uint64_t T0 = Sample ? nowNs() : 0;
          if (Op < 70) {
            std::lock_guard<std::mutex> G(Shard.Lock);
            const std::string_view V =
                Shard.Store->get(std::string_view(Key, Len));
            if (!V.empty() && V[0] != fillByteForKey(KeyId))
              ++LocalMismatches;
          } else if (Op < 95) {
            memset(Value.data(), fillByteForKey(KeyId), Value.size());
            std::lock_guard<std::mutex> G(Shard.Lock);
            Shard.Store->set(std::string_view(Key, Len),
                             std::string_view(Value.data(), Value.size()));
          } else {
            std::lock_guard<std::mutex> G(Shard.Lock);
            Shard.Store->del(std::string_view(Key, Len));
          }
          if (Sample)
            Latencies.push_back(nowNs() - T0);
          OpsDone.fetch_add(1, std::memory_order_relaxed);
        }
        Mismatches.fetch_add(LocalMismatches, std::memory_order_relaxed);
        std::lock_guard<std::mutex> G(MergeLock);
        Result.LatencySamples.insert(Result.LatencySamples.end(),
                                     Latencies.begin(), Latencies.end());
        Remaining.fetch_sub(1, std::memory_order_release);
      });
    }
    superviseWorkers(P, Remaining, OpsDone, Backend, Meter, LastMetered,
                     Forks);
    for (std::thread &W : Workers)
      W.join();
    // Generation-boundary maintenance, alternating the two compaction
    // stories: Redis-style app-level defrag vs the allocator's own
    // flush. Workers are joined, so no shard lock is needed.
    if (Gen % 2 == 1) {
      for (const std::unique_ptr<KVStore> &Store : Stores)
        Result.DefragMovedBytes += Store->activeDefrag();
      ++Result.DefragPasses;
    } else {
      Backend.flush();
    }
    if (Meter.samples().size() < kMaxRssSamples)
      Meter.sampleNow();
  }
  Forks.drain(Backend);

  Result.Ops = OpsDone.load(std::memory_order_relaxed);
  Result.Forks = Forks.count();
  Result.GetMismatches = Mismatches.load(std::memory_order_relaxed);
  for (const std::unique_ptr<KVStore> &Store : Stores)
    Result.Evictions += Store->evictionCount();
  Result.Seconds = static_cast<double>(nowNs() - Start) / 1e9;
  return Result;
}

//===----------------------------------------------------------------------===//
// Redis soak: waves of the Section 6.2.2 aging shape with connection
// churn and activeDefrag phases.
//===----------------------------------------------------------------------===//

SoakResult runRedisSoak(HeapBackend &Backend, MemoryMeter &Meter,
                        const SoakProfile &P) {
  SoakResult Result;
  Result.Threads = 1; // One live connection at a time, many over the run.
  const uint64_t TotalOps = static_cast<uint64_t>(P.RedisWaves) *
                            (P.RedisPhase1Keys + P.RedisPhase2Keys);
  ForkPlan Forks(P, TotalOps);
  const uint64_t Start = nowNs();

  KVStore Store(Backend, P.RedisBudgetBytes);
  std::atomic<uint64_t> OpsDone{0};
  std::mutex MergeLock;
  Result.LatencySamples.reserve(
      static_cast<size_t>(TotalOps / P.LatencySampleEvery) + 16);

  uint64_t LastMetered = 0;
  for (int Wave = 0; Wave < P.RedisWaves; ++Wave) {
    struct Phase {
      uint64_t Keys;
      size_t ValueLen;
    };
    // The paper's two-phase shape: bulk load at one size class, then
    // churn into another so freed space is the wrong shape for the
    // survivors.
    const Phase Phases[2] = {{P.RedisPhase1Keys, 240},
                             {P.RedisPhase2Keys, 492}};
    for (int Ph = 0; Ph < 2; ++Ph) {
      std::atomic<int> Remaining{1};
      // Connection churn: each phase is one freshly spawned client
      // thread that dies when the phase ends.
      std::thread Conn([&, Wave, Ph] {
        Rng Random(0x4ED1 + static_cast<uint64_t>(Wave) * 17 +
                   static_cast<uint64_t>(Ph));
        std::vector<uint64_t> Latencies;
        Latencies.reserve(
            static_cast<size_t>(Phases[Ph].Keys / P.LatencySampleEvery) + 2);
        std::vector<char> Value(Phases[Ph].ValueLen, Ph == 0 ? 'v' : 'w');
        char Key[24];
        for (uint64_t I = 0; I < Phases[Ph].Keys; ++I) {
          const int Len =
              snprintf(Key, sizeof(Key), "key:%016llx",
                       static_cast<unsigned long long>(Random.next()));
          const bool Sample = I % P.LatencySampleEvery == 0;
          const uint64_t T0 = Sample ? nowNs() : 0;
          Store.set(std::string_view(Key, Len),
                    std::string_view(Value.data(), Value.size()));
          if (Sample)
            Latencies.push_back(nowNs() - T0);
          OpsDone.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> G(MergeLock);
        Result.LatencySamples.insert(Result.LatencySamples.end(),
                                     Latencies.begin(), Latencies.end());
        Remaining.fetch_sub(1, std::memory_order_release);
      });
      superviseWorkers(P, Remaining, OpsDone, Backend, Meter, LastMetered,
                       Forks);
      Conn.join();
    }
    // Idle maintenance between waves, alternating app-level defrag
    // with the allocator's own compaction.
    if (Wave % 2 == 1) {
      Result.DefragMovedBytes += Store.activeDefrag();
      ++Result.DefragPasses;
    } else {
      Backend.flush();
    }
    if (Meter.samples().size() < kMaxRssSamples)
      Meter.sampleNow();
  }
  Forks.drain(Backend);

  Result.Ops = OpsDone.load(std::memory_order_relaxed);
  Result.Forks = Forks.count();
  Result.Evictions = Store.evictionCount();
  Result.Seconds = static_cast<double>(nowNs() - Start) / 1e9;
  return Result;
}

//===----------------------------------------------------------------------===//
// Reporting.
//===----------------------------------------------------------------------===//

/// Quantile estimate over log2 histogram buckets, matching
/// tools/mesh-top.py: bucket b represents 0 (b==0) or the arithmetic
/// midpoint 1.5 * 2^(b-1) of [2^(b-1), 2^b).
double histQuantileNs(const uint64_t Buckets[telemetry::kHistBuckets],
                      double Q) {
  uint64_t Total = 0;
  for (uint32_t B = 0; B < telemetry::kHistBuckets; ++B)
    Total += Buckets[B];
  if (Total == 0)
    return 0;
  const double Target = Q * static_cast<double>(Total);
  uint64_t Cum = 0;
  for (uint32_t B = 0; B < telemetry::kHistBuckets; ++B) {
    Cum += Buckets[B];
    if (static_cast<double>(Cum) >= Target)
      return static_cast<double>(telemetry::bucketLowerBound(B)) * 1.5;
  }
  return static_cast<double>(
             telemetry::bucketLowerBound(telemetry::kHistBuckets - 1)) *
         1.5;
}

void emitRun(const char *Workload, const char *Profile,
             const StatsReader &Reader, const AllocatorSnapshot &Before,
             SoakResult &R, const MemoryMeter &Meter) {
  const AllocatorSnapshot After = Reader.snapshot();
  const std::string Config =
      std::string(Workload) + "-" + Reader.allocatorName();

  const double P50 = benchQuantile(R.LatencySamples, 0.50);
  const double P99 = benchQuantile(R.LatencySamples, 0.99);
  const double P999 = benchQuantile(R.LatencySamples, 0.999);
  const double OpsPerSec =
      R.Seconds > 0 ? static_cast<double>(R.Ops) / R.Seconds : 0;
  // Meshing effectiveness: committed pages the kernel no longer
  // charges for (meshed-away aliases plus punched holes). Zero for
  // allocators without the counter (glibc).
  const double MeshedPct =
      After.CommittedBytes > 0 && After.KernelFileBytes > 0
          ? 100.0 * (After.CommittedBytes - After.KernelFileBytes) /
                After.CommittedBytes
          : 0;
  const double FragPct =
      After.CommittedBytes > 0
          ? 100.0 * (After.CommittedBytes - After.InUseBytes) /
                After.CommittedBytes
          : 0;

  printf("  %-22s %8.1f kops/s   p50/p99/p99.9 %5.1f/%6.1f/%7.1f us   "
         "pause fg/bg %.2f/%.2f ms\n",
         Config.c_str(), OpsPerSec / 1e3, P50 / 1e3, P99 / 1e3, P999 / 1e3,
         After.MaxPauseFgNs / 1e6, After.MaxPauseBgNs / 1e6);
  printf("  %-22s rss mean/peak %.1f/%.1f MiB   committed %.1f MiB   "
         "in-use %.1f MiB   meshed-away %.1f%%   forks %llu\n",
         "", toMiB(Meter.meanCommittedBytes()),
         toMiB(static_cast<double>(Meter.peakCommittedBytes())),
         toMiB(After.CommittedBytes), toMiB(After.InUseBytes), MeshedPct,
         static_cast<unsigned long long>(R.Forks));

  BenchJsonWriter W("bench_soak", Config.c_str());
  W.string("workload", Workload);
  W.string("allocator", Reader.allocatorName());
  W.string("profile", Profile);
  W.number("ops", static_cast<double>(R.Ops));
  W.number("threads", R.Threads);
  W.number("forks", static_cast<double>(R.Forks));
  W.number("seconds", R.Seconds);
  W.number("ops_per_sec", OpsPerSec);
  W.number("p50_op_ns", P50);
  W.number("p99_op_ns", P99);
  W.number("p999_op_ns", P999);
  W.number("samples_n", static_cast<double>(R.LatencySamples.size()));
  // Max pauses are monotonic process-lifetime maxima; pass counts are
  // deltas over this run (the preload runtime outlives a single soak).
  W.number("max_pause_fg_ns", After.MaxPauseFgNs);
  W.number("max_pause_bg_ns", After.MaxPauseBgNs);
  W.number("mesh_passes_fg", After.PassesFg - Before.PassesFg);
  W.number("mesh_passes_bg", After.PassesBg - Before.PassesBg);
  // Mesh-pause *distribution* for this run, from the telemetry layer's
  // mesh_pass latency histogram (bucket deltas across the run; the
  // preload runtime's rings outlive a single soak). All zeros for
  // glibc, which the comparator's "up" checks skip.
  uint64_t PauseDelta[telemetry::kHistBuckets] = {};
  uint64_t PauseSamples = 0;
  for (uint32_t B = 0; B < telemetry::kHistBuckets; ++B) {
    PauseDelta[B] = After.MeshPassBuckets[B] >= Before.MeshPassBuckets[B]
                        ? After.MeshPassBuckets[B] - Before.MeshPassBuckets[B]
                        : 0;
    PauseSamples += PauseDelta[B];
  }
  W.number("mesh_pause_samples", static_cast<double>(PauseSamples));
  W.number("mesh_pause_p50_ns", histQuantileNs(PauseDelta, 0.50));
  W.number("mesh_pause_p99_ns", histQuantileNs(PauseDelta, 0.99));
  W.number("mesh_pause_p999_ns", histQuantileNs(PauseDelta, 0.999));
  W.number("rss_mean_mib", toMiB(Meter.meanCommittedBytes()));
  W.number("rss_peak_mib",
           toMiB(static_cast<double>(Meter.peakCommittedBytes())));
  W.number("rss_final_mib", toMiB(After.RssBytes));
  W.number("committed_mib", toMiB(After.CommittedBytes));
  W.number("in_use_mib", toMiB(After.InUseBytes));
  W.number("kernel_file_mib", toMiB(After.KernelFileBytes));
  W.number("meshed_away_pct", MeshedPct);
  W.number("frag_pct", FragPct);
  W.number("evictions", static_cast<double>(R.Evictions));
  W.number("defrag_passes", static_cast<double>(R.DefragPasses));
  W.number("defrag_moved_mib",
           toMiB(static_cast<double>(R.DefragMovedBytes)));
  W.number("get_mismatches", static_cast<double>(R.GetMismatches));
  // The RSS-over-time series, downsampled to a bounded row count:
  // [op_index, elapsed_seconds, committed_mib] triples.
  W.beginArray("rss_series");
  const std::vector<MemoryMeter::Sample> &Samples = Meter.samples();
  const size_t Stride =
      Samples.size() > kSeriesRowsMax
          ? (Samples.size() + kSeriesRowsMax - 1) / kSeriesRowsMax
          : 1;
  for (size_t I = 0; I < Samples.size(); I += Stride)
    W.arrayRow({static_cast<double>(Samples[I].OpIndex),
                Samples[I].ElapsedSeconds,
                toMiB(static_cast<double>(Samples[I].CommittedBytes))});
  if (!Samples.empty() && (Samples.size() - 1) % Stride != 0) {
    const MemoryMeter::Sample &Last = Samples.back();
    W.arrayRow({static_cast<double>(Last.OpIndex), Last.ElapsedSeconds,
                toMiB(static_cast<double>(Last.CommittedBytes))});
  }
  W.endArray();
  W.emit();
}

//===----------------------------------------------------------------------===//
// Driver.
//===----------------------------------------------------------------------===//

const char *GProfileName = "full";
const char *GWorkload = "all";
bool GBackendMesh = true;

/// The --faults canned storm. Ops chosen so degradation — not abort —
/// is the correct response everywhere it lands: commit refusals make
/// malloc return nullptr (KVStore sets fail cleanly), punch failures
/// defer, madvise failures are best-effort anyway. The bring-up ops
/// (memfd_create, ftruncate, mmap) are deliberately excluded: forked
/// children rebuild their arena with them, and a child that cannot is
/// *required* to abort (DESIGN.md "Failure policy"), which would be a
/// correct crash but a useless soak.
constexpr const char *kFaultStorm =
    "commit:ENOMEM:every=3;fallocate:ENOSPC:every=7;madvise:ENOMEM:every=5";

bool soakArg(const char *Arg) {
  if (strncmp(Arg, "--profile=", 10) == 0) {
    const char *Value = Arg + 10;
    for (const SoakProfile &P : kProfiles)
      if (strcmp(P.Name, Value) == 0) {
        GProfileName = P.Name;
        return true;
      }
    return false;
  }
  if (strncmp(Arg, "--workload=", 11) == 0) {
    const char *Value = Arg + 11;
    if (strcmp(Value, "kvstore") != 0 && strcmp(Value, "redis") != 0 &&
        strcmp(Value, "all") != 0)
      return false;
    GWorkload = Value;
    return true;
  }
  if (strcmp(Arg, "--backend=mesh") == 0) {
    GBackendMesh = true;
    return true;
  }
  if (strcmp(Arg, "--backend=system") == 0) {
    GBackendMesh = false;
    return true;
  }
  if (strcmp(Arg, "--faults") == 0) {
    GFaults = true;
    return true;
  }
  return false;
}

uint64_t runOne(const char *Workload, const SoakProfile &P) {
  // Fresh backend per run so in-process soaks age a heap that lived
  // exactly one soak; the system backend's state (shim or glibc) is
  // process-wide by nature.
  std::unique_ptr<HeapBackend> Backend;
  std::unique_ptr<StatsReader> Reader;
  Runtime *FaultsRuntime = nullptr;
  if (GBackendMesh) {
    auto MB = std::make_unique<MeshBackend>(benchMeshOptions());
    Reader = std::make_unique<RuntimeStatsReader>(MB->runtime());
    FaultsRuntime = &MB->runtime();
    Backend = std::move(MB);
  } else {
    Backend = std::make_unique<SystemBackend>();
    Reader = std::make_unique<SystemStatsReader>();
  }

  // The pause-distribution keys in the JSON need the telemetry layer's
  // mesh_pass histogram recording. Enable it in whichever copy of the
  // allocator actually serves this run: this binary's for in-process
  // heaps, the preloaded shim's (via its mallctl) for --backend=system
  // under LD_PRELOAD. Glibc runs have neither and emit zeros.
  if (GBackendMesh) {
    telemetry::enable();
  } else if (MallctlFn Ctl = preloadedMallctl()) {
    bool On = true;
    Ctl("telemetry.enabled", nullptr, nullptr, &On, sizeof(On));
  }

  // Cadence is irrelevant (the coordinator samples on wall time via
  // advanceOps()/sampleNow()); reserve the full series up front so the
  // meter never measures its own reallocation.
  MemoryMeter Meter(*Backend, uint64_t{1} << 40);
  Meter.reserveForOps(0, kMaxRssSamples + 8);

  // Arm the storm only after bring-up: arena construction deliberately
  // aborts on failure (nothing to degrade onto yet), which is correct
  // behavior but not what this soak measures.
  const uint64_t InjectedBefore = sys::faultsInjected();
  if (GFaults && !sys::configureFaults(kFaultStorm)) {
    fprintf(stderr, "bench_soak: internal error: canned fault storm "
                    "rejected by the parser\n");
    exit(5);
  }

  const AllocatorSnapshot Before = Reader->snapshot();
  SoakResult R = strcmp(Workload, "kvstore") == 0
                     ? runKvSoak(*Backend, Meter, P)
                     : runRedisSoak(*Backend, Meter, P);
  if (GFaults)
    sys::clearFaults();
  emitRun(Workload, P.Name, *Reader, Before, R, Meter);
  if (R.GetMismatches > 0)
    fprintf(stderr,
            "bench_soak: %llu get() fill-byte mismatches in %s — heap "
            "corruption under load\n",
            static_cast<unsigned long long>(R.GetMismatches), Workload);

  if (GFaults) {
    // The smoke contract: the storm must actually have fired and have
    // been degraded into clean OOM returns — a soak where nothing bit
    // proves nothing — and with the injector cleared the heap must
    // serve every request again.
    uint64_t OomReturns = 0;
    size_t Len = sizeof(OomReturns);
    if (FaultsRuntime->mallctl("faults.oom_returns", &OomReturns, &Len,
                               nullptr, 0) != 0 ||
        sys::faultsInjected() == InjectedBefore || OomReturns == 0) {
      fprintf(stderr,
              "bench_soak: --faults storm never bit (injected %llu, "
              "oom_returns %llu)\n",
              static_cast<unsigned long long>(sys::faultsInjected() -
                                              InjectedBefore),
              static_cast<unsigned long long>(OomReturns));
      exit(5);
    }
    for (int I = 0; I < 256; ++I) {
      void *Probe = Backend->malloc(4096);
      if (Probe == nullptr) {
        fprintf(stderr,
                "bench_soak: heap did not recover after the fault storm\n");
        exit(5);
      }
      Backend->free(Probe);
    }
    printf("  faults: injected %llu, oom_returns %llu, recovery probe "
           "clean\n",
           static_cast<unsigned long long>(sys::faultsInjected() -
                                           InjectedBefore),
           static_cast<unsigned long long>(OomReturns));
  }
  return R.GetMismatches;
}

} // namespace

int main(int argc, char **argv) {
  benchInit(argc, argv, soakArg);
  if (benchSmokeMode())
    GProfileName = "smoke";
  if (GFaults) {
    if (!GBackendMesh) {
      fprintf(stderr, "bench_soak: --faults requires --backend=mesh (the "
                      "system allocator has no injection seam)\n");
      return 2;
    }
    // The fault smoke is a KVStore-only pass: the Redis soak's set()
    // calls are load-bearing (phase 2 depends on phase 1's keys), so
    // dropped sets there measure nothing extra.
    GWorkload = "kvstore";
  }
  const SoakProfile *Profile = nullptr;
  for (const SoakProfile &P : kProfiles)
    if (strcmp(P.Name, GProfileName) == 0)
      Profile = &P;

  printHeader("Server soak",
              "long-haul KVStore/Redis aging with latency + RSS trajectory");
  printf("profile %s, backend %s%s (flags: --profile=full|ci|smoke "
         "--workload=kvstore|redis|all --backend=mesh|system --faults)\n\n",
         Profile->Name, GBackendMesh ? "mesh (in-process)" : "system malloc",
         GFaults ? ", fault storm armed" : "");

  uint64_t Mismatches = 0;
  if (strcmp(GWorkload, "kvstore") == 0 || strcmp(GWorkload, "all") == 0)
    Mismatches += runOne("kvstore", *Profile);
  if (strcmp(GWorkload, "redis") == 0 || strcmp(GWorkload, "all") == 0)
    Mismatches += runOne("redis", *Profile);
  return Mismatches > 0 ? 3 : 0;
}
