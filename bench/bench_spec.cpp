//===- bench_spec.cpp - Section 6.2.3 table regenerator -----------------------===//
///
/// Paper Section 6.2.3: across SPECint 2006, Mesh vs glibc is roughly
/// neutral (geomean -2.4% memory, +0.7% time) because most programs
/// barely exercise the allocator; the allocation-intensive
/// 400.perlbench is the exception, where Mesh cuts peak RSS 15%
/// (664 MB -> 564 MB) for 3.9% runtime overhead.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/FreeListAllocator.h"
#include "workloads/SpecWorkload.h"

#include "support/MathUtils.h"

#include <cstdio>
#include <vector>

using namespace mesh;

int main(int argc, char **argv) {
  benchInit(argc, argv);
  const double Scale = benchSmokeMode() ? 0.1 : 0.5;
  printHeader("Section 6.2.3 table",
              "SPECint-style suite: glibc-like baseline vs Mesh");

  printf("%-22s %9s %9s %9s | %9s %9s %9s\n", "benchmark", "glibc_s",
         "mesh_s", "time_d%", "glibc_MiB", "mesh_MiB", "mem_d%");

  std::vector<double> TimeRatios, MemRatios;
  double PerlTime = 0, PerlMem = 0;
  for (size_t I = 0; I < specBenchmarkNames().size(); ++I) {
    FreeListAllocator Glibc;
    const SpecBenchResult Base = runSpecBenchmark(I, Glibc, Scale);

    // Scale adjustment: real SPEC runs take minutes, so the 100 ms
    // mesh period amounts to continuous background compaction; our
    // stand-ins finish whole phases in ~10 ms, so shrink the period
    // proportionally to preserve meshing opportunities per phase.
    MeshOptions Opts = benchMeshOptions();
    Opts.MeshPeriodMs = 1;
    MeshBackend Mesh(Opts);
    const SpecBenchResult Ours = runSpecBenchmark(I, Mesh, Scale);

    const double TimeRatio = Ours.Seconds / Base.Seconds;
    const double MemRatio = static_cast<double>(Ours.PeakBytes) /
                            static_cast<double>(Base.PeakBytes);
    TimeRatios.push_back(TimeRatio);
    MemRatios.push_back(MemRatio);
    if (I == 0) { // perlbench-like is first
      PerlTime = TimeRatio;
      PerlMem = MemRatio;
    }
    printf("%-22s %9.3f %9.3f %8.1f%% | %9.1f %9.1f %8.1f%%\n", Base.Name,
           Base.Seconds, Ours.Seconds, 100.0 * (TimeRatio - 1.0),
           toMiB(static_cast<double>(Base.PeakBytes)),
           toMiB(static_cast<double>(Ours.PeakBytes)),
           100.0 * (MemRatio - 1.0));
    benchReportJson(
        "bench_spec", Base.Name,
        {{"glibc_s", Base.Seconds},
         {"mesh_s", Ours.Seconds},
         {"glibc_peak_mib", toMiB(static_cast<double>(Base.PeakBytes))},
         {"mesh_peak_mib", toMiB(static_cast<double>(Ours.PeakBytes))}});
  }

  printf("\nRESULT spec_geomean_memory_delta_pct %.1f (paper: -2.4)\n",
         100.0 * (geometricMean(MemRatios) - 1.0));
  printf("RESULT spec_geomean_time_delta_pct %.1f (paper: +0.7)\n",
         100.0 * (geometricMean(TimeRatios) - 1.0));
  printf("RESULT spec_perlbench_peak_reduction_pct %.1f (paper: 15)\n",
         100.0 * (1.0 - PerlMem));
  printf("RESULT spec_perlbench_time_overhead_pct %.1f (paper: 3.9)\n",
         100.0 * (PerlTime - 1.0));
  return 0;
}
