//===- bench_splitmesher.cpp - Lemma 5.3 regenerator ---------------------------===//
///
/// Validates the Section 5.3 guarantees on the real SplitMesher
/// implementation:
///  - quality: with t = k/q probes the matching found is at least
///    n(1-e^-2k)/4 w.h.p., and in practice close to the greedy/exact
///    maximum matching;
///  - runtime: probe counts scale as O(n/q) — linear in n for fixed
///    occupancy — never the O(n^2) of exhaustive search.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Matching.h"
#include "analysis/Probability.h"
#include "core/Mesher.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

using namespace mesh;

namespace {

/// Builds n detached MiniHeaps with r random live objects in b slots.
std::vector<std::unique_ptr<MiniHeap>>
randomMiniHeaps(size_t N, uint32_t B, uint32_t R, Rng &Random) {
  std::vector<std::unique_ptr<MiniHeap>> Spans;
  Spans.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    auto MH = std::make_unique<MiniHeap>(static_cast<uint32_t>(I), 1,
                                         kPageSize / B, B, 0, true);
    uint32_t Placed = 0;
    while (Placed < R)
      Placed += MH->bitmap().tryToSet(Random.inRange(0, B - 1));
    Spans.push_back(std::move(MH));
  }
  return Spans;
}

/// Mirrors the spans into the analysis graph model for exact reference.
analysis::MeshingGraph
toGraph(const std::vector<std::unique_ptr<MiniHeap>> &Spans, uint32_t B) {
  std::vector<analysis::SpanString> Strings;
  for (const auto &MH : Spans) {
    analysis::SpanString S(B);
    MH->bitmap().forEachSet([&](uint32_t I) { S.setBit(I); });
    Strings.push_back(S);
  }
  return analysis::MeshingGraph(Strings);
}

} // namespace

int main(int argc, char **argv) {
  benchInit(argc, argv);
  printHeader("Lemma 5.3", "SplitMesher matching quality and probe budget");

  // --- Quality vs occupancy at fixed t=64 (the shipped default). ---
  printf("%6s %6s %10s %8s %10s %10s %10s %10s\n", "n", "r/b", "q", "t",
         "split", "greedy", "lemma", "probes");
  Rng Random(5);
  const uint32_t B = 32;
  for (uint32_t R : {2u, 4u, 6u, 8u, 10u, 12u}) {
    const size_t N = benchScaled(1000, 4);
    const double Q = analysis::pairMeshProbability(B, R, R);
    auto Spans = randomMiniHeaps(N, B, R, Random);
    InternalVector<MiniHeap *> Candidates;
    for (auto &S : Spans)
      Candidates.push_back(S.get());
    InternalVector<MeshPair> Pairs;
    uint64_t Probes = 0;
    splitMesher(Candidates, kDefaultMeshProbes, Random, Pairs, &Probes);
    const double K = kDefaultMeshProbes * Q;
    const double Lemma = N * (1.0 - std::exp(-2.0 * K)) / 4.0;
    const size_t Greedy = analysis::greedyMatching(toGraph(Spans, B));
    printf("%6zu %3u/%-2u %10.4f %8u %10zu %10zu %10.0f %10llu\n", N, R, B,
           Q, kDefaultMeshProbes, Pairs.size(), Greedy, Lemma,
           static_cast<unsigned long long>(Probes));
  }

  // --- Runtime scaling: probes grow linearly in n (O(n/q)). ---
  printf("\nprobe scaling at r=10/32 (q ~ 0.01), t = 64:\n");
  printf("%8s %12s %14s\n", "n", "probes", "probes/n");
  for (size_t Full : {250u, 500u, 1000u, 2000u, 4000u}) {
    const size_t N = benchScaled(Full, 4);
    auto Spans = randomMiniHeaps(N, B, 10, Random);
    InternalVector<MiniHeap *> Candidates;
    for (auto &S : Spans)
      Candidates.push_back(S.get());
    InternalVector<MeshPair> Pairs;
    uint64_t Probes = 0;
    splitMesher(Candidates, kDefaultMeshProbes, Random, Pairs, &Probes);
    printf("%8zu %12llu %14.1f\n", N,
           static_cast<unsigned long long>(Probes),
           static_cast<double>(Probes) / N);
  }

  // --- Quality vs exact optimum on small instances. ---
  const int Trials = benchSmokeMode() ? 5 : 30;
  printf("\nSplitMesher vs exact maximum matching (n=20, %d trials):\n",
         Trials);
  size_t SplitTotal = 0, ExactTotal = 0;
  for (int Trial = 0; Trial < Trials; ++Trial) {
    auto Spans = randomMiniHeaps(20, B, 8, Random);
    InternalVector<MiniHeap *> Candidates;
    for (auto &S : Spans)
      Candidates.push_back(S.get());
    InternalVector<MeshPair> Pairs;
    splitMesher(Candidates, kDefaultMeshProbes, Random, Pairs);
    SplitTotal += Pairs.size();
    ExactTotal += analysis::maxMatchingExact(toGraph(Spans, B));
  }
  printf("RESULT splitmesher_vs_exact_pct %.1f (Lemma guarantees ~50 "
         "with t=k/q; t=64 lands well above it)\n",
         100.0 * SplitTotal / (ExactTotal ? ExactTotal : 1));
  benchReportJson("bench_splitmesher", "",
                  {{"splitmesher_vs_exact_pct",
                    100.0 * SplitTotal / (ExactTotal ? ExactTotal : 1)}});
  return 0;
}
