//===- bench_trace.cpp - Trace-replay allocator comparison --------------------===//
///
/// Methodology harness (not a specific paper figure): replays the
/// canonical allocation-stream shapes — uniform churn, fragmented
/// survivors, generational phases — against all four allocator
/// configurations, reporting peak/final RSS and replay throughput.
/// This is the "identical workload, different allocator" experimental
/// design underlying all of Section 6, reduced to its essentials.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/FreeListAllocator.h"
#include "baseline/SizeClassAllocator.h"
#include "workloads/AllocTrace.h"

#include <cstdio>

using namespace mesh;

namespace {

void runTrace(const char *Name, const AllocTrace &Trace) {
  printf("\ntrace %-14s (%zu ops, %.1f MiB live at end)\n", Name,
         Trace.ops().size(), toMiB(Trace.liveBytesAtEnd()));
  printf("  %-22s %10s %10s %10s %10s\n", "allocator", "peak_MiB",
         "final_MiB", "Mops/s", "final/live");

  auto Report = [&](HeapBackend &Backend) {
    const ReplayResult R = replayTrace(Trace, Backend, /*TickEvery=*/4096);
    Backend.flush();
    const size_t Final = R.FinalCommittedBytes;
    printf("  %-22s %10.1f %10.1f %10.1f %10.2f\n", Backend.name(),
           toMiB(R.PeakCommittedBytes), toMiB(Final),
           Trace.ops().size() / R.Seconds / 1e6,
           R.LiveBytesAtEnd
               ? static_cast<double>(Final) / R.LiveBytesAtEnd
               : 0.0);
    char Config[64];
    snprintf(Config, sizeof(Config), "%s/%s", Name, Backend.name());
    benchReportJson(
        "bench_trace", Config,
        {{"ops_per_sec", Trace.ops().size() / R.Seconds},
         {"peak_rss_mib", toMiB(static_cast<double>(R.PeakCommittedBytes))},
         {"final_rss_mib", toMiB(static_cast<double>(Final))}});
  };

  // All span-based allocators get the same dirty-page budget, and the
  // Mesh configs mesh on the tick cadence (traces replay in
  // milliseconds, far inside the production 100 ms rate limit).
  const size_t DirtyBudget = 8 * 1024 * 1024;
  {
    FreeListAllocator Glibc;
    Report(Glibc);
  }
  {
    SizeClassAllocator Jemalloc(size_t{4} << 30, DirtyBudget);
    Report(Jemalloc);
  }
  {
    MeshOptions Opts = benchMeshOptions();
    Opts.MeshPeriodMs = 1;
    MeshBackend Mesh(Opts, "Mesh");
    Report(Mesh);
  }
  {
    MeshOptions Opts = benchMeshOptions(/*Meshing=*/false);
    Opts.MeshPeriodMs = 1;
    MeshBackend NoMesh(Opts, "Mesh (no meshing)");
    Report(NoMesh);
  }
}

} // namespace

int main(int argc, char **argv) {
  benchInit(argc, argv);
  printHeader("Trace replay", "identical streams across four allocators");
  runTrace("churn", AllocTrace::churn(benchScaled(400000), benchScaled(20000),
                                      16, 2048, 101));
  runTrace("fragmented", AllocTrace::fragmented(benchScaled(64 * 256), 16, 16));
  runTrace("generational",
           AllocTrace::generational(16, benchScaled(30000), 16, 512, 103));
  return 0;
}
