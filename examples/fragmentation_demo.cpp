//===- fragmentation_demo.cpp - Beating the Robson bound ------------------===//
///
/// The paper's Section 1 motivation, live: a Robson-style adversary
/// allocates waves of objects and keeps one survivor per page-sized
/// group, then moves to a different size class. A non-compacting
/// allocator's footprint ratchets upward (bounded only by the
/// log2(max/min) Robson factor); Mesh compacts each wave's wreckage
/// and stays near the live-data size.
///
/// Build and run:  ./examples/fragmentation_demo
///
//===----------------------------------------------------------------------===//

#include "baseline/FreeListAllocator.h"
#include "baseline/HeapBackend.h"

#include <cstdio>
#include <vector>

using namespace mesh;

namespace {

struct AdversaryResult {
  size_t PeakBytes;
  size_t FinalBytes;
  size_t LiveBytes;
};

AdversaryResult runAdversary(HeapBackend &Heap, const char *Label) {
  std::vector<void *> Survivors;
  size_t Live = 0, Peak = 0;
  // Waves of doubling sizes: 16B ... 2KB (the meshable classes).
  for (size_t Size = 16; Size <= 2048; Size *= 2) {
    const size_t PerGroup = 4096 / Size; // one survivor per page-ish
    std::vector<void *> Wave;
    const size_t WaveBytes = 24 * 1024 * 1024;
    for (size_t I = 0; I < WaveBytes / Size; ++I)
      Wave.push_back(Heap.malloc(Size));
    if (Heap.committedBytes() > Peak)
      Peak = Heap.committedBytes();
    for (size_t I = 0; I < Wave.size(); ++I) {
      if (I % PerGroup == PerGroup / 2) {
        Survivors.push_back(Wave[I]);
        Live += Size;
      } else {
        Heap.free(Wave[I]);
      }
    }
    Heap.flush();
    printf("  [%s] after %4zu-byte wave: %6.1f MiB heap, %4.1f MiB live\n",
           Label, Size, Heap.committedBytes() / 1048576.0,
           Live / 1048576.0);
  }
  const AdversaryResult Result{Peak, Heap.committedBytes(), Live};
  for (void *P : Survivors)
    Heap.free(P);
  return Result;
}

} // namespace

int main() {
  printf("Robson-style fragmentation adversary "
         "(one survivor per group, size classes 16B..2KB):\n\n");

  printf("glibc-like freelist (non-compacting):\n");
  FreeListAllocator Glibc;
  const AdversaryResult Base = runAdversary(Glibc, "glibc");

  printf("\nMesh:\n");
  MeshOptions Options;
  Options.ArenaBytes = size_t{2} << 30;
  Options.MeshPeriodMs = 10;
  Options.MaxDirtyBytes = 0;
  MeshBackend Mesh(Options);
  const AdversaryResult Ours = runAdversary(Mesh, "mesh");

  printf("\nsummary (live data at end: %.1f MiB):\n", Ours.LiveBytes / 1048576.0);
  printf("  glibc-like final footprint: %6.1f MiB (%.1fx live)\n",
         Base.FinalBytes / 1048576.0,
         static_cast<double>(Base.FinalBytes) / Base.LiveBytes);
  printf("  Mesh       final footprint: %6.1f MiB (%.1fx live)\n",
         Ours.FinalBytes / 1048576.0,
         static_cast<double>(Ours.FinalBytes) / Ours.LiveBytes);
  printf("\nthe classical Robson bound permits up to log2(2048/16) = 7x\n"
         "blowup for this size range; Mesh's randomized meshing avoids it\n"
         "with high probability (paper Sections 1, 5).\n");
  return 0;
}
