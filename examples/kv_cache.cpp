//===- kv_cache.cpp - Redis-style cache on Mesh ---------------------------===//
///
/// The Section 6.2.2 scenario as an application: an LRU key/value
/// cache whose eviction pattern riddles the heap with holes. With a
/// non-compacting allocator those holes pin physical pages; with Mesh
/// they mesh away — no application-level "defragmentation" required.
///
/// Build and run:  ./examples/kv_cache
///
//===----------------------------------------------------------------------===//

#include "baseline/SizeClassAllocator.h"
#include "workloads/KVStore.h"

#include <cstdio>
#include <string>

using namespace mesh;

namespace {

void runCache(HeapBackend &Heap, const char *Label) {
  // 20 MB budget, 200k inserts of ~300 B entries: heavy LRU churn.
  KVStore Cache(Heap, 20 * 1024 * 1024);
  const std::string Value(280, 'v');
  for (int I = 0; I < 200000; ++I) {
    Cache.set("user:" + std::to_string(I * 2654435761u % 1000000), Value);
    if (I % 50000 == 49999) {
      Heap.flush(); // Mesh: compaction; baseline: no-op
      printf("  [%s] %6d inserts: %5.1f MiB heap for %5.1f MiB payload "
             "(%llu evictions)\n",
             Label, I + 1, Heap.committedBytes() / 1048576.0,
             Cache.payloadBytes() / 1048576.0,
             static_cast<unsigned long long>(Cache.evictionCount()));
    }
  }
  Heap.flush();
  printf("  [%s] final: %.1f MiB heap for %.1f MiB payload\n", Label,
         Heap.committedBytes() / 1048576.0,
         Cache.payloadBytes() / 1048576.0);
}

} // namespace

int main() {
  printf("jemalloc-like baseline:\n");
  SizeClassAllocator Baseline(size_t{2} << 30);
  runCache(Baseline, "baseline");

  printf("\nMesh:\n");
  MeshOptions Options;
  Options.ArenaBytes = size_t{2} << 30;
  Options.MeshPeriodMs = 10;
  MeshBackend Mesh(Options);
  runCache(Mesh, "mesh");

  const auto &Stats = Mesh.runtime().global().stats();
  printf("\nmesh stats: %llu meshes, %llu pages returned to the OS, "
         "longest pause %.2f ms\n",
         static_cast<unsigned long long>(Stats.MeshCount.load()),
         static_cast<unsigned long long>(Stats.PagesMeshed.load()),
         Stats.MaxMeshPassNs.load() * 1e-6);
  return 0;
}
