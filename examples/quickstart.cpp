//===- quickstart.cpp - Mesh in five minutes -----------------------------===//
///
/// The Figure 1 walk-through, live: allocate small objects, free most
/// of them so spans are sparse and non-overlapping, then watch meshing
/// merge pairs of virtual spans onto shared physical spans — object
/// addresses and contents untouched, physical pages returned to the OS.
///
/// Build and run:  ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "mesh/mesh.h"

#include <cstdio>
#include <cstring>
#include <vector>

int main() {
  // An instance heap with explicit control (the C API in mesh/mesh.h
  // offers the same over the process-default heap).
  mesh::MeshOptions Options;
  Options.ArenaBytes = size_t{1} << 30;
  Options.MeshPeriodMs = ~uint64_t{0}; // mesh only when we say so
  Options.MaxDirtyBytes = 0;           // return pages eagerly (demo)
  mesh::Runtime Heap(Options);

  // 1. Allocate 32 spans' worth of 16-byte objects...
  printf("allocating 8192 x 16B objects...\n");
  std::vector<char *> Objects;
  for (int I = 0; I < 32 * 256; ++I) {
    auto *P = static_cast<char *>(Heap.malloc(16));
    snprintf(P, 16, "obj-%d", I);
    Objects.push_back(P);
  }
  printf("  heap: %zu KiB\n", Heap.committedBytes() / 1024);

  // 2. ...free 31 of every 32 (fragmentation: each span keeps a few
  //    randomly-placed survivors).
  printf("freeing 31 of every 32 objects...\n");
  std::vector<char *> Survivors;
  for (size_t I = 0; I < Objects.size(); ++I) {
    if (I % 32 == 0)
      Survivors.push_back(Objects[I]);
    else
      Heap.free(Objects[I]);
  }
  Heap.localHeap().releaseAll(); // hand spans back to the global heap
  const size_t Fragmented = Heap.committedBytes();
  printf("  heap: %zu KiB for %zu KiB of live data\n", Fragmented / 1024,
         Survivors.size() * 16 / 1024);

  // 3. Mesh: pairs of spans whose objects do not overlap merge onto
  //    one physical span; the other physical span goes back to the OS.
  size_t Freed = 0, Pass = 0;
  while (size_t Now = Heap.meshNow()) {
    Freed += Now;
    printf("  mesh pass %zu: released %zu KiB\n", ++Pass, Now / 1024);
  }
  printf("meshing released %zu KiB total; heap now %zu KiB\n", Freed / 1024,
         Heap.committedBytes() / 1024);

  // 4. Compaction without relocation: every pointer still works.
  for (size_t I = 0; I < Survivors.size(); ++I) {
    char Expect[16];
    snprintf(Expect, sizeof(Expect), "obj-%zu", I * 32);
    if (strcmp(Survivors[I], Expect) != 0) {
      printf("CORRUPTION at survivor %zu!\n", I);
      return 1;
    }
  }
  printf("all %zu survivors intact at their original addresses\n",
         Survivors.size());

  // 5. Introspection via the mallctl-style API.
  uint64_t Meshes = 0;
  size_t Len = sizeof(Meshes);
  Heap.mallctl("stats.mesh_count", &Meshes, &Len, nullptr, 0);
  printf("stats.mesh_count = %llu\n",
         static_cast<unsigned long long>(Meshes));

  for (char *P : Survivors)
    Heap.free(P);
  return 0;
}
