//===- string_churn.cpp - The Ruby workload as an application -------------===//
///
/// Section 6.3's motivating pattern: accumulate results (strings) from
/// an API, periodically filter most of them out, with result sizes
/// growing over time. Regular allocation patterns like this defeat
/// naive meshing; Mesh's randomized allocation keeps pages meshable.
/// Run compares Mesh with randomization on and off.
///
/// Build and run:  ./examples/string_churn
///
//===----------------------------------------------------------------------===//

#include "baseline/HeapBackend.h"
#include "workloads/MemoryMeter.h"
#include "workloads/RubyWorkload.h"

#include <cstdio>

using namespace mesh;

namespace {

void runOne(bool Randomized) {
  MeshOptions Options;
  Options.ArenaBytes = size_t{2} << 30;
  Options.Randomized = Randomized;
  Options.MeshPeriodMs = 10;
  MeshBackend Backend(Options, Randomized ? "rand" : "norand");

  RubyWorkloadConfig Config;
  Config.BytesPerRound = 8 * 1024 * 1024;
  Config.Rounds = 7;
  MemoryMeter Meter(Backend, Config.OpsPerSample);
  const RubyWorkloadResult Result = runRubyWorkload(Backend, Meter, Config);

  printf("randomization %-3s: mean heap %6.1f MiB, final %6.1f MiB "
         "(live payload %.1f MiB), %.2f s\n",
         Randomized ? "on" : "off",
         Meter.meanCommittedBytes() / 1048576.0,
         Result.FinalCommittedBytes / 1048576.0,
         Result.FinalLiveBytes / 1048576.0, Result.Seconds);
}

} // namespace

int main() {
  printf("string accumulate/filter workload (Section 6.3 pattern):\n\n");
  runOne(/*Randomized=*/true);
  runOne(/*Randomized=*/false);
  printf("\nrandomized allocation is what lets meshing keep the heap near "
         "the live payload.\n");
  return 0;
}
