//===- CliqueCover.cpp - Minimum clique cover ----------------------------------===//

#include "analysis/CliqueCover.h"

#include "support/Log.h"

#include <vector>

namespace mesh {
namespace analysis {

size_t minCliqueCoverExact(const MeshingGraph &G) {
  const size_t N = G.size();
  if (N > 16)
    fatalError("minCliqueCoverExact limited to 16 nodes (got %zu)", N);
  if (N == 0)
    return 0;
  const uint32_t Full = (uint32_t{1} << N) - 1;

  std::vector<uint32_t> Adj(N, 0);
  for (size_t U = 0; U < N; ++U)
    for (size_t V = 0; V < N; ++V)
      if (U != V && G.adjacent(U, V))
        Adj[U] |= uint32_t{1} << V;

  // IsClique[mask]: every pair in mask is adjacent. Built incrementally
  // from the lowest vertex.
  std::vector<bool> IsClique(Full + 1, false);
  IsClique[0] = true;
  for (uint32_t Mask = 1; Mask <= Full; ++Mask) {
    const uint32_t Low = Mask & (~Mask + 1);
    const uint32_t Rest = Mask ^ Low;
    const unsigned LowIdx = __builtin_ctz(Low);
    IsClique[Mask] = IsClique[Rest] && (Rest & ~Adj[LowIdx]) == 0;
  }

  // Cover[S]: minimum cliques to cover S. Enumerate sub-masks of S
  // containing S's lowest vertex (canonical 3^n DP).
  std::vector<uint8_t> Cover(Full + 1, 255);
  Cover[0] = 0;
  for (uint32_t S = 1; S <= Full; ++S) {
    const uint32_t Low = S & (~S + 1);
    uint8_t Best = 255;
    // Iterate sub-masks of S that include Low.
    for (uint32_t Sub = S; Sub != 0; Sub = (Sub - 1) & S) {
      if ((Sub & Low) == 0 || !IsClique[Sub])
        continue;
      const uint8_t Candidate = static_cast<uint8_t>(1 + Cover[S ^ Sub]);
      if (Candidate < Best)
        Best = Candidate;
    }
    Cover[S] = Best;
  }
  return Cover[Full];
}

size_t greedyCliqueCover(const MeshingGraph &G) {
  const size_t N = G.size();
  std::vector<std::vector<size_t>> Cliques;
  for (size_t U = 0; U < N; ++U) {
    bool Placed = false;
    for (auto &Clique : Cliques) {
      bool Fits = true;
      for (size_t Member : Clique) {
        if (!G.adjacent(U, Member)) {
          Fits = false;
          break;
        }
      }
      if (Fits) {
        Clique.push_back(U);
        Placed = true;
        break;
      }
    }
    if (!Placed)
      Cliques.push_back({U});
  }
  return Cliques.size();
}

} // namespace analysis
} // namespace mesh
