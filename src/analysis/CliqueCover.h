//===- CliqueCover.h - Minimum clique cover ----------------------*- C++ -*-===//
///
/// \file
/// MinCliqueCover on meshing graphs (paper Section 5.1): decomposing
/// the graph into k disjoint cliques frees n-k strings. The general
/// problem is NP-hard (and inapproximable), which is exactly why Mesh
/// solves Matching instead; the exact solver here (exponential, small
/// n only) exists so tests and benchmarks can quantify how little is
/// lost by meshing pairs rather than full cliques.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_ANALYSIS_CLIQUECOVER_H
#define MESH_ANALYSIS_CLIQUECOVER_H

#include "analysis/MeshingGraph.h"

#include <cstddef>

namespace mesh {
namespace analysis {

/// Exact minimum clique cover size via subset DP; requires n <= 16.
size_t minCliqueCoverExact(const MeshingGraph &G);

/// Greedy cover: first-fit each node into an existing clique.
size_t greedyCliqueCover(const MeshingGraph &G);

} // namespace analysis
} // namespace mesh

#endif // MESH_ANALYSIS_CLIQUECOVER_H
