//===- Matching.cpp - Matchings on meshing graphs ------------------------------===//

#include "analysis/Matching.h"

#include "support/Log.h"

#include <cstring>
#include <vector>

namespace mesh {
namespace analysis {

size_t maxMatchingExact(const MeshingGraph &G) {
  const size_t N = G.size();
  if (N > 24)
    fatalError("maxMatchingExact limited to 24 nodes (got %zu)", N);
  if (N == 0)
    return 0;
  // Adjacency as one word per node.
  std::vector<uint32_t> Adj(N, 0);
  for (size_t U = 0; U < N; ++U)
    for (size_t V = 0; V < N; ++V)
      if (U != V && G.adjacent(U, V))
        Adj[U] |= uint32_t{1} << V;

  // Memo[S] = max matching using only vertices in S.
  std::vector<int8_t> Memo(size_t{1} << N, -1);
  Memo[0] = 0;
  // Iterative DP in increasing subset order: the lowest vertex in S is
  // either unmatched or matched to some neighbor also in S.
  for (uint32_t S = 1; S < (uint32_t{1} << N); ++S) {
    const uint32_t Low = S & (~S + 1); // lowest set bit
    const uint32_t Rest = S ^ Low;
    int8_t Best = Memo[Rest]; // leave Low unmatched
    const unsigned LowIdx = __builtin_ctz(Low);
    uint32_t Partners = Adj[LowIdx] & Rest;
    while (Partners != 0) {
      const uint32_t P = Partners & (~Partners + 1);
      Partners ^= P;
      const int8_t With = static_cast<int8_t>(1 + Memo[Rest ^ P]);
      if (With > Best)
        Best = With;
    }
    Memo[S] = Best;
  }
  return static_cast<size_t>(Memo[(size_t{1} << N) - 1]);
}

size_t greedyMatching(const MeshingGraph &G) {
  const size_t N = G.size();
  std::vector<bool> Used(N, false);
  size_t Matched = 0;
  for (size_t U = 0; U < N; ++U) {
    if (Used[U])
      continue;
    for (size_t V = U + 1; V < N; ++V) {
      if (Used[V] || !G.adjacent(U, V))
        continue;
      Used[U] = Used[V] = true;
      ++Matched;
      break;
    }
  }
  return Matched;
}

} // namespace analysis
} // namespace mesh
