//===- Matching.h - Matchings on meshing graphs ------------------*- C++ -*-===//
///
/// \file
/// Reference matching algorithms for evaluating SplitMesher (paper
/// Section 5.2-5.3): an exact maximum matching (bitmask DP, for small
/// n) and a greedy 1/2-approximation (for large n). SplitMesher's
/// quality is reported as a fraction of these reference values by the
/// bench_splitmesher harness.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_ANALYSIS_MATCHING_H
#define MESH_ANALYSIS_MATCHING_H

#include "analysis/MeshingGraph.h"

#include <cstddef>

namespace mesh {
namespace analysis {

/// Exact maximum matching size via subset DP; requires n <= 24.
size_t maxMatchingExact(const MeshingGraph &G);

/// Greedy maximal matching size (>= 1/2 of optimal).
size_t greedyMatching(const MeshingGraph &G);

} // namespace analysis
} // namespace mesh

#endif // MESH_ANALYSIS_MATCHING_H
