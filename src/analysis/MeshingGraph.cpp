//===- MeshingGraph.cpp - Spans-as-strings graph model ------------------------===//

#include "analysis/MeshingGraph.h"

#include <cassert>

namespace mesh {
namespace analysis {

SpanString SpanString::random(uint32_t B, uint32_t R, Rng &Random) {
  assert(R <= B && "cannot place more objects than offsets");
  SpanString S(B);
  uint32_t Placed = 0;
  while (Placed < R) {
    const uint32_t I = Random.inRange(0, B - 1);
    if (!S.bit(I)) {
      S.setBit(I);
      ++Placed;
    }
  }
  return S;
}

MeshingGraph::MeshingGraph(const std::vector<SpanString> &Spans)
    : N(Spans.size()) {
  const size_t WordsPerRow = (N + 63) / 64;
  Rows.assign(N, std::vector<uint64_t>(WordsPerRow, 0));
  for (size_t U = 0; U < N; ++U) {
    for (size_t V = U + 1; V < N; ++V) {
      if (Spans[U].meshesWith(Spans[V])) {
        Rows[U][V / 64] |= uint64_t{1} << (V % 64);
        Rows[V][U / 64] |= uint64_t{1} << (U % 64);
      }
    }
  }
}

size_t MeshingGraph::degree(size_t U) const {
  size_t D = 0;
  for (uint64_t W : Rows[U])
    D += __builtin_popcountll(W);
  return D;
}

size_t MeshingGraph::edgeCount() const {
  size_t Total = 0;
  for (size_t U = 0; U < N; ++U)
    Total += degree(U);
  return Total / 2;
}

uint64_t MeshingGraph::triangleCount() const {
  // For each edge (u,v), count common neighbors w > v via row ANDs.
  uint64_t Triangles = 0;
  for (size_t U = 0; U < N; ++U) {
    for (size_t V = U + 1; V < N; ++V) {
      if (!adjacent(U, V))
        continue;
      // Count w > v adjacent to both.
      for (size_t Word = V / 64; Word < Rows[U].size(); ++Word) {
        uint64_t Common = Rows[U][Word] & Rows[V][Word];
        if (Word == V / 64)
          Common &= ~((uint64_t{2} << (V % 64)) - 1); // strictly above V
        Triangles += __builtin_popcountll(Common);
      }
    }
  }
  return Triangles;
}

std::vector<SpanString> randomSpans(size_t N, uint32_t B, uint32_t R,
                                    Rng &Random) {
  std::vector<SpanString> Spans;
  Spans.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Spans.push_back(SpanString::random(B, R, Random));
  return Spans;
}

} // namespace analysis
} // namespace mesh
