//===- MeshingGraph.h - Spans-as-strings graph model -------------*- C++ -*-===//
///
/// \file
/// The formal model from paper Section 5.1: spans are binary strings
/// of length b (bit i = offset i occupied); two strings mesh iff their
/// dot product is zero; the meshing graph has a node per string and an
/// edge per meshable pair (Figure 5). This module builds such graphs
/// from synthetic random spans so the Section 5 claims (triangle
/// scarcity, matching quality, clique-cover hardness) can be validated
/// without touching the allocator.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_ANALYSIS_MESHINGGRAPH_H
#define MESH_ANALYSIS_MESHINGGRAPH_H

#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mesh {
namespace analysis {

/// A span's allocation state as a binary string of length <= 256.
struct SpanString {
  uint64_t Words[4] = {0, 0, 0, 0};
  uint32_t Length = 0; ///< b: number of offsets in the span.

  explicit SpanString(uint32_t B = 0) : Length(B) {}

  void setBit(uint32_t I) { Words[I / 64] |= uint64_t{1} << (I % 64); }
  bool bit(uint32_t I) const {
    return (Words[I / 64] >> (I % 64)) & 1;
  }
  uint32_t popcount() const {
    return __builtin_popcountll(Words[0]) + __builtin_popcountll(Words[1]) +
           __builtin_popcountll(Words[2]) + __builtin_popcountll(Words[3]);
  }

  /// Definition 5.1: sum_i s1(i)*s2(i) == 0.
  bool meshesWith(const SpanString &Other) const {
    return ((Words[0] & Other.Words[0]) | (Words[1] & Other.Words[1]) |
            (Words[2] & Other.Words[2]) | (Words[3] & Other.Words[3])) == 0;
  }

  /// A string of length \p B with exactly \p R uniformly random bits.
  static SpanString random(uint32_t B, uint32_t R, Rng &Random);
};

/// Dense meshing graph over a set of span strings.
class MeshingGraph {
public:
  explicit MeshingGraph(const std::vector<SpanString> &Spans);

  size_t size() const { return N; }
  bool adjacent(size_t U, size_t V) const {
    return (Rows[U][V / 64] >> (V % 64)) & 1;
  }
  size_t degree(size_t U) const;
  size_t edgeCount() const;

  /// Number of triangles (3-cliques) — the quantity Section 5.2 argues
  /// is far below the independent-edge expectation.
  uint64_t triangleCount() const;

  /// Adjacency row as packed bits (for the matching algorithms).
  const std::vector<uint64_t> &row(size_t U) const { return Rows[U]; }

private:
  size_t N;
  std::vector<std::vector<uint64_t>> Rows;
};

/// Convenience: n random spans of length b with r live objects each.
std::vector<SpanString> randomSpans(size_t N, uint32_t B, uint32_t R,
                                    Rng &Random);

} // namespace analysis
} // namespace mesh

#endif // MESH_ANALYSIS_MESHINGGRAPH_H
