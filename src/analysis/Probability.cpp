//===- Probability.cpp - Closed-form meshing probabilities ---------------------===//

#include "analysis/Probability.h"

#include <cmath>

namespace mesh {
namespace analysis {

double logChoose(unsigned N, unsigned K) {
  if (K > N)
    return -INFINITY;
  return std::lgamma(N + 1.0) - std::lgamma(K + 1.0) -
         std::lgamma(N - K + 1.0);
}

double pairMeshProbability(unsigned B, unsigned R1, unsigned R2) {
  if (R1 + R2 > B)
    return 0.0;
  return std::exp(logChoose(B - R1, R2) - logChoose(B, R2));
}

double tripleMeshProbability(unsigned B, unsigned R1, unsigned R2,
                             unsigned R3) {
  if (R1 + R2 + R3 > B)
    return 0.0;
  const double PairPart = logChoose(B - R1, R2) - logChoose(B, R2);
  const double TriplePart = logChoose(B - R1 - R2, R3) - logChoose(B, R3);
  return std::exp(PairPart + TriplePart);
}

static double choose(double N, double K) {
  return std::exp(std::lgamma(N + 1.0) - std::lgamma(K + 1.0) -
                  std::lgamma(N - K + 1.0));
}

double expectedTriangles(unsigned N, unsigned B, unsigned R) {
  return choose(N, 3) * tripleMeshProbability(B, R, R, R);
}

double expectedTrianglesIndependent(unsigned N, unsigned B, unsigned R) {
  const double Q = pairMeshProbability(B, R, R);
  return choose(N, 3) * Q * Q * Q;
}

double log10AllSameOffsetProbability(unsigned B, unsigned N) {
  if (N <= 1 || B == 0)
    return 0.0;
  return -(static_cast<double>(N) - 1.0) * std::log10(static_cast<double>(B));
}

double robsonFactor(uint64_t MinSize, uint64_t MaxSize) {
  return std::log2(static_cast<double>(MaxSize) /
                   static_cast<double>(MinSize));
}

} // namespace analysis
} // namespace mesh
