//===- Probability.h - Closed-form meshing probabilities ---------*- C++ -*-===//
///
/// \file
/// The combinatorial quantities quoted in the paper:
///  - Section 2.2: the probability that n randomly-placed single-object
///    spans all collide at one offset, (1/b)^(n-1) — e.g. 10^-152 for
///    64 spans of 256 slots;
///  - Section 5.2: pairwise and triple mesh probabilities and expected
///    triangle counts, dependent vs. (incorrectly) independent models —
///    e.g. <2 vs 167 triangles for b=32, r=10, n=1000;
///  - Section 1: the Robson worst-case fragmentation factor,
///    log2(largest/smallest object size).
///
//===----------------------------------------------------------------------===//

#ifndef MESH_ANALYSIS_PROBABILITY_H
#define MESH_ANALYSIS_PROBABILITY_H

#include <cstdint>

namespace mesh {
namespace analysis {

/// ln C(n, k); 0 for k > n or k < 0 handled as -inf -> probability 0.
double logChoose(unsigned N, unsigned K);

/// Probability two random spans of length b with r1 and r2 objects
/// mesh: C(b-r1, r2) / C(b, r2).
double pairMeshProbability(unsigned B, unsigned R1, unsigned R2);

/// Probability three random spans all mesh mutually (Section 5.2):
///   C(b-r1, r2)/C(b, r2) * C(b-r1-r2, r3)/C(b, r3).
double tripleMeshProbability(unsigned B, unsigned R1, unsigned R2,
                             unsigned R3);

/// Expected triangles among n random r-occupied spans (true model).
double expectedTriangles(unsigned N, unsigned B, unsigned R);

/// Expected triangles if edges were independent with probability
/// q = pairMeshProbability (the flawed DRM model, Section 7).
double expectedTrianglesIndependent(unsigned N, unsigned B, unsigned R);

/// log10 of the probability that n single-object spans are pairwise
/// unmeshable because every object sits at the same offset:
/// (n-1) * log10(1/b) (Section 2.2).
double log10AllSameOffsetProbability(unsigned B, unsigned N);

/// Robson worst-case fragmentation factor: log2(MaxSize/MinSize).
double robsonFactor(uint64_t MinSize, uint64_t MaxSize);

} // namespace analysis
} // namespace mesh

#endif // MESH_ANALYSIS_PROBABILITY_H
