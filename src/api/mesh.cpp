//===- mesh.cpp - Public Mesh API -------------------------------------------===//

#include "mesh/mesh.h"

#include "core/Runtime.h"

#include <cstdlib>
#include <new>

namespace mesh {

static MeshOptions optionsFromEnvironment() {
  MeshOptions Opts;
  if (getenv("MESH_NO_MESH") != nullptr)
    Opts.MeshingEnabled = false;
  if (getenv("MESH_NO_RAND") != nullptr)
    Opts.Randomized = false;
  if (getenv("MESH_NO_BARRIER") != nullptr)
    Opts.BarrierEnabled = false;
  if (const char *Period = getenv("MESH_PERIOD_MS"))
    Opts.MeshPeriodMs = strtoull(Period, nullptr, 10);
  if (const char *Probes = getenv("MESH_PROBES"))
    Opts.MeshProbes = static_cast<uint32_t>(strtoul(Probes, nullptr, 10));
  if (const char *Seed = getenv("MESH_SEED"))
    Opts.Seed = strtoull(Seed, nullptr, 10);
  return Opts;
}

Runtime &defaultRuntime() {
  // Built in static storage and intentionally never destroyed: frees
  // may arrive from atexit handlers after static destructors run.
  alignas(Runtime) static char Storage[sizeof(Runtime)];
  static Runtime *Instance = new (Storage) Runtime(optionsFromEnvironment());
  return *Instance;
}

} // namespace mesh

using mesh::defaultRuntime;

extern "C" {

void *mesh_malloc(size_t Bytes) { return defaultRuntime().malloc(Bytes); }

void mesh_free(void *Ptr) { defaultRuntime().free(Ptr); }

void *mesh_calloc(size_t Count, size_t Size) {
  return defaultRuntime().calloc(Count, Size);
}

void *mesh_realloc(void *Ptr, size_t Bytes) {
  return defaultRuntime().realloc(Ptr, Bytes);
}

int mesh_posix_memalign(void **Out, size_t Alignment, size_t Bytes) {
  return defaultRuntime().posixMemalign(Out, Alignment, Bytes);
}

size_t mesh_malloc_usable_size(const void *Ptr) {
  return defaultRuntime().usableSize(Ptr);
}

int mesh_mallctl(const char *Name, void *OldP, size_t *OldLenP, void *NewP,
                 size_t NewLen) {
  return defaultRuntime().mallctl(Name, OldP, OldLenP, NewP, NewLen);
}

size_t mesh_committed_bytes(void) {
  return defaultRuntime().committedBytes();
}

size_t mesh_mesh_now(void) { return defaultRuntime().meshNow(); }

} // extern "C"
