//===- mesh.cpp - Public Mesh API -------------------------------------------===//

#include "mesh/mesh.h"

#include "core/Runtime.h"
#include "support/Env.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <sched.h>

namespace mesh {

namespace {

MeshOptions optionsFromEnvironment() {
  MeshOptions Opts;
  if (getenv("MESH_NO_MESH") != nullptr)
    Opts.MeshingEnabled = false;
  if (getenv("MESH_NO_RAND") != nullptr)
    Opts.Randomized = false;
  if (getenv("MESH_NO_BARRIER") != nullptr)
    Opts.BarrierEnabled = false;
  uint64_t U = 0;
  if (envU64("MESH_PERIOD_MS", 0, ~uint64_t{0}, &U))
    Opts.MeshPeriodMs = U;
  if (envU64("MESH_PROBES", 1, 1u << 20, &U))
    Opts.MeshProbes = static_cast<uint32_t>(U);
  if (envU64("MESH_SEED", 0, ~uint64_t{0}, &U))
    Opts.Seed = U;
  // The background meshing runtime defaults ON for the process-default
  // heap (the paper's concurrent-meshing behavior); MESH_BACKGROUND=0
  // restores fully synchronous passes. Instance heaps (tests, benches)
  // default off and opt in through MeshOptions.
  Opts.BackgroundMeshing = envBool("MESH_BACKGROUND", true);
  if (envU64("MESH_BG_WAKE_MS", 1, 60 * 60 * 1000, &U))
    Opts.BackgroundWakeMs = U;
  if (envU64("MESH_PRESSURE_PCT", 0, 100, &U))
    Opts.PressureFragThresholdPct = static_cast<uint32_t>(U);
  if (envU64("MESH_PRESSURE_MIN_BYTES", 0, ~uint64_t{0}, &U))
    Opts.PressureMinCommittedBytes = U;
  return Opts;
}

} // namespace

Runtime &defaultRuntime() {
  // Built in static storage and intentionally never destroyed: frees
  // may arrive from atexit handlers after static destructors run.
  //
  // Hand-rolled once instead of a function-local static: constructing
  // the Runtime can itself re-enter malloc on this very thread
  // (pthread_create for the background mesher allocates internally),
  // and a __cxa_guard would deadlock on that recursion. The reentrant
  // call gets the partially-constructed instance, which is safe by
  // construction order: GlobalHeap and the TLS heap key are fully built
  // before anything in the ctor body can allocate, and a bootstrap
  // request touches nothing else.
  alignas(Runtime) static char Storage[sizeof(Runtime)];
  static std::atomic<int> State{0}; // 0 uninit, 1 constructing, 2 ready
  // initial-exec TLS like Shim.cpp's Busy guard: a global-dynamic TLS
  // access can itself allocate (DTV slow path) and re-enter this very
  // function before the runtime exists.
  static __thread bool ConstructingOnThisThread
      __attribute__((tls_model("initial-exec"))) = false;
  auto *Instance = reinterpret_cast<Runtime *>(Storage);
  if (State.load(std::memory_order_acquire) == 2)
    return *Instance;
  int Expected = 0;
  if (State.compare_exchange_strong(Expected, 1,
                                    std::memory_order_acq_rel)) {
    ConstructingOnThisThread = true;
    new (Storage) Runtime(optionsFromEnvironment());
    ConstructingOnThisThread = false;
    State.store(2, std::memory_order_release);
    return *Instance;
  }
  if (ConstructingOnThisThread)
    return *Instance; // Reentrant bootstrap call from our own ctor.
  while (State.load(std::memory_order_acquire) != 2)
    sched_yield();
  return *Instance;
}

} // namespace mesh

using mesh::defaultRuntime;

extern "C" {

void *mesh_malloc(size_t Bytes) { return defaultRuntime().malloc(Bytes); }

void mesh_free(void *Ptr) { defaultRuntime().free(Ptr); }

void *mesh_calloc(size_t Count, size_t Size) {
  return defaultRuntime().calloc(Count, Size);
}

void *mesh_realloc(void *Ptr, size_t Bytes) {
  return defaultRuntime().realloc(Ptr, Bytes);
}

int mesh_posix_memalign(void **Out, size_t Alignment, size_t Bytes) {
  return defaultRuntime().posixMemalign(Out, Alignment, Bytes);
}

size_t mesh_malloc_usable_size(const void *Ptr) {
  return defaultRuntime().usableSize(Ptr);
}

int mesh_mallctl(const char *Name, void *OldP, size_t *OldLenP, void *NewP,
                 size_t NewLen) {
  return defaultRuntime().mallctl(Name, OldP, OldLenP, NewP, NewLen);
}

size_t mesh_committed_bytes(void) {
  return defaultRuntime().committedBytes();
}

size_t mesh_mesh_now(void) { return defaultRuntime().meshNow(); }

} // extern "C"
