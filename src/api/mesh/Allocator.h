//===- mesh/Allocator.h - std-compatible allocator adapter ------*- C++ -*-===//
///
/// \file
/// A C++ standard-library allocator over a mesh::Runtime (or any class
/// exposing malloc/free), so containers — and the workload substrates
/// in this repository — can run on a specific heap instance. Stateful:
/// copies refer to the same Runtime; comparison is by Runtime identity.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_API_ALLOCATOR_H
#define MESH_API_ALLOCATOR_H

#include "core/Runtime.h"

#include <cstddef>
#include <new>

namespace mesh {

template <typename T> class Allocator {
public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  explicit Allocator(Runtime &R) noexcept : Heap(&R) {}
  template <typename U>
  Allocator(const Allocator<U> &Other) noexcept : Heap(Other.runtime()) {}

  T *allocate(size_t N) {
    void *Mem = Heap->malloc(N * sizeof(T));
    if (Mem == nullptr)
      throw std::bad_alloc();
    return static_cast<T *>(Mem);
  }

  void deallocate(T *Ptr, size_t) noexcept { Heap->free(Ptr); }

  Runtime *runtime() const noexcept { return Heap; }

  template <typename U>
  friend bool operator==(const Allocator &A, const Allocator<U> &B) noexcept {
    return A.runtime() == B.runtime();
  }

private:
  Runtime *Heap;
};

} // namespace mesh

#endif // MESH_API_ALLOCATOR_H
