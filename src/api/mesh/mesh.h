//===- mesh/mesh.h - Public Mesh API ----------------------------*- C++ -*-===//
///
/// \file
/// Public entry points for the Mesh allocator.
///
/// Two usage models:
///  - the process-default heap via the C functions below (what the
///    malloc interposition shim forwards to), configured through
///    MESH_* environment variables; and
///  - instance heaps via mesh::Runtime (include core/Runtime.h), used
///    by the tests and benchmarks to run several configurations in one
///    process.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_API_MESH_H
#define MESH_API_MESH_H

#include <cstddef>

extern "C" {

/// malloc/free family over the process-default Mesh heap.
void *mesh_malloc(size_t Bytes);
void mesh_free(void *Ptr);
void *mesh_calloc(size_t Count, size_t Size);
void *mesh_realloc(void *Ptr, size_t Bytes);
int mesh_posix_memalign(void **Out, size_t Alignment, size_t Bytes);
size_t mesh_malloc_usable_size(const void *Ptr);

/// jemalloc-style control/introspection interface (paper Section 4.5).
/// Names: "mesh.enabled", "mesh.period_ms", "mesh.probes",
/// "mesh.max_per_pass", "mesh.now", "heap.num_shards",
/// "heap.flush_dirty", "epoch.fence_mode",
/// "stats.committed_bytes", "stats.peak_committed_bytes",
/// "stats.kernel_file_bytes", "stats.dirty_bytes", "stats.mesh_count",
/// "stats.mesh_passes", "stats.mesh_passes_foreground",
/// "stats.mesh_passes_background", "stats.pages_meshed",
/// "stats.bytes_copied", "stats.mesh_ns", "stats.max_pause_ns",
/// "stats.max_pause_foreground_ns", "stats.max_pause_background_ns";
/// the background meshing runtime: "background.enabled",
/// "background.wakeups", "background.requests", "background.passes",
/// "background.poke_passes", "background.pressure_passes";
/// the pressure monitor (fresh sample per read): "pressure.frag_ppm"
/// (fragmentation of committed memory, parts-per-million),
/// "pressure.rss_bytes" (/proc/self/statm), "pressure.committed_bytes",
/// "pressure.in_use_bytes", "pressure.span_bytes";
/// fault/degradation observability (DESIGN.md "Failure policy"):
/// "faults.injected", "faults.retried", "faults.oom_returns",
/// "faults.mesh_rollbacks", "faults.punch_fallbacks", and the write
/// leaf "faults.reset" (zeroes all of the above for delta assertions);
/// the telemetry layer (DESIGN.md "Observability"):
/// "telemetry.enabled" (r/w bool), "telemetry.ring_size" (r/w u64,
/// power of two, settable only while disabled), "telemetry.events",
/// "telemetry.overflow_events", "telemetry.rings_in_use", the write
/// leaves "telemetry.reset" and "telemetry.dump" (NewP = output path,
/// Chrome trace_event JSON), and the packed 64xu64 histogram read-outs
/// "telemetry.hist.mesh_pass", "telemetry.hist.mesh_scan",
/// "telemetry.hist.mesh_remap", "telemetry.hist.mesh_release",
/// "telemetry.hist.epoch_sync", "telemetry.hist.span_acquire",
/// "telemetry.hist.punch_syscall", "telemetry.hist.remap_syscall";
/// and "version.leaves", which enumerates every registered leaf
/// newline-joined (OldP = buffer, or null to query the needed size).
int mesh_mallctl(const char *Name, void *OldP, size_t *OldLenP, void *NewP,
                 size_t NewLen);

/// Convenience wrappers over mesh_mallctl.
size_t mesh_committed_bytes(void);
size_t mesh_mesh_now(void);

} // extern "C"

namespace mesh {

class Runtime;

/// The process-default Runtime (created on first use; never destroyed).
///
/// Environment configuration, read once at creation (invalid or
/// out-of-range values warn and keep the default):
///   MESH_NO_MESH=1      disable meshing
///   MESH_NO_RAND=1      disable randomized allocation
///   MESH_NO_BARRIER=1   disable the concurrent-mesh write barrier
///   MESH_PERIOD_MS=N    meshing rate limit (default 100)
///   MESH_PROBES=N       SplitMesher probe budget t (default 64)
///   MESH_SEED=N         RNG seed
///   MESH_BACKGROUND=0|1 background meshing thread (default 1 here;
///                       instance heaps default off)
///   MESH_BG_WAKE_MS=N   background wake / pressure sampling interval
///                       (default 100, valid 1..3600000)
///   MESH_PRESSURE_PCT=N pressure trigger: mesh when >= N% of committed
///                       bytes are not live (default 30; 0 disables)
///   MESH_PRESSURE_MIN_BYTES=N  pressure floor: never pressure-mesh a
///                       heap below N committed bytes (default 8 MiB)
///   MESH_MEMBARRIER=0|1 force the epoch fence protocol: 0 = seq-cst
///                       fallback, 1 (default) = probe for the
///                       expedited membarrier
///   MESH_FAULT_INJECT=<spec>  deterministic syscall fault injection
///                       (see support/Sys.h for the spec grammar)
///   MESH_TRACE=<path>   enable the telemetry layer at startup and
///                       write a Chrome trace_event JSON dump (load in
///                       chrome://tracing, or render with
///                       tools/mesh-top.py) to <path> at process exit
Runtime &defaultRuntime();

} // namespace mesh

#endif // MESH_API_MESH_H
