//===- mesh/mesh.h - Public Mesh API ----------------------------*- C++ -*-===//
///
/// \file
/// Public entry points for the Mesh allocator.
///
/// Two usage models:
///  - the process-default heap via the C functions below (what the
///    malloc interposition shim forwards to), configured through
///    MESH_* environment variables; and
///  - instance heaps via mesh::Runtime (include core/Runtime.h), used
///    by the tests and benchmarks to run several configurations in one
///    process.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_API_MESH_H
#define MESH_API_MESH_H

#include <cstddef>

extern "C" {

/// malloc/free family over the process-default Mesh heap.
void *mesh_malloc(size_t Bytes);
void mesh_free(void *Ptr);
void *mesh_calloc(size_t Count, size_t Size);
void *mesh_realloc(void *Ptr, size_t Bytes);
int mesh_posix_memalign(void **Out, size_t Alignment, size_t Bytes);
size_t mesh_malloc_usable_size(const void *Ptr);

/// jemalloc-style control/introspection interface (paper Section 4.5).
/// Names: "mesh.enabled", "mesh.period_ms", "mesh.probes",
/// "mesh.max_per_pass", "mesh.now", "heap.flush_dirty",
/// "stats.committed_bytes", "stats.peak_committed_bytes",
/// "stats.dirty_bytes", "stats.mesh_count", "stats.mesh_passes",
/// "stats.pages_meshed", "stats.bytes_copied", "stats.mesh_ns",
/// "stats.max_pause_ns".
int mesh_mallctl(const char *Name, void *OldP, size_t *OldLenP, void *NewP,
                 size_t NewLen);

/// Convenience wrappers over mesh_mallctl.
size_t mesh_committed_bytes(void);
size_t mesh_mesh_now(void);

} // extern "C"

namespace mesh {

class Runtime;

/// The process-default Runtime (created on first use; never destroyed).
///
/// Environment configuration, read once at creation:
///   MESH_NO_MESH=1      disable meshing
///   MESH_NO_RAND=1      disable randomized allocation
///   MESH_NO_BARRIER=1   disable the concurrent-mesh write barrier
///   MESH_PERIOD_MS=N    meshing rate limit (default 100)
///   MESH_PROBES=N       SplitMesher probe budget t (default 64)
///   MESH_SEED=N         RNG seed
Runtime &defaultRuntime();

} // namespace mesh

#endif // MESH_API_MESH_H
