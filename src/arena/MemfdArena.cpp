//===- MemfdArena.cpp - File-backed virtual memory arena -----------------===//

#include "arena/MemfdArena.h"

#include "support/Log.h"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mesh {

MemfdArena::MemfdArena(size_t Bytes) : ArenaBytes(Bytes) {
  assert(Bytes % kPageSize == 0 && "arena size must be page aligned");
  Fd = memfd_create("mesh-arena", MFD_CLOEXEC);
  if (Fd < 0)
    fatalError("memfd_create failed: %s", strerror(errno));
  if (ftruncate(Fd, static_cast<off_t>(ArenaBytes)) != 0)
    fatalError("ftruncate(%zu) failed: %s", ArenaBytes, strerror(errno));
  void *Mem = mmap(nullptr, ArenaBytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                   Fd, 0);
  if (Mem == MAP_FAILED)
    fatalError("arena mmap of %zu bytes failed: %s", ArenaBytes,
               strerror(errno));
  Base = static_cast<char *>(Mem);
}

MemfdArena::~MemfdArena() {
  if (Base != nullptr)
    munmap(Base, ArenaBytes);
  if (Fd >= 0)
    close(Fd);
}

void MemfdArena::commit([[maybe_unused]] size_t PageOff, size_t Pages) {
  assert(PageOff + Pages <= arenaPages() && "commit beyond arena");
  Committed.fetch_add(Pages, std::memory_order_relaxed);
}

void MemfdArena::release(size_t PageOff, size_t Pages) {
  assert(PageOff + Pages <= arenaPages() && "release beyond arena");
  if (fallocate(Fd, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                static_cast<off_t>(pagesToBytes(PageOff)),
                static_cast<off_t>(pagesToBytes(Pages))) != 0)
    fatalError("fallocate punch-hole failed: %s", strerror(errno));
  Committed.fetch_sub(Pages, std::memory_order_relaxed);
}

void MemfdArena::alias(size_t VictimPageOff, size_t KeeperPageOff,
                       size_t Pages) {
  assert(KeeperPageOff != VictimPageOff && "cannot mesh a span with itself");
  // Atomically swing the victim's virtual pages onto the keeper's file
  // offset. mmap over an existing mapping replaces it without a window
  // where the address range is unmapped, which is what makes concurrent
  // reads safe (paper Section 4.5.2: "the atomic semantics of mmap").
  void *Target = ptrForPage(VictimPageOff);
  void *Res = mmap(Target, pagesToBytes(Pages), PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_FIXED, Fd,
                   static_cast<off_t>(pagesToBytes(KeeperPageOff)));
  if (Res == MAP_FAILED)
    fatalError("mesh remap failed: %s", strerror(errno));
}

void MemfdArena::resetMapping(size_t PageOff, size_t Pages) {
  void *Target = ptrForPage(PageOff);
  void *Res = mmap(Target, pagesToBytes(Pages), PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_FIXED, Fd,
                   static_cast<off_t>(pagesToBytes(PageOff)));
  if (Res == MAP_FAILED)
    fatalError("identity remap failed: %s", strerror(errno));
}

void MemfdArena::protect(size_t PageOff, size_t Pages, bool ReadOnly) {
  const int Prot = ReadOnly ? PROT_READ : (PROT_READ | PROT_WRITE);
  if (mprotect(ptrForPage(PageOff), pagesToBytes(Pages), Prot) != 0)
    fatalError("mprotect failed: %s", strerror(errno));
}

size_t MemfdArena::kernelFilePages() const {
  struct stat St;
  if (fstat(Fd, &St) != 0)
    fatalError("fstat on arena fd failed: %s", strerror(errno));
  // st_blocks counts 512-byte units.
  return static_cast<size_t>(St.st_blocks) * 512 / kPageSize;
}

} // namespace mesh
