//===- MemfdArena.cpp - File-backed virtual memory arena -----------------===//

#include "arena/MemfdArena.h"

#include "support/Log.h"
#include "support/Sys.h"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mesh {

namespace {

// Everything in this file may run inside the atfork child handler or
// during preload bring-up (we *are* malloc), so failure reporting is
// restricted to fatalErrorForkSafe: write(2) + abort, no vsnprintf, no
// allocation.

/// pwrite the whole range or die. Retries short writes and EINTR;
/// everything else is unrecoverable mid-reinitialization.
void pwriteFully(int Fd, const char *Src, size_t Len, off_t Off) {
  while (Len > 0) {
    const ssize_t N = pwrite(Fd, Src, Len, Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      fatalErrorForkSafe("fork child: pwrite to the fresh arena memfd failed",
                         errno);
    }
    Src += N;
    Off += static_cast<off_t>(N);
    Len -= static_cast<size_t>(N);
  }
}

struct ForkReplayCtx {
  int OldFd;
  int NewFd;
  char *Base;
};

/// Pass-1 visitor: copy one physical span's data extents into the new
/// file. Alias entries are skipped — a physical span appears exactly
/// once as an identity entry, which is what keeps the copy
/// once-per-distinct-physical-span. The *source* bytes are read
/// through the parent-inherited MAP_SHARED mapping (identity-mapped by
/// construction for a physical span); the hole geometry comes from
/// lseek(SEEK_DATA/SEEK_HOLE) on the inherited fd, so pages the parent
/// never materialized stay holes in the child's file too.
void copyPhysicalSpanExtents(void *CtxP, size_t VirtPageOff,
                             size_t PhysPageOff, size_t Pages) {
  if (VirtPageOff != PhysPageOff)
    return;
  auto *Ctx = static_cast<ForkReplayCtx *>(CtxP);
  off_t Cur = static_cast<off_t>(pagesToBytes(PhysPageOff));
  const off_t End = Cur + static_cast<off_t>(pagesToBytes(Pages));
  while (Cur < End) {
    off_t Data = lseek(Ctx->OldFd, Cur, SEEK_DATA);
    if (Data < 0) {
      if (errno == ENXIO)
        break; // No data at or past Cur: the rest of the span is hole.
      // SEEK_DATA unsupported (ancient kernel): degrade to copying the
      // remainder verbatim — correct, merely commits hole pages.
      Data = Cur;
    }
    if (Data >= End)
      break;
    off_t Hole = lseek(Ctx->OldFd, Data, SEEK_HOLE);
    if (Hole < 0 || Hole > End)
      Hole = End;
    pwriteFully(Ctx->NewFd, Ctx->Base + Data,
                static_cast<size_t>(Hole - Data), Data);
    Cur = Hole;
  }
}

/// Pass-3 visitor: re-establish one meshed alias on the new fd.
void remapAliasSpan(void *CtxP, size_t VirtPageOff, size_t PhysPageOff,
                    size_t Pages) {
  if (VirtPageOff == PhysPageOff)
    return;
  auto *Ctx = static_cast<ForkReplayCtx *>(CtxP);
  void *Res = sys::mmapPtr(Ctx->Base + pagesToBytes(VirtPageOff),
                           pagesToBytes(Pages), PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_FIXED, Ctx->NewFd,
                           static_cast<off_t>(pagesToBytes(PhysPageOff)));
  if (Res == MAP_FAILED)
    fatalErrorForkSafe("fork child: alias replay mmap failed", errno);
}

} // namespace

MemfdArena::MemfdArena(size_t Bytes) : ArenaBytes(Bytes) {
  assert(Bytes % kPageSize == 0 && "arena size must be page aligned");
  // Bring-up failures stay fatal: with no arena there is no heap to
  // degrade onto, and the wrappers have already absorbed transients.
  Fd = sys::memfdCreate("mesh-arena", MFD_CLOEXEC);
  if (Fd < 0)
    fatalErrorForkSafe("memfd_create failed", errno);
  if (sys::ftruncateFd(Fd, static_cast<off_t>(ArenaBytes)) != 0)
    fatalErrorForkSafe("arena ftruncate failed", errno);
  void *Mem = sys::mmapPtr(nullptr, ArenaBytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED, Fd, 0);
  if (Mem == MAP_FAILED)
    fatalErrorForkSafe("arena mmap failed", errno);
  Base = static_cast<char *>(Mem);
}

MemfdArena::~MemfdArena() {
  if (Base != nullptr)
    (void)sys::munmapPtr(Base, ArenaBytes);
  if (Fd >= 0)
    close(Fd);
}

bool MemfdArena::commit([[maybe_unused]] size_t PageOff, size_t Pages) {
  assert(PageOff + Pages <= arenaPages() && "commit beyond arena");
  if (!sys::commitGate())
    return false;
  Committed.fetch_add(Pages, std::memory_order_relaxed);
  return true;
}

bool MemfdArena::release(size_t PageOff, size_t Pages) {
  assert(PageOff + Pages <= arenaPages() && "release beyond arena");
  if (sys::fallocateFd(Fd, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                       static_cast<off_t>(pagesToBytes(PageOff)),
                       static_cast<off_t>(pagesToBytes(Pages))) != 0)
    return false;
  Committed.fetch_sub(Pages, std::memory_order_relaxed);
  return true;
}

bool MemfdArena::alias(size_t VictimPageOff, size_t KeeperPageOff,
                       size_t Pages) {
  assert(KeeperPageOff != VictimPageOff && "cannot mesh a span with itself");
  // Atomically swing the victim's virtual pages onto the keeper's file
  // offset. mmap over an existing mapping replaces it without a window
  // where the address range is unmapped, which is what makes concurrent
  // reads safe (paper Section 4.5.2: "the atomic semantics of mmap").
  void *Target = ptrForPage(VictimPageOff);
  void *Res = sys::mmapPtr(Target, pagesToBytes(Pages),
                           PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED, Fd,
                           static_cast<off_t>(pagesToBytes(KeeperPageOff)));
  return Res != MAP_FAILED;
}

bool MemfdArena::resetMapping(size_t PageOff, size_t Pages) {
  void *Target = ptrForPage(PageOff);
  void *Res = sys::mmapPtr(Target, pagesToBytes(Pages),
                           PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED, Fd,
                           static_cast<off_t>(pagesToBytes(PageOff)));
  return Res != MAP_FAILED;
}

bool MemfdArena::protect(size_t PageOff, size_t Pages, bool ReadOnly) {
  const int Prot = ReadOnly ? PROT_READ : (PROT_READ | PROT_WRITE);
  return sys::mprotectPtr(ptrForPage(PageOff), pagesToBytes(Pages), Prot) == 0;
}

void MemfdArena::dropResident(size_t PageOff, size_t Pages) {
  // On a MAP_SHARED file mapping MADV_DONTNEED only drops the PTEs —
  // contents survive in the file and refault on next touch — so this
  // is safe even if the span is still carrying data. Best-effort by
  // design: if it also fails, the pages simply stay resident.
  (void)sys::madvisePtr(ptrForPage(PageOff), pagesToBytes(Pages),
                        MADV_DONTNEED);
}

size_t MemfdArena::kernelFilePages() const {
  struct stat St;
  if (fstat(Fd, &St) != 0)
    fatalErrorForkSafe("fstat on arena fd failed", errno);
  // st_blocks counts 512-byte units.
  return static_cast<size_t>(St.st_blocks) * 512 / kPageSize;
}

void MemfdArena::reinitializeAfterFork(ForkSpanSource &Spans) {
  // Ordering note: nothing below mutates the arena until the fresh
  // file exists and is fully populated, so a failure anywhere in pass
  // 1 (reported via write(2) + abort, never allocation) leaves the
  // inherited mapping exactly as fork delivered it — usable for
  // fork-then-exec, never half-initialized.
  // These failures abort even in degraded mode: a child that cannot
  // rebuild its private file still shares physical pages with the
  // parent, and "degrading" here would mean silently corrupting both
  // processes. Transients were already absorbed by the wrappers, so a
  // failure reaching this point is persistent (see DESIGN.md "Failure
  // policy", fork-child exception).
  const int NewFd = sys::memfdCreate("mesh-arena", MFD_CLOEXEC);
  if (NewFd < 0)
    fatalErrorForkSafe("fork child: memfd_create for the fresh arena failed",
                       errno);
  if (sys::ftruncateFd(NewFd, static_cast<off_t>(ArenaBytes)) != 0)
    fatalErrorForkSafe("fork child: ftruncate on the fresh arena failed",
                       errno);

  ForkReplayCtx Ctx{Fd, NewFd, Base};

  // Pass 1: replay the file population, once per distinct physical
  // span, holes preserved (see copyPhysicalSpanExtents).
  Spans.forEachVirtualSpan(copyPhysicalSpanExtents, &Ctx);

  // Pass 2: swing the entire reservation onto the new file with the
  // identity mapping. This covers every non-span region too (clean and
  // dirty span bins, the un-carved frontier): after this, no virtual
  // address in the arena can reach the parent's file.
  void *Res = sys::mmapPtr(Base, ArenaBytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_FIXED, NewFd, 0);
  if (Res == MAP_FAILED)
    fatalErrorForkSafe("fork child: arena identity remap failed", errno);

  // Pass 3: replay meshed aliases over the identity base.
  Spans.forEachVirtualSpan(remapAliasSpan, &Ctx);

  // The inherited fd's last role was as the pass-1 copy source; drop
  // it so a long-lived forked child (prefork worker) does not pin the
  // parent's physical pages — and does not leak one fd per generation.
  if (close(Fd) != 0)
    fatalErrorForkSafe("fork child: closing the inherited arena fd failed",
                       errno);
  Fd = NewFd;
  // Committed is inherited unchanged on purpose: the heap layer
  // flushed its dirty bins pre-fork (they are not replayed here), so
  // at this point the counter covers exactly the live spans the copy
  // replayed.
}

} // namespace mesh
