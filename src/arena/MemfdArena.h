//===- MemfdArena.h - File-backed virtual memory arena ----------*- C++ -*-===//
///
/// \file
/// The virtual-memory substrate from paper Section 4.5.1. Mesh's arena
/// is not an anonymous mapping: it is backed by a temporary in-memory
/// file (memfd_create) so that the same file offset — a physical span —
/// can be mapped at several virtual addresses. Meshing a span is then:
///
///   1. copy live objects from the victim span into the keeper span,
///   2. mmap(MAP_FIXED) every victim virtual span onto the keeper's
///      file offset (atomic with respect to concurrent readers), and
///   3. fallocate(FALLOC_FL_PUNCH_HOLE) the victim's old file pages,
///      returning the physical memory to the OS.
///
/// The arena also tracks a precise committed-page count, which is the
/// allocator-side equivalent of the RSS measured by the paper's mstat
/// tool (see DESIGN.md, substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef MESH_ARENA_MEMFDARENA_H
#define MESH_ARENA_MEMFDARENA_H

#include "support/Common.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mesh {

/// Span enumeration for MemfdArena::reinitializeAfterFork().
/// Implemented by the heap layer (GlobalHeap walks its page table);
/// declared here so the arena substrate needs no core/ dependency.
///
/// The contract is fork-async-signal-tolerant: implementations run in
/// the atfork child handler and must not allocate, take locks, or call
/// anything that is not async-signal-safe. Plain function pointer +
/// context instead of std::function for the same reason.
class ForkSpanSource {
public:
  /// Called once per live *virtual* span. Identity-mapped spans report
  /// VirtPageOff == PhysPageOff; meshed aliases report the keeper's
  /// physical span offset. A physical span is visited exactly once as
  /// an identity entry (plus once per alias meshed onto it).
  using SpanVisitor = void (*)(void *Ctx, size_t VirtPageOff,
                               size_t PhysPageOff, size_t Pages);

  /// Invokes \p Visit for every live virtual span. May be called more
  /// than once per reinitialization (one walk per replay pass).
  virtual void forEachVirtualSpan(SpanVisitor Visit, void *Ctx) = 0;

protected:
  ~ForkSpanSource() = default;
};

/// A contiguous reservation of virtual address space backed by a
/// memfd file with identity virtual->file mapping at creation.
///
/// Pages are addressed by their page offset from the arena base. All
/// methods are thread-compatible: callers (MeshableArena / GlobalHeap)
/// serialize mutations under the global heap lock; the committed-page
/// counter is atomic so statistics reads need no lock.
class MemfdArena {
public:
  /// Reserves \p ArenaBytes of address space (default 16 GiB; address
  /// space is free — physical pages are committed on first touch).
  explicit MemfdArena(size_t ArenaBytes = size_t{16} << 30);
  ~MemfdArena();

  MemfdArena(const MemfdArena &) = delete;
  MemfdArena &operator=(const MemfdArena &) = delete;

  char *base() const { return Base; }
  size_t arenaBytes() const { return ArenaBytes; }
  size_t arenaPages() const { return ArenaBytes >> kPageShift; }

  /// True iff \p Ptr lies inside the arena reservation.
  bool contains(const void *Ptr) const {
    auto P = reinterpret_cast<uintptr_t>(Ptr);
    auto B = reinterpret_cast<uintptr_t>(Base);
    return P >= B && P < B + ArenaBytes;
  }

  char *ptrForPage(size_t PageOff) const {
    return Base + pagesToBytes(PageOff);
  }

  size_t pageForPtr(const void *Ptr) const {
    return (reinterpret_cast<uintptr_t>(Ptr) -
            reinterpret_cast<uintptr_t>(Base)) >>
           kPageShift;
  }

  /// Marks \p Pages pages at \p PageOff as committed (about to be
  /// touched). Pages in a memfd materialize on first write; this keeps
  /// our accounting in sync with what the OS will charge us. Returns
  /// false — without committing anything — when the sys::commitGate
  /// fault-injection gate refuses the pages (the stand-in for the
  /// kernel's refusal, which un-injected arrives as SIGBUS at first
  /// touch; see DESIGN.md "Failure policy").
  [[nodiscard]] bool commit(size_t PageOff, size_t Pages);

  /// Punches a hole over the file pages under the identity mapping at
  /// \p PageOff, returning physical memory to the OS. The virtual pages
  /// remain mapped and read back as zero (and re-commit on next touch).
  /// Returns false with the committed count unchanged when the punch
  /// fails; the caller decides how to degrade (the pages stay backed
  /// and keep their contents).
  [[nodiscard]] bool release(size_t PageOff, size_t Pages);

  /// Remaps the virtual span at \p VictimPageOff onto the file offset
  /// of \p KeeperPageOff (both spans are \p Pages long). Step 2 of a
  /// mesh; the caller has already copied live objects and must have
  /// arranged that no thread writes the victim span during the remap
  /// (see WriteBarrier). Does not touch the committed-page count: the
  /// caller releases the victim's own file pages separately. Returns
  /// false when the remap fails; the victim mapping is unchanged (mmap
  /// over an existing mapping either fully replaces it or fails with
  /// the old mapping intact), so the caller can roll the mesh back.
  [[nodiscard]] bool alias(size_t VictimPageOff, size_t KeeperPageOff,
                           size_t Pages);

  /// Restores the identity virtual->file mapping for \p Pages pages at
  /// \p PageOff. Used when a previously-meshed virtual span is recycled
  /// for a fresh allocation. The underlying file pages are holes, so
  /// the span reads back as zero. Returns false when the remap fails
  /// (old alias mapping intact).
  [[nodiscard]] bool resetMapping(size_t PageOff, size_t Pages);

  /// Applies mprotect with \p ReadOnly to the span (write barrier).
  /// Returns false when the protection change fails.
  [[nodiscard]] bool protect(size_t PageOff, size_t Pages, bool ReadOnly);

  /// Best-effort MADV_DONTNEED over the identity-mapped span — the
  /// degraded substitute when release() fails: drops the PTEs and RSS
  /// charge, but file pages (and kernelFilePages) stay allocated until
  /// a later punch succeeds. Only meaningful on identity mappings.
  void dropResident(size_t PageOff, size_t Pages);

  /// Pages this arena believes are backed by physical memory.
  size_t committedPages() const {
    return Committed.load(std::memory_order_relaxed);
  }

  /// Ground truth from the kernel: file blocks actually allocated to
  /// the memfd, in pages. Used by tests to validate our accounting.
  size_t kernelFilePages() const;

  /// The fork-child copy protocol (reference implementation's
  /// approach): after fork(), parent and child share this arena's
  /// memfd — MAP_SHARED data pages under COW-private metadata — so
  /// both sides would hand out the same slots and corrupt each other.
  /// Called from the atfork child handler (single-threaded, every heap
  /// lock inherited held, the parent fenced from mutating the shared
  /// file), this:
  ///
  ///   1. creates a fresh memfd and replays the file population — each
  ///      physical span's *data extents* are copied at their original
  ///      file offsets, read through the parent-inherited mapping;
  ///      punched holes stay holes, so committedPages() and
  ///      kernelFilePages() stay truthful in the child;
  ///   2. swings the whole reservation onto the new file with one
  ///      identity mmap(MAP_FIXED | MAP_SHARED) (atomic; no unmapped
  ///      window);
  ///   3. replays every meshed alias onto the new fd;
  ///   4. closes the inherited fd.
  ///
  /// Every failure path reports via write(2) and aborts without
  /// allocating (fatalErrorForkSafe); a failed memfd_create aborts
  /// before the arena is touched, so it never half-initializes.
  void reinitializeAfterFork(ForkSpanSource &Spans);

private:
  char *Base = nullptr;
  size_t ArenaBytes = 0;
  int Fd = -1;
  std::atomic<size_t> Committed{0};
};

} // namespace mesh

#endif // MESH_ARENA_MEMFDARENA_H
