//===- FreeListAllocator.cpp - glibc-style baseline -------------------------===//

#include "baseline/FreeListAllocator.h"

#include "support/Common.h"
#include "support/Log.h"
#include "support/MathUtils.h"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <sys/mman.h>

namespace mesh {

FreeListAllocator::FreeListAllocator(size_t Region) : RegionBytes(Region) {
  void *Mem = mmap(nullptr, RegionBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    fatalError("freelist region mmap failed: %s", strerror(errno));
  Base = static_cast<char *>(Mem);
  // Seed the wilderness chunk.
  Break = Base + kMinChunk;
  Top = reinterpret_cast<Header *>(Base);
  Top->set(kMinChunk, false);
  Top->PrevSize = 0;
  updatePeak();
}

FreeListAllocator::~FreeListAllocator() {
  if (Base != nullptr)
    munmap(Base, RegionBytes);
}

unsigned FreeListAllocator::binFor(size_t Size) {
  if (Size < kSmallLimit)
    return static_cast<unsigned>((Size - kMinChunk) / 16);
  // Large bins: [1024, 2048) is the first, doubling upward.
  const unsigned Log = log2Floor(Size);
  const unsigned Bin = kNumSmallBins + (Log - 10);
  return Bin >= kNumBins ? kNumBins - 1 : Bin;
}

void FreeListAllocator::insertFree(Header *H) {
  assert(!H->used() && "inserting a used chunk into a free bin");
  auto *Node = reinterpret_cast<FreeNode *>(payloadOf(H));
  const unsigned Bin = binFor(H->size());
  Node->Prev = nullptr;
  Node->Next = Bins[Bin];
  if (Bins[Bin] != nullptr)
    Bins[Bin]->Prev = Node;
  Bins[Bin] = Node;
}

void FreeListAllocator::removeFree(Header *H) {
  auto *Node = reinterpret_cast<FreeNode *>(payloadOf(H));
  const unsigned Bin = binFor(H->size());
  if (Node->Prev != nullptr)
    Node->Prev->Next = Node->Next;
  else
    Bins[Bin] = Node->Next;
  if (Node->Next != nullptr)
    Node->Next->Prev = Node->Prev;
}

void FreeListAllocator::updatePeak() {
  const size_t Used = static_cast<size_t>(Break - Base);
  if (Used > PeakCommitted)
    PeakCommitted = Used;
}

bool FreeListAllocator::growTop(size_t NeedBytes) {
  const size_t Grow = roundUpPow2Multiple(NeedBytes, kPageSize);
  if (Break + Grow > Base + RegionBytes)
    return false;
  Top->set(Top->size() + Grow, false);
  Break += Grow;
  updatePeak();
  return true;
}

void *FreeListAllocator::malloc(size_t Bytes) {
  if (Bytes == 0)
    Bytes = 1;
  size_t Chunk = roundUpPow2Multiple(Bytes + kHeaderBytes, 16);
  if (Chunk < kMinChunk)
    Chunk = kMinChunk;

  // First fit: the chunk's own bin, then every larger bin.
  for (unsigned Bin = binFor(Chunk); Bin < kNumBins; ++Bin) {
    for (FreeNode *Node = Bins[Bin]; Node != nullptr; Node = Node->Next) {
      Header *H = headerOf(Node); // Node sits at the payload start.
      if (H->size() < Chunk)
        continue;
      removeFree(H);
      if (H->size() >= Chunk + kMinChunk) {
        // Split; the remainder becomes a free chunk after H.
        const size_t Remainder = H->size() - Chunk;
        H->set(Chunk, true);
        Header *Rest = nextChunk(H);
        Rest->set(Remainder, false);
        Rest->PrevSize = Chunk;
        nextChunk(Rest)->PrevSize = Remainder;
        insertFree(Rest);
      } else {
        H->set(H->size(), true);
      }
      LivePayload += H->size() - kHeaderBytes;
      return payloadOf(H);
    }
  }

  // Carve from the wilderness, growing it as needed. Keep Top at least
  // kMinChunk so it never vanishes.
  if (Top->size() < Chunk + kMinChunk &&
      !growTop(Chunk + kMinChunk - Top->size()))
    return nullptr;
  Header *H = Top;
  const size_t Remainder = Top->size() - Chunk;
  H->set(Chunk, true);
  Top = nextChunk(H);
  Top->set(Remainder, false);
  Top->PrevSize = Chunk;
  LivePayload += Chunk - kHeaderBytes;
  return payloadOf(H);
}

void FreeListAllocator::free(void *Ptr) {
  if (Ptr == nullptr)
    return;
  Header *H = headerOf(Ptr);
  assert(H->used() && "double free in baseline allocator");
  LivePayload -= H->size() - kHeaderBytes;
  H->set(H->size(), false);

  // Coalesce forward (possibly into the wilderness).
  Header *Next = nextChunk(H);
  if (Next == Top) {
    H->set(H->size() + Top->size(), false);
    Top = H;
  } else if (!Next->used()) {
    removeFree(Next);
    H->set(H->size() + Next->size(), false);
  }
  // Coalesce backward.
  if (H->PrevSize != 0) {
    Header *Prev = prevChunk(H);
    if (!Prev->used() && Prev != Top) {
      removeFree(Prev);
      Prev->set(Prev->size() + H->size(), false);
      H = Prev;
    }
  }

  if (H == Top || reinterpret_cast<char *>(H) + H->size() == Break) {
    Top = H;
    trimTop();
    return;
  }
  nextChunk(H)->PrevSize = H->size();
  insertFree(H);
}

void FreeListAllocator::trimTop() {
  // Release whole pages of the wilderness back to the OS, keeping a
  // kMinChunk stub (glibc's M_TRIM_THRESHOLD behaviour, threshold 0 so
  // the baseline is as favourable as possible).
  const size_t Keep = kMinChunk;
  if (Top->size() <= Keep + kPageSize)
    return;
  char *TopStart = reinterpret_cast<char *>(Top);
  char *NewBreak =
      reinterpret_cast<char *>(
          roundUpPow2Multiple(reinterpret_cast<uintptr_t>(TopStart) + Keep,
                              kPageSize));
  if (NewBreak >= Break)
    return;
  madvise(NewBreak, static_cast<size_t>(Break - NewBreak), MADV_DONTNEED);
  Break = NewBreak;
  Top->set(static_cast<size_t>(Break - TopStart), false);
}

size_t FreeListAllocator::usableSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  return headerOf(Ptr)->size() - kHeaderBytes;
}

size_t FreeListAllocator::committedBytes() const {
  // Everything below the break is resident: interior frees never
  // return pages (the Robson regime this baseline exists to exhibit).
  return static_cast<size_t>(Break - Base);
}

} // namespace mesh
