//===- FreeListAllocator.h - glibc-style baseline ----------------*- C++ -*-===//
///
/// \file
/// A classic boundary-tag, segregated first-fit allocator over a
/// contiguous sbrk-style region — the "glibc malloc" baseline of the
/// paper's evaluation. It splits and coalesces chunks and trims the
/// wilderness (top) chunk, but (like all non-compacting allocators,
/// per Robson) cannot return interior fragmented pages: one live chunk
/// high in the region pins everything below the break.
///
/// Single-threaded by design (the benchmarks drive one heap per
/// thread); this keeps the baseline honest without replicating glibc's
/// arena machinery, which is orthogonal to fragmentation behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_BASELINE_FREELISTALLOCATOR_H
#define MESH_BASELINE_FREELISTALLOCATOR_H

#include "baseline/HeapBackend.h"

#include <cstddef>
#include <cstdint>

namespace mesh {

class FreeListAllocator final : public HeapBackend {
public:
  explicit FreeListAllocator(size_t RegionBytes = size_t{4} << 30);
  ~FreeListAllocator() override;

  FreeListAllocator(const FreeListAllocator &) = delete;
  FreeListAllocator &operator=(const FreeListAllocator &) = delete;

  void *malloc(size_t Bytes) override;
  void free(void *Ptr) override;
  size_t usableSize(const void *Ptr) const override;
  size_t committedBytes() const override;
  size_t peakCommittedBytes() const override { return PeakCommitted; }
  const char *name() const override { return "glibc-like freelist"; }

  /// Live-payload bytes (for fragmentation-ratio reporting in tests).
  size_t liveBytes() const { return LivePayload; }

private:
  // Chunk layout: [Header][payload...]; the header stores the chunk
  // size with the low bit marking "in use", plus the previous chunk's
  // size for backward coalescing (boundary tags). The topmost chunk
  // (the "wilderness") is always free and always ends at the break.
  struct Header {
    size_t SizeAndUsed;
    size_t PrevSize;

    size_t size() const { return SizeAndUsed & ~size_t{1}; }
    bool used() const { return SizeAndUsed & 1; }
    void set(size_t Size, bool Used) { SizeAndUsed = Size | (Used ? 1 : 0); }
  };

  struct FreeNode {
    FreeNode *Next;
    FreeNode *Prev;
  };

  static constexpr size_t kHeaderBytes = sizeof(Header);
  static constexpr size_t kMinChunk = 64;
  // glibc-style binning: exact bins at 16-byte granularity for small
  // chunks (64..1023), power-of-two "large" bins above. Exact bins make
  // small malloc O(1); without them first-fit degenerates to O(n)
  // scans under mixed small sizes.
  static constexpr size_t kSmallLimit = 1024;
  static constexpr unsigned kNumSmallBins = (kSmallLimit - kMinChunk) / 16;
  static constexpr unsigned kNumLargeBins = 28;
  static constexpr unsigned kNumBins = kNumSmallBins + kNumLargeBins;

  static unsigned binFor(size_t Size);
  Header *headerOf(const void *Payload) const {
    return reinterpret_cast<Header *>(
        const_cast<char *>(static_cast<const char *>(Payload)) -
        kHeaderBytes);
  }
  char *payloadOf(Header *H) const {
    return reinterpret_cast<char *>(H) + kHeaderBytes;
  }
  Header *nextChunk(Header *H) const {
    return reinterpret_cast<Header *>(reinterpret_cast<char *>(H) +
                                      H->size());
  }
  Header *prevChunk(Header *H) const {
    return reinterpret_cast<Header *>(reinterpret_cast<char *>(H) -
                                      H->PrevSize);
  }

  void insertFree(Header *H);
  void removeFree(Header *H);
  bool growTop(size_t NeedBytes);
  void trimTop();
  void updatePeak();

  char *Base = nullptr;
  char *Break = nullptr; ///< End of the region in use (== end of Top).
  size_t RegionBytes = 0;
  Header *Top = nullptr; ///< Wilderness chunk; free; ends at Break.
  size_t PeakCommitted = 0;
  size_t LivePayload = 0;
  FreeNode *Bins[kNumBins] = {};
};

} // namespace mesh

#endif // MESH_BASELINE_FREELISTALLOCATOR_H
