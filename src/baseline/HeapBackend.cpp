//===- HeapBackend.cpp - Common allocator interface --------------------------===//

#include "baseline/HeapBackend.h"

namespace mesh {

// Interface anchor; implementations live in their own files.

} // namespace mesh
