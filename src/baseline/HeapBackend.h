//===- HeapBackend.h - Common allocator interface ---------------*- C++ -*-===//
///
/// \file
/// The interface the workload substrates and benchmark harnesses drive.
/// One implementation wraps Mesh (in any of its ablation configs); the
/// others are the non-compacting baselines standing in for glibc malloc
/// and jemalloc (see DESIGN.md substitution table). committedBytes() is
/// each allocator's physical-memory footprint — the quantity the
/// paper's mstat tool sampled as RSS.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_BASELINE_HEAPBACKEND_H
#define MESH_BASELINE_HEAPBACKEND_H

#include "core/Options.h"
#include "core/Runtime.h"

#include <cstddef>
#include <memory>

namespace mesh {

class HeapBackend {
public:
  virtual ~HeapBackend() = default;

  /// Contract (all implementations, pinned by BackendContractTest):
  /// malloc(0) returns a distinct, non-null pointer that free()
  /// accepts, matching glibc — workload code (KVStore empty values,
  /// trace replay) relies on it and never null-checks zero-size
  /// allocations specially.
  virtual void *malloc(size_t Bytes) = 0;
  virtual void free(void *Ptr) = 0;
  virtual size_t usableSize(const void *Ptr) const = 0;

  /// Physical bytes currently held from the OS (the RSS analogue).
  virtual size_t committedBytes() const = 0;
  virtual size_t peakCommittedBytes() const = 0;

  virtual const char *name() const = 0;

  /// Periodic maintenance hook, called by workload drivers on their
  /// sampling cadence (Mesh: rate-limited meshing; baselines: no-op).
  virtual void tick() {}

  /// Forces a full maintenance cycle (Mesh: immediate meshing pass).
  virtual void flush() {}
};

/// Mesh in a chosen configuration behind the backend interface.
class MeshBackend final : public HeapBackend {
public:
  explicit MeshBackend(const MeshOptions &Opts = MeshOptions(),
                       const char *Label = "Mesh")
      : Heap(Opts), Label(Label) {}

  void *malloc(size_t Bytes) override { return Heap.malloc(Bytes); }
  void free(void *Ptr) override { Heap.free(Ptr); }
  size_t usableSize(const void *Ptr) const override {
    return Heap.usableSize(Ptr);
  }
  size_t committedBytes() const override { return Heap.committedBytes(); }
  size_t peakCommittedBytes() const override {
    return pagesToBytes(
        Heap.global().stats().PeakCommittedPages.load());
  }
  const char *name() const override { return Label; }
  void tick() override { Heap.global().maybeMesh(); }
  void flush() override {
    // Full maintenance: rotate this thread's spans to the global heap
    // and mesh until diminishing returns. Each meshNow() pass is
    // individually pause-bounded by MeshOptions::MaxMeshesPerPass;
    // stopping below the effectiveness threshold mirrors the paper's
    // 1 MB hysteresis (Section 4.5).
    Heap.localHeap().releaseAll();
    const size_t Threshold = Heap.global().options().MeshEffectiveBytes;
    for (int Pass = 0; Pass < 64; ++Pass)
      if (Heap.meshNow() < Threshold)
        break;
  }

  Runtime &runtime() { return Heap; }

private:
  Runtime Heap;
  const char *Label;
};

} // namespace mesh

#endif // MESH_BASELINE_HEAPBACKEND_H
