//===- SizeClassAllocator.cpp - jemalloc-style baseline ---------------------===//

#include "baseline/SizeClassAllocator.h"

#include "support/InternalHeap.h"
#include "support/Log.h"

#include <cassert>

namespace mesh {

SizeClassAllocator::SizeClassAllocator(size_t ArenaBytes,
                                       size_t MaxDirtyBytes)
    : Arena(ArenaBytes, MaxDirtyBytes) {}

SizeClassAllocator::~SizeClassAllocator() {
  const size_t Frontier = Arena.frontierPages();
  for (size_t Page = 0; Page < Frontier; ++Page) {
    MiniHeap *MH = Arena.ownerOfPage(Page);
    if (MH == nullptr)
      continue;
    Arena.setOwner(MH->physicalSpanOffset(), MH->spanPages(), nullptr);
    InternalHeap::global().deleteObj(MH);
  }
}

MiniHeap *SizeClassAllocator::newSpan(int Class) {
  const SizeClassInfo &Info = sizeClassInfo(Class);
  bool IsClean = false;
  const uint32_t Off = Arena.allocSpanForClass(Class, Info.SpanPages,
                                               &IsClean);
  if (Off == MeshableArena::kInvalidSpanOff)
    return nullptr;
  auto *MH = InternalHeap::global().makeNew<MiniHeap>(
      Off, Info.SpanPages, Info.ObjectSize, Info.ObjectCount,
      static_cast<int8_t>(Class), /*Meshable=*/false);
  Arena.setOwner(Off, Info.SpanPages, MH);
  if (Arena.committedPages() > PeakPages)
    PeakPages = Arena.committedPages();
  return MH;
}

void SizeClassAllocator::releaseSpan(MiniHeap *MH) {
  Arena.setOwner(MH->physicalSpanOffset(), MH->spanPages(), nullptr);
  Arena.freeDirtySpanForClass(MH->sizeClass(), MH->physicalSpanOffset(),
                              MH->spanPages());
  InternalHeap::global().deleteObj(MH);
}

void *SizeClassAllocator::allocSmall(int Class) {
  auto &List = Partial[Class];
  while (!List.empty()) {
    MiniHeap *MH = List.back();
    Bitmap &Bits = MH->bitmap();
    // Sequential first-free scan: deterministic, bump-like placement —
    // exactly the allocation order Mesh's randomization replaces.
    for (uint32_t I = 0; I < MH->objectCount(); ++I) {
      if (Bits.isSet(I))
        continue;
      Bits.tryToSet(I);
      if (MH->isFull())
        List.pop_back(); // Keep full spans out of the partial list.
      return MH->ptrForOffset(I, Arena.arenaBase());
    }
    assert(false && "full span lingered in the partial list");
    List.pop_back();
  }
  MiniHeap *MH = newSpan(Class);
  if (MH == nullptr)
    return nullptr;
  List.push_back(MH);
  MH->bitmap().tryToSet(0);
  return MH->ptrForOffset(0, Arena.arenaBase());
}

void *SizeClassAllocator::allocLarge(size_t Bytes) {
  const size_t Pages = bytesToPages(Bytes == 0 ? 1 : Bytes);
  if (Pages > Arena.vm().arenaPages())
    return nullptr; // Unsatisfiable; also guards the uint32 narrowing.
  bool IsClean = false;
  const uint32_t Off =
      Arena.allocLargeSpan(static_cast<uint32_t>(Pages), &IsClean);
  if (Off == MeshableArena::kInvalidSpanOff)
    return nullptr;
  auto *MH = InternalHeap::global().makeNew<MiniHeap>(
      Off, static_cast<uint32_t>(Pages), Bytes);
  Arena.setOwner(Off, static_cast<uint32_t>(Pages), MH);
  if (Arena.committedPages() > PeakPages)
    PeakPages = Arena.committedPages();
  return Arena.arenaBase() + pagesToBytes(Off);
}

void *SizeClassAllocator::malloc(size_t Bytes) {
  int Class;
  if (!sizeClassForSize(Bytes, &Class))
    return allocLarge(Bytes);
  return allocSmall(Class);
}

void SizeClassAllocator::free(void *Ptr) {
  if (Ptr == nullptr)
    return;
  MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr) {
    logWarning("baseline: ignoring free of unknown pointer %p", Ptr);
    return;
  }
  if (MH->isLargeAlloc()) {
    Arena.setOwner(MH->physicalSpanOffset(), MH->spanPages(), nullptr);
    Arena.freeReleasedLargeSpan(MH->physicalSpanOffset(), MH->spanPages());
    InternalHeap::global().deleteObj(MH);
    return;
  }
  const uint32_t Off = MH->offsetOf(Ptr, Arena.arenaBase());
  if (!MH->bitmap().unset(Off)) {
    logWarning("baseline: ignoring double free of %p", Ptr);
    return;
  }
  if (MH->isEmpty()) {
    // Remove from the partial list if present, then release the span.
    auto &List = Partial[MH->sizeClass()];
    for (size_t I = 0; I < List.size(); ++I) {
      if (List[I] == MH) {
        List[I] = List.back();
        List.pop_back();
        break;
      }
    }
    releaseSpan(MH);
    return;
  }
  if (MH->inUseCount() + 1 == MH->objectCount()) {
    // Was full; it has a free slot again.
    Partial[MH->sizeClass()].push_back(MH);
  }
}

size_t SizeClassAllocator::usableSize(const void *Ptr) const {
  const MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr)
    return 0;
  return MH->isLargeAlloc() ? MH->spanBytes() : MH->objectSize();
}

} // namespace mesh
