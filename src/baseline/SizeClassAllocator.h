//===- SizeClassAllocator.h - jemalloc-style baseline ------------*- C++ -*-===//
///
/// \file
/// A segregated-fit, span-based allocator — the "jemalloc" baseline of
/// the paper's evaluation. It shares Mesh's size classes and span
/// geometry (so internal fragmentation is identical) and releases
/// *empty* spans to the OS, but allocates sequentially within spans and
/// never compacts: a span with one live object pins all of its pages.
/// Structurally this is "Mesh (no meshing, no randomization)" built as
/// independent, simpler code.
///
/// Single-threaded by design, like FreeListAllocator.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_BASELINE_SIZECLASSALLOCATOR_H
#define MESH_BASELINE_SIZECLASSALLOCATOR_H

#include "baseline/HeapBackend.h"
#include "core/MeshableArena.h"
#include "core/MiniHeap.h"
#include "core/SizeClass.h"
#include "support/InternalVector.h"

#include <cstddef>

namespace mesh {

class SizeClassAllocator final : public HeapBackend {
public:
  explicit SizeClassAllocator(size_t ArenaBytes = size_t{4} << 30,
                              size_t MaxDirtyBytes = kMaxDirtyBytes);
  ~SizeClassAllocator() override;

  SizeClassAllocator(const SizeClassAllocator &) = delete;
  SizeClassAllocator &operator=(const SizeClassAllocator &) = delete;

  void *malloc(size_t Bytes) override;
  void free(void *Ptr) override;
  size_t usableSize(const void *Ptr) const override;
  size_t committedBytes() const override {
    return pagesToBytes(Arena.committedPages());
  }
  size_t peakCommittedBytes() const override {
    return pagesToBytes(PeakPages);
  }
  const char *name() const override { return "jemalloc-like sizeclass"; }

private:
  void *allocSmall(int Class);
  void *allocLarge(size_t Bytes);
  MiniHeap *newSpan(int Class);
  void releaseSpan(MiniHeap *MH);

  MeshableArena Arena;
  /// Partially full spans per class (LIFO: most recently used first).
  InternalVector<MiniHeap *> Partial[kNumSizeClasses];
  size_t PeakPages = 0;
};

} // namespace mesh

#endif // MESH_BASELINE_SIZECLASSALLOCATOR_H
