//===- GlobalHeap.cpp - Shared heap state and meshing coordinator ----------===//

#include "core/GlobalHeap.h"

#include "core/Mesher.h"
#include "core/WriteBarrier.h"
#include "support/InternalHeap.h"
#include "support/Log.h"

#include <cassert>
#include <cstring>
#include <ctime>
#include <mutex>

namespace mesh {

namespace {

uint64_t monotonicNs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(Ts.tv_nsec);
}

uint64_t monotonicMs() { return monotonicNs() / 1000000ULL; }

} // namespace

GlobalHeap::GlobalHeap(const MeshOptions &Options)
    : Opts(Options), Arena(Options.ArenaBytes, Options.MaxDirtyBytes),
      Random(Options.Seed) {
  if (Opts.BarrierEnabled) {
    WriteBarrier::instance().ensureHandlerInstalled();
    WriteBarrier::instance().registerArena(Arena.arenaBase(),
                                           Opts.ArenaBytes);
  }
}

GlobalHeap::~GlobalHeap() {
  // Reap the pending stash first: it may hold dead MiniHeaps (spans
  // already released, metadata awaiting the drain) that the page-table
  // walk below cannot see.
  {
    std::lock_guard<SpinLock> Guard(Lock);
    drainPendingLocked();
  }
  // Destroy every surviving MiniHeap so its metadata returns to the
  // internal heap (which is shared process-wide and outlives us).
  const size_t Frontier = Arena.frontierPages();
  for (size_t Page = 0; Page < Frontier; ++Page) {
    MiniHeap *MH = Arena.ownerOfPage(Page);
    if (MH == nullptr)
      continue;
    for (uint32_t Off : MH->spans())
      Arena.setOwner(Off, MH->spanPages(), nullptr);
    InternalHeap::global().deleteObj(MH);
  }
  if (Opts.BarrierEnabled)
    WriteBarrier::instance().unregisterArena(Arena.arenaBase());
}

void GlobalHeap::insertIntoBinLocked(MiniHeap *MH, uint32_t InUse) {
  // InUse is the caller's snapshot: lock-free remote frees may clear
  // more bits at any moment, so re-reading here could disagree with the
  // caller's bin-or-destroy decision. A stale (too-high) bin is benign;
  // the free that lowered it has queued MH on the pending stash, and
  // the next drain re-bins.
  assert(!MH->isInBin() && "double bin insertion");
  assert(InUse > 0 && InUse < MH->objectCount() &&
         "only partially full spans are binned");
  const int Bin = occupancyBin(InUse, MH->objectCount());
  auto &B = Bins[MH->sizeClass()][Bin];
  MH->setBin(static_cast<int8_t>(Bin), static_cast<uint32_t>(B.size()));
  B.push_back(MH);
}

void GlobalHeap::removeFromBinLocked(MiniHeap *MH) {
  if (!MH->isInBin())
    return;
  auto &B = Bins[MH->sizeClass()][MH->binIndex()];
  const uint32_t Slot = MH->binSlot();
  assert(Slot < B.size() && B[Slot] == MH && "bin bookkeeping corrupt");
  B[Slot] = B.back();
  B[Slot]->setBin(MH->binIndex(), Slot);
  B.pop_back();
  MH->clearBin();
}

void GlobalHeap::rebinOrDestroyLocked(MiniHeap *MH) {
  removeFromBinLocked(MH);
  const uint32_t InUse = MH->inUseCount();
  if (InUse == 0) {
    destroyMiniHeapLocked(MH);
    return;
  }
  if (InUse < MH->objectCount())
    insertIntoBinLocked(MH, InUse);
  // Full spans float unbinned; the page table still references them and
  // the next free re-bins them.
}

void GlobalHeap::destroyMiniHeapLocked(MiniHeap *MH) {
  assert(MH->isEmpty() && "destroying a MiniHeap with live objects");
  assert(!MH->isInBin() && "destroying a binned MiniHeap");
  const uint32_t Pages = MH->spanPages();
  const auto &Spans = MH->spans();
  for (uint32_t I = 0; I < Spans.size(); ++I)
    Arena.setOwner(Spans[I], Pages, nullptr);
  // Span 0 is the identity-mapped physical span; later entries are
  // virtual spans meshed onto it whose own file pages are already
  // holes. Releasing the pages immediately is safe: epoch readers only
  // dereference MiniHeap *metadata*, never span contents, and a stale
  // reader's bitmap update on this (empty) bitmap is a detected double
  // free. Only the metadata delete must wait for the epoch — batched
  // in reapRetiredLocked so a drain destroying many spans pays one
  // synchronize, not one per span.
  if (MH->isLargeAlloc() || !MH->isMeshable())
    Arena.freeReleasedSpan(Spans[0], Pages);
  else
    Arena.freeDirtySpan(Spans[0], Pages);
  for (uint32_t I = 1; I < Spans.size(); ++I)
    Arena.freeAliasSpan(Spans[I], Pages);
  RetiredList.push_back(MH);
}

void GlobalHeap::reapRetiredLocked() {
  if (RetiredList.empty())
    return;
  // One epoch advance covers every retiree: after it, no reader can
  // still hold a pointer resolved before the page table was cleared
  // (or retargeted, for meshed-away sources).
  MiniHeapEpoch.synchronize();
  for (MiniHeap *MH : RetiredList) {
    if (MH->pendingFrees() != 0) {
      // A waited-out remote free pushed MH onto the stash (its bitmap
      // update lost to the destruction, which is fine — the object was
      // already gone). The metadata must survive until the drain pops
      // the stale entry; mark it so the drain performs the delete.
      MH->markDead();
    } else {
      InternalHeap::global().deleteObj(MH);
    }
  }
  RetiredList.clear();
}

void GlobalHeap::pushPending(MiniHeap *MH) {
  MiniHeap *Head = PendingStash.load(std::memory_order_acquire);
  do {
    MH->setNextPending(Head);
  } while (!PendingStash.compare_exchange_weak(Head, MH,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire));
}

void GlobalHeap::drainPendingLocked() {
  MiniHeap *MH = PendingStash.exchange(nullptr, std::memory_order_acq_rel);
  while (MH != nullptr) {
    MiniHeap *Next = MH->nextPending();
    MH->setNextPending(nullptr);
    if (MH->isDead()) {
      // Destroyed while stashed; this was the last reference.
      InternalHeap::global().deleteObj(MH);
    } else {
      MH->takePendingFrees();
      // Attached spans stay with their owner thread — the cleared bits
      // are picked up at the next attach (Section 4.4.4). A racer that
      // frees after takePendingFrees re-pushes MH for the next drain.
      if (!MH->isAttached())
        rebinOrDestroyLocked(MH);
    }
    MH = Next;
  }
  reapRetiredLocked();
}

MiniHeap *GlobalHeap::allocMiniHeapForClass(int SizeClass) {
  assert(SizeClass >= 0 && SizeClass < kNumSizeClasses &&
         "size class out of range");
  std::lock_guard<SpinLock> Guard(Lock);
  // Fold queued remote frees into the bins first: a span another thread
  // just emptied out may be exactly the reuse candidate we want. Also
  // the meshing trigger: remote frees no longer take the lock, so the
  // refill path is where a free-heavy steady state (partially-full
  // spans that never empty) gets its rate-limited mesh passes — the
  // role every locked free used to play.
  drainPendingLocked();
  maybeMeshLocked();
  // Scan bins by decreasing occupancy and choose a random span from the
  // first non-empty bin (Section 3.1): maximizes utilization while
  // preserving the randomness the analysis relies on.
  for (int Bin = kOccupancyBins - 1; Bin >= 0; --Bin) {
    auto &B = Bins[SizeClass][Bin];
    if (B.empty())
      continue;
    const uint32_t Idx =
        Random.inRange(0, static_cast<uint32_t>(B.size()) - 1);
    MiniHeap *MH = B[Idx];
    removeFromBinLocked(MH);
    MH->setAttached(true);
    return MH;
  }
  // No partially full span: carve a fresh one out of the arena.
  const SizeClassInfo &Info = sizeClassInfo(SizeClass);
  bool IsClean = false;
  const uint32_t Off = Arena.allocSpan(Info.SpanPages, &IsClean);
  auto *MH = InternalHeap::global().makeNew<MiniHeap>(
      Off, Info.SpanPages, Info.ObjectSize, Info.ObjectCount,
      static_cast<int8_t>(SizeClass), Info.Meshable);
  Arena.setOwner(Off, Info.SpanPages, MH);
  MH->setAttached(true);
  Stats.updatePeak(Arena.committedPages());
  return MH;
}

void GlobalHeap::releaseMiniHeap(MiniHeap *MH) {
  if (MH == nullptr)
    return;
  std::lock_guard<SpinLock> Guard(Lock);
  MH->setAttached(false);
  rebinOrDestroyLocked(MH);
  reapRetiredLocked();
}

void *GlobalHeap::largeAllocZeroed(size_t Bytes, bool *WasZeroed) {
  const size_t Pages = bytesToPages(Bytes == 0 ? 1 : Bytes);
  std::lock_guard<SpinLock> Guard(Lock);
  bool IsClean = false;
  const uint32_t Off = Arena.allocSpan(static_cast<uint32_t>(Pages),
                                       &IsClean);
  auto *MH = InternalHeap::global().makeNew<MiniHeap>(
      Off, static_cast<uint32_t>(Pages), Bytes);
  Arena.setOwner(Off, static_cast<uint32_t>(Pages), MH);
  Stats.updatePeak(Arena.committedPages());
  if (WasZeroed != nullptr)
    *WasZeroed = IsClean;
  return Arena.arenaBase() + pagesToBytes(Off);
}

bool GlobalHeap::tryFreeUnlocked(void *Ptr, bool *BecameEmpty) {
  Epoch::Section Section(MiniHeapEpoch);
  // Checked inside the epoch: a mesh pass flags itself and then waits
  // out this epoch, so either we see the flag and divert, or the pass
  // waits for this free to finish before touching any bitmap.
  if (MeshInProgress.load(std::memory_order_seq_cst))
    return false;
  MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr) {
    logWarning("ignoring free of unallocated pointer %p", Ptr);
    return true;
  }
  if (MH->isLargeAlloc())
    return false; // Span release needs the lock.
  uint32_t Off = 0;
  if (!MH->offsetOfAligned(Ptr, Arena.arenaBase(), &Off)) {
    logWarning("ignoring free of interior pointer %p", Ptr);
    return true;
  }
  if (!MH->bitmap().unset(Off)) {
    logWarning("ignoring double free of %p", Ptr);
    return true;
  }
  FreedSinceLastMesh.store(true, std::memory_order_relaxed);
  // First pending free queues MH for the next lock-held drain.
  if (MH->notePendingFree() == 0)
    pushPending(MH);
  *BecameEmpty = MH->isEmpty();
  return true;
}

void GlobalHeap::free(void *Ptr) {
  if (Ptr == nullptr)
    return;
  if (!Arena.contains(Ptr)) {
    logWarning("ignoring free of non-heap pointer %p", Ptr);
    return;
  }
  bool BecameEmpty = false;
  if (tryFreeUnlocked(Ptr, &BecameEmpty)) {
    // The free itself is complete: one epoch-protected lookup and one
    // atomic bitmap update, the paper's cost model. Re-binning is
    // deferred to the next allocation refill or mesh pass, both of
    // which drain the pending stash under the lock. Only the
    // empty-span transition warrants maintenance now — its pages
    // should go back to the arena promptly — and even then a
    // contended lock means someone else is already in there and will
    // drain on our behalf.
    if (BecameEmpty && Lock.try_lock()) {
      std::lock_guard<SpinLock> Guard(Lock, std::adopt_lock);
      drainPendingLocked();
      maybeMeshLocked();
    }
    return;
  }
  // Large object, or a mesh pass is consolidating spans: serialize.
  std::lock_guard<SpinLock> Guard(Lock);
  MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr) {
    logWarning("ignoring free of unallocated pointer %p", Ptr);
    return;
  }
  freeLocked(MH, Ptr);
  reapRetiredLocked();
  maybeMeshLocked();
}

void GlobalHeap::freeLocked(MiniHeap *MH, void *Ptr) {
  if (!MH->isAligned(Ptr, Arena.arenaBase())) {
    logWarning("ignoring free of interior pointer %p", Ptr);
    return;
  }
  const uint32_t Off = MH->offsetOf(Ptr, Arena.arenaBase());
  if (!MH->bitmap().unset(Off)) {
    logWarning("ignoring double free of %p", Ptr);
    return;
  }
  FreedSinceLastMesh.store(true, std::memory_order_relaxed);
  if (MH->isLargeAlloc()) {
    destroyMiniHeapLocked(MH);
    return;
  }
  if (!MH->isAttached())
    rebinOrDestroyLocked(MH);
  // Attached MiniHeaps stay with their owner thread; the cleared bit is
  // picked up at the next attach (Section 4.4.4).
}

size_t GlobalHeap::usableSize(const void *Ptr) const {
  Epoch::Section Section(MiniHeapEpoch);
  const MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr)
    return 0;
  return MH->isLargeAlloc() ? MH->spanBytes() : MH->objectSize();
}

size_t GlobalHeap::meshNow() {
  // The ablation switch wins even over explicit requests: a "Mesh (no
  // meshing)" heap must never compact (Section 6.3).
  if (!Opts.MeshingEnabled)
    return 0;
  std::lock_guard<SpinLock> Guard(Lock);
  return performMeshingLocked();
}

void GlobalHeap::maybeMesh() {
  if (!Opts.MeshingEnabled)
    return;
  std::lock_guard<SpinLock> Guard(Lock);
  drainPendingLocked();
  maybeMeshLocked();
}

void GlobalHeap::maybeMeshLocked() {
  if (!Opts.MeshingEnabled || InMeshPass)
    return;
  const uint64_t Now = monotonicMs();
  if (Now - LastMeshMs < Opts.MeshPeriodMs)
    return;
  // Hysteresis (Section 4.5): after an ineffective pass, wait for
  // another global free before re-arming.
  if (LastMeshReleased < Opts.MeshEffectiveBytes &&
      !FreedSinceLastMesh.load(std::memory_order_relaxed))
    return;
  performMeshingLocked();
}

size_t GlobalHeap::flushDirtyPages() {
  std::lock_guard<SpinLock> Guard(Lock);
  // Destroy queued-up empty spans first so their pages flush too.
  drainPendingLocked();
  return pagesToBytes(Arena.flushDirty());
}

size_t GlobalHeap::binnedCount(int SizeClass) {
  std::lock_guard<SpinLock> Guard(Lock);
  drainPendingLocked();
  size_t Count = 0;
  for (int Bin = 0; Bin < kOccupancyBins; ++Bin)
    Count += Bins[SizeClass][Bin].size();
  return Count;
}

size_t GlobalHeap::performMeshingLocked() {
  InMeshPass = true;
  // Quiesce the lock-free free path: raise the flag, then wait out
  // every free already past the flag check. From here until the flag
  // drops, remote frees serialize on the lock (they queue behind this
  // pass), so bitmaps only change under our feet through attached
  // shuffle vectors — which never cover meshing candidates.
  MeshInProgress.store(true, std::memory_order_seq_cst);
  MiniHeapEpoch.synchronize();
  drainPendingLocked();
  const uint64_t Start = monotonicNs();
  size_t PagesReleased = 0;
  uint32_t MeshedThisPass = 0;

  InternalVector<MiniHeap *> Candidates;
  InternalVector<MeshPair> Pairs;
  for (int Class = 0; Class < kNumSizeClasses; ++Class) {
    if (!sizeClassInfo(Class).Meshable)
      continue;
    Candidates.clear();
    // Only spans at <= 50% occupancy can possibly mesh: two spans each
    // more than half full must collide on some offset (pigeonhole), so
    // probing them is pure waste.
    for (int Bin = 0; Bin < kOccupancyBins; ++Bin)
      for (MiniHeap *MH : Bins[Class][Bin])
        if (2 * MH->inUseCount() <= MH->objectCount() &&
            MH->isMeshingCandidate())
          Candidates.push_back(MH);
    if (Candidates.size() < 2)
      continue;
    Pairs.clear();
    uint64_t Probes = 0;
    splitMesher(Candidates, Opts.MeshProbes, Random, Pairs, &Probes);
    Stats.MeshProbeCount.fetch_add(Probes, std::memory_order_relaxed);
    for (auto &[A, B] : Pairs) {
      if (Opts.MaxMeshesPerPass != 0 &&
          MeshedThisPass >= Opts.MaxMeshesPerPass)
        break; // Pause bound: the next pass re-finds leftover pairs.
      // Keep the fuller span so fewer objects move.
      MiniHeap *Dst = A->inUseCount() >= B->inUseCount() ? A : B;
      MiniHeap *Src = Dst == A ? B : A;
      PagesReleased += meshPairLocked(Dst, Src);
      ++MeshedThisPass;
    }
    if (Opts.MaxMeshesPerPass != 0 &&
        MeshedThisPass >= Opts.MaxMeshesPerPass)
      break;
  }

  // Section 4.4.1: pages return to the OS after the dirty budget fills
  // *or whenever meshing is invoked* — a pass is already paying for
  // page-table work, so piggyback the dirty-page flush.
  Arena.flushDirty();
  reapRetiredLocked();

  const uint64_t Elapsed = monotonicNs() - Start;
  Stats.recordPass(Elapsed);
  LastMeshMs = monotonicMs();
  LastMeshReleased = pagesToBytes(PagesReleased);
  FreedSinceLastMesh.store(false, std::memory_order_relaxed);
  MeshInProgress.store(false, std::memory_order_seq_cst);
  InMeshPass = false;
  return pagesToBytes(PagesReleased);
}

// The consolidation copy reads (and writes) application objects that
// concurrent threads may touch; serialization is physical — the spans
// are mprotect'ed read-only and a racing writer faults into the
// SIGSEGV write barrier, which waits the pass out. TSan cannot see
// page-protection ordering, so this lives in its own noinline
// function and tsan.supp suppresses exactly this symbol; everything
// else in a mesh pass stays under TSan.
__attribute__((noinline)) size_t
GlobalHeap::meshCopyBarrierProtected(MiniHeap *Dst, MiniHeap *Src,
                                     char *Base) {
  const size_t ObjSize = Src->objectSize();
  size_t Copied = 0;
  Src->bitmap().forEachSet([&](uint32_t Off) {
    memcpy(Dst->ptrForOffset(Off, Base), Src->ptrForOffset(Off, Base),
           ObjSize);
    Copied += ObjSize;
  });
  return Copied;
}

size_t GlobalHeap::meshPairLocked(MiniHeap *Dst, MiniHeap *Src) {
  assert(canMeshPair(Dst, Src) && "meshing an unmeshable pair");
  char *Base = Arena.arenaBase();
  const uint32_t Pages = Src->spanPages();
  WriteBarrier &Barrier = WriteBarrier::instance();

  // 1. Write barrier: mark every virtual span of the source read-only
  //    so no thread mutates objects while they are being relocated.
  if (Opts.BarrierEnabled) {
    Barrier.beginEpoch();
    for (uint32_t Off : Src->spans()) {
      Barrier.addProtectedRange(Base + pagesToBytes(Off),
                                pagesToBytes(Pages));
      Arena.vm().protect(Off, Pages, /*ReadOnly=*/true);
    }
  }

  // 2. Consolidate: copy live source objects into the keeper's holes.
  //    Offsets are preserved, so virtual addresses never change.
  const size_t Copied = meshCopyBarrierProtected(Dst, Src, Base);
  Dst->bitmap().mergeFrom(Src->bitmap());

  // 3. Retarget page-table entries so frees of source-span pointers
  //    find the keeper.
  for (uint32_t Off : Src->spans())
    Arena.setOwner(Off, Pages, Dst);

  // 4. Remap every source virtual span onto the keeper's physical span
  //    (atomic per-span; concurrent readers are never interrupted),
  //    then release the source's physical pages to the OS.
  const uint32_t SrcPhys = Src->physicalSpanOffset();
  for (uint32_t Off : Src->spans())
    Arena.vm().alias(Off, Dst->physicalSpanOffset(), Pages);
  Arena.vm().release(SrcPhys, Pages);

  // 5. Bookkeeping: the keeper absorbs the source's virtual spans and
  //    moves to its new occupancy bin; the source MiniHeap dies. A
  //    page-table reader may still hold the stale resolution to Src
  //    (local fast-path lookups don't divert on MeshInProgress), so
  //    its metadata is retired, not deleted — the pass-end reap
  //    advances the epoch once and waits those readers out.
  removeFromBinLocked(Src);
  removeFromBinLocked(Dst);
  Dst->takeSpansFrom(*Src);
  const uint32_t InUse = Dst->inUseCount();
  if (InUse > 0 && InUse < Dst->objectCount())
    insertIntoBinLocked(Dst, InUse);
  RetiredList.push_back(Src);

  if (Opts.BarrierEnabled)
    Barrier.endEpoch();

  Stats.MeshCount.fetch_add(1, std::memory_order_relaxed);
  Stats.PagesMeshed.fetch_add(Pages, std::memory_order_relaxed);
  Stats.BytesCopied.fetch_add(Copied, std::memory_order_relaxed);
  return Pages;
}

} // namespace mesh
