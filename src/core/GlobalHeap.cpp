//===- GlobalHeap.cpp - Shared heap state and meshing coordinator ----------===//

#include "core/GlobalHeap.h"

#include "core/Mesher.h"
#include "core/WriteBarrier.h"
#include "support/InternalHeap.h"
#include "support/Log.h"

#include <cassert>
#include <cstring>
#include <ctime>
#include <mutex>

namespace mesh {

namespace {

uint64_t monotonicNs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(Ts.tv_nsec);
}

uint64_t monotonicMs() { return monotonicNs() / 1000000ULL; }

} // namespace

GlobalHeap::GlobalHeap(const MeshOptions &Options)
    : Opts(Options), Arena(Options.ArenaBytes, Options.MaxDirtyBytes),
      Random(Options.Seed) {
  if (Opts.BarrierEnabled) {
    WriteBarrier::instance().ensureHandlerInstalled();
    WriteBarrier::instance().registerArena(Arena.arenaBase(),
                                           Opts.ArenaBytes);
  }
}

GlobalHeap::~GlobalHeap() {
  // Destroy every surviving MiniHeap so its metadata returns to the
  // internal heap (which is shared process-wide and outlives us).
  const size_t Frontier = Arena.frontierPages();
  for (size_t Page = 0; Page < Frontier; ++Page) {
    MiniHeap *MH = Arena.ownerOfPage(Page);
    if (MH == nullptr)
      continue;
    for (uint32_t Off : MH->spans())
      Arena.setOwner(Off, MH->spanPages(), nullptr);
    InternalHeap::global().deleteObj(MH);
  }
  if (Opts.BarrierEnabled)
    WriteBarrier::instance().unregisterArena(Arena.arenaBase());
}

void GlobalHeap::insertIntoBinLocked(MiniHeap *MH) {
  assert(!MH->isInBin() && "double bin insertion");
  const uint32_t InUse = MH->inUseCount();
  assert(InUse > 0 && InUse < MH->objectCount() &&
         "only partially full spans are binned");
  const int Bin = occupancyBin(InUse, MH->objectCount());
  auto &B = Bins[MH->sizeClass()][Bin];
  MH->setBin(static_cast<int8_t>(Bin), static_cast<uint32_t>(B.size()));
  B.push_back(MH);
}

void GlobalHeap::removeFromBinLocked(MiniHeap *MH) {
  if (!MH->isInBin())
    return;
  auto &B = Bins[MH->sizeClass()][MH->binIndex()];
  const uint32_t Slot = MH->binSlot();
  assert(Slot < B.size() && B[Slot] == MH && "bin bookkeeping corrupt");
  B[Slot] = B.back();
  B[Slot]->setBin(MH->binIndex(), Slot);
  B.pop_back();
  MH->clearBin();
}

void GlobalHeap::rebinOrDestroyLocked(MiniHeap *MH) {
  removeFromBinLocked(MH);
  const uint32_t InUse = MH->inUseCount();
  if (InUse == 0) {
    destroyMiniHeapLocked(MH);
    return;
  }
  if (InUse < MH->objectCount())
    insertIntoBinLocked(MH);
  // Full spans float unbinned; the page table still references them and
  // the next free re-bins them.
}

void GlobalHeap::destroyMiniHeapLocked(MiniHeap *MH) {
  assert(MH->isEmpty() && "destroying a MiniHeap with live objects");
  assert(!MH->isInBin() && "destroying a binned MiniHeap");
  const uint32_t Pages = MH->spanPages();
  const auto &Spans = MH->spans();
  for (uint32_t I = 0; I < Spans.size(); ++I)
    Arena.setOwner(Spans[I], Pages, nullptr);
  // Span 0 is the identity-mapped physical span; later entries are
  // virtual spans meshed onto it whose own file pages are already
  // holes.
  if (MH->isLargeAlloc() || !MH->isMeshable())
    Arena.freeReleasedSpan(Spans[0], Pages);
  else
    Arena.freeDirtySpan(Spans[0], Pages);
  for (uint32_t I = 1; I < Spans.size(); ++I)
    Arena.freeAliasSpan(Spans[I], Pages);
  InternalHeap::global().deleteObj(MH);
}

MiniHeap *GlobalHeap::allocMiniHeapForClass(int SizeClass) {
  assert(SizeClass >= 0 && SizeClass < kNumSizeClasses &&
         "size class out of range");
  std::lock_guard<SpinLock> Guard(Lock);
  // Scan bins by decreasing occupancy and choose a random span from the
  // first non-empty bin (Section 3.1): maximizes utilization while
  // preserving the randomness the analysis relies on.
  for (int Bin = kOccupancyBins - 1; Bin >= 0; --Bin) {
    auto &B = Bins[SizeClass][Bin];
    if (B.empty())
      continue;
    const uint32_t Idx =
        Random.inRange(0, static_cast<uint32_t>(B.size()) - 1);
    MiniHeap *MH = B[Idx];
    removeFromBinLocked(MH);
    MH->setAttached(true);
    return MH;
  }
  // No partially full span: carve a fresh one out of the arena.
  const SizeClassInfo &Info = sizeClassInfo(SizeClass);
  bool IsClean = false;
  const uint32_t Off = Arena.allocSpan(Info.SpanPages, &IsClean);
  auto *MH = InternalHeap::global().makeNew<MiniHeap>(
      Off, Info.SpanPages, Info.ObjectSize, Info.ObjectCount,
      static_cast<int8_t>(SizeClass), Info.Meshable);
  Arena.setOwner(Off, Info.SpanPages, MH);
  MH->setAttached(true);
  Stats.updatePeak(Arena.committedPages());
  return MH;
}

void GlobalHeap::releaseMiniHeap(MiniHeap *MH) {
  if (MH == nullptr)
    return;
  std::lock_guard<SpinLock> Guard(Lock);
  MH->setAttached(false);
  rebinOrDestroyLocked(MH);
}

void *GlobalHeap::largeAlloc(size_t Bytes) {
  const size_t Pages = bytesToPages(Bytes == 0 ? 1 : Bytes);
  std::lock_guard<SpinLock> Guard(Lock);
  bool IsClean = false;
  const uint32_t Off = Arena.allocSpan(static_cast<uint32_t>(Pages),
                                       &IsClean);
  auto *MH = InternalHeap::global().makeNew<MiniHeap>(
      Off, static_cast<uint32_t>(Pages), Bytes);
  Arena.setOwner(Off, static_cast<uint32_t>(Pages), MH);
  Stats.updatePeak(Arena.committedPages());
  return Arena.arenaBase() + pagesToBytes(Off);
}

void GlobalHeap::free(void *Ptr) {
  if (Ptr == nullptr)
    return;
  if (!Arena.contains(Ptr)) {
    logWarning("ignoring free of non-heap pointer %p", Ptr);
    return;
  }
  std::lock_guard<SpinLock> Guard(Lock);
  // Look the owner up under the lock: a concurrent mesh may retarget
  // the page-table entry.
  MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr) {
    logWarning("ignoring free of unallocated pointer %p", Ptr);
    return;
  }
  freeLocked(MH, Ptr);
  maybeMeshLocked();
}

void GlobalHeap::freeLocked(MiniHeap *MH, void *Ptr) {
  if (!MH->isAligned(Ptr, Arena.arenaBase())) {
    logWarning("ignoring free of interior pointer %p", Ptr);
    return;
  }
  const uint32_t Off = MH->offsetOf(Ptr, Arena.arenaBase());
  if (!MH->bitmap().unset(Off)) {
    logWarning("ignoring double free of %p", Ptr);
    return;
  }
  FreedSinceLastMesh = true;
  if (MH->isLargeAlloc()) {
    destroyMiniHeapLocked(MH);
    return;
  }
  if (!MH->isAttached())
    rebinOrDestroyLocked(MH);
  // Attached MiniHeaps stay with their owner thread; the cleared bit is
  // picked up at the next attach (Section 4.4.4).
}

size_t GlobalHeap::usableSize(const void *Ptr) const {
  const MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr)
    return 0;
  return MH->isLargeAlloc() ? MH->spanBytes() : MH->objectSize();
}

size_t GlobalHeap::meshNow() {
  // The ablation switch wins even over explicit requests: a "Mesh (no
  // meshing)" heap must never compact (Section 6.3).
  if (!Opts.MeshingEnabled)
    return 0;
  std::lock_guard<SpinLock> Guard(Lock);
  return performMeshingLocked();
}

void GlobalHeap::maybeMesh() {
  if (!Opts.MeshingEnabled)
    return;
  std::lock_guard<SpinLock> Guard(Lock);
  maybeMeshLocked();
}

void GlobalHeap::maybeMeshLocked() {
  if (!Opts.MeshingEnabled || InMeshPass)
    return;
  const uint64_t Now = monotonicMs();
  if (Now - LastMeshMs < Opts.MeshPeriodMs)
    return;
  // Hysteresis (Section 4.5): after an ineffective pass, wait for
  // another global free before re-arming.
  if (LastMeshReleased < Opts.MeshEffectiveBytes && !FreedSinceLastMesh)
    return;
  performMeshingLocked();
}

size_t GlobalHeap::flushDirtyPages() {
  std::lock_guard<SpinLock> Guard(Lock);
  return pagesToBytes(Arena.flushDirty());
}

size_t GlobalHeap::binnedCount(int SizeClass) const {
  std::lock_guard<SpinLock> Guard(Lock);
  size_t Count = 0;
  for (int Bin = 0; Bin < kOccupancyBins; ++Bin)
    Count += Bins[SizeClass][Bin].size();
  return Count;
}

size_t GlobalHeap::performMeshingLocked() {
  InMeshPass = true;
  const uint64_t Start = monotonicNs();
  size_t PagesReleased = 0;
  uint32_t MeshedThisPass = 0;

  InternalVector<MiniHeap *> Candidates;
  InternalVector<MeshPair> Pairs;
  for (int Class = 0; Class < kNumSizeClasses; ++Class) {
    if (!sizeClassInfo(Class).Meshable)
      continue;
    Candidates.clear();
    // Only spans at <= 50% occupancy can possibly mesh: two spans each
    // more than half full must collide on some offset (pigeonhole), so
    // probing them is pure waste.
    for (int Bin = 0; Bin < kOccupancyBins; ++Bin)
      for (MiniHeap *MH : Bins[Class][Bin])
        if (2 * MH->inUseCount() <= MH->objectCount() &&
            MH->isMeshingCandidate())
          Candidates.push_back(MH);
    if (Candidates.size() < 2)
      continue;
    Pairs.clear();
    uint64_t Probes = 0;
    splitMesher(Candidates, Opts.MeshProbes, Random, Pairs, &Probes);
    Stats.MeshProbeCount.fetch_add(Probes, std::memory_order_relaxed);
    for (auto &[A, B] : Pairs) {
      if (Opts.MaxMeshesPerPass != 0 &&
          MeshedThisPass >= Opts.MaxMeshesPerPass)
        break; // Pause bound: the next pass re-finds leftover pairs.
      // Keep the fuller span so fewer objects move.
      MiniHeap *Dst = A->inUseCount() >= B->inUseCount() ? A : B;
      MiniHeap *Src = Dst == A ? B : A;
      PagesReleased += meshPairLocked(Dst, Src);
      ++MeshedThisPass;
    }
    if (Opts.MaxMeshesPerPass != 0 &&
        MeshedThisPass >= Opts.MaxMeshesPerPass)
      break;
  }

  // Section 4.4.1: pages return to the OS after the dirty budget fills
  // *or whenever meshing is invoked* — a pass is already paying for
  // page-table work, so piggyback the dirty-page flush.
  Arena.flushDirty();

  const uint64_t Elapsed = monotonicNs() - Start;
  Stats.recordPass(Elapsed);
  LastMeshMs = monotonicMs();
  LastMeshReleased = pagesToBytes(PagesReleased);
  FreedSinceLastMesh = false;
  InMeshPass = false;
  return pagesToBytes(PagesReleased);
}

size_t GlobalHeap::meshPairLocked(MiniHeap *Dst, MiniHeap *Src) {
  assert(canMeshPair(Dst, Src) && "meshing an unmeshable pair");
  char *Base = Arena.arenaBase();
  const uint32_t Pages = Src->spanPages();
  const size_t ObjSize = Src->objectSize();
  WriteBarrier &Barrier = WriteBarrier::instance();

  // 1. Write barrier: mark every virtual span of the source read-only
  //    so no thread mutates objects while they are being relocated.
  if (Opts.BarrierEnabled) {
    Barrier.beginEpoch();
    for (uint32_t Off : Src->spans()) {
      Barrier.addProtectedRange(Base + pagesToBytes(Off),
                                pagesToBytes(Pages));
      Arena.vm().protect(Off, Pages, /*ReadOnly=*/true);
    }
  }

  // 2. Consolidate: copy live source objects into the keeper's holes.
  //    Offsets are preserved, so virtual addresses never change.
  size_t Copied = 0;
  Src->bitmap().forEachSet([&](uint32_t Off) {
    memcpy(Dst->ptrForOffset(Off, Base), Src->ptrForOffset(Off, Base),
           ObjSize);
    Copied += ObjSize;
  });
  Dst->bitmap().mergeFrom(Src->bitmap());

  // 3. Retarget page-table entries so frees of source-span pointers
  //    find the keeper.
  for (uint32_t Off : Src->spans())
    Arena.setOwner(Off, Pages, Dst);

  // 4. Remap every source virtual span onto the keeper's physical span
  //    (atomic per-span; concurrent readers are never interrupted),
  //    then release the source's physical pages to the OS.
  const uint32_t SrcPhys = Src->physicalSpanOffset();
  for (uint32_t Off : Src->spans())
    Arena.vm().alias(Off, Dst->physicalSpanOffset(), Pages);
  Arena.vm().release(SrcPhys, Pages);

  // 5. Bookkeeping: the keeper absorbs the source's virtual spans and
  //    moves to its new occupancy bin; the source MiniHeap dies.
  removeFromBinLocked(Src);
  removeFromBinLocked(Dst);
  Dst->takeSpansFrom(*Src);
  const uint32_t InUse = Dst->inUseCount();
  if (InUse > 0 && InUse < Dst->objectCount())
    insertIntoBinLocked(Dst);
  InternalHeap::global().deleteObj(Src);

  if (Opts.BarrierEnabled)
    Barrier.endEpoch();

  Stats.MeshCount.fetch_add(1, std::memory_order_relaxed);
  Stats.PagesMeshed.fetch_add(Pages, std::memory_order_relaxed);
  Stats.BytesCopied.fetch_add(Copied, std::memory_order_relaxed);
  return Pages;
}

} // namespace mesh
