//===- GlobalHeap.cpp - Shared heap state and meshing coordinator ----------===//

#include "core/GlobalHeap.h"

#include "core/Mesher.h"
#include "core/WriteBarrier.h"
#include "support/InternalHeap.h"
#include "support/LockRank.h"
#include "support/Log.h"
#include "support/Telemetry.h"

#include <cassert>
#include <cstring>
#include <ctime>

namespace mesh {

namespace {

uint64_t monotonicNs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(Ts.tv_nsec);
}

uint64_t monotonicMs() { return monotonicNs() / 1000000ULL; }

} // namespace

GlobalHeap::GlobalHeap(const MeshOptions &Options)
    : Opts(Options), Arena(Options.ArenaBytes, Options.MaxDirtyBytes),
      MeshRandom(Options.Seed), MeshingEnabledFlag(Options.MeshingEnabled),
      MeshPeriodMsAtomic(Options.MeshPeriodMs) {
  // Independent bin-selection streams per shard: refills of different
  // classes draw concurrently under different locks, so they cannot
  // share the mesher's generator.
  for (int I = 0; I < kNumShards; ++I)
    Shards[I].Random.seed(Options.Seed ^ (0x517CC1B727220A95ULL * (I + 1)));
  if (Opts.BarrierEnabled) {
    WriteBarrier::instance().ensureHandlerInstalled();
    WriteBarrier::instance().registerArena(Arena.arenaBase(),
                                           Opts.ArenaBytes);
  }
}

GlobalHeap::~GlobalHeap() {
  // Reap every shard's pending stash first: it may hold dead MiniHeaps
  // (spans already released, metadata awaiting the drain) that the
  // page-table walk below cannot see.
  drainAllShards();
  // Destroy every surviving MiniHeap so its metadata returns to the
  // internal heap (which is shared process-wide and outlives us).
  const size_t Frontier = Arena.frontierPages();
  for (size_t Page = 0; Page < Frontier; ++Page) {
    MiniHeap *MH = Arena.ownerOfPage(Page);
    if (MH == nullptr)
      continue;
    for (uint32_t Off : MH->spans())
      Arena.setOwner(Off, MH->spanPages(), nullptr);
    InternalHeap::global().deleteObj(MH);
  }
  if (Opts.BarrierEnabled)
    WriteBarrier::instance().unregisterArena(Arena.arenaBase());
}

void GlobalHeap::lockShard(int ShardIdx) {
  assert(ShardIdx >= 0 && ShardIdx < kNumShards && "shard out of range");
  // Rank enforcement (ascending order, never after an arena lock)
  // lives in LockRank.h — shared with the arena's own shard tier.
  lockrank::acquireHeapShard(ShardIdx);
  Shards[ShardIdx].Lock.lock();
}

void GlobalHeap::unlockShard(int ShardIdx) {
  lockrank::releaseHeapShard(ShardIdx);
  Shards[ShardIdx].Lock.unlock();
}

void GlobalHeap::insertIntoBinLocked(Shard &S, MiniHeap *MH, uint32_t InUse) {
  // InUse is the caller's snapshot: lock-free remote frees may clear
  // more bits at any moment, so re-reading here could disagree with the
  // caller's bin-or-destroy decision. A stale (too-high) bin is benign;
  // the free that lowered it has queued MH on the pending stash, and
  // the next drain re-bins.
  assert(!MH->isInBin() && "double bin insertion");
  assert(InUse > 0 && InUse < MH->objectCount() &&
         "only partially full spans are binned");
  const int Bin = occupancyBin(InUse, MH->objectCount());
  auto &B = S.Bins[Bin];
  MH->setBin(static_cast<int8_t>(Bin), static_cast<uint32_t>(B.size()));
  B.push_back(MH);
}

void GlobalHeap::removeFromBinLocked(Shard &S, MiniHeap *MH) {
  if (!MH->isInBin())
    return;
  auto &B = S.Bins[MH->binIndex()];
  const uint32_t Slot = MH->binSlot();
  assert(Slot < B.size() && B[Slot] == MH && "bin bookkeeping corrupt");
  B[Slot] = B.back();
  B[Slot]->setBin(MH->binIndex(), Slot);
  B.pop_back();
  MH->clearBin();
}

void GlobalHeap::rebinOrDestroyLocked(Shard &S, MiniHeap *MH) {
  removeFromBinLocked(S, MH);
  const uint32_t InUse = MH->inUseCount();
  if (InUse == 0) {
    destroyMiniHeapLocked(S, MH);
    return;
  }
  if (InUse < MH->objectCount())
    insertIntoBinLocked(S, MH, InUse);
  // Full spans float unbinned; the page table still references them and
  // the next free re-bins them.
}

void GlobalHeap::destroyMiniHeapLocked(Shard &S, MiniHeap *MH) {
  assert(MH->isEmpty() && "destroying a MiniHeap with live objects");
  assert(!MH->isInBin() && "destroying a binned MiniHeap");
  const uint32_t Pages = MH->spanPages();
  const auto &Spans = MH->spans();
  // Span 0 is the identity-mapped physical span; later entries are
  // virtual spans meshed onto it whose own file pages are already
  // holes. Releasing the pages immediately is safe: epoch readers only
  // dereference MiniHeap *metadata*, never span contents, and a stale
  // reader's bitmap update on this (empty) bitmap is a detected double
  // free. Only the metadata delete must wait for the epoch — batched
  // in reapRetiredLocked so a drain destroying many spans pays one
  // synchronize, not one per span. The arena calls below serialize on
  // the span's own class shard (the heap shard lock we hold is what
  // guarantees no other thread is moving these spans), so destroys of
  // different classes run fully in parallel.
  for (uint32_t I = 0; I < Spans.size(); ++I)
    Arena.setOwner(Spans[I], Pages, nullptr);
  if (MH->isLargeAlloc())
    Arena.freeReleasedLargeSpan(Spans[0], Pages);
  else if (!MH->isMeshable())
    Arena.freeReleasedSpanForClass(MH->sizeClass(), Spans[0], Pages);
  else
    Arena.freeDirtySpanForClass(MH->sizeClass(), Spans[0], Pages);
  for (uint32_t I = 1; I < Spans.size(); ++I)
    Arena.freeAliasSpan(MH->sizeClass(), Spans[I], Pages);
  S.RetiredList.push_back(MH);
}

void GlobalHeap::epochSynchronize() {
  SpinLockGuard Guard(EpochSyncLock);
  telemetry::Timer T;
  MiniHeapEpoch.synchronize();
  if (T.armed()) {
    const uint64_t Ns = T.elapsedNs();
    telemetry::event(telemetry::EventType::kEpochSync, 0, Ns);
    telemetry::histRecord(telemetry::kHistEpochSync, Ns);
  }
}

void GlobalHeap::deleteRetired(InternalVector<MiniHeap *> &Retired) {
  for (MiniHeap *MH : Retired) {
    if (MH->pendingFrees() != 0) {
      // A waited-out remote free pushed MH onto its shard's stash (its
      // bitmap update lost to the destruction, which is fine — the
      // object was already gone). The metadata must survive until the
      // drain pops the stale entry; mark it so the drain performs the
      // delete.
      MH->markDead();
    } else {
      InternalHeap::global().deleteObj(MH);
    }
  }
  Retired.clear();
}

void GlobalHeap::reapRetiredLocked(Shard &S) {
  if (S.RetiredList.empty())
    return;
  // One epoch advance covers every retiree: after it, no reader can
  // still hold a pointer resolved before the page table was cleared
  // (or retargeted, for meshed-away sources), so each pending-free
  // count deleteRetired consults is final.
  epochSynchronize();
  deleteRetired(S.RetiredList);
}

void GlobalHeap::pushPending(Shard &S, MiniHeap *MH) {
  MiniHeap *Head = S.PendingStash.load(std::memory_order_acquire);
  do {
    MH->setNextPending(Head);
  } while (!S.PendingStash.compare_exchange_weak(Head, MH,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire));
}

void GlobalHeap::drainAllShards() {
  // Stop-the-world over the shard map: hold every shard lock
  // (ascending — the one place the full rendezvous is exercised), fold
  // in all pending frees, then pay ONE epoch synchronize for all
  // retirees instead of one per shard. The locks stay held across the
  // reap on purpose: releasing a shard between its drain and the
  // delete-or-markDead hand-off would let a concurrent drain pop a
  // stale stash entry before markDead runs and destroy the span twice.
  // (The mesh pass avoids holding multiple locks only because
  // MeshInProgress keeps new pushes out; no such shield exists here.)
  // Rare path: dirty-page flushes and teardown.
  for (int I = 0; I < kNumShards; ++I) {
    lockShard(I);
    drainStashLocked(Shards[I]);
  }
  bool AnyRetired = false;
  for (int I = 0; I < kNumShards && !AnyRetired; ++I)
    AnyRetired = !Shards[I].RetiredList.empty();
  if (AnyRetired) {
    epochSynchronize();
    for (int I = 0; I < kNumShards; ++I)
      deleteRetired(Shards[I].RetiredList);
  }
  for (int I = kNumShards - 1; I >= 0; --I)
    unlockShard(I);
}

void GlobalHeap::drainStashLocked(Shard &S) {
  MiniHeap *MH = S.PendingStash.exchange(nullptr, std::memory_order_acq_rel);
  while (MH != nullptr) {
    MiniHeap *Next = MH->nextPending();
    MH->setNextPending(nullptr);
    if (MH->isDead()) {
      // Destroyed while stashed; this was the last reference.
      InternalHeap::global().deleteObj(MH);
    } else {
      MH->takePendingFrees();
      // Attached spans stay with their owner thread — the cleared bits
      // are picked up at the next attach (Section 4.4.4). A racer that
      // frees after takePendingFrees re-pushes MH for the next drain.
      if (!MH->isAttached())
        rebinOrDestroyLocked(S, MH);
    }
    MH = Next;
  }
}

void GlobalHeap::drainPendingLocked(Shard &S) {
  drainStashLocked(S);
  reapRetiredLocked(S);
}

MiniHeap *GlobalHeap::allocMiniHeapForClass(int SizeClass) {
  assert(SizeClass >= 0 && SizeClass < kNumSizeClasses &&
         "size class out of range");
  Shard &S = Shards[SizeClass];
  MiniHeap *MH = nullptr;
  lockShard(SizeClass);
  // Fold queued remote frees into the bins first: a span another thread
  // just emptied out may be exactly the reuse candidate we want.
  drainPendingLocked(S);
  // Scan bins by decreasing occupancy and choose a random span from the
  // first non-empty bin (Section 3.1): maximizes utilization while
  // preserving the randomness the analysis relies on.
  for (int Bin = kOccupancyBins - 1; Bin >= 0 && MH == nullptr; --Bin) {
    auto &B = S.Bins[Bin];
    if (B.empty())
      continue;
    const uint32_t Idx =
        S.Random.inRange(0, static_cast<uint32_t>(B.size()) - 1);
    MH = B[Idx];
    removeFromBinLocked(S, MH);
    MH->setAttached(true);
  }
  if (MH == nullptr) {
    // No partially full span: carve a fresh one out of the arena. The
    // hot case (recycling a span this class freed dirty) stays on
    // arena shard SizeClass; only a recycling miss touches the shared
    // clean reserve / frontier under ArenaLock — so refill-miss storms
    // on different classes no longer serialize. Holding the heap shard
    // lock across alloc + setOwner also closes the fork window: the
    // fork quiesce needs this lock, so it can never snapshot a
    // committed-but-unowned span.
    const SizeClassInfo &Info = sizeClassInfo(SizeClass);
    bool IsClean = false;
    telemetry::Timer SpanTimer;
    const uint32_t Off =
        Arena.allocSpanForClass(SizeClass, Info.SpanPages, &IsClean);
    if (SpanTimer.armed())
      telemetry::histRecord(telemetry::kHistSpanAcquire,
                            SpanTimer.elapsedNs());
    if (Off != MeshableArena::kInvalidSpanOff) {
      MH = InternalHeap::global().makeNew<MiniHeap>(
          Off, Info.SpanPages, Info.ObjectSize, Info.ObjectCount,
          static_cast<int8_t>(SizeClass), Info.Meshable);
      Arena.setOwner(Off, Info.SpanPages, MH);
      MH->setAttached(true);
      Stats.updatePeak(Arena.committedPages());
    } else {
      // Span commit refused or arena exhausted: unwind with no span
      // carved, no MiniHeap, no lock held — the caller's malloc
      // returns nullptr with errno = ENOMEM.
      Stats.OomReturns.fetch_add(1, std::memory_order_relaxed);
    }
  }
  unlockShard(SizeClass);
  // The meshing trigger: remote frees no longer take any lock, so the
  // refill path is where a free-heavy steady state (partially-full
  // spans that never empty) gets its rate-limited mesh passes — the
  // role every locked free used to play. Outside the shard lock: a
  // pass acquires every shard in ascending order.
  maybeMesh();
  return MH;
}

void GlobalHeap::releaseMiniHeap(MiniHeap *MH) {
  if (MH == nullptr)
    return;
  assert(!MH->isLargeAlloc() && "thread heaps never attach large spans");
  const int ShardIdx = MH->sizeClass();
  lockShard(ShardIdx);
  MH->setAttached(false);
  rebinOrDestroyLocked(Shards[ShardIdx], MH);
  reapRetiredLocked(Shards[ShardIdx]);
  unlockShard(ShardIdx);
}

void *GlobalHeap::largeAllocZeroed(size_t Bytes, bool *WasZeroed) {
  const size_t Pages = bytesToPages(Bytes == 0 ? 1 : Bytes);
  // Refuse before the uint32 page-count narrowing below can truncate:
  // a request larger than the whole arena is unsatisfiable by
  // definition (this also catches the absurd sizes, e.g. the
  // malloc(PTRDIFF_MAX) probes glibc's tests are fond of).
  if (Pages > Arena.vm().arenaPages()) {
    Stats.OomReturns.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // A fresh span is invisible to other threads until returned, but the
  // large heap shard's lock is still taken across alloc + setOwner:
  // the fork quiesce acquires every heap shard, so a span can never be
  // committed-but-unowned at the fork instant (the child's rebuild
  // walks owners and would otherwise inherit an orphaned extent).
  lockShard(kLargeShard);
  bool IsClean = false;
  telemetry::Timer SpanTimer;
  const uint32_t Off =
      Arena.allocLargeSpan(static_cast<uint32_t>(Pages), &IsClean);
  if (SpanTimer.armed())
    telemetry::histRecord(telemetry::kHistSpanAcquire,
                          SpanTimer.elapsedNs());
  if (Off == MeshableArena::kInvalidSpanOff) {
    unlockShard(kLargeShard);
    Stats.OomReturns.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto *MH = InternalHeap::global().makeNew<MiniHeap>(
      Off, static_cast<uint32_t>(Pages), Bytes);
  Arena.setOwner(Off, static_cast<uint32_t>(Pages), MH);
  unlockShard(kLargeShard);
  Stats.updatePeak(Arena.committedPages());
  if (WasZeroed != nullptr)
    *WasZeroed = IsClean;
  return Arena.arenaBase() + pagesToBytes(Off);
}

bool GlobalHeap::tryFreeUnlocked(void *Ptr, bool *BecameEmpty,
                                 int *ShardIdx) {
  Epoch::Section Section(MiniHeapEpoch);
  // Checked inside the epoch: a mesh pass flags itself and then waits
  // out this epoch, so either we see the flag and divert, or the pass
  // waits for this free to finish before touching any bitmap.
  if (MeshInProgress.load(std::memory_order_seq_cst))
    return false;
  MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr) {
    logWarning("ignoring free of unallocated pointer %p", Ptr);
    return true;
  }
  if (MH->isLargeAlloc())
    return false; // Span release needs the large shard + arena locks.
  uint32_t Off = 0;
  if (!MH->offsetOfAligned(Ptr, Arena.arenaBase(), &Off)) {
    logWarning("ignoring free of interior pointer %p", Ptr);
    return true;
  }
  if (!MH->bitmap().unset(Off)) {
    logWarning("ignoring double free of %p", Ptr);
    return true;
  }
  FreedSinceLastMesh.store(true, std::memory_order_relaxed);
  // First pending free queues MH for the owning shard's next drain.
  if (MH->notePendingFree() == 0)
    pushPending(Shards[MH->sizeClass()], MH);
  *BecameEmpty = MH->isEmpty();
  *ShardIdx = MH->sizeClass();
  return true;
}

void GlobalHeap::free(void *Ptr) {
  if (Ptr == nullptr)
    return;
  if (!Arena.contains(Ptr)) {
    logWarning("ignoring free of non-heap pointer %p", Ptr);
    return;
  }
  for (;;) {
    bool BecameEmpty = false;
    int ShardIdx = -1;
    if (tryFreeUnlocked(Ptr, &BecameEmpty, &ShardIdx)) {
      // The free itself is complete: one epoch-protected lookup and one
      // atomic bitmap update, the paper's cost model. Re-binning is
      // deferred to the next refill or mesh pass of the owning class,
      // both of which drain that shard's pending stash under its lock.
      // Only the empty-span transition warrants maintenance now — its
      // pages should go back to the arena promptly. The lock is taken
      // blocking: a concurrent holder (refill, another drain) may have
      // exchanged the stash before our push landed, and with per-class
      // shards there is no steady stream of other-class lock holders
      // to pick the span up, so "someone else will drain" no longer
      // holds. Empty transitions are rare relative to frees and shard
      // critical sections are short, so the wait is cheap.
      if (BecameEmpty) {
        lockShard(ShardIdx);
        drainPendingLocked(Shards[ShardIdx]);
        unlockShard(ShardIdx);
        maybeMesh();
      }
      return;
    }
    // Large object, or a mesh pass is consolidating spans: serialize on
    // the owning shard. The owner may change shards between the epoch
    // peek and the lock (span destroyed, page recycled to another
    // class) — in that case restart the dispatch from scratch.
    if (freeDiverted(Ptr))
      return;
  }
}

bool GlobalHeap::freeDiverted(void *Ptr) {
  // Peek the owning shard under the epoch (the tag read needs the
  // metadata alive, nothing more).
  int ShardIdx;
  {
    Epoch::Section Section(MiniHeapEpoch);
    MiniHeap *MH = Arena.ownerOf(Ptr);
    if (MH == nullptr) {
      logWarning("ignoring free of unallocated pointer %p", Ptr);
      return true;
    }
    ShardIdx = shardIndexFor(MH);
  }
  lockShard(ShardIdx);
  MiniHeap *MH;
  {
    // Re-validate under the shard lock: a shard's page-table entries
    // are only cleared or retargeted under that shard's lock, so an
    // owner that still resolves into this shard is now pinned — its
    // metadata cannot be deleted while we hold the lock. The epoch
    // section covers the one dereference (shardIndexFor) that happens
    // before the pin is established.
    Epoch::Section Section(MiniHeapEpoch);
    MH = Arena.ownerOf(Ptr);
    if (MH == nullptr) {
      unlockShard(ShardIdx);
      logWarning("ignoring free of unallocated pointer %p", Ptr);
      return true;
    }
    if (shardIndexFor(MH) != ShardIdx) {
      unlockShard(ShardIdx);
      return false; // Owner moved shards underfoot; retry dispatch.
    }
  }
  freeLocked(Shards[ShardIdx], MH, Ptr);
  reapRetiredLocked(Shards[ShardIdx]);
  unlockShard(ShardIdx);
  maybeMesh();
  return true;
}

void GlobalHeap::freeLocked(Shard &S, MiniHeap *MH, void *Ptr) {
  if (!MH->isAligned(Ptr, Arena.arenaBase())) {
    logWarning("ignoring free of interior pointer %p", Ptr);
    return;
  }
  const uint32_t Off = MH->offsetOf(Ptr, Arena.arenaBase());
  if (!MH->bitmap().unset(Off)) {
    logWarning("ignoring double free of %p", Ptr);
    return;
  }
  FreedSinceLastMesh.store(true, std::memory_order_relaxed);
  if (MH->isLargeAlloc()) {
    destroyMiniHeapLocked(S, MH);
    return;
  }
  if (!MH->isAttached())
    rebinOrDestroyLocked(S, MH);
  // Attached MiniHeaps stay with their owner thread; the cleared bit is
  // picked up at the next attach (Section 4.4.4).
}

size_t GlobalHeap::usableSize(const void *Ptr) const {
  Epoch::Section Section(MiniHeapEpoch);
  const MiniHeap *MH = Arena.ownerOf(Ptr);
  if (MH == nullptr)
    return 0;
  return MH->isLargeAlloc() ? MH->spanBytes() : MH->objectSize();
}

size_t GlobalHeap::meshNow() {
  // The ablation switch wins even over explicit requests: a "Mesh (no
  // meshing)" heap must never compact (Section 6.3).
  if (!meshingEnabled())
    return 0;
  SpinLockGuard Guard(MeshLock);
  return performMeshing(MeshPassOrigin::Foreground);
}

void GlobalHeap::maybeMesh() {
  if (!meshingEnabled())
    return;
  // Lock-free precheck, shared by both modes: within the rate-limit
  // window every trigger is redundant, so bail before touching any
  // shared state. This is also what keeps the background poke cheap —
  // at most one wakeup per MeshPeriodMs reaches the mesher thread.
  const uint64_t Now = monotonicMs();
  if (Now - LastMeshMs.load(std::memory_order_relaxed) < meshPeriodMs())
    return;
  // Background mode: hand the pass to the dedicated thread. One atomic
  // flag write + (rarely) a condvar signal; the mutator never meshes.
  if (requestMeshPass())
    return;
  // Synchronous fallback (no background mesher, MESH_BACKGROUND=0).
  // try_lock: if a pass is running (or another thread is deciding),
  // our trigger is redundant.
  if (!MeshLock.try_lock())
    return;
  SpinLockGuard Guard(MeshLock, AdoptLock);
  // Re-sample the clock for the locked recheck: another thread may have
  // finished a pass (advancing LastMeshMs past the pre-lock Now) in
  // between, and the stale Now would wrap the unsigned delta and let a
  // redundant back-to-back pass through. LastMeshMs is only written
  // under MeshLock, so a fresh read cannot be behind it.
  if (monotonicMs() - LastMeshMs.load(std::memory_order_relaxed) <
      meshPeriodMs())
    return;
  // Hysteresis (Section 4.5): after an ineffective pass, wait for
  // another global free before re-arming.
  if (LastMeshReleased < Opts.MeshEffectiveBytes &&
      !FreedSinceLastMesh.load(std::memory_order_relaxed))
    return;
  performMeshing(MeshPassOrigin::Foreground);
}

bool GlobalHeap::backgroundMaybeMesh() {
  if (!meshingEnabled())
    return false;
  // Blocking lock is fine: this is the dedicated thread, and the only
  // contenders are explicit meshNow() calls and other fork/teardown
  // rarities.
  SpinLockGuard Guard(MeshLock);
  if (monotonicMs() - LastMeshMs.load(std::memory_order_relaxed) <
      meshPeriodMs())
    return false;
  if (LastMeshReleased < Opts.MeshEffectiveBytes &&
      !FreedSinceLastMesh.load(std::memory_order_relaxed)) {
    // Declined by hysteresis: re-arm the poke gate anyway. Without
    // this, an alloc-heavy/free-light phase would find the gate open on
    // every refill and wake the mesher each time just to decline again;
    // with it, the check costs one wakeup per MeshPeriodMs.
    LastMeshMs.store(monotonicMs(), std::memory_order_relaxed);
    return false;
  }
  performMeshing(MeshPassOrigin::Background);
  return true;
}

bool GlobalHeap::backgroundPressureMesh() {
  if (!meshingEnabled())
    return false;
  SpinLockGuard Guard(MeshLock);
  // No MeshPeriodMs gate: pressure wakes are already paced by the
  // monitor's wake interval, and an idle heap never pokes — this path
  // is exactly how it gets compacted. The effectiveness hysteresis
  // still applies so a fragmented-but-unmeshable steady state stops
  // burning passes once the heap yields nothing and nothing is freed.
  if (LastMeshReleased < Opts.MeshEffectiveBytes &&
      !FreedSinceLastMesh.load(std::memory_order_relaxed))
    return false;
  performMeshing(MeshPassOrigin::Background);
  return true;
}

HeapFootprint GlobalHeap::sampleFootprint() const {
  HeapFootprint F;
  // Lock-free sampling: the page table's entries are atomic, and a
  // MiniHeap reachable through it cannot complete destruction while
  // this epoch section is open — destruction clears the table entries
  // first and the metadata delete waits out the epoch. No lock means a
  // sampler never contends with (or deadlocks against) the allocator.
  Epoch::Section Section(MiniHeapEpoch);
  const size_t Frontier = Arena.frontierPages();
  for (size_t Page = 0; Page < Frontier; ++Page) {
    const MiniHeap *MH = Arena.ownerOfPage(Page);
    // Count each MiniHeap exactly once, at the first page of its
    // physical span. Meshed-in alias spans resolve to the same owner
    // but at different page offsets, so they are skipped — committed
    // bytes are physical, and so is this sum.
    if (MH == nullptr || MH->physicalSpanOffset() != Page)
      continue;
    F.InUseBytes += size_t{MH->inUseCount()} * MH->objectSize();
    F.SpanBytes += MH->spanBytes();
  }
  F.CommittedBytes = pagesToBytes(Arena.committedPages());
  F.DirtyBytes = pagesToBytes(Arena.dirtyPages());
  return F;
}

void GlobalHeap::lockForFork() {
  // Full rank order, so this cannot deadlock against any in-flight
  // allocator operation: MeshLock -> heap shards ascending -> arena
  // shards ascending -> ArenaLock -> EpochSyncLock. Once all are held,
  // no other thread is inside any heap critical section and fork() may
  // proceed.
  MeshLock.lock();
  for (int I = 0; I < kNumShards; ++I)
    lockShard(I);
  Arena.lockAllShards();
  EpochSyncLock.lock();
}

void GlobalHeap::unlockForFork() {
  EpochSyncLock.unlock();
  Arena.unlockAllShards();
  for (int I = kNumShards - 1; I >= 0; --I)
    unlockShard(I);
  MeshLock.unlock();
}

namespace {

/// ForkSpanSource over the page table: one visit per virtual span,
/// each MiniHeap enumerated exactly once at the first page of its
/// physical span (alias pages resolve to the same owner at other
/// offsets and are skipped; retired/meshed-away metadata is no longer
/// reachable through the table at all). Runs in the atfork child —
/// single-threaded, every arena lock inherited held — so the plain
/// walk needs no epoch section and must not allocate.
class PageTableForkSpanSource final : public ForkSpanSource {
public:
  explicit PageTableForkSpanSource(const MeshableArena &Arena)
      : Arena(Arena) {}

  void forEachVirtualSpan(SpanVisitor Visit, void *Ctx) override {
    const size_t Frontier = Arena.frontierPages();
    for (size_t Page = 0; Page < Frontier; ++Page) {
      const MiniHeap *MH = Arena.ownerOfPage(Page);
      if (MH == nullptr || MH->physicalSpanOffset() != Page)
        continue;
      const auto &Spans = MH->spans();
      for (uint32_t I = 0; I < Spans.size(); ++I)
        Visit(Ctx, Spans[I], Spans[0], MH->spanPages());
    }
  }

private:
  const MeshableArena &Arena;
};

} // namespace

void GlobalHeap::flushDirtyForFork() {
  // All heap locks held (fork prepare); see the header for why this
  // cannot wait for the child: the flush's clean-bin push_back may
  // grow an InternalVector, and that InternalHeap allocation would
  // self-deadlock against the inherited-held InternalHeap lock in the
  // single-threaded child. DeferFailures: under a fault storm a punch
  // may fail, and the child's rebuild requires an empty dirty set.
  // AssumeLocked: lockForFork already holds every arena shard lock and
  // ArenaLock, so the flush must not re-acquire them.
  Arena.flushDirtyAssumeLocked(/*DeferFailures=*/true);
}

void GlobalHeap::reinitializeArenaAfterFork() {
  // Called from the atfork child handler with every heap lock
  // inherited held (lockForFork ran in prepare) and exactly one thread
  // in the process; the parent is fenced on the fork pipe until this
  // returns, so the inherited mapping is a stable fork-instant
  // snapshot to copy from. Dirty bins were flushed pre-fork
  // (flushDirtyForFork), so every committed page belongs to a live
  // span the walk below replays — nothing here may allocate.
  assert(Arena.dirtyPages() == 0 &&
         "fork child inherited unflushed dirty spans");
  PageTableForkSpanSource Spans(Arena);
  Arena.vm().reinitializeAfterFork(Spans);
  Arena.resetDeferredAfterFork();
}

size_t GlobalHeap::flushDirtyPages() {
  // Destroy queued-up empty spans first so their pages flush too.
  drainAllShards();
  return pagesToBytes(Arena.flushDirty());
}

size_t GlobalHeap::binnedCount(int SizeClass) {
  Shard &S = Shards[SizeClass];
  lockShard(SizeClass);
  drainPendingLocked(S);
  size_t Count = 0;
  for (int Bin = 0; Bin < kOccupancyBins; ++Bin)
    Count += S.Bins[Bin].size();
  unlockShard(SizeClass);
  return Count;
}

size_t GlobalHeap::performMeshing(MeshPassOrigin Origin) {
  // Quiesce the lock-free free path: raise the flag, then wait out
  // every free already past the flag check. From here until the flag
  // drops, remote frees serialize on their owning shard's lock (per
  // class they queue behind this pass's visit of that shard), so
  // bitmaps only change under our feet through attached shuffle
  // vectors — which never cover meshing candidates — or shard-locked
  // frees of classes the pass is not currently holding.
  MeshInProgress.store(true, std::memory_order_seq_cst);
  epochSynchronize();
  const uint64_t Start = monotonicNs();
  size_t PagesReleased = 0;
  uint32_t MeshedThisPass = 0;
  uint64_t ScanNs = 0;
  uint64_t PairsFound = 0;

  InternalVector<MiniHeap *> Candidates;
  InternalVector<MeshPair> Pairs;
  // The rendezvous: shards are visited strictly in ascending index
  // order, each drained — and, for meshable classes, meshed — under
  // its own lock. A pass is an explicit reclamation point, so even
  // non-meshable classes and the large shard get their pending frees
  // folded in (destroying emptied spans), exactly as the pre-shard
  // pass-start drain did. Classes never mesh with each other, so no
  // two shard locks are ever held at once.
  // Retirees from every shard visit, reaped with ONE epoch advance at
  // pass end (outside any shard lock) instead of one per shard. Safe
  // because nothing can push to a stash mid-pass: tryFreeUnlocked
  // diverts on MeshInProgress, and every push that raced the flag was
  // waited out by the pass-start quiesce above — so a retiree's
  // pendingFrees count is final once its shard's visit completes.
  InternalVector<MiniHeap *> PassRetired;
  for (int ShardIdx = 0; ShardIdx < kNumShards; ++ShardIdx) {
    Shard &S = Shards[ShardIdx];
    lockShard(ShardIdx);
    drainStashLocked(S);
    const bool MeshThisShard =
        ShardIdx < kNumSizeClasses && sizeClassInfo(ShardIdx).Meshable &&
        (Opts.MaxMeshesPerPass == 0 ||
         MeshedThisPass < Opts.MaxMeshesPerPass);
    if (MeshThisShard) {
      telemetry::Timer ScanTimer;
      Candidates.clear();
      // Only spans at <= 50% occupancy can possibly mesh: two spans
      // each more than half full must collide on some offset
      // (pigeonhole), so probing them is pure waste.
      for (int Bin = 0; Bin < kOccupancyBins; ++Bin)
        for (MiniHeap *MH : S.Bins[Bin])
          if (2 * MH->inUseCount() <= MH->objectCount() &&
              MH->isMeshingCandidate())
            Candidates.push_back(MH);
      if (Candidates.size() >= 2) {
        Pairs.clear();
        uint64_t Probes = 0;
        splitMesher(Candidates, Opts.MeshProbes, MeshRandom, Pairs,
                    &Probes);
        Stats.MeshProbeCount.fetch_add(Probes, std::memory_order_relaxed);
        ScanNs += ScanTimer.elapsedNs();
        PairsFound += Pairs.size();
        for (auto &[A, B] : Pairs) {
          if (Opts.MaxMeshesPerPass != 0 &&
              MeshedThisPass >= Opts.MaxMeshesPerPass)
            break; // Pause bound: the next pass re-finds leftover pairs.
          // Keep the fuller span so fewer objects move.
          MiniHeap *Dst = A->inUseCount() >= B->inUseCount() ? A : B;
          MiniHeap *Src = Dst == A ? B : A;
          telemetry::Timer RemapTimer;
          PagesReleased += meshPairLocked(S, Dst, Src);
          ++MeshedThisPass;
          if (RemapTimer.armed()) {
            const uint64_t Ns = RemapTimer.elapsedNs();
            telemetry::event(telemetry::EventType::kMeshRemap,
                             static_cast<uint16_t>(ShardIdx), Ns);
            telemetry::histRecord(telemetry::kHistMeshRemap, Ns);
          }
        }
      } else {
        ScanNs += ScanTimer.elapsedNs();
      }
    }
    // Take this shard's retirees (from the drain and from meshing)
    // into the pass batch. Moving them out keeps a mid-pass refill or
    // diverted free of this class — whose own reap runs under the
    // shard lock — from double-handling them.
    for (MiniHeap *MH : S.RetiredList)
      PassRetired.push_back(MH);
    S.RetiredList.clear();
    unlockShard(ShardIdx);
  }

  if (!PassRetired.empty()) {
    // The batched reap: one reader-drain covers every span this pass
    // destroyed or meshed away, and no shard lock is held while
    // stragglers are waited out.
    epochSynchronize();
    deleteRetired(PassRetired);
  }

  // Section 4.4.1: pages return to the OS after the dirty budget fills
  // *or whenever meshing is invoked* — a pass is already paying for
  // page-table work, so piggyback the dirty-page flush.
  telemetry::Timer FlushTimer;
  const size_t FlushedPages = Arena.flushDirty();
  if (FlushTimer.armed()) {
    const uint64_t FlushNs = FlushTimer.elapsedNs();
    telemetry::event(telemetry::EventType::kMeshRelease,
                     static_cast<uint16_t>(
                         FlushedPages < UINT16_MAX ? FlushedPages
                                                   : UINT16_MAX),
                     FlushNs);
    telemetry::histRecord(telemetry::kHistMeshRelease, FlushNs);
  }

  const uint64_t Elapsed = monotonicNs() - Start;
  Stats.recordPass(Elapsed, Origin);
  if (telemetry::enabled()) {
    telemetry::event(telemetry::EventType::kMeshScan,
                     static_cast<uint16_t>(
                         PairsFound < UINT16_MAX ? PairsFound : UINT16_MAX),
                     ScanNs);
    telemetry::histRecord(telemetry::kHistMeshScan, ScanNs);
    telemetry::event(telemetry::EventType::kMeshPass,
                     Origin == MeshPassOrigin::Background ? 1 : 0, Elapsed);
    telemetry::histRecord(telemetry::kHistMeshPass, Elapsed);
  }
  LastMeshMs.store(monotonicMs(), std::memory_order_relaxed);
  LastMeshReleased = pagesToBytes(PagesReleased);
  FreedSinceLastMesh.store(false, std::memory_order_relaxed);
  MeshInProgress.store(false, std::memory_order_seq_cst);
  return pagesToBytes(PagesReleased);
}

// The consolidation copy reads (and writes) application objects that
// concurrent threads may touch; serialization is physical — the spans
// are mprotect'ed read-only and a racing writer faults into the
// SIGSEGV write barrier, which waits the pass out. TSan cannot see
// page-protection ordering, so this lives in its own noinline
// function and tsan.supp suppresses exactly this symbol; everything
// else in a mesh pass stays under TSan.
__attribute__((noinline)) size_t
GlobalHeap::meshCopyBarrierProtected(MiniHeap *Dst, MiniHeap *Src,
                                     char *Base) {
  const size_t ObjSize = Src->objectSize();
  size_t Copied = 0;
  Src->bitmap().forEachSet([&](uint32_t Off) {
    memcpy(Dst->ptrForOffset(Off, Base), Src->ptrForOffset(Off, Base),
           ObjSize);
    Copied += ObjSize;
  });
  return Copied;
}

size_t GlobalHeap::meshPairLocked(Shard &S, MiniHeap *Dst, MiniHeap *Src) {
  assert(canMeshPair(Dst, Src) && "meshing an unmeshable pair");
  char *Base = Arena.arenaBase();
  const uint32_t Pages = Src->spanPages();
  WriteBarrier &Barrier = WriteBarrier::instance();

  const auto &SrcSpans = Src->spans();

  // Rollback operations must land: a half-rolled-back pair has no
  // valid state, so each is retried hard (every attempt re-draws the
  // fault injector, which is what lets every-N storms recover) and
  // only persistent failure aborts — the one abort left on the mesh
  // path (see DESIGN.md "Failure policy").
  constexpr int kRollbackRetries = 64;
  auto unprotectSpan = [&](uint32_t Off) {
    for (int Try = 0; Try < kRollbackRetries; ++Try)
      if (Arena.vm().protect(Off, Pages, /*ReadOnly=*/false))
        return;
    fatalError("mesh rollback failed: cannot restore write access to span "
               "at page %u",
               Off);
  };

  // 1. Write barrier: mark every virtual span of the source read-only
  //    so no thread mutates objects while they are being relocated. A
  //    failed protect abandons the pair before anything moved: undo
  //    the protected prefix and leave both spans exactly as found.
  if (Opts.BarrierEnabled) {
    Barrier.beginEpoch();
    for (uint32_t I = 0; I < SrcSpans.size(); ++I) {
      const uint32_t Off = SrcSpans[I];
      Barrier.addProtectedRange(Base + pagesToBytes(Off),
                                pagesToBytes(Pages));
      if (!Arena.vm().protect(Off, Pages, /*ReadOnly=*/true)) {
        for (uint32_t J = 0; J <= I; ++J)
          unprotectSpan(SrcSpans[J]);
        Barrier.endEpoch();
        Stats.MeshRollbacks.fetch_add(1, std::memory_order_relaxed);
        telemetry::event(telemetry::EventType::kFaultDegrade,
                         telemetry::kDegradeMeshRollback, 0);
        return 0;
      }
    }
  }

  // 2. Consolidate: copy live source objects into the keeper's holes.
  //    Offsets are preserved, so virtual addresses never change. The
  //    keeper's bitmap is merged only after the remap commits: until
  //    then the copied bytes sit in slots still marked free in Dst, so
  //    abandoning the pair needs no undo.
  const size_t Copied = meshCopyBarrierProtected(Dst, Src, Base);

  bool RemapFailed = false;
  {
    // No arena-level lock: every structural operation on these spans is
    // serialized by the heap shard lock this function runs under (see
    // MeshableArena.h "Same-span serialization"); page-table stores are
    // atomic and per-span syscalls race with nothing.
    // 3. Retarget page-table entries so frees of source-span pointers
    //    find the keeper.
    for (uint32_t I = 0; I < SrcSpans.size(); ++I)
      Arena.setOwner(SrcSpans[I], Pages, Dst);

    // 4. Remap every source virtual span onto the keeper's physical
    //    span (atomic per-span; concurrent readers are never
    //    interrupted), then release the source's physical pages to the
    //    OS. On a failed remap, re-point the already-swung spans at
    //    the source's own pages — their contents are untouched, the
    //    copy only wrote into the keeper's holes — and restore
    //    ownership: the pair ends as two valid unmeshed spans.
    const uint32_t SrcPhys = Src->physicalSpanOffset();
    const uint32_t DstPhys = Dst->physicalSpanOffset();
    uint32_t Swung = 0;
    for (; Swung < SrcSpans.size(); ++Swung) {
      telemetry::Timer AliasTimer;
      const bool Ok = Arena.vm().alias(SrcSpans[Swung], DstPhys, Pages);
      if (AliasTimer.armed())
        telemetry::histRecord(telemetry::kHistRemapSyscall,
                              AliasTimer.elapsedNs());
      if (!Ok)
        break;
    }
    if (Swung < SrcSpans.size()) {
      for (uint32_t J = 0; J < Swung; ++J) {
        const uint32_t Off = SrcSpans[J];
        bool Ok = false;
        for (int Try = 0; Try < kRollbackRetries && !Ok; ++Try)
          Ok = Off == SrcPhys ? Arena.vm().resetMapping(Off, Pages)
                              : Arena.vm().alias(Off, SrcPhys, Pages);
        if (!Ok)
          fatalError("mesh rollback failed: cannot re-point span at page "
                     "%u back to its source",
                     Off);
      }
      for (uint32_t I = 0; I < SrcSpans.size(); ++I)
        Arena.setOwner(SrcSpans[I], Pages, Src);
      RemapFailed = true;
    } else {
      // Punch failure inside releaseForMesh is a degradation, not a
      // rollback: the mesh itself committed, the pages just linger
      // until a deferred punch lands.
      Arena.releaseForMesh(Src->sizeClass(), SrcPhys, Pages);
    }
  }

  if (RemapFailed) {
    if (Opts.BarrierEnabled) {
      // The re-pointed spans came back writable from the fresh mmap;
      // the never-swung tail is still read-only. Unprotect everything
      // (idempotent) before dropping the barrier.
      for (uint32_t I = 0; I < SrcSpans.size(); ++I)
        unprotectSpan(SrcSpans[I]);
      Barrier.endEpoch();
    }
    Stats.MeshRollbacks.fetch_add(1, std::memory_order_relaxed);
    telemetry::event(telemetry::EventType::kFaultDegrade,
                     telemetry::kDegradeMeshRollback, 0);
    return 0;
  }

  Dst->bitmap().mergeFrom(Src->bitmap());

  // 5. Bookkeeping: the keeper absorbs the source's virtual spans and
  //    moves to its new occupancy bin; the source MiniHeap dies. A
  //    page-table reader may still hold the stale resolution to Src
  //    (local fast-path lookups don't divert on MeshInProgress), so
  //    its metadata is retired, not deleted — the per-class reap
  //    advances the epoch once and waits those readers out.
  removeFromBinLocked(S, Src);
  removeFromBinLocked(S, Dst);
  Dst->takeSpansFrom(*Src);
  const uint32_t InUse = Dst->inUseCount();
  if (InUse > 0 && InUse < Dst->objectCount())
    insertIntoBinLocked(S, Dst, InUse);
  S.RetiredList.push_back(Src);

  if (Opts.BarrierEnabled)
    Barrier.endEpoch();

  Stats.MeshCount.fetch_add(1, std::memory_order_relaxed);
  Stats.PagesMeshed.fetch_add(Pages, std::memory_order_relaxed);
  Stats.BytesCopied.fetch_add(Copied, std::memory_order_relaxed);
  return Pages;
}

} // namespace mesh
