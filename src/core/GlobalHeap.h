//===- GlobalHeap.h - Shared heap state and meshing coordinator -*- C++ -*-===//
///
/// \file
/// The global heap (paper Section 4.4): allocates MiniHeaps for
/// thread-local heaps from occupancy-ordered bins, serves large-object
/// allocations via singleton MiniHeaps, performs non-local frees, and
/// coordinates meshing.
///
/// Locking discipline: structural state is sharded by size class. Each
/// shard owns its occupancy bins, its slice of the pending-free stash,
/// its retired-metadata list, and its own spin lock, so refills, re-bins
/// and drains for different classes never contend. A 25th shard serves
/// large (singleton) allocations. The arena mirrors the shard map with
/// its own per-class locks (span recycling, deferred punch/remap work;
/// see MeshableArena.h), leaving three further locks here:
///
///   - MeshLock     serializes mesh passes and the rate-limiter state.
///   - ArenaLock    (inside MeshableArena) guards the shared clean
///                  reserve and the bump frontier — the innermost rank.
///   - EpochSyncLock serializes Epoch::synchronize callers (leaf).
///
/// Lock order: MeshLock -> heap shard locks in ascending index ->
/// arena shard locks in ascending index -> ArenaLock; EpochSyncLock is
/// a leaf acquired under either a shard lock (retired reaps) or
/// MeshLock (the pass-start quiesce), never both. Debug builds enforce
/// the full rank order with per-thread held-lock masks
/// (support/LockRank.h).
///
/// Non-local frees follow the paper's design: an epoch-protected
/// page-table read plus one atomic bitmap update, no lock. Re-binning
/// and empty-span destruction are deferred to a lock-held drain of the
/// owning shard's pending stash; MiniHeap destruction advances the
/// epoch and waits out in-flight readers. A mesh pass quiesces the
/// lock-free path (MeshInProgress + one epoch synchronize), then visits
/// shards strictly in ascending order, meshing each class under its own
/// lock. DESIGN.md ("sharding the allocation path") has the protocol.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_GLOBALHEAP_H
#define MESH_CORE_GLOBALHEAP_H

#include "core/MeshStats.h"
#include "core/MeshableArena.h"
#include "core/MiniHeap.h"
#include "core/Options.h"
#include "core/SizeClass.h"
#include "support/Annotations.h"
#include "support/Epoch.h"
#include "support/InternalVector.h"
#include "support/Rng.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstddef>

namespace mesh {

/// Receiver for non-blocking mesh-pass requests — implemented by the
/// background mesher (runtime/BackgroundMesher.h). requestMeshPass()
/// must never touch heap locks and must stay cheap on the steady
/// path: it is called from the allocation refill path and from
/// free()'s empty-span transition. (The one heavier excursion — the
/// once-per-fork deferred thread restart — takes only the fork
/// registry lock and pthread_create, still no heap locks.)
class MeshRequestSink {
public:
  virtual ~MeshRequestSink() = default;
  virtual void requestMeshPass() = 0;
};

class GlobalHeap {
public:
  explicit GlobalHeap(const MeshOptions &Opts);
  ~GlobalHeap();

  GlobalHeap(const GlobalHeap &) = delete;
  GlobalHeap &operator=(const GlobalHeap &) = delete;

  char *arenaBase() const { return Arena.arenaBase(); }
  bool contains(const void *Ptr) const { return Arena.contains(Ptr); }
  const MeshOptions &options() const { return Opts; }

  /// Selects (or creates) a MiniHeap for \p SizeClass and marks it
  /// attached. Partially full spans are reused first: the fullest
  /// non-empty occupancy bin is scanned and a random member chosen
  /// (Section 3.1). Touches only \p SizeClass's shard (plus the arena
  /// lock when a fresh span must be carved), so refills for different
  /// classes proceed in parallel. Returns nullptr — no span carved, no
  /// locks held, faults.oom_returns ticked — when the arena cannot
  /// produce a fresh span (commit refused or frontier exhausted).
  MiniHeap *allocMiniHeapForClass(int SizeClass);

  /// Returns a MiniHeap previously attached by a thread-local heap
  /// (whose shuffle vector has already surrendered its cached offsets).
  /// Re-bins it, or destroys it when empty.
  void releaseMiniHeap(MiniHeap *MH);

  /// Large-object allocation (> 16 KiB): rounds up to whole pages and
  /// tracks the span with a singleton MiniHeap (Section 4.4.3).
  void *largeAlloc(size_t Bytes) { return largeAllocZeroed(Bytes, nullptr); }

  /// Like largeAlloc, but additionally reports whether the span is
  /// known demand-zero (freshly committed memfd pages, never dirtied) —
  /// the calloc path skips its memset when \p WasZeroed comes back
  /// true. \p WasZeroed may be null. Returns nullptr on resource
  /// exhaustion (request larger than the arena, commit refused, or
  /// frontier exhausted); the shim layer turns that into ENOMEM.
  void *largeAllocZeroed(size_t Bytes, bool *WasZeroed);

  /// Non-local free (Section 4.4.4): epoch-protected constant-time
  /// owner lookup plus one atomic bitmap update — no lock in the common
  /// case. Re-binning is queued on the owning shard's pending stash
  /// and drained by the next refill or mesh pass of that class; the
  /// empty-span transition drains immediately under the shard lock so
  /// reclaimed pages never wait on an idle class.
  /// Large-object frees and frees that race a mesh pass fall back to a
  /// shard-locked path. Invalid and double frees are detected and
  /// discarded with a warning.
  void free(void *Ptr);

  /// Usable size of \p Ptr (its size-class size, or the whole span for
  /// large objects); 0 when \p Ptr is not a live Mesh pointer.
  size_t usableSize(const void *Ptr) const;

  /// Owning MiniHeap, or nullptr (lock-free page-table read). Callers
  /// that dereference the result without holding the owning shard's
  /// lock must be inside a miniheapEpoch() section, which holds off
  /// destruction — enforced at compile time: an epoch-free page-table
  /// peek through this accessor does not build under -Wthread-safety.
  MiniHeap *miniheapFor(const void *Ptr) const
      MESH_REQUIRES_SHARED(MiniHeapEpoch) {
    return Arena.ownerOf(Ptr);
  }

  /// Identity-only page-table read: the returned pointer may be
  /// compared against a known-live MiniHeap but must NEVER be
  /// dereferenced — without an epoch section the metadata may already
  /// be retired. Used by the thread-local free dispatch, whose
  /// attached-MiniHeap equality check needs no lifetime guarantee.
  MiniHeap *miniheapIdentityFor(const void *Ptr) const {
    return Arena.ownerOf(Ptr);
  }

  /// The epoch guarding MiniHeap metadata lifetime (see free()).
  Epoch &miniheapEpoch() const MESH_RETURN_CAPABILITY(MiniHeapEpoch) {
    return MiniHeapEpoch;
  }

  /// Runs a meshing pass immediately, ignoring the rate limiter.
  /// \returns bytes of physical memory released. MESH_EXCLUDES encodes
  /// the top of the lock rank: a pass acquires MeshLock first, so no
  /// caller may already hold it (or any lower-rank lock).
  size_t meshNow() MESH_EXCLUDES(MeshLock);

  /// Rate-limited meshing trigger (Section 4.5), called after refills
  /// and empty-span transitions. Must not be called while holding any
  /// shard lock (a pass acquires every shard in order). With a request
  /// sink registered the slow half is delegated: after the cheap
  /// rate-limit precheck this degenerates to one atomic flag write that
  /// wakes the background mesher.
  void maybeMesh() MESH_EXCLUDES(MeshLock);

  /// Registers (or, with nullptr, removes) the background mesher as the
  /// receiver of maybeMesh() triggers. Clearing the pointer does not by
  /// itself make the old sink deletable — a mutator may have loaded it
  /// and still be inside the call; run synchronizeMeshRequestSink()
  /// after clearing, before destroying the sink.
  void setMeshRequestSink(MeshRequestSink *Sink) {
    RequestSink.store(Sink, std::memory_order_release);
  }

  /// The currently registered sink (nullptr when none). Used by the
  /// atfork child handler to decide whether a deferred mesher restart
  /// must be re-armed.
  MeshRequestSink *meshRequestSink() const {
    return RequestSink.load(std::memory_order_acquire);
  }

  /// Waits until every thread currently inside a requestMeshPass()
  /// dispatch (the sink-epoch section below) has left it. After
  /// setMeshRequestSink(nullptr) plus this, no call through the heap
  /// can still be executing on the old sink, so it may be deleted.
  /// Callers must hold no heap locks and not be inside a sink
  /// dispatch.
  void synchronizeMeshRequestSink()
      MESH_EXCLUDES(SinkSyncLock, RequestSinkEpoch) {
    SpinLockGuard Guard(SinkSyncLock);
    RequestSinkEpoch.synchronize();
  }

  /// Non-blocking compaction request: pokes the registered sink and
  /// returns true, or returns false when no background mesher is
  /// attached (callers may fall back to a synchronous pass). The epoch
  /// section pins the sink object across the load + virtual call, so a
  /// concurrent teardown (clear + synchronize, see stop()) cannot free
  /// it underfoot. This is a *dedicated* epoch, deliberately not
  /// MiniHeapEpoch: the sink's deferred fork-restart path runs
  /// pthread_create, whose internal allocation can re-enter the
  /// interposed allocator and reach epochSynchronize() — which would
  /// self-deadlock spinning on this thread's own pinned MiniHeapEpoch
  /// section, but waits on nobody when the pin lives on its own epoch.
  /// The sink never takes heap locks (MeshRequestSink contract), so
  /// nothing a synchronize caller holds can block these readers.
  bool requestMeshPass() {
    Epoch::Section Section(RequestSinkEpoch);
    MeshRequestSink *Sink = RequestSink.load(std::memory_order_acquire);
    if (Sink == nullptr)
      return false;
    Sink->requestMeshPass();
    return true;
  }

  /// The background thread's poke service: the same rate-limited,
  /// hysteresis-gated pass maybeMesh() used to run synchronously, but
  /// attributed to the background origin. \returns true iff a pass ran.
  bool backgroundMaybeMesh() MESH_EXCLUDES(MeshLock);

  /// The background thread's pressure service: bypasses the MeshPeriodMs
  /// gate (the wake interval is the rate limit on this path) but keeps
  /// the effectiveness hysteresis, so an idle heap that stopped
  /// yielding pages stops being compacted until something is freed.
  /// \returns true iff a pass ran.
  bool backgroundPressureMesh() MESH_EXCLUDES(MeshLock);

  /// Samples the heap's physical footprint: one lock-free page-table
  /// walk inside an epoch reader section (which holds off MiniHeap
  /// metadata destruction exactly like the free fast path), cheap
  /// enough for a 100 ms sampling cadence. The pressure monitor turns
  /// this into a fragmentation ratio.
  HeapFootprint sampleFootprint() const;

  /// Fork-child recovery (called from the atfork child handler, single
  /// threaded): clears epoch reader counts orphaned by parent threads
  /// that do not exist in the child — both the MiniHeap metadata epoch
  /// and the sink-dispatch epoch (a parent mid-poke at fork would
  /// otherwise wedge the child's first sink synchronize).
  void resetEpochAfterFork() {
    MiniHeapEpoch.resetToQuiescent();
    RequestSinkEpoch.resetToQuiescent();
  }

  /// Fork quiesce: acquires every heap lock in rank order — MeshLock,
  /// heap shards, arena shards + ArenaLock (via the arena), the leaf
  /// sync lock — so the child inherits them free (no parent thread can
  /// be mid-critical-section at the fork instant). Paired with
  /// unlockForFork in both parent and child handlers.
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: TSA cannot express a loop over a
  /// lock array, nor a lock()/unlock() pair split across functions (the
  /// atfork prepare/parent/child trio). Runtime coverage:
  /// LockRank death tests + the fork soak (ForkStressTest).
  void lockForFork() MESH_NO_THREAD_SAFETY_ANALYSIS;
  void unlockForFork() MESH_NO_THREAD_SAFETY_ANALYSIS;

  /// Fork-prepare companion to reinitializeArenaAfterFork: flushes the
  /// dirty span bins while the process is still intact, so the child
  /// handler has nothing to flush. Dirty spans hold dead contents the
  /// child will not copy, and the flush's bin moves can grow an
  /// InternalVector — an InternalHeap allocation that is legal here
  /// (the InternalHeap fork lock is not yet taken) but would
  /// self-deadlock in the child, where that lock is inherited held.
  /// Caller must hold every heap lock (lockForFork) and not yet hold
  /// the InternalHeap lock.
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: runs under the fork-time
  /// hold-everything state, which TSA cannot track across functions.
  void flushDirtyForFork() MESH_NO_THREAD_SAFETY_ANALYSIS;

  /// Fork-child arena recovery (the copy-to-fresh-memfd protocol):
  /// rebuilds the arena on a private memfd so the child stops sharing
  /// data pages with the parent. Drives
  /// MemfdArena::reinitializeAfterFork() with a page-table walk that
  /// enumerates every MiniHeap once (at its physical span's first
  /// page) and replays its full span list — identity mapping plus
  /// meshed aliases. The dirty bins are guaranteed empty here
  /// (flushDirtyForFork ran in prepare), so committedPages() already
  /// equals exactly what the copy replays. Must run in the atfork
  /// child handler, before any lock is released and before the
  /// mesher's deferred restart can be consumed; allocation-free and
  /// bounded-syscalls end to end.
  void reinitializeArenaAfterFork();

  /// Flushes dirty spans back to the OS (also happens automatically
  /// past the dirty budget).
  size_t flushDirtyPages();

  size_t committedBytes() const {
    return pagesToBytes(Arena.committedPages());
  }
  size_t dirtyBytes() const { return pagesToBytes(Arena.dirtyPages()); }
  /// Kernel ground truth for the arena file, in pages. Always <=
  /// committedPages (committed counts whole spans; the kernel only
  /// charges materialized pages) — an invariant the fork tests assert
  /// survives the child-side arena rebuild.
  size_t kernelFilePages() const { return Arena.kernelFilePages(); }
  /// Degraded punch/remap operations (faults.punch_fallbacks).
  uint64_t punchFallbackCount() const { return Arena.punchFallbackCount(); }
  /// faults.reset: zeroes the heap-side degradation counters (the
  /// syscall-seam counters reset separately via
  /// sys::resetFaultCounters()).
  void resetFaultCounters() {
    Stats.OomReturns.store(0, std::memory_order_relaxed);
    Stats.MeshRollbacks.store(0, std::memory_order_relaxed);
    Arena.resetPunchFallbacks();
  }

  MeshStats &stats() { return Stats; }
  const MeshStats &stats() const { return Stats; }

  /// Runtime controls (mallctl surface). The meshing switch is its own
  /// atomic — mallctl may flip it while the background mesher (or a
  /// racing mutator) is reading it.
  void setMeshingEnabled(bool Enabled) {
    MeshingEnabledFlag.store(Enabled, std::memory_order_relaxed);
  }
  bool meshingEnabled() const {
    return MeshingEnabledFlag.load(std::memory_order_relaxed);
  }
  /// Like the meshing switch, the period is its own atomic: the
  /// lock-free maybeMesh() precheck reads it on every trigger while
  /// mallctl may retune it.
  void setMeshPeriodMs(uint64_t Ms) {
    MeshPeriodMsAtomic.store(Ms, std::memory_order_relaxed);
  }
  uint64_t meshPeriodMs() const {
    return MeshPeriodMsAtomic.load(std::memory_order_relaxed);
  }
  void setMeshProbes(uint32_t T) { Opts.MeshProbes = T; }
  void setMaxMeshesPerPass(uint32_t Max) { Opts.MaxMeshesPerPass = Max; }
  bool randomized() const { return Opts.Randomized; }

  /// Test hook: number of detached, partially-full MiniHeaps currently
  /// binned for \p SizeClass. Non-const on purpose: it drains the
  /// shard's pending stash first (re-binning, possibly destroying empty
  /// spans) so the count reflects every completed remote free.
  size_t binnedCount(int SizeClass);

  static constexpr int kOccupancyBins = 4;

  /// Shard count: one per size class plus the large-object shard.
  static constexpr int kNumShards = kNumSizeClasses + 1;
  static_assert(kNumShards <= 32,
                "the debug held-shard mask is a uint32_t; widen it (and "
                "re-audit the lock-order diagnostics) before adding shards");
  /// Index of the shard serializing large-object (singleton) frees.
  static constexpr int kLargeShard = kNumSizeClasses;

  /// Test hooks pinning the shard lock-ordering discipline: Debug
  /// builds abort on out-of-order acquisition (death tests only; never
  /// use in production paths).
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: the death tests acquire locks
  /// out of rank and abandon them inside EXPECT_DEATH statements on
  /// purpose — exactly what the static analysis exists to reject.
  /// These hooks are the runtime checker's domain (LockRank).
  void lockShardForTest(int ShardIdx) MESH_NO_THREAD_SAFETY_ANALYSIS {
    lockShard(ShardIdx);
  }
  void unlockShardForTest(int ShardIdx) MESH_NO_THREAD_SAFETY_ANALYSIS {
    unlockShard(ShardIdx);
  }

  /// Test access to the arena (shard-lock counters, accounting
  /// invariants, the arena-rank lock-order hooks).
  MeshableArena &arenaForTest() { return Arena; }

  /// Maps an occupancy fraction to its bin. Quartiles are left-closed:
  /// bin 0 holds (0%, 25%), bin 1 [25%, 50%), bin 2 [50%, 75%), bin 3
  /// [75%, 100%] (the clamp folds 100% in, though full and empty spans
  /// are never binned). Public so tests can pin the boundary math.
  static int occupancyBin(uint32_t InUse, uint32_t Count) {
    const int Bin = static_cast<int>(
        (static_cast<uint64_t>(InUse) * kOccupancyBins) / Count);
    return Bin >= kOccupancyBins ? kOccupancyBins - 1 : Bin;
  }

private:
  /// One size class's slice of the global heap's structural state. All
  /// fields except PendingStash are guarded by this shard's Lock;
  /// PendingStash is a lock-free MPSC stack pushed by remote frees and
  /// exchanged out by lock-held drains. Cache-line aligned so two
  /// shards' locks never false-share.
  struct alignas(64) Shard {
    mutable SpinLock Lock;
    /// Detached, partially-full MiniHeaps keyed by occupancy quartile
    /// (empty and unused for the large-object shard).
    InternalVector<MiniHeap *> Bins[kOccupancyBins] MESH_GUARDED_BY(Lock);
    /// Intrusive MPSC stack of MiniHeaps with un-drained remote frees.
    /// Deliberately NOT guarded: pushes are lock-free atomic CAS from
    /// remote frees; only the exchange-out in drainStashLocked needs
    /// the lock (for what it does with the popped list, not the pop).
    std::atomic<MiniHeap *> PendingStash{nullptr};
    /// Destroyed MiniHeaps whose metadata awaits the batched epoch
    /// advance before deletion.
    InternalVector<MiniHeap *> RetiredList MESH_GUARDED_BY(Lock);
    /// Bin selection randomness (Section 3.1).
    Rng Random MESH_GUARDED_BY(Lock){0};
  };

  /// Shard owning \p MH's structural state.
  int shardIndexFor(const MiniHeap *MH) const {
    return MH->isLargeAlloc() ? kLargeShard : MH->sizeClass();
  }

  void lockShard(int ShardIdx) MESH_ACQUIRE(Shards[ShardIdx].Lock);
  void unlockShard(int ShardIdx) MESH_RELEASE(Shards[ShardIdx].Lock);

  void insertIntoBinLocked(Shard &S, MiniHeap *MH, uint32_t InUse)
      MESH_REQUIRES(S.Lock);
  void removeFromBinLocked(Shard &S, MiniHeap *MH) MESH_REQUIRES(S.Lock);
  void rebinOrDestroyLocked(Shard &S, MiniHeap *MH) MESH_REQUIRES(S.Lock);
  void destroyMiniHeapLocked(Shard &S, MiniHeap *MH) MESH_REQUIRES(S.Lock);
  void freeLocked(Shard &S, MiniHeap *MH, void *Ptr) MESH_REQUIRES(S.Lock);
  /// The lock-free small-object free. Returns true when \p Ptr was
  /// fully handled (freed, or diagnosed and discarded); false when the
  /// caller must retry under the owning shard's lock (large object, or
  /// a mesh pass is running). \p BecameEmpty reports that this free
  /// cleared the span's last live bit — the one case where maintenance
  /// (span destruction) should not wait for the next refill — and
  /// \p ShardIdx receives the owning shard for that drain.
  bool tryFreeUnlocked(void *Ptr, bool *BecameEmpty, int *ShardIdx);
  /// The shard-locked free fallback. Returns false when the owner
  /// changed shards between the epoch peek and the lock (page recycled
  /// to another class); the caller restarts dispatch.
  bool freeDiverted(void *Ptr);
  /// Pushes \p MH onto its shard's pending stash (MPSC; lock-free
  /// callers inside an epoch section).
  void pushPending(Shard &S, MiniHeap *MH);
  /// Drains every shard's pending stash in turn (ascending, one lock
  /// at a time): the full-reclamation sweep used by teardown and
  /// dirty-page flushes.
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: acquires a *variable-indexed* lock
  /// inside a loop, which TSA cannot model; the ascending-index rank is
  /// enforced at runtime by LockRank (ShardLockOrderTest pins it).
  void drainAllShards() MESH_NO_THREAD_SAFETY_ANALYSIS;
  /// Pops the shard's whole pending stash and re-bins / destroys /
  /// deletes each entry according to its current state. Leaves the
  /// retired list alone — every caller must follow up with a reap
  /// (drainPendingLocked bundles the two; the mesh pass batches the
  /// reap across shards instead).
  void drainStashLocked(Shard &S) MESH_REQUIRES(S.Lock);
  /// drainStashLocked plus the retired-metadata reap: the maintenance
  /// unit every non-pass lock holder runs.
  void drainPendingLocked(Shard &S) MESH_REQUIRES(S.Lock);
  /// Deletes (or, for entries a stale stash push still references,
  /// marks dead) every MiniHeap in \p Retired and clears the list.
  /// Callers must have run epochSynchronize() after the last entry was
  /// retired — that makes each pending-free count final — and must
  /// prevent concurrent stash drains of the affected shards until the
  /// markDead hand-off lands (hold the shard lock, or quiesce pushes
  /// like the mesh pass does).
  void deleteRetired(InternalVector<MiniHeap *> &Retired);
  /// Deletes the shard's retired MiniHeap metadata after one batched
  /// epoch advance (see destroyMiniHeapLocked).
  void reapRetiredLocked(Shard &S) MESH_REQUIRES(S.Lock);
  /// Epoch::synchronize with its callers serialized (EpochSyncLock).
  /// A caller inside a MiniHeapEpoch reader section would deadlock
  /// waiting for itself — hence the epoch exclusion.
  void epochSynchronize() MESH_EXCLUDES(EpochSyncLock, MiniHeapEpoch);
  /// MESH_NO_THREAD_SAFETY_ANALYSIS (in addition to the REQUIRES): the
  /// pass visits shard locks through a variable loop index, which TSA
  /// cannot model. MeshLock itself is checked; the in-pass shard-lock
  /// order is LockRank's job.
  size_t performMeshing(MeshPassOrigin Origin)
      MESH_REQUIRES(MeshLock) MESH_NO_THREAD_SAFETY_ANALYSIS;
  size_t meshPairLocked(Shard &S, MiniHeap *Dst, MiniHeap *Src)
      MESH_REQUIRES(S.Lock) MESH_REQUIRES(MeshLock);
  /// The write-barrier-serialized object copy of a mesh, isolated so
  /// the TSan suppression covers it and nothing else (see tsan.supp).
  static size_t meshCopyBarrierProtected(MiniHeap *Dst, MiniHeap *Src,
                                         char *Base);

  MeshOptions Opts;
  MeshableArena Arena;
  MeshStats Stats;
  mutable Epoch MiniHeapEpoch;
  /// Pins the request sink across a dispatch (see requestMeshPass).
  mutable Epoch RequestSinkEpoch;

  Shard Shards[kNumShards];

  /// Serializes mesh passes; also guards the rate-limiter state below.
  /// Acquired before any shard lock.
  mutable SpinLock MeshLock;
  /// Serializes Epoch::synchronize callers (leaf lock).
  mutable SpinLock EpochSyncLock;
  /// Serializes RequestSinkEpoch.synchronize() callers. Deliberately
  /// not EpochSyncLock: a sink dispatch can nest a MiniHeapEpoch
  /// synchronize (pthread_create's allocation re-entry on the deferred
  /// restart path), which takes EpochSyncLock — holding that same lock
  /// while spinning on sink readers would deadlock against them.
  mutable SpinLock SinkSyncLock;

  /// SplitMesher randomness.
  Rng MeshRandom MESH_GUARDED_BY(MeshLock);

  /// True while a mesh pass is consolidating spans; lock-free frees
  /// divert to the shard-locked path so bitmap merges see a quiesced
  /// heap.
  std::atomic<bool> MeshInProgress{false};

  /// Background mesher, when one is attached (see setMeshRequestSink).
  std::atomic<MeshRequestSink *> RequestSink{nullptr};

  /// Live value of Opts.MeshingEnabled (see setMeshingEnabled).
  std::atomic<bool> MeshingEnabledFlag{true};
  /// Live value of Opts.MeshPeriodMs (see setMeshPeriodMs).
  std::atomic<uint64_t> MeshPeriodMsAtomic{kDefaultMeshPeriodMs};

  /// Rate-limiter state. LastMeshMs is written under MeshLock but read
  /// by maybeMesh()'s lock-free precheck (the poke gate), so it is an
  /// atomic rather than a guarded field; the rest is guarded by
  /// MeshLock.
  std::atomic<uint64_t> LastMeshMs{0};
  size_t LastMeshReleased MESH_GUARDED_BY(MeshLock) = 0;
  std::atomic<bool> FreedSinceLastMesh{false};
};

} // namespace mesh

#endif // MESH_CORE_GLOBALHEAP_H
