//===- GlobalHeap.h - Shared heap state and meshing coordinator -*- C++ -*-===//
///
/// \file
/// The global heap (paper Section 4.4): allocates MiniHeaps for
/// thread-local heaps from occupancy-ordered bins, serves large-object
/// allocations via singleton MiniHeaps, performs non-local frees, and
/// coordinates meshing.
///
/// Locking discipline: one spin lock guards all structural state (bins,
/// span bins, page-table writes, MiniHeap lifetime). The paper performs
/// non-local frees with only atomic bitmap updates; we take the lock on
/// the global free path as well, which closes the race between a remote
/// free and a concurrent mesh consolidating the same span at the cost
/// of some contention (local frees — the common case — remain
/// lock-free). DESIGN.md discusses the trade-off.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_GLOBALHEAP_H
#define MESH_CORE_GLOBALHEAP_H

#include "core/MeshStats.h"
#include "core/MeshableArena.h"
#include "core/MiniHeap.h"
#include "core/Options.h"
#include "core/SizeClass.h"
#include "support/InternalVector.h"
#include "support/Rng.h"
#include "support/SpinLock.h"

#include <cstddef>

namespace mesh {

class GlobalHeap {
public:
  explicit GlobalHeap(const MeshOptions &Opts);
  ~GlobalHeap();

  GlobalHeap(const GlobalHeap &) = delete;
  GlobalHeap &operator=(const GlobalHeap &) = delete;

  char *arenaBase() const { return Arena.arenaBase(); }
  bool contains(const void *Ptr) const { return Arena.contains(Ptr); }
  const MeshOptions &options() const { return Opts; }

  /// Selects (or creates) a MiniHeap for \p SizeClass and marks it
  /// attached. Partially full spans are reused first: the fullest
  /// non-empty occupancy bin is scanned and a random member chosen
  /// (Section 3.1).
  MiniHeap *allocMiniHeapForClass(int SizeClass);

  /// Returns a MiniHeap previously attached by a thread-local heap
  /// (whose shuffle vector has already surrendered its cached offsets).
  /// Re-bins it, or destroys it when empty.
  void releaseMiniHeap(MiniHeap *MH);

  /// Large-object allocation (> 16 KiB): rounds up to whole pages and
  /// tracks the span with a singleton MiniHeap (Section 4.4.3).
  void *largeAlloc(size_t Bytes);

  /// Non-local free (Section 4.4.4): constant-time owner lookup, then
  /// bitmap update and bin/lifetime maintenance under the lock. Invalid
  /// and double frees are detected and discarded with a warning.
  void free(void *Ptr);

  /// Usable size of \p Ptr (its size-class size, or the whole span for
  /// large objects); 0 when \p Ptr is not a live Mesh pointer.
  size_t usableSize(const void *Ptr) const;

  /// Owning MiniHeap, or nullptr (lock-free page-table read).
  MiniHeap *miniheapFor(const void *Ptr) const { return Arena.ownerOf(Ptr); }

  /// Runs a meshing pass immediately, ignoring the rate limiter.
  /// \returns bytes of physical memory released.
  size_t meshNow();

  /// Rate-limited meshing trigger (Section 4.5), called on global
  /// frees.
  void maybeMesh();

  /// Flushes dirty spans back to the OS (also happens automatically
  /// past the dirty budget).
  size_t flushDirtyPages();

  size_t committedBytes() const {
    return pagesToBytes(Arena.committedPages());
  }
  size_t dirtyBytes() const { return pagesToBytes(Arena.dirtyPages()); }

  MeshStats &stats() { return Stats; }
  const MeshStats &stats() const { return Stats; }

  /// Runtime controls (mallctl surface).
  void setMeshingEnabled(bool Enabled) { Opts.MeshingEnabled = Enabled; }
  void setMeshPeriodMs(uint64_t Ms) { Opts.MeshPeriodMs = Ms; }
  void setMeshProbes(uint32_t T) { Opts.MeshProbes = T; }
  void setMaxMeshesPerPass(uint32_t Max) { Opts.MaxMeshesPerPass = Max; }
  bool randomized() const { return Opts.Randomized; }

  /// Test hook: number of detached, partially-full MiniHeaps currently
  /// binned for \p SizeClass.
  size_t binnedCount(int SizeClass) const;

  static constexpr int kOccupancyBins = 4;

  /// Maps an occupancy fraction to its bin. Quartiles are left-closed:
  /// bin 0 holds (0%, 25%), bin 1 [25%, 50%), bin 2 [50%, 75%), bin 3
  /// [75%, 100%] (the clamp folds 100% in, though full and empty spans
  /// are never binned). Public so tests can pin the boundary math.
  static int occupancyBin(uint32_t InUse, uint32_t Count) {
    const int Bin = static_cast<int>(
        (static_cast<uint64_t>(InUse) * kOccupancyBins) / Count);
    return Bin >= kOccupancyBins ? kOccupancyBins - 1 : Bin;
  }

private:
  void insertIntoBinLocked(MiniHeap *MH);
  void removeFromBinLocked(MiniHeap *MH);
  void rebinOrDestroyLocked(MiniHeap *MH);
  void destroyMiniHeapLocked(MiniHeap *MH);
  void freeLocked(MiniHeap *MH, void *Ptr);
  size_t performMeshingLocked();
  size_t meshPairLocked(MiniHeap *Dst, MiniHeap *Src);
  void maybeMeshLocked();

  MeshOptions Opts;
  MeshableArena Arena;
  MeshStats Stats;
  mutable SpinLock Lock;
  Rng Random;

  InternalVector<MiniHeap *> Bins[kNumSizeClasses][kOccupancyBins];

  uint64_t LastMeshMs = 0;
  size_t LastMeshReleased = 0;
  bool FreedSinceLastMesh = false;
  bool InMeshPass = false;
};

} // namespace mesh

#endif // MESH_CORE_GLOBALHEAP_H
