//===- GlobalHeap.h - Shared heap state and meshing coordinator -*- C++ -*-===//
///
/// \file
/// The global heap (paper Section 4.4): allocates MiniHeaps for
/// thread-local heaps from occupancy-ordered bins, serves large-object
/// allocations via singleton MiniHeaps, performs non-local frees, and
/// coordinates meshing.
///
/// Locking discipline: one spin lock guards structural state (bins,
/// span bins, page-table writes). Non-local frees follow the paper's
/// design: an epoch-protected page-table read plus one atomic bitmap
/// update, no lock. Re-binning and empty-span destruction are deferred
/// to a lock-held drain of a pending-free stash; MiniHeap destruction
/// advances the epoch and waits out in-flight readers, which closes the
/// lookup/mesh/destroy race the previous locked design worked around.
/// DESIGN.md ("the global-free locking trade-off, retired") has the
/// full protocol.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_GLOBALHEAP_H
#define MESH_CORE_GLOBALHEAP_H

#include "core/MeshStats.h"
#include "core/MeshableArena.h"
#include "core/MiniHeap.h"
#include "core/Options.h"
#include "core/SizeClass.h"
#include "support/Epoch.h"
#include "support/InternalVector.h"
#include "support/Rng.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstddef>

namespace mesh {

class GlobalHeap {
public:
  explicit GlobalHeap(const MeshOptions &Opts);
  ~GlobalHeap();

  GlobalHeap(const GlobalHeap &) = delete;
  GlobalHeap &operator=(const GlobalHeap &) = delete;

  char *arenaBase() const { return Arena.arenaBase(); }
  bool contains(const void *Ptr) const { return Arena.contains(Ptr); }
  const MeshOptions &options() const { return Opts; }

  /// Selects (or creates) a MiniHeap for \p SizeClass and marks it
  /// attached. Partially full spans are reused first: the fullest
  /// non-empty occupancy bin is scanned and a random member chosen
  /// (Section 3.1).
  MiniHeap *allocMiniHeapForClass(int SizeClass);

  /// Returns a MiniHeap previously attached by a thread-local heap
  /// (whose shuffle vector has already surrendered its cached offsets).
  /// Re-bins it, or destroys it when empty.
  void releaseMiniHeap(MiniHeap *MH);

  /// Large-object allocation (> 16 KiB): rounds up to whole pages and
  /// tracks the span with a singleton MiniHeap (Section 4.4.3).
  void *largeAlloc(size_t Bytes) { return largeAllocZeroed(Bytes, nullptr); }

  /// Like largeAlloc, but additionally reports whether the span is
  /// known demand-zero (freshly committed memfd pages, never dirtied) —
  /// the calloc path skips its memset when \p WasZeroed comes back
  /// true. \p WasZeroed may be null.
  void *largeAllocZeroed(size_t Bytes, bool *WasZeroed);

  /// Non-local free (Section 4.4.4): epoch-protected constant-time
  /// owner lookup plus one atomic bitmap update — no lock in the common
  /// case. Re-binning and empty-span destruction are queued on the
  /// pending stash and drained opportunistically (try-lock here, or by
  /// the next allocation/mesh pass). Large-object frees and frees that
  /// race a mesh pass fall back to the locked path. Invalid and double
  /// frees are detected and discarded with a warning.
  void free(void *Ptr);

  /// Usable size of \p Ptr (its size-class size, or the whole span for
  /// large objects); 0 when \p Ptr is not a live Mesh pointer.
  size_t usableSize(const void *Ptr) const;

  /// Owning MiniHeap, or nullptr (lock-free page-table read). Callers
  /// that dereference the result without holding the lock must be
  /// inside a miniheapEpoch() section, which holds off destruction.
  MiniHeap *miniheapFor(const void *Ptr) const { return Arena.ownerOf(Ptr); }

  /// The epoch guarding MiniHeap metadata lifetime (see free()).
  Epoch &miniheapEpoch() const { return MiniHeapEpoch; }

  /// Runs a meshing pass immediately, ignoring the rate limiter.
  /// \returns bytes of physical memory released.
  size_t meshNow();

  /// Rate-limited meshing trigger (Section 4.5), called on global
  /// frees.
  void maybeMesh();

  /// Flushes dirty spans back to the OS (also happens automatically
  /// past the dirty budget).
  size_t flushDirtyPages();

  size_t committedBytes() const {
    return pagesToBytes(Arena.committedPages());
  }
  size_t dirtyBytes() const { return pagesToBytes(Arena.dirtyPages()); }

  MeshStats &stats() { return Stats; }
  const MeshStats &stats() const { return Stats; }

  /// Runtime controls (mallctl surface).
  void setMeshingEnabled(bool Enabled) { Opts.MeshingEnabled = Enabled; }
  void setMeshPeriodMs(uint64_t Ms) { Opts.MeshPeriodMs = Ms; }
  void setMeshProbes(uint32_t T) { Opts.MeshProbes = T; }
  void setMaxMeshesPerPass(uint32_t Max) { Opts.MaxMeshesPerPass = Max; }
  bool randomized() const { return Opts.Randomized; }

  /// Test hook: number of detached, partially-full MiniHeaps currently
  /// binned for \p SizeClass. Non-const on purpose: it drains the
  /// pending-free stash first (re-binning, possibly destroying empty
  /// spans) so the count reflects every completed remote free.
  size_t binnedCount(int SizeClass);

  static constexpr int kOccupancyBins = 4;

  /// Maps an occupancy fraction to its bin. Quartiles are left-closed:
  /// bin 0 holds (0%, 25%), bin 1 [25%, 50%), bin 2 [50%, 75%), bin 3
  /// [75%, 100%] (the clamp folds 100% in, though full and empty spans
  /// are never binned). Public so tests can pin the boundary math.
  static int occupancyBin(uint32_t InUse, uint32_t Count) {
    const int Bin = static_cast<int>(
        (static_cast<uint64_t>(InUse) * kOccupancyBins) / Count);
    return Bin >= kOccupancyBins ? kOccupancyBins - 1 : Bin;
  }

private:
  void insertIntoBinLocked(MiniHeap *MH, uint32_t InUse);
  void removeFromBinLocked(MiniHeap *MH);
  void rebinOrDestroyLocked(MiniHeap *MH);
  void destroyMiniHeapLocked(MiniHeap *MH);
  void freeLocked(MiniHeap *MH, void *Ptr);
  /// The lock-free small-object free. Returns true when \p Ptr was
  /// fully handled (freed, or diagnosed and discarded); false when the
  /// caller must retry under the lock (large object, or a mesh pass is
  /// running). \p BecameEmpty reports that this free cleared the
  /// span's last live bit — the one case where maintenance (span
  /// destruction) should not wait for the next allocation.
  bool tryFreeUnlocked(void *Ptr, bool *BecameEmpty);
  /// Pushes \p MH onto the pending stash (MPSC; lock-free callers).
  void pushPending(MiniHeap *MH);
  /// Pops the whole pending stash and re-bins / destroys / reaps each
  /// entry according to its current state.
  void drainPendingLocked();
  /// Deletes retired MiniHeap metadata after one batched epoch
  /// advance (see destroyMiniHeapLocked).
  void reapRetiredLocked();
  size_t performMeshingLocked();
  size_t meshPairLocked(MiniHeap *Dst, MiniHeap *Src);
  /// The write-barrier-serialized object copy of a mesh, isolated so
  /// the TSan suppression covers it and nothing else (see tsan.supp).
  static size_t meshCopyBarrierProtected(MiniHeap *Dst, MiniHeap *Src,
                                         char *Base);
  void maybeMeshLocked();

  MeshOptions Opts;
  MeshableArena Arena;
  MeshStats Stats;
  mutable SpinLock Lock;
  mutable Epoch MiniHeapEpoch;
  Rng Random;

  InternalVector<MiniHeap *> Bins[kNumSizeClasses][kOccupancyBins];

  /// Intrusive MPSC stack of MiniHeaps with un-drained remote frees.
  std::atomic<MiniHeap *> PendingStash{nullptr};
  /// Destroyed MiniHeaps whose metadata awaits the batched epoch
  /// advance before deletion (lock-held access only).
  InternalVector<MiniHeap *> RetiredList;
  /// True while a mesh pass is consolidating spans; lock-free frees
  /// divert to the locked path so bitmap merges see a quiesced heap.
  std::atomic<bool> MeshInProgress{false};

  uint64_t LastMeshMs = 0;
  size_t LastMeshReleased = 0;
  std::atomic<bool> FreedSinceLastMesh{false};
  bool InMeshPass = false;
};

} // namespace mesh

#endif // MESH_CORE_GLOBALHEAP_H
