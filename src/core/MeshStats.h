//===- MeshStats.h - Allocator statistics -----------------------*- C++ -*-===//
///
/// \file
/// Counters backing the paper's evaluation: meshes performed, physical
/// pages released by meshing, time spent meshing and the longest single
/// pause (Section 6.2.2 reports 0.23 s total / 22 ms max for Redis).
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_MESHSTATS_H
#define MESH_CORE_MESHSTATS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mesh {

/// Where a mesh pass executed. Foreground passes run on an application
/// thread (synchronous maybeMesh, explicit meshNow) and their duration
/// is a mutator pause; background passes run on the dedicated mesher
/// thread and cost mutators nothing beyond shard-lock blips. The
/// ablation bench attributes pauses with exactly this split.
enum class MeshPassOrigin { Foreground, Background };

struct MeshStats {
  std::atomic<uint64_t> MeshPasses{0};    ///< SplitMesher invocations.
  std::atomic<uint64_t> MeshCount{0};     ///< Pairs meshed.
  std::atomic<uint64_t> PagesMeshed{0};   ///< Physical pages released.
  std::atomic<uint64_t> BytesCopied{0};   ///< Object bytes relocated.
  std::atomic<uint64_t> MeshProbeCount{0};///< Meshability tests run.
  std::atomic<uint64_t> TotalMeshNs{0};   ///< Wall time inside passes.
  std::atomic<uint64_t> MaxMeshPassNs{0}; ///< Longest single pause.
  std::atomic<uint64_t> PeakCommittedPages{0};

  /// Per-origin pass counts and worst-case durations (see
  /// MeshPassOrigin). Foreground max is the mutator-visible pause; the
  /// background max only measures how long the mesher thread was busy.
  std::atomic<uint64_t> MeshPassesForeground{0};
  std::atomic<uint64_t> MeshPassesBackground{0};
  std::atomic<uint64_t> MaxForegroundPassNs{0};
  std::atomic<uint64_t> MaxBackgroundPassNs{0};

  /// Degradation counters (faults.* mallctl namespace): malloc paths
  /// that returned nullptr/ENOMEM on span-commit failure or arena
  /// exhaustion, and mesh pairs rolled back to two valid unmeshed
  /// spans after a remap/protect failure.
  std::atomic<uint64_t> OomReturns{0};
  std::atomic<uint64_t> MeshRollbacks{0};

  void recordPass(uint64_t Ns, MeshPassOrigin Origin) {
    MeshPasses.fetch_add(1, std::memory_order_relaxed);
    TotalMeshNs.fetch_add(Ns, std::memory_order_relaxed);
    maxInPlace(MaxMeshPassNs, Ns);
    if (Origin == MeshPassOrigin::Background) {
      MeshPassesBackground.fetch_add(1, std::memory_order_relaxed);
      maxInPlace(MaxBackgroundPassNs, Ns);
    } else {
      MeshPassesForeground.fetch_add(1, std::memory_order_relaxed);
      maxInPlace(MaxForegroundPassNs, Ns);
    }
  }

  void updatePeak(uint64_t CommittedPages) {
    maxInPlace(PeakCommittedPages, CommittedPages);
  }

private:
  static void maxInPlace(std::atomic<uint64_t> &Slot, uint64_t Value) {
    uint64_t Prev = Slot.load(std::memory_order_relaxed);
    while (Value > Prev &&
           !Slot.compare_exchange_weak(Prev, Value,
                                       std::memory_order_relaxed))
      ;
  }
};

/// One sample of the heap's physical footprint, the input to the
/// pressure monitor (runtime/PressureMonitor.h). Produced by
/// GlobalHeap::sampleFootprint(); lives here so the monitor can be
/// unit-tested against fake sources without pulling in the heap.
struct HeapFootprint {
  /// Arena pages currently backed by physical memory.
  size_t CommittedBytes = 0;
  /// Object bytes live by the allocation bitmaps. Attached spans count
  /// their shuffle-vector-claimed slots as live, so this is an upper
  /// bound on application-live bytes — i.e. the fragmentation ratio
  /// derived from it is conservative.
  size_t InUseBytes = 0;
  /// Bytes spanned by live MiniHeaps (each physical span counted once).
  size_t SpanBytes = 0;
  /// Bytes of freed-but-not-yet-returned dirty pages.
  size_t DirtyBytes = 0;
};

} // namespace mesh

#endif // MESH_CORE_MESHSTATS_H
