//===- MeshStats.h - Allocator statistics -----------------------*- C++ -*-===//
///
/// \file
/// Counters backing the paper's evaluation: meshes performed, physical
/// pages released by meshing, time spent meshing and the longest single
/// pause (Section 6.2.2 reports 0.23 s total / 22 ms max for Redis).
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_MESHSTATS_H
#define MESH_CORE_MESHSTATS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mesh {

struct MeshStats {
  std::atomic<uint64_t> MeshPasses{0};    ///< SplitMesher invocations.
  std::atomic<uint64_t> MeshCount{0};     ///< Pairs meshed.
  std::atomic<uint64_t> PagesMeshed{0};   ///< Physical pages released.
  std::atomic<uint64_t> BytesCopied{0};   ///< Object bytes relocated.
  std::atomic<uint64_t> MeshProbeCount{0};///< Meshability tests run.
  std::atomic<uint64_t> TotalMeshNs{0};   ///< Wall time inside passes.
  std::atomic<uint64_t> MaxMeshPassNs{0}; ///< Longest single pause.
  std::atomic<uint64_t> PeakCommittedPages{0};

  void recordPass(uint64_t Ns) {
    MeshPasses.fetch_add(1, std::memory_order_relaxed);
    TotalMeshNs.fetch_add(Ns, std::memory_order_relaxed);
    uint64_t Prev = MaxMeshPassNs.load(std::memory_order_relaxed);
    while (Ns > Prev &&
           !MaxMeshPassNs.compare_exchange_weak(Prev, Ns,
                                                std::memory_order_relaxed))
      ;
  }

  void updatePeak(uint64_t CommittedPages) {
    uint64_t Prev = PeakCommittedPages.load(std::memory_order_relaxed);
    while (CommittedPages > Prev &&
           !PeakCommittedPages.compare_exchange_weak(
               Prev, CommittedPages, std::memory_order_relaxed))
      ;
  }
};

} // namespace mesh

#endif // MESH_CORE_MESHSTATS_H
