//===- MeshableArena.cpp - Span allocation over the arena ------------------===//

#include "core/MeshableArena.h"

#include "support/Log.h"
#include "support/MathUtils.h"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <sys/mman.h>

namespace mesh {

MeshableArena::MeshableArena(size_t ArenaBytes, size_t MaxDirty)
    : Arena(ArenaBytes), MaxDirtyBytes(MaxDirty) {
  PageTableBytes =
      roundUpPow2Multiple(Arena.arenaPages() * sizeof(PageTable[0]),
                          kPageSize);
  void *Mem = mmap(nullptr, PageTableBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    fatalError("page table mmap failed: %s", strerror(errno));
  PageTable = static_cast<std::atomic<MiniHeap *> *>(Mem);
}

MeshableArena::~MeshableArena() {
  if (PageTable != nullptr)
    munmap(PageTable, PageTableBytes);
}

int MeshableArena::binForPages(uint32_t Pages) {
  if (!isPowerOfTwo(Pages) || Pages > 32)
    return -1;
  return static_cast<int>(log2Floor(Pages));
}

uint32_t MeshableArena::allocSpan(uint32_t Pages, bool *IsClean) {
  assert(Pages > 0 && "zero-length span request");
  const int Bin = binForPages(Pages);
  if (Bin >= 0) {
    // Prefer dirty spans: their pages are already committed, so reuse
    // costs nothing (Section 4.4.1: used pages are likely needed soon).
    if (!DirtyBins[Bin].empty()) {
      const uint32_t Off = DirtyBins[Bin].back();
      DirtyBins[Bin].pop_back();
      DirtyPageCount -= Pages;
      *IsClean = false;
      return Off;
    }
    if (!CleanBins[Bin].empty()) {
      const uint32_t Off = CleanBins[Bin].back();
      CleanBins[Bin].pop_back();
      Arena.commit(Off, Pages);
      *IsClean = true;
      return Off;
    }
  } else {
    // Large-object span lengths: exact-fit from recycled spans.
    for (size_t I = 0; I < OddCleanSpans.size(); ++I) {
      if (OddCleanSpans[I].Pages == Pages) {
        const uint32_t Off = OddCleanSpans[I].PageOff;
        OddCleanSpans[I] = OddCleanSpans.back();
        OddCleanSpans.pop_back();
        Arena.commit(Off, Pages);
        *IsClean = true;
        return Off;
      }
    }
  }
  // Extend the bump frontier.
  if (HighWaterPage + Pages > Arena.arenaPages())
    fatalError("arena exhausted: %zu pages requested past %zu-page arena",
               static_cast<size_t>(Pages), Arena.arenaPages());
  const uint32_t Off = static_cast<uint32_t>(HighWaterPage);
  HighWaterPage += Pages;
  Arena.commit(Off, Pages);
  *IsClean = true;
  return Off;
}

void MeshableArena::freeDirtySpan(uint32_t PageOff, uint32_t Pages) {
  const int Bin = binForPages(Pages);
  if (Bin < 0) {
    // Odd-length spans are always released eagerly.
    freeReleasedSpan(PageOff, Pages);
    return;
  }
  DirtyBins[Bin].push_back(PageOff);
  DirtyPageCount += Pages;
  if (pagesToBytes(DirtyPageCount) > MaxDirtyBytes)
    flushDirty();
}

void MeshableArena::freeReleasedSpan(uint32_t PageOff, uint32_t Pages) {
  Arena.release(PageOff, Pages);
  const int Bin = binForPages(Pages);
  if (Bin >= 0)
    CleanBins[Bin].push_back(PageOff);
  else
    OddCleanSpans.push_back(Span{PageOff, Pages});
}

void MeshableArena::freeAliasSpan(uint32_t PageOff, uint32_t Pages) {
  // The span's own file pages were punched when it was meshed away;
  // restoring the identity mapping yields a demand-zero span.
  Arena.resetMapping(PageOff, Pages);
  const int Bin = binForPages(Pages);
  if (Bin >= 0)
    CleanBins[Bin].push_back(PageOff);
  else
    OddCleanSpans.push_back(Span{PageOff, Pages});
}

size_t MeshableArena::flushDirty() {
  size_t Released = 0;
  for (uint32_t Bin = 0; Bin < kNumLenBins; ++Bin) {
    const uint32_t Pages = 1u << Bin;
    for (uint32_t Off : DirtyBins[Bin]) {
      Arena.release(Off, Pages);
      CleanBins[Bin].push_back(Off);
      Released += Pages;
    }
    DirtyBins[Bin].clear();
  }
  assert(Released == DirtyPageCount && "dirty accounting out of sync");
  DirtyPageCount = 0;
  return Released;
}

void MeshableArena::setOwner(uint32_t PageOff, uint32_t Pages,
                             MiniHeap *Owner) {
  for (uint32_t I = 0; I < Pages; ++I)
    PageTable[PageOff + I].store(Owner, std::memory_order_release);
}

} // namespace mesh
