//===- MeshableArena.cpp - Span allocation over the arena ------------------===//

#include "core/MeshableArena.h"

#include "support/Log.h"
#include "support/MathUtils.h"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <sys/mman.h>

namespace mesh {

MeshableArena::MeshableArena(size_t ArenaBytes, size_t MaxDirty)
    : Arena(ArenaBytes), MaxDirtyBytes(MaxDirty) {
  PageTableBytes =
      roundUpPow2Multiple(Arena.arenaPages() * sizeof(PageTable[0]),
                          kPageSize);
  void *Mem = mmap(nullptr, PageTableBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    fatalError("page table mmap failed: %s", strerror(errno));
  PageTable = static_cast<std::atomic<MiniHeap *> *>(Mem);
}

MeshableArena::~MeshableArena() {
  if (PageTable != nullptr)
    munmap(PageTable, PageTableBytes);
}

int MeshableArena::binForPages(uint32_t Pages) {
  if (!isPowerOfTwo(Pages) || Pages > 32)
    return -1;
  return static_cast<int>(log2Floor(Pages));
}

void MeshableArena::binClean(uint32_t PageOff, uint32_t Pages) {
  const int Bin = binForPages(Pages);
  if (Bin >= 0)
    CleanBins[Bin].push_back(PageOff);
  else
    OddCleanSpans.push_back(Span{PageOff, Pages});
}

uint32_t MeshableArena::allocSpan(uint32_t Pages, bool *IsClean) {
  assert(Pages > 0 && "zero-length span request");
  const int Bin = binForPages(Pages);
  if (Bin >= 0) {
    // Prefer dirty spans: their pages are already committed, so reuse
    // costs nothing (Section 4.4.1: used pages are likely needed soon)
    // — and needs no commit, which is what lets the heap keep serving
    // from recycled memory while fresh commits are being refused.
    if (!DirtyBins[Bin].empty()) {
      const uint32_t Off = DirtyBins[Bin].back();
      DirtyBins[Bin].pop_back();
      DirtyPageCount -= Pages;
      *IsClean = false;
      return Off;
    }
    if (!CleanBins[Bin].empty()) {
      const uint32_t Off = CleanBins[Bin].back();
      if (!Arena.commit(Off, Pages))
        return kInvalidSpanOff; // span stays binned; nothing leaked
      CleanBins[Bin].pop_back();
      *IsClean = true;
      return Off;
    }
  } else {
    // Large-object span lengths: exact-fit from recycled spans.
    for (size_t I = 0; I < OddCleanSpans.size(); ++I) {
      if (OddCleanSpans[I].Pages == Pages) {
        const uint32_t Off = OddCleanSpans[I].PageOff;
        if (!Arena.commit(Off, Pages))
          return kInvalidSpanOff; // entry stays in place
        OddCleanSpans[I] = OddCleanSpans.back();
        OddCleanSpans.pop_back();
        *IsClean = true;
        return Off;
      }
    }
  }
  // Extend the bump frontier. Exhaustion is an allocation failure, not
  // a crash: the caller turns kInvalidSpanOff into nullptr/ENOMEM.
  if (HighWaterPage + Pages > Arena.arenaPages())
    return kInvalidSpanOff;
  const uint32_t Off = static_cast<uint32_t>(HighWaterPage);
  if (!Arena.commit(Off, Pages))
    return kInvalidSpanOff;
  HighWaterPage += Pages;
  *IsClean = true;
  return Off;
}

void MeshableArena::freeDirtySpan(uint32_t PageOff, uint32_t Pages) {
  const int Bin = binForPages(Pages);
  if (Bin < 0) {
    // Odd-length spans are always released eagerly.
    freeReleasedSpan(PageOff, Pages);
    return;
  }
  DirtyBins[Bin].push_back(PageOff);
  DirtyPageCount += Pages;
  if (pagesToBytes(DirtyPageCount) > MaxDirtyBytes)
    flushDirty();
}

void MeshableArena::freeReleasedSpan(uint32_t PageOff, uint32_t Pages) {
  if (Arena.release(PageOff, Pages)) {
    binClean(PageOff, Pages);
    return;
  }
  PunchFallbacks.fetch_add(1, std::memory_order_relaxed);
  const int Bin = binForPages(Pages);
  if (Bin >= 0) {
    // A failed punch leaves the contents intact, so the span is dirty,
    // never clean (clean spans must read back as zero — calloc skips
    // its memset on them). No flush trigger here: it would retry the
    // same punch immediately.
    DirtyBins[Bin].push_back(PageOff);
    DirtyPageCount += Pages;
  } else {
    // Odd lengths have no dirty bin; shed the RSS at least and retry
    // the punch at the next flush.
    Arena.dropResident(PageOff, Pages);
    DeferredSpans.push_back(DeferredSpan{PageOff, Pages, /*NeedsReset=*/false,
                                         /*NeedsPunch=*/true,
                                         /*Reusable=*/true});
  }
}

void MeshableArena::releaseForMesh(uint32_t PageOff, uint32_t Pages) {
  if (Arena.release(PageOff, Pages))
    return;
  PunchFallbacks.fetch_add(1, std::memory_order_relaxed);
  // The virtual span at PageOff now aliases the keeper, so there is no
  // identity mapping to MADV_DONTNEED through, and the span cannot be
  // rebinned (it is still owned by the retired source MiniHeap). Park
  // it: not reusable until freeAliasSpan recycles the virtual span.
  DeferredSpans.push_back(DeferredSpan{PageOff, Pages, /*NeedsReset=*/false,
                                       /*NeedsPunch=*/true,
                                       /*Reusable=*/false});
}

void MeshableArena::freeAliasSpan(uint32_t PageOff, uint32_t Pages) {
  size_t DI = DeferredSpans.size();
  for (size_t I = 0; I < DeferredSpans.size(); ++I) {
    if (DeferredSpans[I].PageOff == PageOff) {
      DI = I;
      break;
    }
  }
  if (!Arena.resetMapping(PageOff, Pages)) {
    // Still aliased to the keeper — unusable until the remap lands.
    PunchFallbacks.fetch_add(1, std::memory_order_relaxed);
    if (DI < DeferredSpans.size()) {
      DeferredSpans[DI].NeedsReset = true;
      DeferredSpans[DI].Reusable = true;
    } else {
      DeferredSpans.push_back(DeferredSpan{PageOff, Pages,
                                           /*NeedsReset=*/true,
                                           /*NeedsPunch=*/false,
                                           /*Reusable=*/true});
    }
    return;
  }
  if (DI < DeferredSpans.size()) {
    // The span's own file pages still await a deferred punch (the mesh
    // that created this alias could not punch them), so they are not
    // holes and the span is not demand-zero yet. Hand it back to the
    // deferred list; the punch retry rebins it.
    DeferredSpans[DI].NeedsReset = false;
    DeferredSpans[DI].Reusable = true;
    return;
  }
  // The span's own file pages were punched when it was meshed away;
  // restoring the identity mapping yields a demand-zero span.
  binClean(PageOff, Pages);
}

size_t MeshableArena::flushDirty(bool DeferFailures) {
  size_t Released = 0;
  // Deferred spans first: punches and remaps owed from earlier
  // degraded operations. Each retry re-draws the fault injector, so an
  // every-N storm drains this list once faults clear.
  for (size_t I = 0; I < DeferredSpans.size();) {
    DeferredSpan &D = DeferredSpans[I];
    if (D.NeedsReset && Arena.resetMapping(D.PageOff, D.Pages))
      D.NeedsReset = false;
    if (D.NeedsPunch && Arena.release(D.PageOff, D.Pages)) {
      D.NeedsPunch = false;
      Released += D.Pages;
    }
    if (!D.NeedsReset && !D.NeedsPunch) {
      if (D.Reusable)
        binClean(D.PageOff, D.Pages);
      DeferredSpans[I] = DeferredSpans.back();
      DeferredSpans.pop_back();
      continue; // re-examine the swapped-in entry
    }
    ++I;
  }
  for (uint32_t Bin = 0; Bin < kNumLenBins; ++Bin) {
    const uint32_t Pages = 1u << Bin;
    size_t Keep = 0;
    for (size_t I = 0; I < DirtyBins[Bin].size(); ++I) {
      const uint32_t Off = DirtyBins[Bin][I];
      if (Arena.release(Off, Pages)) {
        CleanBins[Bin].push_back(Off);
        Released += Pages;
        DirtyPageCount -= Pages;
        continue;
      }
      PunchFallbacks.fetch_add(1, std::memory_order_relaxed);
      if (DeferFailures) {
        // Pre-fork flush: the dirty set must reach zero (the child's
        // rebuild replays only owned spans), so park the failure on
        // the deferred list instead of keeping it dirty.
        Arena.dropResident(Off, Pages);
        DeferredSpans.push_back(DeferredSpan{Off, Pages,
                                             /*NeedsReset=*/false,
                                             /*NeedsPunch=*/true,
                                             /*Reusable=*/true});
        DirtyPageCount -= Pages;
      } else {
        // Keep it dirty — still committed, still reusable as-is.
        DirtyBins[Bin][Keep++] = Off;
      }
    }
    DirtyBins[Bin].resize(Keep);
  }
  assert((!DeferFailures || DirtyPageCount == 0) &&
         "pre-fork flush left dirty pages");
  return Released;
}

void MeshableArena::resetDeferredAfterFork() {
  // Pass 2 of the child's arena rebuild swung the whole reservation
  // back to the identity mapping, satisfying every pending remap.
  // Pending punches are kept on purpose: ownerless spans were not
  // copied into the fresh file, so the pages are already holes and the
  // retried punch (trivially succeeding) re-syncs the inherited
  // committed-page overcount.
  for (size_t I = 0; I < DeferredSpans.size(); ++I)
    DeferredSpans[I].NeedsReset = false;
}

void MeshableArena::setOwner(uint32_t PageOff, uint32_t Pages,
                             MiniHeap *Owner) {
  for (uint32_t I = 0; I < Pages; ++I)
    PageTable[PageOff + I].store(Owner, std::memory_order_release);
}

} // namespace mesh
