//===- MeshableArena.cpp - Sharded span allocation over the arena ----------===//

#include "core/MeshableArena.h"

#include "support/LockRank.h"
#include "support/Log.h"
#include "support/MathUtils.h"
#include "support/Telemetry.h"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <sys/mman.h>

namespace mesh {

MeshableArena::MeshableArena(size_t ArenaBytes, size_t MaxDirty)
    : Arena(ArenaBytes), MaxDirtyBytes(MaxDirty) {
  PageTableBytes =
      roundUpPow2Multiple(Arena.arenaPages() * sizeof(PageTable[0]),
                          kPageSize);
  void *Mem = mmap(nullptr, PageTableBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Mem == MAP_FAILED)
    fatalError("page table mmap failed: %s", strerror(errno));
  PageTable = static_cast<std::atomic<MiniHeap *> *>(Mem);
}

MeshableArena::~MeshableArena() {
  if (PageTable != nullptr)
    munmap(PageTable, PageTableBytes);
}

void MeshableArena::lockShard(int Shard) const {
  assert(Shard >= 0 && Shard < kNumArenaShards && "arena shard out of range");
  lockrank::acquireArenaShard(Shard);
  Shards[Shard].Lock.lock();
  Shards[Shard].LockAcquisitions.fetch_add(1, std::memory_order_relaxed);
}

void MeshableArena::unlockShard(int Shard) const {
  lockrank::releaseArenaShard(Shard);
  Shards[Shard].Lock.unlock();
}

void MeshableArena::lockArena() const {
  lockrank::acquireArenaLock();
  ArenaLock.lock();
}

void MeshableArena::unlockArena() const {
  lockrank::releaseArenaLock();
  ArenaLock.unlock();
}

int MeshableArena::binForPages(uint32_t Pages) {
  if (!isPowerOfTwo(Pages) || Pages > 32)
    return -1;
  return static_cast<int>(log2Floor(Pages));
}

void MeshableArena::binCleanLocked(uint32_t PageOff, uint32_t Pages) {
  const int Bin = binForPages(Pages);
  if (Bin >= 0)
    CleanBins[Bin].push_back(PageOff);
  else
    OddCleanSpans.push_back(Span{PageOff, Pages});
}

uint32_t MeshableArena::popDirtyLocked(ArenaShard &S, uint32_t Pages) {
  // Back-to-front: a class shard's entries all share the class's span
  // length, so the scan terminates immediately on the hot path; only
  // the large shard (mixed lengths, punch-failure leftovers) ever
  // walks further.
  for (size_t I = S.DirtySpans.size(); I > 0; --I) {
    if (S.DirtySpans[I - 1].Pages != Pages)
      continue;
    const uint32_t Off = S.DirtySpans[I - 1].PageOff;
    S.DirtySpans[I - 1] = S.DirtySpans.back();
    S.DirtySpans.pop_back();
    S.DirtyPages -= Pages;
    TotalDirtyPages.fetch_sub(Pages, std::memory_order_relaxed);
    return Off;
  }
  return kInvalidSpanOff;
}

size_t MeshableArena::pushDirtyLocked(ArenaShard &S, uint32_t PageOff,
                                      uint32_t Pages) {
  S.DirtySpans.push_back(Span{PageOff, Pages});
  S.DirtyPages += Pages;
  return TotalDirtyPages.fetch_add(Pages, std::memory_order_relaxed) + Pages;
}

uint32_t MeshableArena::allocSpanForClass(int Class, uint32_t Pages,
                                          bool *IsClean) {
  assert(Class >= 0 && Class < kNumSizeClasses && "size class out of range");
  assert(Pages > 0 && "zero-length span request");
  // Prefer the class's dirty spans: their pages are already committed,
  // so reuse costs nothing (Section 4.4.1: used pages are likely
  // needed soon) — and needs no commit, which is what lets the heap
  // keep serving from recycled memory while fresh commits are being
  // refused. This is the whole-shard-local hot path: no cross-class
  // state is touched.
  lockShard(Class);
  const uint32_t Off = popDirtyLocked(Shards[Class], Pages);
  unlockShard(Class);
  if (Off != kInvalidSpanOff) {
    *IsClean = false;
    return Off;
  }
  return allocCleanSpan(Pages, IsClean);
}

uint32_t MeshableArena::allocLargeSpan(uint32_t Pages, bool *IsClean) {
  assert(Pages > 0 && "zero-length span request");
  // Exact-length reuse of punch-failure leftovers; misses fall through
  // to the shared clean reserve like every class shard.
  lockShard(kLargeArenaShard);
  const uint32_t Off = popDirtyLocked(Shards[kLargeArenaShard], Pages);
  unlockShard(kLargeArenaShard);
  if (Off != kInvalidSpanOff) {
    *IsClean = false;
    return Off;
  }
  return allocCleanSpan(Pages, IsClean);
}

uint32_t MeshableArena::allocCleanSpan(uint32_t Pages, bool *IsClean) {
  lockArena();
  const int Bin = binForPages(Pages);
  if (Bin >= 0) {
    if (!CleanBins[Bin].empty()) {
      const uint32_t Off = CleanBins[Bin].back();
      if (!Arena.commit(Off, Pages)) {
        unlockArena();
        return kInvalidSpanOff; // span stays binned; nothing leaked
      }
      CleanBins[Bin].pop_back();
      unlockArena();
      *IsClean = true;
      return Off;
    }
  } else {
    // Off-bin lengths (odd class geometries, large objects): exact-fit
    // from recycled spans.
    for (size_t I = 0; I < OddCleanSpans.size(); ++I) {
      if (OddCleanSpans[I].Pages == Pages) {
        const uint32_t Off = OddCleanSpans[I].PageOff;
        if (!Arena.commit(Off, Pages)) {
          unlockArena();
          return kInvalidSpanOff; // entry stays in place
        }
        OddCleanSpans[I] = OddCleanSpans.back();
        OddCleanSpans.pop_back();
        unlockArena();
        *IsClean = true;
        return Off;
      }
    }
  }
  // Extend the bump frontier. Exhaustion is an allocation failure, not
  // a crash: the caller turns kInvalidSpanOff into nullptr/ENOMEM.
  const size_t Hwm = HighWaterPage.load(std::memory_order_relaxed);
  if (Hwm + Pages > Arena.arenaPages()) {
    unlockArena();
    return kInvalidSpanOff;
  }
  const uint32_t Off = static_cast<uint32_t>(Hwm);
  if (!Arena.commit(Off, Pages)) {
    unlockArena();
    return kInvalidSpanOff;
  }
  HighWaterPage.store(Hwm + Pages, std::memory_order_release);
  unlockArena();
  *IsClean = true;
  return Off;
}

bool MeshableArena::timedRelease(uint32_t PageOff, uint32_t Pages) {
  telemetry::Timer T;
  const bool Ok = Arena.release(PageOff, Pages);
  if (T.armed())
    telemetry::histRecord(telemetry::kHistPunchSyscall, T.elapsedNs());
  return Ok;
}

void MeshableArena::notePunchFallback() {
  PunchFallbacks.fetch_add(1, std::memory_order_relaxed);
  telemetry::event(telemetry::EventType::kFaultDegrade,
                   telemetry::kDegradePunchFallback, 0);
}

void MeshableArena::freeDirtySpanForClass(int Class, uint32_t PageOff,
                                          uint32_t Pages) {
  assert(Class >= 0 && Class < kNumSizeClasses && "size class out of range");
  lockShard(Class);
  const size_t Total = pushDirtyLocked(Shards[Class], PageOff, Pages);
  if (pagesToBytes(Total) > MaxDirtyBytes) {
    // Budget trip: flush only this shard. The just-pushed span is
    // always part of the sweep, so every over-budget push releases
    // pages — the total stays bounded without a cross-shard sweep
    // (the mesh pass's global flush covers idle shards).
    telemetry::event(telemetry::EventType::kDirtyTrip,
                     static_cast<uint16_t>(Class), pagesToBytes(Total));
    flushShardLocked(Shards[Class], /*DeferFailures=*/false,
                     /*ArenaLocked=*/false);
  }
  unlockShard(Class);
}

void MeshableArena::freeDirtyLargeSpan(uint32_t PageOff, uint32_t Pages) {
  lockShard(kLargeArenaShard);
  const size_t Total =
      pushDirtyLocked(Shards[kLargeArenaShard], PageOff, Pages);
  if (pagesToBytes(Total) > MaxDirtyBytes) {
    telemetry::event(telemetry::EventType::kDirtyTrip,
                     static_cast<uint16_t>(kLargeArenaShard),
                     pagesToBytes(Total));
    flushShardLocked(Shards[kLargeArenaShard], /*DeferFailures=*/false,
                     /*ArenaLocked=*/false);
  }
  unlockShard(kLargeArenaShard);
}

void MeshableArena::freeReleasedSpanForClass(int Class, uint32_t PageOff,
                                             uint32_t Pages) {
  assert(Class >= 0 && Class < kNumSizeClasses && "size class out of range");
  if (timedRelease(PageOff, Pages)) {
    lockArena();
    binCleanLocked(PageOff, Pages);
    unlockArena();
    return;
  }
  notePunchFallback();
  // A failed punch leaves the contents intact, so the span is dirty,
  // never clean (clean spans must read back as zero — calloc skips
  // its memset on them). No flush trigger here: it would retry the
  // same punch immediately.
  lockShard(Class);
  pushDirtyLocked(Shards[Class], PageOff, Pages);
  unlockShard(Class);
}

void MeshableArena::freeReleasedLargeSpan(uint32_t PageOff, uint32_t Pages) {
  if (timedRelease(PageOff, Pages)) {
    lockArena();
    binCleanLocked(PageOff, Pages);
    unlockArena();
    return;
  }
  notePunchFallback();
  lockShard(kLargeArenaShard);
  pushDirtyLocked(Shards[kLargeArenaShard], PageOff, Pages);
  unlockShard(kLargeArenaShard);
}

void MeshableArena::releaseForMesh(int Class, uint32_t PageOff,
                                   uint32_t Pages) {
  if (timedRelease(PageOff, Pages))
    return;
  notePunchFallback();
  // The virtual span at PageOff now aliases the keeper, so there is no
  // identity mapping to MADV_DONTNEED through, and the span cannot be
  // reused (it is still owned by the retired source MiniHeap). Park
  // it: not reusable until freeAliasSpan recycles the virtual span.
  lockShard(Class);
  Shards[Class].Deferred.push_back(DeferredSpan{PageOff, Pages,
                                                /*NeedsReset=*/false,
                                                /*NeedsPunch=*/true,
                                                /*Reusable=*/false});
  unlockShard(Class);
}

void MeshableArena::freeAliasSpan(int Class, uint32_t PageOff,
                                  uint32_t Pages) {
  lockShard(Class);
  auto &Deferred = Shards[Class].Deferred;
  size_t DI = Deferred.size();
  for (size_t I = 0; I < Deferred.size(); ++I) {
    if (Deferred[I].PageOff == PageOff) {
      DI = I;
      break;
    }
  }
  if (!Arena.resetMapping(PageOff, Pages)) {
    // Still aliased to the keeper — unusable until the remap lands.
    notePunchFallback();
    if (DI < Deferred.size()) {
      Deferred[DI].NeedsReset = true;
      Deferred[DI].Reusable = true;
    } else {
      Deferred.push_back(DeferredSpan{PageOff, Pages,
                                      /*NeedsReset=*/true,
                                      /*NeedsPunch=*/false,
                                      /*Reusable=*/true});
    }
    unlockShard(Class);
    return;
  }
  if (DI < Deferred.size()) {
    // The span's own file pages still await a deferred punch (the mesh
    // that created this alias could not punch them), so they are not
    // holes and the span is not demand-zero yet. Hand it back to the
    // deferred list; the punch retry rebins it.
    Deferred[DI].NeedsReset = false;
    Deferred[DI].Reusable = true;
    unlockShard(Class);
    return;
  }
  unlockShard(Class);
  // The span's own file pages were punched when it was meshed away;
  // restoring the identity mapping yields a demand-zero span.
  lockArena();
  binCleanLocked(PageOff, Pages);
  unlockArena();
}

size_t MeshableArena::flushShardLocked(ArenaShard &S, bool DeferFailures,
                                       bool ArenaLocked) {
  size_t Released = 0;
  // Rebinning a now-clean span needs the shared reserve; rank permits
  // nesting ArenaLock under a shard lock, and the fork path (which
  // already holds it) says so instead.
  auto RebinClean = [&](uint32_t PageOff, uint32_t Pages) {
    if (!ArenaLocked)
      lockArena();
    binCleanLocked(PageOff, Pages);
    if (!ArenaLocked)
      unlockArena();
  };
  // Deferred spans first: punches and remaps owed from earlier
  // degraded operations. Each retry re-draws the fault injector, so an
  // every-N storm drains this list once faults clear.
  for (size_t I = 0; I < S.Deferred.size();) {
    DeferredSpan &D = S.Deferred[I];
    if (D.NeedsReset && Arena.resetMapping(D.PageOff, D.Pages))
      D.NeedsReset = false;
    if (D.NeedsPunch && timedRelease(D.PageOff, D.Pages)) {
      D.NeedsPunch = false;
      Released += D.Pages;
    }
    if (!D.NeedsReset && !D.NeedsPunch) {
      const DeferredSpan Done = D;
      S.Deferred[I] = S.Deferred.back();
      S.Deferred.pop_back();
      if (Done.Reusable)
        RebinClean(Done.PageOff, Done.Pages);
      continue; // re-examine the swapped-in entry
    }
    ++I;
  }
  size_t Keep = 0;
  for (size_t I = 0; I < S.DirtySpans.size(); ++I) {
    const Span Sp = S.DirtySpans[I];
    if (timedRelease(Sp.PageOff, Sp.Pages)) {
      RebinClean(Sp.PageOff, Sp.Pages);
      Released += Sp.Pages;
      S.DirtyPages -= Sp.Pages;
      TotalDirtyPages.fetch_sub(Sp.Pages, std::memory_order_relaxed);
      continue;
    }
    notePunchFallback();
    if (DeferFailures) {
      // Pre-fork flush: the dirty set must reach zero (the child's
      // rebuild replays only owned spans), so park the failure on
      // the deferred list instead of keeping it dirty.
      Arena.dropResident(Sp.PageOff, Sp.Pages);
      S.Deferred.push_back(DeferredSpan{Sp.PageOff, Sp.Pages,
                                        /*NeedsReset=*/false,
                                        /*NeedsPunch=*/true,
                                        /*Reusable=*/true});
      S.DirtyPages -= Sp.Pages;
      TotalDirtyPages.fetch_sub(Sp.Pages, std::memory_order_relaxed);
    } else {
      // Keep it dirty — still committed, still reusable as-is.
      S.DirtySpans[Keep++] = Sp;
    }
  }
  S.DirtySpans.resize(Keep);
  assert((!DeferFailures || S.DirtyPages == 0) &&
         "deferring flush left dirty pages on the shard");
  return Released;
}

size_t MeshableArena::flushDirty(bool DeferFailures) {
  size_t Released = 0;
  // One shard at a time — the flush never holds two shard locks, so
  // it cannot rendezvous-deadlock with concurrent per-class traffic.
  for (int S = 0; S < kNumArenaShards; ++S) {
    lockShard(S);
    Released += flushShardLocked(Shards[S], DeferFailures,
                                 /*ArenaLocked=*/false);
    unlockShard(S);
  }
  return Released;
}

size_t MeshableArena::flushDirtyAssumeLocked(bool DeferFailures) {
  size_t Released = 0;
  for (int S = 0; S < kNumArenaShards; ++S)
    Released += flushShardLocked(Shards[S], DeferFailures,
                                 /*ArenaLocked=*/true);
  return Released;
}

void MeshableArena::resetDeferredAfterFork() {
  // Pass 2 of the child's arena rebuild swung the whole reservation
  // back to the identity mapping, satisfying every pending remap.
  // Pending punches are kept on purpose: ownerless spans were not
  // copied into the fresh file, so the pages are already holes and the
  // retried punch (trivially succeeding) re-syncs the inherited
  // committed-page overcount.
  for (int S = 0; S < kNumArenaShards; ++S)
    for (size_t I = 0; I < Shards[S].Deferred.size(); ++I)
      Shards[S].Deferred[I].NeedsReset = false;
}

void MeshableArena::lockAllShards() {
  for (int S = 0; S < kNumArenaShards; ++S)
    lockShard(S);
  lockArena();
}

void MeshableArena::unlockAllShards() {
  unlockArena();
  for (int S = kNumArenaShards - 1; S >= 0; --S)
    unlockShard(S);
}

size_t MeshableArena::dirtyPagesForShard(int Shard) const {
  lockShard(Shard);
  const size_t Pages = Shards[Shard].DirtyPages;
  unlockShard(Shard);
  return Pages;
}

void MeshableArena::setOwner(uint32_t PageOff, uint32_t Pages,
                             MiniHeap *Owner) {
  for (uint32_t I = 0; I < Pages; ++I)
    PageTable[PageOff + I].store(Owner, std::memory_order_release);
}

} // namespace mesh
