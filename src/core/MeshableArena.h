//===- MeshableArena.h - Sharded span allocation over the arena -*- C++ -*-===//
///
/// \file
/// The meshable arena from paper Section 4.4.1: the global heap's
/// source of spans, plus the mapping from arena page offsets to owning
/// MiniHeap pointers used for constant-time pointer lookup (Section
/// 4.4.4).
///
/// Span state is sharded per size class, mirroring the global heap's
/// shard map: each class shard owns the dirty spans of its class's
/// fixed span length, its slice of the deferred punch/remap work, and
/// its own spin lock, so span recycling for different classes never
/// contends. A 25th shard serves large (singleton) spans the same way.
/// Two kinds of state stay global, under ArenaLock (the innermost
/// arena rank):
///
///   - the clean reserve (punched, demand-zero spans, binned by
///     length): clean spans are class-agnostic by construction, and
///     keeping them shared preserves cross-class reuse;
///   - the bump frontier and its high-water mark.
///
/// The hot recycling loop — class C frees a span dirty, class C
/// reallocates it — runs entirely under arena shard C's lock. Only a
/// recycling *miss* (no dirty span of the right length) falls through
/// to ArenaLock for a clean span or frontier growth.
///
/// Used pages are not returned to the OS immediately (reclamation is
/// expensive and reuse is likely); only after kMaxDirtyBytes of dirty
/// pages accumulate process-wide — tracked by one atomic counter —
/// or when meshing releases a span, does the arena punch holes in the
/// backing file. A budget trip flushes only the tripping shard: every
/// push past the budget punches at least the just-pushed span, so the
/// total stays bounded without a stop-the-world sweep.
///
/// Locking: all calls are internally synchronized. Lock rank (Debug
/// enforced, support/LockRank.h): heap shards -> arena shards
/// ascending -> ArenaLock. Per-span syscalls (commit, punch, remap)
/// need no arena lock of their own — all structural movement of a
/// class-C span happens under heap shard C's lock, so no two threads
/// ever operate on the same span concurrently; the arena shard locks
/// exist because different spans of one class share the shard's lists.
/// Page-table reads are atomic so the free fast path may consult them
/// with no lock (epoch-protected dereference).
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_MESHABLEARENA_H
#define MESH_CORE_MESHABLEARENA_H

#include "arena/MemfdArena.h"
#include "core/SizeClass.h"
#include "support/Annotations.h"
#include "support/Common.h"
#include "support/InternalVector.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>

namespace mesh {

class MiniHeap;

class MeshableArena {
public:
  /// Shard count: one per size class plus the large-span shard.
  static constexpr int kNumArenaShards = kNumSizeClasses + 1;
  /// Index of the shard serving large (singleton) spans.
  static constexpr int kLargeArenaShard = kNumSizeClasses;
  static_assert(kNumArenaShards <= 32,
                "the debug held-arena-shard mask is a uint32_t; widen it "
                "before adding shards");

  explicit MeshableArena(size_t ArenaBytes, size_t MaxDirtyBytes);
  ~MeshableArena();

  MeshableArena(const MeshableArena &) = delete;
  MeshableArena &operator=(const MeshableArena &) = delete;

  MemfdArena &vm() { return Arena; }
  char *arenaBase() const { return Arena.base(); }
  bool contains(const void *Ptr) const { return Arena.contains(Ptr); }

  /// Sentinel returned by the span allocators when the arena cannot
  /// produce a span (frontier exhausted, or page commit refused under
  /// fault injection). Callers translate it into nullptr/ENOMEM.
  static constexpr uint32_t kInvalidSpanOff = ~0u;

  /// Allocates a span of \p Pages pages for \p Class, or
  /// kInvalidSpanOff on resource exhaustion (nothing is leaked: a span
  /// whose commit fails stays binned). Dirty spans of the class are
  /// preferred (already committed, reuse costs nothing); a miss falls
  /// through to the shared clean reserve / frontier under ArenaLock.
  /// Sets \p IsClean true when the span is known demand-zero; dirty
  /// spans may contain stale bytes and callers must not assume zero.
  /// Callers must hold heap shard \p Class's lock (the fork quiesce
  /// relies on it: a committed-but-unowned span must not be visible at
  /// the fork instant).
  uint32_t allocSpanForClass(int Class, uint32_t Pages, bool *IsClean);

  /// Large-object span allocation: exact-length reuse from the large
  /// shard's dirty leftovers, then the clean reserve / frontier.
  /// Callers must hold the large heap shard's lock (same fork-window
  /// argument as allocSpanForClass).
  uint32_t allocLargeSpan(uint32_t Pages, bool *IsClean);

  /// Returns a class-\p Class span whose physical pages are still live
  /// to the class's dirty list; flushes the shard when the process-wide
  /// dirty budget trips.
  void freeDirtySpanForClass(int Class, uint32_t PageOff, uint32_t Pages);

  /// Punches the span's pages immediately (non-meshable classes, paper
  /// Section 4: "the pages are directly freed to the OS"). A failed
  /// punch degrades: the span parks on the class shard's dirty list —
  /// never the clean reserve, whose spans must read back as zero — and
  /// the punch is retried at the shard's next flush.
  void freeReleasedSpanForClass(int Class, uint32_t PageOff, uint32_t Pages);

  /// freeDirtySpanForClass's large-span counterpart: parks the span on
  /// the large shard's dirty list (exact-length reuse via
  /// allocLargeSpan), flushing that shard on a budget trip.
  void freeDirtyLargeSpan(uint32_t PageOff, uint32_t Pages);

  /// freeReleasedSpanForClass's large-span counterpart; punch failures
  /// park on the large shard.
  void freeReleasedLargeSpan(uint32_t PageOff, uint32_t Pages);

  /// Punches the meshed-away source span's file pages after a
  /// successful mesh of class \p Class. Unlike the freeReleased paths
  /// the span's *virtual* range now aliases the keeper, so a failed
  /// punch only defers (no rebinning, no MADV_DONTNEED — that would
  /// drop the keeper's resident pages through the alias).
  void releaseForMesh(int Class, uint32_t PageOff, uint32_t Pages);

  /// Recycles a class-\p Class virtual span that had been meshed onto
  /// another span: restores its identity mapping (its own file pages
  /// are holes) and hands it to the clean reserve. Degrades by
  /// deferring on the class shard when the remap fails or when the
  /// span's own file pages still await a deferred punch.
  void freeAliasSpan(int Class, uint32_t PageOff, uint32_t Pages);

  /// Punches every dirty span now, shard by shard (one shard lock at a
  /// time), retrying deferred punches and identity remaps first.
  /// Returns pages released. With \p DeferFailures (the pre-fork
  /// flush), dirty spans whose punch fails move to the deferred list
  /// so dirtyPages() reaches zero — the fork child's rebuild replays
  /// only owned spans and requires an empty dirty set.
  size_t flushDirty(bool DeferFailures = false);

  /// flushDirty for the fork-prepare path, where the caller already
  /// holds every arena shard lock plus ArenaLock (lockAllShards):
  /// re-acquiring them here would self-deadlock on the non-recursive
  /// spin locks.
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: runs under locks acquired by a
  /// different function (lockAllShards), a cross-function hold TSA
  /// cannot track.
  size_t flushDirtyAssumeLocked(bool DeferFailures = false)
      MESH_NO_THREAD_SAFETY_ANALYSIS;

  /// Fork-child fixup for the deferred lists: the fresh-file rebuild
  /// restored every identity mapping (pass 2), so pending remaps are
  /// satisfied. Pending punches are deliberately kept: the child's
  /// file already has holes there (ownerless spans are not copied), so
  /// the retried punch trivially succeeds and re-syncs the inherited
  /// committed-page overcount. Runs in the atfork child handler —
  /// allocates nothing, takes no locks.
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: touches Lock-guarded fields with
  /// the locks inherited held from the parent's lockAllShards — a
  /// cross-process hold no analysis can see.
  void resetDeferredAfterFork() MESH_NO_THREAD_SAFETY_ANALYSIS;

  /// Fork quiesce: every arena shard lock in ascending order, then
  /// ArenaLock. Called by GlobalHeap::lockForFork between the heap
  /// shards and the leaf locks, so the child inherits all arena state
  /// mid-critical-section-free.
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: loops over the shard lock array
  /// and leaves every lock held for the caller — both inexpressible in
  /// TSA. LockRank enforces the ascending order at runtime.
  void lockAllShards() MESH_NO_THREAD_SAFETY_ANALYSIS;
  void unlockAllShards() MESH_NO_THREAD_SAFETY_ANALYSIS;

  /// Punch/remap operations that failed and degraded (faults.punch_fallbacks).
  uint64_t punchFallbackCount() const {
    return PunchFallbacks.load(std::memory_order_relaxed);
  }

  /// Zeroes the fallback counter (the faults.reset mallctl leaf).
  void resetPunchFallbacks() {
    PunchFallbacks.store(0, std::memory_order_relaxed);
  }

  /// Page-table maintenance: records \p Owner for all \p Pages pages
  /// starting at \p PageOff (nullptr clears). Takes no arena lock —
  /// the span's structural owner (heap shard lock, or the fresh-span
  /// invisibility argument for allocations) serializes writers, and
  /// readers go through the atomic loads below.
  void setOwner(uint32_t PageOff, uint32_t Pages, MiniHeap *Owner);

  /// Constant-time lookup of the MiniHeap owning \p Ptr, or nullptr.
  MiniHeap *ownerOf(const void *Ptr) const {
    if (!Arena.contains(Ptr))
      return nullptr;
    return PageTable[Arena.pageForPtr(Ptr)].load(std::memory_order_acquire);
  }

  MiniHeap *ownerOfPage(size_t PageOff) const {
    return PageTable[PageOff].load(std::memory_order_acquire);
  }

  /// Pages currently backed by physical memory (the RSS analogue).
  size_t committedPages() const { return Arena.committedPages(); }
  /// Kernel ground truth: file blocks actually allocated to the arena
  /// memfd, in pages (observability / accounting-agreement checks).
  size_t kernelFilePages() const { return Arena.kernelFilePages(); }
  /// Process-wide dirty total (the budget counter).
  size_t dirtyPages() const {
    return TotalDirtyPages.load(std::memory_order_relaxed);
  }
  /// High-water mark of the bump frontier, in pages. Lock-free read:
  /// the footprint sampler and the fork walk consult it without
  /// ArenaLock.
  size_t frontierPages() const {
    return HighWaterPage.load(std::memory_order_acquire);
  }

  /// One shard's share of the dirty total (test / observability;
  /// takes the shard lock).
  size_t dirtyPagesForShard(int Shard) const;

  /// Times shard \p Shard's lock has been acquired. Always compiled
  /// (relaxed counter): ArenaShardTest pins lock disjointness with it
  /// in every build mode, not just Debug.
  uint64_t shardLockAcquisitions(int Shard) const {
    return Shards[Shard].LockAcquisitions.load(std::memory_order_relaxed);
  }

  /// Test hooks pinning the arena lock-ordering discipline (death
  /// tests only; never use in production paths).
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: the death tests violate the rank
  /// and abandon held locks inside EXPECT_DEATH on purpose; these
  /// hooks belong to the runtime checker (LockRank), not TSA.
  void lockShardForTest(int Shard) MESH_NO_THREAD_SAFETY_ANALYSIS {
    lockShard(Shard);
  }
  void unlockShardForTest(int Shard) MESH_NO_THREAD_SAFETY_ANALYSIS {
    unlockShard(Shard);
  }
  void lockArenaForTest() MESH_NO_THREAD_SAFETY_ANALYSIS { lockArena(); }
  void unlockArenaForTest() MESH_NO_THREAD_SAFETY_ANALYSIS {
    unlockArena();
  }

private:
  static constexpr uint32_t kNumLenBins = 6; // lengths 1,2,4,8,16,32
  static int binForPages(uint32_t Pages);

  struct Span {
    uint32_t PageOff;
    uint32_t Pages;
  };

  /// A span parked because a punch or identity remap failed. The span
  /// is in no list while parked; the shard's flush retries the pending
  /// operations and rebins it (clean — both punch and remap done mean
  /// demand-zero) once Reusable.
  struct DeferredSpan {
    uint32_t PageOff;
    uint32_t Pages;
    bool NeedsReset; ///< Identity remap still owed (failed freeAliasSpan).
    bool NeedsPunch; ///< Hole punch still owed (failed release).
    bool Reusable;   ///< False while the virtual span is still a live
                     ///< mesh alias; freeAliasSpan flips it.
  };

  /// One size class's slice of the arena's span state (the large
  /// shard reuses the same shape; its DirtySpans mix lengths and are
  /// matched exactly). All fields except the counter are guarded by
  /// Lock. Cache-line aligned so two shards' locks never false-share.
  struct alignas(64) ArenaShard {
    mutable SpinLock Lock;
    /// Recently used spans whose physical pages are still committed.
    /// Class shards hold a single span length, so any entry serves; a
    /// failed punch can park an off-length span here too, hence the
    /// explicit length per entry.
    InternalVector<Span> DirtySpans MESH_GUARDED_BY(Lock);
    /// Spans with punches/remaps still owed (see DeferredSpan).
    InternalVector<DeferredSpan> Deferred MESH_GUARDED_BY(Lock);
    /// Pages across DirtySpans (this shard's share of the budget).
    size_t DirtyPages MESH_GUARDED_BY(Lock) = 0;
    mutable std::atomic<uint64_t> LockAcquisitions{0};
  };

  void lockShard(int Shard) const MESH_ACQUIRE(Shards[Shard].Lock);
  void unlockShard(int Shard) const MESH_RELEASE(Shards[Shard].Lock);
  void lockArena() const MESH_ACQUIRE(ArenaLock);
  void unlockArena() const MESH_RELEASE(ArenaLock);

  /// Clean-reserve / frontier allocation (the recycling-miss path).
  /// Takes ArenaLock, so callers must not already hold it.
  uint32_t allocCleanSpan(uint32_t Pages, bool *IsClean)
      MESH_EXCLUDES(ArenaLock);

  /// Files \p PageOff into the clean bins (pow2) or odd-span list.
  void binCleanLocked(uint32_t PageOff, uint32_t Pages)
      MESH_REQUIRES(ArenaLock);

  /// Pops a dirty span of exactly \p Pages pages, or returns
  /// kInvalidSpanOff.
  uint32_t popDirtyLocked(ArenaShard &S, uint32_t Pages)
      MESH_REQUIRES(S.Lock);

  /// Parks \p PageOff on \p S's dirty list; returns the new
  /// process-wide dirty total (budget check).
  size_t pushDirtyLocked(ArenaShard &S, uint32_t PageOff, uint32_t Pages)
      MESH_REQUIRES(S.Lock);

  /// The per-shard flush: deferred retries, then the dirty sweep.
  /// Caller holds \p S.Lock; \p ArenaLocked says whether the caller
  /// already holds ArenaLock (fork path) or this must take it per
  /// rebin — conditional locking the analysis cannot model, hence
  /// MESH_NO_THREAD_SAFETY_ANALYSIS on top of the REQUIRES contract
  /// (which call sites still check).
  size_t flushShardLocked(ArenaShard &S, bool DeferFailures,
                          bool ArenaLocked)
      MESH_REQUIRES(S.Lock) MESH_NO_THREAD_SAFETY_ANALYSIS;

  /// Arena.release with the hole-punch syscall timed into the
  /// telemetry punch_syscall histogram.
  bool timedRelease(uint32_t PageOff, uint32_t Pages);

  /// Counts one punch/remap degradation (PunchFallbacks + the
  /// kFaultDegrade flight-recorder event).
  void notePunchFallback();

  MemfdArena Arena;
  std::atomic<MiniHeap *> *PageTable = nullptr;
  size_t PageTableBytes = 0;

  ArenaShard Shards[kNumArenaShards];

  /// The shared tail of the span hierarchy: clean reserve + frontier.
  /// (The frontier high-water itself is the atomic below — sampled
  /// lock-free by the footprint walk — but it only advances under
  /// ArenaLock.)
  mutable SpinLock ArenaLock;
  InternalVector<uint32_t> CleanBins[kNumLenBins] MESH_GUARDED_BY(ArenaLock);
  InternalVector<Span> OddCleanSpans MESH_GUARDED_BY(ArenaLock);

  size_t MaxDirtyBytes;
  std::atomic<size_t> TotalDirtyPages{0};
  std::atomic<size_t> HighWaterPage{0};
  std::atomic<uint64_t> PunchFallbacks{0};
};

} // namespace mesh

#endif // MESH_CORE_MESHABLEARENA_H
