//===- MeshableArena.h - Span allocation over the arena ---------*- C++ -*-===//
///
/// \file
/// The meshable arena from paper Section 4.4.1: the global heap's
/// source of spans. It keeps two sets of bins for same-length spans —
/// one for demand-zeroed ("clean") spans whose file pages are holes,
/// and one for recently used ("dirty") spans that still hold physical
/// pages — plus the mapping from arena page offsets to owning MiniHeap
/// pointers used for constant-time pointer lookup (Section 4.4.4).
///
/// Used pages are not returned to the OS immediately (reclamation is
/// expensive and reuse is likely); only after kMaxDirtyBytes of dirty
/// pages accumulate, or when meshing releases a span, does the arena
/// punch holes in the backing file.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_MESHABLEARENA_H
#define MESH_CORE_MESHABLEARENA_H

#include "arena/MemfdArena.h"
#include "support/Common.h"
#include "support/InternalVector.h"

#include <atomic>
#include <cstdint>

namespace mesh {

class MiniHeap;

/// Span allocator and page-ownership table. Not internally
/// synchronized: every mutating call happens under the global heap
/// lock. Page-table reads are atomic so the free fast path may consult
/// them without the lock.
class MeshableArena {
public:
  explicit MeshableArena(size_t ArenaBytes, size_t MaxDirtyBytes);
  ~MeshableArena();

  MeshableArena(const MeshableArena &) = delete;
  MeshableArena &operator=(const MeshableArena &) = delete;

  MemfdArena &vm() { return Arena; }
  char *arenaBase() const { return Arena.base(); }
  bool contains(const void *Ptr) const { return Arena.contains(Ptr); }

  /// Allocates a span of \p Pages pages. Sets \p IsClean true when the
  /// span is known demand-zero (fresh or previously punched); dirty
  /// spans may contain stale bytes and callers must not assume zero.
  uint32_t allocSpan(uint32_t Pages, bool *IsClean);

  /// Returns a span whose physical pages are still live to the dirty
  /// bins; flushes dirty pages to the OS past the configured budget.
  void freeDirtySpan(uint32_t PageOff, uint32_t Pages);

  /// Punches the span's pages immediately (used for large objects,
  /// paper Section 4: "the pages are directly freed to the OS").
  void freeReleasedSpan(uint32_t PageOff, uint32_t Pages);

  /// Recycles a virtual span that had been meshed onto another span:
  /// restores its identity mapping (its own file pages are holes) and
  /// makes it available as a clean span.
  void freeAliasSpan(uint32_t PageOff, uint32_t Pages);

  /// Punches every dirty span now. Returns pages released.
  size_t flushDirty();

  /// Page-table maintenance: records \p Owner for all \p Pages pages
  /// starting at \p PageOff (nullptr clears).
  void setOwner(uint32_t PageOff, uint32_t Pages, MiniHeap *Owner);

  /// Constant-time lookup of the MiniHeap owning \p Ptr, or nullptr.
  MiniHeap *ownerOf(const void *Ptr) const {
    if (!Arena.contains(Ptr))
      return nullptr;
    return PageTable[Arena.pageForPtr(Ptr)].load(std::memory_order_acquire);
  }

  MiniHeap *ownerOfPage(size_t PageOff) const {
    return PageTable[PageOff].load(std::memory_order_acquire);
  }

  /// Pages currently backed by physical memory (the RSS analogue).
  size_t committedPages() const { return Arena.committedPages(); }
  /// Kernel ground truth: file blocks actually allocated to the arena
  /// memfd, in pages (observability / accounting-agreement checks).
  size_t kernelFilePages() const { return Arena.kernelFilePages(); }
  size_t dirtyPages() const { return DirtyPageCount; }
  /// High-water mark of the bump frontier, in pages.
  size_t frontierPages() const { return HighWaterPage; }

private:
  static constexpr uint32_t kNumLenBins = 6; // lengths 1,2,4,8,16,32
  static int binForPages(uint32_t Pages);

  MemfdArena Arena;
  std::atomic<MiniHeap *> *PageTable = nullptr;
  size_t PageTableBytes = 0;

  struct Span {
    uint32_t PageOff;
    uint32_t Pages;
  };

  InternalVector<uint32_t> CleanBins[kNumLenBins];
  InternalVector<uint32_t> DirtyBins[kNumLenBins];
  InternalVector<Span> OddCleanSpans;

  size_t MaxDirtyBytes;
  size_t DirtyPageCount = 0;
  size_t HighWaterPage = 0;
};

} // namespace mesh

#endif // MESH_CORE_MESHABLEARENA_H
