//===- MeshableArena.h - Span allocation over the arena ---------*- C++ -*-===//
///
/// \file
/// The meshable arena from paper Section 4.4.1: the global heap's
/// source of spans. It keeps two sets of bins for same-length spans —
/// one for demand-zeroed ("clean") spans whose file pages are holes,
/// and one for recently used ("dirty") spans that still hold physical
/// pages — plus the mapping from arena page offsets to owning MiniHeap
/// pointers used for constant-time pointer lookup (Section 4.4.4).
///
/// Used pages are not returned to the OS immediately (reclamation is
/// expensive and reuse is likely); only after kMaxDirtyBytes of dirty
/// pages accumulate, or when meshing releases a span, does the arena
/// punch holes in the backing file.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_MESHABLEARENA_H
#define MESH_CORE_MESHABLEARENA_H

#include "arena/MemfdArena.h"
#include "support/Common.h"
#include "support/InternalVector.h"

#include <atomic>
#include <cstdint>

namespace mesh {

class MiniHeap;

/// Span allocator and page-ownership table. Not internally
/// synchronized: every mutating call happens under the global heap
/// lock. Page-table reads are atomic so the free fast path may consult
/// them without the lock.
class MeshableArena {
public:
  explicit MeshableArena(size_t ArenaBytes, size_t MaxDirtyBytes);
  ~MeshableArena();

  MeshableArena(const MeshableArena &) = delete;
  MeshableArena &operator=(const MeshableArena &) = delete;

  MemfdArena &vm() { return Arena; }
  char *arenaBase() const { return Arena.base(); }
  bool contains(const void *Ptr) const { return Arena.contains(Ptr); }

  /// Sentinel returned by allocSpan when the arena cannot produce a
  /// span (frontier exhausted, or page commit refused under fault
  /// injection). Callers translate it into nullptr/ENOMEM.
  static constexpr uint32_t kInvalidSpanOff = ~0u;

  /// Allocates a span of \p Pages pages, or kInvalidSpanOff on
  /// resource exhaustion (nothing is leaked: a span whose commit fails
  /// stays in its bin). Sets \p IsClean true when the span is known
  /// demand-zero (fresh or previously punched); dirty spans may
  /// contain stale bytes and callers must not assume zero.
  uint32_t allocSpan(uint32_t Pages, bool *IsClean);

  /// Returns a span whose physical pages are still live to the dirty
  /// bins; flushes dirty pages to the OS past the configured budget.
  void freeDirtySpan(uint32_t PageOff, uint32_t Pages);

  /// Punches the span's pages immediately (used for large objects,
  /// paper Section 4: "the pages are directly freed to the OS"). A
  /// failed punch degrades: the span parks in the dirty bins (pow2
  /// lengths) or the deferred list (odd lengths) — never the clean
  /// bins, whose spans must read back as zero — and the punch is
  /// retried at the next flushDirty.
  void freeReleasedSpan(uint32_t PageOff, uint32_t Pages);

  /// Punches the meshed-away source span's file pages after a
  /// successful mesh. Unlike freeReleasedSpan the span's *virtual*
  /// range now aliases the keeper, so a failed punch only defers (no
  /// rebinning, no MADV_DONTNEED — that would drop the keeper's
  /// resident pages through the alias).
  void releaseForMesh(uint32_t PageOff, uint32_t Pages);

  /// Recycles a virtual span that had been meshed onto another span:
  /// restores its identity mapping (its own file pages are holes) and
  /// makes it available as a clean span. Degrades by deferring when
  /// the remap fails or when the span's own file pages still await a
  /// deferred punch.
  void freeAliasSpan(uint32_t PageOff, uint32_t Pages);

  /// Punches every dirty span now, retrying any deferred punches and
  /// identity remaps first. Returns pages released. With
  /// \p DeferFailures (the pre-fork flush), dirty spans whose punch
  /// fails move to the deferred list so dirtyPages() reaches zero —
  /// the fork child's rebuild replays only owned spans and requires an
  /// empty dirty set.
  size_t flushDirty(bool DeferFailures = false);

  /// Fork-child fixup for the deferred list: the fresh-file rebuild
  /// restored every identity mapping (pass 2), so pending remaps are
  /// satisfied. Pending punches are deliberately kept: the child's
  /// file already has holes there (ownerless spans are not copied), so
  /// the retried punch trivially succeeds and re-syncs the inherited
  /// committed-page overcount. Runs in the atfork child handler —
  /// allocates nothing, takes no locks.
  void resetDeferredAfterFork();

  /// Punch/remap operations that failed and degraded (faults.punch_fallbacks).
  uint64_t punchFallbackCount() const {
    return PunchFallbacks.load(std::memory_order_relaxed);
  }

  /// Page-table maintenance: records \p Owner for all \p Pages pages
  /// starting at \p PageOff (nullptr clears).
  void setOwner(uint32_t PageOff, uint32_t Pages, MiniHeap *Owner);

  /// Constant-time lookup of the MiniHeap owning \p Ptr, or nullptr.
  MiniHeap *ownerOf(const void *Ptr) const {
    if (!Arena.contains(Ptr))
      return nullptr;
    return PageTable[Arena.pageForPtr(Ptr)].load(std::memory_order_acquire);
  }

  MiniHeap *ownerOfPage(size_t PageOff) const {
    return PageTable[PageOff].load(std::memory_order_acquire);
  }

  /// Pages currently backed by physical memory (the RSS analogue).
  size_t committedPages() const { return Arena.committedPages(); }
  /// Kernel ground truth: file blocks actually allocated to the arena
  /// memfd, in pages (observability / accounting-agreement checks).
  size_t kernelFilePages() const { return Arena.kernelFilePages(); }
  size_t dirtyPages() const { return DirtyPageCount; }
  /// High-water mark of the bump frontier, in pages.
  size_t frontierPages() const { return HighWaterPage; }

private:
  static constexpr uint32_t kNumLenBins = 6; // lengths 1,2,4,8,16,32
  static int binForPages(uint32_t Pages);

  /// Files \p PageOff into the clean bins (pow2) or odd-span list.
  void binClean(uint32_t PageOff, uint32_t Pages);

  MemfdArena Arena;
  std::atomic<MiniHeap *> *PageTable = nullptr;
  size_t PageTableBytes = 0;

  struct Span {
    uint32_t PageOff;
    uint32_t Pages;
  };

  /// A span parked because a punch or identity remap failed. The span
  /// is in no bin while parked; flushDirty retries the pending
  /// operations and rebins it (clean — both punch and remap done mean
  /// demand-zero) once Reusable.
  struct DeferredSpan {
    uint32_t PageOff;
    uint32_t Pages;
    bool NeedsReset; ///< Identity remap still owed (failed freeAliasSpan).
    bool NeedsPunch; ///< Hole punch still owed (failed release).
    bool Reusable;   ///< False while the virtual span is still a live
                     ///< mesh alias; freeAliasSpan flips it.
  };

  InternalVector<uint32_t> CleanBins[kNumLenBins];
  InternalVector<uint32_t> DirtyBins[kNumLenBins];
  InternalVector<Span> OddCleanSpans;
  InternalVector<DeferredSpan> DeferredSpans;

  size_t MaxDirtyBytes;
  size_t DirtyPageCount = 0;
  size_t HighWaterPage = 0;
  std::atomic<uint64_t> PunchFallbacks{0};
};

} // namespace mesh

#endif // MESH_CORE_MESHABLEARENA_H
