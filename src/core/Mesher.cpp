//===- Mesher.cpp - SplitMesher pair finding --------------------------------===//

#include "core/Mesher.h"

namespace mesh {

bool canMeshPair(const MiniHeap *A, const MiniHeap *B) {
  if (A == B || A == nullptr || B == nullptr)
    return false;
  if (A->sizeClass() != B->sizeClass())
    return false;
  if (!A->isMeshingCandidate() || !B->isMeshingCandidate())
    return false;
  if (A->spans().size() + B->spans().size() > kMaxMeshes)
    return false;
  return A->bitmap().isMeshableWith(B->bitmap());
}

void splitMesher(InternalVector<MiniHeap *> &Candidates, uint32_t T,
                 Rng &Random, InternalVector<MeshPair> &Pairs,
                 uint64_t *ProbeCount) {
  uint64_t Probes = 0;
  const size_t N = Candidates.size();
  if (N < 2) {
    if (ProbeCount != nullptr)
      *ProbeCount = 0;
    return;
  }

  shuffleVectorContents(Candidates, Random);

  // Split into halves Sl = [0, Half), Sr = [Half, N). Meshed spans are
  // nulled out and compacted between rounds; the paper's pseudocode
  // removes them from the lists directly.
  const size_t Half = N / 2;
  InternalVector<MiniHeap *> Left(Candidates.begin(),
                                  Candidates.begin() + Half);
  InternalVector<MiniHeap *> Right(Candidates.begin() + Half,
                                   Candidates.end());

  auto Compact = [](InternalVector<MiniHeap *> &V) {
    size_t Out = 0;
    for (size_t In = 0; In < V.size(); ++In)
      if (V[In] != nullptr)
        V[Out++] = V[In];
    V.resize(Out);
  };

  for (uint32_t Round = 0; Round < T; ++Round) {
    Compact(Left);
    Compact(Right);
    if (Left.empty() || Right.empty())
      break;
    const size_t Len = Left.size();
    for (size_t J = 0; J < Len; ++J) {
      if (Left[J] == nullptr)
        continue;
      const size_t K = (J + Round) % Right.size();
      if (Right[K] == nullptr)
        continue;
      ++Probes;
      if (!canMeshPair(Left[J], Right[K]))
        continue;
      Pairs.push_back(MeshPair{Left[J], Right[K]});
      Left[J] = nullptr;
      Right[K] = nullptr;
    }
  }

  if (ProbeCount != nullptr)
    *ProbeCount = Probes;
}

} // namespace mesh
