//===- Mesher.h - SplitMesher pair finding ----------------------*- C++ -*-===//
///
/// \file
/// The SplitMesher algorithm (paper Figure 2 / Section 3.3): shuffle
/// the candidate spans, split the list into halves, and probe pairs
/// between the halves for meshability, rotating the right half by one
/// position per round for up to t rounds. Finds, with high probability,
/// a matching within a factor ~1/2 of optimal in O(n/q) time
/// (Lemma 5.3), without ever materializing the meshing graph.
///
/// Pair *finding* is pure (no heap mutation), so it is exposed here as
/// a standalone function testable against the exact matching algorithms
/// in src/analysis. Pair *execution* lives in GlobalHeap: a mesh pass
/// quiesces lock-free frees once, then visits the per-class shards in
/// ascending index order, running SplitMesher and executing its pairs
/// under one shard lock at a time (candidates never span classes, so
/// no two shard locks are ever held together).
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_MESHER_H
#define MESH_CORE_MESHER_H

#include "core/MiniHeap.h"
#include "support/InternalVector.h"
#include "support/Rng.h"

#include <cstdint>
#include <utility>

namespace mesh {

using MeshPair = std::pair<MiniHeap *, MiniHeap *>;

/// True iff the two MiniHeaps can be meshed right now: same size class,
/// disjoint allocation bitmaps (Definition 5.1), both meshing
/// candidates, and their combined virtual-span count within kMaxMeshes.
bool canMeshPair(const MiniHeap *A, const MiniHeap *B);

/// Runs SplitMesher over \p Candidates with probe budget \p T,
/// appending disjoint meshable pairs to \p Pairs. \p Candidates is
/// shuffled in place. If \p ProbeCount is non-null it receives the
/// number of meshability tests performed (bounded by T * n/2).
void splitMesher(InternalVector<MiniHeap *> &Candidates, uint32_t T,
                 Rng &Random, InternalVector<MeshPair> &Pairs,
                 uint64_t *ProbeCount = nullptr);

/// Fisher-Yates shuffle of an InternalVector (exposed for reuse).
template <typename T>
void shuffleVectorContents(InternalVector<T> &V, Rng &Random) {
  for (size_t I = V.size(); I > 1; --I) {
    const size_t J = Random.inRange(0, static_cast<uint32_t>(I - 1));
    std::swap(V[I - 1], V[J]);
  }
}

} // namespace mesh

#endif // MESH_CORE_MESHER_H
