//===- MiniHeap.cpp - Span metadata ----------------------------------------===//

#include "core/MiniHeap.h"

namespace mesh {

// MiniHeap is header-only; this file anchors the translation unit and
// hosts compile-time checks on its footprint. MiniHeaps are allocated
// from the internal heap per live span, so size matters.
static_assert(sizeof(MiniHeap) <= 128,
              "MiniHeap metadata should stay within two cache lines");

} // namespace mesh
