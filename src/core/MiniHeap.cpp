//===- MiniHeap.cpp - Span metadata ----------------------------------------===//

#include "core/MiniHeap.h"

namespace mesh {

// MiniHeap is header-only; this file anchors the translation unit and
// hosts compile-time checks on its footprint. MiniHeaps are allocated
// from the internal heap per live span, so size matters. The lock-free
// free path added three words (owner tag, pending-free counter + stash
// link) and pushed it past two cache lines; three lines is still under
// 0.5% of the smallest (16 KiB) span it describes.
static_assert(sizeof(MiniHeap) <= 192,
              "MiniHeap metadata should stay within three cache lines");

} // namespace mesh
