//===- MiniHeap.h - Span metadata -------------------------------*- C++ -*-===//
///
/// \file
/// MiniHeaps (paper Section 4.1) track occupancy and metadata for
/// spans. A MiniHeap owns one *physical* span (a run of contiguous
/// pages in the arena file) and one or more *virtual* spans that map to
/// it — exactly one before any meshing, more afterwards. It records the
/// object size, the span length, the atomic allocation bitmap, and
/// whether the MiniHeap is currently attached to a thread-local heap.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_MINIHEAP_H
#define MESH_CORE_MINIHEAP_H

#include "support/Bitmap.h"
#include "support/Common.h"
#include "support/MathUtils.h"
#include "support/StaticVector.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace mesh {

class ThreadLocalHeap;

/// Metadata for one span (or one large allocation).
///
/// Life cycle: created by the global heap when a fresh span is carved
/// out of the arena; repeatedly attached to thread-local heaps and
/// detached back to the global heap's occupancy bins; possibly merged
/// into another MiniHeap by meshing (the victim's MiniHeap dies, its
/// virtual spans transfer to the keeper); destroyed when its last
/// object is freed while detached.
class MiniHeap {
public:
  /// Size-class span constructor.
  MiniHeap(uint32_t SpanPageOff, uint32_t SpanPages, uint32_t ObjSize,
           uint32_t ObjCount, int8_t SizeClass, bool Meshable)
      : Bits(ObjCount), ObjectSize(ObjSize), SpanPageCount(SpanPages),
        ObjectCount(ObjCount), SizeClassIndex(SizeClass),
        ObjectShift(isPowerOfTwo(ObjSize)
                        ? static_cast<int8_t>(log2Floor(ObjSize))
                        : int8_t{-1}),
        MeshableFlag(Meshable) {
    VirtualSpans.push_back(SpanPageOff);
  }

  /// Large-object ("singleton MiniHeap", Section 4.4.2) constructor:
  /// one object covering the whole span. \p RequestedBytes is the
  /// original malloc argument, kept for realloc/usable-size semantics.
  MiniHeap(uint32_t SpanPageOff, uint32_t SpanPages, size_t RequestedBytes)
      : Bits(1), ObjectSize(pagesToBytes(SpanPages)),
        SpanPageCount(SpanPages), ObjectCount(1), SizeClassIndex(-1),
        ObjectShift(isPowerOfTwo(ObjectSize)
                        ? static_cast<int8_t>(log2Floor(ObjectSize))
                        : int8_t{-1}),
        MeshableFlag(false) {
    (void)RequestedBytes;
    VirtualSpans.push_back(SpanPageOff);
    Bits.tryToSet(0);
  }

  MiniHeap(const MiniHeap &) = delete;
  MiniHeap &operator=(const MiniHeap &) = delete;

  Bitmap &bitmap() { return Bits; }
  const Bitmap &bitmap() const { return Bits; }

  bool isLargeAlloc() const { return SizeClassIndex < 0; }
  int sizeClass() const { return SizeClassIndex; }
  size_t objectSize() const { return ObjectSize; }
  uint32_t objectCount() const { return ObjectCount; }
  uint32_t spanPages() const { return SpanPageCount; }
  size_t spanBytes() const { return pagesToBytes(SpanPageCount); }

  /// Page offsets (from the arena base) of every virtual span mapped to
  /// this MiniHeap's physical span. Index 0 is the physical span's own
  /// identity-mapped offset.
  const StaticVector<uint32_t, kMaxMeshes> &spans() const {
    return VirtualSpans;
  }

  uint32_t physicalSpanOffset() const { return VirtualSpans[0]; }

  /// Transfers all of \p Victim's virtual spans to this MiniHeap
  /// (called by the mesher after consolidating objects).
  void takeSpansFrom(MiniHeap &Victim) {
    for (uint32_t Off : Victim.VirtualSpans) {
      assert(!VirtualSpans.full() && "kMaxMeshes exceeded during mesh");
      VirtualSpans.push_back(Off);
    }
    Victim.VirtualSpans.clear();
  }

  bool isAttached() const {
    return Attached.load(std::memory_order_acquire);
  }
  void setAttached(bool Value) {
    Attached.store(Value, std::memory_order_release);
  }

  /// Fast-path ownership tag: the thread-local heap this MiniHeap's
  /// shuffle vector currently lives in, or nullptr. Written only by the
  /// owning thread (set after attach, cleared before detach), so a
  /// thread comparing the tag against itself gets a coherent answer in
  /// O(1) — the page-table free dispatch relies on this (Section 4.3).
  /// Distinct from the Attached lifecycle bit, which is flipped under
  /// the global lock and keeps a just-allocated span out of meshing
  /// before its owner publishes the tag.
  ThreadLocalHeap *attachedOwner() const {
    return Owner.load(std::memory_order_acquire);
  }
  void setAttachedOwner(ThreadLocalHeap *Heap) {
    Owner.store(Heap, std::memory_order_release);
  }

  /// Lock-free remote-free bookkeeping (Section 4.4.4): a remote free
  /// clears the bitmap bit without any lock, then bumps this counter.
  /// The first increment (0 -> 1) tells the caller to push this
  /// MiniHeap onto its size class's shard stash; the shard-lock-held
  /// drain exchanges the counter back to zero and re-bins or destroys.
  uint32_t notePendingFree() {
    return PendingFrees.fetch_add(1, std::memory_order_acq_rel);
  }
  uint32_t takePendingFrees() {
    return PendingFrees.exchange(0, std::memory_order_acq_rel);
  }
  uint32_t pendingFrees() const {
    return PendingFrees.load(std::memory_order_acquire);
  }

  /// Intrusive link for the owning shard's pending-free stash (an MPSC
  /// stack; a MiniHeap lives in exactly one shard, so it is in at most
  /// one stash generation at a time).
  MiniHeap *nextPending() const {
    return NextPending.load(std::memory_order_acquire);
  }
  void setNextPending(MiniHeap *Next) {
    NextPending.store(Next, std::memory_order_release);
  }

  /// A dead MiniHeap has released its spans and page-table entries but
  /// still sits in its shard's pending stash; the drain performs the
  /// final delete when it pops it (see GlobalHeap::destroyMiniHeapLocked).
  bool isDead() const { return Dead.load(std::memory_order_acquire); }
  void markDead() { Dead.store(true, std::memory_order_release); }

  uint32_t inUseCount() const { return Bits.inUseCount(); }
  bool isEmpty() const { return inUseCount() == 0; }
  bool isFull() const { return inUseCount() == ObjectCount; }

  /// Fraction of objects live, in [0, 1].
  double occupancy() const {
    return static_cast<double>(inUseCount()) /
           static_cast<double>(ObjectCount);
  }

  /// True iff this MiniHeap may participate in meshing right now:
  /// detached, a meshable size class, partially full, and with room to
  /// absorb at least one more virtual span.
  bool isMeshingCandidate() const {
    if (isAttached() || !MeshableFlag)
      return false;
    if (VirtualSpans.size() >= kMaxMeshes)
      return false;
    const uint32_t InUse = inUseCount();
    return InUse > 0 && InUse < ObjectCount;
  }

  bool isMeshable() const { return MeshableFlag; }

  /// True iff \p Ptr falls inside any of this MiniHeap's virtual spans.
  bool contains(const void *Ptr, const char *ArenaBase) const {
    return spanIndexOf(Ptr, ArenaBase) >= 0;
  }

  /// Object index of \p Ptr, which must lie in one of the virtual
  /// spans. \p Ptr need not be object-aligned; use isAligned() to
  /// detect interior-pointer frees.
  uint32_t offsetOf(const void *Ptr, const char *ArenaBase) const {
    const int Span = spanIndexOf(Ptr, ArenaBase);
    assert(Span >= 0 && "pointer not owned by this MiniHeap");
    const uintptr_t SpanStart = reinterpret_cast<uintptr_t>(
        ArenaBase + pagesToBytes(VirtualSpans[Span]));
    return static_cast<uint32_t>(
        (reinterpret_cast<uintptr_t>(Ptr) - SpanStart) / ObjectSize);
  }

  /// Single-walk combination of isAligned + offsetOf for the free hot
  /// path: true iff \p Ptr is exactly the start of an object slot, in
  /// which case \p Off receives its object index. Power-of-two classes
  /// (11 of 24, including every size the paper's workloads stress)
  /// take the shift path instead of an integer division.
  bool offsetOfAligned(const void *Ptr, const char *ArenaBase,
                       uint32_t *Off) const {
    const int Span = spanIndexOf(Ptr, ArenaBase);
    if (Span < 0)
      return false;
    const uintptr_t SpanStart = reinterpret_cast<uintptr_t>(
        ArenaBase + pagesToBytes(VirtualSpans[Span]));
    const uintptr_t Delta = reinterpret_cast<uintptr_t>(Ptr) - SpanStart;
    if (ObjectShift >= 0) {
      if ((Delta & (ObjectSize - 1)) != 0)
        return false;
      *Off = static_cast<uint32_t>(Delta >> ObjectShift);
      return true;
    }
    if (Delta % ObjectSize != 0)
      return false;
    *Off = static_cast<uint32_t>(Delta / ObjectSize);
    return true;
  }

  /// True iff \p Ptr is exactly the start of an object slot.
  bool isAligned(const void *Ptr, const char *ArenaBase) const {
    const int Span = spanIndexOf(Ptr, ArenaBase);
    if (Span < 0)
      return false;
    const uintptr_t SpanStart = reinterpret_cast<uintptr_t>(
        ArenaBase + pagesToBytes(VirtualSpans[Span]));
    return (reinterpret_cast<uintptr_t>(Ptr) - SpanStart) % ObjectSize == 0;
  }

  /// Address of object \p Offset through the physical (index-0) span.
  char *ptrForOffset(uint32_t Offset, char *ArenaBase) const {
    assert(Offset < ObjectCount && "object offset out of range");
    return ArenaBase + pagesToBytes(VirtualSpans[0]) + Offset * ObjectSize;
  }

  /// Occupancy-bin bookkeeping, relative to the owning GlobalHeap
  /// shard: BinIdx indexes that shard's four occupancy bins and BinSlot
  /// the position inside the bin vector. Guarded by the shard's lock —
  /// a MiniHeap never changes shards (its size class is immutable), so
  /// the linkage never needs cross-shard coordination.
  int8_t binIndex() const { return BinIdx; }
  uint32_t binSlot() const { return BinSlot; }
  void setBin(int8_t Bin, uint32_t Slot) {
    BinIdx = Bin;
    BinSlot = Slot;
  }
  void clearBin() { BinIdx = -1; }
  bool isInBin() const { return BinIdx >= 0; }

private:
  int spanIndexOf(const void *Ptr, const char *ArenaBase) const {
    const auto P = reinterpret_cast<uintptr_t>(Ptr);
    for (uint32_t I = 0; I < VirtualSpans.size(); ++I) {
      const auto Start = reinterpret_cast<uintptr_t>(
          ArenaBase + pagesToBytes(VirtualSpans[I]));
      if (P >= Start && P < Start + spanBytes())
        return static_cast<int>(I);
    }
    return -1;
  }

  Bitmap Bits;
  StaticVector<uint32_t, kMaxMeshes> VirtualSpans;
  size_t ObjectSize;
  uint32_t SpanPageCount;
  uint32_t ObjectCount;
  int8_t SizeClassIndex;
  /// log2(ObjectSize) when it is a power of two, else -1 (the free
  /// path's offset computation shifts instead of dividing).
  int8_t ObjectShift;
  bool MeshableFlag;
  std::atomic<bool> Attached{false};
  std::atomic<ThreadLocalHeap *> Owner{nullptr};
  std::atomic<uint32_t> PendingFrees{0};
  std::atomic<MiniHeap *> NextPending{nullptr};
  std::atomic<bool> Dead{false};
  int8_t BinIdx = -1;
  uint32_t BinSlot = 0;
};

} // namespace mesh

#endif // MESH_CORE_MINIHEAP_H
