//===- Options.h - Runtime configuration ------------------------*- C++ -*-===//
///
/// \file
/// The tunables the paper exposes (meshing rate limit, the SplitMesher
/// probe budget t) plus the ablation switches its evaluation sweeps
/// (meshing on/off, randomization on/off, Section 6.3).
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_OPTIONS_H
#define MESH_CORE_OPTIONS_H

#include "support/Common.h"

#include <cstddef>
#include <cstdint>

namespace mesh {

struct MeshOptions {
  /// Master switch for meshing ("Mesh (no meshing)" ablation when off).
  bool MeshingEnabled = true;

  /// Randomized allocation via shuffle vectors ("Mesh (no rand)"
  /// ablation when off: allocation degrades to bump-pointer order and
  /// frees keep deterministic order).
  bool Randomized = true;

  /// mprotect + SIGSEGV write barrier during meshing (Section 4.5.2).
  /// Required for concurrent writers; may be disabled for
  /// single-threaded measurement runs.
  bool BarrierEnabled = true;

  /// SplitMesher probe budget t (Section 3.3; default 64).
  uint32_t MeshProbes = kDefaultMeshProbes;

  /// Minimum milliseconds between meshing passes (Section 4.5; default
  /// 100 ms). Zero means every eligible global free may mesh.
  uint64_t MeshPeriodMs = kDefaultMeshPeriodMs;

  /// If the previous pass freed less than this many bytes, the timer is
  /// not re-armed until another allocation is freed through the global
  /// heap (Section 4.5; default 1 MB).
  size_t MeshEffectiveBytes = 1024 * 1024;

  /// Upper bound on pairs meshed in one pass (0 = unlimited). Bounds
  /// the stop-the-allocator pause of a single pass: leftover meshable
  /// pairs are simply found again by the next rate-limited pass. The
  /// paper reports a 22 ms longest pause on Redis-sized heaps, which
  /// corresponds to a bounded amount of copying per pass.
  uint32_t MaxMeshesPerPass = 256;

  /// Runs meshing on a dedicated background thread (paper Section 4.5:
  /// meshing proceeds concurrently with the application). When set, the
  /// refill-path trigger becomes a cheap poke of that thread and a
  /// pressure monitor compacts idle-but-fragmented heaps; when clear,
  /// every pass runs synchronously on the triggering thread (the
  /// pre-background behavior, kept for single-threaded ablations).
  bool BackgroundMeshing = false;

  /// Background mesher wake interval: how often the pressure monitor
  /// samples the heap when no allocation has poked the thread.
  uint64_t BackgroundWakeMs = 100;

  /// Pressure trigger: a timer wake starts a pass when at least this
  /// percentage of committed bytes is not backing live objects
  /// ((committed - in_use) / committed). 0 disables pressure-triggered
  /// passes (the thread then only serves allocation pokes).
  uint32_t PressureFragThresholdPct = 30;

  /// Pressure passes are suppressed below this committed-bytes floor:
  /// compacting a tiny heap is never worth a wakeup.
  size_t PressureMinCommittedBytes = 8 * 1024 * 1024;

  /// Seed for all of this heap's RNGs; fixed for reproducibility.
  uint64_t Seed = 0x5EEDF00D;

  /// Virtual address reservation for the arena.
  size_t ArenaBytes = size_t{16} << 30;

  /// Dirty-page budget before pages are returned to the OS
  /// (Section 4.4.1; default 64 MB).
  size_t MaxDirtyBytes = kMaxDirtyBytes;
};

} // namespace mesh

#endif // MESH_CORE_OPTIONS_H
