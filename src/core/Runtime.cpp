//===- Runtime.cpp - Per-heap runtime facade --------------------------------===//

#include "core/Runtime.h"

#include "runtime/BackgroundMesher.h"
#include "runtime/PressureMonitor.h"
#include "support/Epoch.h"
#include "support/InternalHeap.h"
#include "support/Log.h"
#include "support/MathUtils.h"
#include "support/Sys.h"
#include "support/Telemetry.h"

#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

namespace mesh {

namespace detail {
SpinLock ForkRegistryLock;
} // namespace detail

/// Process-wide fork protocol. pthread_atfork handlers can never be
/// removed, so one static set is installed at first Runtime creation
/// and walks a registry of live runtimes. At fork():
///
///   prepare  — per runtime: join the background mesher (so the fork
///              happens with no allocator-owned thread at all), then
///              acquire every heap lock in rank order (MeshLock ->
///              shards ascending -> ArenaLock -> EpochSyncLock); last,
///              the process-wide InternalHeap lock (it ranks below
///              ArenaLock: refills allocate metadata under it). The
///              child therefore inherits every lock in the released
///              state with no critical section torn mid-way.
///   parent   — wait on the copy fence (below), then release in
///              reverse and restart the meshers.
///   child    — FIRST rebuild every runtime's arena on a private memfd
///              (GlobalHeap::reinitializeArenaAfterFork, the
///              copy-to-fresh-memfd protocol): the child inherits
///              MAP_SHARED arena data pages under COW-private
///              allocator metadata, so without this both sides hand
///              out the same slots and corrupt each other. Then signal
///              the copy fence, clear epoch reader counts orphaned by
///              parent threads that do not exist here, and release.
///              The mesher is NOT restarted here: pthread_create is
///              not async-signal-safe in the forked child of a
///              multithreaded process, so the child handler only
///              re-initializes the mesher's wake mutex/condvar (a
///              poking parent thread may have owned the mutex at the
///              fork instant) and defers the thread spawn to the first
///              post-fork poke — which is also why the arena rebuild
///              must come first: by the time any deferred restart (or
///              any allocation at all) can run in the child, the
///              shared file is already out of the picture.
///
/// The copy fence: prepare() opens a pipe. The child copies span
/// contents out of the *shared* memfd using its fork-instant metadata
/// snapshot; if the parent released its heap locks first, a parent
/// mutator could rewrite or punch the very pages mid-copy. So the
/// parent handler blocks on the pipe until the child reports the copy
/// done (or EOF — a failed fork() or a child that aborted mid-reinit —
/// which releases the fence just the same). The reference
/// implementation uses the identical fence for the identical reason.
class RuntimeForkSupport {
public:
  static void registerRuntime(Runtime *R) {
    pthread_once(&Once, installHandlers);
    SpinLockGuard Guard(detail::ForkRegistryLock);
    R->NextRuntime = Head;
    R->PrevRuntime = nullptr;
    if (Head != nullptr)
      Head->PrevRuntime = R;
    Head = R;
  }

  static void unregisterRuntime(Runtime *R) {
    SpinLockGuard Guard(detail::ForkRegistryLock);
    if (R->PrevRuntime != nullptr)
      R->PrevRuntime->NextRuntime = R->NextRuntime;
    else
      Head = R->NextRuntime;
    if (R->NextRuntime != nullptr)
      R->NextRuntime->PrevRuntime = R->PrevRuntime;
    R->PrevRuntime = R->NextRuntime = nullptr;
  }

  /// Creates and starts \p R's background mesher under the registry
  /// lock, so mesher bring-up cannot interleave with a concurrent
  /// fork: prepare() holds RegistryLock for the whole fork window,
  /// which means it either sees BgMesher null (not created yet — the
  /// parent finishes construction afterwards; in the child the
  /// constructing thread is gone and the mesher simply never existed)
  /// or sees a fully started mesher it can quiesce. Without this, a
  /// fork could snapshot Running=false, then race start(): the child
  /// would inherit Running=true with no thread — swallowed pokes, and
  /// a join of a nonexistent thread at teardown.
  static void createMesher(Runtime *R, uint64_t WakeMs,
                           const PressureConfig &Cfg) {
    SpinLockGuard Guard(detail::ForkRegistryLock);
    // The mesher gets the registry lock as its lifecycle lock so its
    // deferred post-fork restart serializes against prepare() the same
    // way this initial bring-up does.
    R->BgMesher = InternalHeap::global().makeNew<BackgroundMesher>(
        R->Global, WakeMs, Cfg, &detail::ForkRegistryLock);
    R->BgMesher->start();
  }

private:
  // prepare/parent/child: MESH_NO_THREAD_SAFETY_ANALYSIS. The fork
  // window is the canonical cross-function hold the analysis cannot
  // express — prepare() acquires the registry lock (plus every heap
  // lock, via lockForFork) and returns with them held; the matching
  // releases happen in parent() or child(), in a different function on
  // the other side of fork(). Runtime enforcement still applies: the
  // Debug lock-rank checker validates the acquisition order here.
  static void prepare() MESH_NO_THREAD_SAFETY_ANALYSIS {
    telemetry::forkQuiesceBegin();
    detail::ForkRegistryLock.lock();
    for (Runtime *R = Head; R != nullptr; R = R->NextRuntime) {
      if (R->BgMesher != nullptr)
        R->BgMesher->quiesceForFork();
      R->Global.lockForFork();
      // Flush dirty bins while allocation is still legal (the
      // InternalHeap lock below is not yet held): the child's arena
      // rebuild skips dirty spans, and the child itself must not
      // allocate — see GlobalHeap::flushDirtyForFork.
      R->Global.flushDirtyForFork();
    }
    InternalHeap::global().lockForFork();
    // The copy fence (see the class comment). On the off chance the
    // pipe cannot be created, fork proceeds unfenced — the child's
    // copy then races parent mutators, which is still strictly better
    // than sharing the file forever — with a warning so the condition
    // is visible.
    if (pipe2(ForkFence, O_CLOEXEC) != 0) {
      ForkFence[0] = ForkFence[1] = -1;
      logWarning("fork copy-fence pipe creation failed (errno %d); "
                 "forking without the parent-side fence",
                 errno);
    }
  }

  static void parent() MESH_NO_THREAD_SAFETY_ANALYSIS {
    // Fence before any unlock: no parent mutator may touch the shared
    // file while the child is copying out of it. EOF covers both the
    // failed-fork case (no child ever held the write end) and a child
    // that aborted mid-reinitialization.
    if (ForkFence[0] >= 0) {
      close(ForkFence[1]);
      char Byte;
      ssize_t N;
      do {
        N = read(ForkFence[0], &Byte, 1);
      } while (N < 0 && errno == EINTR);
      close(ForkFence[0]);
      ForkFence[0] = ForkFence[1] = -1;
    }
    InternalHeap::global().unlockForFork();
    for (Runtime *R = Head; R != nullptr; R = R->NextRuntime) {
      R->Global.unlockForFork();
      if (R->BgMesher != nullptr)
        R->BgMesher->resumeAfterForkParent();
    }
    detail::ForkRegistryLock.unlock();
    telemetry::forkQuiesceEnd(/*InChild=*/false);
  }

  static void child() MESH_NO_THREAD_SAFETY_ANALYSIS {
    // Re-arm the expedited membarrier first: registration is per-mm
    // and must not be trusted to survive fork. Falls back to the
    // seq-cst protocol if the re-registration fails, so the epoch
    // resets below always land in a sound mode. One syscall,
    // async-signal-safe.
    Epoch::reinitFenceModeAfterFork();
    // Arena rebuild next, with every lock still inherited held and
    // the parent fenced: after this loop the child owns private
    // file-backed storage and nothing in this process can reach the
    // parent's pages. Ordered strictly before the mesher child
    // recovery below — the deferred restart it arms is consumed by the
    // first post-fork allocation, which must already see the fresh
    // arena.
    for (Runtime *R = Head; R != nullptr; R = R->NextRuntime)
      R->Global.reinitializeArenaAfterFork();
    if (ForkFence[1] >= 0) {
      close(ForkFence[0]);
      const char Byte = 1;
      ssize_t N;
      do {
        N = write(ForkFence[1], &Byte, 1);
      } while (N < 0 && errno == EINTR);
      close(ForkFence[1]);
      ForkFence[0] = ForkFence[1] = -1;
    }
    InternalHeap::global().unlockForFork();
    for (Runtime *R = Head; R != nullptr; R = R->NextRuntime) {
      R->Global.resetEpochAfterFork();
      R->Global.unlockForFork();
      if (R->BgMesher != nullptr)
        R->BgMesher->resumeAfterForkChild();
    }
    detail::ForkRegistryLock.unlock();
    telemetry::forkQuiesceEnd(/*InChild=*/true);
  }

  static void installHandlers() { pthread_atfork(prepare, parent, child); }

  static Runtime *Head MESH_GUARDED_BY(detail::ForkRegistryLock);
  static pthread_once_t Once;
  static int ForkFence[2];
};

Runtime *RuntimeForkSupport::Head = nullptr;
pthread_once_t RuntimeForkSupport::Once = PTHREAD_ONCE_INIT;
int RuntimeForkSupport::ForkFence[2] = {-1, -1};

namespace {

/// TLS heap cache: the last (runtime id, heap) pair this thread
/// resolved. initial-exec so the accesses themselves can never
/// allocate (they run inside malloc). Runtime ids are never reused, so
/// a Runtime constructed at a recycled address cannot alias a stale
/// entry; a dead runtime's id simply never matches again.
__thread uint64_t CachedRuntimeId
    __attribute__((tls_model("initial-exec"))) = 0;
__thread ThreadLocalHeap *CachedHeap
    __attribute__((tls_model("initial-exec"))) = nullptr;

/// Id 0 is reserved as "no cache".
std::atomic<uint64_t> NextRuntimeId{1};

/// Every mallctl leaf this dispatcher resolves, one name per entry.
/// This is the authority behind the version.leaves enumeration leaf
/// and is pinned against the doc comment in src/api/mesh/mesh.h by
/// tests/core/MallctlLeavesTest.cpp — extend BOTH when adding a leaf.
const char *const kMallctlLeaves[] = {
    "mesh.enabled",
    "mesh.period_ms",
    "mesh.probes",
    "mesh.max_per_pass",
    "mesh.now",
    "background.enabled",
    "background.wakeups",
    "background.requests",
    "background.passes",
    "background.poke_passes",
    "background.pressure_passes",
    "pressure.frag_ppm",
    "pressure.rss_bytes",
    "pressure.committed_bytes",
    "pressure.in_use_bytes",
    "pressure.span_bytes",
    "heap.num_shards",
    "heap.flush_dirty",
    "epoch.fence_mode",
    "stats.dirty_bytes",
    "stats.bytes_copied",
    "stats.mesh_passes",
    "stats.mesh_passes_foreground",
    "stats.mesh_passes_background",
    "stats.max_pause_foreground_ns",
    "stats.max_pause_background_ns",
    "stats.committed_bytes",
    "stats.peak_committed_bytes",
    "stats.kernel_file_bytes",
    "stats.mesh_count",
    "stats.pages_meshed",
    "stats.mesh_ns",
    "stats.max_pause_ns",
    "faults.injected",
    "faults.retried",
    "faults.oom_returns",
    "faults.mesh_rollbacks",
    "faults.punch_fallbacks",
    "faults.reset",
    "telemetry.enabled",
    "telemetry.ring_size",
    "telemetry.events",
    "telemetry.overflow_events",
    "telemetry.rings_in_use",
    "telemetry.reset",
    "telemetry.dump",
    "telemetry.hist.mesh_pass",
    "telemetry.hist.mesh_scan",
    "telemetry.hist.mesh_remap",
    "telemetry.hist.mesh_release",
    "telemetry.hist.epoch_sync",
    "telemetry.hist.span_acquire",
    "telemetry.hist.punch_syscall",
    "telemetry.hist.remap_syscall",
    "version.leaves",
};

} // namespace

Runtime::Runtime(const MeshOptions &Opts)
    : Global(Opts),
      Id(NextRuntimeId.fetch_add(1, std::memory_order_relaxed)) {
  // Decide the epoch fence protocol eagerly (query + register the
  // expedited membarrier): the lazy path would otherwise take the
  // first registration syscall inside a hot free.
  Epoch::decideFenceMode();
  // MESH_TRACE honors every runtime in the process (the interposed
  // default and in-process instance heaps alike); the probe is
  // one-shot and the dump registers once.
  telemetry::maybeArmFromEnvironment();
  if (pthread_key_create(&HeapKey, destroyThreadHeap) != 0)
    fatalError("pthread_key_create failed");
  RuntimeForkSupport::registerRuntime(this);
  if (Opts.BackgroundMeshing && Opts.MeshingEnabled) {
    PressureConfig Cfg;
    Cfg.FragThresholdPct = Opts.PressureFragThresholdPct;
    Cfg.MinCommittedBytes = Opts.PressureMinCommittedBytes;
    // Under the fork-registry lock: bring-up must not interleave with
    // a concurrent fork's quiesce (see createMesher).
    RuntimeForkSupport::createMesher(this, Opts.BackgroundWakeMs, Cfg);
  }
}

Runtime::~Runtime() {
  // Leave the fork registry first: from here a concurrent fork no
  // longer touches this runtime's (dying) state.
  RuntimeForkSupport::unregisterRuntime(this);
  // Join the mesher before any heap state goes away; its destructor
  // stops the thread.
  if (BgMesher != nullptr) {
    InternalHeap::global().deleteObj(BgMesher);
    BgMesher = nullptr;
  }
  // Release the calling thread's heap explicitly; heaps of other live
  // threads are reclaimed by their pthread destructors, which must run
  // before the Runtime is destroyed (standard teardown ordering for
  // instance heaps; the process-default Runtime is never destroyed).
  if (auto *Heap = static_cast<ThreadLocalHeap *>(
          pthread_getspecific(HeapKey))) {
    pthread_setspecific(HeapKey, nullptr);
    if (CachedHeap == Heap) {
      CachedRuntimeId = 0;
      CachedHeap = nullptr;
    }
    InternalHeap::global().deleteObj(Heap);
  }
  pthread_key_delete(HeapKey);
}

void Runtime::destroyThreadHeap(void *Arg) {
  auto *Heap = static_cast<ThreadLocalHeap *>(Arg);
  // Runs on the exiting thread, so this clears that thread's own
  // cache. A later-round TSD destructor that allocates again simply
  // takes the slow path and builds a fresh heap.
  if (CachedHeap == Heap) {
    CachedRuntimeId = 0;
    CachedHeap = nullptr;
  }
  InternalHeap::global().deleteObj(Heap);
}

ThreadLocalHeap &Runtime::localHeap() {
  if (CachedRuntimeId == Id)
    return *CachedHeap;
  return localHeapSlow();
}

ThreadLocalHeap &Runtime::localHeapSlow() {
  auto *Heap = static_cast<ThreadLocalHeap *>(pthread_getspecific(HeapKey));
  if (Heap == nullptr) {
    Heap = InternalHeap::global().makeNew<ThreadLocalHeap>(
        &Global, Global.options().Seed ^
                     reinterpret_cast<uintptr_t>(pthread_self()));
    pthread_setspecific(HeapKey, Heap);
  }
  CachedRuntimeId = Id;
  CachedHeap = Heap;
  return *Heap;
}

void *Runtime::malloc(size_t Bytes) { return localHeap().malloc(Bytes); }

void Runtime::free(void *Ptr) { localHeap().free(Ptr); }

void *Runtime::calloc(size_t Count, size_t Size) {
  if (Count != 0 && Size > SIZE_MAX / Count)
    return nullptr; // Multiplication would overflow.
  const size_t Bytes = Count * Size;
  int SizeClass;
  if (!sizeClassForSize(Bytes, &SizeClass)) {
    // Large allocations served from a freshly committed span are
    // demand-zero memfd pages; only recycled dirty spans need the
    // memset.
    bool Zeroed = false;
    void *Ptr = Global.largeAllocZeroed(Bytes, &Zeroed);
    if (Ptr != nullptr && !Zeroed)
      memset(Ptr, 0, Bytes);
    return Ptr;
  }
  void *Ptr = malloc(Bytes);
  if (Ptr != nullptr)
    memset(Ptr, 0, Bytes);
  return Ptr;
}

void *Runtime::realloc(void *Ptr, size_t Bytes) {
  if (Ptr == nullptr)
    return malloc(Bytes);
  if (Bytes == 0) {
    free(Ptr);
    return nullptr;
  }
  const size_t Usable = usableSize(Ptr);
  if (Usable == 0) {
    logWarning("realloc of unknown pointer %p", Ptr);
    return nullptr;
  }
  // Grow/shrink in place when the slot still fits and is not wasteful.
  if (Bytes <= Usable && Bytes >= Usable / 2)
    return Ptr;
  void *Fresh = malloc(Bytes);
  if (Fresh == nullptr)
    return nullptr;
  memcpy(Fresh, Ptr, Bytes < Usable ? Bytes : Usable);
  free(Ptr);
  return Fresh;
}

int Runtime::posixMemalign(void **Out, size_t Alignment, size_t Bytes) {
  if (Out == nullptr || !isPowerOfTwo(Alignment) ||
      Alignment % sizeof(void *) != 0)
    return EINVAL;
  if (Alignment <= kMinObjectSize) {
    // Every size-classed slot is at least 16-byte aligned.
    *Out = malloc(Bytes);
    return *Out == nullptr ? ENOMEM : 0;
  }
  if (Alignment <= kMaxSizeClassedObject && Bytes <= kMaxSizeClassedObject) {
    // Serve from the power-of-two class >= max(size, alignment): slots
    // are ObjectSize-aligned within page-aligned spans.
    const size_t Rounded =
        roundUpToPowerOfTwo(Bytes > Alignment ? Bytes : Alignment);
    *Out = malloc(Rounded);
    return *Out == nullptr ? ENOMEM : 0;
  }
  if (Alignment <= kPageSize) {
    // Large objects are always page-aligned.
    *Out = Global.largeAlloc(Bytes);
    return *Out == nullptr ? ENOMEM : 0;
  }
  // Alignments beyond a page are rare; unsupported in this build.
  return EINVAL;
}

size_t Runtime::usableSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  return Global.usableSize(Ptr);
}

int Runtime::mallctl(const char *Name, void *OldP, size_t *OldLenP,
                     void *NewP, size_t NewLen) {
  auto ReadU64 = [&](uint64_t Value) -> int {
    if (OldP == nullptr || OldLenP == nullptr || *OldLenP < sizeof(uint64_t))
      return EINVAL;
    memcpy(OldP, &Value, sizeof(uint64_t));
    *OldLenP = sizeof(uint64_t);
    return 0;
  };
  auto WriteBool = [&](bool *Target) -> int {
    if (NewP == nullptr || NewLen != sizeof(bool))
      return EINVAL;
    bool Value;
    memcpy(&Value, NewP, sizeof(bool));
    *Target = Value;
    return 0;
  };

  if (strcmp(Name, "mesh.enabled") == 0) {
    if (NewP != nullptr) {
      bool Value = Global.meshingEnabled();
      const int Rc = WriteBool(&Value);
      if (Rc != 0)
        return Rc;
      Global.setMeshingEnabled(Value);
      return 0;
    }
    return ReadU64(Global.meshingEnabled() ? 1 : 0);
  }
  if (strcmp(Name, "mesh.period_ms") == 0) {
    if (NewP != nullptr) {
      if (NewLen != sizeof(uint64_t))
        return EINVAL;
      uint64_t Ms;
      memcpy(&Ms, NewP, sizeof(uint64_t));
      Global.setMeshPeriodMs(Ms);
      return 0;
    }
    return ReadU64(Global.meshPeriodMs());
  }
  if (strcmp(Name, "mesh.probes") == 0) {
    if (NewP != nullptr) {
      if (NewLen != sizeof(uint64_t))
        return EINVAL;
      uint64_t T;
      memcpy(&T, NewP, sizeof(uint64_t));
      Global.setMeshProbes(static_cast<uint32_t>(T));
      return 0;
    }
    return ReadU64(Global.options().MeshProbes);
  }
  if (strcmp(Name, "mesh.max_per_pass") == 0) {
    if (NewP != nullptr) {
      if (NewLen != sizeof(uint64_t))
        return EINVAL;
      uint64_t Max;
      memcpy(&Max, NewP, sizeof(uint64_t));
      Global.setMaxMeshesPerPass(static_cast<uint32_t>(Max));
      return 0;
    }
    return ReadU64(Global.options().MaxMeshesPerPass);
  }
  if (strcmp(Name, "mesh.now") == 0)
    return ReadU64(Global.meshNow());
  if (strncmp(Name, "background.", 11) == 0) {
    const char *Leaf = Name + 11;
    if (strcmp(Leaf, "enabled") == 0)
      return ReadU64(BgMesher != nullptr && BgMesher->running() ? 1 : 0);
    if (BgMesher == nullptr) {
      // The remaining leaves are counters of a thread that never
      // existed; report them as zero so callers need no mode probing.
      if (strcmp(Leaf, "wakeups") == 0 || strcmp(Leaf, "requests") == 0 ||
          strcmp(Leaf, "passes") == 0 || strcmp(Leaf, "poke_passes") == 0 ||
          strcmp(Leaf, "pressure_passes") == 0)
        return ReadU64(0);
      return ENOENT;
    }
    if (strcmp(Leaf, "wakeups") == 0)
      return ReadU64(BgMesher->wakeups());
    if (strcmp(Leaf, "requests") == 0)
      return ReadU64(BgMesher->requests());
    if (strcmp(Leaf, "passes") == 0)
      return ReadU64(Global.stats().MeshPassesBackground.load(
          std::memory_order_relaxed));
    if (strcmp(Leaf, "poke_passes") == 0)
      return ReadU64(BgMesher->pokePasses());
    if (strcmp(Leaf, "pressure_passes") == 0)
      return ReadU64(BgMesher->pressurePasses());
    return ENOENT;
  }
  if (strncmp(Name, "pressure.", 9) == 0) {
    // Validate the leaf before paying for the sample: the sample is a
    // page-table walk under ArenaLock plus a /proc read, too expensive
    // to spend on an ENOENT.
    const char *Leaf = Name + 9;
    enum { FragPpm, Rss, Committed, InUse, Span } Which;
    if (strcmp(Leaf, "frag_ppm") == 0)
      Which = FragPpm;
    else if (strcmp(Leaf, "rss_bytes") == 0)
      Which = Rss;
    else if (strcmp(Leaf, "committed_bytes") == 0)
      Which = Committed;
    else if (strcmp(Leaf, "in_use_bytes") == 0)
      Which = InUse;
    else if (strcmp(Leaf, "span_bytes") == 0)
      Which = Span;
    else
      return ENOENT;
    // Always a fresh sample (no allocation): observability should not
    // depend on whether a background thread happens to have woken
    // recently.
    GlobalHeapFootprintSource Src(Global);
    PressureConfig Cfg;
    Cfg.FragThresholdPct = Global.options().PressureFragThresholdPct;
    Cfg.MinCommittedBytes = Global.options().PressureMinCommittedBytes;
    const PressureSample S = PressureMonitor(Src, Cfg).sample();
    switch (Which) {
    case FragPpm:
      return ReadU64(S.FragPpm);
    case Rss:
      return ReadU64(S.RssBytes);
    case Committed:
      return ReadU64(S.Footprint.CommittedBytes);
    case InUse:
      return ReadU64(S.Footprint.InUseBytes);
    case Span:
      return ReadU64(S.Footprint.SpanBytes);
    }
    return ENOENT;
  }
  if (strcmp(Name, "heap.num_shards") == 0)
    return ReadU64(GlobalHeap::kNumShards);
  if (strcmp(Name, "epoch.fence_mode") == 0)
    // 1 = asymmetric (expedited membarrier), 2 = seq-cst fallback;
    // 0 (undecided) is unreachable here since the ctor decides.
    return ReadU64(static_cast<uint64_t>(Epoch::fenceMode()));
  if (strcmp(Name, "heap.flush_dirty") == 0)
    return ReadU64(Global.flushDirtyPages());
  if (strcmp(Name, "stats.dirty_bytes") == 0)
    return ReadU64(Global.dirtyBytes());
  if (strcmp(Name, "stats.bytes_copied") == 0)
    return ReadU64(
        Global.stats().BytesCopied.load(std::memory_order_relaxed));
  if (strcmp(Name, "stats.mesh_passes") == 0)
    return ReadU64(
        Global.stats().MeshPasses.load(std::memory_order_relaxed));
  if (strcmp(Name, "stats.mesh_passes_foreground") == 0)
    return ReadU64(Global.stats().MeshPassesForeground.load(
        std::memory_order_relaxed));
  if (strcmp(Name, "stats.mesh_passes_background") == 0)
    return ReadU64(Global.stats().MeshPassesBackground.load(
        std::memory_order_relaxed));
  if (strcmp(Name, "stats.max_pause_foreground_ns") == 0)
    return ReadU64(Global.stats().MaxForegroundPassNs.load(
        std::memory_order_relaxed));
  if (strcmp(Name, "stats.max_pause_background_ns") == 0)
    return ReadU64(Global.stats().MaxBackgroundPassNs.load(
        std::memory_order_relaxed));
  if (strcmp(Name, "stats.committed_bytes") == 0)
    return ReadU64(Global.committedBytes());
  if (strcmp(Name, "stats.peak_committed_bytes") == 0)
    return ReadU64(pagesToBytes(
        Global.stats().PeakCommittedPages.load(std::memory_order_relaxed)));
  if (strcmp(Name, "stats.kernel_file_bytes") == 0)
    // Pages the arena file actually charges the kernel for — differs
    // from committed_bytes by meshed-away pages and punched holes, so
    // (committed - kernel_file) is the meshing-effectiveness number
    // the soak harness tracks. Preload runs read it via mesh_mallctl.
    return ReadU64(pagesToBytes(Global.kernelFilePages()));
  if (strcmp(Name, "stats.mesh_count") == 0)
    return ReadU64(Global.stats().MeshCount.load(std::memory_order_relaxed));
  if (strcmp(Name, "stats.pages_meshed") == 0)
    return ReadU64(
        Global.stats().PagesMeshed.load(std::memory_order_relaxed));
  if (strcmp(Name, "stats.mesh_ns") == 0)
    return ReadU64(
        Global.stats().TotalMeshNs.load(std::memory_order_relaxed));
  if (strcmp(Name, "stats.max_pause_ns") == 0)
    return ReadU64(
        Global.stats().MaxMeshPassNs.load(std::memory_order_relaxed));
  if (strncmp(Name, "faults.", 7) == 0) {
    // Degradation observability (see DESIGN.md "Failure policy"):
    // injected/retried count fault-injector activity at the syscall
    // seam; the rest count real degradations taken, injected or not.
    const char *Leaf = Name + 7;
    if (strcmp(Leaf, "injected") == 0)
      return ReadU64(sys::faultsInjected());
    if (strcmp(Leaf, "retried") == 0)
      return ReadU64(sys::faultsRetried());
    if (strcmp(Leaf, "oom_returns") == 0)
      return ReadU64(
          Global.stats().OomReturns.load(std::memory_order_relaxed));
    if (strcmp(Leaf, "mesh_rollbacks") == 0)
      return ReadU64(
          Global.stats().MeshRollbacks.load(std::memory_order_relaxed));
    if (strcmp(Leaf, "punch_fallbacks") == 0)
      return ReadU64(Global.punchFallbackCount());
    if (strcmp(Leaf, "reset") == 0) {
      // Write leaf: zero the seam counters and the degradation
      // counters so storm tests can assert per-phase deltas.
      sys::resetFaultCounters();
      Global.resetFaultCounters();
      return 0;
    }
    return ENOENT;
  }
  if (strncmp(Name, "telemetry.", 10) == 0) {
    const char *Leaf = Name + 10;
    if (strcmp(Leaf, "enabled") == 0) {
      if (NewP != nullptr) {
        bool Value = telemetry::enabled();
        const int Rc = WriteBool(&Value);
        if (Rc != 0)
          return Rc;
        if (Value)
          telemetry::enable();
        else
          telemetry::disable();
        return 0;
      }
      return ReadU64(telemetry::enabled() ? 1 : 0);
    }
    if (strcmp(Leaf, "ring_size") == 0) {
      if (NewP != nullptr) {
        if (NewLen != sizeof(uint64_t))
          return EINVAL;
        uint64_t Events;
        memcpy(&Events, NewP, sizeof(uint64_t));
        return telemetry::setRingEvents(Events) ? 0 : EINVAL;
      }
      return ReadU64(telemetry::ringEvents());
    }
    if (strcmp(Leaf, "events") == 0)
      return ReadU64(telemetry::eventsRecorded());
    if (strcmp(Leaf, "overflow_events") == 0)
      return ReadU64(telemetry::overflowEvents());
    if (strcmp(Leaf, "rings_in_use") == 0)
      return ReadU64(telemetry::ringsInUse());
    if (strcmp(Leaf, "reset") == 0) {
      telemetry::reset();
      return 0;
    }
    if (strcmp(Leaf, "dump") == 0) {
      // Write leaf: NewP carries the output path (with or without a
      // trailing NUL).
      if (NewP == nullptr || NewLen == 0)
        return EINVAL;
      char Path[512];
      size_t N = NewLen;
      if (static_cast<const char *>(NewP)[N - 1] == '\0')
        --N;
      if (N == 0 || N >= sizeof(Path))
        return EINVAL;
      memcpy(Path, NewP, N);
      Path[N] = '\0';
      return telemetry::dumpTrace(Path);
    }
    if (strncmp(Leaf, "hist.", 5) == 0) {
      const int H = telemetry::histIdByName(Leaf + 5);
      if (H < 0)
        return ENOENT;
      // Packed read-out: 64 u64 bucket counters.
      constexpr size_t Bytes =
          telemetry::kHistBuckets * sizeof(uint64_t);
      if (OldP == nullptr || OldLenP == nullptr || *OldLenP < Bytes)
        return EINVAL;
      telemetry::readHistogram(static_cast<telemetry::HistId>(H),
                               static_cast<uint64_t *>(OldP));
      *OldLenP = Bytes;
      return 0;
    }
    return ENOENT;
  }
  if (strcmp(Name, "version.leaves") == 0) {
    // Newline-joined enumeration of every leaf above. A null OldP
    // reports the required buffer size (including the trailing NUL).
    size_t Needed = 1;
    for (const char *Leaf : kMallctlLeaves)
      Needed += strlen(Leaf) + 1;
    if (OldLenP == nullptr)
      return EINVAL;
    if (OldP == nullptr) {
      *OldLenP = Needed;
      return 0;
    }
    if (*OldLenP < Needed)
      return EINVAL;
    char *Out = static_cast<char *>(OldP);
    for (const char *Leaf : kMallctlLeaves) {
      const size_t N = strlen(Leaf);
      memcpy(Out, Leaf, N);
      Out += N;
      *Out++ = '\n';
    }
    *Out = '\0';
    *OldLenP = Needed;
    return 0;
  }
  return ENOENT;
}

} // namespace mesh
