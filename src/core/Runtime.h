//===- Runtime.h - Per-heap runtime facade ----------------------*- C++ -*-===//
///
/// \file
/// A Runtime ties together one global heap, per-thread local heaps,
/// and the malloc/free/realloc surface. The interposition shim owns a
/// process-wide default Runtime; tests and benchmarks construct
/// independent Runtimes with their own options and arenas.
///
/// The calling thread's heap is cached in a `__thread` pointer, so the
/// malloc/free hot path costs one TLS load and one compare — no
/// pthread_getspecific (paper Section 4.3: allocation is entirely
/// thread-local in the common case). The pthread key survives solely
/// to run the heap destructor at thread exit. Because the cache is
/// keyed by a never-reused runtime id, tests that stack-allocate
/// Runtimes back to back cannot alias a stale cache entry.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_RUNTIME_H
#define MESH_CORE_RUNTIME_H

#include "core/GlobalHeap.h"
#include "core/Options.h"
#include "core/ThreadLocalHeap.h"
#include "support/Annotations.h"
#include "support/SpinLock.h"

#include <cstddef>
#include <pthread.h>

namespace mesh {

class BackgroundMesher;
class RuntimeForkSupport;

namespace detail {
/// The process-wide fork-registry lock (defined in Runtime.cpp; owned
/// by RuntimeForkSupport). Declared at namespace scope — rather than as
/// a private static of RuntimeForkSupport — so the registry-protected
/// fields below can name it in MESH_GUARDED_BY: the thread-safety
/// analysis needs the capability to be spellable at the field's
/// declaration site. It doubles as the background mesher's lifecycle
/// lock (see RuntimeForkSupport::createMesher).
extern SpinLock ForkRegistryLock;
} // namespace detail

class Runtime {
public:
  explicit Runtime(const MeshOptions &Opts = MeshOptions());
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  void *malloc(size_t Bytes);
  void free(void *Ptr);
  void *calloc(size_t Count, size_t Size);
  void *realloc(void *Ptr, size_t Bytes);

  /// posix_memalign semantics; alignments up to one page are supported
  /// exactly, larger alignments via page-aligned large objects.
  int posixMemalign(void **Out, size_t Alignment, size_t Bytes);

  /// malloc_usable_size semantics (0 for unknown pointers).
  size_t usableSize(const void *Ptr) const;

  GlobalHeap &global() { return Global; }
  const GlobalHeap &global() const { return Global; }

  /// Physical memory footprint of the heap, including Mesh's own
  /// metadata share (the RSS analogue used by the benchmarks).
  size_t committedBytes() const { return Global.committedBytes(); }

  /// Forces a meshing pass; returns bytes released.
  size_t meshNow() { return Global.meshNow(); }

  /// The calling thread's local heap, created on first use. The fast
  /// path is a `__thread` cache hit; the slow path falls back to the
  /// pthread key and refreshes the cache.
  ThreadLocalHeap &localHeap();

  /// jemalloc-flavoured control interface (paper Section 4.5 mentions
  /// the "semi-standard mallctl API"). Supported names are documented
  /// in README.md. Returns 0, or ENOENT/EINVAL on error.
  int mallctl(const char *Name, void *OldP, size_t *OldLenP, void *NewP,
              size_t NewLen);

  /// The background mesher owned by this runtime, or nullptr when
  /// meshing runs synchronously (Options::BackgroundMeshing off, or
  /// thread creation failed and the runtime degraded to inline passes).
  BackgroundMesher *backgroundMesher() { return BgMesher; }
  const BackgroundMesher *backgroundMesher() const { return BgMesher; }

private:
  friend class RuntimeForkSupport;

  static void destroyThreadHeap(void *Arg);
  ThreadLocalHeap &localHeapSlow();

  GlobalHeap Global;
  pthread_key_t HeapKey;
  /// Process-unique, never reused; the TLS heap cache is valid only
  /// while its recorded id matches this runtime's.
  uint64_t Id;
  /// Owned (InternalHeap-allocated); created in the ctor when
  /// BackgroundMeshing is on, destroyed first in the dtor so the thread
  /// is joined before any heap state dies.
  BackgroundMesher *BgMesher = nullptr;
  /// Intrusive linkage for the process-wide fork registry (see
  /// RuntimeForkSupport in Runtime.cpp).
  Runtime *PrevRuntime MESH_GUARDED_BY(detail::ForkRegistryLock) = nullptr;
  Runtime *NextRuntime MESH_GUARDED_BY(detail::ForkRegistryLock) = nullptr;
};

} // namespace mesh

#endif // MESH_CORE_RUNTIME_H
