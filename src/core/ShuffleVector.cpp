//===- ShuffleVector.cpp - Randomized freelist ------------------------------===//

#include "core/ShuffleVector.h"

namespace mesh {

// One shuffle vector exists per size class per thread (24 x ~320 bytes
// = under 8 KiB per thread, matching the paper's "roughly 2.8K per
// thread" order of magnitude).
static_assert(sizeof(ShuffleVector) <= 320,
              "shuffle vector should remain compact");

uint32_t ShuffleVector::attach(MiniHeap *NewMH, char *ArenaBase) {
  assert(MH == nullptr && "attach over a live attachment");
  assert(NewMH != nullptr && "cannot attach null MiniHeap");
  MH = NewMH;
  MaxCount = static_cast<uint16_t>(MH->objectCount());
  ObjSize = MH->objectSize();
  SpanStart = ArenaBase + pagesToBytes(MH->physicalSpanOffset());
  SpanLen = MH->spanBytes();
  // Claimed offsets arrive ascending; lay them out ascending from the
  // head so that, without randomization, allocation proceeds in
  // bump-pointer order from offset 0 upward.
  uint8_t Claimed[kMaxObjectsPerSpan];
  uint32_t N = 0;
  MH->bitmap().claimUnsetBits(
      [&](uint32_t I) { Claimed[N++] = static_cast<uint8_t>(I); });
  Head = static_cast<uint16_t>(MaxCount - N);
  for (uint32_t I = 0; I < N; ++I)
    List[Head + I] = Claimed[I];
  const uint32_t Pulled = length();
  if (Randomize && Pulled > 1) {
    // Knuth-Fisher-Yates over the cached range.
    for (uint32_t I = MaxCount - 1; I > Head; --I) {
      const uint32_t J = Random->inRange(Head, I);
      std::swap(List[I], List[J]);
    }
  }
  return Pulled;
}

MiniHeap *ShuffleVector::detach() {
  MiniHeap *Old = MH;
  if (Old == nullptr)
    return nullptr;
  Bitmap &Bits = Old->bitmap();
  for (uint32_t I = Head; I < MaxCount; ++I) {
    const bool WasSet = Bits.unset(List[I]);
    assert(WasSet && "cached offset must own its bitmap bit");
    (void)WasSet;
  }
  Head = MaxCount;
  MH = nullptr;
  SpanStart = nullptr;
  return Old;
}

} // namespace mesh
