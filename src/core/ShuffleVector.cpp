//===- ShuffleVector.cpp - Randomized freelist ------------------------------===//

#include "core/ShuffleVector.h"

namespace mesh {

// Header-only; compile-time checks live here. One shuffle vector exists
// per size class per thread (24 x ~280 bytes = under 8 KiB per thread,
// matching the paper's "roughly 2.8K per thread" order of magnitude).
static_assert(sizeof(ShuffleVector) <= 320,
              "shuffle vector should remain compact");

} // namespace mesh
