//===- ShuffleVector.h - Randomized freelist --------------------*- C++ -*-===//
///
/// \file
/// Shuffle vectors (paper Section 4.2): the data structure that gives
/// Mesh O(1) randomized allocation with one byte of overhead per free
/// object. A shuffle vector caches the free offsets of exactly one
/// attached MiniHeap, in uniformly random order:
///
///   - attach: pull every unset bitmap offset (atomically setting it),
///     then Knuth-Fisher-Yates shuffle;
///   - malloc: pop the head (bump the allocation index);
///   - free: push the offset at the head, then swap it with a uniformly
///     random element — one incremental Fisher-Yates step, preserving
///     the all-permutations-equally-likely invariant.
///
/// Shuffle vectors are single-threaded by construction (only the owning
/// thread touches them), so no operation here is atomic except the
/// bitmap updates performed during attach/detach.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_SHUFFLEVECTOR_H
#define MESH_CORE_SHUFFLEVECTOR_H

#include "core/MiniHeap.h"
#include "support/Common.h"
#include "support/Rng.h"

#include <cassert>
#include <cstdint>
#include <utility>

namespace mesh {

class ShuffleVector {
public:
  ShuffleVector() = default;
  ShuffleVector(const ShuffleVector &) = delete;
  ShuffleVector &operator=(const ShuffleVector &) = delete;

  /// Must be called once before use. \p Randomized false degrades the
  /// vector to deterministic (descending-offset) order — the "Mesh
  /// (no rand)" ablation from paper Section 6.3.
  void init(Rng *R, bool Randomized) {
    Random = R;
    Randomize = Randomized;
  }

  bool isAttached() const { return MH != nullptr; }
  MiniHeap *miniheap() const { return MH; }

  /// True when no cached free offsets remain.
  bool isExhausted() const { return Head >= MaxCount; }

  /// Number of offsets currently cached.
  uint32_t length() const { return MaxCount - Head; }

  /// Attaches to \p NewMH: reserves every free slot by atomically
  /// setting its bitmap bits word-at-a-time (kWords fetch_ors, not one
  /// CAS attempt per object) and caching the claimed offsets. Returns
  /// the number of offsets pulled. Out of line: this is the refill
  /// path, and inlining its scratch buffer bloats every caller's frame
  /// while the per-op malloc/free neighbours want tight codegen.
  uint32_t attach(MiniHeap *NewMH, char *ArenaBase);

  /// Detaches from the current MiniHeap, returning leftover cached
  /// offsets to the bitmap (unsetting their bits). Returns the MiniHeap
  /// so the caller can hand it back to the global heap.
  MiniHeap *detach();

  /// Pops the next randomized offset. Requires !isExhausted().
  void *malloc() {
    assert(!isExhausted() && "malloc from exhausted shuffle vector");
    const uint32_t Off = List[Head++];
    return SpanStart + Off * ObjSize;
  }

  /// True iff \p Ptr belongs to the attached span's primary range.
  /// Uses only the vector's own cached fields (no MiniHeap metadata
  /// dereference): the free fast path runs this on every operation.
  bool contains(const void *Ptr) const {
    if (MH == nullptr)
      return false;
    const auto P = reinterpret_cast<uintptr_t>(Ptr);
    const auto S = reinterpret_cast<uintptr_t>(SpanStart);
    return P >= S && P < S + SpanLen;
  }

  /// Frees \p Ptr (which must satisfy contains()): pushes its offset at
  /// the head and randomly swaps it into the cached range, preserving
  /// the uniform-permutation invariant (Figure 3c-d in the paper).
  void free(void *Ptr) {
    const auto P = reinterpret_cast<uintptr_t>(Ptr);
    const auto S = reinterpret_cast<uintptr_t>(SpanStart);
    assert(P >= S && P < S + MH->spanBytes() && "free outside span");
    const uint32_t Off = static_cast<uint32_t>((P - S) / ObjSize);
    assert((P - S) % ObjSize == 0 && "interior pointer free");
    assert(Head > 0 && "more frees than allocations");
    List[--Head] = static_cast<uint8_t>(Off);
    if (Randomize) {
      const uint32_t SwapIdx = Random->inRange(Head, MaxCount - 1);
      std::swap(List[Head], List[SwapIdx]);
    }
  }

  /// Read-only view of the cached offsets (tests only).
  const uint8_t *cachedBegin() const { return List + Head; }
  const uint8_t *cachedEnd() const { return List + MaxCount; }

private:
  uint8_t List[kMaxObjectsPerSpan] = {};
  uint16_t Head = 0;
  uint16_t MaxCount = 0;
  size_t ObjSize = 0;
  size_t SpanLen = 0;
  char *SpanStart = nullptr;
  MiniHeap *MH = nullptr;
  Rng *Random = nullptr;
  bool Randomize = true;
};

} // namespace mesh

#endif // MESH_CORE_SHUFFLEVECTOR_H
