//===- SizeClass.cpp - Segregated-fit size classes ------------------------===//

#include "core/SizeClass.h"

#include <cassert>

namespace mesh {

namespace {

constexpr uint32_t spanPagesFor(uint32_t ObjSize) {
  // Smallest whole-page span holding at least kMinObjectsPerSpan objects.
  uint32_t Pages = 1;
  while (Pages * kPageSize / ObjSize < kMinObjectsPerSpan)
    Pages *= 2;
  return Pages;
}

constexpr uint32_t objectCountFor(uint32_t ObjSize) {
  const uint32_t Fit = spanPagesFor(ObjSize) * kPageSize / ObjSize;
  return Fit > kMaxObjectsPerSpan ? kMaxObjectsPerSpan : Fit;
}

constexpr SizeClassInfo makeClass(uint32_t ObjSize) {
  return SizeClassInfo{ObjSize, spanPagesFor(ObjSize), objectCountFor(ObjSize),
                       ObjSize < kMinNonMeshableObjectSize};
}

// jemalloc-style spacing <= 1024 (16-byte quantum up to 128, then four
// classes per doubling), power-of-two from 2048 to 16384.
constexpr SizeClassInfo Classes[kNumSizeClasses] = {
    makeClass(16),   makeClass(32),   makeClass(48),   makeClass(64),
    makeClass(80),   makeClass(96),   makeClass(112),  makeClass(128),
    makeClass(160),  makeClass(192),  makeClass(224),  makeClass(256),
    makeClass(320),  makeClass(384),  makeClass(448),  makeClass(512),
    makeClass(640),  makeClass(768),  makeClass(896),  makeClass(1024),
    makeClass(2048), makeClass(4096), makeClass(8192), makeClass(16384),
};

static_assert(Classes[0].ObjectSize == kMinObjectSize, "table starts at 16");
static_assert(Classes[kNumSizeClasses - 1].ObjectSize == kMaxSizeClassedObject,
              "table ends at 16 KiB");
static_assert(Classes[0].ObjectCount == 256 && Classes[0].SpanPages == 1,
              "16-byte spans: one page, 256 objects");
static_assert(Classes[19].ObjectSize == 1024 && Classes[19].SpanPages == 2 &&
                  Classes[19].ObjectCount == 8,
              "1024-byte spans: two pages, 8 objects");
static_assert(!Classes[21].Meshable && Classes[20].Meshable,
              "meshing cutoff at 4 KiB objects");

// Dense lookup for sizes <= 1024: table index for ceil(size/16).
constexpr int kDenseEntries = 1024 / 16 + 1;
constexpr int denseClassFor(uint32_t Quanta) {
  // Quanta = size in 16-byte units, 0..64.
  for (int C = 0; C < kNumSizeClasses; ++C)
    if (Classes[C].ObjectSize >= Quanta * 16u)
      return C;
  return -1;
}

constexpr auto makeDenseTable() {
  struct Table {
    int8_t Entry[kDenseEntries];
  } T{};
  for (int Q = 0; Q < kDenseEntries; ++Q)
    T.Entry[Q] = static_cast<int8_t>(denseClassFor(Q));
  return T;
}

constexpr auto DenseTable = makeDenseTable();

} // namespace

const SizeClassInfo &sizeClassInfo(int Class) {
  assert(Class >= 0 && Class < kNumSizeClasses && "size class out of range");
  return Classes[Class];
}

bool sizeClassForSize(size_t Size, int *Class) {
  assert(Class != nullptr && "output parameter required");
  if (Size > kMaxSizeClassedObject)
    return false;
  if (Size <= 1024) {
    const size_t Quanta = (Size + 15) / 16;
    *Class = DenseTable.Entry[Quanta];
    return true;
  }
  // 2048, 4096, 8192, 16384.
  for (int C = 20; C < kNumSizeClasses; ++C) {
    if (Classes[C].ObjectSize >= Size) {
      *Class = C;
      return true;
    }
  }
  return false;
}

uint32_t objectSizeForClass(int Class) { return sizeClassInfo(Class).ObjectSize; }

} // namespace mesh
