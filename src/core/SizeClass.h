//===- SizeClass.h - Segregated-fit size classes ----------------*- C++ -*-===//
///
/// \file
/// Mesh's size classes (paper Section 4): jemalloc's fine-grained
/// classes for objects up to 1024 bytes and power-of-two classes from
/// 2 KiB to 16 KiB — 24 classes total. Each class also fixes its span
/// geometry: spans are whole pages holding between 8 and 256 objects,
/// and classes of 4 KiB and larger are excluded from meshing.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_SIZECLASS_H
#define MESH_CORE_SIZECLASS_H

#include "support/Common.h"

#include <cstddef>
#include <cstdint>

namespace mesh {

/// Number of size classes (paper Section 4.2: "24 in the current
/// implementation").
inline constexpr int kNumSizeClasses = 24;

/// Static geometry of one size class.
struct SizeClassInfo {
  uint32_t ObjectSize;  ///< Bytes per object (multiple of 16).
  uint32_t SpanPages;   ///< Pages per span.
  uint32_t ObjectCount; ///< Objects per span, in [8, 256].
  bool Meshable;        ///< False for ObjectSize >= 4 KiB (Section 4).
};

/// Table of all size classes, ascending by ObjectSize.
const SizeClassInfo &sizeClassInfo(int Class);

/// Maps \p Size to the smallest size class that fits it.
///
/// \returns true and sets \p Class for sizes <= 16 KiB; false for large
/// objects, which the global heap serves directly (Section 4.3).
bool sizeClassForSize(size_t Size, int *Class);

/// Convenience: the object size of class \p Class.
uint32_t objectSizeForClass(int Class);

} // namespace mesh

#endif // MESH_CORE_SIZECLASS_H
