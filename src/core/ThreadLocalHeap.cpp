//===- ThreadLocalHeap.cpp - Per-thread allocation fast path ----------------===//

#include "core/ThreadLocalHeap.h"

#include <cassert>

namespace mesh {

ThreadLocalHeap::ThreadLocalHeap(GlobalHeap *GlobalHeapPtr, uint64_t Seed)
    : Global(GlobalHeapPtr), Random(Seed) {
  const bool Randomized = Global->options().Randomized;
  for (auto &V : Vectors)
    V.init(&Random, Randomized);
}

ThreadLocalHeap::~ThreadLocalHeap() { releaseAll(); }

void ThreadLocalHeap::releaseAll() {
  for (auto &V : Vectors) {
    if (!V.isAttached())
      continue;
    MiniHeap *MH = V.detach();
    Global->releaseMiniHeap(MH);
  }
}

void *ThreadLocalHeap::malloc(size_t Bytes) {
  int SizeClass;
  if (!sizeClassForSize(Bytes, &SizeClass))
    return Global->largeAlloc(Bytes);

  ShuffleVector &V = Vectors[SizeClass];
  while (V.isExhausted()) {
    if (V.isAttached())
      Global->releaseMiniHeap(V.detach());
    MiniHeap *MH = Global->allocMiniHeapForClass(SizeClass);
    const uint32_t Pulled = V.attach(MH, Global->arenaBase());
    assert(Pulled > 0 && "global heap returned a full span");
    (void)Pulled;
  }
  return V.malloc();
}

void ThreadLocalHeap::free(void *Ptr) {
  if (Ptr == nullptr)
    return;
  // Local-free fast path: scan this thread's attached spans (at most
  // one range check per size class, no locks or atomics).
  for (auto &V : Vectors) {
    if (V.contains(Ptr)) {
      V.free(Ptr);
      return;
    }
  }
  Global->free(Ptr);
}

} // namespace mesh
