//===- ThreadLocalHeap.cpp - Per-thread allocation fast path ----------------===//

#include "core/ThreadLocalHeap.h"

#include <cassert>

namespace mesh {

ThreadLocalHeap::ThreadLocalHeap(GlobalHeap *GlobalHeapPtr, uint64_t Seed)
    : Global(GlobalHeapPtr), Random(Seed) {
  const bool Randomized = Global->options().Randomized;
  for (auto &V : Vectors)
    V.init(&Random, Randomized);
}

ThreadLocalHeap::~ThreadLocalHeap() { releaseAll(); }

void ThreadLocalHeap::releaseAll() {
  LastFreed = nullptr;
  for (int Class = 0; Class < kNumSizeClasses; ++Class) {
    ShuffleVector &V = Vectors[Class];
    if (!V.isAttached())
      continue;
    AttachedMH[Class] = nullptr;
    --AttachedCount;
    V.miniheap()->setAttachedOwner(nullptr);
    MiniHeap *MH = V.detach();
    Global->releaseMiniHeap(MH);
  }
}

void *ThreadLocalHeap::malloc(size_t Bytes) {
  int SizeClass;
  if (!sizeClassForSize(Bytes, &SizeClass))
    return Global->largeAlloc(Bytes);

  ShuffleVector &V = Vectors[SizeClass];
  // Refill loop: detach the spent span and pull a fresh one. Both
  // calls go through the owning size class's shard of the global heap,
  // so two threads refilling different classes never contend on a
  // lock — the single-global-lock refill bottleneck is gone.
  while (V.isExhausted()) {
    if (V.isAttached()) {
      AttachedMH[SizeClass] = nullptr;
      --AttachedCount;
      V.miniheap()->setAttachedOwner(nullptr);
      Global->releaseMiniHeap(V.detach());
    }
    MiniHeap *MH = Global->allocMiniHeapForClass(SizeClass);
    if (MH == nullptr)
      return nullptr; // Arena exhausted/commit refused: caller sets ENOMEM.
    const uint32_t Pulled = V.attach(MH, Global->arenaBase());
    assert(Pulled > 0 && "global heap returned a full span");
    (void)Pulled;
    // Publish the fast-path tags last, once the vector is consistent.
    MH->setAttachedOwner(this);
    AttachedMH[SizeClass] = MH;
    ++AttachedCount;
  }
  return V.malloc();
}

void ThreadLocalHeap::free(void *Ptr) {
  if (Ptr == nullptr)
    return;
  // Hottest path: repeated frees into the span that served the last
  // one — pure thread-local state, no atomics at all.
  if (LastFreed != nullptr && LastFreed->contains(Ptr)) {
    LastFreed->free(Ptr);
    return;
  }
  // O(1) dispatch: one page-table read resolves the owning MiniHeap,
  // then the is-it-mine check compares that pointer against this
  // thread's attached set (the dense mirror of each vector's
  // attachedOwner tag). The identity accessor is the epoch-free
  // variant: pointer equality never dereferences MH, so a MiniHeap
  // concurrently retired by a mesh pass cannot be touched — the remote
  // path below re-resolves under the epoch.
  if (MiniHeap *MH = AttachedCount > 0 ? Global->miniheapIdentityFor(Ptr)
                                       : nullptr) {
    for (int Class = 0; Class < kNumSizeClasses; ++Class) {
      if (AttachedMH[Class] != MH)
        continue;
      ShuffleVector &V = Vectors[Class];
      // A mirror hit means MH is attached to us, so dereferencing it
      // is safe — the tag and the mirror must agree.
      assert(MH->attachedOwner() == this &&
             "AttachedMH mirror out of sync with the owner tag");
      // Validates the span range: rejects frees into meshed-in alias
      // spans (those go global, exactly as the per-class scan used to
      // route them) and the stale page-table read whose MiniHeap
      // address was recycled into a new attachment of ours.
      if (V.contains(Ptr)) {
        V.free(Ptr);
        LastFreed = &V;
        return;
      }
      break;
    }
  }
  Global->free(Ptr);
}

} // namespace mesh
