//===- ThreadLocalHeap.h - Per-thread allocation fast path ------*- C++ -*-===//
///
/// \file
/// Thread-local heaps (paper Section 4.3): one shuffle vector per size
/// class plus a thread-local RNG. malloc and free requests start here
/// and complete without locks in the common case; large allocations and
/// non-local frees forward to the global heap. Shuffle-vector refills
/// take only the owning size class's global-heap shard lock, so
/// refills of different classes (and of the same class on behalf of
/// different threads, when spans are binned) scale independently.
///
/// free() dispatches in O(1): a last-freed-vector cache catches repeat
/// frees with zero atomics, and everything else takes one lock-free
/// page-table read plus an is-it-mine check against the MiniHeap's
/// attachedOwner tag — no scan over the size classes.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_THREADLOCALHEAP_H
#define MESH_CORE_THREADLOCALHEAP_H

#include "core/GlobalHeap.h"
#include "core/ShuffleVector.h"
#include "core/SizeClass.h"
#include "support/Rng.h"

#include <cstddef>

namespace mesh {

class ThreadLocalHeap {
public:
  ThreadLocalHeap(GlobalHeap *Global, uint64_t Seed);
  ~ThreadLocalHeap();

  ThreadLocalHeap(const ThreadLocalHeap &) = delete;
  ThreadLocalHeap &operator=(const ThreadLocalHeap &) = delete;

  /// Allocates \p Bytes: pops from the size class's shuffle vector,
  /// refilling it from the global heap when exhausted; requests larger
  /// than 16 KiB forward to the global heap (Figure 4 pseudocode).
  void *malloc(size_t Bytes);

  /// Frees \p Ptr: the owning MiniHeap is found through the page table
  /// (epoch-protected, one read); if it is attached to this thread the
  /// free completes in its shuffle vector, otherwise it forwards to the
  /// global heap (Figure 4 pseudocode).
  void free(void *Ptr);

  /// Detaches every shuffle vector, returning all attached spans to the
  /// global heap. Called on thread exit and by tests.
  void releaseAll();

  Rng &rng() { return Random; }

private:
  ShuffleVector Vectors[kNumSizeClasses];
  /// Dense mirror of the attached set (kept in lock-step with each
  /// MiniHeap's attachedOwner tag — the tag records ownership on the
  /// MiniHeap itself, this array is its cache-friendly thread-local
  /// image): the is-it-mine check after the page-table read is a
  /// pointer-equality scan over these three cache lines — no atomics
  /// and, crucially, no dereference of the (possibly concurrently
  /// retiring) MiniHeap, so the local fast path needs no epoch
  /// section. A stale page-table read that aliases a recycled
  /// MiniHeap address is caught by the vector's span-range check
  /// before anything is freed into it.
  MiniHeap *AttachedMH[kNumSizeClasses] = {};
  /// Number of non-null AttachedMH entries; lets a thread that only
  /// frees (a consumer in a producer/consumer pipeline) skip the
  /// is-it-mine scan entirely.
  int AttachedCount = 0;
  /// The vector that served the most recent local free; repeat frees
  /// into the same span skip even the page-table read.
  ShuffleVector *LastFreed = nullptr;
  GlobalHeap *Global;
  Rng Random;
};

} // namespace mesh

#endif // MESH_CORE_THREADLOCALHEAP_H
