//===- ThreadLocalHeap.h - Per-thread allocation fast path ------*- C++ -*-===//
///
/// \file
/// Thread-local heaps (paper Section 4.3): one shuffle vector per size
/// class plus a thread-local RNG. malloc and free requests start here
/// and complete without locks or atomic operations in the common case;
/// large allocations and non-local frees forward to the global heap.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_THREADLOCALHEAP_H
#define MESH_CORE_THREADLOCALHEAP_H

#include "core/GlobalHeap.h"
#include "core/ShuffleVector.h"
#include "core/SizeClass.h"
#include "support/Rng.h"

#include <cstddef>

namespace mesh {

class ThreadLocalHeap {
public:
  ThreadLocalHeap(GlobalHeap *Global, uint64_t Seed);
  ~ThreadLocalHeap();

  ThreadLocalHeap(const ThreadLocalHeap &) = delete;
  ThreadLocalHeap &operator=(const ThreadLocalHeap &) = delete;

  /// Allocates \p Bytes: pops from the size class's shuffle vector,
  /// refilling it from the global heap when exhausted; requests larger
  /// than 16 KiB forward to the global heap (Figure 4 pseudocode).
  void *malloc(size_t Bytes);

  /// Frees \p Ptr: handled by the owning shuffle vector when the
  /// pointer lies in one of this thread's attached spans, otherwise
  /// passed to the global heap (Figure 4 pseudocode).
  void free(void *Ptr);

  /// Detaches every shuffle vector, returning all attached spans to the
  /// global heap. Called on thread exit and by tests.
  void releaseAll();

  Rng &rng() { return Random; }

private:
  ShuffleVector Vectors[kNumSizeClasses];
  GlobalHeap *Global;
  Rng Random;
};

} // namespace mesh

#endif // MESH_CORE_THREADLOCALHEAP_H
