//===- WriteBarrier.cpp - mprotect/SIGSEGV write barrier -------------------===//

#include "core/WriteBarrier.h"

#include "support/Log.h"
#include "support/SpinLock.h"

#include <cassert>
#include <csignal>
#include <cstring>
#include <new>
#include <sched.h>

namespace mesh {

namespace {

struct sigaction PreviousAction;

void forwardToPrevious(int Sig, siginfo_t *Info, void *Ctx) {
  if (PreviousAction.sa_flags & SA_SIGINFO) {
    if (PreviousAction.sa_sigaction != nullptr) {
      PreviousAction.sa_sigaction(Sig, Info, Ctx);
      return;
    }
  } else if (PreviousAction.sa_handler != SIG_IGN &&
             PreviousAction.sa_handler != SIG_DFL &&
             PreviousAction.sa_handler != nullptr) {
    PreviousAction.sa_handler(Sig);
    return;
  }
  // Restore default disposition and re-raise so the process dies with
  // the usual SIGSEGV semantics (core dump, correct si_addr).
  signal(SIGSEGV, SIG_DFL);
  raise(SIGSEGV);
}

void segvHandler(int Sig, siginfo_t *Info, void *Ctx) {
  if (Info != nullptr &&
      WriteBarrier::instance().handleFault(Info->si_addr))
    return; // Retry the faulting instruction.
  forwardToPrevious(Sig, Info, Ctx);
}

} // namespace

WriteBarrier &WriteBarrier::instance() {
  alignas(WriteBarrier) static char Storage[sizeof(WriteBarrier)];
  static WriteBarrier *Singleton = new (Storage) WriteBarrier();
  return *Singleton;
}

void WriteBarrier::ensureHandlerInstalled() {
  bool Expected = false;
  if (!HandlerInstalled.compare_exchange_strong(Expected, true))
    return;
  struct sigaction Action;
  memset(&Action, 0, sizeof(Action));
  Action.sa_sigaction = segvHandler;
  Action.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&Action.sa_mask);
  if (sigaction(SIGSEGV, &Action, &PreviousAction) != 0)
    fatalError("failed to install write-barrier SIGSEGV handler");
}

void WriteBarrier::registerArena(const void *Base, size_t Bytes) {
  const auto B = reinterpret_cast<uintptr_t>(Base);
  for (int I = 0; I < kMaxArenas; ++I) {
    uintptr_t Expected = 0;
    if (ArenaBegin[I].compare_exchange_strong(Expected, B)) {
      ArenaEnd[I].store(B + Bytes, std::memory_order_release);
      return;
    }
  }
  fatalError("too many arenas registered with the write barrier");
}

void WriteBarrier::unregisterArena(const void *Base) {
  const auto B = reinterpret_cast<uintptr_t>(Base);
  for (int I = 0; I < kMaxArenas; ++I) {
    if (ArenaBegin[I].load(std::memory_order_acquire) == B) {
      ArenaEnd[I].store(0, std::memory_order_release);
      ArenaBegin[I].store(0, std::memory_order_release);
      return;
    }
  }
}

bool WriteBarrier::inRegisteredArena(uintptr_t Addr) const {
  for (int I = 0; I < kMaxArenas; ++I) {
    const uintptr_t Begin = ArenaBegin[I].load(std::memory_order_acquire);
    if (Begin == 0)
      continue;
    if (Addr >= Begin && Addr < ArenaEnd[I].load(std::memory_order_acquire))
      return true;
  }
  return false;
}

void WriteBarrier::beginEpoch() {
  const uint64_t Old = Epoch.fetch_add(1, std::memory_order_acq_rel);
  assert((Old & 1) == 0 && "nested mesh epochs are not allowed");
  (void)Old;
}

void WriteBarrier::addProtectedRange(const void *Begin, size_t Bytes) {
  assert(epochActive() && "ranges may only be added inside an epoch");
  const uint32_t I = NumRanges.load(std::memory_order_relaxed);
  if (I >= kMaxRanges)
    fatalError("write barrier range table overflow");
  RangeBegin[I].store(reinterpret_cast<uintptr_t>(Begin),
                      std::memory_order_relaxed);
  RangeEnd[I].store(reinterpret_cast<uintptr_t>(Begin) + Bytes,
                    std::memory_order_relaxed);
  NumRanges.store(I + 1, std::memory_order_release);
}

void WriteBarrier::endEpoch() {
  NumRanges.store(0, std::memory_order_release);
  const uint64_t Old = Epoch.fetch_add(1, std::memory_order_acq_rel);
  assert((Old & 1) == 1 && "endEpoch without beginEpoch");
  (void)Old;
}

bool WriteBarrier::handleFault(const void *AddrPtr) {
  const auto Addr = reinterpret_cast<uintptr_t>(AddrPtr);
  if (!inRegisteredArena(Addr))
    return false;

  // A fault inside an arena is barrier traffic if a mesh epoch is (or
  // was just) active. There is an unavoidable race where the faulting
  // write landed while a span was protected but the epoch ended before
  // this handler ran; in that case the mapping is already writable
  // again and retrying succeeds. Bound the retries so a genuine crash
  // inside the arena (e.g. a write to a PROT_READ page unrelated to
  // meshing) cannot loop forever.
  static thread_local uintptr_t LastFaultAddr = 0;
  static thread_local unsigned FaultRetries = 0;
  if (Addr == LastFaultAddr) {
    if (++FaultRetries > 128)
      return false;
  } else {
    LastFaultAddr = Addr;
    FaultRetries = 0;
  }

  // Wait out the current epoch (if any): by the time it ends, every
  // victim span has been remapped read-write onto the keeper.
  const uint64_t Seen = Epoch.load(std::memory_order_acquire);
  if ((Seen & 1) != 0)
    while (Epoch.load(std::memory_order_acquire) == Seen)
      sched_yield();
  return true;
}

} // namespace mesh
