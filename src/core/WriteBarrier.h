//===- WriteBarrier.h - mprotect/SIGSEGV write barrier ----------*- C++ -*-===//
///
/// \file
/// The concurrency mechanism from paper Section 4.5.2. Meshing runs
/// without stopping the world; two invariants hold throughout:
/// concurrent *reads* of objects being relocated are always correct
/// (mmap's atomic remap semantics), and objects are never *written*
/// while being relocated. The second is enforced here: before copying,
/// the mesher marks the source span read-only; a concurrent writer
/// faults into our SIGSEGV handler, which waits for the mesh epoch to
/// finish and then lets the CPU re-execute the write against the fully
/// relocated object.
///
/// The barrier is a process-wide singleton because signal dispositions
/// are process-wide. Faults at addresses outside any registered arena
/// (or inside one but unrelated to meshing, after a bounded number of
/// retries) are forwarded to the previously installed handler.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_CORE_WRITEBARRIER_H
#define MESH_CORE_WRITEBARRIER_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mesh {

class WriteBarrier {
public:
  static WriteBarrier &instance();

  /// Installs the SIGSEGV handler (idempotent).
  void ensureHandlerInstalled();

  /// Declares [\p Base, \p Base + \p Bytes) as a Mesh arena; faults in
  /// this range during a mesh epoch are barrier traffic.
  void registerArena(const void *Base, size_t Bytes);
  void unregisterArena(const void *Base);

  /// Begins a mesh epoch. Exactly one epoch may be active (the caller
  /// holds the global heap lock).
  void beginEpoch();

  /// Publishes a protected source range for the current epoch.
  void addProtectedRange(const void *Begin, size_t Bytes);

  /// Ends the epoch and releases all waiting writers.
  void endEpoch();

  /// Signal-handler entry: returns true if the fault at \p Addr was
  /// barrier traffic and has been waited out (caller should return and
  /// retry the instruction), false if it should be treated as a real
  /// crash.
  bool handleFault(const void *Addr);

  /// True while a mesh epoch is active (test hook).
  bool epochActive() const {
    return (Epoch.load(std::memory_order_acquire) & 1) != 0;
  }

private:
  WriteBarrier() = default;

  static constexpr int kMaxArenas = 16;
  static constexpr int kMaxRanges = 64;

  bool inRegisteredArena(uintptr_t Addr) const;

  std::atomic<uintptr_t> ArenaBegin[kMaxArenas] = {};
  std::atomic<uintptr_t> ArenaEnd[kMaxArenas] = {};

  std::atomic<uintptr_t> RangeBegin[kMaxRanges] = {};
  std::atomic<uintptr_t> RangeEnd[kMaxRanges] = {};
  std::atomic<uint32_t> NumRanges{0};

  /// Odd while an epoch is active.
  std::atomic<uint64_t> Epoch{0};
  std::atomic<bool> HandlerInstalled{false};
};

} // namespace mesh

#endif // MESH_CORE_WRITEBARRIER_H
