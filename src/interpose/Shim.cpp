//===- Shim.cpp - malloc/free interposition ---------------------------------===//
///
/// \file
/// Strong definitions of the libc allocation entry points over the
/// process-default Mesh runtime (paper Section 4: "Mesh interposes on
/// memory management operations"). Built two ways:
///
///  - libmesh_shim_static.a: linked into a binary, the symbols replace
///    libc's at link time (used by the interposition integration test);
///  - libmesh.so: loaded via LD_PRELOAD, the dynamic linker resolves
///    malloc/free here before libc.
///
/// Reentrancy: creating a thread's local heap may itself trigger an
/// allocation inside libc (e.g. pthread_setspecific's second-level
/// table). A thread-local guard detects this and serves such nested
/// requests directly from the global heap, which needs no thread state.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "mesh/mesh.h"
#include "support/MathUtils.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

namespace {

// initial-exec TLS: guaranteed not to allocate on access, which a
// dynamically-allocated TLS block could.
__thread bool Busy __attribute__((tls_model("initial-exec"))) = false;

//===----------------------------------------------------------------------===//
// MESH_DEBUG_SHIM=1: a write(2)-based call trace of every shim entry
// point, for debugging preload bring-up crashes (this is the tool that
// pinned the python3 startup segfault on the fork protocol). Each entry
// is (a) recorded in a fixed in-memory ring — readable from a debugger
// or a core dump when stderr is lost — and (b) written directly to
// stderr with write(2) (no printf, no allocation, async-signal-safe),
// so the last line before a crash names the faulting entry point and
// its size argument. Off (one relaxed atomic load per call) unless the
// environment variable is set to exactly "1".
//===----------------------------------------------------------------------===//

struct ShimTraceEntry {
  /// m=malloc c=calloc r=realloc R=reallocarray p=posix_memalign
  /// a=aligned_alloc/memalign/valloc/pvalloc f=free u=usable_size
  char Tag;
  /// Requested bytes (total, for calloc/reallocarray) — except f/u,
  /// which record the pointer argument instead.
  size_t Arg;
};

constexpr size_t kShimTraceRing = 64;
ShimTraceEntry ShimTrace[kShimTraceRing];
std::atomic<size_t> ShimTraceIdx{0};

// -1 unknown, 0 off, 1 on. Probed lazily on the first shim call:
// getenv neither allocates nor takes locks, and the shim has no safe
// static-initialization window of its own to probe it in.
std::atomic<int> ShimTraceEnabled{-1};

bool shimTraceOn() {
  int State = ShimTraceEnabled.load(std::memory_order_relaxed);
  if (State < 0) {
    const char *Env = std::getenv("MESH_DEBUG_SHIM");
    State = (Env != nullptr && Env[0] == '1' && Env[1] == '\0') ? 1 : 0;
    ShimTraceEnabled.store(State, std::memory_order_relaxed);
  }
  return State == 1;
}

void shimTrace(char Tag, size_t Arg) {
  if (!shimTraceOn())
    return;
  const size_t Idx =
      ShimTraceIdx.fetch_add(1, std::memory_order_relaxed) % kShimTraceRing;
  ShimTrace[Idx].Tag = Tag;
  ShimTrace[Idx].Arg = Arg;
  // "mesh-shim: <tag> <hex-arg>\n", hand-formatted.
  char Buf[32];
  size_t Off = 0;
  memcpy(Buf + Off, "mesh-shim: ", 11);
  Off += 11;
  Buf[Off++] = Tag;
  Buf[Off++] = ' ';
  bool Sig = false;
  for (int Shift = 60; Shift >= 0; Shift -= 4) {
    const unsigned Nib = (Arg >> Shift) & 0xF;
    if (Nib != 0)
      Sig = true;
    if (Sig || Shift == 0)
      Buf[Off++] = static_cast<char>(Nib < 10 ? '0' + Nib : 'a' + Nib - 10);
  }
  Buf[Off++] = '\n';
  ssize_t Ignored = write(2, Buf, Off);
  (void)Ignored;
}

void *shimMalloc(size_t Bytes) {
  mesh::Runtime &R = mesh::defaultRuntime();
  void *Ptr;
  if (Busy) {
    Ptr = R.global().largeAlloc(Bytes == 0 ? 1 : Bytes);
  } else {
    Busy = true;
    Ptr = R.malloc(Bytes);
    Busy = false;
  }
  // POSIX contract: a failed allocation sets errno (the runtime layers
  // only return nullptr; the libc surface is where errno belongs).
  if (Ptr == nullptr)
    errno = ENOMEM;
  return Ptr;
}

void shimFree(void *Ptr) {
  if (Ptr == nullptr)
    return;
  mesh::Runtime &R = mesh::defaultRuntime();
  if (Busy) {
    R.global().free(Ptr);
    return;
  }
  Busy = true;
  R.free(Ptr);
  Busy = false;
}

} // namespace

extern "C" {

void *malloc(size_t Bytes) {
  shimTrace('m', Bytes);
  return shimMalloc(Bytes);
}

void free(void *Ptr) {
  shimTrace('f', reinterpret_cast<size_t>(Ptr));
  shimFree(Ptr);
}

void *calloc(size_t Count, size_t Size) {
  if (Count != 0 && Size > SIZE_MAX / Count) {
    shimTrace('c', SIZE_MAX); // overflowing request; logged saturated
    errno = ENOMEM;
    return nullptr;
  }
  const size_t Bytes = Count * Size;
  shimTrace('c', Bytes);
  mesh::Runtime &R = mesh::defaultRuntime();
  void *Ptr;
  if (Busy) {
    // Nested request from heap setup: serve it directly and zero it.
    Ptr = R.global().largeAlloc(Bytes == 0 ? 1 : Bytes);
    if (Ptr != nullptr)
      memset(Ptr, 0, Bytes);
  } else {
    Busy = true;
    // Runtime::calloc skips the memset for large allocations on
    // pristine (never-dirtied) spans — those memfd pages are already
    // zero.
    Ptr = R.calloc(Count, Size);
    Busy = false;
  }
  if (Ptr == nullptr)
    errno = ENOMEM;
  return Ptr;
}

void *realloc(void *Ptr, size_t Bytes) {
  shimTrace('r', Bytes);
  if (Ptr == nullptr)
    return shimMalloc(Bytes);
  if (Bytes == 0) {
    shimFree(Ptr);
    return nullptr;
  }
  const size_t Usable = mesh::defaultRuntime().usableSize(Ptr);
  if (Usable >= Bytes && Bytes >= Usable / 2)
    return Ptr;
  void *Fresh = shimMalloc(Bytes);
  if (Fresh == nullptr)
    return nullptr;
  memcpy(Fresh, Ptr, Bytes < Usable ? Bytes : Usable);
  shimFree(Ptr);
  return Fresh;
}

void *reallocarray(void *Ptr, size_t Count, size_t Size) {
  if (Count != 0 && Size > SIZE_MAX / Count) {
    shimTrace('R', SIZE_MAX); // overflowing request; logged saturated
    errno = ENOMEM;
    return nullptr;
  }
  shimTrace('R', Count * Size);
  return realloc(Ptr, Count * Size);
}

int posix_memalign(void **Out, size_t Alignment, size_t Bytes) {
  shimTrace('p', Bytes);
  if (Busy) {
    // Nested request from heap setup: large allocations are page
    // aligned, which satisfies every supportable alignment. (Out is
    // declared nonnull by glibc; no null check here.)
    if (!mesh::isPowerOfTwo(Alignment) ||
        Alignment % sizeof(void *) != 0 || Alignment > mesh::kPageSize)
      return EINVAL;
    *Out = mesh::defaultRuntime().global().largeAlloc(Bytes == 0 ? 1
                                                                 : Bytes);
    return *Out == nullptr ? ENOMEM : 0;
  }
  Busy = true;
  const int Rc = mesh::defaultRuntime().posixMemalign(Out, Alignment, Bytes);
  Busy = false;
  return Rc;
}

void *aligned_alloc(size_t Alignment, size_t Bytes) {
  shimTrace('a', Bytes);
  // C11/glibc semantics: any power-of-two alignment, including ones
  // below sizeof(void*) that posix_memalign rejects — every Mesh slot
  // is at least 16-byte aligned, so small alignments round up freely.
  if (!mesh::isPowerOfTwo(Alignment)) {
    errno = EINVAL;
    return nullptr;
  }
  if (Alignment < sizeof(void *))
    Alignment = sizeof(void *);
  void *Out = nullptr;
  const int Rc = posix_memalign(&Out, Alignment, Bytes);
  if (Rc != 0) {
    errno = Rc;
    return nullptr;
  }
  return Out;
}

void *memalign(size_t Alignment, size_t Bytes) {
  return aligned_alloc(Alignment, Bytes);
}

void *valloc(size_t Bytes) { return aligned_alloc(mesh::kPageSize, Bytes); }

void *pvalloc(size_t Bytes) {
  return aligned_alloc(mesh::kPageSize,
                       mesh::roundUpPow2Multiple(Bytes, mesh::kPageSize));
}

size_t malloc_usable_size(void *Ptr) {
  shimTrace('u', reinterpret_cast<size_t>(Ptr));
  return mesh::defaultRuntime().usableSize(Ptr);
}

int malloc_trim(size_t) {
  // glibc contract: nonzero iff memory was actually returned to the
  // system. Dirty-page flushing is exactly Mesh's deferred give-back.
  return mesh::defaultRuntime().global().flushDirtyPages() > 0 ? 1 : 0;
}

} // extern "C"
