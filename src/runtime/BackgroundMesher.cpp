//===- BackgroundMesher.cpp - Dedicated meshing thread ----------------------===//

#include "runtime/BackgroundMesher.h"

#include "support/Log.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <ctime>

namespace mesh {

namespace {

timespec deadlineIn(uint64_t Ms) {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  Ts.tv_sec += static_cast<time_t>(Ms / 1000);
  Ts.tv_nsec += static_cast<long>((Ms % 1000) * 1000000ULL);
  if (Ts.tv_nsec >= 1000000000L) {
    Ts.tv_nsec -= 1000000000L;
    ++Ts.tv_sec;
  }
  return Ts;
}

} // namespace

BackgroundMesher::BackgroundMesher(GlobalHeap &Heap, uint64_t WakeMs,
                                   const PressureConfig &Cfg,
                                   SpinLock *LifecycleLock)
    : Heap(Heap), Source(Heap), Monitor(Source, Cfg),
      WakeMs(WakeMs == 0 ? 1 : WakeMs), LifecycleLock(LifecycleLock) {
  initMonotonicCondVar();
}

void BackgroundMesher::initMonotonicCondVar() {
  // The waits must track CLOCK_MONOTONIC: a wall-clock jump (ntp step,
  // suspend) must not stall or storm the mesher.
  pthread_condattr_t Attr;
  pthread_condattr_init(&Attr);
  pthread_condattr_setclock(&Attr, CLOCK_MONOTONIC);
  pthread_cond_init(&CV, &Attr);
  pthread_condattr_destroy(&Attr);
}

BackgroundMesher::~BackgroundMesher() {
  stop();
  pthread_cond_destroy(&CV);
}

void *BackgroundMesher::threadEntry(void *Arg) {
#ifdef __linux__
  pthread_setname_np(pthread_self(), "mesh-bg");
#endif
  static_cast<BackgroundMesher *>(Arg)->run();
  return nullptr;
}

void BackgroundMesher::start() {
  if (Running.load(std::memory_order_acquire))
    return;
  {
    M.lock();
    StopFlag = false;
    M.unlock();
  }
  const int Rc = pthread_create(&Thread, nullptr, threadEntry, this);
  if (Rc != 0) {
    // Out of threads (or a locked-down sandbox): stay synchronous. An
    // unregistered sink makes maybeMesh() fall back to inline passes
    // by itself — degraded, never broken. The explicit clear matters
    // on the deferred fork-restart path, where the sink was inherited
    // registered; on initial start it is a no-op. (pthread_create
    // returns the error; it does not set errno.)
    Heap.setMeshRequestSink(nullptr);
    logWarning("background mesher: pthread_create failed (error %d); "
               "falling back to synchronous meshing",
               Rc);
    return;
  }
  Running.store(true, std::memory_order_release);
  Heap.setMeshRequestSink(this);
}

void BackgroundMesher::stop() {
  // Block further deferred fork restarts first: a racing poke that
  // already won the RestartPending exchange may still run start(), but
  // no new one can begin after this store.
  RestartPending.store(false, std::memory_order_relaxed);
  // Two clear+drain rounds. Round one waits out every mutator that was
  // inside a requestMeshPass() dispatch when the sink came down — one
  // of those pokes may itself have been the deferred fork restart,
  // whose start() re-registers the sink. Round two clears that
  // re-registration and waits out any poke that loaded it. With
  // RestartPending down and all dispatches epoch-drained, no third
  // registration can appear, so on return nothing can still be (or
  // ever again be) executing on this object through the heap.
  for (int Round = 0; Round < 2; ++Round) {
    Heap.setMeshRequestSink(nullptr);
    Heap.synchronizeMeshRequestSink();
  }
  if (!Running.load(std::memory_order_acquire))
    return;
  M.lock();
  StopFlag = true;
  pthread_cond_signal(&CV);
  M.unlock();
  pthread_join(Thread, nullptr);
  Running.store(false, std::memory_order_release);
}

void BackgroundMesher::quiesceForFork() {
  WasRunningBeforeFork = Running.load(std::memory_order_acquire);
  if (!WasRunningBeforeFork)
    return;
  // Join, but keep the sink registered: the fork window is tiny, and a
  // poke that lands in it just leaves the request flag set for the
  // restarted thread to honor. A poker can therefore own M at the fork
  // instant — harmless in the parent (that thread lives on and
  // releases), handled in the child by re-initializing M and CV in
  // resumeAfterForkChild() before anything there can touch them.
  M.lock();
  StopFlag = true;
  pthread_cond_signal(&CV);
  M.unlock();
  pthread_join(Thread, nullptr);
  Running.store(false, std::memory_order_release);
}

void BackgroundMesher::resumeAfterForkParent() {
  if (!WasRunningBeforeFork)
    return;
  WasRunningBeforeFork = false;
  // Our own thread was joined pre-fork; any mutator that held M across
  // the fork window is still alive here and releases it normally, so
  // start() can take M as usual.
  start();
}

void BackgroundMesher::resumeAfterForkChild() {
  // A mutator inside requestMeshPass() may have owned M at the fork
  // instant; that thread does not exist here, so the child would
  // deadlock on its first use of M. Exactly one thread exists in the
  // child, so re-initializing both primitives over the inherited state
  // is safe — the standard atfork recovery for pthread objects.
  M.reinitAfterFork();
  initMonotonicCondVar();
  WasRunningBeforeFork = false;
  // pthread_create is not async-signal-safe, and POSIX guarantees only
  // async-signal-safe functions in the forked child of a multithreaded
  // process. Defer the restart to the first post-fork poke, which runs
  // in ordinary thread context (fork-then-exec children never pay for
  // a thread they would not use). Until then the child's heap is
  // poke-driven only; the inherited RequestFlag is honored by the
  // restarted thread's first loop iteration.
  //
  // Re-arm off "the heap still points at us", not WasRunningBeforeFork:
  // a fork can land between a poke's RestartPending exchange and its
  // start() (the poke blocks on LifecycleLock, held by prepare()), in
  // which case this fork quiesced with Running=false and an unconsumed
  // restart obligation — the registered sink is the durable witness of
  // that obligation in every such interleaving. If no thread was ever
  // started (or start() failed), the sink is not registered and this
  // stays down.
  if (Heap.meshRequestSink() == this)
    RestartPending.store(true, std::memory_order_release);
}

void BackgroundMesher::requestMeshPass() {
  // Deferred fork restart: the child's atfork handler could not spawn
  // a thread (not async-signal-safe there); the first post-fork poke —
  // ordinary context — does it instead. The exchange elects exactly
  // one restarter among racing pokes; LifecycleLock (the fork registry
  // lock) excludes a concurrent fork's quiesce, so a fork either
  // happens before the restart (the child re-arms via the registered
  // sink) or sees a fully started thread it can join.
  if (RestartPending.load(std::memory_order_relaxed) &&
      RestartPending.exchange(false, std::memory_order_acq_rel)) {
    if (LifecycleLock != nullptr) {
      SpinLockGuard Guard(*LifecycleLock);
      start();
    } else {
      start();
    }
  }
  // Fast path: a request is already pending; the thread will fold this
  // trigger into the pass it is about to run.
  if (Requested.load(std::memory_order_relaxed))
    return;
  if (Requested.exchange(true, std::memory_order_acq_rel))
    return;
  Requests.fetch_add(1, std::memory_order_relaxed);
  M.lock();
  RequestFlag = true;
  pthread_cond_signal(&CV);
  M.unlock();
}

void BackgroundMesher::run() {
  for (;;) {
    bool Poked = false;
    {
      M.lock();
      if (!StopFlag && !RequestFlag) {
        timespec Deadline = deadlineIn(WakeMs);
        // A spurious wake is indistinguishable from (and as harmless
        // as) an early timer wake: the loop body re-derives everything
        // from flags and fresh samples.
        pthread_cond_timedwait(&CV, M.native(), &Deadline);
      }
      if (StopFlag) {
        M.unlock();
        return;
      }
      Poked = RequestFlag;
      RequestFlag = false;
      Requested.store(false, std::memory_order_release);
      M.unlock();
    }
    const uint64_t WakeCount =
        Wakeups.fetch_add(1, std::memory_order_relaxed) + 1;
    telemetry::event(telemetry::EventType::kBgWake, Poked ? 1 : 0,
                     WakeCount);
    if (Poked) {
      if (Heap.backgroundMaybeMesh())
        PokePasses.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Timer wake: sample pressure. This is the only path an idle
      // heap ever takes — nothing allocates, so nothing pokes.
      const PressureSample S = Monitor.sample();
      publishSample(S);
      if (Monitor.underPressure(S) && Heap.backgroundPressureMesh())
        PressurePasses.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void BackgroundMesher::publishSample(const PressureSample &S) {
  SampleCommitted.store(S.Footprint.CommittedBytes,
                        std::memory_order_relaxed);
  SampleInUse.store(S.Footprint.InUseBytes, std::memory_order_relaxed);
  SampleSpan.store(S.Footprint.SpanBytes, std::memory_order_relaxed);
  SampleDirty.store(S.Footprint.DirtyBytes, std::memory_order_relaxed);
  SampleRss.store(S.RssBytes, std::memory_order_relaxed);
  SampleFragPpm.store(S.FragPpm, std::memory_order_relaxed);
}

PressureSample BackgroundMesher::lastSample() const {
  PressureSample S;
  S.Footprint.CommittedBytes =
      SampleCommitted.load(std::memory_order_relaxed);
  S.Footprint.InUseBytes = SampleInUse.load(std::memory_order_relaxed);
  S.Footprint.SpanBytes = SampleSpan.load(std::memory_order_relaxed);
  S.Footprint.DirtyBytes = SampleDirty.load(std::memory_order_relaxed);
  S.RssBytes = SampleRss.load(std::memory_order_relaxed);
  S.FragPpm = SampleFragPpm.load(std::memory_order_relaxed);
  return S;
}

} // namespace mesh
