//===- BackgroundMesher.cpp - Dedicated meshing thread ----------------------===//

#include "runtime/BackgroundMesher.h"

#include "support/Log.h"

#include <cerrno>
#include <ctime>

namespace mesh {

namespace {

timespec deadlineIn(uint64_t Ms) {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  Ts.tv_sec += static_cast<time_t>(Ms / 1000);
  Ts.tv_nsec += static_cast<long>((Ms % 1000) * 1000000ULL);
  if (Ts.tv_nsec >= 1000000000L) {
    Ts.tv_nsec -= 1000000000L;
    ++Ts.tv_sec;
  }
  return Ts;
}

} // namespace

BackgroundMesher::BackgroundMesher(GlobalHeap &Heap, uint64_t WakeMs,
                                   const PressureConfig &Cfg)
    : Heap(Heap), Source(Heap), Monitor(Source, Cfg),
      WakeMs(WakeMs == 0 ? 1 : WakeMs) {
  // The waits below must track CLOCK_MONOTONIC: a wall-clock jump (ntp
  // step, suspend) must not stall or storm the mesher.
  pthread_condattr_t Attr;
  pthread_condattr_init(&Attr);
  pthread_condattr_setclock(&Attr, CLOCK_MONOTONIC);
  pthread_cond_init(&CV, &Attr);
  pthread_condattr_destroy(&Attr);
}

BackgroundMesher::~BackgroundMesher() {
  stop();
  pthread_cond_destroy(&CV);
}

void *BackgroundMesher::threadEntry(void *Arg) {
#ifdef __linux__
  pthread_setname_np(pthread_self(), "mesh-bg");
#endif
  static_cast<BackgroundMesher *>(Arg)->run();
  return nullptr;
}

void BackgroundMesher::start() {
  if (Running.load(std::memory_order_acquire))
    return;
  {
    pthread_mutex_lock(&M);
    StopFlag = false;
    pthread_mutex_unlock(&M);
  }
  const int Rc = pthread_create(&Thread, nullptr, threadEntry, this);
  if (Rc != 0) {
    // Out of threads (or a locked-down sandbox): stay synchronous. Not
    // registering the sink makes maybeMesh() fall back to inline
    // passes by itself — degraded, never broken. (pthread_create
    // returns the error; it does not set errno.)
    logWarning("background mesher: pthread_create failed (error %d); "
               "falling back to synchronous meshing",
               Rc);
    return;
  }
  Running.store(true, std::memory_order_release);
  Heap.setMeshRequestSink(this);
}

void BackgroundMesher::stop() {
  if (!Running.load(std::memory_order_acquire))
    return;
  // Unregister first so no new poke targets this object while it winds
  // down; pokes already past the load simply set a flag nobody reads.
  Heap.setMeshRequestSink(nullptr);
  pthread_mutex_lock(&M);
  StopFlag = true;
  pthread_cond_signal(&CV);
  pthread_mutex_unlock(&M);
  pthread_join(Thread, nullptr);
  Running.store(false, std::memory_order_release);
}

void BackgroundMesher::quiesceForFork() {
  WasRunningBeforeFork = Running.load(std::memory_order_acquire);
  if (!WasRunningBeforeFork)
    return;
  // Join, but keep the sink registered: the fork window is tiny, and a
  // poke that lands in it just leaves the request flag set for the
  // restarted thread to honor.
  pthread_mutex_lock(&M);
  StopFlag = true;
  pthread_cond_signal(&CV);
  pthread_mutex_unlock(&M);
  pthread_join(Thread, nullptr);
  Running.store(false, std::memory_order_release);
}

void BackgroundMesher::resumeAfterFork() {
  if (!WasRunningBeforeFork)
    return;
  WasRunningBeforeFork = false;
  // The thread was joined pre-fork, so M and CV were quiescent at the
  // fork instant — safe to reuse in the child as-is.
  start();
}

void BackgroundMesher::requestMeshPass() {
  // Fast path: a request is already pending; the thread will fold this
  // trigger into the pass it is about to run.
  if (Requested.load(std::memory_order_relaxed))
    return;
  if (Requested.exchange(true, std::memory_order_acq_rel))
    return;
  Requests.fetch_add(1, std::memory_order_relaxed);
  pthread_mutex_lock(&M);
  RequestFlag = true;
  pthread_cond_signal(&CV);
  pthread_mutex_unlock(&M);
}

void BackgroundMesher::run() {
  for (;;) {
    bool Poked = false;
    {
      pthread_mutex_lock(&M);
      if (!StopFlag && !RequestFlag) {
        timespec Deadline = deadlineIn(WakeMs);
        // A spurious wake is indistinguishable from (and as harmless
        // as) an early timer wake: the loop body re-derives everything
        // from flags and fresh samples.
        pthread_cond_timedwait(&CV, &M, &Deadline);
      }
      if (StopFlag) {
        pthread_mutex_unlock(&M);
        return;
      }
      Poked = RequestFlag;
      RequestFlag = false;
      Requested.store(false, std::memory_order_release);
      pthread_mutex_unlock(&M);
    }
    Wakeups.fetch_add(1, std::memory_order_relaxed);
    if (Poked) {
      if (Heap.backgroundMaybeMesh())
        PokePasses.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Timer wake: sample pressure. This is the only path an idle
      // heap ever takes — nothing allocates, so nothing pokes.
      const PressureSample S = Monitor.sample();
      publishSample(S);
      if (Monitor.underPressure(S) && Heap.backgroundPressureMesh())
        PressurePasses.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void BackgroundMesher::publishSample(const PressureSample &S) {
  SampleCommitted.store(S.Footprint.CommittedBytes,
                        std::memory_order_relaxed);
  SampleInUse.store(S.Footprint.InUseBytes, std::memory_order_relaxed);
  SampleSpan.store(S.Footprint.SpanBytes, std::memory_order_relaxed);
  SampleDirty.store(S.Footprint.DirtyBytes, std::memory_order_relaxed);
  SampleRss.store(S.RssBytes, std::memory_order_relaxed);
  SampleFragPpm.store(S.FragPpm, std::memory_order_relaxed);
}

PressureSample BackgroundMesher::lastSample() const {
  PressureSample S;
  S.Footprint.CommittedBytes =
      SampleCommitted.load(std::memory_order_relaxed);
  S.Footprint.InUseBytes = SampleInUse.load(std::memory_order_relaxed);
  S.Footprint.SpanBytes = SampleSpan.load(std::memory_order_relaxed);
  S.Footprint.DirtyBytes = SampleDirty.load(std::memory_order_relaxed);
  S.RssBytes = SampleRss.load(std::memory_order_relaxed);
  S.FragPpm = SampleFragPpm.load(std::memory_order_relaxed);
  return S;
}

} // namespace mesh
