//===- BackgroundMesher.h - Dedicated meshing thread ------------*- C++ -*-===//
///
/// \file
/// Moves compaction off the application's threads (paper Section 4.5:
/// meshing runs concurrently with the application; our synchronous
/// reproduction instead charged the full pass — the paper's 22 ms-class
/// pause — to whichever mutator tripped the refill trigger).
///
/// One pthread per Runtime, two wake sources:
///
///   - a *poke* (GlobalHeap::maybeMesh via the MeshRequestSink
///     interface): the allocation path's rate-limited trigger, now one
///     atomic flag write + condvar signal instead of a full pass;
///   - the *timer*: every BackgroundWakeMs the pressure monitor samples
///     the heap, and an idle-but-fragmented heap (nothing allocating,
///     so no pokes ever arrive) gets compacted on pressure alone.
///
/// Lifecycle: start() spawns the thread and registers the sink with the
/// heap; stop() unregisters, drains in-flight pokes (epoch
/// synchronize), raises the stop flag and joins. The fork protocol
/// (quiesceForFork/resumeAfterFork{Parent,Child}, driven by Runtime's
/// pthread_atfork handlers) stops the thread *before* fork — so the
/// fork happens with no mesher thread at all and no heap lock held by
/// it. The parent restarts a fresh thread right after fork; the child
/// cannot (pthread_create is not async-signal-safe in the child of a
/// multithreaded process), so it re-initializes the wake mutex and
/// condvar — a mutator inside requestMeshPass() may own the mutex at
/// the fork instant, and that thread does not exist in the child — and
/// defers the restart to its first post-fork poke. All state is inline
/// (pthread primitives, no std::thread) so the lifecycle paths never
/// allocate: they run inside malloc during LD_PRELOAD bring-up and
/// inside atfork handlers.
///
/// Lock ranks: the wake mutex M is leaf-like and disjoint from every
/// heap lock — requestMeshPass() (callers hold no shard locks, per
/// maybeMesh's contract) takes only M; the thread releases M before
/// entering any heap pass, so M never nests with MeshLock/shards/Arena.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_RUNTIME_BACKGROUNDMESHER_H
#define MESH_RUNTIME_BACKGROUNDMESHER_H

#include "core/GlobalHeap.h"
#include "runtime/PressureMonitor.h"
#include "support/Annotations.h"
#include "support/PthreadMutex.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>
#include <pthread.h>

namespace mesh {

class BackgroundMesher final : public MeshRequestSink {
public:
  /// \p WakeMs is the timer interval; \p Cfg the pressure policy.
  /// \p LifecycleLock, when non-null, is held around the deferred
  /// post-fork restart's start() so mesher bring-up cannot interleave
  /// with a concurrent fork's quiesce — Runtime passes its fork
  /// registry lock (the lock prepare() holds for the whole fork
  /// window); standalone/test constructions may pass nullptr.
  BackgroundMesher(GlobalHeap &Heap, uint64_t WakeMs,
                   const PressureConfig &Cfg,
                   SpinLock *LifecycleLock = nullptr);
  ~BackgroundMesher() override;

  BackgroundMesher(const BackgroundMesher &) = delete;
  BackgroundMesher &operator=(const BackgroundMesher &) = delete;

  /// Spawns the thread and registers this mesher as the heap's request
  /// sink. Idempotent.
  void start();

  /// Unregisters the sink, waits out mutators already inside a
  /// requestMeshPass() dispatch (so no call can still be executing on
  /// this object when the caller deletes it), then stops and joins the
  /// thread. Idempotent; safe to call with the thread already stopped.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// MeshRequestSink: called from the allocation path. Sets the request
  /// flag and wakes the thread; returns immediately. The fast path (a
  /// request already pending) is two relaxed loads. Also the home of
  /// the deferred fork restart: the first poke after a fork re-spawns
  /// the thread the child's atfork handler could not.
  void requestMeshPass() override;

  /// Fork protocol. quiesceForFork() joins the thread (remembering
  /// whether it was running) so fork() happens single-threaded with no
  /// mesher state in flight. resumeAfterForkParent() restarts it
  /// directly; resumeAfterForkChild() re-initializes the wake mutex and
  /// condvar (a poking mutator may have owned the mutex at the fork
  /// instant — that thread does not exist in the child) and arranges a
  /// lazy restart on the first post-fork poke, because pthread_create
  /// is not async-signal-safe in the forked child of a multithreaded
  /// process. The sink stays registered across the window — pokes
  /// landing in between just set the flag for the restarted thread.
  void quiesceForFork();
  void resumeAfterForkParent();
  void resumeAfterForkChild();

  /// Observability (mallctl background.* / pressure.*).
  uint64_t wakeups() const { return Wakeups.load(std::memory_order_relaxed); }
  uint64_t requests() const {
    return Requests.load(std::memory_order_relaxed);
  }
  uint64_t pokePasses() const {
    return PokePasses.load(std::memory_order_relaxed);
  }
  uint64_t pressurePasses() const {
    return PressurePasses.load(std::memory_order_relaxed);
  }

  /// The most recent pressure sample, updated on every timer wake.
  /// Torn-free via individual atomics (a sample is advisory anyway).
  PressureSample lastSample() const;

  const PressureMonitor &monitor() const { return Monitor; }

private:
  static void *threadEntry(void *Arg);
  void run();
  void publishSample(const PressureSample &S);
  /// (Re-)initializes CV with CLOCK_MONOTONIC waits; shared by the ctor
  /// and the fork-child recovery path.
  void initMonotonicCondVar();

  GlobalHeap &Heap;
  GlobalHeapFootprintSource Source;
  PressureMonitor Monitor;
  const uint64_t WakeMs;
  SpinLock *const LifecycleLock; ///< See the ctor; may be null.

  pthread_t Thread{};
  PthreadMutex M;
  pthread_cond_t CV; ///< Initialized in the ctor (CLOCK_MONOTONIC waits).
  bool StopFlag MESH_GUARDED_BY(M) = false;
  /// Mirror of Requested, consumed under M by the wake loop.
  bool RequestFlag MESH_GUARDED_BY(M) = false;
  std::atomic<bool> Requested{false}; ///< Lock-free poke fast path.
  std::atomic<bool> Running{false};
  /// Set by the atfork child handler (where spawning a thread is not
  /// async-signal-safe); consumed by the first post-fork poke, which
  /// runs start() from ordinary thread context.
  std::atomic<bool> RestartPending{false};
  bool WasRunningBeforeFork = false;

  std::atomic<uint64_t> Wakeups{0};
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> PokePasses{0};
  std::atomic<uint64_t> PressurePasses{0};

  /// lastSample() mirror, written only by the mesher thread.
  std::atomic<size_t> SampleCommitted{0};
  std::atomic<size_t> SampleInUse{0};
  std::atomic<size_t> SampleSpan{0};
  std::atomic<size_t> SampleDirty{0};
  std::atomic<size_t> SampleRss{0};
  std::atomic<uint32_t> SampleFragPpm{0};
};

} // namespace mesh

#endif // MESH_RUNTIME_BACKGROUNDMESHER_H
