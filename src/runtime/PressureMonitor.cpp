//===- PressureMonitor.cpp - Memory-pressure sampling -----------------------===//

#include "runtime/PressureMonitor.h"

#include "core/GlobalHeap.h"

#include <cstdlib>
#include <fcntl.h>
#include <unistd.h>

namespace mesh {

HeapFootprint GlobalHeapFootprintSource::sampleFootprint() const {
  return Heap.sampleFootprint();
}

uint32_t PressureMonitor::fragPpm(size_t CommittedBytes, size_t InUseBytes) {
  if (CommittedBytes == 0)
    return 0;
  if (InUseBytes >= CommittedBytes)
    return 0;
  const size_t Slack = CommittedBytes - InUseBytes;
  // Committed can exceed 2^44 only for absurd heaps; the intermediate
  // product fits u64 for anything below 16 TiB committed.
  return static_cast<uint32_t>((Slack * 1000000ULL) / CommittedBytes);
}

size_t PressureMonitor::readRssBytes() {
  // /proc/self/statm: "size resident shared text lib data dt", all in
  // pages. Raw open/read/parse — no stdio, no allocation (this runs on
  // the background thread of an allocator, and in tests inside
  // mallctl).
  const int Fd = open("/proc/self/statm", O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return 0;
  char Buf[128];
  const ssize_t N = read(Fd, Buf, sizeof(Buf) - 1);
  close(Fd);
  if (N <= 0)
    return 0;
  Buf[N] = '\0';
  // Skip the first field (total program size), parse the second.
  const char *P = Buf;
  while (*P != '\0' && *P != ' ')
    ++P;
  if (*P != ' ')
    return 0;
  char *End = nullptr;
  const unsigned long long ResidentPages = strtoull(P + 1, &End, 10);
  if (End == P + 1)
    return 0;
  return static_cast<size_t>(ResidentPages) * kPageSize;
}

PressureSample PressureMonitor::sample() const {
  PressureSample S;
  S.Footprint = Source.sampleFootprint();
  S.RssBytes = readRssBytes();
  S.FragPpm = fragPpm(S.Footprint.CommittedBytes, S.Footprint.InUseBytes);
  return S;
}

} // namespace mesh
