//===- PressureMonitor.h - Memory-pressure sampling -------------*- C++ -*-===//
///
/// \file
/// Decides *when* an idle heap deserves a compaction pass. The paper's
/// trigger (Section 4.5) is purely allocation-driven: a rate-limited
/// check on the refill path. That leaves a gap the background runtime
/// closes — a heap that fragments and then goes quiet never allocates
/// again, so nothing ever trips the trigger and the committed pages
/// linger forever.
///
/// The monitor samples a HeapFootprint (committed vs bitmap-live bytes,
/// dirty-page debt) through the FootprintSource interface plus the
/// process RSS from /proc/self/statm, reduces it to one fragmentation
/// ratio, and answers "is this heap worth compacting right now?"
/// against the configured thresholds. The interface exists so the unit
/// test can drive the policy with a fake source; the real source is a
/// one-line adapter over GlobalHeap::sampleFootprint().
///
//===----------------------------------------------------------------------===//

#ifndef MESH_RUNTIME_PRESSUREMONITOR_H
#define MESH_RUNTIME_PRESSUREMONITOR_H

#include "core/MeshStats.h"

#include <cstddef>
#include <cstdint>

namespace mesh {

class GlobalHeap;

/// Anything that can report a heap footprint. Implemented by the
/// GlobalHeap adapter below and by the unit tests' fakes.
class FootprintSource {
public:
  virtual ~FootprintSource() = default;
  virtual HeapFootprint sampleFootprint() const = 0;
};

/// Adapter: the production FootprintSource, one page-table walk per
/// sample (see GlobalHeap::sampleFootprint for cost and locking).
class GlobalHeapFootprintSource final : public FootprintSource {
public:
  explicit GlobalHeapFootprintSource(const GlobalHeap &Heap) : Heap(Heap) {}
  HeapFootprint sampleFootprint() const override;

private:
  const GlobalHeap &Heap;
};

/// Pressure-policy knobs (mirrors MeshOptions::PressureFragThresholdPct
/// and PressureMinCommittedBytes; duplicated so the monitor stays
/// testable without a full options struct).
struct PressureConfig {
  /// Trigger when frag ratio >= this percentage. 0 disables.
  uint32_t FragThresholdPct = 30;
  /// Never trigger below this committed-bytes floor.
  size_t MinCommittedBytes = 8 * 1024 * 1024;
};

/// One evaluated sample: the raw footprint plus the derived signals.
struct PressureSample {
  HeapFootprint Footprint;
  /// Process resident set from /proc/self/statm (0 when unreadable —
  /// non-Linux or a locked-down /proc). Observability only: the
  /// trigger decision uses the heap's own committed counter, which is
  /// not polluted by non-heap mappings.
  size_t RssBytes = 0;
  /// (committed - in_use) / committed in parts-per-million, clamped to
  /// [0, 1e6]. Fixed-point so it travels through the u64 mallctl
  /// surface losslessly.
  uint32_t FragPpm = 0;
};

class PressureMonitor {
public:
  PressureMonitor(const FootprintSource &Source, const PressureConfig &Cfg)
      : Source(Source), Cfg(Cfg) {}

  /// Takes a fresh footprint sample and derives the pressure signals.
  PressureSample sample() const;

  /// The trigger policy: enabled, heap big enough to care, and enough
  /// of its committed memory not backing live objects.
  bool underPressure(const PressureSample &S) const {
    if (Cfg.FragThresholdPct == 0)
      return false;
    if (S.Footprint.CommittedBytes < Cfg.MinCommittedBytes)
      return false;
    return S.FragPpm >= Cfg.FragThresholdPct * 10000u;
  }

  const PressureConfig &config() const { return Cfg; }

  /// Fragmentation in parts-per-million. InUse above Committed (the
  /// attached-span overcount racing a commit update) clamps to 0.
  static uint32_t fragPpm(size_t CommittedBytes, size_t InUseBytes);

  /// Resident-set bytes of this process via /proc/self/statm; 0 when
  /// the read fails. Allocation-free (stack buffer + raw syscalls): it
  /// runs inside an allocator.
  static size_t readRssBytes();

private:
  const FootprintSource &Source;
  PressureConfig Cfg;
};

} // namespace mesh

#endif // MESH_RUNTIME_PRESSUREMONITOR_H
