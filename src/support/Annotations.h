//===- Annotations.h - Clang Thread Safety Analysis shims -------*- C++ -*-===//
///
/// \file
/// Macro shims for Clang's Thread Safety Analysis (TSA) attributes.
///
/// Under Clang the macros expand to `__attribute__((...))` and the
/// `-Wthread-safety` family of warnings turns the lock/epoch discipline
/// documented in DESIGN.md ("Static concurrency contracts") into
/// compile-time errors: every `SpinLock`-guarded field carries
/// MESH_GUARDED_BY, helpers that assume a held lock carry MESH_REQUIRES,
/// and the Epoch reader sections are modeled as a shared capability.
///
/// Under GCC/MSVC every macro expands to nothing, so the annotated tree
/// builds identically to the unannotated one (tier-1 stays gcc-clean).
/// The annotations are asserted to be attribute-only — they must never
/// change codegen, only diagnostics.
///
/// Conventions used across the tree:
///  - Low-level lock primitives (SpinLock::lock et al.) carry
///    MESH_ACQUIRE/MESH_RELEASE; TSA trusts the declaration and does not
///    second-guess the atomic bodies.
///  - RAII guards are MESH_SCOPED_CAPABILITY classes; prefer them over
///    manual lock()/unlock() pairs.
///  - Patterns TSA cannot express (loops over lock arrays, cross-function
///    fork-time holds, conditional locking) use
///    MESH_NO_THREAD_SAFETY_ANALYSIS with a rationale comment at the use
///    site; runtime enforcement for those stays with support/LockRank.h.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_ANNOTATIONS_H
#define MESH_SUPPORT_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MESH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef MESH_THREAD_ANNOTATION
#define MESH_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability (a lock, or a lock-like resource such as
/// an epoch reader section). The string names the capability kind in
/// diagnostics ("mutex", "epoch").
#define MESH_CAPABILITY(x) MESH_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define MESH_SCOPED_CAPABILITY MESH_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while the named capability is held.
#define MESH_GUARDED_BY(x) MESH_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the named capability
/// (the pointer itself may be read freely).
#define MESH_PT_GUARDED_BY(x) MESH_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability exclusively and returns holding it.
#define MESH_ACQUIRE(...) \
  MESH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared (reader) and returns holding it.
#define MESH_ACQUIRE_SHARED(...) \
  MESH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases a held capability (exclusive hold).
#define MESH_RELEASE(...) \
  MESH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases a held capability (shared hold).
#define MESH_RELEASE_SHARED(...) \
  MESH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function releases a capability held in either mode (used on scoped
/// guard destructors, which release whatever the constructor acquired).
#define MESH_RELEASE_GENERIC(...) \
  MESH_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value that means "acquired".
#define MESH_TRY_ACQUIRE(...) \
  MESH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability exclusively; the function neither
/// acquires nor releases it.
#define MESH_REQUIRES(...) \
  MESH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define MESH_REQUIRES_SHARED(...) \
  MESH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself,
/// or would deadlock/violate the lock rank if it were held). This is how
/// the MeshLock → shards → arena rank is encoded as a call-graph property.
#define MESH_EXCLUDES(...) MESH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (e.g. after a fork-time
/// lock-all); informs the analysis without an acquire edge.
#define MESH_ASSERT_CAPABILITY(x) \
  MESH_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability (accessor
/// functions for private locks/epochs).
#define MESH_RETURN_CAPABILITY(x) MESH_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use site
/// must carry a comment naming the inexpressible pattern (lock-array
/// loops, cross-function fork holds, conditional locking) and the
/// runtime check that covers it instead.
#define MESH_NO_THREAD_SAFETY_ANALYSIS \
  MESH_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // MESH_SUPPORT_ANNOTATIONS_H
