//===- Bitmap.cpp - Atomic allocation bitmap --------------------*- C++ -*-===//
///
/// \file
/// Out-of-line anchor for Bitmap (the class itself is header-only).
///
//===----------------------------------------------------------------------===//

#include "support/Bitmap.h"

namespace mesh {

static_assert(Bitmap::kWords * 64 == kMaxObjectsPerSpan,
              "bitmap words must exactly cover the maximum span size");

} // namespace mesh
