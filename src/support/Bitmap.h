//===- Bitmap.h - Atomic allocation bitmap ----------------------*- C++ -*-===//
///
/// \file
/// The per-span allocation bitmap from paper Section 4.1. Each MiniHeap
/// tracks at most 256 objects, so the bitmap is a fixed four-word array.
/// Bits are set and cleared with atomic read-modify-write operations
/// because remote frees may race with the owning thread attaching the
/// span to a shuffle vector.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_BITMAP_H
#define MESH_SUPPORT_BITMAP_H

#include "support/Common.h"

#include <atomic>
#include <cassert>
#include <cstdint>

namespace mesh {

/// Fixed-capacity atomic bitmap covering up to kMaxObjectsPerSpan bits.
///
/// Out-of-range bits (>= bitCount()) are guaranteed to stay zero, which
/// keeps the meshability test a plain word-wise AND regardless of the
/// two spans' object counts.
class Bitmap {
public:
  static constexpr uint32_t kWords = kMaxObjectsPerSpan / 64;

  explicit Bitmap(uint32_t BitCount = kMaxObjectsPerSpan)
      : NumBits(BitCount) {
    assert(BitCount <= kMaxObjectsPerSpan && "bitmap capacity exceeded");
    for (auto &W : Words)
      W.store(0, std::memory_order_relaxed);
  }

  Bitmap(const Bitmap &) = delete;
  Bitmap &operator=(const Bitmap &) = delete;

  uint32_t bitCount() const { return NumBits; }

  /// Atomically sets bit \p I; returns true iff this call changed it
  /// from 0 to 1 (paper Section 4.1: "true if atomically set").
  bool tryToSet(uint32_t I) {
    assert(I < NumBits && "bit index out of range");
    const uint64_t Mask = uint64_t{1} << (I % 64);
    const uint64_t Old =
        Words[I / 64].fetch_or(Mask, std::memory_order_acq_rel);
    return (Old & Mask) == 0;
  }

  /// Atomically clears bit \p I; returns true iff this call changed it
  /// from 1 to 0. A false return indicates a double free.
  bool unset(uint32_t I) {
    assert(I < NumBits && "bit index out of range");
    const uint64_t Mask = uint64_t{1} << (I % 64);
    const uint64_t Old =
        Words[I / 64].fetch_and(~Mask, std::memory_order_acq_rel);
    return (Old & Mask) != 0;
  }

  /// Atomically claims the lowest unset bit at or above \p From,
  /// scanning word-at-a-time (one fetch_or per attempt instead of one
  /// per bit). Returns true and stores the claimed index in \p Index,
  /// or false when no unset bit remains. The single-slot companion of
  /// claimUnsetBits (the refill path's bulk claim) for callers that
  /// reserve incrementally; currently exercised by the unit suite.
  bool setFirstUnset(uint32_t *Index, uint32_t From = 0) {
    assert(Index != nullptr);
    for (uint32_t W = From / 64; W < kWords; ++W) {
      const uint64_t Range = rangeMask(W);
      uint64_t Lead = W == From / 64 ? ~((uint64_t{1} << (From % 64)) - 1)
                                     : ~uint64_t{0};
      for (;;) {
        const uint64_t Free =
            ~Words[W].load(std::memory_order_acquire) & Range & Lead;
        if (Free == 0)
          break;
        const uint32_t Bit = __builtin_ctzll(Free);
        const uint64_t Mask = uint64_t{1} << Bit;
        const uint64_t Old =
            Words[W].fetch_or(Mask, std::memory_order_acq_rel);
        if ((Old & Mask) == 0) {
          *Index = W * 64 + Bit;
          return true;
        }
        // Lost the race for this bit; retry the word without it.
        Lead &= ~Mask;
      }
    }
    return false;
  }

  /// Atomically claims *every* unset bit with one fetch_or per word and
  /// invokes \p Fn(index) for each claimed bit in increasing order.
  /// This is the refill-path primitive: reserving a whole span's free
  /// slots costs kWords read-modify-writes, not one per object.
  /// Returns the number of bits claimed. Bits concurrently cleared by
  /// remote frees after the word is read are simply left unclaimed.
  template <typename Callable> uint32_t claimUnsetBits(Callable Fn) {
    uint32_t Claimed = 0;
    for (uint32_t W = 0; W < kWords; ++W) {
      const uint64_t Range = rangeMask(W);
      if (Range == 0)
        break;
      const uint64_t Free =
          ~Words[W].load(std::memory_order_acquire) & Range;
      if (Free == 0)
        continue;
      const uint64_t Old = Words[W].fetch_or(Free, std::memory_order_acq_rel);
      uint64_t Won = Free & ~Old;
      while (Won != 0) {
        const uint32_t Bit = __builtin_ctzll(Won);
        Fn(W * 64 + Bit);
        ++Claimed;
        Won &= Won - 1;
      }
    }
    return Claimed;
  }

  bool isSet(uint32_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64].load(std::memory_order_acquire) &
            (uint64_t{1} << (I % 64))) != 0;
  }

  /// Number of set bits (the span's live-object count).
  uint32_t inUseCount() const {
    uint32_t Count = 0;
    for (const auto &W : Words)
      Count += __builtin_popcountll(W.load(std::memory_order_acquire));
    return Count;
  }

  /// Clears every bit.
  void clearAll() {
    for (auto &W : Words)
      W.store(0, std::memory_order_release);
  }

  /// True iff no bit is set in both this bitmap and \p Other: the two
  /// spans' objects occupy disjoint offsets (Definition 5.1).
  bool isMeshableWith(const Bitmap &Other) const {
    for (uint32_t W = 0; W < kWords; ++W)
      if ((Words[W].load(std::memory_order_acquire) &
           Other.Words[W].load(std::memory_order_acquire)) != 0)
        return false;
    return true;
  }

  /// ORs \p Other into this bitmap (used when consolidating two meshed
  /// spans' metadata). The caller must ensure disjointness.
  void mergeFrom(const Bitmap &Other) {
    for (uint32_t W = 0; W < kWords; ++W)
      Words[W].fetch_or(Other.Words[W].load(std::memory_order_acquire),
                        std::memory_order_acq_rel);
  }

  /// Copies \p Other's contents over this bitmap (non-atomic snapshot
  /// semantics; used only under the global heap lock).
  void copyFrom(const Bitmap &Other) {
    for (uint32_t W = 0; W < kWords; ++W)
      Words[W].store(Other.Words[W].load(std::memory_order_acquire),
                     std::memory_order_release);
  }

  /// Raw word, for tests and the analysis toolkit.
  uint64_t word(uint32_t W) const {
    assert(W < kWords && "word index out of range");
    return Words[W].load(std::memory_order_acquire);
  }

  /// Invokes \p Fn(index) for every set bit, in increasing order.
  template <typename Callable> void forEachSet(Callable Fn) const {
    for (uint32_t W = 0; W < kWords; ++W) {
      uint64_t Bits = Words[W].load(std::memory_order_acquire);
      while (Bits != 0) {
        const uint32_t Bit = __builtin_ctzll(Bits);
        Fn(W * 64 + Bit);
        Bits &= Bits - 1;
      }
    }
  }

private:
  /// Mask of valid (in-range) bits for word \p W.
  uint64_t rangeMask(uint32_t W) const {
    if ((W + 1) * 64 <= NumBits)
      return ~uint64_t{0};
    if (W * 64 >= NumBits)
      return 0;
    return (uint64_t{1} << (NumBits % 64)) - 1;
  }

  std::atomic<uint64_t> Words[kWords];
  uint32_t NumBits;
};

} // namespace mesh

#endif // MESH_SUPPORT_BITMAP_H
