//===- Common.h - Shared constants and primitive types ---------*- C++ -*-===//
///
/// \file
/// Process-wide constants shared by every Mesh module: the hardware page
/// size, span limits, and the compile-time tunables from the paper
/// (maximum objects per span, maximum meshes per MiniHeap, SplitMesher's
/// probe budget).
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_COMMON_H
#define MESH_SUPPORT_COMMON_H

#include <cstddef>
#include <cstdint>

namespace mesh {

/// Hardware page size on x86-64 / aarch64 Linux.
inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageShift = 12;

/// Maximum number of objects in a span (so shuffle-vector entries fit in
/// one byte; see paper Section 4.2).
inline constexpr uint32_t kMaxObjectsPerSpan = 256;

/// Minimum number of objects per span; amortizes the cost of reserving
/// a span from the global heap (paper Section 4).
inline constexpr uint32_t kMinObjectsPerSpan = 8;

/// Smallest size class. Objects below this are rounded up.
inline constexpr size_t kMinObjectSize = 16;

/// Largest size-class-allocated object; anything bigger is a large
/// object fulfilled directly by the global heap (paper Section 4.3).
inline constexpr size_t kMaxSizeClassedObject = 16384;

/// Object sizes of at least this many bytes are page-aligned and their
/// spans are never meshing candidates (paper Section 4: "Objects of 4KB
/// and larger ... are not considered for meshing").
inline constexpr size_t kMinNonMeshableObjectSize = 4096;

/// Maximum number of virtual spans that may share one physical span.
/// A mesh of two MiniHeaps whose combined virtual-span count exceeds
/// this limit is rejected by the meshability predicate.
inline constexpr uint32_t kMaxMeshes = 8;

/// Default SplitMesher probe budget t (paper Section 3.3: "t = 64
/// balances runtime and meshing effectiveness").
inline constexpr uint32_t kDefaultMeshProbes = 64;

/// Dirty pages accumulate up to this budget before being returned to
/// the OS (paper Section 4.4.1: 64 MB).
inline constexpr size_t kMaxDirtyBytes = 64 * 1024 * 1024;

/// Default minimum interval between meshing passes (paper Section 4.5:
/// "at most once every tenth of a second").
inline constexpr uint64_t kDefaultMeshPeriodMs = 100;

/// Converts a byte count to a page count, rounding up.
inline constexpr size_t bytesToPages(size_t Bytes) {
  return (Bytes + kPageSize - 1) >> kPageShift;
}

inline constexpr size_t pagesToBytes(size_t Pages) {
  return Pages << kPageShift;
}

} // namespace mesh

#endif // MESH_SUPPORT_COMMON_H
