//===- Env.h - Validated environment-variable parsing -----------*- C++ -*-===//
///
/// \file
/// Shared parsers for the MESH_* configuration surface, used by the
/// process-default runtime (api/mesh.cpp) and by the benchmark harness
/// (bench/BenchUtil.h) so the two can never drift on what a value
/// means. Invalid input warns and is ignored — a typoed knob must not
/// silently reconfigure the process allocator.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_ENV_H
#define MESH_SUPPORT_ENV_H

#include "support/Log.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <strings.h> // strcasecmp

namespace mesh {

/// Parses \p Name as an unsigned decimal, bounded to [\p Min, \p Max].
/// Returns false (leaving \p Out alone) when the variable is unset;
/// garbage or out-of-range values are rejected with a warning.
inline bool envU64(const char *Name, uint64_t Min, uint64_t Max,
                   uint64_t *Out) {
  const char *Value = std::getenv(Name);
  if (Value == nullptr || Value[0] == '\0')
    return false;
  char *End = nullptr;
  errno = 0;
  const unsigned long long Parsed = std::strtoull(Value, &End, 10);
  // strtoull silently wraps a leading '-' to a huge value; reject it
  // explicitly so MESH_FOO=-1 warns instead of meaning "18 quintillion".
  const char *First = Value;
  while (*First == ' ' || *First == '\t')
    ++First;
  if (errno != 0 || End == Value || *End != '\0' || *First == '-') {
    logWarning("ignoring invalid %s='%s' (expected an unsigned integer)",
               Name, Value);
    return false;
  }
  if (Parsed < Min || Parsed > Max) {
    logWarning("ignoring out-of-range %s=%llu (valid: %llu..%llu)", Name,
               Parsed, static_cast<unsigned long long>(Min),
               static_cast<unsigned long long>(Max));
    return false;
  }
  *Out = Parsed;
  return true;
}

/// Boolean knob: unset -> \p Default; "0"/"false"/"off" -> false;
/// "1"/"true"/"on" -> true (all case-insensitive). Anything else is
/// rejected with a warning and keeps the default, matching envU64 —
/// a typoed value must not silently reconfigure the allocator.
inline bool envBool(const char *Name, bool Default) {
  const char *Value = std::getenv(Name);
  if (Value == nullptr || Value[0] == '\0')
    return Default;
  if (strcasecmp(Value, "0") == 0 || strcasecmp(Value, "false") == 0 ||
      strcasecmp(Value, "off") == 0)
    return false;
  if (strcasecmp(Value, "1") == 0 || strcasecmp(Value, "true") == 0 ||
      strcasecmp(Value, "on") == 0)
    return true;
  logWarning("ignoring invalid %s='%s' (expected 0|1|true|false|on|off)",
             Name, Value);
  return Default;
}

} // namespace mesh

#endif // MESH_SUPPORT_ENV_H
