//===- Epoch.cpp - Fence-mode policy for the asymmetric epoch -------------===//
///
/// \file
/// Everything that is *not* the reader fast path: the process-wide
/// fence-mode decision (membarrier detection + registration), the
/// synchronize-side heavy barrier, the seq-cst fallback protocol, and
/// the mid-run degradation that keeps the epoch sound if an expedited
/// membarrier ever fails after registration (in practice only under
/// MESH_FAULT_INJECT=membarrier:...).
///
//===----------------------------------------------------------------------===//

#include "support/Epoch.h"

#include "support/Env.h"
#include "support/Log.h"
#include "support/Sys.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <sched.h>
#include <sys/mman.h>

#if __has_include(<linux/membarrier.h>)
#include <linux/membarrier.h>
#endif
#ifndef MEMBARRIER_CMD_QUERY
#define MEMBARRIER_CMD_QUERY 0
#endif
#ifndef MEMBARRIER_CMD_PRIVATE_EXPEDITED
#define MEMBARRIER_CMD_PRIVATE_EXPEDITED (1 << 3)
#endif
#ifndef MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED
#define MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED (1 << 4)
#endif

namespace mesh {

namespace detail {
std::atomic<uint8_t> EpochFenceModeAtomic{
    static_cast<uint8_t>(EpochFenceMode::kUndecided)};
} // namespace detail

namespace {

/// Serializes the mode decision (raw flag: usable before static
/// constructors and inside malloc, like the Sys.cpp parse lock).
std::atomic_flag DecisionLock = ATOMIC_FLAG_INIT;

/// Set when the process degraded from kAsymmetric mid-run: readers
/// that sampled the mode before the flip became globally visible may
/// still be entering with plain stores, so every subsequent
/// synchronize() keeps issuing a compensation barrier. Never cleared
/// in the parent (degradation only happens under fault injection or a
/// kernel walking back a registered command — both terminal); the fork
/// child clears it, since it restarts with one thread and a fresh
/// decision.
std::atomic<bool> CompensateAfterDegrade{false};

/// Page the last-resort compensation barrier toggles. mprotect on a
/// resident page forces a TLB-shootdown IPI to every CPU in this mm's
/// cpumask, and the IPI is a full barrier on each — the classic
/// pre-membarrier portable trick. Page-aligned BSS so no allocation.
alignas(4096) char CompensationPage[4096];

void storeMode(EpochFenceMode M) {
  detail::EpochFenceModeAtomic.store(static_cast<uint8_t>(M),
                                     std::memory_order_release);
}

/// Process-wide barrier without membarrier: touch the compensation
/// page (so it is resident and mapped on this CPU), then flip its
/// protection both ways through the seam. Best-effort by design — it
/// only runs when membarrier itself already failed.
void compensationBarrier() {
  CompensationPage[0] = 1;
  if (sys::mprotectPtr(CompensationPage, sizeof(CompensationPage),
                       PROT_READ) != 0 ||
      sys::mprotectPtr(CompensationPage, sizeof(CompensationPage),
                       PROT_READ | PROT_WRITE) != 0) {
    logWarning("epoch: compensation mprotect barrier failed (errno %d); "
               "relying on the seq-cst fallback ordering alone",
               errno);
  }
}

/// Flips the process to the symmetric protocol after an expedited
/// membarrier failed mid-run. New readers will use seq-cst RMW once
/// they observe the mode store; the compensation barrier both forces
/// that store visible everywhere and orders the plain increments of
/// any reader that raced the flip, and CompensateAfterDegrade keeps
/// covering stragglers on later synchronizes.
void degradeToSeqCst(int Err) {
  logWarning("epoch: membarrier(PRIVATE_EXPEDITED) failed (errno %d); "
             "degrading to the seq-cst fence protocol",
             Err);
  telemetry::event(telemetry::EventType::kFaultDegrade,
                   telemetry::kDegradeEpochSeqCst,
                   static_cast<uint64_t>(Err));
  CompensateAfterDegrade.store(true, std::memory_order_relaxed);
  storeMode(EpochFenceMode::kSeqCst);
  compensationBarrier();
}

} // namespace

EpochFenceMode Epoch::decideFenceMode() {
  EpochFenceMode M = fenceMode();
  if (M != EpochFenceMode::kUndecided)
    return M;
  while (DecisionLock.test_and_set(std::memory_order_acquire)) {
  }
  M = fenceMode();
  if (M == EpochFenceMode::kUndecided) {
    M = EpochFenceMode::kSeqCst;
    if (envBool("MESH_MEMBARRIER", true)) {
      const int Cmds = sys::membarrierCall(MEMBARRIER_CMD_QUERY, 0);
      if (Cmds >= 0 &&
          (Cmds & MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) != 0 &&
          (Cmds & MEMBARRIER_CMD_PRIVATE_EXPEDITED) != 0 &&
          sys::membarrierCall(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED, 0) ==
              0) {
        M = EpochFenceMode::kAsymmetric;
      }
    }
    storeMode(M);
  }
  DecisionLock.clear(std::memory_order_release);
  return M;
}

void Epoch::reinitFenceModeAfterFork() {
  // Single-threaded context (atfork child): no lock needed, and no
  // logging — stay async-signal-safe. Registration is per-mm; re-issue
  // it rather than trusting the kernel to have copied it across fork.
  CompensateAfterDegrade.store(false, std::memory_order_relaxed);
  if (fenceMode() != EpochFenceMode::kAsymmetric)
    return;
  if (sys::membarrierCall(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED, 0) != 0)
    storeMode(EpochFenceMode::kSeqCst);
}

void Epoch::setFenceModeForTest(EpochFenceMode M) {
  CompensateAfterDegrade.store(false, std::memory_order_relaxed);
  detail::EpochFenceModeAtomic.store(static_cast<uint8_t>(M),
                                     std::memory_order_seq_cst);
}

uint32_t Epoch::assignStripe() {
  static std::atomic<uint32_t> NextStripe{0};
  const uint32_t N = NextStripe.fetch_add(1, std::memory_order_relaxed);
  return 1 +
         (N < kStripes ? N : kStripes + (N - kStripes) % kOverflowStripes);
}

void Epoch::exitOverflow(Guard G) {
  Overflow[G.Parity][G.Stripe - kStripes].Count.fetch_sub(
      1, std::memory_order_release);
}

Epoch::Guard Epoch::enterSlow(uint32_t Stripe) {
  if (fenceMode() == EpochFenceMode::kUndecided)
    decideFenceMode();
  // Overflow slots always use the RMW protocol (they are shared), and
  // every slot uses it in kSeqCst mode. The seq_cst increment and
  // re-validation pair with the writer's seq_cst era flip and counter
  // scan: a store-buffering (Dekker) pattern that needs no kernel
  // fence. If the mode is (or just became) kAsymmetric and this is an
  // exclusive slot, enter() will take the plain-store path.
  for (;;) {
    if (Stripe < kStripes &&
        detail::EpochFenceModeAtomic.load(std::memory_order_relaxed) ==
            static_cast<uint8_t>(EpochFenceMode::kAsymmetric))
      return enter();
    const uint64_t E = Era.load(std::memory_order_acquire);
    const uint32_t Parity = static_cast<uint32_t>(E & 1);
    std::atomic<uint32_t> &C =
        Stripe < kStripes ? Readers[Parity][Stripe].Count
                          : Overflow[Parity][Stripe - kStripes].Count;
    C.fetch_add(1, std::memory_order_seq_cst);
    if (Era.load(std::memory_order_seq_cst) == E)
      return Guard{Stripe, Parity};
    C.fetch_sub(1, std::memory_order_release);
    cpuRelax();
  }
}

void Epoch::synchronize() {
  const EpochFenceMode M = fenceMode() == EpochFenceMode::kUndecided
                               ? decideFenceMode()
                               : fenceMode();
  // seq_cst flip in every mode: it is the writer side of the Dekker
  // pairing for overflow/fallback readers, and one fence per
  // synchronize is noise next to the membarrier below.
  const uint64_t Old = Era.fetch_add(1, std::memory_order_seq_cst);
  const uint32_t Parity = static_cast<uint32_t>(Old & 1);
  if (M == EpochFenceMode::kAsymmetric) {
    if (sys::membarrierCall(MEMBARRIER_CMD_PRIVATE_EXPEDITED, 0) != 0)
      degradeToSeqCst(errno);
  } else if (CompensateAfterDegrade.load(std::memory_order_relaxed)) {
    compensationBarrier();
  }
  // Drain the old parity. Loads are seq_cst (plain movs on x86): the
  // scan is the writer side of both pairings — after the membarrier
  // for plain readers, after the seq_cst flip for RMW readers — and a
  // reader's release-store exit gives the scan the happens-before edge
  // that makes post-return reclamation safe.
  for (uint32_t S = 0; S < kStripes + kOverflowStripes; ++S) {
    std::atomic<uint32_t> &C = S < kStripes
                                   ? Readers[Parity][S].Count
                                   : Overflow[Parity][S - kStripes].Count;
    int Spins = 0;
    while (C.load(std::memory_order_seq_cst) != 0) {
      // Reader sections are a handful of instructions; a non-zero
      // count that persists means the reader was descheduled — hand
      // it the CPU instead of pause-spinning the slice away.
      if (++Spins < 64)
        cpuRelax();
      else {
        sched_yield();
        Spins = 0;
      }
    }
  }
}

} // namespace mesh
