//===- Epoch.h - Asymmetric striped epoch-based reclamation guard -*- C++ -*-===//
///
/// \file
/// The atomic lifetime primitive behind Mesh's lock-free global-free
/// path (paper Section 4.4.4). Readers that resolve a pointer through
/// the page table and then dereference the owning MiniHeap enter a
/// short critical section; a writer that is about to destroy (or
/// consolidate) a MiniHeap advances the epoch and waits until every
/// reader that might still hold a stale pointer has left.
///
/// The scheme is a two-slot epoch with striped reader counters, made
/// *asymmetric*: the cost of the store-buffering (Dekker) fence is
/// moved entirely onto synchronize().
///
///   - enter(): pick the counter slot for this thread, increment the
///     side selected by the current era's parity with a plain (relaxed)
///     store, then re-check the era. If it moved, back out and retry —
///     this closes the window where a reader increments a slot the
///     writer already drained. In asymmetric mode the whole section is
///     plain loads and stores plus a compiler barrier: zero fence
///     instructions on the reader side (pinned by
///     EpochAsymmetricTest.ReaderPathHasNoFenceInstructions).
///   - exit(): decrement the slot recorded at enter() with a release
///     store (a plain mov on x86).
///   - synchronize(): flip the era parity, execute
///     membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED) — an IPI-backed
///     barrier on every CPU running a thread of this process — then
///     spin until the old parity's counters are all zero. The
///     membarrier is what makes the plain reader stores sound: a reader
///     whose era re-check read the *old* era must have executed its
///     increment before the IPI, so the writer's post-barrier counter
///     scan observes it; a reader whose re-check runs after the IPI
///     sees the new era and retries into the new parity.
///
/// When the membarrier syscall (or the PRIVATE_EXPEDITED command) is
/// unavailable — pre-4.14 kernels, seccomp deny lists, or the
/// MESH_MEMBARRIER=0 escape hatch — the epoch falls back to the
/// original fully-symmetric protocol: seq-cst RMW on enter paired with
/// a seq-cst era flip, correct with no kernel help. The mode is decided
/// once per process (Runtime init, or lazily at first use) and the
/// syscall is routed through the Sys.h seam, so tests can fault-inject
/// `membarrier:ENOSYS:every=1` and pin the degradation path.
///
/// Slot assignment is *exclusive* for the first kStripes threads: one
/// thread per slot, which is what licenses the plain load+store
/// increments (two owners would lose updates). Threads beyond that
/// share a small set of overflow slots using seq-cst fetch_add — the
/// old protocol, whose correctness never depended on membarrier.
///
/// synchronize() callers must be serialized externally (Mesh routes
/// every call through GlobalHeap::epochSynchronize, which takes a
/// dedicated leaf lock — two concurrent era flips would land readers
/// back in a slot a writer is draining). Readers must not block on
/// anything a synchronize() caller holds while inside the critical
/// section.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_EPOCH_H
#define MESH_SUPPORT_EPOCH_H

#include "support/Annotations.h"
#include "support/SpinLock.h" // cpuRelax

#include <atomic>
#include <cstdint>

namespace mesh {

/// Process-wide fence protocol, shared by every Epoch instance (the
/// membarrier registration is a property of the process, not of one
/// epoch). Decided once; see Epoch::decideFenceMode().
enum class EpochFenceMode : uint8_t {
  kUndecided = 0, ///< First enter()/synchronize() decides.
  kAsymmetric,    ///< Plain reader stores; synchronize pays membarrier.
  kSeqCst,        ///< Symmetric seq-cst protocol (fallback).
};

namespace detail {
/// Read on every enter(); written only by the mode-decision CAS and
/// the mid-run degradation path in Epoch.cpp.
extern std::atomic<uint8_t> EpochFenceModeAtomic;
} // namespace detail

/// Modeled for the thread-safety analysis as a *shared* capability:
/// Epoch::Section acquires it shared (many concurrent readers), and
/// functions that may only run inside a reader section (page-table
/// resolution that dereferences the result, e.g.
/// GlobalHeap::miniheapFor) carry MESH_REQUIRES_SHARED on it. The raw
/// enter()/exit() primitives are deliberately unannotated — they are
/// the mechanism Section wraps, and their unit tests drive them
/// directly; production code must use Section.
class MESH_CAPABILITY("epoch") Epoch {
public:
  /// Exclusive reader slots. Threads are assigned one for life (they
  /// are never recycled — a thread-exit hook inside malloc is not
  /// worth the plain-store fast path it would protect).
  static constexpr uint32_t kStripes = 32;
  /// Shared overflow slots for threads kStripes+1.. (seq-cst RMW).
  static constexpr uint32_t kOverflowStripes = 8;

  Epoch() = default;
  Epoch(const Epoch &) = delete;
  Epoch &operator=(const Epoch &) = delete;

  /// Opaque handle for one reader critical section. Stripe >= kStripes
  /// encodes overflow slot (Stripe - kStripes).
  struct Guard {
    uint32_t Stripe;
    uint32_t Parity;
  };

  /// Begins a reader critical section. MiniHeaps reachable through the
  /// page table at (or after) this point stay alive until exit().
  Guard enter() {
    const uint32_t Stripe = stripeForThisThread();
    if (__builtin_expect(
            Stripe < kStripes &&
                detail::EpochFenceModeAtomic.load(std::memory_order_relaxed) ==
                    static_cast<uint8_t>(EpochFenceMode::kAsymmetric),
            1)) {
      for (;;) {
        const uint64_t E = Era.load(std::memory_order_relaxed);
        const uint32_t Parity = static_cast<uint32_t>(E & 1);
        std::atomic<uint32_t> &C = Readers[Parity][Stripe].Count;
        // Exclusively-owned slot: a plain load+store increment cannot
        // lose updates, and synchronize()'s membarrier supplies the
        // store->load ordering a fence would otherwise have to.
        C.store(C.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        // Compiler-only barrier: the increment must be *issued* before
        // the era re-check so the membarrier IPI can order them.
        std::atomic_signal_fence(std::memory_order_seq_cst);
        if (__builtin_expect(Era.load(std::memory_order_acquire) == E, 1))
          return Guard{Stripe, Parity};
        // The era advanced between the load and the increment: the
        // writer may already have drained our slot. Back out, retry
        // into the new parity.
        C.store(C.load(std::memory_order_relaxed) - 1,
                std::memory_order_relaxed);
        cpuRelax();
      }
    }
    return enterSlow(Stripe);
  }

  void exit(Guard G) {
    if (__builtin_expect(G.Stripe < kStripes, 1)) {
      // Exclusive slot: release store so the writer's counter scan
      // (acquire) sees every access made inside the section. A plain
      // mov on x86 — correct in both fence modes, since exclusivity,
      // not the RMW, is what made the old fetch_sub atomic.
      std::atomic<uint32_t> &C = Readers[G.Parity][G.Stripe].Count;
      C.store(C.load(std::memory_order_relaxed) - 1,
              std::memory_order_release);
      return;
    }
    exitOverflow(G);
  }

  /// Advances the era and waits until every reader that entered under
  /// the previous era has exited. On return, memory published before
  /// the call is safe to reclaim. Callers must be serialized.
  /// MESH_EXCLUDES(this): a thread inside its own reader section would
  /// wait on itself forever (the self-deadlock LockRank also traps).
  void synchronize() MESH_EXCLUDES(this);

  /// Fork-child recovery: zeroes every reader counter. A thread that
  /// was inside a reader section in the parent at fork() does not exist
  /// in the child, but its increment does — left alone it would wedge
  /// the child's first synchronize() forever. Only callable when no
  /// reader or synchronize() can be running (the pthread_atfork child
  /// handler, where exactly one thread exists).
  void resetToQuiescent() {
    for (uint32_t P = 0; P < 2; ++P) {
      for (uint32_t S = 0; S < kStripes; ++S)
        Readers[P][S].Count.store(0, std::memory_order_relaxed);
      for (uint32_t S = 0; S < kOverflowStripes; ++S)
        Overflow[P][S].Count.store(0, std::memory_order_relaxed);
    }
  }

  /// RAII wrapper for reader sections. Scoped shared acquisition of the
  /// epoch capability: while a Section is live, MESH_REQUIRES_SHARED
  /// functions on the same Epoch may be called.
  class MESH_SCOPED_CAPABILITY Section {
  public:
    explicit Section(Epoch &E) MESH_ACQUIRE_SHARED(E)
        : Parent(E), G(E.enter()) {}
    ~Section() MESH_RELEASE_GENERIC() { Parent.exit(G); }
    Section(const Section &) = delete;
    Section &operator=(const Section &) = delete;

  private:
    Epoch &Parent;
    Guard G;
  };

  /// Decides the process-wide fence mode if still undecided and
  /// returns it: MESH_MEMBARRIER=0 forces kSeqCst; otherwise probe
  /// MEMBARRIER_CMD_QUERY and register PRIVATE_EXPEDITED through the
  /// Sys.h seam. Idempotent and thread-safe; Runtime init calls it
  /// eagerly so the preload shim never takes the syscall lazily inside
  /// a hot free.
  static EpochFenceMode decideFenceMode();

  /// The mode currently in force (kUndecided until first decided).
  static EpochFenceMode fenceMode() {
    return static_cast<EpochFenceMode>(
        detail::EpochFenceModeAtomic.load(std::memory_order_acquire));
  }

  /// Re-registers the membarrier intent in a fork child (registration
  /// is per-mm; not all kernels carry it across fork) and drops back
  /// to kSeqCst if that fails. Async-signal-safe: one syscall, no
  /// allocation. Call from the atfork child handler before any epoch
  /// traffic.
  static void reinitFenceModeAfterFork();

  /// Test hook: forces \p M (kUndecided re-arms lazy decision). The
  /// caller owns quiescence — flipping modes with readers in flight is
  /// exactly the race the production degradation path compensates for.
  static void setFenceModeForTest(EpochFenceMode M);

private:
  struct alignas(64) PaddedCounter {
    std::atomic<uint32_t> Count{0};
  };

  /// Out-of-line slow path: overflow slots and the seq-cst fallback
  /// protocol (also the first call in a process, which decides the
  /// fence mode). Kept out of the header so the inlined fast path
  /// stays fence-free and small.
  Guard enterSlow(uint32_t Stripe);
  /// Out-of-line for the same reason: the overflow decrement is a
  /// locked RMW (the slot is shared) and must not sit in the inlined
  /// exit().
  void exitOverflow(Guard G);
  /// One-time per-thread slot assignment (a locked RMW on the shared
  /// cursor); out-of-line so the fence-free fast path stays pure.
  static uint32_t assignStripe();

  static uint32_t stripeForThisThread() {
    // Sequential slot assignment, cached per thread: the first
    // kStripes threads each own a slot outright (the plain-store
    // license), later threads share the overflow slots round-robin.
    // initial-exec TLS so the access can never allocate (this runs
    // inside malloc/free).
    static __thread uint32_t Assigned
        __attribute__((tls_model("initial-exec"))) = 0;
    if (__builtin_expect(Assigned == 0, 0))
      Assigned = assignStripe();
    return Assigned - 1;
  }

  std::atomic<uint64_t> Era{0};
  PaddedCounter Readers[2][kStripes];
  PaddedCounter Overflow[2][kOverflowStripes];
};

} // namespace mesh

#endif // MESH_SUPPORT_EPOCH_H
