//===- Epoch.h - Striped epoch-based reclamation guard ----------*- C++ -*-===//
///
/// \file
/// The atomic lifetime primitive behind Mesh's lock-free global-free
/// path (paper Section 4.4.4). Readers that resolve a pointer through
/// the page table and then dereference the owning MiniHeap enter a
/// short critical section; a writer that is about to destroy (or
/// consolidate) a MiniHeap advances the epoch and waits until every
/// reader that might still hold a stale pointer has left.
///
/// The scheme is a two-slot epoch with striped reader counters:
///
///   - enter(): pick the counter stripe for this thread, increment the
///     slot selected by the current epoch's parity, then re-check the
///     epoch. If it moved, back out and retry — this closes the window
///     where a reader increments a slot the writer already drained.
///   - exit(): decrement the slot recorded at enter().
///   - synchronize(): flip the epoch parity, then spin until the old
///     parity's counters are all zero. New readers land in the new
///     slot, so the wait is bounded by the readers already in flight.
///
/// Counters are striped across cache-line-padded slots indexed by a
/// per-thread token, so concurrent readers on different cores do not
/// bounce one cache line (the enter/exit pair must stay cheap: it sits
/// on every free that consults the page table).
///
/// synchronize() callers must be serialized externally (Mesh routes
/// every call through GlobalHeap::epochSynchronize, which takes a
/// dedicated leaf lock — two concurrent era flips would land readers
/// back in a slot a writer is draining). Readers must not block on
/// anything a synchronize() caller holds while inside the critical
/// section.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_EPOCH_H
#define MESH_SUPPORT_EPOCH_H

#include "support/SpinLock.h" // cpuRelax

#include <atomic>
#include <cstdint>
#include <sched.h>

namespace mesh {

class Epoch {
public:
  static constexpr uint32_t kStripes = 16;

  Epoch() = default;
  Epoch(const Epoch &) = delete;
  Epoch &operator=(const Epoch &) = delete;

  /// Opaque handle for one reader critical section.
  struct Guard {
    uint32_t Stripe;
    uint32_t Parity;
  };

  /// Begins a reader critical section. MiniHeaps reachable through the
  /// page table at (or after) this point stay alive until exit().
  Guard enter() {
    const uint32_t Stripe = stripeForThisThread();
    for (;;) {
      const uint64_t E = Era.load(std::memory_order_acquire);
      const uint32_t Parity = static_cast<uint32_t>(E & 1);
      // The increment and the re-validation, like the writer's flip
      // and counter scan, must be seq_cst: this is a store-buffering
      // (Dekker) pattern, and with acquire/release alone both sides
      // may miss each other's write — the reader validating a stale
      // era while synchronize() reads its slot as zero. (On x86 the
      // locked RMW makes this free; the loads compile to plain movs.)
      Readers[Parity][Stripe].Count.fetch_add(1,
                                              std::memory_order_seq_cst);
      // Re-validate: if the era advanced between the load and the
      // increment, the writer may already have drained our slot.
      if (Era.load(std::memory_order_seq_cst) == E)
        return Guard{Stripe, Parity};
      Readers[Parity][Stripe].Count.fetch_sub(1,
                                              std::memory_order_release);
      cpuRelax();
    }
  }

  void exit(Guard G) {
    Readers[G.Parity][G.Stripe].Count.fetch_sub(1,
                                                std::memory_order_release);
  }

  /// Advances the era and waits until every reader that entered under
  /// the previous era has exited. On return, memory published before
  /// the call is safe to reclaim. Callers must be serialized.
  void synchronize() {
    // seq_cst pairing with enter(); see the comment there.
    const uint64_t Old = Era.fetch_add(1, std::memory_order_seq_cst);
    const uint32_t Parity = static_cast<uint32_t>(Old & 1);
    for (uint32_t S = 0; S < kStripes; ++S) {
      int Spins = 0;
      while (Readers[Parity][S].Count.load(std::memory_order_seq_cst) !=
             0) {
        // Reader sections are a handful of instructions; a non-zero
        // count that persists means the reader was descheduled — hand
        // it the CPU instead of pause-spinning the slice away.
        if (++Spins < 64)
          cpuRelax();
        else {
          sched_yield();
          Spins = 0;
        }
      }
    }
  }

  /// Fork-child recovery: zeroes every reader counter. A thread that
  /// was inside a reader section in the parent at fork() does not exist
  /// in the child, but its increment does — left alone it would wedge
  /// the child's first synchronize() forever. Only callable when no
  /// reader or synchronize() can be running (the pthread_atfork child
  /// handler, where exactly one thread exists).
  void resetToQuiescent() {
    for (uint32_t P = 0; P < 2; ++P)
      for (uint32_t S = 0; S < kStripes; ++S)
        Readers[P][S].Count.store(0, std::memory_order_relaxed);
  }

  /// RAII wrapper for reader sections.
  class Section {
  public:
    explicit Section(Epoch &E) : Parent(E), G(E.enter()) {}
    ~Section() { Parent.exit(G); }
    Section(const Section &) = delete;
    Section &operator=(const Section &) = delete;

  private:
    Epoch &Parent;
    Guard G;
  };

private:
  struct alignas(64) PaddedCounter {
    std::atomic<uint32_t> Count{0};
  };

  static uint32_t stripeForThisThread() {
    // Round-robin stripe assignment, cached per thread: guarantees the
    // first kStripes threads never share a counter cache line (an
    // address-hash scheme collides with high probability well below
    // that). initial-exec TLS so the access can never allocate (this
    // runs inside malloc/free). Stripe 0 doubles as "unassigned", so
    // slot 0 is simply shared by thread #0 and any wrap-arounds.
    static std::atomic<uint32_t> NextStripe{1};
    static __thread uint32_t Assigned
        __attribute__((tls_model("initial-exec"))) = 0;
    if (Assigned == 0)
      Assigned =
          1 + NextStripe.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return Assigned - 1;
  }

  std::atomic<uint64_t> Era{0};
  PaddedCounter Readers[2][kStripes];
};

} // namespace mesh

#endif // MESH_SUPPORT_EPOCH_H
