//===- InternalHeap.cpp - mmap-backed metadata allocator -----------------===//

#include "support/InternalHeap.h"

#include "support/Common.h"
#include "support/Log.h"
#include "support/MathUtils.h"

#include <cassert>
#include <cstring>
#include <sys/mman.h>

namespace mesh {

static void *mapAnonymous(size_t Bytes) {
  void *Mem = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    fatalError("internal heap mmap of %zu bytes failed", Bytes);
  return Mem;
}

InternalHeap::~InternalHeap() {
  // Chunks are intentionally leaked: the internal heap lives for the
  // process (or test) lifetime and unmapping on destruction would
  // require tracking every chunk for marginal benefit. Dedicated large
  // mappings are unmapped in free().
}

unsigned InternalHeap::classForSize(size_t Size) {
  size_t Rounded = roundUpToPowerOfTwo(Size < kMinBlock ? kMinBlock : Size);
  assert(Rounded <= kMaxBlock && "class lookup on large size");
  return log2Floor(Rounded) - log2Floor(kMinBlock);
}

void InternalHeap::refill(unsigned Class) {
  const size_t Block = kMinBlock << Class;
  if (ChunkRemaining < Block) {
    ChunkCursor = static_cast<char *>(mapAnonymous(kChunkBytes));
    ChunkRemaining = kChunkBytes;
    MappedBytes += kChunkBytes;
  }
  // Carve the remainder of the chunk into blocks of this class.
  while (ChunkRemaining >= Block) {
    auto *Node = reinterpret_cast<FreeNode *>(ChunkCursor);
    Node->Next = FreeLists[Class];
    FreeLists[Class] = Node;
    ChunkCursor += Block;
    ChunkRemaining -= Block;
  }
}

void *InternalHeap::alloc(size_t Size) {
  if (Size > kMaxBlock) {
    const size_t Bytes = roundUpPow2Multiple(Size, kPageSize);
    SpinLockGuard Guard(Lock);
    LiveBytes += Bytes;
    MappedBytes += Bytes;
    return mapAnonymous(Bytes);
  }
  const unsigned Class = classForSize(Size);
  SpinLockGuard Guard(Lock);
  if (FreeLists[Class] == nullptr)
    refill(Class);
  FreeNode *Node = FreeLists[Class];
  assert(Node && "refill must populate the free list");
  FreeLists[Class] = Node->Next;
  LiveBytes += kMinBlock << Class;
  return Node;
}

void InternalHeap::free(void *Ptr, size_t Size) {
  if (Ptr == nullptr)
    return;
  if (Size > kMaxBlock) {
    const size_t Bytes = roundUpPow2Multiple(Size, kPageSize);
    munmap(Ptr, Bytes);
    SpinLockGuard Guard(Lock);
    LiveBytes -= Bytes;
    MappedBytes -= Bytes;
    return;
  }
  const unsigned Class = classForSize(Size);
  SpinLockGuard Guard(Lock);
  auto *Node = static_cast<FreeNode *>(Ptr);
  Node->Next = FreeLists[Class];
  FreeLists[Class] = Node;
  LiveBytes -= kMinBlock << Class;
}

InternalHeap &InternalHeap::global() {
  // Constructed on first use from static storage; never destroyed, so
  // the interposition shim can serve frees during process teardown.
  alignas(InternalHeap) static char Storage[sizeof(InternalHeap)];
  static InternalHeap *Instance = new (Storage) InternalHeap();
  return *Instance;
}

} // namespace mesh
