//===- InternalHeap.h - mmap-backed metadata allocator ----------*- C++ -*-===//
///
/// \file
/// The allocator Mesh uses for its *own* needs (paper Section 4.4.2):
/// MiniHeap objects, bin arrays, internal vectors. It draws storage
/// directly from mmap so the interposition shim can bootstrap without
/// recursing into malloc.
///
/// Design: chunked bump allocation with per-size-class free lists.
/// Sizes are rounded to powers of two between 16 bytes and 4 KiB;
/// larger requests get dedicated mappings. Thread safety via SpinLock.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_INTERNALHEAP_H
#define MESH_SUPPORT_INTERNALHEAP_H

#include "support/Annotations.h"
#include "support/SpinLock.h"

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace mesh {

/// mmap-backed allocator for Mesh metadata. Never touches malloc.
class InternalHeap {
public:
  InternalHeap() = default;
  ~InternalHeap();

  InternalHeap(const InternalHeap &) = delete;
  InternalHeap &operator=(const InternalHeap &) = delete;

  /// Allocates \p Size bytes, 16-byte aligned. Aborts on OOM (metadata
  /// allocation failure is not recoverable inside an allocator).
  void *alloc(size_t Size);

  /// Returns memory obtained from alloc(). \p Size must match the
  /// original request.
  void free(void *Ptr, size_t Size);

  /// Constructs a \p T from this heap.
  template <typename T, typename... Args> T *makeNew(Args &&...As) {
    void *Mem = alloc(sizeof(T));
    return new (Mem) T(std::forward<Args>(As)...);
  }

  /// Destroys and frees an object created by makeNew().
  template <typename T> void deleteObj(T *Obj) {
    if (Obj == nullptr)
      return;
    Obj->~T();
    free(Obj, sizeof(T));
  }

  /// Bytes currently handed out to live metadata objects. Takes the
  /// heap lock: the counters are plain size_t fields updated under it,
  /// and an unlocked read would be a data race (a gap the thread-safety
  /// annotations surfaced — the pre-annotation accessors read the
  /// guarded fields lockless).
  size_t liveBytes() const {
    SpinLockGuard Guard(Lock);
    return LiveBytes;
  }

  /// Bytes of address space this heap has mapped for metadata.
  size_t mappedBytes() const {
    SpinLockGuard Guard(Lock);
    return MappedBytes;
  }

  /// The process-wide metadata heap used by default runtimes and the
  /// interposition shim.
  static InternalHeap &global();

  /// Fork quiesce (see Runtime's pthread_atfork handlers): holds the
  /// heap lock across fork() so the child never inherits it mid-
  /// critical-section from a parent thread that no longer exists.
  void lockForFork() MESH_ACQUIRE(Lock) { Lock.lock(); }
  void unlockForFork() MESH_RELEASE(Lock) { Lock.unlock(); }

private:
  struct FreeNode {
    FreeNode *Next;
  };

  static constexpr size_t kChunkBytes = 256 * 1024;
  static constexpr size_t kMinBlock = 16;
  static constexpr size_t kMaxBlock = 4096;
  static constexpr unsigned kNumClasses = 9; // 16,32,...,4096

  static unsigned classForSize(size_t Size);
  void refill(unsigned Class) MESH_REQUIRES(Lock);

  /// mutable so the const byte-count accessors can lock.
  mutable SpinLock Lock;
  FreeNode *FreeLists[kNumClasses] MESH_GUARDED_BY(Lock) = {};
  char *ChunkCursor MESH_GUARDED_BY(Lock) = nullptr;
  size_t ChunkRemaining MESH_GUARDED_BY(Lock) = 0;
  size_t LiveBytes MESH_GUARDED_BY(Lock) = 0;
  size_t MappedBytes MESH_GUARDED_BY(Lock) = 0;
};

} // namespace mesh

#endif // MESH_SUPPORT_INTERNALHEAP_H
