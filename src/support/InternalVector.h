//===- InternalVector.h - Containers over the internal heap -----*- C++ -*-===//
///
/// \file
/// std-compatible allocator drawing from an InternalHeap, plus the
/// container aliases Mesh's internals use. The allocator indirection
/// exists so that no container reachable from the malloc interposition
/// shim ever calls the system malloc.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_INTERNALVECTOR_H
#define MESH_SUPPORT_INTERNALVECTOR_H

#include "support/InternalHeap.h"

#include <cstddef>
#include <vector>

namespace mesh {

/// Allocator facade over InternalHeap::global().
template <typename T> class InternalAllocator {
public:
  using value_type = T;

  InternalAllocator() = default;
  template <typename U> InternalAllocator(const InternalAllocator<U> &) {}

  T *allocate(size_t N) {
    return static_cast<T *>(InternalHeap::global().alloc(N * sizeof(T)));
  }

  void deallocate(T *Ptr, size_t N) {
    InternalHeap::global().free(Ptr, N * sizeof(T));
  }

  friend bool operator==(const InternalAllocator &, const InternalAllocator &) {
    return true;
  }
};

/// Vector whose backing store comes from the internal metadata heap.
template <typename T> using InternalVector = std::vector<T, InternalAllocator<T>>;

} // namespace mesh

#endif // MESH_SUPPORT_INTERNALVECTOR_H
