//===- LockRank.cpp - Debug lock-rank enforcement --------------------------===//

#include "support/LockRank.h"

#include <cassert>

#ifndef NDEBUG

namespace mesh {
namespace lockrank {

namespace {

/// Process-wide rather than per-heap: no in-tree path holds one heap's
/// locks while calling into another heap, so cross-heap false
/// positives cannot occur (same argument the pre-split held-shard mask
/// in GlobalHeap.cpp made).
__thread uint32_t HeldHeapShardMask = 0;
__thread uint32_t HeldArenaShardMask = 0;
__thread bool ArenaLockHeld = false;

} // namespace

void acquireHeapShard(int Idx) {
  assert((HeldHeapShardMask >> Idx) == 0 &&
         "shard locks must be acquired in ascending index order");
  assert(HeldArenaShardMask == 0 && !ArenaLockHeld &&
         "heap shard locks must be acquired before any arena lock");
  HeldHeapShardMask |= uint32_t{1} << Idx;
}

void releaseHeapShard(int Idx) {
  assert((HeldHeapShardMask & (uint32_t{1} << Idx)) != 0 &&
         "unlocking a shard this thread does not hold");
  HeldHeapShardMask &= ~(uint32_t{1} << Idx);
}

void acquireArenaShard(int Idx) {
  assert((HeldArenaShardMask >> Idx) == 0 &&
         "arena shard locks must be acquired in ascending index order");
  assert(!ArenaLockHeld &&
         "arena shard locks must be acquired before ArenaLock");
  HeldArenaShardMask |= uint32_t{1} << Idx;
}

void releaseArenaShard(int Idx) {
  assert((HeldArenaShardMask & (uint32_t{1} << Idx)) != 0 &&
         "unlocking an arena shard this thread does not hold");
  HeldArenaShardMask &= ~(uint32_t{1} << Idx);
}

void acquireArenaLock() {
  assert(!ArenaLockHeld && "ArenaLock is not recursive");
  ArenaLockHeld = true;
}

void releaseArenaLock() {
  assert(ArenaLockHeld && "unlocking an ArenaLock this thread does not hold");
  ArenaLockHeld = false;
}

uint32_t heldArenaShards() { return HeldArenaShardMask; }
uint32_t heldHeapShards() { return HeldHeapShardMask; }

} // namespace lockrank
} // namespace mesh

#endif // NDEBUG
