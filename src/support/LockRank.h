//===- LockRank.h - Debug lock-rank enforcement -----------------*- C++ -*-===//
///
/// \file
/// Per-thread held-lock bookkeeping for the heap's ranked locks,
/// shared by GlobalHeap (heap shards) and MeshableArena (arena shards,
/// ArenaLock). The rank order is
///
///   MeshLock -> heap shards ascending -> arena shards ascending
///            -> ArenaLock
///
/// with EpochSyncLock/SinkSyncLock as leaves. Debug builds abort on
/// any out-of-rank acquisition (pinned by ShardLockOrderTest's death
/// tests); release builds compile every call here to nothing.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_LOCKRANK_H
#define MESH_SUPPORT_LOCKRANK_H

#include <cstdint>

namespace mesh {
namespace lockrank {

#ifndef NDEBUG

void acquireHeapShard(int Idx);
void releaseHeapShard(int Idx);
void acquireArenaShard(int Idx);
void releaseArenaShard(int Idx);
void acquireArenaLock();
void releaseArenaLock();

/// The bits of every arena shard this thread currently holds (test
/// probe for the held-lock-mask assertions in ArenaShardTest).
uint32_t heldArenaShards();
/// The bits of every heap shard this thread currently holds.
uint32_t heldHeapShards();

#else

inline void acquireHeapShard(int) {}
inline void releaseHeapShard(int) {}
inline void acquireArenaShard(int) {}
inline void releaseArenaShard(int) {}
inline void acquireArenaLock() {}
inline void releaseArenaLock() {}
inline uint32_t heldArenaShards() { return 0; }
inline uint32_t heldHeapShards() { return 0; }

#endif // NDEBUG

} // namespace lockrank
} // namespace mesh

#endif // MESH_SUPPORT_LOCKRANK_H
