//===- Log.cpp - Minimal logging and fatal-error reporting ---------------===//

#include "support/Log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

namespace mesh {

static void writeLine(const char *Prefix, const char *Fmt, va_list Args) {
  char Buf[512];
  size_t Off = strlen(Prefix);
  memcpy(Buf, Prefix, Off);
  int N = vsnprintf(Buf + Off, sizeof(Buf) - Off - 1, Fmt, Args);
  if (N < 0)
    N = 0;
  Off += static_cast<size_t>(N);
  if (Off > sizeof(Buf) - 2)
    Off = sizeof(Buf) - 2;
  Buf[Off++] = '\n';
  // Best effort; nothing sensible to do if stderr is gone.
  ssize_t Ignored = write(2, Buf, Off);
  (void)Ignored;
}

void logWarning(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  writeLine("mesh: warning: ", Fmt, Args);
  va_end(Args);
}

void fatalError(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  writeLine("mesh: fatal: ", Fmt, Args);
  va_end(Args);
  abort();
}

} // namespace mesh
