//===- Log.cpp - Minimal logging and fatal-error reporting ---------------===//

#include "support/Log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

namespace mesh {

static void writeLine(const char *Prefix, const char *Fmt, va_list Args) {
  char Buf[512];
  size_t Off = strlen(Prefix);
  memcpy(Buf, Prefix, Off);
  int N = vsnprintf(Buf + Off, sizeof(Buf) - Off - 1, Fmt, Args);
  if (N < 0)
    N = 0;
  Off += static_cast<size_t>(N);
  if (Off > sizeof(Buf) - 2)
    Off = sizeof(Buf) - 2;
  Buf[Off++] = '\n';
  // Best effort; nothing sensible to do if stderr is gone.
  ssize_t Ignored = write(2, Buf, Off);
  (void)Ignored;
}

void logWarning(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  writeLine("mesh: warning: ", Fmt, Args);
  va_end(Args);
}

void fatalError(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  writeLine("mesh: fatal: ", Fmt, Args);
  va_end(Args);
  abort();
}

void fatalErrorForkSafe(const char *Msg, int Err) {
  // No vsnprintf, no locale, no allocation: memcpy into a stack buffer
  // plus one write(2) and abort(), all async-signal-safe.
  char Buf[512];
  size_t Off = 0;
  const auto Append = [&](const char *S, size_t N) {
    if (N > sizeof(Buf) - 2 - Off)
      N = sizeof(Buf) - 2 - Off;
    memcpy(Buf + Off, S, N);
    Off += N;
  };
  Append("mesh: fatal: ", 13);
  Append(Msg, strlen(Msg));
  if (Err != 0) {
    Append(" (errno ", 8);
    char Digits[12];
    size_t N = 0;
    unsigned V = Err < 0 ? static_cast<unsigned>(-Err)
                         : static_cast<unsigned>(Err);
    do {
      Digits[N++] = static_cast<char>('0' + V % 10);
      V /= 10;
    } while (V != 0 && N < sizeof(Digits));
    if (Err < 0)
      Append("-", 1);
    while (N > 0)
      Append(&Digits[--N], 1);
    Append(")", 1);
  }
  Buf[Off++] = '\n';
  ssize_t Ignored = write(2, Buf, Off);
  (void)Ignored;
  abort();
}

} // namespace mesh
