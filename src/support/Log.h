//===- Log.h - Minimal logging and fatal-error reporting --------*- C++ -*-===//
///
/// \file
/// write(2)-based diagnostics. Library code must not use <iostream>
/// (static constructors) or printf-family functions that might allocate
/// through malloc while we *are* malloc, so messages are formatted into
/// a stack buffer and written directly to stderr.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_LOG_H
#define MESH_SUPPORT_LOG_H

namespace mesh {

/// Writes a formatted diagnostic line to stderr. Never allocates.
void logWarning(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Writes a formatted message to stderr and aborts. Never returns.
[[noreturn]] void fatalError(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Async-signal-safe fatal report: concatenates \p Msg and (when
/// nonzero) \p Err rendered in decimal with nothing but memcpy and one
/// write(2), then aborts. fatalError's vsnprintf is not
/// async-signal-safe, so every fatal path reachable from an atfork
/// child handler — and the preload bring-up paths that run before libc
/// is fully initialized — must use this instead.
[[noreturn]] void fatalErrorForkSafe(const char *Msg, int Err = 0);

} // namespace mesh

#endif // MESH_SUPPORT_LOG_H
