//===- Log.h - Minimal logging and fatal-error reporting --------*- C++ -*-===//
///
/// \file
/// write(2)-based diagnostics. Library code must not use <iostream>
/// (static constructors) or printf-family functions that might allocate
/// through malloc while we *are* malloc, so messages are formatted into
/// a stack buffer and written directly to stderr.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_LOG_H
#define MESH_SUPPORT_LOG_H

namespace mesh {

/// Writes a formatted diagnostic line to stderr. Never allocates.
void logWarning(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Writes a formatted message to stderr and aborts. Never returns.
[[noreturn]] void fatalError(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mesh

#endif // MESH_SUPPORT_LOG_H
