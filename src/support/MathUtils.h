//===- MathUtils.h - Small arithmetic helpers -------------------*- C++ -*-===//
///
/// \file
/// Power-of-two and rounding helpers used throughout the allocator, plus
/// the geometric mean used when summarizing benchmark suites.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_MATHUTILS_H
#define MESH_SUPPORT_MATHUTILS_H

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace mesh {

inline constexpr bool isPowerOfTwo(size_t X) {
  return X != 0 && (X & (X - 1)) == 0;
}

/// Rounds \p X up to the next multiple of \p Alignment (a power of two).
inline constexpr size_t roundUpPow2Multiple(size_t X, size_t Alignment) {
  return (X + Alignment - 1) & ~(Alignment - 1);
}

/// Rounds \p X up to the next power of two. roundUpToPowerOfTwo(0) == 1.
inline constexpr size_t roundUpToPowerOfTwo(size_t X) {
  if (X <= 1)
    return 1;
  return size_t{1} << (64 - __builtin_clzll(X - 1));
}

/// Floor of log2(X); X must be nonzero.
inline constexpr unsigned log2Floor(size_t X) {
  return 63 - static_cast<unsigned>(__builtin_clzll(X));
}

/// Geometric mean of \p Values; each value must be positive.
template <typename Range> double geometricMean(const Range &Values) {
  double LogSum = 0.0;
  size_t N = 0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
    ++N;
  }
  if (N == 0)
    return 0.0;
  return std::exp(LogSum / static_cast<double>(N));
}

} // namespace mesh

#endif // MESH_SUPPORT_MATHUTILS_H
