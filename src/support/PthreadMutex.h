//===- PthreadMutex.h - Annotated pthread_mutex_t wrapper -------*- C++ -*-===//
///
/// \file
/// A minimal capability-annotated wrapper around pthread_mutex_t for
/// the places Mesh genuinely needs a kernel-sleeping mutex (the
/// background mesher's wake mutex, which pairs with a condvar —
/// SpinLock cannot park a thread). Exists so fields protected by such a
/// mutex can carry MESH_GUARDED_BY like every SpinLock-guarded field;
/// a raw pthread_mutex_t is invisible to the thread-safety analysis.
///
/// Deliberately tiny: static initialization only (no allocating
/// constructor — this is used in paths reachable from the malloc
/// shim), no try-lock, no timed lock. native() exposes the underlying
/// handle for pthread_cond_(timed)wait, which atomically releases and
/// re-acquires the mutex around the sleep — from the analysis's (and
/// every caller's) perspective the capability is held throughout.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_PTHREADMUTEX_H
#define MESH_SUPPORT_PTHREADMUTEX_H

#include "support/Annotations.h"

#include <pthread.h>

namespace mesh {

class MESH_CAPABILITY("mutex") PthreadMutex {
public:
  PthreadMutex() = default;
  PthreadMutex(const PthreadMutex &) = delete;
  PthreadMutex &operator=(const PthreadMutex &) = delete;

  void lock() MESH_ACQUIRE() { pthread_mutex_lock(&M); }
  void unlock() MESH_RELEASE() { pthread_mutex_unlock(&M); }

  /// Underlying handle for pthread_cond_(timed)wait. Callers must hold
  /// the mutex (the condvar contract); the wait's internal
  /// release/re-acquire is invisible here, matching the capability
  /// model (held before, held after).
  pthread_mutex_t *native() MESH_REQUIRES(this) { return &M; }

  /// Fork-child recovery: re-initializes the inherited mutex state (a
  /// parent thread that no longer exists may have owned it at the fork
  /// instant). Only callable where exactly one thread exists — the
  /// pthread_atfork child handler.
  /// MESH_NO_THREAD_SAFETY_ANALYSIS: clobbers the lock without
  /// acquiring it, by design.
  void reinitAfterFork() MESH_NO_THREAD_SAFETY_ANALYSIS {
    pthread_mutex_init(&M, nullptr);
  }

private:
  pthread_mutex_t M = PTHREAD_MUTEX_INITIALIZER;
};

} // namespace mesh

#endif // MESH_SUPPORT_PTHREADMUTEX_H
