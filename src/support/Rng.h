//===- Rng.h - Deterministic pseudo-random number generation ---*- C++ -*-===//
///
/// \file
/// A small, fast, seedable PRNG (xoshiro256**, seeded via SplitMix64).
/// Mesh's guarantees rest on randomized allocation, so every randomized
/// decision in the allocator draws from one of these generators; fixing
/// the seed makes whole-heap runs reproducible in tests and benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_RNG_H
#define MESH_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace mesh {

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Not cryptographic; chosen for speed (the shuffle-vector fast path
/// performs one draw per free) and statistical quality sufficient for
/// the paper's uniform-offset arguments.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { seed(Seed); }

  /// Re-seeds the generator deterministically from \p Seed.
  void seed(uint64_t Seed) {
    // SplitMix64 expansion, as recommended by the xoshiro authors.
    for (auto &Word : State) {
      Seed += 0x9E3779B97F4A7C15ULL;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in the inclusive range [\p Lo, \p Hi].
  ///
  /// Uses Lemire's multiply-shift reduction; the bias for our ranges
  /// (at most 256 values) is at most 2^-56 and irrelevant in practice.
  uint32_t inRange(uint32_t Lo, uint32_t Hi) {
    assert(Lo <= Hi && "inRange requires a non-empty range");
    const uint64_t Span = static_cast<uint64_t>(Hi) - Lo + 1;
    const uint64_t Draw = next() >> 32;
    return Lo + static_cast<uint32_t>((Draw * Span) >> 32);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P.
  bool withProbability(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace mesh

#endif // MESH_SUPPORT_RNG_H
