//===- SpinLock.h - Test-and-test-and-set spin lock -------------*- C++ -*-===//
///
/// \file
/// A small TTAS spin lock meeting the BasicLockable requirements. Mesh
/// avoids std::mutex in paths reachable from the malloc interposition
/// shim: pthread mutex initialization may itself allocate on some libcs,
/// and the global-heap critical sections are short.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_SPINLOCK_H
#define MESH_SUPPORT_SPINLOCK_H

#include <atomic>
#include <sched.h>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mesh {

/// Pauses the core briefly inside a spin loop.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  void lock() {
    for (;;) {
      if (!Locked.exchange(true, std::memory_order_acquire))
        return;
      // Bounded pause-spin, then yield: if the holder is descheduled
      // (oversubscribed machine, or a mesh pass on another core),
      // burning the rest of this timeslice in _mm_pause only delays
      // the holder further.
      int Spins = 0;
      while (Locked.load(std::memory_order_relaxed)) {
        if (++Spins < 64)
          cpuRelax();
        else {
          sched_yield();
          Spins = 0;
        }
      }
    }
  }

  bool try_lock() {
    return !Locked.load(std::memory_order_relaxed) &&
           !Locked.exchange(true, std::memory_order_acquire);
  }

  void unlock() { Locked.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Locked{false};
};

} // namespace mesh

#endif // MESH_SUPPORT_SPINLOCK_H
