//===- SpinLock.h - Test-and-test-and-set spin lock -------------*- C++ -*-===//
///
/// \file
/// A small TTAS spin lock meeting the BasicLockable requirements. Mesh
/// avoids std::mutex in paths reachable from the malloc interposition
/// shim: pthread mutex initialization may itself allocate on some libcs,
/// and the global-heap critical sections are short.
///
/// SpinLock is a Thread Safety Analysis capability: under Clang with
/// -Wthread-safety, fields marked MESH_GUARDED_BY(Lock) can only be
/// touched while the lock is held, and MESH_REQUIRES contracts on
/// helpers are checked at every call site. Prefer SpinLockGuard over
/// manual lock()/unlock() pairs — it is annotation-aware, unlike
/// std::lock_guard.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_SPINLOCK_H
#define MESH_SUPPORT_SPINLOCK_H

#include <atomic>
#include <sched.h>

#include "support/Annotations.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mesh {

/// Pauses the core briefly inside a spin loop.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class MESH_CAPABILITY("mutex") SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  void lock() MESH_ACQUIRE() {
    for (;;) {
      if (!Locked.exchange(true, std::memory_order_acquire))
        return;
      // Bounded pause-spin, then yield: if the holder is descheduled
      // (oversubscribed machine, or a mesh pass on another core),
      // burning the rest of this timeslice in _mm_pause only delays
      // the holder further.
      int Spins = 0;
      while (Locked.load(std::memory_order_relaxed)) {
        if (++Spins < 64)
          cpuRelax();
        else {
          sched_yield();
          Spins = 0;
        }
      }
    }
  }

  bool try_lock() MESH_TRY_ACQUIRE(true) {
    return !Locked.load(std::memory_order_relaxed) &&
           !Locked.exchange(true, std::memory_order_acquire);
  }

  void unlock() MESH_RELEASE() {
    Locked.store(false, std::memory_order_release);
  }

private:
  std::atomic<bool> Locked{false};
};

/// Tag type selecting the adopting SpinLockGuard constructor.
struct AdoptLockTag {};
inline constexpr AdoptLockTag AdoptLock{};

/// RAII lock holder for SpinLock, visible to the thread-safety analysis
/// (std::lock_guard is not annotation-aware). Use the AdoptLock overload
/// after a successful try_lock().
class MESH_SCOPED_CAPABILITY SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock &L) MESH_ACQUIRE(L) : Lock(L) {
    Lock.lock();
  }

  /// Adopts a lock the caller already holds (e.g. via try_lock); the
  /// guard releases it on scope exit.
  SpinLockGuard(SpinLock &L, AdoptLockTag) MESH_REQUIRES(L) : Lock(L) {}

  SpinLockGuard(const SpinLockGuard &) = delete;
  SpinLockGuard &operator=(const SpinLockGuard &) = delete;

  ~SpinLockGuard() MESH_RELEASE() { Lock.unlock(); }

private:
  SpinLock &Lock;
};

} // namespace mesh

#endif // MESH_SUPPORT_SPINLOCK_H
