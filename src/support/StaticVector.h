//===- StaticVector.h - Fixed-capacity inline vector ------------*- C++ -*-===//
///
/// \file
/// A tiny fixed-capacity vector for trivially-copyable elements. Used
/// where Mesh needs small bounded collections with no heap traffic,
/// e.g. the list of virtual spans sharing a MiniHeap's physical span.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_STATICVECTOR_H
#define MESH_SUPPORT_STATICVECTOR_H

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace mesh {

template <typename T, uint32_t Capacity> class StaticVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "StaticVector only supports trivially copyable types");

public:
  StaticVector() = default;

  uint32_t size() const { return Count; }
  static constexpr uint32_t capacity() { return Capacity; }
  bool empty() const { return Count == 0; }
  bool full() const { return Count == Capacity; }

  void push_back(const T &Value) {
    assert(Count < Capacity && "StaticVector overflow");
    Data[Count++] = Value;
  }

  void pop_back() {
    assert(Count > 0 && "pop_back on empty StaticVector");
    --Count;
  }

  void clear() { Count = 0; }

  T &operator[](uint32_t I) {
    assert(I < Count && "StaticVector index out of range");
    return Data[I];
  }
  const T &operator[](uint32_t I) const {
    assert(I < Count && "StaticVector index out of range");
    return Data[I];
  }

  T &back() { return (*this)[Count - 1]; }
  const T &back() const { return (*this)[Count - 1]; }

  /// Removes element \p I by swapping the last element into its slot.
  void swapRemove(uint32_t I) {
    assert(I < Count && "swapRemove index out of range");
    Data[I] = Data[Count - 1];
    --Count;
  }

  const T *begin() const { return Data; }
  const T *end() const { return Data + Count; }
  T *begin() { return Data; }
  T *end() { return Data + Count; }

private:
  T Data[Capacity];
  uint32_t Count = 0;
};

} // namespace mesh

#endif // MESH_SUPPORT_STATICVECTOR_H
