//===- Sys.cpp - Syscall seam with deterministic fault injection ----------===//

#include "support/Sys.h"

#include "support/Log.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace mesh {
namespace sys {

namespace detail {
std::atomic<uint32_t> ArmedMask{kEnvUnparsed};
} // namespace detail

namespace {

/// Transient errnos are retried this many times before the wrapper
/// reports failure. Real EINTR storms resolve in one or two retries;
/// the bound only exists so an injected every=1 transient storm cannot
/// spin a caller forever.
constexpr int kMaxTransientRetries = 16;

/// Default stream seed for rate= specs that omit seed=.
constexpr uint64_t kDefaultRateSeed = 0x5EEDFA17;

std::atomic<uint64_t> InjectedCount{0};
std::atomic<uint64_t> RetriedCount{0};
/// Per-op call counters driving every=N / rate=N draws; reset whenever
/// a new plan is armed so storms are reproducible.
std::atomic<uint64_t> OpCalls[kNumOps] = {};

/// The armed plan. Written only while ArmedMask is disarmed (or under
/// ParseLock for the lazy env parse); wrapped calls racing a
/// configureFaults swap may draw from either plan, which tests avoid
/// by quiescing first.
struct Plan {
  int Errno[kNumOps] = {};
  uint64_t EveryN[kNumOps] = {};
  uint64_t RateN[kNumOps] = {};
  uint64_t Seed = kDefaultRateSeed;
};
Plan ActivePlan;

/// Serializes the lazy MESH_FAULT_INJECT parse (and plan swaps against
/// it). A raw flag, not SpinLock: this must be usable before any
/// static constructor and inside malloc.
std::atomic_flag ParseLock = ATOMIC_FLAG_INIT;

bool transientErrno(int E) { return E == EINTR || E == EAGAIN; }

uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

const char *findChar(const char *S, const char *End, char C) {
  for (; S != End; ++S)
    if (*S == C)
      return S;
  return End;
}

bool startsWith(const char *S, const char *End, const char *Lit) {
  const size_t Len = strlen(Lit);
  return static_cast<size_t>(End - S) >= Len && strncmp(S, Lit, Len) == 0;
}

bool parseU64Token(const char *S, const char *End, uint64_t *Out) {
  if (S == End)
    return false;
  uint64_t V = 0;
  for (; S != End; ++S) {
    if (*S < '0' || *S > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(*S - '0');
  }
  *Out = V;
  return true;
}

bool opBitsFor(const char *S, const char *End, uint32_t *Bits) {
  static const struct {
    const char *Name;
    Op Val;
  } Table[] = {
      {"memfd_create", kMemfdCreate},
      {"ftruncate", kFtruncate},
      {"mmap", kMmap},
      {"munmap", kMunmap},
      {"fallocate", kFallocate},
      {"madvise", kMadvise},
      {"mprotect", kMprotect},
      {"membarrier", kMembarrier},
      {"commit", kCommit},
  };
  const size_t Len = static_cast<size_t>(End - S);
  if (Len == 3 && strncmp(S, "all", 3) == 0) {
    *Bits = (1u << kNumOps) - 1;
    return true;
  }
  for (const auto &E : Table) {
    if (strlen(E.Name) == Len && strncmp(S, E.Name, Len) == 0) {
      *Bits = 1u << E.Val;
      return true;
    }
  }
  return false;
}

bool errnoFor(const char *S, const char *End, int *Err) {
  static const struct {
    const char *Name;
    int Val;
  } Table[] = {
      {"ENOMEM", ENOMEM}, {"ENOSPC", ENOSPC}, {"EINTR", EINTR},
      {"EAGAIN", EAGAIN}, {"EMFILE", EMFILE}, {"ENFILE", ENFILE},
      {"ENOSYS", ENOSYS}, {"EPERM", EPERM},   {"EINVAL", EINVAL},
  };
  const size_t Len = static_cast<size_t>(End - S);
  for (const auto &E : Table) {
    if (strlen(E.Name) == Len && strncmp(S, E.Name, Len) == 0) {
      *Err = E.Val;
      return true;
    }
  }
  uint64_t V = 0;
  if (parseU64Token(S, End, &V) && V > 0 && V < 4096) {
    *Err = static_cast<int>(V);
    return true;
  }
  return false;
}

bool parsePlan(const char *Spec, Plan &P, uint32_t *MaskOut) {
  uint32_t Mask = 0;
  const char *Cur = Spec;
  while (*Cur != '\0') {
    const char *SpecEnd = strchr(Cur, ';');
    if (SpecEnd == nullptr)
      SpecEnd = Cur + strlen(Cur);
    const char *C1 = findChar(Cur, SpecEnd, ':');
    if (C1 == SpecEnd)
      return false;
    uint32_t Bits = 0;
    if (!opBitsFor(Cur, C1, &Bits))
      return false;
    const char *C2 = findChar(C1 + 1, SpecEnd, ':');
    if (C2 == SpecEnd)
      return false;
    int Err = 0;
    if (!errnoFor(C1 + 1, C2, &Err))
      return false;
    const char *Mode = C2 + 1;
    uint64_t Every = 0;
    uint64_t Rate = 0;
    if (startsWith(Mode, SpecEnd, "every=")) {
      if (!parseU64Token(Mode + 6, SpecEnd, &Every) || Every == 0)
        return false;
    } else if (startsWith(Mode, SpecEnd, "rate=")) {
      const char *Comma = findChar(Mode, SpecEnd, ',');
      if (!parseU64Token(Mode + 5, Comma, &Rate) || Rate == 0)
        return false;
      if (Comma != SpecEnd) {
        if (!startsWith(Comma + 1, SpecEnd, "seed="))
          return false;
        uint64_t Seed = 0;
        if (!parseU64Token(Comma + 6, SpecEnd, &Seed))
          return false;
        P.Seed = Seed;
      }
    } else {
      return false;
    }
    for (unsigned O = 0; O < kNumOps; ++O) {
      if ((Bits & (1u << O)) == 0)
        continue;
      P.Errno[O] = Err;
      P.EveryN[O] = Every;
      P.RateN[O] = Rate;
    }
    Mask |= Bits;
    Cur = *SpecEnd == ';' ? SpecEnd + 1 : SpecEnd;
  }
  if (Mask == 0)
    return false;
  *MaskOut = Mask;
  return true;
}

/// Installs \p Spec as the active plan (empty/null disarms). The
/// caller owns serialization; on parse failure nothing is armed and
/// false is returned.
bool applySpec(const char *Spec) {
  Plan P;
  uint32_t Mask = 0;
  if (Spec != nullptr && *Spec != '\0' && !parsePlan(Spec, P, &Mask))
    return false;
  ActivePlan = P;
  for (auto &C : OpCalls)
    C.store(0, std::memory_order_relaxed);
  detail::ArmedMask.store(Mask, std::memory_order_release);
  return true;
}

void parseEnvOnce() {
  while (ParseLock.test_and_set(std::memory_order_acquire)) {
  }
  if (detail::ArmedMask.load(std::memory_order_relaxed) &
      detail::kEnvUnparsed) {
    const char *Env = std::getenv("MESH_FAULT_INJECT");
    if (!applySpec(Env)) {
      // Reachable from the atfork child handler only on paper: the
      // parse runs exactly once, at the first wrapped syscall — arena
      // construction — so by the time any fork happens this branch is
      // already burned (kEnvUnparsed cleared by applySpec below).
      logWarning( // mesh-lint: allow(atfork-unsafe-call)
          "ignoring invalid MESH_FAULT_INJECT=\"%s\" (expected "
          "<op>:<errno>:every=<N> or <op>:<errno>:rate=<N>[,seed=<S>], "
          "';'-separated); fault injection stays off",
          Env);
      detail::ArmedMask.store(0, std::memory_order_release);
    }
  }
  ParseLock.clear(std::memory_order_release);
}

} // namespace

namespace detail {

bool shouldInjectSlow(Op O, int *Err) {
  uint32_t Mask = ArmedMask.load(std::memory_order_acquire);
  if (Mask & kEnvUnparsed) {
    parseEnvOnce();
    Mask = ArmedMask.load(std::memory_order_acquire);
  }
  if ((Mask & (1u << O)) == 0)
    return false;
  const uint64_t Call = OpCalls[O].fetch_add(1, std::memory_order_relaxed) + 1;
  const Plan &P = ActivePlan;
  bool Fire = false;
  if (P.EveryN[O] != 0)
    Fire = Call % P.EveryN[O] == 0;
  else if (P.RateN[O] != 0)
    Fire = splitmix64(P.Seed ^ (Call << 8) ^ (O + 1)) % P.RateN[O] == 0;
  if (!Fire)
    return false;
  InjectedCount.fetch_add(1, std::memory_order_relaxed);
  *Err = P.Errno[O];
  return true;
}

} // namespace detail

namespace {

/// Counts a transient-errno retry and records it in the flight
/// recorder (Arg = the op, Payload = the errno being retried).
void noteRetry(Op O, int Err) {
  RetriedCount.fetch_add(1, std::memory_order_relaxed);
  telemetry::event(telemetry::EventType::kFaultRetry,
                   static_cast<uint16_t>(O),
                   static_cast<uint64_t>(Err));
}

/// Shared retry loop for the int-returning wrappers. \p Real performs
/// the actual syscall and returns its raw result (>= 0 success, -1
/// failure with errno set).
template <typename Fn> int wrapCall(Op O, Fn Real) {
  for (int Attempt = 0;; ++Attempt) {
    int Err = 0;
    if (injectedFault(O, &Err)) {
      if (transientErrno(Err) && Attempt < kMaxTransientRetries) {
        noteRetry(O, Err);
        continue;
      }
      errno = Err;
      return -1;
    }
    const int Rc = Real();
    if (Rc >= 0)
      return Rc;
    if (transientErrno(errno) && Attempt < kMaxTransientRetries) {
      noteRetry(O, errno);
      continue;
    }
    return -1;
  }
}

} // namespace

int memfdCreate(const char *Name, unsigned Flags) {
  return wrapCall(kMemfdCreate,
                  [&] { return ::memfd_create(Name, Flags); });
}

int ftruncateFd(int Fd, off_t Length) {
  return wrapCall(kFtruncate, [&] { return ::ftruncate(Fd, Length); });
}

void *mmapPtr(void *Addr, size_t Length, int Prot, int Flags, int Fd,
              off_t Offset) {
  for (int Attempt = 0;; ++Attempt) {
    int Err = 0;
    if (injectedFault(kMmap, &Err)) {
      if (transientErrno(Err) && Attempt < kMaxTransientRetries) {
        noteRetry(kMmap, Err);
        continue;
      }
      errno = Err;
      return MAP_FAILED;
    }
    void *Res = ::mmap(Addr, Length, Prot, Flags, Fd, Offset);
    if (Res != MAP_FAILED)
      return Res;
    // The kernel reports transient resource pressure on mmap as EAGAIN
    // (locked-memory limits) — worth the same bounded retry.
    if (transientErrno(errno) && Attempt < kMaxTransientRetries) {
      noteRetry(kMmap, errno);
      continue;
    }
    return MAP_FAILED;
  }
}

int munmapPtr(void *Addr, size_t Length) {
  return wrapCall(kMunmap, [&] { return ::munmap(Addr, Length); });
}

int fallocateFd(int Fd, int Mode, off_t Offset, off_t Length) {
  return wrapCall(kFallocate,
                  [&] { return ::fallocate(Fd, Mode, Offset, Length); });
}

int madvisePtr(void *Addr, size_t Length, int Advice) {
  return wrapCall(kMadvise, [&] { return ::madvise(Addr, Length, Advice); });
}

int mprotectPtr(void *Addr, size_t Length, int Prot) {
  return wrapCall(kMprotect, [&] { return ::mprotect(Addr, Length, Prot); });
}

int membarrierCall(int Cmd, unsigned Flags) {
  return wrapCall(kMembarrier, [&] {
    return static_cast<int>(::syscall(SYS_membarrier, Cmd, Flags, 0));
  });
}

bool commitGate() {
  for (int Attempt = 0;; ++Attempt) {
    int Err = 0;
    if (!injectedFault(kCommit, &Err))
      return true;
    if (transientErrno(Err) && Attempt < kMaxTransientRetries) {
      noteRetry(kCommit, Err);
      continue;
    }
    errno = Err;
    return false;
  }
}

bool configureFaults(const char *Spec) {
  while (ParseLock.test_and_set(std::memory_order_acquire)) {
  }
  detail::ArmedMask.store(0, std::memory_order_release);
  const bool Ok = applySpec(Spec);
  if (!Ok)
    logWarning("ignoring invalid fault spec \"%s\"; fault injection stays "
               "off",
               Spec);
  ParseLock.clear(std::memory_order_release);
  return Ok;
}

void clearFaults() {
  while (ParseLock.test_and_set(std::memory_order_acquire)) {
  }
  detail::ArmedMask.store(0, std::memory_order_release);
  ParseLock.clear(std::memory_order_release);
}

uint64_t faultsInjected() {
  return InjectedCount.load(std::memory_order_relaxed);
}

uint64_t faultsRetried() {
  return RetriedCount.load(std::memory_order_relaxed);
}

void resetFaultCounters() {
  InjectedCount.store(0, std::memory_order_relaxed);
  RetriedCount.store(0, std::memory_order_relaxed);
}

} // namespace sys
} // namespace mesh
