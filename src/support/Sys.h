//===- Sys.h - Syscall seam with deterministic fault injection --*- C++ -*-===//
///
/// \file
/// Every arena-facing syscall goes through the wrappers below instead
/// of calling the kernel directly. The seam buys two things:
///
///   1. Bounded transient-retry in one place: EINTR/EAGAIN from any
///      wrapped call is retried a fixed number of times, so callers
///      only ever see hard failures.
///   2. Deterministic fault injection for testing the degradation
///      paths, configured via MESH_FAULT_INJECT (or programmatically
///      with configureFaults). The format is a ';'-separated list of
///
///        <op>:<errno>:every=<N>
///        <op>:<errno>:rate=<N>[,seed=<S>]
///
///      where <op> is one of memfd_create, ftruncate, mmap, munmap,
///      fallocate, madvise, mprotect, membarrier, commit, or all;
///      <errno> is a symbolic name (ENOMEM, ENOSPC, EINTR, EAGAIN,
///      EMFILE, ENFILE, ENOSYS, EPERM, EINVAL) or a decimal number. every=N fails every Nth call of that op
///      deterministically; rate=N fails ~1-in-N calls drawn from a
///      seeded splitmix64 stream. "commit" is a pseudo-op: the arena's
///      commit accounting gate, which has no real syscall behind it
///      (see DESIGN.md "Failure policy" for why it is injectable).
///      Invalid specs warn and leave injection off, matching the
///      envU64/envBool contract.
///
/// Cost when off: one relaxed atomic load and a predictable branch per
/// wrapped call — the same shape as the MESH_DEBUG_SHIM trace gate.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_SYS_H
#define MESH_SUPPORT_SYS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <sys/types.h>

namespace mesh {
namespace sys {

/// The wrapped operations, one bit each in the armed mask.
enum Op : unsigned {
  kMemfdCreate,
  kFtruncate,
  kMmap,
  kMunmap,
  kFallocate,
  kMadvise,
  kMprotect,
  kMembarrier, ///< membarrier(2): the epoch's synchronize-side fence.
  kCommit,     ///< Pseudo-op: the arena's commit-accounting gate.
  kNumOps
};

namespace detail {

/// Bits [0, kNumOps) arm injection per op. The sentinel bit marks
/// "MESH_FAULT_INJECT not parsed yet": the first wrapped call parses
/// the environment lazily (getenv neither allocates nor locks, and the
/// first arena call may run inside malloc during preload bring-up).
constexpr uint32_t kEnvUnparsed = 0x80000000u;
extern std::atomic<uint32_t> ArmedMask;

/// Slow path: parses the environment (first call) and/or consults the
/// per-op plan. Returns true when this call must fail, with *Err set.
bool shouldInjectSlow(Op O, int *Err);

} // namespace detail

/// One relaxed load when injection is off — the entire disabled-mode
/// cost of the seam.
inline bool injectedFault(Op O, int *Err) {
  const uint32_t Mask = detail::ArmedMask.load(std::memory_order_relaxed);
  if (__builtin_expect(Mask == 0, 1))
    return false;
  return detail::shouldInjectSlow(O, Err);
}

/// memfd_create(2). Returns the fd, or -1 with errno set.
int memfdCreate(const char *Name, unsigned Flags);
/// ftruncate(2). Returns 0, or -1 with errno set.
int ftruncateFd(int Fd, off_t Length);
/// mmap(2). Returns the mapping, or MAP_FAILED with errno set.
void *mmapPtr(void *Addr, size_t Length, int Prot, int Flags, int Fd,
              off_t Offset);
/// munmap(2). Returns 0, or -1 with errno set.
int munmapPtr(void *Addr, size_t Length);
/// fallocate(2). Returns 0, or -1 with errno set.
int fallocateFd(int Fd, int Mode, off_t Offset, off_t Length);
/// madvise(2). Returns 0, or -1 with errno set.
int madvisePtr(void *Addr, size_t Length, int Advice);
/// mprotect(2). Returns 0, or -1 with errno set.
int mprotectPtr(void *Addr, size_t Length, int Prot);
/// membarrier(2) via syscall(2) — glibc has no wrapper. Returns the
/// raw result (>= 0 success; QUERY returns the command bitmask), or
/// -1 with errno set (ENOSYS on pre-4.3 kernels and under seccomp
/// policies that blanket-deny unknown syscalls). Injection on this op
/// is how tests force the epoch's seq-cst fallback at runtime.
int membarrierCall(int Cmd, unsigned Flags);

/// The commit pseudo-op: no syscall, just the injection gate. Returns
/// true to proceed; false (with errno set) simulates the kernel
/// refusing to back the pages — the failure that, un-injected, would
/// arrive later as SIGBUS at first touch.
bool commitGate();

/// Replaces the active fault plan with \p Spec (same grammar as
/// MESH_FAULT_INJECT; nullptr or "" disarms). Returns false — leaving
/// injection off — when the spec does not parse. Not thread-safe
/// against concurrent wrapped calls racing the swap in the sense that
/// a call in flight may draw from either plan; tests quiesce first.
bool configureFaults(const char *Spec);

/// Disarms injection and forgets the plan. The environment is not
/// re-read afterwards.
void clearFaults();

/// Total faults injected / transient retries performed, process-wide.
uint64_t faultsInjected();
uint64_t faultsRetried();

/// Zeroes both counters (the faults.reset mallctl leaf) so tests can
/// assert per-phase deltas instead of process-lifetime totals.
void resetFaultCounters();

} // namespace sys
} // namespace mesh

#endif // MESH_SUPPORT_SYS_H
