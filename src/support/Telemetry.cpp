//===- Telemetry.cpp - Flight recorder + latency histogram internals ------===//

#include "support/Telemetry.h"

#include "support/Log.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace mesh {
namespace telemetry {

namespace detail {
std::atomic<uint32_t> EnabledFlag{0};
} // namespace detail

namespace {

/// One recorded event. Seq is the per-slot seqlock word: 0 or
/// in-progress means invalid, cursor+1 means the slot holds the event
/// recorded at that cursor position.
struct Slot {
  std::atomic<uint64_t> Seq;
  std::atomic<uint64_t> TimeNs;
  std::atomic<uint64_t> Meta; ///< type << 48 | arg << 32 | tid
  std::atomic<uint64_t> Payload;
};

struct alignas(64) Ring {
  std::atomic<uint64_t> Cursor;
  Slot Slots[kMaxRingEvents];
};

/// kNumRings exclusive rings + 1 shared overflow ring. Static (BSS):
/// pages are only touched once a ring is written, so the reservation
/// costs address space, not RSS.
constexpr uint32_t kOverflowRing = kNumRings;
Ring Rings[kNumRings + 1];

std::atomic<uint64_t> RingMask{kDefaultRingEvents - 1};
std::atomic<uint64_t> OverflowRecords{0};
std::atomic<uint32_t> AssignCursor{0};

/// Exclusive-ring assignment, cached in initial-exec TLS (no DTV
/// allocation, so safe to touch from inside the allocator). 0 means
/// unassigned; stores ring index + 1.
__thread uint32_t MyRingPlusOne __attribute__((tls_model("initial-exec"))) = 0;
__thread uint32_t MyTid __attribute__((tls_model("initial-exec"))) = 0;

std::atomic<uint64_t> Hists[kNumHists][kHistBuckets];

/// Process-lifetime per-type totals. The ring walk can only see the
/// newest ring-size events, so the dump's events{} object reports
/// these instead — a rare event (a fork quiesce, a degradation) stays
/// countable even after a flood of epoch_syncs wraps every ring.
std::atomic<uint64_t> TypeTotals[static_cast<size_t>(
    EventType::kNumEventTypes)];

uint32_t assignRing() {
  const uint32_t N = AssignCursor.fetch_add(1, std::memory_order_relaxed);
  MyTid = static_cast<uint32_t>(::syscall(SYS_gettid));
  const uint32_t Idx = N < kNumRings ? N : kOverflowRing;
  MyRingPlusOne = Idx + 1;
  return Idx;
}

constexpr uint64_t packMeta(EventType T, uint16_t Arg, uint32_t Tid) {
  return (static_cast<uint64_t>(static_cast<uint16_t>(T)) << 48) |
         (static_cast<uint64_t>(Arg) << 32) | Tid;
}

const char *const kEventNames[static_cast<size_t>(
    EventType::kNumEventTypes)] = {
    "mesh_pass",   "mesh_scan",    "mesh_remap",    "mesh_release",
    "bg_wake",     "epoch_sync",   "dirty_trip",    "fault_retry",
    "fault_degrade", "fork_quiesce",
};

const char *const kHistNames[kNumHists] = {
    "mesh_pass",  "mesh_scan",     "mesh_remap",    "mesh_release",
    "epoch_sync", "span_acquire",  "punch_syscall", "remap_syscall",
};

/// True for events whose payload is a duration: rendered as Chrome
/// "X" (complete) events spanning [TimeNs - Payload, TimeNs].
bool isDurationEvent(EventType T, uint16_t Arg) {
  switch (T) {
  case EventType::kMeshPass:
  case EventType::kMeshScan:
  case EventType::kMeshRemap:
  case EventType::kMeshRelease:
  case EventType::kEpochSync:
    return true;
  case EventType::kForkQuiesce:
    return Arg != kForkPrepare;
  default:
    return false;
  }
}

std::atomic<uint64_t> ForkQuiesceBeginNs{0};

} // namespace

const char *eventTypeName(EventType T) {
  const size_t I = static_cast<size_t>(T);
  return I < static_cast<size_t>(EventType::kNumEventTypes) ? kEventNames[I]
                                                            : "unknown";
}

const char *histName(HistId H) {
  return H < kNumHists ? kHistNames[H] : "unknown";
}

int histIdByName(const char *Name) {
  for (uint16_t I = 0; I < kNumHists; ++I)
    if (strcmp(Name, kHistNames[I]) == 0)
      return I;
  return -1;
}

uint64_t monotonicTimeNs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(Ts.tv_nsec);
}

namespace detail {

void recordSlow(EventType T, uint16_t Arg, uint64_t Payload) {
  if (static_cast<size_t>(T) <
      static_cast<size_t>(EventType::kNumEventTypes))
    TypeTotals[static_cast<size_t>(T)].fetch_add(1,
                                                 std::memory_order_relaxed);
  uint32_t RingPlusOne = MyRingPlusOne;
  uint32_t Idx;
  if (__builtin_expect(RingPlusOne == 0, 0))
    Idx = assignRing();
  else
    Idx = RingPlusOne - 1;

  Ring &R = Rings[Idx];
  const uint64_t Mask = RingMask.load(std::memory_order_relaxed);
  uint64_t C;
  if (Idx != kOverflowRing) {
    // Exclusive ring: the owner is the only writer, so the cursor
    // advances with plain load/store — no RMW on the record path.
    C = R.Cursor.load(std::memory_order_relaxed);
    R.Cursor.store(C + 1, std::memory_order_relaxed);
  } else {
    C = R.Cursor.fetch_add(1, std::memory_order_relaxed);
    OverflowRecords.fetch_add(1, std::memory_order_relaxed);
  }

  Slot &S = R.Slots[C & Mask];
  // Seqlock write: invalidate, publish fields, then publish Seq with a
  // release store. The release fence orders the invalidation before
  // the field stores so a concurrent snapshot never pairs old Seq with
  // new fields.
  S.Seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  S.TimeNs.store(monotonicTimeNs(), std::memory_order_relaxed);
  S.Meta.store(packMeta(T, Arg, MyTid), std::memory_order_relaxed);
  S.Payload.store(Payload, std::memory_order_relaxed);
  S.Seq.store(C + 1, std::memory_order_release);
}

void histRecordSlow(HistId H, uint64_t ValueNs) {
  if (H >= kNumHists)
    return;
  Hists[H][bucketForValue(ValueNs)].fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

void enable() { detail::EnabledFlag.store(1, std::memory_order_release); }

void disable() { detail::EnabledFlag.store(0, std::memory_order_release); }

bool setRingEvents(uint64_t Events) {
  if (enabled())
    return false;
  if (Events < kMinRingEvents || Events > kMaxRingEvents ||
      (Events & (Events - 1)) != 0)
    return false;
  RingMask.store(Events - 1, std::memory_order_relaxed);
  // Remapping cursor->slot invalidates every existing slot's Seq
  // expectation, so start the rings over.
  reset();
  return true;
}

uint64_t ringEvents() {
  return RingMask.load(std::memory_order_relaxed) + 1;
}

void reset() {
  for (Ring &R : Rings) {
    R.Cursor.store(0, std::memory_order_relaxed);
    for (Slot &S : R.Slots)
      S.Seq.store(0, std::memory_order_relaxed);
  }
  OverflowRecords.store(0, std::memory_order_relaxed);
  for (auto &T : TypeTotals)
    T.store(0, std::memory_order_relaxed);
  for (auto &H : Hists)
    for (auto &B : H)
      B.store(0, std::memory_order_relaxed);
}

uint64_t eventsRecorded() {
  uint64_t Total = 0;
  for (const Ring &R : Rings)
    Total += R.Cursor.load(std::memory_order_relaxed);
  return Total;
}

uint64_t overflowEvents() {
  return OverflowRecords.load(std::memory_order_relaxed);
}

uint64_t ringsInUse() {
  const uint32_t N = AssignCursor.load(std::memory_order_relaxed);
  return N < kNumRings ? N : kNumRings;
}

void readHistogram(HistId H, uint64_t Buckets[kHistBuckets]) {
  for (uint32_t B = 0; B < kHistBuckets; ++B)
    Buckets[B] = H < kNumHists
                     ? Hists[H][B].load(std::memory_order_relaxed)
                     : 0;
}

void forkQuiesceBegin() {
  if (!enabled())
    return;
  ForkQuiesceBeginNs.store(monotonicTimeNs(), std::memory_order_relaxed);
  detail::recordSlow(EventType::kForkQuiesce, kForkPrepare, 0);
}

void forkQuiesceEnd(bool InChild) {
  if (!enabled())
    return;
  const uint64_t Begin = ForkQuiesceBeginNs.load(std::memory_order_relaxed);
  const uint64_t Window = Begin != 0 ? monotonicTimeNs() - Begin : 0;
  detail::recordSlow(EventType::kForkQuiesce,
                     InChild ? kForkChildResume : kForkParentResume, Window);
}

namespace {

/// Tiny buffered writer over write(2): no stdio stream, no allocation,
/// so dumps work from atexit handlers and fork children.
class FileBuf {
public:
  explicit FileBuf(int Fd) : Fd(Fd) {}

  void put(const char *S, size_t N) {
    while (N > 0) {
      const size_t Room = sizeof(Buf) - Len;
      const size_t Take = N < Room ? N : Room;
      memcpy(Buf + Len, S, Take);
      Len += Take;
      S += Take;
      N -= Take;
      if (Len == sizeof(Buf))
        flush();
    }
  }

  void puts(const char *S) { put(S, strlen(S)); }

  __attribute__((format(printf, 2, 3))) void fmt(const char *Fmt, ...) {
    char Tmp[512];
    va_list Ap;
    va_start(Ap, Fmt);
    const int N = vsnprintf(Tmp, sizeof(Tmp), Fmt, Ap);
    va_end(Ap);
    if (N > 0)
      put(Tmp, static_cast<size_t>(N) < sizeof(Tmp) ? static_cast<size_t>(N)
                                                    : sizeof(Tmp) - 1);
  }

  void flush() {
    size_t Off = 0;
    while (Off < Len) {
      const ssize_t W = ::write(Fd, Buf + Off, Len - Off);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        if (Err == 0)
          Err = errno;
        break;
      }
      Off += static_cast<size_t>(W);
    }
    Len = 0;
  }

  int error() const { return Err; }

private:
  int Fd;
  size_t Len = 0;
  int Err = 0;
  char Buf[4096];
};

/// Emits "<us>.<frac3>" for a nanosecond quantity (Chrome ts/dur are
/// microseconds).
void putMicros(FileBuf &Out, uint64_t Ns) {
  Out.fmt("%llu.%03llu", static_cast<unsigned long long>(Ns / 1000),
          static_cast<unsigned long long>(Ns % 1000));
}

/// Validated read of one slot at absolute cursor position \p C.
/// Returns false when the slot was overwritten or mid-write.
bool readSlot(const Ring &R, uint64_t C, uint64_t Mask, uint64_t *TimeNs,
              uint64_t *Meta, uint64_t *Payload) {
  const Slot &S = R.Slots[C & Mask];
  const uint64_t S1 = S.Seq.load(std::memory_order_acquire);
  if (S1 != C + 1)
    return false;
  *TimeNs = S.TimeNs.load(std::memory_order_relaxed);
  *Meta = S.Meta.load(std::memory_order_relaxed);
  *Payload = S.Payload.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return S.Seq.load(std::memory_order_relaxed) == S1;
}

} // namespace

int dumpTrace(const char *Path) {
  if (Path == nullptr || Path[0] == '\0')
    return EINVAL;
  const int Fd = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return errno;

  FileBuf Out(Fd);
  const int Pid = static_cast<int>(::getpid());
  const uint64_t Mask = RingMask.load(std::memory_order_relaxed);
  const uint64_t Size = Mask + 1;

  Out.puts("{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[");
  bool First = true;
  for (const Ring &R : Rings) {
    const uint64_t C = R.Cursor.load(std::memory_order_acquire);
    const uint64_t Begin = C > Size ? C - Size : 0;
    for (uint64_t I = Begin; I < C; ++I) {
      uint64_t TimeNs, Meta, Payload;
      if (!readSlot(R, I, Mask, &TimeNs, &Meta, &Payload))
        continue;
      const uint16_t RawType = static_cast<uint16_t>(Meta >> 48);
      if (RawType >= static_cast<uint16_t>(EventType::kNumEventTypes))
        continue;
      const EventType T = static_cast<EventType>(RawType);
      const uint16_t Arg = static_cast<uint16_t>(Meta >> 32);
      const uint32_t Tid = static_cast<uint32_t>(Meta);
      Out.puts(First ? "\n" : ",\n");
      First = false;
      if (isDurationEvent(T, Arg)) {
        const uint64_t Dur = Payload;
        const uint64_t Start = TimeNs > Dur ? TimeNs - Dur : 0;
        Out.fmt("{\"name\":\"%s\",\"cat\":\"mesh\",\"ph\":\"X\",\"pid\":%d,"
                "\"tid\":%u,\"ts\":",
                eventTypeName(T), Pid, Tid);
        putMicros(Out, Start);
        Out.puts(",\"dur\":");
        putMicros(Out, Dur);
      } else {
        Out.fmt("{\"name\":\"%s\",\"cat\":\"mesh\",\"ph\":\"i\",\"s\":\"t\","
                "\"pid\":%d,\"tid\":%u,\"ts\":",
                eventTypeName(T), Pid, Tid);
        putMicros(Out, TimeNs);
      }
      Out.fmt(",\"args\":{\"arg\":%u,\"payload\":%llu}}", Arg,
              static_cast<unsigned long long>(Payload));
    }
  }
  Out.puts("\n],\n");

  Out.fmt("\"meshTelemetry\":{\"schemaVersion\":1,\"pid\":%d,"
          "\"enabled\":%d,\"ring_events\":%llu,\"rings_in_use\":%llu,"
          "\"events_recorded\":%llu,\"overflow_events\":%llu,\n",
          Pid, enabled() ? 1 : 0,
          static_cast<unsigned long long>(ringEvents()),
          static_cast<unsigned long long>(ringsInUse()),
          static_cast<unsigned long long>(eventsRecorded()),
          static_cast<unsigned long long>(overflowEvents()));
  // Process-lifetime totals, not walk counts: a wrapped ring loses the
  // event *records* but never the fact that the type fired.
  Out.puts("\"events\":{");
  for (size_t I = 0; I < static_cast<size_t>(EventType::kNumEventTypes);
       ++I) {
    Out.fmt("%s\"%s\":%llu", I == 0 ? "" : ",", kEventNames[I],
            static_cast<unsigned long long>(
                TypeTotals[I].load(std::memory_order_relaxed)));
  }
  Out.puts("},\n\"histograms\":{");
  for (uint16_t H = 0; H < kNumHists; ++H) {
    uint64_t Buckets[kHistBuckets];
    readHistogram(static_cast<HistId>(H), Buckets);
    uint64_t Count = 0;
    for (uint64_t B : Buckets)
      Count += B;
    Out.fmt("%s\n\"%s\":{\"unit\":\"ns\",\"count\":%llu,\"buckets\":[",
            H == 0 ? "" : ",", kHistNames[H],
            static_cast<unsigned long long>(Count));
    for (uint32_t B = 0; B < kHistBuckets; ++B)
      Out.fmt("%s%llu", B == 0 ? "" : ",",
              static_cast<unsigned long long>(Buckets[B]));
    Out.puts("]}");
  }
  Out.puts("}}}\n");
  Out.flush();
  const int Err = Out.error();
  ::close(Fd);
  return Err;
}

namespace {
char TracePath[512];
void dumpTraceAtExit() {
  const int Err = dumpTrace(TracePath);
  if (Err != 0)
    logWarning("telemetry: MESH_TRACE dump to \"%s\" failed (errno %d)",
               TracePath, Err);
}
} // namespace

void maybeArmFromEnvironment() {
  static std::atomic<int> Armed{0};
  int Expected = 0;
  if (!Armed.compare_exchange_strong(Expected, 1,
                                     std::memory_order_acq_rel))
    return;
  const char *Path = getenv("MESH_TRACE");
  if (Path == nullptr || Path[0] == '\0')
    return;
  const size_t N = strlen(Path);
  if (N >= sizeof(TracePath)) {
    logWarning("telemetry: MESH_TRACE path longer than %zu bytes; ignoring",
               sizeof(TracePath) - 1);
    return;
  }
  memcpy(TracePath, Path, N + 1);
  enable();
  atexit(dumpTraceAtExit);
}

} // namespace telemetry
} // namespace mesh
