//===- Telemetry.h - Flight recorder + slow-path latency histograms -*- C++ -*-===//
///
/// \file
/// The allocator's observability layer: a lock-free flight recorder of
/// typed events plus log2-bucketed latency histograms, both covering
/// only the slow paths (mesh passes, epoch synchronize, span
/// acquisition, arena syscalls, fault handling, fork quiesce). The
/// lock-free malloc/free fast path records nothing, ever.
///
/// Design:
///
///   - **Gate.** One process-global enabled flag. Disabled (the
///     default) every instrumentation site costs exactly one relaxed
///     load and a predicted-untaken branch — the same idiom as
///     sys::injectedFault — and takes no clock readings. Timer reads
///     the clock only when armed.
///
///   - **Flight recorder.** kNumRings fixed per-thread event rings
///     plus one shared overflow ring, all in static storage (BSS;
///     untouched pages cost no RSS). A thread is assigned an exclusive
///     ring once, cached in initial-exec TLS exactly like
///     Epoch::stripeForThisThread; threads past kNumRings share the
///     overflow ring through a fetch_add cursor. Each slot is four
///     atomic u64 words (Seq, TimeNs, Meta, Payload). The recording
///     thread writes fields with relaxed stores and publishes with a
///     release store of Seq = cursor + 1 — a plain mov on x86, no RMW
///     on the exclusive-ring path. A dump is an epoch-style snapshot:
///     the reader walks the last ring-size cursor positions, validates
///     Seq per slot before and after reading the fields (a per-slot
///     seqlock), and silently skips slots overwritten mid-read. No
///     lock is ever taken, so recording threads are never stalled and
///     dumping is safe from a fork child or an atexit handler.
///
///   - **Histograms.** Global arrays of 64 atomic buckets per
///     histogram; value v lands in bucket floor(log2(v)) + 1 (bucket 0
///     holds zeros, the top bucket saturates). Recording is one
///     relaxed fetch_add on a slow path that just paid a syscall or a
///     pass; readout is a packed copy of the 64 counters from which
///     consumers (mallctl, bench_soak, tools/mesh-top.py) derive
///     p50/p99/p99.9.
///
/// Exposure: telemetry.* mallctl leaves (core/Runtime.cpp), a Chrome
/// trace_event JSON dump via mallctl("telemetry.dump") or
/// MESH_TRACE=<path> at process exit, and tools/mesh-top.py for a
/// human-readable snapshot. See DESIGN.md "Observability".
///
//===----------------------------------------------------------------------===//

#ifndef MESH_SUPPORT_TELEMETRY_H
#define MESH_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mesh {
namespace telemetry {

/// Every event class the recorder knows about. Arg and Payload are
/// per-type (documented inline); durations are nanoseconds.
enum class EventType : uint16_t {
  kMeshPass = 0, ///< Arg = origin (0 fg, 1 bg), Payload = pass ns
  kMeshScan,     ///< Arg = candidate pairs found, Payload = scan ns
  kMeshRemap,    ///< Arg = heap shard, Payload = pair remap ns
  kMeshRelease,  ///< Arg = pages released, Payload = flush ns
  kBgWake,       ///< Arg = 1 poke / 0 timer, Payload = total wakeups
  kEpochSync,    ///< Payload = synchronize wall ns
  kDirtyTrip,    ///< Arg = arena shard, Payload = dirty bytes at trip
  kFaultRetry,   ///< Arg = sys::Op, Payload = errno being retried
  kFaultDegrade, ///< Arg = DegradeKind, Payload = detail (errno/0)
  kForkQuiesce,  ///< Arg = ForkPhase, Payload = quiesce window ns
  kNumEventTypes
};

/// Arg values for kFaultDegrade.
enum DegradeKind : uint16_t {
  kDegradePunchFallback = 0, ///< hole punch -> MADV_DONTNEED fallback
  kDegradeMeshRollback,      ///< transactional mesh pass rolled back
  kDegradeEpochSeqCst,       ///< membarrier lost -> seq-cst epoch mode
  kNumDegradeKinds
};

/// Arg values for kForkQuiesce.
enum ForkPhase : uint16_t {
  kForkPrepare = 0,
  kForkParentResume,
  kForkChildResume,
};

/// The latency histograms. All record nanoseconds.
enum HistId : uint16_t {
  kHistMeshPass = 0, ///< full mesh pass wall time
  kHistMeshScan,     ///< candidate-scan phase of a pass
  kHistMeshRemap,    ///< single meshed-pair remap (copy + alias)
  kHistMeshRelease,  ///< free-span release (flushDirty) phase
  kHistEpochSync,    ///< MiniHeapEpoch.synchronize wall time
  kHistSpanAcquire,  ///< arena span acquisition on the refill path
  kHistPunchSyscall, ///< one hole-punch (fallocate) syscall
  kHistRemapSyscall, ///< one mesh remap (mmap alias) syscall
  kNumHists
};

constexpr uint32_t kHistBuckets = 64;

/// Ring geometry. kNumRings exclusive per-thread rings plus one shared
/// overflow ring; the per-ring slot count is runtime-settable between
/// kMinRingEvents and kMaxRingEvents (powers of two).
constexpr uint32_t kNumRings = 32;
constexpr uint64_t kMinRingEvents = 256;
constexpr uint64_t kMaxRingEvents = 8192;
constexpr uint64_t kDefaultRingEvents = 2048;

const char *eventTypeName(EventType T);
const char *histName(HistId H);
/// Reverse of histName; -1 when unknown.
int histIdByName(const char *Name);

namespace detail {
extern std::atomic<uint32_t> EnabledFlag;
void recordSlow(EventType T, uint16_t Arg, uint64_t Payload);
void histRecordSlow(HistId H, uint64_t ValueNs);
} // namespace detail

/// The gate every instrumentation site checks: one relaxed load,
/// branch predicted false.
inline bool enabled() {
  return __builtin_expect(
      detail::EnabledFlag.load(std::memory_order_relaxed) != 0, 0);
}

/// Records one event (no-op while disabled).
inline void event(EventType T, uint16_t Arg, uint64_t Payload) {
  if (enabled())
    detail::recordSlow(T, Arg, Payload);
}

/// Adds one nanosecond sample to histogram \p H (no-op while disabled).
inline void histRecord(HistId H, uint64_t Ns) {
  if (enabled())
    detail::histRecordSlow(H, Ns);
}

/// CLOCK_MONOTONIC in nanoseconds (the recorder's clock).
uint64_t monotonicTimeNs();

/// Reads the clock only when telemetry is enabled at construction, so
/// instrumenting a site costs zero syscalls while disabled. elapsedNs()
/// returns 0 for an unarmed timer.
class Timer {
public:
  Timer() : StartNs(enabled() ? monotonicTimeNs() : 0) {}
  bool armed() const { return StartNs != 0; }
  uint64_t elapsedNs() const {
    return StartNs == 0 ? 0 : monotonicTimeNs() - StartNs;
  }

private:
  uint64_t StartNs;
};

/// Turns recording on/off. enable() is idempotent and allocation-free.
void enable();
void disable();

/// Sets the per-ring slot count. Must be a power of two in
/// [kMinRingEvents, kMaxRingEvents] and telemetry must be disabled
/// (resizing live rings would corrupt the cursor/slot mapping).
bool setRingEvents(uint64_t Events);
uint64_t ringEvents();

/// Clears rings, histograms, and counters. Safe (but racy-benign) to
/// call while recording is live.
void reset();

/// Total events recorded (sum of ring cursors) and the subset that
/// went to the shared overflow ring (threads past kNumRings).
uint64_t eventsRecorded();
uint64_t overflowEvents();
/// Number of exclusive rings handed out so far (capped at kNumRings).
uint64_t ringsInUse();

/// Copies the 64 bucket counters of \p H into \p Buckets.
void readHistogram(HistId H, uint64_t Buckets[kHistBuckets]);

/// Bucket index for a value: 0 for 0, else min(63, floor(log2(v)) + 1).
inline uint32_t bucketForValue(uint64_t V) {
  if (V == 0)
    return 0;
  const uint32_t B = 64 - static_cast<uint32_t>(__builtin_clzll(V));
  return B < kHistBuckets ? B : kHistBuckets - 1;
}

/// Smallest value that lands in bucket \p B.
inline uint64_t bucketLowerBound(uint32_t B) {
  return B == 0 ? 0 : (UINT64_C(1) << (B - 1));
}

/// Writes a Chrome trace_event JSON snapshot (plus a "meshTelemetry"
/// sidecar object carrying counters and histogram buckets) to \p Path.
/// Allocation-free and lock-free: safe from atexit and from a fork
/// child after quiesce. Returns 0 or an errno.
int dumpTrace(const char *Path);

/// Fork-protocol hooks: Begin records kForkQuiesce/prepare and stamps
/// the window start; End records parent/child resume with the window
/// duration as payload. End is async-signal-safe (atfork child
/// context).
void forkQuiesceBegin();
void forkQuiesceEnd(bool InChild);

/// One-shot MESH_TRACE=<path> probe: when set and nonempty, enables
/// recording and registers an atexit dump to that path. Called from
/// Runtime construction so both the interposed default runtime and
/// in-process instance runtimes (benches, tests) honor it.
void maybeArmFromEnvironment();

} // namespace telemetry
} // namespace mesh

#endif // MESH_SUPPORT_TELEMETRY_H
