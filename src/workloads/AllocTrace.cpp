//===- AllocTrace.cpp - Allocation trace record & replay ----------------------===//

#include "workloads/AllocTrace.h"

#include "support/Log.h"

#include <cstring>
#include <ctime>

namespace mesh {

namespace {

double nowSeconds() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) + Ts.tv_nsec * 1e-9;
}

unsigned char patternFor(uint32_t Id) {
  return static_cast<unsigned char>(0x39 + Id * 0x9E3779B9u);
}

} // namespace

size_t AllocTrace::liveBytesAtEnd() const {
  std::vector<uint32_t> Sizes(ObjectCount, 0);
  for (const TraceOp &Op : Ops) {
    if (Op.Op == TraceOp::Malloc)
      Sizes[Op.Id] = Op.Size;
    else
      Sizes[Op.Id] = 0;
  }
  size_t Total = 0;
  for (uint32_t S : Sizes)
    Total += S;
  return Total;
}

bool AllocTrace::validate() const {
  std::vector<bool> Live(ObjectCount, false);
  for (const TraceOp &Op : Ops) {
    if (Op.Id >= ObjectCount)
      return false;
    if (Op.Op == TraceOp::Malloc) {
      if (Live[Op.Id])
        return false; // id reused while live
      Live[Op.Id] = true;
    } else {
      if (!Live[Op.Id])
        return false; // free of dead object
      Live[Op.Id] = false;
    }
  }
  return true;
}

AllocTrace AllocTrace::churn(size_t Steps, size_t MaxLive, size_t MinSize,
                             size_t MaxSize, uint64_t Seed) {
  AllocTrace Trace;
  Rng Random(Seed);
  std::vector<uint32_t> Live;
  uint32_t NextId = 0;
  for (size_t Step = 0; Step < Steps; ++Step) {
    const bool DoAlloc =
        Live.empty() ||
        (Live.size() < MaxLive && Random.withProbability(0.55));
    if (DoAlloc) {
      const auto Size = static_cast<uint32_t>(Random.inRange(
          static_cast<uint32_t>(MinSize), static_cast<uint32_t>(MaxSize)));
      Trace.recordMalloc(NextId, Size);
      Live.push_back(NextId++);
    } else {
      const size_t Idx = Random.inRange(0, Live.size() - 1);
      Trace.recordFree(Live[Idx]);
      Live[Idx] = Live.back();
      Live.pop_back();
    }
  }
  return Trace;
}

AllocTrace AllocTrace::fragmented(size_t Count, size_t Size,
                                  size_t KeepEvery) {
  AllocTrace Trace;
  for (uint32_t Id = 0; Id < Count; ++Id)
    Trace.recordMalloc(Id, static_cast<uint32_t>(Size));
  for (uint32_t Id = 0; Id < Count; ++Id)
    if (Id % KeepEvery != 0)
      Trace.recordFree(Id);
  return Trace;
}

AllocTrace AllocTrace::generational(size_t Phases, size_t PerPhase,
                                    size_t MinSize, size_t MaxSize,
                                    uint64_t Seed) {
  AllocTrace Trace;
  Rng Random(Seed);
  std::vector<std::vector<uint32_t>> Generations;
  uint32_t NextId = 0;
  for (size_t Phase = 0; Phase < Phases; ++Phase) {
    std::vector<uint32_t> Gen;
    for (size_t I = 0; I < PerPhase; ++I) {
      const auto Size = static_cast<uint32_t>(Random.inRange(
          static_cast<uint32_t>(MinSize), static_cast<uint32_t>(MaxSize)));
      Trace.recordMalloc(NextId, Size);
      Gen.push_back(NextId++);
    }
    Generations.push_back(std::move(Gen));
    // The generation before last dies (old results are discarded).
    if (Generations.size() >= 3) {
      for (uint32_t Id : Generations[Generations.size() - 3])
        Trace.recordFree(Id);
      Generations[Generations.size() - 3].clear();
    }
  }
  return Trace;
}

ReplayResult replayTrace(const AllocTrace &Trace, HeapBackend &Backend,
                         uint64_t TickEvery) {
  ReplayResult Result;
  std::vector<char *> Objects(Trace.objectCount(), nullptr);
  std::vector<uint32_t> Sizes(Trace.objectCount(), 0);
  const double Start = nowSeconds();
  uint64_t OpIndex = 0;
  for (const TraceOp &Op : Trace.ops()) {
    if (Op.Op == TraceOp::Malloc) {
      char *P = static_cast<char *>(Backend.malloc(Op.Size));
      if (P == nullptr)
        fatalError("trace replay: allocation of %u bytes failed", Op.Size);
      memset(P, patternFor(Op.Id), Op.Size);
      Objects[Op.Id] = P;
      Sizes[Op.Id] = Op.Size;
    } else {
      char *P = Objects[Op.Id];
      // Verify first/last byte: catches cross-object corruption during
      // replay (e.g. a mis-meshed span).
      const unsigned char Want = patternFor(Op.Id);
      if (static_cast<unsigned char>(P[0]) != Want ||
          static_cast<unsigned char>(P[Sizes[Op.Id] - 1]) != Want)
        fatalError("trace replay: object %u corrupted", Op.Id);
      Result.Checksum += Want;
      Backend.free(P);
      Objects[Op.Id] = nullptr;
    }
    ++OpIndex;
    if (TickEvery != 0 && OpIndex % TickEvery == 0) {
      Backend.tick();
      const size_t Now = Backend.committedBytes();
      if (Now > Result.PeakCommittedBytes)
        Result.PeakCommittedBytes = Now;
    }
  }
  Result.Seconds = nowSeconds() - Start;
  const size_t Final = Backend.committedBytes();
  if (Final > Result.PeakCommittedBytes)
    Result.PeakCommittedBytes = Final;
  Result.FinalCommittedBytes = Final;
  Result.LiveBytesAtEnd = Trace.liveBytesAtEnd();
  for (uint32_t Id = 0; Id < Trace.objectCount(); ++Id)
    if (Objects[Id] != nullptr)
      Backend.free(Objects[Id]);
  return Result;
}

} // namespace mesh
