//===- AllocTrace.h - Allocation trace record & replay ----------*- C++ -*-===//
///
/// \file
/// A minimal allocation-trace substrate: traces are sequences of
/// malloc/free operations with stable object ids, so the *same*
/// allocation stream can be replayed against any HeapBackend — the
/// methodological core of the paper's evaluation (identical workload,
/// different allocators, compare RSS). Includes generators for the
/// canonical stream shapes used across the benchmarks and a recorder
/// for capturing traces from instrumented call sites.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_ALLOCTRACE_H
#define MESH_WORKLOADS_ALLOCTRACE_H

#include "baseline/HeapBackend.h"
#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mesh {

/// One traced operation. Frees reference the allocating op's index.
struct TraceOp {
  enum Kind : uint8_t { Malloc, Free };
  Kind Op;
  uint32_t Id;   ///< Object id (allocation index).
  uint32_t Size; ///< Malloc only.
};

class AllocTrace {
public:
  void recordMalloc(uint32_t Id, size_t Size) {
    Ops.push_back(TraceOp{TraceOp::Malloc, Id,
                          static_cast<uint32_t>(Size)});
    if (Id >= ObjectCount)
      ObjectCount = Id + 1;
  }
  void recordFree(uint32_t Id) {
    Ops.push_back(TraceOp{TraceOp::Free, Id, 0});
  }

  const std::vector<TraceOp> &ops() const { return Ops; }
  size_t objectCount() const { return ObjectCount; }

  /// Total bytes live at the end of the trace (leaked objects).
  size_t liveBytesAtEnd() const;

  /// Verifies well-formedness: every free targets a live object, no
  /// double frees, ids dense. Returns false on violation.
  bool validate() const;

  // -- Generators (deterministic given the seed) ------------------------

  /// Uniform churn: \p Steps operations, live set bounded by \p MaxLive,
  /// sizes uniform in [\p MinSize, \p MaxSize].
  static AllocTrace churn(size_t Steps, size_t MaxLive, size_t MinSize,
                          size_t MaxSize, uint64_t Seed);

  /// The fragmentation shape: allocate \p Count objects of \p Size,
  /// then free all but every \p KeepEvery-th.
  static AllocTrace fragmented(size_t Count, size_t Size,
                               size_t KeepEvery);

  /// Phased lifetimes: \p Phases rounds of \p PerPhase allocations
  /// where each round frees the survivors of the round before last.
  static AllocTrace generational(size_t Phases, size_t PerPhase,
                                 size_t MinSize, size_t MaxSize,
                                 uint64_t Seed);

private:
  std::vector<TraceOp> Ops;
  size_t ObjectCount = 0;
};

/// Result of replaying a trace against a backend.
struct ReplayResult {
  size_t PeakCommittedBytes = 0;
  size_t FinalCommittedBytes = 0;
  size_t LiveBytesAtEnd = 0;
  double Seconds = 0;
  uint64_t Checksum = 0; ///< Over object contents; equal across backends.
};

/// Replays \p Trace against \p Backend. Every object is filled with a
/// deterministic pattern on allocation and verified on free, so replay
/// doubles as a correctness check. \p TickEvery invokes Backend.tick()
/// on that op cadence (0 = never). Leaked objects are freed at the end
/// (after FinalCommittedBytes is read).
ReplayResult replayTrace(const AllocTrace &Trace, HeapBackend &Backend,
                         uint64_t TickEvery = 0);

} // namespace mesh

#endif // MESH_WORKLOADS_ALLOCTRACE_H
