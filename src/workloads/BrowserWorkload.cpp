//===- BrowserWorkload.cpp - Firefox/Speedometer stand-in --------------------===//

#include "workloads/BrowserWorkload.h"

#include "support/Rng.h"

#include <cstring>
#include <ctime>
#include <vector>

namespace mesh {

namespace {

double nowSeconds() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) + Ts.tv_nsec * 1e-9;
}

/// Defeats dead-code elimination of dwell-work checksums.
void benchmarkKeepAlive(uint64_t Value) {
  __asm__ volatile("" : : "r"(Value) : "memory");
}

/// DOM-flavoured size distribution: lots of node-sized objects, a tail
/// of strings/styles, occasional buffers. Sizes land in distinct size
/// classes so fragmentation spreads across classes like a browser's.
size_t drawSize(Rng &Random) {
  const uint32_t Kind = Random.inRange(0, 99);
  if (Kind < 40)
    return 32 + 16 * Random.inRange(0, 5); // DOM nodes: 32..112
  if (Kind < 65)
    return 128 + 16 * Random.inRange(0, 23); // styles: 128..496
  if (Kind < 85)
    return 16 + 8 * Random.inRange(0, 5); // small strings
  if (Kind < 97)
    return 512 + 64 * Random.inRange(0, 23); // text runs: 512..1984
  return 4096 + 1024 * Random.inRange(0, 27); // buffers: 4K..31K
}

} // namespace

BrowserWorkloadResult runBrowserWorkload(HeapBackend &Backend,
                                         MemoryMeter &Meter,
                                         const BrowserWorkloadConfig &Cfg) {
  BrowserWorkloadResult Result;
  Rng Random(Cfg.Seed);
  // Upper bound on recorded ops: per episode, every allocation can
  // record twice (alloc + churn) plus once at teardown, and the
  // periodic cache drop re-records surviving objects — 4x covers all
  // of it. Dwell and cooldown sampleNow() calls ride in the slack.
  // Reserving up front keeps the meter's own series allocation out of
  // the measured window.
  Meter.reserveForOps(static_cast<uint64_t>(Cfg.Episodes) *
                          Cfg.AllocsPerEpisode * 4,
                      static_cast<size_t>(Cfg.Episodes) * 3 +
                          static_cast<size_t>(Cfg.CooldownRounds) + 16);
  const double Start = nowSeconds();
  uint64_t TotalOps = 0;

  // Objects that survive their episode (caches, retained documents).
  std::vector<std::pair<char *, size_t>> Persistent;

  for (int Episode = 0; Episode < Cfg.Episodes; ++Episode) {
    std::vector<std::pair<char *, size_t>> EpisodeLive;
    EpisodeLive.reserve(Cfg.AllocsPerEpisode / 2);
    uint64_t EpisodeChecksum = 0;
    for (size_t I = 0; I < Cfg.AllocsPerEpisode; ++I) {
      const size_t Size = drawSize(Random);
      auto *P = static_cast<char *>(Backend.malloc(Size));
      // Initialize the object and do a little "layout" work over it —
      // a real DOM node is constructed and styled, not just placed.
      memset(P, 'b', Size);
      for (size_t J = 0; J < Size; J += 16)
        EpisodeChecksum += static_cast<unsigned char>(P[J]) + J;
      EpisodeLive.push_back({P, Size});
      ++TotalOps;
      Meter.recordOp();
      // In-episode churn: DOM rebuilds free recent allocations.
      if (!EpisodeLive.empty() &&
          Random.withProbability(Cfg.InEpisodeChurn)) {
        const size_t Idx = Random.inRange(0, EpisodeLive.size() - 1);
        Backend.free(EpisodeLive[Idx].first);
        EpisodeLive[Idx] = EpisodeLive.back();
        EpisodeLive.pop_back();
        ++TotalOps;
        Meter.recordOp();
      }
    }
    benchmarkKeepAlive(EpisodeChecksum);
    // Suite teardown: most of the episode dies, a slice survives.
    for (auto &[P, Size] : EpisodeLive) {
      if (Random.withProbability(Cfg.SurvivalFraction)) {
        Persistent.push_back({P, Size});
      } else {
        Backend.free(P);
        ++TotalOps;
      }
      Meter.recordOp();
    }
    // Periodically the browser drops old caches (tab GC), leaving the
    // sparse spans a compacting allocator can reclaim.
    if (Episode % 6 == 5) {
      size_t Kept = 0;
      for (size_t I = 0; I < Persistent.size(); ++I) {
        if (Random.withProbability(0.5))
          Persistent[Kept++] = Persistent[I];
        else
          Backend.free(Persistent[I].first);
        Meter.recordOp();
      }
      Persistent.resize(Kept);
    }
    // Dwell: layout/JS work over the retained state (most of a real
    // suite's time is spent here, not in the allocator).
    uint64_t Checksum = 0;
    for (int Dwell = 0; Dwell < 3; ++Dwell) {
      for (auto &[P, Size] : Persistent)
        for (size_t J = 0; J < Size; J += 64)
          Checksum += static_cast<unsigned char>(P[J]);
      Meter.sampleNow();
    }
    benchmarkKeepAlive(Checksum);
  }

  // Cooldown: the paper samples for 15 s after the score is reported.
  for (int Round = 0; Round < Cfg.CooldownRounds; ++Round) {
    Backend.flush();
    Meter.sampleNow();
  }

  Result.Seconds = nowSeconds() - Start;
  Result.Score = static_cast<double>(TotalOps) / Result.Seconds;
  Result.FinalCommittedBytes = Backend.committedBytes();
  for (auto &[P, Size] : Persistent)
    Backend.free(P);
  return Result;
}

} // namespace mesh
