//===- BrowserWorkload.h - Firefox/Speedometer stand-in ---------*- C++ -*-===//
///
/// \file
/// The Firefox + Speedometer 2.0 stand-in (paper Section 6.2.1).
/// Speedometer runs a series of small "todo app" suites; each suite
/// builds DOM nodes, style structs and strings, churns them while the
/// app runs, and tears most of it down when the suite ends — but some
/// state (caches, retained documents) survives across suites and
/// fragments the heap. The run ends with a cooldown during which the
/// paper's mstat kept sampling (that is when compaction pays off).
///
/// The generator reproduces that allocation stream: per-episode mixed
/// size classes drawn from a DOM-flavoured distribution, in-episode
/// churn, partial survival across episodes, and a final cooldown.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_BROWSERWORKLOAD_H
#define MESH_WORKLOADS_BROWSERWORKLOAD_H

#include "workloads/MemoryMeter.h"

#include <cstddef>
#include <cstdint>

namespace mesh {

struct BrowserWorkloadConfig {
  int Episodes = 24;              ///< Speedometer test suites.
  size_t AllocsPerEpisode = 50000;
  double InEpisodeChurn = 0.45;   ///< Fraction freed while running.
  double SurvivalFraction = 0.12; ///< Outlives its episode.
  int CooldownRounds = 10;
  uint64_t Seed = 5704; // Firefox 57.0.4
  uint64_t OpsPerSample = 16384;
};

struct BrowserWorkloadResult {
  double Seconds = 0;
  double Score = 0; ///< Operations per second (Speedometer analogue).
  size_t FinalCommittedBytes = 0;
};

BrowserWorkloadResult runBrowserWorkload(HeapBackend &Backend,
                                         MemoryMeter &Meter,
                                         const BrowserWorkloadConfig &Config);

} // namespace mesh

#endif // MESH_WORKLOADS_BROWSERWORKLOAD_H
