//===- KVStore.cpp - Redis-like key/value store ------------------------------===//

#include "workloads/KVStore.h"

#include "support/Log.h"

#include <cassert>
#include <cstring>

namespace mesh {

KVStore::KVStore(HeapBackend &Backend, size_t Budget, unsigned Samples)
    : Heap(Backend), MaxBytes(Budget), EvictionSamples(Samples) {
  BucketCount = 1024;
  // A store with no bucket array cannot degrade into anything useful,
  // so the initial table is the one allocation worth retrying hard
  // (each attempt re-draws the fault injector) and aborting on.
  for (int Try = 0; Try < 8 && Buckets == nullptr; ++Try)
    Buckets = static_cast<Node **>(
        Heap.malloc(BucketCount * sizeof(Node *)));
  if (Buckets == nullptr)
    fatalError("KVStore: cannot allocate the initial bucket array");
  memset(Buckets, 0, BucketCount * sizeof(Node *));
}

KVStore::~KVStore() {
  for (size_t B = 0; B < BucketCount; ++B) {
    Node *N = Buckets[B];
    while (N != nullptr) {
      Node *Next = N->HashNext;
      destroyNode(N);
      N = Next;
    }
  }
  Heap.free(Buckets);
}

uint64_t KVStore::hashBytes(std::string_view Bytes) {
  // FNV-1a.
  uint64_t H = 14695981039346656037ULL;
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

KVStore::Node **KVStore::bucketFor(std::string_view Key) {
  return &Buckets[hashBytes(Key) & (BucketCount - 1)];
}

KVStore::Node *KVStore::find(std::string_view Key) {
  // KeyLen == 0 short-circuits the memcmp: an empty lookup key's
  // data() may be nullptr, which memcmp must never see even for a
  // zero length.
  for (Node *N = *bucketFor(Key); N != nullptr; N = N->HashNext)
    if (Key.size() == N->KeyLen &&
        (N->KeyLen == 0 || memcmp(Key.data(), N->Key, N->KeyLen) == 0))
      return N;
  return nullptr;
}

void KVStore::detachLru(Node *N) {
  if (N->LruPrev != nullptr)
    N->LruPrev->LruNext = N->LruNext;
  else
    LruHead = N->LruNext;
  if (N->LruNext != nullptr)
    N->LruNext->LruPrev = N->LruPrev;
  else
    LruTail = N->LruPrev;
  N->LruPrev = N->LruNext = nullptr;
}

void KVStore::pushFrontLru(Node *N) {
  N->LruPrev = nullptr;
  N->LruNext = LruHead;
  if (LruHead != nullptr)
    LruHead->LruPrev = N;
  LruHead = N;
  if (LruTail == nullptr)
    LruTail = N;
}

char *KVStore::copyString(std::string_view S) {
  // Backend malloc(0) contract (pinned by BackendContractTest
  // .MallocZeroReturnsDistinctFreeablePointers): every HeapBackend
  // returns a distinct, non-null, freeable pointer for zero-size
  // requests, so empty keys and values need no null sentinel in the
  // node. A null here therefore always means backend OOM, which the
  // caller must tolerate (set() fails cleanly, defrag skips the
  // entry). The memcpy is still guarded: an empty string_view's data()
  // may legally be nullptr, and memcpy(p, nullptr, 0) is UB.
  char *Mem = static_cast<char *>(Heap.malloc(S.size()));
  if (Mem != nullptr && !S.empty())
    memcpy(Mem, S.data(), S.size());
  return Mem;
}

void KVStore::destroyNode(Node *N) {
  Payload -= N->KeyLen + N->ValueLen;
  Heap.free(N->Key);
  Heap.free(N->Value);
  Heap.free(N);
  --Count;
}

KVStore::Node *KVStore::sampleEvictionVictim() {
  // Redis-style approximated LRU: sample EvictionSamples random
  // entries (via random hash buckets) and take the stalest.
  Node *Victim = nullptr;
  unsigned Sampled = 0;
  unsigned Attempts = 0;
  while (Sampled < EvictionSamples && Attempts < EvictionSamples * 8) {
    ++Attempts;
    const size_t B = SampleRng.inRange(0, BucketCount - 1);
    Node *N = Buckets[B];
    if (N == nullptr)
      continue;
    // Walk a random distance into the chain.
    for (uint32_t Hop = SampleRng.inRange(0, 2); Hop > 0 && N->HashNext;
         --Hop)
      N = N->HashNext;
    ++Sampled;
    if (Victim == nullptr || N->LastUsed < Victim->LastUsed)
      Victim = N;
  }
  return Victim != nullptr ? Victim : LruTail;
}

void KVStore::removeNode(Node *N) {
  detachLru(N);
  Node **Slot = bucketFor(std::string_view(N->Key, N->KeyLen));
  while (*Slot != N)
    Slot = &(*Slot)->HashNext;
  *Slot = N->HashNext;
  destroyNode(N);
}

void KVStore::evictIfNeeded() {
  if (MaxBytes == 0)
    return;
  while (Payload > MaxBytes && LruTail != nullptr) {
    Node *Victim =
        EvictionSamples == 0 ? LruTail : sampleEvictionVictim();
    removeNode(Victim);
    ++Evictions;
  }
}

void KVStore::rehashIfNeeded() {
  if (Count < BucketCount * 2)
    return;
  const size_t NewCount = BucketCount * 4;
  Node **Fresh = static_cast<Node **>(
      Heap.malloc(NewCount * sizeof(Node *)));
  if (Fresh == nullptr)
    return; // Keep the crowded table; the next insert retries.
  memset(Fresh, 0, NewCount * sizeof(Node *));
  for (size_t B = 0; B < BucketCount; ++B) {
    Node *N = Buckets[B];
    while (N != nullptr) {
      Node *Next = N->HashNext;
      Node **Slot =
          &Fresh[hashBytes(std::string_view(N->Key, N->KeyLen)) &
                 (NewCount - 1)];
      N->HashNext = *Slot;
      *Slot = N;
      N = Next;
    }
  }
  Heap.free(Buckets);
  Buckets = Fresh;
  BucketCount = NewCount;
}

bool KVStore::set(std::string_view Key, std::string_view Value) {
  if (Node *Existing = find(Key)) {
    // Copy-before-free: a failed copy must leave the old value intact
    // (and the order also makes set(k, get(k)) — an aliasing
    // self-assignment — safe).
    char *NewValue = copyString(Value);
    if (NewValue == nullptr)
      return false;
    Payload -= Existing->ValueLen;
    Heap.free(Existing->Value);
    Existing->Value = NewValue;
    Existing->ValueLen = static_cast<uint32_t>(Value.size());
    Existing->LastUsed = ++LruClock;
    Payload += Value.size();
    detachLru(Existing);
    pushFrontLru(Existing);
    evictIfNeeded();
    return true;
  }
  auto *N = static_cast<Node *>(Heap.malloc(sizeof(Node)));
  if (N == nullptr)
    return false;
  N->HashNext = nullptr;
  N->LruPrev = N->LruNext = nullptr;
  N->Key = copyString(Key);
  if (N->Key == nullptr) {
    Heap.free(N);
    return false;
  }
  N->KeyLen = static_cast<uint32_t>(Key.size());
  N->Value = copyString(Value);
  if (N->Value == nullptr) {
    Heap.free(N->Key);
    Heap.free(N);
    return false;
  }
  N->ValueLen = static_cast<uint32_t>(Value.size());
  N->LastUsed = ++LruClock;
  Node **Slot = bucketFor(Key);
  N->HashNext = *Slot;
  *Slot = N;
  pushFrontLru(N);
  Payload += Key.size() + Value.size();
  ++Count;
  rehashIfNeeded();
  evictIfNeeded();
  return true;
}

std::string_view KVStore::get(std::string_view Key) {
  Node *N = find(Key);
  if (N == nullptr)
    return {};
  N->LastUsed = ++LruClock;
  detachLru(N);
  pushFrontLru(N);
  return std::string_view(N->Value, N->ValueLen);
}

bool KVStore::del(std::string_view Key) {
  Node **Slot = bucketFor(Key);
  while (*Slot != nullptr) {
    Node *N = *Slot;
    if (Key.size() == N->KeyLen &&
        (N->KeyLen == 0 || memcmp(Key.data(), N->Key, N->KeyLen) == 0)) {
      *Slot = N->HashNext;
      detachLru(N);
      destroyNode(N);
      return true;
    }
    Slot = &N->HashNext;
  }
  return false;
}

size_t KVStore::activeDefrag() {
  // Walk every entry, copy key and value into fresh allocations, free
  // the old ones (Redis's approach: hope the allocator packs the new
  // copies contiguously). Invalidates every outstanding get() view; in
  // Debug the superseded bytes are poisoned before the free so a stale
  // view read shows 0xDB garbage instead of silently-still-correct
  // data that happens to survive in the freed slot.
  size_t Moved = 0;
  for (size_t B = 0; B < BucketCount; ++B) {
    for (Node *N = Buckets[B]; N != nullptr; N = N->HashNext) {
      // Per-field: a failed copy skips just that field (the entry keeps
      // its current storage) — defrag is an optimization and must not
      // lose data under allocation pressure.
      if (char *NewKey = copyString(std::string_view(N->Key, N->KeyLen))) {
#ifndef NDEBUG
        memset(N->Key, 0xDB, N->KeyLen);
#endif
        Heap.free(N->Key);
        N->Key = NewKey;
        Moved += N->KeyLen;
      }
      if (char *NewValue =
              copyString(std::string_view(N->Value, N->ValueLen))) {
#ifndef NDEBUG
        memset(N->Value, 0xDB, N->ValueLen);
#endif
        Heap.free(N->Value);
        N->Value = NewValue;
        Moved += N->ValueLen;
      }
    }
  }
  ++DefragGeneration;
  return Moved;
}

} // namespace mesh
