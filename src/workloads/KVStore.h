//===- KVStore.h - Redis-like key/value store -------------------*- C++ -*-===//
///
/// \file
/// The Redis stand-in for the Section 6.2.2 experiment: an in-memory
/// string key/value store with LRU eviction at a byte budget and an
/// optional "active defragmentation" pass that re-allocates every
/// entry into fresh memory and frees the old copies — the ad hoc,
/// application-level compaction Redis 4.0 ships (Section 7 discusses
/// why that approach is brittle; this benchmark quantifies it).
///
/// All storage (hash table, nodes, strings) comes from the injected
/// HeapBackend so fragmentation accrues in the allocator under test.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_KVSTORE_H
#define MESH_WORKLOADS_KVSTORE_H

#include "baseline/HeapBackend.h"
#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mesh {

class KVStore {
public:
  /// \p MaxBytes is the LRU budget over key+value payload bytes
  /// (0 = unlimited). Eviction follows Redis's *approximated* LRU:
  /// sample \p EvictionSamples random entries and evict the least
  /// recently used of them (Redis's maxmemory-samples, default 5).
  /// Sampled eviction is what scatters frees across spans — with exact
  /// LRU, frees would track allocation order and fragmentation would
  /// be minimal.
  KVStore(HeapBackend &Backend, size_t MaxBytes,
          unsigned EvictionSamples = 5);
  ~KVStore();

  KVStore(const KVStore &) = delete;
  KVStore &operator=(const KVStore &) = delete;

  /// Inserts or overwrites; evicts least-recently-used entries if the
  /// budget is exceeded. Returns false — leaving the store unchanged,
  /// an overwritten entry keeping its old value — when the backend
  /// cannot allocate (the fault-storm soak drives this path; a real
  /// Redis answers OOM errors the same way).
  bool set(std::string_view Key, std::string_view Value);

  /// Returns the value (marking the entry most-recently-used), or an
  /// empty view when absent.
  ///
  /// Lifetime: the returned view aliases the store's own copy of the
  /// value and is invalidated by the next set()/del() of that key, by
  /// eviction, and — easy to miss — by activeDefrag(), which
  /// re-allocates *every* entry's storage. defragGeneration() ticks on
  /// each defrag pass so callers can assert their views are still
  /// current; Debug builds additionally poison the superseded bytes
  /// (0xDB) before freeing them, so a stale read fails loudly instead
  /// of returning quietly wrong data.
  std::string_view get(std::string_view Key);

  /// Removes the entry; returns true if it existed.
  bool del(std::string_view Key);

  size_t entryCount() const { return Count; }
  size_t payloadBytes() const { return Payload; }
  uint64_t evictionCount() const { return Evictions; }

  /// Redis-style active defragmentation: copies every entry's key and
  /// value into freshly allocated memory and frees the originals, in
  /// the hope the allocator packs the new copies densely. Every view
  /// previously returned by get() is invalidated (see get()).
  /// \returns the number of bytes re-allocated.
  size_t activeDefrag();

  /// Number of activeDefrag() passes completed. A view from get() is
  /// valid only while this (and the entry itself) is unchanged.
  uint64_t defragGeneration() const { return DefragGeneration; }

private:
  struct Node {
    Node *HashNext;
    Node *LruPrev;
    Node *LruNext;
    char *Key;
    uint32_t KeyLen;
    char *Value;
    uint32_t ValueLen;
    uint64_t LastUsed; ///< LRU clock stamp for sampled eviction.
  };

  static uint64_t hashBytes(std::string_view Bytes);
  Node **bucketFor(std::string_view Key);
  Node *find(std::string_view Key);
  void detachLru(Node *N);
  void pushFrontLru(Node *N);
  void evictIfNeeded();
  Node *sampleEvictionVictim();
  void removeNode(Node *N);
  void destroyNode(Node *N);
  char *copyString(std::string_view S);
  void rehashIfNeeded();

  HeapBackend &Heap;
  size_t MaxBytes;
  unsigned EvictionSamples;
  Rng SampleRng{0x4C5255}; // "LRU"
  uint64_t LruClock = 0;
  uint64_t DefragGeneration = 0;
  Node **Buckets = nullptr;
  size_t BucketCount = 0;
  size_t Count = 0;
  size_t Payload = 0;
  uint64_t Evictions = 0;
  Node *LruHead = nullptr; ///< Most recently used.
  Node *LruTail = nullptr; ///< Least recently used.
};

} // namespace mesh

#endif // MESH_WORKLOADS_KVSTORE_H
