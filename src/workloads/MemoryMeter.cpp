//===- MemoryMeter.cpp - RSS time-series sampling -----------------------------===//

#include "workloads/MemoryMeter.h"

#include <cstdio>
#include <ctime>

namespace mesh {

static uint64_t nowNs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(Ts.tv_nsec);
}

MemoryMeter::MemoryMeter(HeapBackend &B, uint64_t Cadence)
    : Backend(B), OpsPerSample(Cadence == 0 ? 1 : Cadence),
      StartNs(nowNs()) {
  sampleNow();
}

void MemoryMeter::sampleNow() {
  Backend.tick();
  Samples.push_back(Sample{Ops, (nowNs() - StartNs) * 1e-9,
                           Backend.committedBytes()});
}

double MemoryMeter::meanCommittedBytes() const {
  if (Samples.empty())
    return 0.0;
  double Sum = 0;
  for (const Sample &S : Samples)
    Sum += static_cast<double>(S.CommittedBytes);
  return Sum / static_cast<double>(Samples.size());
}

size_t MemoryMeter::peakCommittedBytes() const {
  size_t Peak = 0;
  for (const Sample &S : Samples)
    if (S.CommittedBytes > Peak)
      Peak = S.CommittedBytes;
  return Peak;
}

double MemoryMeter::elapsedSeconds() const {
  return Samples.empty() ? 0.0 : Samples.back().ElapsedSeconds;
}

void MemoryMeter::printSeries(const char *Label) const {
  for (const Sample &S : Samples)
    printf("series\t%s\t%llu\t%.4f\t%.2f\n", Label,
           static_cast<unsigned long long>(S.OpIndex), S.ElapsedSeconds,
           static_cast<double>(S.CommittedBytes) / (1024.0 * 1024.0));
}

} // namespace mesh
