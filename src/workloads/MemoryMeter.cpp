//===- MemoryMeter.cpp - RSS time-series sampling -----------------------------===//

#include "workloads/MemoryMeter.h"

#include <cassert>
#include <cstdio>
#include <ctime>
#include <unistd.h>

namespace mesh {

static uint64_t nowNs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(Ts.tv_nsec);
}

MemoryMeter::MemoryMeter(HeapBackend &B, uint64_t Cadence)
    : Backend(B), OpsPerSample(Cadence == 0 ? 1 : Cadence),
      StartNs(nowNs()) {
  sampleNow();
}

void MemoryMeter::reserveForOps(uint64_t ExpectedOps, size_t ExtraSamples) {
  const size_t Expected =
      static_cast<size_t>(ExpectedOps / OpsPerSample) + ExtraSamples;
  Samples.reserve(Samples.size() + Expected);
  Reserved = true;
}

void MemoryMeter::sampleNow() {
  Backend.tick();
  // A regrowth here would allocate from (and be measured by) the heap
  // under test; reserveForOps sizes the series so it never happens.
  // Harnesses that under-estimated their op count must widen the
  // reservation, not silently absorb the perturbation.
  assert((!Reserved || Samples.size() < Samples.capacity()) &&
         "sample series reallocated inside the measured window");
  Samples.push_back(Sample{Ops, (nowNs() - StartNs) * 1e-9,
                           Backend.committedBytes()});
}

double MemoryMeter::meanCommittedBytes() const {
  if (Samples.empty())
    return 0.0;
  double Sum = 0;
  for (const Sample &S : Samples)
    Sum += static_cast<double>(S.CommittedBytes);
  return Sum / static_cast<double>(Samples.size());
}

size_t MemoryMeter::peakCommittedBytes() const {
  size_t Peak = 0;
  for (const Sample &S : Samples)
    if (S.CommittedBytes > Peak)
      Peak = S.CommittedBytes;
  return Peak;
}

double MemoryMeter::elapsedSeconds() const {
  return Samples.empty() ? 0.0 : Samples.back().ElapsedSeconds;
}

void MemoryMeter::printSeries(const char *Label) const {
  // Keep ordering with anything already printf'd, then bypass stdio:
  // its output buffer is heap-allocated on first flush, which would
  // land inside the measured window when a series is dumped mid-run.
  fflush(stdout);
  for (const Sample &S : Samples) {
    char Row[192];
    const int Len = snprintf(
        Row, sizeof(Row), "series\t%s\t%llu\t%.4f\t%.2f\n", Label,
        static_cast<unsigned long long>(S.OpIndex), S.ElapsedSeconds,
        static_cast<double>(S.CommittedBytes) / (1024.0 * 1024.0));
    if (Len <= 0)
      continue;
    size_t Off = 0;
    while (Off < static_cast<size_t>(Len)) {
      const ssize_t Wrote =
          write(STDOUT_FILENO, Row + Off, static_cast<size_t>(Len) - Off);
      if (Wrote <= 0)
        return;
      Off += static_cast<size_t>(Wrote);
    }
  }
}

} // namespace mesh
