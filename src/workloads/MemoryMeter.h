//===- MemoryMeter.h - RSS time-series sampling -----------------*- C++ -*-===//
///
/// \file
/// The mstat stand-in (paper Section 6.1): samples an allocator's
/// physical footprint on a fixed cadence and reports the time series
/// plus the summary statistics the paper quotes (mean and peak heap
/// size over a run). Sampling is driven by workload progress (operation
/// count) rather than wall time, so runs are reproducible; each sample
/// also records elapsed wall time for the latency-flavoured results.
///
/// The meter measures the very heap it allocates its sample series
/// from, so harnesses must call reserveForOps() before the measured
/// window: a vector regrowth mid-run would bill the meter's own
/// allocation (and the stale half-size buffer it strands until the
/// next sample) to the allocator under test. Debug builds assert that
/// no reserved series ever reallocates; printSeries() bypasses stdio
/// entirely for the same reason.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_MEMORYMETER_H
#define MESH_WORKLOADS_MEMORYMETER_H

#include "baseline/HeapBackend.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mesh {

class MemoryMeter {
public:
  struct Sample {
    uint64_t OpIndex;
    double ElapsedSeconds;
    size_t CommittedBytes;
  };

  /// \p Backend is sampled every \p OpsPerSample operations; tick() is
  /// invoked on the backend at each sample (the allocator's periodic
  /// maintenance hook).
  MemoryMeter(HeapBackend &Backend, uint64_t OpsPerSample);

  /// Pre-sizes the sample series for a run of \p ExpectedOps recorded
  /// operations (plus \p ExtraSamples slack for out-of-cadence
  /// sampleNow() calls — idle rounds, phase boundaries). Call before
  /// the measured window starts; from then on Debug builds assert that
  /// sampling never reallocates, so the RSS series cannot include the
  /// meter's own allocations.
  void reserveForOps(uint64_t ExpectedOps, size_t ExtraSamples = 64);

  /// True once reserveForOps has run (the no-reallocation assertion is
  /// armed).
  bool reserved() const { return Reserved; }

  /// Advances the operation counter; samples when the cadence is hit.
  void recordOp() {
    if (++Ops % OpsPerSample == 0)
      sampleNow();
  }

  /// Bulk-advances the operation counter without cadence sampling:
  /// soak coordinators count worker-thread ops in aggregate and sample
  /// on their own schedule via sampleNow().
  void advanceOps(uint64_t N) { Ops += N; }

  /// Takes an immediate sample regardless of cadence.
  void sampleNow();

  const std::vector<Sample> &samples() const { return Samples; }

  double meanCommittedBytes() const;
  size_t peakCommittedBytes() const;
  double elapsedSeconds() const;

  /// Prints "series <label> <op> <seconds> <MiB>" rows for plotting.
  /// Formats into a stack buffer and write(2)s past stdio, so dumping
  /// a series mid-run cannot grow stdout's heap buffer inside the
  /// measured window.
  void printSeries(const char *Label) const;

private:
  HeapBackend &Backend;
  uint64_t OpsPerSample;
  uint64_t Ops = 0;
  uint64_t StartNs;
  bool Reserved = false;
  std::vector<Sample> Samples;
};

} // namespace mesh

#endif // MESH_WORKLOADS_MEMORYMETER_H
