//===- MemoryMeter.h - RSS time-series sampling -----------------*- C++ -*-===//
///
/// \file
/// The mstat stand-in (paper Section 6.1): samples an allocator's
/// physical footprint on a fixed cadence and reports the time series
/// plus the summary statistics the paper quotes (mean and peak heap
/// size over a run). Sampling is driven by workload progress (operation
/// count) rather than wall time, so runs are reproducible; each sample
/// also records elapsed wall time for the latency-flavoured results.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_MEMORYMETER_H
#define MESH_WORKLOADS_MEMORYMETER_H

#include "baseline/HeapBackend.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mesh {

class MemoryMeter {
public:
  struct Sample {
    uint64_t OpIndex;
    double ElapsedSeconds;
    size_t CommittedBytes;
  };

  /// \p Backend is sampled every \p OpsPerSample operations; tick() is
  /// invoked on the backend at each sample (the allocator's periodic
  /// maintenance hook).
  MemoryMeter(HeapBackend &Backend, uint64_t OpsPerSample);

  /// Advances the operation counter; samples when the cadence is hit.
  void recordOp() {
    if (++Ops % OpsPerSample == 0)
      sampleNow();
  }

  /// Takes an immediate sample regardless of cadence.
  void sampleNow();

  const std::vector<Sample> &samples() const { return Samples; }

  double meanCommittedBytes() const;
  size_t peakCommittedBytes() const;
  double elapsedSeconds() const;

  /// Prints "series <label> <op> <seconds> <MiB>" rows for plotting.
  void printSeries(const char *Label) const;

private:
  HeapBackend &Backend;
  uint64_t OpsPerSample;
  uint64_t Ops = 0;
  uint64_t StartNs;
  std::vector<Sample> Samples;
};

} // namespace mesh

#endif // MESH_WORKLOADS_MEMORYMETER_H
