//===- RedisWorkload.cpp - Section 6.2.2 Redis benchmark ---------------------===//

#include "workloads/RedisWorkload.h"

#include "support/Rng.h"

#include <cstdio>
#include <cstring>
#include <ctime>

namespace mesh {

namespace {

double nowSeconds() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) + Ts.tv_nsec * 1e-9;
}

/// Random printable key, "key:<16 hex digits>".
void makeKey(Rng &Random, char *Out) {
  static const char Hex[] = "0123456789abcdef";
  memcpy(Out, "key:", 4);
  uint64_t Bits = Random.next();
  for (int I = 0; I < 16; ++I) {
    Out[4 + I] = Hex[Bits & 0xF];
    Bits >>= 4;
  }
}

} // namespace

RedisWorkloadResult runRedisWorkload(HeapBackend &Backend,
                                     MemoryMeter &Meter,
                                     const RedisWorkloadConfig &Config) {
  RedisWorkloadResult Result;
  Rng Random(Config.Seed);
  const auto Phase1 =
      static_cast<size_t>(Config.Phase1Keys * Config.Scale);
  const auto Phase2 =
      static_cast<size_t>(Config.Phase2Keys * Config.Scale);
  const auto Budget =
      static_cast<size_t>(Config.LruBudgetBytes * Config.Scale);

  // One recordOp per set plus one out-of-cadence sample per idle
  // round: reserve the whole series so the meter never grows its
  // vector from the heap it is measuring (see MemoryMeter.h).
  Meter.reserveForOps(Phase1 + Phase2,
                      static_cast<size_t>(Config.IdleRounds) + 16);

  KVStore Store(Backend, Budget);
  char Key[20];
  // Values are filled with a repeating pattern; contents are irrelevant
  // to the allocator but make corruption detectable in tests.
  std::vector<char> Value1(Config.Phase1ValueLen, 'v');
  std::vector<char> Value2(Config.Phase2ValueLen, 'w');

  const double InsertStart = nowSeconds();
  for (size_t I = 0; I < Phase1; ++I) {
    makeKey(Random, Key);
    Store.set(std::string_view(Key, sizeof(Key)),
              std::string_view(Value1.data(), Value1.size()));
    Meter.recordOp();
  }
  for (size_t I = 0; I < Phase2; ++I) {
    makeKey(Random, Key);
    Store.set(std::string_view(Key, sizeof(Key)),
              std::string_view(Value2.data(), Value2.size()));
    Meter.recordOp();
  }
  Result.InsertSeconds = nowSeconds() - InsertStart;

  // Idle phase: the server sits mostly idle; allocator maintenance
  // (Mesh's compaction or Redis's activedefrag) reclaims fragmentation.
  for (int Round = 0; Round < Config.IdleRounds; ++Round) {
    const double MaintStart = nowSeconds();
    if (Config.UseActiveDefrag)
      Result.DefragMovedBytes += Store.activeDefrag();
    else
      Backend.flush();
    Result.MaintenanceSeconds += nowSeconds() - MaintStart;
    Meter.sampleNow();
  }

  Result.Evictions = Store.evictionCount();
  Result.FinalEntries = Store.entryCount();
  Result.FinalCommittedBytes = Backend.committedBytes();
  return Result;
}

} // namespace mesh
