//===- RedisWorkload.h - Section 6.2.2 Redis benchmark ----------*- C++ -*-===//
///
/// \file
/// The benchmark adapted from the official Redis test suite (paper
/// Section 6.2.2): configure the store as an LRU cache capped at
/// 100 MB, insert 700,000 random keys with 240-byte values, then
/// 170,000 keys with 492-byte values, then idle — during which either
/// Redis-style active defragmentation or Mesh's automatic compaction
/// reclaims the fragmentation left behind by eviction.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_REDISWORKLOAD_H
#define MESH_WORKLOADS_REDISWORKLOAD_H

#include "workloads/KVStore.h"
#include "workloads/MemoryMeter.h"

#include <cstddef>
#include <cstdint>

namespace mesh {

struct RedisWorkloadConfig {
  size_t LruBudgetBytes = 100 * 1024 * 1024;
  size_t Phase1Keys = 700000;
  size_t Phase1ValueLen = 240;
  size_t Phase2Keys = 170000;
  size_t Phase2ValueLen = 492;
  /// Scales key counts and the budget together (tests use < 1).
  double Scale = 1.0;
  uint64_t Seed = 20190622; // PLDI'19
  uint64_t OpsPerSample = 20000;
  /// Run the application-level defragmenter during idle (the
  /// "jemalloc + activedefrag" configuration).
  bool UseActiveDefrag = false;
  /// Idle sampling rounds after the insert phases; allocator
  /// maintenance (flush/defrag) runs once per round.
  int IdleRounds = 12;
};

struct RedisWorkloadResult {
  double InsertSeconds = 0;      ///< Wall time for both insert phases.
  double MaintenanceSeconds = 0; ///< Time inside defrag or meshing.
  size_t DefragMovedBytes = 0;   ///< Bytes copied by active defrag.
  uint64_t Evictions = 0;
  size_t FinalCommittedBytes = 0;
  size_t FinalEntries = 0;
};

/// Runs the full benchmark against \p Backend, sampling into \p Meter.
RedisWorkloadResult runRedisWorkload(HeapBackend &Backend,
                                     MemoryMeter &Meter,
                                     const RedisWorkloadConfig &Config);

} // namespace mesh

#endif // MESH_WORKLOADS_REDISWORKLOAD_H
