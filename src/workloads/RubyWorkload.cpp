//===- RubyWorkload.cpp - Section 6.3 Ruby microbenchmark --------------------===//

#include "workloads/RubyWorkload.h"

#include "support/Rng.h"

#include <cstring>
#include <ctime>
#include <vector>

namespace mesh {

namespace {

double nowSeconds() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) + Ts.tv_nsec * 1e-9;
}

} // namespace

RubyWorkloadResult runRubyWorkload(HeapBackend &Backend, MemoryMeter &Meter,
                                   const RubyWorkloadConfig &Config) {
  RubyWorkloadResult Result;
  // Each round records one op per allocated and one per filtered
  // string (2 * BytesPerRound / Len), with Len doubling: the geometric
  // sum is < 4 * BytesPerRound / InitialStringLen. Dwell and cooldown
  // sampleNow() calls ride in the slack. Reserving up front keeps the
  // meter's own series allocation out of the measured window.
  Meter.reserveForOps(4 * Config.BytesPerRound /
                          (Config.InitialStringLen == 0
                               ? 1
                               : Config.InitialStringLen),
                      static_cast<size_t>(Config.Rounds) * 4 + 16);
  const double Start = nowSeconds();
  uint64_t Checksum = 0;

  std::vector<std::pair<char *, size_t>> Retained;
  size_t Len = Config.InitialStringLen;
  const size_t Stride = static_cast<size_t>(1.0 / Config.RetainFraction);
  for (int Round = 0; Round < Config.Rounds; ++Round, Len *= 2) {
    const size_t BatchCount = Config.BytesPerRound / Len;
    std::vector<char *> Batch;
    Batch.reserve(BatchCount);
    // "Accumulate results from an API": allocate the whole batch, with
    // a little interpreter-ish work per string (fill + checksum).
    for (size_t I = 0; I < BatchCount; ++I) {
      auto *S = static_cast<char *>(Backend.malloc(Len));
      memset(S, 'r', Len);
      for (size_t J = 0; J < Len; J += 64)
        Checksum += static_cast<unsigned char>(S[J]);
      Batch.push_back(S);
      Meter.recordOp();
    }
    // "Periodically filter some out": retain every Stride-th string,
    // drop the rest. Survivorship is *structured*, exactly the regular
    // pattern Section 6.3 stresses: without randomized allocation the
    // survivors sit at identical offsets in every span, and no pages
    // can mesh.
    for (size_t I = 0; I < Batch.size(); ++I) {
      if (I % Stride == 0) {
        Retained.push_back({Batch[I], Len});
        Result.FinalLiveBytes += Len;
      } else {
        Backend.free(Batch[I]);
      }
      Meter.recordOp();
    }
    // Dwell: the program works over its retained results for a while
    // (in the Ruby original this is interpreter time; it is when the
    // heap sits at its post-filter level and compaction pays off).
    for (int Dwell = 0; Dwell < 4; ++Dwell) {
      for (auto &[S, L] : Retained)
        for (size_t J = 0; J < L; J += 64)
          Checksum += static_cast<unsigned char>(S[J]);
      Meter.sampleNow();
    }
  }
  // Timed region ends with the last filter, as in the paper's figure;
  // the cooldown below only extends the sampled series.
  Result.Seconds = nowSeconds() - Start;
  Result.Checksum = Checksum;

  for (int Round = 0; Round < 6; ++Round) {
    Backend.flush();
    Meter.sampleNow();
  }

  Result.FinalCommittedBytes = Backend.committedBytes();
  for (auto &[S, L] : Retained)
    Backend.free(S);
  return Result;
}

} // namespace mesh
