//===- RubyWorkload.h - Section 6.3 Ruby microbenchmark ---------*- C++ -*-===//
///
/// \file
/// The synthetic microbenchmark from paper Section 6.3, transliterated
/// from Ruby: repeatedly allocate a batch of fixed-size strings,
/// retain references to 25% of them and drop the rest (simulating
/// accumulating API results and periodically filtering), then double
/// the string length and repeat. The regular allocation pattern is
/// exactly the regime where randomization is *essential* for meshing
/// to find non-overlapping pages.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_RUBYWORKLOAD_H
#define MESH_WORKLOADS_RUBYWORKLOAD_H

#include "workloads/MemoryMeter.h"

#include <cstddef>
#include <cstdint>

namespace mesh {

struct RubyWorkloadConfig {
  size_t InitialStringLen = 16;
  int Rounds = 8;            ///< Length doubles each round.
  size_t BytesPerRound = 24 * 1024 * 1024;
  double RetainFraction = 0.25;
  uint64_t Seed = 251; // Ruby 2.5.1
  uint64_t OpsPerSample = 8192;
};

struct RubyWorkloadResult {
  double Seconds = 0;
  size_t FinalLiveBytes = 0;   ///< Payload the program still references.
  size_t FinalCommittedBytes = 0;
  uint64_t Checksum = 0;       ///< Defeats dead-code elimination.
};

RubyWorkloadResult runRubyWorkload(HeapBackend &Backend, MemoryMeter &Meter,
                                   const RubyWorkloadConfig &Config);

} // namespace mesh

#endif // MESH_WORKLOADS_RUBYWORKLOAD_H
