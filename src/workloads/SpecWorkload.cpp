//===- SpecWorkload.cpp - SPECint-style workload suite -----------------------===//

#include "workloads/SpecWorkload.h"

#include "support/Rng.h"

#include <cstring>
#include <ctime>
#include <vector>

namespace mesh {

namespace {

double nowSeconds() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) + Ts.tv_nsec * 1e-9;
}

size_t trackPeak(HeapBackend &B, size_t Peak) {
  const size_t Now = B.committedBytes();
  return Now > Peak ? Now : Peak;
}

/// Balanced tree build/teardown: compiler-style (403.gcc flavour).
/// Small footprint, allocation in bursts, LIFO-ish lifetimes.
SpecBenchResult runTreeBench(HeapBackend &B, double Scale) {
  struct TreeNode {
    TreeNode *Left, *Right;
    uint64_t Payload[6];
  };
  const int Rounds = static_cast<int>(40 * Scale) + 1;
  size_t Peak = 0;
  const double Start = nowSeconds();
  for (int Round = 0; Round < Rounds; ++Round) {
    std::vector<TreeNode *> Nodes;
    for (int I = 0; I < 20000; ++I) {
      auto *N = static_cast<TreeNode *>(B.malloc(sizeof(TreeNode)));
      N->Payload[0] = static_cast<uint64_t>(I);
      Nodes.push_back(N);
    }
    Peak = trackPeak(B, Peak);
    for (TreeNode *N : Nodes)
      B.free(N);
  }
  return {"470.tree-like", nowSeconds() - Start, Peak};
}

/// FIFO queue churn: network-simulation flavour (429.mcf).
SpecBenchResult runQueueBench(HeapBackend &B, double Scale) {
  const int Steps = static_cast<int>(800000 * Scale) + 1;
  size_t Peak = 0;
  const double Start = nowSeconds();
  std::vector<void *> Queue;
  size_t Head = 0;
  Rng Random(429);
  for (int I = 0; I < Steps; ++I) {
    Queue.push_back(B.malloc(24 + 8 * Random.inRange(0, 9)));
    if (Queue.size() - Head > 5000) {
      B.free(Queue[Head]);
      ++Head;
    }
    if (I % 65536 == 0)
      Peak = trackPeak(B, Peak);
  }
  for (size_t I = Head; I < Queue.size(); ++I)
    B.free(Queue[I]);
  return {"429.queue-like", nowSeconds() - Start, trackPeak(B, Peak)};
}

/// Token-string scratch buffers: parser flavour (456.hmmer/458.sjeng).
SpecBenchResult runTokenBench(HeapBackend &B, double Scale) {
  const int Rounds = static_cast<int>(200 * Scale) + 1;
  size_t Peak = 0;
  const double Start = nowSeconds();
  Rng Random(456);
  for (int Round = 0; Round < Rounds; ++Round) {
    std::vector<char *> Tokens;
    for (int I = 0; I < 4000; ++I) {
      const size_t Len = 8 + Random.inRange(0, 120);
      auto *S = static_cast<char *>(B.malloc(Len));
      S[0] = 't';
      Tokens.push_back(S);
    }
    Peak = trackPeak(B, Peak);
    for (char *S : Tokens)
      B.free(S);
  }
  return {"456.token-like", nowSeconds() - Start, Peak};
}

/// Flat array workloads with almost no allocator traffic
/// (462.libquantum / 444.namd flavour): the "SPEC mostly does not
/// exercise malloc" regime.
SpecBenchResult runArrayBench(HeapBackend &B, double Scale) {
  const int Rounds = static_cast<int>(30 * Scale) + 1;
  size_t Peak = 0;
  const double Start = nowSeconds();
  for (int Round = 0; Round < Rounds; ++Round) {
    auto *A = static_cast<uint64_t *>(B.malloc(2 * 1024 * 1024));
    for (size_t I = 0; I < 2 * 1024 * 1024 / sizeof(uint64_t); I += 64)
      A[I] = I;
    Peak = trackPeak(B, Peak);
    B.free(A);
  }
  return {"462.array-like", nowSeconds() - Start, Peak};
}

/// Graph pointer-chasing with stable lifetimes (471.omnetpp flavour).
SpecBenchResult runGraphBench(HeapBackend &B, double Scale) {
  const int N = static_cast<int>(120000 * Scale) + 16;
  size_t Peak = 0;
  const double Start = nowSeconds();
  Rng Random(471);
  std::vector<void *> Nodes(N);
  for (int I = 0; I < N; ++I)
    Nodes[I] = B.malloc(48 + 16 * Random.inRange(0, 3));
  Peak = trackPeak(B, Peak);
  // Replace nodes randomly for a while (event churn).
  for (int I = 0; I < N; ++I) {
    const size_t Idx = Random.inRange(0, N - 1);
    B.free(Nodes[Idx]);
    Nodes[Idx] = B.malloc(48 + 16 * Random.inRange(0, 3));
  }
  Peak = trackPeak(B, Peak);
  for (void *P : Nodes)
    B.free(P);
  return {"471.graph-like", nowSeconds() - Start, Peak};
}

/// The allocation-intensive outlier: 400.perlbench flavour. Spam-
/// filter-style string/hash churn with phase boundaries that strand
/// survivors across many sparse spans — the large-footprint regime
/// where the paper reports Mesh's 15% peak-RSS win.
SpecBenchResult runPerlBench(HeapBackend &B, double Scale) {
  const int Phases = static_cast<int>(12 * Scale) + 2;
  size_t Peak = 0;
  const double Start = nowSeconds();
  Rng Random(400);
  std::vector<std::pair<char *, size_t>> Retained;
  for (int Phase = 0; Phase < Phases; ++Phase) {
    // Parse a "mailbox": many short-lived strings + hash nodes.
    std::vector<char *> Scratch;
    const size_t Len = 32 << (Phase % 4); // rotate across size classes
    for (int I = 0; I < 60000; ++I) {
      auto *S = static_cast<char *>(B.malloc(Len));
      S[0] = 'p';
      Scratch.push_back(S);
    }
    Peak = trackPeak(B, Peak);
    // Retain sparse survivors (learned tokens), free the rest.
    for (char *S : Scratch) {
      if (Random.withProbability(0.06))
        Retained.push_back({S, Len});
      else
        B.free(S);
    }
    B.tick();
    Peak = trackPeak(B, Peak);
    // Periodically expire old tokens.
    if (Phase % 4 == 3) {
      size_t Kept = 0;
      for (size_t I = 0; I < Retained.size(); ++I) {
        if (Random.withProbability(0.35))
          Retained[Kept++] = Retained[I];
        else
          B.free(Retained[I].first);
      }
      Retained.resize(Kept);
      B.flush();
      Peak = trackPeak(B, Peak);
    }
  }
  for (auto &[S, L] : Retained)
    B.free(S);
  return {"400.perlbench-like", nowSeconds() - Start, Peak};
}

using BenchFn = SpecBenchResult (*)(HeapBackend &, double);
constexpr BenchFn Benches[] = {runPerlBench,  runTreeBench, runQueueBench,
                               runTokenBench, runArrayBench, runGraphBench};

} // namespace

const std::vector<const char *> &specBenchmarkNames() {
  static const std::vector<const char *> Names = {
      "400.perlbench-like", "470.tree-like",  "429.queue-like",
      "456.token-like",     "462.array-like", "471.graph-like"};
  return Names;
}

SpecBenchResult runSpecBenchmark(size_t Index, HeapBackend &Backend,
                                 double Scale) {
  return Benches[Index](Backend, Scale);
}

} // namespace mesh
