//===- SpecWorkload.h - SPECint-style workload suite ------------*- C++ -*-===//
///
/// \file
/// The SPECint 2006 stand-in (paper Section 6.2.3). The paper's finding
/// is a two-regime story: most SPEC programs have small footprints and
/// barely exercise the allocator (Mesh ~neutral: -2.4% memory, +0.7%
/// time geomean), while the allocation-intensive 400.perlbench has a
/// large footprint that Mesh shrinks by 15% for 3.9% time overhead.
/// The suite below reproduces both regimes: several low-pressure
/// workloads with assorted allocation shapes plus one perlbench-like
/// string/hash churner.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_SPECWORKLOAD_H
#define MESH_WORKLOADS_SPECWORKLOAD_H

#include "baseline/HeapBackend.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mesh {

struct SpecBenchResult {
  const char *Name;
  double Seconds;
  size_t PeakBytes;
};

/// Names of the suite's sub-benchmarks, in run order.
const std::vector<const char *> &specBenchmarkNames();

/// Runs sub-benchmark \p Index against \p Backend. \p Scale shrinks
/// iteration counts for tests.
SpecBenchResult runSpecBenchmark(size_t Index, HeapBackend &Backend,
                                 double Scale = 1.0);

} // namespace mesh

#endif // MESH_WORKLOADS_SPECWORKLOAD_H
