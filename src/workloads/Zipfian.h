//===- Zipfian.h - Skewed key-popularity generator --------------*- C++ -*-===//
///
/// \file
/// Zipfian-distributed index generator (Gray et al., "Quickly
/// generating billion-record synthetic databases", SIGMOD '94 — the
/// same construction YCSB uses). Server-scale soaks draw keys from
/// this so a small hot set absorbs most requests while a long cold
/// tail ages in place: exactly the popularity shape that scatters
/// frees across spans and builds the fragmentation meshing exists to
/// reclaim. A uniform draw would churn every span equally and
/// understate both fragmentation and eviction pressure.
///
//===----------------------------------------------------------------------===//

#ifndef MESH_WORKLOADS_ZIPFIAN_H
#define MESH_WORKLOADS_ZIPFIAN_H

#include "support/Rng.h"

#include <cassert>
#include <cmath>
#include <cstdint>

namespace mesh {

class ZipfianGenerator {
public:
  /// Items are indices [0, \p N). \p Theta in (0, 1) is the skew
  /// (0.99 is the YCSB default: ~10% of items draw ~80% of requests).
  /// Construction is O(N) (one zeta sum); draws are O(1).
  ZipfianGenerator(uint64_t N, double Theta = 0.99)
      : Items(N), Theta(Theta) {
    assert(N > 0 && "empty keyspace");
    assert(Theta > 0.0 && Theta < 1.0 && "theta outside (0,1)");
    Zeta2 = zeta(2, Theta);
    ZetaN = zeta(N, Theta);
    Alpha = 1.0 / (1.0 - Theta);
    Eta = (1.0 - std::pow(2.0 / static_cast<double>(N), 1.0 - Theta)) /
          (1.0 - Zeta2 / ZetaN);
  }

  /// Draws the next index using \p Random. Index 0 is the hottest key;
  /// callers wanting hot keys scattered through their key space should
  /// permute the result (e.g. multiply by a large odd constant mod N).
  uint64_t next(Rng &Random) const {
    const double U = Random.nextDouble();
    const double Uz = U * ZetaN;
    if (Uz < 1.0)
      return 0;
    if (Uz < 1.0 + std::pow(0.5, Theta))
      return 1;
    const auto V = static_cast<uint64_t>(
        static_cast<double>(Items) *
        std::pow(Eta * U - Eta + 1.0, Alpha));
    // U arbitrarily close to 1 can round the product up to exactly
    // Items; clamp into range rather than hand out a phantom key.
    return V >= Items ? Items - 1 : V;
  }

  uint64_t items() const { return Items; }

private:
  static double zeta(uint64_t N, double Theta) {
    double Sum = 0.0;
    for (uint64_t I = 1; I <= N; ++I)
      Sum += 1.0 / std::pow(static_cast<double>(I), Theta);
    return Sum;
  }

  uint64_t Items;
  double Theta;
  double Zeta2;
  double ZetaN;
  double Alpha;
  double Eta;
};

} // namespace mesh

#endif // MESH_WORKLOADS_ZIPFIAN_H
