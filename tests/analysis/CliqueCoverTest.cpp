//===- CliqueCoverTest.cpp - MinCliqueCover tests --------------------------===//

#include "analysis/CliqueCover.h"

#include "analysis/Matching.h"

#include <gtest/gtest.h>

namespace mesh {
namespace analysis {
namespace {

SpanString fromBits(uint32_t B, std::initializer_list<uint32_t> Bits) {
  SpanString S(B);
  for (uint32_t I : Bits)
    S.setBit(I);
  return S;
}

TEST(CliqueCoverTest, EdgeCases) {
  MeshingGraph Empty({});
  EXPECT_EQ(minCliqueCoverExact(Empty), 0u);
  MeshingGraph One({fromBits(8, {0})});
  EXPECT_EQ(minCliqueCoverExact(One), 1u);
  EXPECT_EQ(greedyCliqueCover(One), 1u);
}

TEST(CliqueCoverTest, IsolatedNodesNeedOneCliqueEach) {
  // Identical fully-overlapping strings: no edges at all.
  std::vector<SpanString> Spans(6, fromBits(8, {0, 1, 2}));
  MeshingGraph G(Spans);
  EXPECT_EQ(minCliqueCoverExact(G), 6u);
  EXPECT_EQ(greedyCliqueCover(G), 6u);
}

TEST(CliqueCoverTest, AllZeroStringsAreOneClique) {
  std::vector<SpanString> Spans(8, SpanString(16));
  MeshingGraph G(Spans);
  EXPECT_EQ(minCliqueCoverExact(G), 1u)
      << "mutually meshable strings release n-1 spans";
}

TEST(CliqueCoverTest, DisjointTriples) {
  // Three strings with pairwise-disjoint bits form a clique; two such
  // groups that overlap across groups need exactly 2 cliques.
  std::vector<SpanString> Spans = {
      fromBits(12, {0}), fromBits(12, {1}), fromBits(12, {2}),
      fromBits(12, {0}), fromBits(12, {1}), fromBits(12, {2}),
  };
  // {0,1,2} mesh mutually; duplicates collide with their twin.
  MeshingGraph G(Spans);
  EXPECT_EQ(minCliqueCoverExact(G), 2u);
}

TEST(CliqueCoverTest, GreedyNeverBeatsExact) {
  Rng Random(21);
  for (int Trial = 0; Trial < 30; ++Trial) {
    auto Spans = randomSpans(12, 16, 4, Random);
    MeshingGraph G(Spans);
    const size_t Exact = minCliqueCoverExact(G);
    const size_t Greedy = greedyCliqueCover(G);
    EXPECT_GE(Greedy, Exact);
    EXPECT_LE(Exact, Spans.size());
    EXPECT_GE(Exact, 1u);
  }
}

TEST(CliqueCoverTest, MatchingNearlyMatchesCliqueCoverRelease) {
  // Section 5.2's thesis: since triangles are rare, meshing pairs
  // (Matching) releases nearly as many spans as full MinCliqueCover.
  // Released by cover = n - cover; by matching = matching size.
  Rng Random(22);
  size_t CoverRelease = 0, MatchRelease = 0;
  for (int Trial = 0; Trial < 30; ++Trial) {
    auto Spans = randomSpans(14, 32, 10, Random);
    MeshingGraph G(Spans);
    CoverRelease += Spans.size() - minCliqueCoverExact(G);
    MatchRelease += maxMatchingExact(G);
  }
  EXPECT_LE(MatchRelease, CoverRelease);
  // At 31% occupancy triangles are rare; matching recovers almost all
  // of the clique-cover value.
  EXPECT_GE(MatchRelease * 10, CoverRelease * 9)
      << "matching should capture >= 90% of clique-cover's release";
}

} // namespace
} // namespace analysis
} // namespace mesh
