//===- MatchingTest.cpp - Matching reference algorithm tests ---------------===//

#include "analysis/Matching.h"

#include <gtest/gtest.h>

namespace mesh {
namespace analysis {
namespace {

SpanString fromBits(uint32_t B, std::initializer_list<uint32_t> Bits) {
  SpanString S(B);
  for (uint32_t I : Bits)
    S.setBit(I);
  return S;
}

TEST(MatchingTest, EmptyAndSingleton) {
  MeshingGraph Empty({});
  EXPECT_EQ(maxMatchingExact(Empty), 0u);
  EXPECT_EQ(greedyMatching(Empty), 0u);
  MeshingGraph One({fromBits(8, {0})});
  EXPECT_EQ(maxMatchingExact(One), 0u);
}

TEST(MatchingTest, PerfectMatchingOnComplementPairs) {
  std::vector<SpanString> Spans;
  for (int I = 0; I < 6; ++I) {
    Spans.push_back(fromBits(8, {0, 1}));
    Spans.push_back(fromBits(8, {6, 7}));
  }
  MeshingGraph G(Spans);
  EXPECT_EQ(maxMatchingExact(G), 6u);
  EXPECT_EQ(greedyMatching(G), 6u);
}

TEST(MatchingTest, ExactBeatsGreedyOnAdversarialPath) {
  // Path graph a-b-c-d: greedy starting at b picks (b,c) leaving a and
  // d unmatched; optimal is (a,b),(c,d). Strings: a=100000, b=010000
  // meshes all, etc. Build a path via carefully overlapping strings.
  std::vector<SpanString> Spans = {
      fromBits(6, {0, 1}),    // a: meshes only b
      fromBits(6, {2, 3}),    // b: meshes a and c
      fromBits(6, {0, 4}),    // c: meshes b and d
      fromBits(6, {1, 2, 5}), // d: meshes only c
  };
  MeshingGraph G(Spans);
  ASSERT_TRUE(G.adjacent(0, 1));
  ASSERT_TRUE(G.adjacent(1, 2));
  ASSERT_TRUE(G.adjacent(2, 3));
  ASSERT_FALSE(G.adjacent(0, 2));
  ASSERT_FALSE(G.adjacent(0, 3));
  ASSERT_FALSE(G.adjacent(1, 3));
  EXPECT_EQ(maxMatchingExact(G), 2u);
  // Greedy (scanning from node 0) also finds 2 here; the guarantee is
  // only >= 1/2 of optimal.
  EXPECT_GE(greedyMatching(G), 1u);
}

TEST(MatchingTest, GreedyIsHalfApproximation) {
  Rng Random(11);
  for (int Trial = 0; Trial < 50; ++Trial) {
    auto Spans = randomSpans(16, 16, 4, Random);
    MeshingGraph G(Spans);
    const size_t Exact = maxMatchingExact(G);
    const size_t Greedy = greedyMatching(G);
    EXPECT_LE(Greedy, Exact);
    EXPECT_GE(2 * Greedy, Exact) << "greedy below half of optimal";
  }
}

TEST(MatchingTest, MatchingBoundedByHalfNodes) {
  Rng Random(12);
  auto Spans = randomSpans(20, 32, 4, Random);
  MeshingGraph G(Spans);
  EXPECT_LE(maxMatchingExact(G), 10u);
}

} // namespace
} // namespace analysis
} // namespace mesh
