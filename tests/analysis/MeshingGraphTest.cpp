//===- MeshingGraphTest.cpp - Section 5.1 graph model tests ----------------===//

#include "analysis/MeshingGraph.h"

#include <gtest/gtest.h>

namespace mesh {
namespace analysis {
namespace {

SpanString fromBits(uint32_t B, std::initializer_list<uint32_t> Bits) {
  SpanString S(B);
  for (uint32_t I : Bits)
    S.setBit(I);
  return S;
}

TEST(SpanStringTest, MeshingIsDotProductZero) {
  SpanString A = fromBits(8, {0, 1, 3});
  SpanString B = fromBits(8, {2, 4});
  SpanString C = fromBits(8, {3, 5});
  EXPECT_TRUE(A.meshesWith(B));
  EXPECT_FALSE(A.meshesWith(C)) << "offset 3 collides";
  EXPECT_TRUE(B.meshesWith(C));
}

TEST(SpanStringTest, RandomHasExactPopcount) {
  Rng Random(1);
  for (uint32_t R : {1u, 7u, 100u, 256u}) {
    SpanString S = SpanString::random(256, R, Random);
    EXPECT_EQ(S.popcount(), R);
  }
}

TEST(MeshingGraphTest, Figure5Example) {
  // Paper Figure 5: strings 01101000, 01010000, 00100110, 00010000.
  // (Bit index = string position, leftmost = offset 0.)
  std::vector<SpanString> Spans = {
      fromBits(8, {1, 2, 4}), // 01101000
      fromBits(8, {1, 3}),    // 01010000
      fromBits(8, {2, 5, 6}), // 00100110
      fromBits(8, {3}),       // 00010000
  };
  MeshingGraph G(Spans);
  // Edges exactly as drawn: (0,3), (1,2), (2,3).
  EXPECT_EQ(G.edgeCount(), 3u);
  EXPECT_TRUE(G.adjacent(0, 3));
  EXPECT_TRUE(G.adjacent(1, 2));
  EXPECT_TRUE(G.adjacent(2, 3));
  EXPECT_FALSE(G.adjacent(0, 1));
  EXPECT_FALSE(G.adjacent(0, 2));
  EXPECT_FALSE(G.adjacent(1, 3));
  EXPECT_EQ(G.triangleCount(), 0u);
}

TEST(MeshingGraphTest, EmptyStringsFormClique) {
  std::vector<SpanString> Spans(5, SpanString(16));
  MeshingGraph G(Spans);
  EXPECT_EQ(G.edgeCount(), 10u) << "all-zero strings mesh pairwise";
  EXPECT_EQ(G.triangleCount(), 10u) << "C(5,3) triangles";
}

TEST(MeshingGraphTest, FullStringsAreIsolated) {
  std::vector<SpanString> Spans;
  for (int I = 0; I < 4; ++I) {
    SpanString S(8);
    for (uint32_t B = 0; B < 8; ++B)
      S.setBit(B);
    Spans.push_back(S);
  }
  MeshingGraph G(Spans);
  EXPECT_EQ(G.edgeCount(), 0u);
}

TEST(MeshingGraphTest, DegreeMatchesAdjacency) {
  Rng Random(3);
  auto Spans = randomSpans(64, 32, 8, Random);
  MeshingGraph G(Spans);
  size_t DegreeSum = 0;
  for (size_t U = 0; U < G.size(); ++U) {
    size_t Manual = 0;
    for (size_t V = 0; V < G.size(); ++V)
      Manual += (U != V && G.adjacent(U, V));
    EXPECT_EQ(G.degree(U), Manual);
    DegreeSum += Manual;
  }
  EXPECT_EQ(G.edgeCount(), DegreeSum / 2);
}

TEST(MeshingGraphTest, HalfOccupancyNeverMeshes) {
  // Observation 1 setup: strings with > b/2 ones cannot mesh at all.
  Rng Random(4);
  auto Spans = randomSpans(32, 16, 9, Random);
  MeshingGraph G(Spans);
  EXPECT_EQ(G.edgeCount(), 0u);
}

TEST(MeshingGraphTest, TriangleCountBruteForceAgreement) {
  Rng Random(5);
  auto Spans = randomSpans(48, 16, 3, Random);
  MeshingGraph G(Spans);
  uint64_t Brute = 0;
  for (size_t A = 0; A < G.size(); ++A)
    for (size_t B = A + 1; B < G.size(); ++B)
      for (size_t C = B + 1; C < G.size(); ++C)
        Brute += G.adjacent(A, B) && G.adjacent(B, C) && G.adjacent(A, C);
  EXPECT_EQ(G.triangleCount(), Brute);
}

} // namespace
} // namespace analysis
} // namespace mesh
