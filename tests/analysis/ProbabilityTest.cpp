//===- ProbabilityTest.cpp - Closed-form probability tests -----------------===//

#include "analysis/Probability.h"

#include "analysis/MeshingGraph.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mesh {
namespace analysis {
namespace {

TEST(ProbabilityTest, LogChooseBasics) {
  EXPECT_NEAR(std::exp(logChoose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(logChoose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(logChoose(10, 10)), 1.0, 1e-9);
  EXPECT_EQ(logChoose(3, 5), -INFINITY);
}

TEST(ProbabilityTest, PairMeshProbabilityKnownValues) {
  // b=16, r1=r2=4: C(12,4)/C(16,4) = 495/1820.
  EXPECT_NEAR(pairMeshProbability(16, 4, 4), 495.0 / 1820.0, 1e-12);
  // Degenerate cases.
  EXPECT_EQ(pairMeshProbability(16, 10, 10), 0.0) << "cannot fit 20 in 16";
  EXPECT_NEAR(pairMeshProbability(16, 0, 4), 1.0, 1e-12);
  EXPECT_NEAR(pairMeshProbability(16, 8, 8), 1.0 / 12870.0, 1e-15)
      << "exact complement: 1/C(16,8)";
}

TEST(ProbabilityTest, PairProbabilityIsSymmetric) {
  for (unsigned R1 = 1; R1 <= 10; ++R1)
    for (unsigned R2 = 1; R2 <= 10; ++R2)
      EXPECT_NEAR(pairMeshProbability(32, R1, R2),
                  pairMeshProbability(32, R2, R1), 1e-12);
}

TEST(ProbabilityTest, Section52TriangleNumbers) {
  // Paper Section 5.2: b=32, r=10, n=1000 strings: the expected
  // triangle count is below 2, while independent edges would predict
  // 167 triangles.
  const double Dependent = expectedTriangles(1000, 32, 10);
  const double Independent = expectedTrianglesIndependent(1000, 32, 10);
  EXPECT_LT(Dependent, 2.0);
  EXPECT_NEAR(Independent, 167.0, 10.0);
  EXPECT_GT(Independent / Dependent, 80.0)
      << "dependence suppresses triangles by two orders of magnitude";
}

TEST(ProbabilityTest, Section22WorstCaseProbability) {
  // Paper Section 2.2: 64 spans, one 16-byte object each (b=256):
  // probability all land on the same offset ~ 10^-152.
  const double Log10 = log10AllSameOffsetProbability(256, 64);
  EXPECT_NEAR(Log10, -151.7, 0.5);
}

TEST(ProbabilityTest, RobsonFactorExample) {
  // Paper Section 1: 16-byte to 128 KB objects: 13x blowup possible.
  EXPECT_NEAR(robsonFactor(16, 128 * 1024), 13.0, 1e-9);
  EXPECT_NEAR(robsonFactor(16, 16), 0.0, 1e-12);
}

TEST(ProbabilityTest, MonteCarloAgreesWithPairFormula) {
  Rng Random(99);
  const unsigned B = 32, R = 6;
  const double Q = pairMeshProbability(B, R, R);
  int Meshed = 0;
  const int Trials = 40000;
  for (int T = 0; T < Trials; ++T) {
    SpanString S1 = SpanString::random(B, R, Random);
    SpanString S2 = SpanString::random(B, R, Random);
    Meshed += S1.meshesWith(S2);
  }
  EXPECT_NEAR(static_cast<double>(Meshed) / Trials, Q, 0.01);
}

TEST(ProbabilityTest, MonteCarloTrianglesMatchDependentModel) {
  // Empirical triangle counts sit near the dependent-model expectation
  // and far below the independent-model one (Section 5.2 / Section 7's
  // criticism of DRM's analysis).
  Rng Random(123);
  const unsigned N = 200, B = 32, R = 10;
  double TotalTriangles = 0;
  const int Trials = 30;
  for (int T = 0; T < Trials; ++T) {
    auto Spans = randomSpans(N, B, R, Random);
    MeshingGraph G(Spans);
    TotalTriangles += static_cast<double>(G.triangleCount());
  }
  const double Mean = TotalTriangles / Trials;
  const double Dependent = expectedTriangles(N, B, R);
  const double Independent = expectedTrianglesIndependent(N, B, R);
  EXPECT_NEAR(Mean, Dependent, 0.5 + Dependent);
  EXPECT_LT(Mean, Independent / 10.0);
}

} // namespace
} // namespace analysis
} // namespace mesh
