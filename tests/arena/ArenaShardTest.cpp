//===- ArenaShardTest.cpp - Per-class arena shard battery ------------------===//
///
/// Pins the sharded span manager's two load-bearing promises:
///
///  1. Disjointness — span traffic for different size classes acquires
///     different arena shard locks and nothing else's. Measured with
///     the always-compiled per-shard acquisition counters, so the pin
///     holds in every build mode, plus the Debug held-mask probe.
///
///  2. Truthful accounting — the process-wide dirty counter is exactly
///     the sum of the shards' counters at every quiescent point, and
///     committed/kernel-file pages agree with a live-page model through
///     churn, budget trips, and full flushes.
///
//===----------------------------------------------------------------------===//

#include "core/MeshableArena.h"

#include "core/SizeClass.h"
#include "support/LockRank.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

namespace mesh {
namespace {

constexpr size_t kArenaBytes = 256 * 1024 * 1024;

/// A size class whose spans are one page long, skipping \p Skip
/// earlier matches — the storm tests want several distinct classes
/// with identical span geometry so a buggy length-keyed (rather than
/// class-keyed) shard map would alias them.
int onePageClass(int Skip = 0) {
  for (int C = 0; C < kNumSizeClasses; ++C) {
    if (sizeClassInfo(C).SpanPages != 1)
      continue;
    if (Skip-- == 0)
      return C;
  }
  ADD_FAILURE() << "no one-page size class found";
  return 0;
}

TEST(ArenaShardTest, DisjointClassStormsTouchDisjointShardLocks) {
  MeshableArena A(kArenaBytes, /*MaxDirtyBytes=*/size_t{1} << 30);
  const int ClassA = onePageClass(0);
  const int ClassB = onePageClass(2);
  ASSERT_NE(ClassA, ClassB);

  uint64_t Before[MeshableArena::kNumArenaShards];
  for (int S = 0; S < MeshableArena::kNumArenaShards; ++S)
    Before[S] = A.shardLockAcquisitions(S);

  // Two threads, each a refill/free storm confined to its own class.
  // Every op either recycles from the class's dirty list or misses to
  // the shared clean reserve — neither path may touch another class's
  // shard.
  auto Storm = [&A](int Class) {
    const uint32_t Pages = sizeClassInfo(Class).SpanPages;
    for (int I = 0; I < 400; ++I) {
      bool Clean = false;
      const uint32_t Off = A.allocSpanForClass(Class, Pages, &Clean);
      ASSERT_NE(Off, MeshableArena::kInvalidSpanOff);
      A.arenaBase()[pagesToBytes(Off)] = static_cast<char>(I);
      A.freeDirtySpanForClass(Class, Off, Pages);
    }
  };
  std::thread T1(Storm, ClassA);
  std::thread T2(Storm, ClassB);
  T1.join();
  T2.join();

  for (int S = 0; S < MeshableArena::kNumArenaShards; ++S) {
    const uint64_t Delta = A.shardLockAcquisitions(S) - Before[S];
    if (S == ClassA || S == ClassB)
      EXPECT_GE(Delta, 800u) << "storm shard " << S << " undercounted";
    else
      EXPECT_EQ(Delta, 0u) << "bystander shard " << S
                           << " was locked by a foreign class's storm";
  }
}

TEST(ArenaShardTest, DirtyAccountingAgreesPerShardAndAggregate) {
  MeshableArena A(kArenaBytes, /*MaxDirtyBytes=*/size_t{1} << 30);
  const int Classes[] = {onePageClass(0), onePageClass(1), 20, 23};
  size_t ExpectedDirty = 0;
  for (int C : Classes) {
    const uint32_t Pages = sizeClassInfo(C).SpanPages;
    bool Clean = false;
    const uint32_t Off = A.allocSpanForClass(C, Pages, &Clean);
    ASSERT_NE(Off, MeshableArena::kInvalidSpanOff);
    memset(A.arenaBase() + pagesToBytes(Off), 0x5A, pagesToBytes(Pages));
    A.freeDirtySpanForClass(C, Off, Pages);
    ExpectedDirty += Pages;
    EXPECT_EQ(A.dirtyPagesForShard(C), Pages);
  }
  size_t ShardSum = 0;
  for (int S = 0; S < MeshableArena::kNumArenaShards; ++S)
    ShardSum += A.dirtyPagesForShard(S);
  EXPECT_EQ(A.dirtyPages(), ExpectedDirty);
  EXPECT_EQ(ShardSum, ExpectedDirty)
      << "global dirty counter drifted from the shard slices";
  // Dirty pages are cached, not punched: still committed, still real
  // file blocks.
  EXPECT_EQ(A.committedPages(), ExpectedDirty);
  EXPECT_EQ(A.kernelFilePages(), ExpectedDirty);

  EXPECT_EQ(A.flushDirty(), ExpectedDirty);
  EXPECT_EQ(A.dirtyPages(), 0u);
  for (int S = 0; S < MeshableArena::kNumArenaShards; ++S)
    EXPECT_EQ(A.dirtyPagesForShard(S), 0u);
  EXPECT_EQ(A.committedPages(), 0u);
  EXPECT_EQ(A.kernelFilePages(), 0u) << "kernel disagrees after flush";
}

TEST(ArenaShardTest, BudgetTripFlushesOnlyTheTrippingShard) {
  // Budget of 8 pages: park exactly 8 dirty pages on class A (never
  // over), then one more on class B to trip it. Only B's shard may
  // flush — A's cache survives, which is the whole point of scoping
  // the trip to the shard that crossed the line.
  MeshableArena A(kArenaBytes, /*MaxDirtyBytes=*/8 * kPageSize);
  const int ClassA = onePageClass(0);
  const int ClassB = onePageClass(1);
  bool Clean = false;
  uint32_t Offs[8];
  for (auto &Off : Offs) {
    Off = A.allocSpanForClass(ClassA, 1, &Clean);
    ASSERT_NE(Off, MeshableArena::kInvalidSpanOff);
    A.arenaBase()[pagesToBytes(Off)] = 1;
  }
  const uint32_t Tripper = A.allocSpanForClass(ClassB, 1, &Clean);
  ASSERT_NE(Tripper, MeshableArena::kInvalidSpanOff);
  A.arenaBase()[pagesToBytes(Tripper)] = 1;

  for (auto Off : Offs)
    A.freeDirtySpanForClass(ClassA, Off, 1);
  EXPECT_EQ(A.dirtyPages(), 8u) << "at the budget is not over it";

  A.freeDirtySpanForClass(ClassB, Tripper, 1);
  EXPECT_EQ(A.dirtyPagesForShard(ClassB), 0u) << "tripping shard flushed";
  EXPECT_EQ(A.dirtyPagesForShard(ClassA), 8u)
      << "bystander shard's dirty cache must survive a foreign trip";
  EXPECT_EQ(A.dirtyPages(), 8u);
}

TEST(ArenaShardTest, ConcurrentChurnKeepsCountersCoherent) {
  MeshableArena A(kArenaBytes, /*MaxDirtyBytes=*/64 * kPageSize);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 600;
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&A, &Failed, T] {
      // Mixed-length classes so budget trips interleave with recycling
      // across shards of different span geometry.
      const int Class = (T % 2 == 0) ? onePageClass(T / 2) : 20 + T;
      const uint32_t Pages = sizeClassInfo(Class).SpanPages;
      Rng R(0xA0 + T);
      std::vector<uint32_t> Live;
      for (int I = 0; I < kOpsPerThread; ++I) {
        if (Live.empty() || R.withProbability(0.6)) {
          bool Clean = false;
          const uint32_t Off = A.allocSpanForClass(Class, Pages, &Clean);
          if (Off == MeshableArena::kInvalidSpanOff) {
            Failed.store(true);
            return;
          }
          A.arenaBase()[pagesToBytes(Off)] = static_cast<char>(I);
          Live.push_back(Off);
        } else {
          A.freeDirtySpanForClass(Class, Live.back(), Pages);
          Live.pop_back();
        }
      }
      for (uint32_t Off : Live)
        A.freeDirtySpanForClass(Class, Off, Pages);
    });
  }
  for (auto &T : Threads)
    T.join();
  ASSERT_FALSE(Failed.load()) << "arena exhausted mid-storm";

  // Quiescent: everything freed dirty. The counters must reconcile.
  size_t ShardSum = 0;
  for (int S = 0; S < MeshableArena::kNumArenaShards; ++S)
    ShardSum += A.dirtyPagesForShard(S);
  EXPECT_EQ(A.dirtyPages(), ShardSum);
  EXPECT_EQ(A.committedPages(), ShardSum)
      << "no live spans remain, so committed == dirty-cached";
  EXPECT_LE(A.kernelFilePages(), A.frontierPages());
  A.flushDirty();
  EXPECT_EQ(A.dirtyPages(), 0u);
  EXPECT_EQ(A.committedPages(), 0u);
  EXPECT_EQ(A.kernelFilePages(), 0u);
}

#ifndef NDEBUG
TEST(ArenaShardTest, HeldMaskTracksArenaShardLocks) {
  MeshableArena A(kArenaBytes, kMaxDirtyBytes);
  EXPECT_EQ(lockrank::heldArenaShards(), 0u);
  A.lockShardForTest(2);
  EXPECT_EQ(lockrank::heldArenaShards(), uint32_t{1} << 2);
  A.lockShardForTest(MeshableArena::kLargeArenaShard);
  EXPECT_EQ(lockrank::heldArenaShards(),
            (uint32_t{1} << 2) |
                (uint32_t{1} << MeshableArena::kLargeArenaShard));
  A.unlockShardForTest(MeshableArena::kLargeArenaShard);
  A.unlockShardForTest(2);
  EXPECT_EQ(lockrank::heldArenaShards(), 0u);
}
#endif // NDEBUG

} // namespace
} // namespace mesh
