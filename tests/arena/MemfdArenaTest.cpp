//===- MemfdArenaTest.cpp - Virtual-memory substrate tests ---------------===//
///
/// Exercises the exact syscall sequence from paper Section 4.5.1:
/// file-backed arena, aliasing via mmap(MAP_FIXED), hole punching, and
/// the committed-page accounting the benchmarks rely on. Kernel file
/// blocks are used as ground truth.
///
//===----------------------------------------------------------------------===//

#include "arena/MemfdArena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace mesh {
namespace {

constexpr size_t kTestArena = 64 * 1024 * 1024;

TEST(MemfdArenaTest, StartsUnbacked) {
  MemfdArena A(kTestArena);
  EXPECT_EQ(A.kernelFilePages(), 0u);
  EXPECT_EQ(A.committedPages(), 0u);
  EXPECT_EQ(A.arenaPages(), kTestArena / kPageSize);
}

TEST(MemfdArenaTest, TouchCommitsPages) {
  MemfdArena A(kTestArena);
  char *P = A.ptrForPage(0);
  memset(P, 1, 3 * kPageSize);
  EXPECT_EQ(A.kernelFilePages(), 3u);
}

TEST(MemfdArenaTest, ContainsAndPageMath) {
  MemfdArena A(kTestArena);
  EXPECT_TRUE(A.contains(A.base()));
  EXPECT_TRUE(A.contains(A.base() + kTestArena - 1));
  EXPECT_FALSE(A.contains(A.base() + kTestArena));
  int Local;
  EXPECT_FALSE(A.contains(&Local));
  EXPECT_EQ(A.pageForPtr(A.ptrForPage(17)), 17u);
  EXPECT_EQ(A.pageForPtr(A.ptrForPage(17) + 100), 17u);
}

TEST(MemfdArenaTest, ReleaseReturnsPagesToOS) {
  MemfdArena A(kTestArena);
  memset(A.ptrForPage(4), 7, 4 * kPageSize);
  ASSERT_EQ(A.kernelFilePages(), 4u);
  ASSERT_TRUE(A.commit(4, 4)); // mirror the touch in our accounting
  ASSERT_TRUE(A.release(4, 4));
  EXPECT_EQ(A.kernelFilePages(), 0u);
  EXPECT_EQ(A.committedPages(), 0u);
  // Released pages read back as zero.
  for (size_t I = 0; I < 4 * kPageSize; ++I)
    ASSERT_EQ(A.ptrForPage(4)[I], 0);
}

TEST(MemfdArenaTest, AliasSharesPhysicalStorage) {
  MemfdArena A(kTestArena);
  char *Keeper = A.ptrForPage(0);
  char *Victim = A.ptrForPage(10);
  strcpy(Keeper, "keeper-data");
  strcpy(Victim, "victim-data");
  EXPECT_EQ(A.kernelFilePages(), 2u);

  ASSERT_TRUE(A.alias(/*VictimPageOff=*/10, /*KeeperPageOff=*/0, 1));
  EXPECT_STREQ(Victim, "keeper-data") << "alias must read keeper's bytes";

  // Writes through either virtual address are visible through both.
  strcpy(Victim + 100, "through-alias");
  EXPECT_STREQ(Keeper + 100, "through-alias");
  strcpy(Keeper + 200, "through-keeper");
  EXPECT_STREQ(Victim + 200, "through-keeper");

  // The victim's old file page is still allocated until released.
  ASSERT_TRUE(A.release(10, 1));
  EXPECT_EQ(A.kernelFilePages(), 1u);
  // Aliased contents unaffected by punching the victim's old offset.
  EXPECT_STREQ(Victim, "keeper-data");
}

TEST(MemfdArenaTest, ResetMappingRestoresIdentity) {
  MemfdArena A(kTestArena);
  strcpy(A.ptrForPage(0), "zero");
  strcpy(A.ptrForPage(5), "five");
  ASSERT_TRUE(A.alias(5, 0, 1));
  EXPECT_STREQ(A.ptrForPage(5), "zero");
  ASSERT_TRUE(A.release(5, 1)); // punch old file pages under offset 5
  ASSERT_TRUE(A.resetMapping(5, 1));
  // Identity restored: page 5 now shows its (punched, zero) file page.
  EXPECT_EQ(A.ptrForPage(5)[0], 0);
  // And writing it commits a fresh page without touching page 0.
  strcpy(A.ptrForPage(5), "fresh");
  EXPECT_STREQ(A.ptrForPage(0), "zero");
}

TEST(MemfdArenaTest, MultiPageAlias) {
  MemfdArena A(kTestArena);
  const size_t Pages = 4;
  char *Keeper = A.ptrForPage(0);
  char *Victim = A.ptrForPage(8);
  for (size_t P = 0; P < Pages; ++P) {
    snprintf(Keeper + P * kPageSize, 32, "keeper-%zu", P);
    snprintf(Victim + P * kPageSize, 32, "victim-%zu", P);
  }
  ASSERT_TRUE(A.alias(8, 0, Pages));
  for (size_t P = 0; P < Pages; ++P) {
    char Want[32];
    snprintf(Want, sizeof(Want), "keeper-%zu", P);
    EXPECT_STREQ(Victim + P * kPageSize, Want);
  }
}

TEST(MemfdArenaTest, ProtectMakesSpanReadOnly) {
  MemfdArena A(kTestArena);
  char *P = A.ptrForPage(2);
  P[0] = 42;
  ASSERT_TRUE(A.protect(2, 1, /*ReadOnly=*/true));
  EXPECT_EQ(P[0], 42) << "reads still succeed";
  ASSERT_TRUE(A.protect(2, 1, /*ReadOnly=*/false));
  P[0] = 43; // writable again; would crash if protection remained
  EXPECT_EQ(P[0], 43);
}

TEST(MemfdArenaTest, CommittedAccountingMatchesOperations) {
  MemfdArena A(kTestArena);
  ASSERT_TRUE(A.commit(0, 8));
  EXPECT_EQ(A.committedPages(), 8u);
  ASSERT_TRUE(A.release(0, 3));
  EXPECT_EQ(A.committedPages(), 5u);
  ASSERT_TRUE(A.commit(100, 2));
  EXPECT_EQ(A.committedPages(), 7u);
}

/// Scripted span source for reinitializeAfterFork: a fixed list of
/// (virtual, physical, pages) triples, the shape the GlobalHeap walk
/// produces from its page table.
class FixedForkSpanSource final : public ForkSpanSource {
public:
  struct Entry {
    size_t Virt, Phys, Pages;
  };
  explicit FixedForkSpanSource(std::vector<Entry> Entries)
      : Entries(std::move(Entries)) {}
  void forEachVirtualSpan(SpanVisitor Visit, void *Ctx) override {
    for (const Entry &E : Entries)
      Visit(Ctx, E.Virt, E.Phys, E.Pages);
  }

private:
  std::vector<Entry> Entries;
};

TEST(MemfdArenaTest, ReinitializeAfterForkPreservesDataAndHoles) {
  MemfdArena A(kTestArena);
  // A 4-page physical span: pages 0,1,3 written, page 2 left a hole
  // (never touched — a committed-but-unmaterialized page).
  for (size_t P : {size_t{0}, size_t{1}, size_t{3}})
    snprintf(A.ptrForPage(0) + P * kPageSize, 32, "span-page-%zu", P);
  ASSERT_TRUE(A.commit(0, 4));
  ASSERT_EQ(A.kernelFilePages(), 3u);

  FixedForkSpanSource Spans({{0, 0, 4}});
  A.reinitializeAfterFork(Spans);

  // Hole geometry identical — checked *before* any read of page 2: a
  // tmpfs read fault materializes a hole page, so the order matters
  // (kernelFilePages would already read 4 if the copy had written the
  // hole as zeroes).
  EXPECT_EQ(A.kernelFilePages(), 3u);
  // Contents identical, accounting untouched.
  for (size_t P : {size_t{0}, size_t{1}, size_t{3}}) {
    char Want[32];
    snprintf(Want, sizeof(Want), "span-page-%zu", P);
    EXPECT_STREQ(A.ptrForPage(0) + P * kPageSize, Want);
  }
  EXPECT_EQ(A.ptrForPage(2)[0], 0);
  EXPECT_EQ(A.committedPages(), 4u);
  // The fresh file is fully writable through the existing mapping.
  strcpy(A.ptrForPage(2), "late-write");
  EXPECT_STREQ(A.ptrForPage(2), "late-write");
  EXPECT_EQ(A.kernelFilePages(), 4u);
}

TEST(MemfdArenaTest, ReinitializeAfterForkDropsUnreplayedSpans) {
  MemfdArena A(kTestArena);
  // Page 0 is a live span; page 10 holds stale data nothing owns (a
  // dirty span in heap terms). Only page 0 is replayed: the stale data
  // must not be charged to the fresh file.
  strcpy(A.ptrForPage(0), "live");
  strcpy(A.ptrForPage(10), "stale");
  ASSERT_TRUE(A.commit(0, 1));
  ASSERT_EQ(A.kernelFilePages(), 2u);

  FixedForkSpanSource Spans({{0, 0, 1}});
  A.reinitializeAfterFork(Spans);

  // Kernel charge first (a read fault on the unreplayed page would
  // materialize it), then contents.
  EXPECT_EQ(A.kernelFilePages(), 1u);
  EXPECT_STREQ(A.ptrForPage(0), "live");
  EXPECT_EQ(A.ptrForPage(10)[0], 0) << "unreplayed span must read zero";
}

TEST(MemfdArenaTest, ReinitializeAfterForkReplaysAliases) {
  MemfdArena A(kTestArena);
  // Mirror a real mesh: two carved spans (both committed), victim 10
  // meshed onto keeper 0, victim's own file page punched.
  strcpy(A.ptrForPage(0), "keeper");
  strcpy(A.ptrForPage(10), "victim");
  ASSERT_TRUE(A.commit(0, 1));
  ASSERT_TRUE(A.commit(10, 1));
  ASSERT_TRUE(A.alias(/*VictimPageOff=*/10, /*KeeperPageOff=*/0, 1));
  ASSERT_TRUE(A.release(10, 1));
  ASSERT_STREQ(A.ptrForPage(10), "keeper");
  ASSERT_EQ(A.committedPages(), 1u);

  // The heap walk reports the physical span once (identity) plus the
  // alias pointing at it.
  FixedForkSpanSource Spans({{0, 0, 1}, {10, 0, 1}});
  A.reinitializeAfterFork(Spans);

  EXPECT_STREQ(A.ptrForPage(0), "keeper");
  EXPECT_STREQ(A.ptrForPage(10), "keeper") << "alias lost in the replay";
  // Still one physical page; writes through either view stay shared.
  EXPECT_EQ(A.kernelFilePages(), 1u);
  strcpy(A.ptrForPage(10) + 100, "via-alias");
  EXPECT_STREQ(A.ptrForPage(0) + 100, "via-alias");
  strcpy(A.ptrForPage(0) + 200, "via-keeper");
  EXPECT_STREQ(A.ptrForPage(10) + 200, "via-keeper");
}

TEST(MemfdArenaTest, ReinitializeAfterForkIsolatesForkedChild) {
  // The protocol end to end at the substrate level: fork, rebuild in
  // the child, then prove writes no longer cross the process boundary
  // in either direction. (The arena is standalone — no Runtime, so no
  // atfork handlers interfere; the child drives the rebuild itself.)
  MemfdArena A(kTestArena);
  strcpy(A.ptrForPage(0), "fork-instant");
  ASSERT_TRUE(A.commit(0, 1));

  int ToChild[2], ToParent[2];
  ASSERT_EQ(pipe(ToChild), 0);
  ASSERT_EQ(pipe(ToParent), 0);
  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    FixedForkSpanSource Spans({{0, 0, 1}});
    A.reinitializeAfterFork(Spans);
    if (strcmp(A.ptrForPage(0), "fork-instant") != 0)
      _exit(2); // copy lost the fork-instant contents
    strcpy(A.ptrForPage(0), "child-write");
    char Byte = 1;
    if (write(ToParent[1], &Byte, 1) != 1)
      _exit(3);
    if (read(ToChild[0], &Byte, 1) != 1) // parent has written its side
      _exit(4);
    _exit(strcmp(A.ptrForPage(0), "child-write") == 0 ? 0 : 5);
  }
  char Byte = 0;
  ASSERT_EQ(read(ToParent[0], &Byte, 1), 1); // child rebuilt + wrote
  EXPECT_STREQ(A.ptrForPage(0), "fork-instant")
      << "child write leaked into the parent";
  strcpy(A.ptrForPage(0), "parent-write");
  ASSERT_EQ(write(ToChild[1], &Byte, 1), 1);
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0)
      << "child saw the parent's post-rebuild write";
  EXPECT_STREQ(A.ptrForPage(0), "parent-write");
  for (int Fd : {ToChild[0], ToChild[1], ToParent[0], ToParent[1]})
    close(Fd);
}

} // namespace
} // namespace mesh
