//===- MemfdArenaTest.cpp - Virtual-memory substrate tests ---------------===//
///
/// Exercises the exact syscall sequence from paper Section 4.5.1:
/// file-backed arena, aliasing via mmap(MAP_FIXED), hole punching, and
/// the committed-page accounting the benchmarks rely on. Kernel file
/// blocks are used as ground truth.
///
//===----------------------------------------------------------------------===//

#include "arena/MemfdArena.h"

#include <gtest/gtest.h>

#include <cstring>

namespace mesh {
namespace {

constexpr size_t kTestArena = 64 * 1024 * 1024;

TEST(MemfdArenaTest, StartsUnbacked) {
  MemfdArena A(kTestArena);
  EXPECT_EQ(A.kernelFilePages(), 0u);
  EXPECT_EQ(A.committedPages(), 0u);
  EXPECT_EQ(A.arenaPages(), kTestArena / kPageSize);
}

TEST(MemfdArenaTest, TouchCommitsPages) {
  MemfdArena A(kTestArena);
  char *P = A.ptrForPage(0);
  memset(P, 1, 3 * kPageSize);
  EXPECT_EQ(A.kernelFilePages(), 3u);
}

TEST(MemfdArenaTest, ContainsAndPageMath) {
  MemfdArena A(kTestArena);
  EXPECT_TRUE(A.contains(A.base()));
  EXPECT_TRUE(A.contains(A.base() + kTestArena - 1));
  EXPECT_FALSE(A.contains(A.base() + kTestArena));
  int Local;
  EXPECT_FALSE(A.contains(&Local));
  EXPECT_EQ(A.pageForPtr(A.ptrForPage(17)), 17u);
  EXPECT_EQ(A.pageForPtr(A.ptrForPage(17) + 100), 17u);
}

TEST(MemfdArenaTest, ReleaseReturnsPagesToOS) {
  MemfdArena A(kTestArena);
  memset(A.ptrForPage(4), 7, 4 * kPageSize);
  ASSERT_EQ(A.kernelFilePages(), 4u);
  A.commit(4, 4); // mirror the touch in our accounting
  A.release(4, 4);
  EXPECT_EQ(A.kernelFilePages(), 0u);
  EXPECT_EQ(A.committedPages(), 0u);
  // Released pages read back as zero.
  for (size_t I = 0; I < 4 * kPageSize; ++I)
    ASSERT_EQ(A.ptrForPage(4)[I], 0);
}

TEST(MemfdArenaTest, AliasSharesPhysicalStorage) {
  MemfdArena A(kTestArena);
  char *Keeper = A.ptrForPage(0);
  char *Victim = A.ptrForPage(10);
  strcpy(Keeper, "keeper-data");
  strcpy(Victim, "victim-data");
  EXPECT_EQ(A.kernelFilePages(), 2u);

  A.alias(/*VictimPageOff=*/10, /*KeeperPageOff=*/0, 1);
  EXPECT_STREQ(Victim, "keeper-data") << "alias must read keeper's bytes";

  // Writes through either virtual address are visible through both.
  strcpy(Victim + 100, "through-alias");
  EXPECT_STREQ(Keeper + 100, "through-alias");
  strcpy(Keeper + 200, "through-keeper");
  EXPECT_STREQ(Victim + 200, "through-keeper");

  // The victim's old file page is still allocated until released.
  A.release(10, 1);
  EXPECT_EQ(A.kernelFilePages(), 1u);
  // Aliased contents unaffected by punching the victim's old offset.
  EXPECT_STREQ(Victim, "keeper-data");
}

TEST(MemfdArenaTest, ResetMappingRestoresIdentity) {
  MemfdArena A(kTestArena);
  strcpy(A.ptrForPage(0), "zero");
  strcpy(A.ptrForPage(5), "five");
  A.alias(5, 0, 1);
  EXPECT_STREQ(A.ptrForPage(5), "zero");
  A.release(5, 1); // punch old file pages under offset 5
  A.resetMapping(5, 1);
  // Identity restored: page 5 now shows its (punched, zero) file page.
  EXPECT_EQ(A.ptrForPage(5)[0], 0);
  // And writing it commits a fresh page without touching page 0.
  strcpy(A.ptrForPage(5), "fresh");
  EXPECT_STREQ(A.ptrForPage(0), "zero");
}

TEST(MemfdArenaTest, MultiPageAlias) {
  MemfdArena A(kTestArena);
  const size_t Pages = 4;
  char *Keeper = A.ptrForPage(0);
  char *Victim = A.ptrForPage(8);
  for (size_t P = 0; P < Pages; ++P) {
    snprintf(Keeper + P * kPageSize, 32, "keeper-%zu", P);
    snprintf(Victim + P * kPageSize, 32, "victim-%zu", P);
  }
  A.alias(8, 0, Pages);
  for (size_t P = 0; P < Pages; ++P) {
    char Want[32];
    snprintf(Want, sizeof(Want), "keeper-%zu", P);
    EXPECT_STREQ(Victim + P * kPageSize, Want);
  }
}

TEST(MemfdArenaTest, ProtectMakesSpanReadOnly) {
  MemfdArena A(kTestArena);
  char *P = A.ptrForPage(2);
  P[0] = 42;
  A.protect(2, 1, /*ReadOnly=*/true);
  EXPECT_EQ(P[0], 42) << "reads still succeed";
  A.protect(2, 1, /*ReadOnly=*/false);
  P[0] = 43; // writable again; would crash if protection remained
  EXPECT_EQ(P[0], 43);
}

TEST(MemfdArenaTest, CommittedAccountingMatchesOperations) {
  MemfdArena A(kTestArena);
  A.commit(0, 8);
  EXPECT_EQ(A.committedPages(), 8u);
  A.release(0, 3);
  EXPECT_EQ(A.committedPages(), 5u);
  A.commit(100, 2);
  EXPECT_EQ(A.committedPages(), 7u);
}

} // namespace
} // namespace mesh
