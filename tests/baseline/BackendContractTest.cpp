//===- BackendContractTest.cpp - Cross-backend HeapBackend contract --------===//
///
/// Pins the parts of the HeapBackend contract that workload code
/// depends on but that no single allocator's own suite states: most
/// importantly the malloc(0) behavior KVStore::copyString builds on
/// (zero-size requests return distinct, non-null, freeable pointers on
/// every backend — glibc semantics).
///
//===----------------------------------------------------------------------===//

#include "baseline/FreeListAllocator.h"
#include "baseline/SizeClassAllocator.h"

#include <gtest/gtest.h>

#include <set>

namespace mesh {
namespace {

MeshOptions smallMeshOptions() {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{1} << 30;
  Opts.MeshPeriodMs = 10;
  Opts.Seed = 7;
  return Opts;
}

void checkMallocZero(HeapBackend &Backend) {
  SCOPED_TRACE(Backend.name());
  std::set<void *> Seen;
  for (int I = 0; I < 16; ++I) {
    void *P = Backend.malloc(0);
    ASSERT_NE(P, nullptr) << "malloc(0) must return a real pointer";
    EXPECT_TRUE(Seen.insert(P).second)
        << "malloc(0) pointers must be distinct while live";
  }
  for (void *P : Seen)
    Backend.free(P); // Must be accepted like any other allocation.
  // And the same address may now legitimately come back.
  void *Again = Backend.malloc(0);
  ASSERT_NE(Again, nullptr);
  Backend.free(Again);
}

TEST(BackendContractTest, MallocZeroReturnsDistinctFreeablePointers) {
  FreeListAllocator Glibc;
  checkMallocZero(Glibc);

  SizeClassAllocator Jemalloc(256 * 1024 * 1024, 0);
  checkMallocZero(Jemalloc);

  MeshBackend Meshy(smallMeshOptions());
  checkMallocZero(Meshy);
}

} // namespace
} // namespace mesh
