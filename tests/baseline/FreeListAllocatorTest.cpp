//===- FreeListAllocatorTest.cpp - glibc-like baseline tests ---------------===//

#include "baseline/FreeListAllocator.h"

#include "support/Common.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace mesh {
namespace {

TEST(FreeListAllocatorTest, BasicRoundTrip) {
  FreeListAllocator A;
  void *P = A.malloc(100);
  ASSERT_NE(P, nullptr);
  memset(P, 0xAA, 100);
  EXPECT_GE(A.usableSize(P), 100u);
  A.free(P);
  A.free(nullptr);
}

TEST(FreeListAllocatorTest, DistinctPointers) {
  FreeListAllocator A;
  std::set<void *> Seen;
  std::vector<void *> Ptrs;
  for (int I = 0; I < 5000; ++I) {
    void *P = A.malloc(64);
    ASSERT_TRUE(Seen.insert(P).second);
    Ptrs.push_back(P);
  }
  for (void *P : Ptrs)
    A.free(P);
}

TEST(FreeListAllocatorTest, SixteenByteAlignment) {
  FreeListAllocator A;
  for (size_t Size : {1u, 24u, 100u, 4000u, 70000u}) {
    void *P = A.malloc(Size);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 16, 0u);
    A.free(P);
  }
}

TEST(FreeListAllocatorTest, ReuseAfterFree) {
  FreeListAllocator A;
  void *P = A.malloc(256);
  const size_t Committed = A.committedBytes();
  A.free(P);
  void *Q = A.malloc(256);
  EXPECT_LE(A.committedBytes(), Committed)
      << "freeing and reallocating must not grow the heap";
  A.free(Q);
}

TEST(FreeListAllocatorTest, CoalescingRebuildsLargeChunks) {
  FreeListAllocator A;
  // Allocate 64 adjacent chunks, free them all, then ask for one chunk
  // of the combined size: coalescing must satisfy it without growing.
  std::vector<void *> Ptrs;
  for (int I = 0; I < 64; ++I)
    Ptrs.push_back(A.malloc(1000));
  const size_t Grown = A.committedBytes();
  for (void *P : Ptrs)
    A.free(P);
  void *Big = A.malloc(48 * 1024);
  EXPECT_LE(A.committedBytes(), Grown + kPageSize)
      << "coalesced free chunks should satisfy a large request";
  A.free(Big);
}

TEST(FreeListAllocatorTest, TopTrimReturnsMemory) {
  FreeListAllocator A;
  void *Big = A.malloc(8 * 1024 * 1024);
  const size_t AtPeak = A.committedBytes();
  A.free(Big);
  EXPECT_LT(A.committedBytes(), AtPeak / 2)
      << "freeing the top chunk must shrink the break";
  EXPECT_GE(A.peakCommittedBytes(), AtPeak);
}

TEST(FreeListAllocatorTest, InteriorFreeDoesNotShrink) {
  // The Robson regime: a single live object above a sea of freed
  // memory pins the break. This is the behaviour Mesh exists to fix.
  FreeListAllocator A;
  std::vector<void *> Ptrs;
  for (int I = 0; I < 1000; ++I)
    Ptrs.push_back(A.malloc(4096));
  void *Pin = A.malloc(16); // sits on top
  const size_t AtPeak = A.committedBytes();
  for (void *P : Ptrs)
    A.free(P);
  EXPECT_GT(A.committedBytes(), AtPeak / 2)
      << "interior frees cannot shrink a non-compacting heap";
  A.free(Pin);
  EXPECT_LT(A.committedBytes(), 2 * kPageSize)
      << "freeing the pin finally releases everything";
}

TEST(FreeListAllocatorTest, LiveBytesTracking) {
  FreeListAllocator A;
  const size_t Initial = A.liveBytes();
  void *P = A.malloc(100);
  EXPECT_GT(A.liveBytes(), Initial);
  A.free(P);
  EXPECT_EQ(A.liveBytes(), Initial);
}

TEST(FreeListAllocatorTest, RandomChurnStaysConsistent) {
  FreeListAllocator A;
  Rng Driver(13);
  std::vector<std::pair<char *, unsigned char>> Live;
  for (int Step = 0; Step < 30000; ++Step) {
    if (Live.empty() || Driver.withProbability(0.55)) {
      const size_t Size = 16 + Driver.inRange(0, 2000);
      auto *P = static_cast<char *>(A.malloc(Size));
      const auto Pattern = static_cast<unsigned char>(Step & 0xFF);
      memset(P, Pattern, Size);
      Live.push_back({P, Pattern});
    } else {
      const size_t Idx = Driver.inRange(0, Live.size() - 1);
      ASSERT_EQ(static_cast<unsigned char>(Live[Idx].first[0]),
                Live[Idx].second);
      A.free(Live[Idx].first);
      Live[Idx] = Live.back();
      Live.pop_back();
    }
  }
  for (auto &[P, Pattern] : Live)
    A.free(P);
}

} // namespace
} // namespace mesh
