//===- SizeClassAllocatorTest.cpp - jemalloc-like baseline tests -----------===//

#include "baseline/SizeClassAllocator.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace mesh {
namespace {

constexpr size_t kArena = 512 * 1024 * 1024;

TEST(SizeClassAllocatorTest, BasicRoundTrip) {
  SizeClassAllocator A(kArena, /*MaxDirtyBytes=*/0);
  void *P = A.malloc(100);
  ASSERT_NE(P, nullptr);
  memset(P, 1, 100);
  EXPECT_EQ(A.usableSize(P), 112u) << "shares Mesh's size classes";
  A.free(P);
  EXPECT_EQ(A.committedBytes(), 0u) << "empty spans are released";
}

TEST(SizeClassAllocatorTest, SequentialPlacementWithinSpan) {
  SizeClassAllocator A(kArena, 0);
  auto *P0 = static_cast<char *>(A.malloc(16));
  auto *P1 = static_cast<char *>(A.malloc(16));
  auto *P2 = static_cast<char *>(A.malloc(16));
  EXPECT_EQ(P1, P0 + 16) << "baseline allocates bump-style";
  EXPECT_EQ(P2, P1 + 16);
  A.free(P0);
  A.free(P1);
  A.free(P2);
}

TEST(SizeClassAllocatorTest, LowestFreeSlotReused) {
  SizeClassAllocator A(kArena, 0);
  std::vector<void *> Ptrs;
  for (int I = 0; I < 10; ++I)
    Ptrs.push_back(A.malloc(16));
  A.free(Ptrs[3]);
  EXPECT_EQ(A.malloc(16), Ptrs[3]) << "first-free scan finds the hole";
  for (void *P : Ptrs)
    A.free(P);
}

TEST(SizeClassAllocatorTest, LargeObjects) {
  SizeClassAllocator A(kArena, 0);
  void *P = A.malloc(1 << 20);
  ASSERT_NE(P, nullptr);
  memset(P, 2, 1 << 20);
  EXPECT_EQ(A.usableSize(P), size_t{1} << 20);
  A.free(P);
  EXPECT_EQ(A.committedBytes(), 0u);
}

TEST(SizeClassAllocatorTest, OneLiveObjectPinsWholeSpan) {
  // The fragmentation Mesh eliminates: 256 slots per 16-byte span, one
  // survivor per span keeps the whole page committed.
  SizeClassAllocator A(kArena, 0);
  std::vector<void *> All;
  for (int I = 0; I < 16 * 256; ++I)
    All.push_back(A.malloc(16));
  const size_t Full = A.committedBytes();
  for (size_t I = 0; I < All.size(); ++I)
    if (I % 256 != 0)
      A.free(All[I]);
  EXPECT_EQ(A.committedBytes(), Full)
      << "non-compacting baseline cannot reclaim sparse spans";
  for (size_t I = 0; I < All.size(); I += 256)
    A.free(All[I]);
  EXPECT_EQ(A.committedBytes(), 0u);
}

TEST(SizeClassAllocatorTest, EveryClassRoundTrips) {
  SizeClassAllocator A(kArena, 0);
  for (int C = 0; C < kNumSizeClasses; ++C) {
    const size_t Size = sizeClassInfo(C).ObjectSize;
    void *P = A.malloc(Size);
    ASSERT_NE(P, nullptr);
    memset(P, 3, Size);
    A.free(P);
  }
  EXPECT_EQ(A.committedBytes(), 0u);
}

TEST(SizeClassAllocatorTest, DoubleFreeDetected) {
  SizeClassAllocator A(kArena, 0);
  void *P = A.malloc(64);
  void *Q = A.malloc(64);
  A.free(P);
  A.free(P); // must warn and discard, not corrupt
  EXPECT_EQ(A.usableSize(Q), 64u);
  A.free(Q);
  EXPECT_EQ(A.committedBytes(), 0u);
}

TEST(SizeClassAllocatorTest, RandomChurn) {
  SizeClassAllocator A(kArena, 0);
  Rng Driver(17);
  std::vector<std::pair<char *, unsigned char>> Live;
  for (int Step = 0; Step < 30000; ++Step) {
    if (Live.empty() || Driver.withProbability(0.52)) {
      const size_t Size = 16 + Driver.inRange(0, 4000);
      auto *P = static_cast<char *>(A.malloc(Size));
      const auto Pattern = static_cast<unsigned char>(Step & 0xFF);
      memset(P, Pattern, Size);
      Live.push_back({P, Pattern});
    } else {
      const size_t Idx = Driver.inRange(0, Live.size() - 1);
      ASSERT_EQ(static_cast<unsigned char>(Live[Idx].first[0]),
                Live[Idx].second);
      A.free(Live[Idx].first);
      Live[Idx] = Live.back();
      Live.pop_back();
    }
  }
  for (auto &[P, Pattern] : Live)
    A.free(P);
  EXPECT_EQ(A.committedBytes(), 0u);
}

} // namespace
} // namespace mesh
