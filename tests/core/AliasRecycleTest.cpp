//===- AliasRecycleTest.cpp - Meshed-span lifecycle regressions ------------===//
///
/// The trickiest part of meshing is what happens *after*: a merged
/// MiniHeap owns several virtual spans aliasing one physical span;
/// when it dies, the alias spans must be restored to identity mappings
/// and recycled as demand-zero spans; merged MiniHeaps must themselves
/// be meshable again (multi-generation meshing). These are regressions
/// for that life cycle.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"
#include "support/Epoch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace mesh {
namespace {

/// Fragments one size class and meshes to a fixpoint; returns the
/// survivors.
std::vector<char *> meshedHeap(Runtime &R, int Spans, int KeepEvery) {
  std::vector<char *> Kept;
  std::vector<char *> Toss;
  for (int I = 0; I < Spans * 256; ++I) {
    auto *P = static_cast<char *>(R.malloc(16));
    snprintf(P, 16, "s%d", I);
    (I % KeepEvery == 0 ? Kept : Toss).push_back(P);
  }
  for (char *P : Toss)
    R.free(P);
  R.localHeap().releaseAll();
  for (int Pass = 0; Pass < 32 && R.meshNow() > 0; ++Pass)
    ;
  return Kept;
}

TEST(AliasRecycleTest, MergedMiniHeapServesNewAllocations) {
  Runtime R(testOptions(3));
  auto Kept = meshedHeap(R, 16, 32);
  // Allocate into the (partially full, merged) spans: new objects must
  // land in free slots without disturbing survivors.
  std::set<void *> KeptSet(Kept.begin(), Kept.end());
  std::vector<char *> Fresh;
  for (int I = 0; I < 2000; ++I) {
    auto *P = static_cast<char *>(R.malloc(16));
    ASSERT_EQ(KeptSet.count(P), 0u) << "live slot handed out again";
    snprintf(P, 16, "f%d", I);
    Fresh.push_back(P);
  }
  int Idx = 0;
  for (char *P : Kept) {
    char Want[16];
    snprintf(Want, sizeof(Want), "s%d", Idx * 32);
    ASSERT_STREQ(P, Want);
    ++Idx;
  }
  for (char *P : Fresh)
    R.free(P);
  for (char *P : Kept)
    R.free(P);
}

TEST(AliasRecycleTest, AliasSpansRecycleAsZeroedCleanSpans) {
  Runtime R(testOptions(4));
  auto Kept = meshedHeap(R, 16, 32);
  // Kill every survivor: all merged MiniHeaps die, alias spans return
  // to the arena's clean bins via resetMapping.
  for (char *P : Kept)
    R.free(P);
  R.localHeap().releaseAll();
  EXPECT_EQ(R.committedBytes(), 0u);
  // Reallocate heavily over the recycled address space; calloc-style
  // zero checks would catch a stale alias mapping leaking another
  // span's bytes.
  for (int I = 0; I < 16 * 256; ++I) {
    auto *P = static_cast<unsigned char *>(R.calloc(1, 16));
    for (int J = 0; J < 16; ++J)
      ASSERT_EQ(P[J], 0) << "recycled alias span not demand-zero";
    R.free(P);
  }
}

TEST(AliasRecycleTest, FreeThroughAliasPointerAfterTwoGenerations) {
  Runtime R(testOptions(5));
  // Two meshing generations deep, then free *every* survivor through
  // its original pointer; page-table retargeting must hold for alias
  // spans of alias spans.
  auto Kept = meshedHeap(R, 64, 32);
  const auto &Stats = R.global().stats();
  ASSERT_GT(Stats.MeshCount.load(), 0u);
  for (char *P : Kept)
    R.free(P); // any mis-owned pointer would warn and leak
  R.localHeap().releaseAll();
  EXPECT_EQ(R.committedBytes(), 0u)
      << "every span (incl. multi-generation aliases) must be reclaimed";
}

TEST(AliasRecycleTest, WritesThroughDifferentAliasesStayCoherent) {
  Runtime R(testOptions(6));
  auto Kept = meshedHeap(R, 8, 16);
  // Find two survivors owned by the same MiniHeap but living in
  // different virtual spans.
  for (size_t A = 0; A < Kept.size(); ++A) {
    for (size_t B = A + 1; B < Kept.size(); ++B) {
      {
        // Scoped narrowly: frees below may trigger an inline mesh pass,
        // which synchronizes this epoch — never hold a reader section
        // across them.
        Epoch::Section Guard(R.global().miniheapEpoch());
        MiniHeap *MA = R.global().miniheapFor(Kept[A]);
        MiniHeap *MB = R.global().miniheapFor(Kept[B]);
        if (MA != MB || MA == nullptr || MA->spans().size() < 2)
          continue;
      }
      const size_t PageA = (Kept[A] - R.global().arenaBase()) / kPageSize;
      const size_t PageB = (Kept[B] - R.global().arenaBase()) / kPageSize;
      if (PageA == PageB)
        continue;
      // Same MiniHeap, different virtual spans: writes through both
      // must land in the same physical span without clobbering each
      // other (they are distinct offsets by construction).
      memset(Kept[A], 0xA1, 16);
      memset(Kept[B], 0xB2, 16);
      EXPECT_EQ(static_cast<unsigned char>(Kept[A][0]), 0xA1);
      EXPECT_EQ(static_cast<unsigned char>(Kept[B][0]), 0xB2);
      for (char *P : Kept)
        R.free(P);
      return;
    }
  }
  GTEST_SKIP() << "no cross-span pair found at this seed";
}

} // namespace
} // namespace mesh
