//===- BinPolicyTest.cpp - Occupancy-bin policy tests ----------------------===//
///
/// Section 3.1's span-selection policy: the global heap groups
/// detached, partially-full spans into occupancy bins, scans bins by
/// decreasing occupancy, and picks a *random* span within the chosen
/// bin. These tests pin the bin transitions and the selection
/// distribution.
///
//===----------------------------------------------------------------------===//

#include "core/GlobalHeap.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace mesh {
namespace {

/// Sets exactly \p Count bits in \p MH's bitmap (from offset 0).
void setLive(MiniHeap *MH, uint32_t Count) {
  for (uint32_t I = 0; I < Count; ++I)
    MH->bitmap().tryToSet(I);
}

TEST(BinPolicyTest, FullSpansAreNotBinned) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(0);
  setLive(MH, 256);
  G.releaseMiniHeap(MH);
  EXPECT_EQ(G.binnedCount(0), 0u) << "full spans cannot serve allocation";
  // A single free rebins it.
  G.free(G.arenaBase() + pagesToBytes(MH->physicalSpanOffset()));
  EXPECT_EQ(G.binnedCount(0), 1u);
  // Drain it so the heap closes clean.
  for (uint32_t I = 1; I < 256; ++I)
    G.free(G.arenaBase() + pagesToBytes(MH->physicalSpanOffset()) + I * 16);
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(BinPolicyTest, FreesMoveSpansDownBins) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(0);
  setLive(MH, 250); // ~98%: top bin
  G.releaseMiniHeap(MH);
  char *Span = G.arenaBase() + pagesToBytes(MH->physicalSpanOffset());
  // Free down through every bin boundary; the span must stay binned
  // (reachable for reuse) the whole way down.
  for (uint32_t I = 249; I > 0; --I) {
    G.free(Span + I * 16);
    ASSERT_EQ(G.binnedCount(0), 1u) << "lost the span at occupancy " << I;
  }
  G.free(Span);
  EXPECT_EQ(G.binnedCount(0), 0u);
  EXPECT_EQ(G.committedBytes(), 0u) << "empty span released";
}

TEST(BinPolicyTest, SelectionPrefersFullestBin) {
  GlobalHeap G(testOptions());
  // One span per occupancy quartile.
  std::vector<MiniHeap *> Spans;
  for (uint32_t Live : {32u, 96u, 160u, 224u}) {
    MiniHeap *MH = G.allocMiniHeapForClass(0);
    setLive(MH, Live);
    Spans.push_back(MH);
  }
  for (MiniHeap *MH : Spans)
    G.releaseMiniHeap(MH);
  // Selections must come out in decreasing-occupancy order.
  for (int Expected = 3; Expected >= 0; --Expected)
    EXPECT_EQ(G.allocMiniHeapForClass(0), Spans[Expected])
        << "bin scan order violated at quartile " << Expected;
  for (MiniHeap *MH : Spans) {
    MH->bitmap().clearAll();
    G.releaseMiniHeap(MH);
  }
}

TEST(BinPolicyTest, SelectionWithinBinIsRandomized) {
  GlobalHeap G(testOptions(/*Seed=*/7));
  // Eight spans at identical occupancy: repeated (select, release)
  // must not always return the same span.
  std::vector<MiniHeap *> Spans;
  for (int I = 0; I < 8; ++I) {
    MiniHeap *MH = G.allocMiniHeapForClass(0);
    setLive(MH, 128);
    Spans.push_back(MH);
  }
  for (MiniHeap *MH : Spans)
    G.releaseMiniHeap(MH);
  std::map<MiniHeap *, int> Hits;
  for (int Trial = 0; Trial < 200; ++Trial) {
    MiniHeap *Picked = G.allocMiniHeapForClass(0);
    ++Hits[Picked];
    G.releaseMiniHeap(Picked);
  }
  EXPECT_GT(Hits.size(), 3u)
      << "selection should spread across the bin (Section 3.1)";
  for (MiniHeap *MH : Spans) {
    MH->bitmap().clearAll();
    G.releaseMiniHeap(MH);
  }
}

TEST(BinPolicyTest, BinsArelPerSizeClass) {
  GlobalHeap G(testOptions());
  MiniHeap *Small = G.allocMiniHeapForClass(0);
  MiniHeap *Big = G.allocMiniHeapForClass(10);
  Small->bitmap().tryToSet(0);
  Big->bitmap().tryToSet(0);
  G.releaseMiniHeap(Small);
  G.releaseMiniHeap(Big);
  EXPECT_EQ(G.binnedCount(0), 1u);
  EXPECT_EQ(G.binnedCount(10), 1u);
  EXPECT_EQ(G.binnedCount(5), 0u);
  EXPECT_EQ(G.allocMiniHeapForClass(0), Small);
  EXPECT_EQ(G.allocMiniHeapForClass(10), Big);
  Small->bitmap().clearAll();
  Big->bitmap().clearAll();
  G.releaseMiniHeap(Small);
  G.releaseMiniHeap(Big);
}

} // namespace
} // namespace mesh
