//===- ConcurrencyTest.cpp - Multi-threaded allocator stress ---------------===//

#include "core/Runtime.h"

#include "TestConfig.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

namespace mesh {
namespace {

TEST(ConcurrencyTest, ParallelChurnManyClasses) {
  Runtime R(testOptions());
  constexpr int kThreads = 8;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&R, T] {
      Rng Driver(1000 + T);
      std::vector<std::pair<char *, char>> Live;
      for (int I = 0; I < 20000; ++I) {
        if (Live.empty() || Driver.withProbability(0.55)) {
          const size_t Size = 16 << Driver.inRange(0, 6);
          auto *P = static_cast<char *>(R.malloc(Size));
          const char Tag = static_cast<char>('A' + T);
          memset(P, Tag, Size);
          Live.push_back({P, Tag});
        } else {
          const size_t Idx = Driver.inRange(0, Live.size() - 1);
          ASSERT_EQ(Live[Idx].first[0], Live[Idx].second)
              << "cross-thread corruption";
          R.free(Live[Idx].first);
          Live[Idx] = Live.back();
          Live.pop_back();
        }
      }
      for (auto &[P, Tag] : Live)
        R.free(P);
    });
  for (auto &Th : Threads)
    Th.join();
}

TEST(ConcurrencyTest, ProducerConsumerPipelines) {
  // Allocation on one thread, free on another (remote frees stress the
  // global-heap path and bitmap atomics).
  Runtime R(testOptions());
  constexpr int kItems = 30000;
  std::vector<std::atomic<void *>> Mailbox(64);
  for (auto &Slot : Mailbox)
    Slot.store(nullptr);
  std::atomic<int> Produced{0}, Consumed{0};

  std::thread Producer([&] {
    Rng Driver(5);
    while (Produced.load() < kItems) {
      const int Slot = Driver.inRange(0, 63);
      void *Expected = nullptr;
      void *P = R.malloc(32 + 16 * Driver.inRange(0, 4));
      memset(P, 0x6B, 32);
      if (Mailbox[Slot].compare_exchange_strong(Expected, P))
        Produced.fetch_add(1);
      else
        R.free(P);
    }
  });
  std::thread Consumer([&] {
    Rng Driver(6);
    while (Consumed.load() < kItems) {
      const int Slot = Driver.inRange(0, 63);
      void *P = Mailbox[Slot].exchange(nullptr);
      if (P != nullptr) {
        ASSERT_EQ(static_cast<unsigned char *>(P)[0], 0x6B);
        R.free(P);
        Consumed.fetch_add(1);
      }
    }
  });
  Producer.join();
  Consumer.join();
  // Drain leftovers.
  for (auto &Slot : Mailbox)
    if (void *P = Slot.exchange(nullptr))
      R.free(P);
}

TEST(ConcurrencyTest, MeshingRacesWithAllocation) {
  // One thread repeatedly meshes while others churn. Meshing only
  // touches detached spans, so all application data must survive.
  MeshOptions Opts = testOptions();
  Opts.MeshPeriodMs = 0; // mesh as often as asked
  Runtime R(Opts);
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Meshes{0};

  std::thread Mesher([&] {
    while (!Stop.load()) {
      R.meshNow();
      Meshes.fetch_add(1);
    }
  });

  std::vector<std::thread> Workers;
  for (int T = 0; T < 4; ++T)
    Workers.emplace_back([&R, T] {
      Rng Driver(50 + T);
      std::vector<std::pair<uint64_t *, uint64_t>> Live;
      for (int I = 0; I < 15000; ++I) {
        if (Live.empty() || Driver.withProbability(0.5)) {
          auto *P = static_cast<uint64_t *>(R.malloc(16));
          const uint64_t Stamp = Driver.next();
          *P = Stamp;
          Live.push_back({P, Stamp});
        } else {
          const size_t Idx = Driver.inRange(0, Live.size() - 1);
          ASSERT_EQ(*Live[Idx].first, Live[Idx].second)
              << "object corrupted while meshing ran";
          R.free(Live[Idx].first);
          Live[Idx] = Live.back();
          Live.pop_back();
        }
        // Periodically rotate spans back to the global heap so the
        // mesher has candidates.
        if (I % 2048 == 0)
          R.localHeap().releaseAll();
      }
      for (auto &[P, Stamp] : Live) {
        ASSERT_EQ(*P, Stamp);
        R.free(P);
      }
    });
  for (auto &Th : Workers)
    Th.join();
  Stop.store(true);
  Mesher.join();
  EXPECT_GT(Meshes.load(), 0u);
}

TEST(ConcurrencyTest, ConcurrentWritersHitWriteBarrier) {
  // Writers continuously mutate live objects in detached spans while
  // meshing runs. The mprotect write barrier must serialize relocation
  // against those writes without losing updates. Auto-meshing stays
  // off (testOptions) so all compaction happens in the measured loop.
  Runtime R(testOptions());

  // Build fragmented, detached spans whose objects stay live.
  std::vector<std::atomic<uint64_t> *> Cells;
  {
    std::vector<void *> ToFree;
    for (int I = 0; I < 64 * 256; ++I) {
      void *P = R.malloc(16);
      if (I % 8 == 0)
        Cells.push_back(new (P) std::atomic<uint64_t>(0));
      else
        ToFree.push_back(P);
    }
    for (void *P : ToFree)
      R.free(P);
    R.localHeap().releaseAll();
  }

  std::atomic<bool> Stop{false};
  std::atomic<int> Started{0};
  std::vector<std::thread> Writers;
  for (int T = 0; T < 4; ++T)
    Writers.emplace_back([&, T] {
      Rng Driver(80 + T);
      Started.fetch_add(1);
      while (!Stop.load()) {
        auto *Cell = Cells[Driver.inRange(0, Cells.size() - 1)];
        Cell->fetch_add(1, std::memory_order_relaxed);
      }
    });
  // Meshing must overlap the writers, not race ahead of their startup.
  while (Started.load() < 4)
    std::this_thread::yield();

  uint64_t TotalFreed = 0;
  for (int Pass = 0; Pass < 20; ++Pass)
    TotalFreed += R.meshNow();
  Stop.store(true);
  for (auto &Th : Writers)
    Th.join();
  EXPECT_GT(TotalFreed, 0u)
      << "meshing should reclaim under writers (binned="
      << R.global().binnedCount(0)
      << " passes=" << R.global().stats().MeshPasses.load()
      << " probes=" << R.global().stats().MeshProbeCount.load() << ")";

  // Sum of counters must equal total increments: fetch_add through the
  // barrier never loses an update. (We can't know the expected total,
  // but corruption would show as wildly inconsistent cells or crashes;
  // validate cells are readable and the heap is intact.)
  uint64_t Sum = 0;
  for (auto *Cell : Cells)
    Sum += Cell->load();
  EXPECT_GT(Sum, 0u);
  for (auto *Cell : Cells)
    R.free(Cell);
}

} // namespace
} // namespace mesh
