//===- EdgeCaseTest.cpp - Cross-cutting edge cases -------------------------===//

#include "core/Runtime.h"
#include "core/WriteBarrier.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace mesh {
namespace {

TEST(EdgeCaseTest, TwoRuntimesCoexist) {
  // Independent heaps: their arenas, stats and meshing are isolated.
  Runtime A(testOptions(1));
  Runtime B(testOptions(2));
  void *PA = A.malloc(100);
  void *PB = B.malloc(100);
  ASSERT_NE(PA, nullptr);
  ASSERT_NE(PB, nullptr);
  EXPECT_EQ(A.usableSize(PA), 112u);
  EXPECT_EQ(A.usableSize(PB), 0u) << "B's pointer is foreign to A";
  EXPECT_EQ(B.usableSize(PA), 0u);
  A.free(PA);
  B.free(PB);
}

TEST(EdgeCaseTest, CrossRuntimeFreeIsDiscarded) {
  Runtime A(testOptions(3));
  Runtime B(testOptions(4));
  void *P = A.malloc(64);
  B.free(P); // must warn and discard, not crash or corrupt B
  EXPECT_EQ(A.usableSize(P), 64u) << "object still live in A";
  A.free(P);
}

TEST(EdgeCaseTest, MallocZeroReturnsUsablePointer) {
  Runtime R(testOptions());
  void *P = R.malloc(0);
  ASSERT_NE(P, nullptr);
  EXPECT_GE(R.usableSize(P), 1u);
  void *Q = R.malloc(0);
  EXPECT_NE(P, Q) << "distinct zero-size allocations";
  R.free(P);
  R.free(Q);
}

TEST(EdgeCaseTest, HugeAllocationRoundTrips) {
  Runtime R(testOptions());
  const size_t Huge = 64 * 1024 * 1024;
  auto *P = static_cast<char *>(R.malloc(Huge));
  ASSERT_NE(P, nullptr);
  P[0] = 1;
  P[Huge - 1] = 2;
  EXPECT_EQ(R.usableSize(P), Huge);
  R.free(P);
  EXPECT_EQ(R.committedBytes(), 0u);
}

TEST(EdgeCaseTest, StatsAccountingConsistent) {
  Runtime R(testOptions(8));
  // Build fragmentation (allocate everything, then thin out — frees
  // interleaved with mallocs would just recycle the same slots), mesh,
  // and check the counters reconcile.
  std::vector<void *> All;
  std::vector<void *> Kept;
  for (int I = 0; I < 32 * 256; ++I)
    All.push_back(R.malloc(16));
  for (size_t I = 0; I < All.size(); ++I) {
    if (I % 16 == 0)
      Kept.push_back(All[I]);
    else
      R.free(All[I]);
  }
  R.localHeap().releaseAll();
  size_t TotalFreed = 0;
  for (int Pass = 0; Pass < 16; ++Pass) {
    const size_t Freed = R.meshNow();
    if (Freed == 0)
      break;
    TotalFreed += Freed;
  }
  const auto &Stats = R.global().stats();
  EXPECT_EQ(pagesToBytes(Stats.PagesMeshed.load()), TotalFreed)
      << "pages-meshed counter must equal bytes reported by meshNow";
  EXPECT_EQ(Stats.MeshCount.load(), Stats.PagesMeshed.load())
      << "one-page spans: one page released per mesh";
  EXPECT_GT(Stats.BytesCopied.load(), 0u);
  EXPECT_LE(Stats.BytesCopied.load(),
            Stats.MeshCount.load() * kPageSize)
      << "cannot copy more than a span per mesh";
  EXPECT_GT(Stats.MeshProbeCount.load(), 0u);
  for (void *P : Kept)
    R.free(P);
}

TEST(EdgeCaseTest, SeededRunsAreReproducible) {
  // Identical seeds and operation sequences yield identical meshing
  // outcomes (the determinism the benchmarks rely on).
  auto Run = [](uint64_t Seed) {
    MeshOptions Opts = testOptions(Seed);
    Runtime R(Opts);
    std::vector<void *> Kept;
    for (int I = 0; I < 16 * 256; ++I) {
      void *P = R.malloc(16);
      if (I % 8 == 0)
        Kept.push_back(P);
      else
        R.free(P);
    }
    R.localHeap().releaseAll();
    size_t Freed = 0;
    for (int Pass = 0; Pass < 8; ++Pass)
      Freed += R.meshNow();
    for (void *P : Kept)
      R.free(P);
    return Freed;
  };
  // Note: ThreadLocalHeap seeds mix in pthread_self, which is stable
  // within one process, so same-process same-seed runs must agree.
  EXPECT_EQ(Run(12345), Run(12345));
}

TEST(EdgeCaseDeathTest, ForeignSegfaultStillDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // With the write-barrier SIGSEGV handler installed, a genuine wild
  // write (outside any Mesh arena) must still crash the process, not
  // hang or get swallowed.
  MeshOptions Opts = testOptions();
  Opts.BarrierEnabled = true;
  Runtime R(Opts); // installs the handler
  EXPECT_DEATH(
      {
        // Launder the address through a volatile so the optimizer
        // cannot classify the store as an out-of-bounds access to a
        // known object (-Warray-bounds under -O2).
        volatile uintptr_t Addr = 0x40;
        volatile int *Wild = reinterpret_cast<volatile int *>(Addr);
        *Wild = 7;
      },
      "");
}

} // namespace
} // namespace mesh
