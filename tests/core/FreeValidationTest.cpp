//===- FreeValidationTest.cpp - Invalid-free and bin-boundary tests --------===//
///
/// Regression tests for the global free path's detect-and-discard
/// behavior (GlobalHeap.h: "Invalid and double frees are detected and
/// discarded with a warning") and for occupancyBin's boundary math at
/// exactly 25/50/75/100% occupancy.
///
//===----------------------------------------------------------------------===//

#include "core/GlobalHeap.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

namespace mesh {
namespace {

/// Sets exactly \p Count bits in \p MH's bitmap (from offset 0).
void setLive(MiniHeap *MH, uint32_t Count) {
  for (uint32_t I = 0; I < Count; ++I)
    MH->bitmap().tryToSet(I);
}

TEST(FreeValidationTest, NonHeapPointerIsDiscarded) {
  GlobalHeap G(testOptions());
  int Local = 0;
  const size_t Before = G.committedBytes();
  G.free(&Local);          // stack pointer: outside the arena
  G.free(reinterpret_cast<void *>(0x1000)); // arbitrary non-heap address
  EXPECT_EQ(G.committedBytes(), Before)
      << "a rejected free must not alter heap state";
}

TEST(FreeValidationTest, UnallocatedArenaPointerIsDiscarded) {
  GlobalHeap G(testOptions());
  // Inside the arena's reservation, but no span has been allocated
  // there, so the page table has no owner for it.
  G.free(G.arenaBase() + pagesToBytes(4));
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(FreeValidationTest, InteriorPointerIsDiscarded) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(0); // 16-byte objects
  setLive(MH, 16);
  G.releaseMiniHeap(MH);
  char *Span = G.arenaBase() + pagesToBytes(MH->physicalSpanOffset());
  G.free(Span + 8); // not a multiple of the object size
  EXPECT_EQ(MH->inUseCount(), 16u)
      << "interior-pointer free must not clear any bitmap bit";
  // Drain so the heap closes clean.
  for (uint32_t I = 0; I < 16; ++I)
    G.free(Span + I * 16);
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(FreeValidationTest, DoubleFreeIsDiscarded) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(0);
  setLive(MH, 2);
  G.releaseMiniHeap(MH);
  char *Span = G.arenaBase() + pagesToBytes(MH->physicalSpanOffset());
  G.free(Span); // frees object 0
  ASSERT_EQ(MH->inUseCount(), 1u);
  G.free(Span); // double free: bit already clear, must be discarded
  EXPECT_EQ(MH->inUseCount(), 1u)
      << "double free must not free a second object";
  EXPECT_EQ(G.binnedCount(0), 1u) << "span must survive a double free";
  G.free(Span + 16);
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(FreeValidationTest, LargeDoubleFreeIsDiscarded) {
  GlobalHeap G(testOptions());
  void *P = G.largeAlloc(64 * 1024);
  ASSERT_NE(P, nullptr);
  G.free(P);
  EXPECT_EQ(G.committedBytes(), 0u);
  // The singleton MiniHeap is gone; a second free must hit the
  // unallocated-pointer path, not crash or corrupt state.
  G.free(P);
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(OccupancyBinTest, ExactQuartileBoundaries) {
  // Quartiles are left-closed (see GlobalHeap::occupancyBin): exactly
  // 25/50/75% open their bins; 100% clamps into the top bin.
  const uint32_t Count = 256;
  EXPECT_EQ(GlobalHeap::occupancyBin(64, Count), 1);  // exactly 25%
  EXPECT_EQ(GlobalHeap::occupancyBin(128, Count), 2); // exactly 50%
  EXPECT_EQ(GlobalHeap::occupancyBin(192, Count), 3); // exactly 75%
  EXPECT_EQ(GlobalHeap::occupancyBin(256, Count), 3); // 100% clamps
}

TEST(OccupancyBinTest, JustBelowBoundariesStayInLowerBin) {
  const uint32_t Count = 256;
  EXPECT_EQ(GlobalHeap::occupancyBin(1, Count), 0);
  EXPECT_EQ(GlobalHeap::occupancyBin(63, Count), 0);
  EXPECT_EQ(GlobalHeap::occupancyBin(127, Count), 1);
  EXPECT_EQ(GlobalHeap::occupancyBin(191, Count), 2);
  EXPECT_EQ(GlobalHeap::occupancyBin(255, Count), 3);
}

TEST(OccupancyBinTest, SmallCountsNeverOverflowTopBin) {
  // Spans with few objects (large size classes) must still land in
  // [0, kOccupancyBins).
  for (uint32_t Count : {2u, 3u, 5u, 8u}) {
    for (uint32_t InUse = 0; InUse <= Count; ++InUse) {
      const int Bin = GlobalHeap::occupancyBin(InUse, Count);
      EXPECT_GE(Bin, 0);
      EXPECT_LT(Bin, GlobalHeap::kOccupancyBins);
    }
  }
}

} // namespace
} // namespace mesh
