//===- GlobalHeapTest.cpp - Global heap unit tests -------------------------===//

#include "core/GlobalHeap.h"

#include "TestConfig.h"
#include "core/ShuffleVector.h"
#include "support/Epoch.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace mesh {
namespace {

TEST(GlobalHeapTest, FreshMiniHeapHasClassGeometry) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(0);
  ASSERT_NE(MH, nullptr);
  EXPECT_TRUE(MH->isAttached());
  EXPECT_EQ(MH->objectSize(), 16u);
  EXPECT_EQ(MH->objectCount(), 256u);
  {
    Epoch::Section Guard(G.miniheapEpoch());
    EXPECT_EQ(G.miniheapFor(G.arenaBase() +
                            pagesToBytes(MH->physicalSpanOffset())),
              MH);
  }
  G.releaseMiniHeap(MH);
}

TEST(GlobalHeapTest, ReleaseEmptyMiniHeapFreesSpan) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(0);
  const size_t Before = G.committedBytes();
  EXPECT_GT(Before, 0u);
  G.releaseMiniHeap(MH); // empty: destroyed, span released
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(GlobalHeapTest, PartialMiniHeapIsBinnedAndReused) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(3);
  MH->bitmap().tryToSet(7); // one live object
  G.releaseMiniHeap(MH);
  EXPECT_EQ(G.binnedCount(3), 1u);
  MiniHeap *Again = G.allocMiniHeapForClass(3);
  EXPECT_EQ(Again, MH) << "partial span must be reused before a fresh one";
  EXPECT_EQ(G.binnedCount(3), 0u);
  MH->bitmap().unset(7);
  G.releaseMiniHeap(MH);
}

TEST(GlobalHeapTest, FullestBinPreferred) {
  GlobalHeap G(testOptions());
  // Low-occupancy span.
  MiniHeap *Low = G.allocMiniHeapForClass(0);
  Low->bitmap().tryToSet(0);
  G.releaseMiniHeap(Low);
  // High-occupancy span.
  MiniHeap *High = G.allocMiniHeapForClass(0);
  for (uint32_t I = 0; I < 250; ++I)
    High->bitmap().tryToSet(I);
  G.releaseMiniHeap(High);
  EXPECT_EQ(G.allocMiniHeapForClass(0), High)
      << "global heap scans bins by decreasing occupancy (Section 3.1)";
}

TEST(GlobalHeapTest, LargeAllocRoundTrip) {
  GlobalHeap G(testOptions());
  void *P = G.largeAlloc(100 * 1024);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % kPageSize, 0u)
      << "large objects are page-aligned";
  memset(P, 0xCD, 100 * 1024);
  EXPECT_EQ(G.usableSize(P), bytesToPages(100 * 1024) * kPageSize)
      << "usable size rounds to whole pages";
  G.free(P);
  EXPECT_EQ(G.committedBytes(), 0u)
      << "large-object pages are freed directly to the OS";
}

TEST(GlobalHeapTest, LargeAllocZeroedReportsSpanCleanliness) {
  // The calloc zero-skip hook: pristine spans (frontier, or punched
  // holes) report zeroed; spans recycled through the dirty bins do not.
  MeshOptions Opts = testOptions();
  Opts.MaxDirtyBytes = 64 * 1024 * 1024; // Keep freed spans dirty.
  GlobalHeap G(Opts);

  bool Zeroed = false;
  void *A = G.largeAllocZeroed(100 * 1024, &Zeroed);
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(Zeroed) << "frontier span is demand-zero";

  // Retire a dirtied meshable span (2048-byte class: 4-page spans) to
  // the dirty bins.
  int Class = -1;
  ASSERT_TRUE(sizeClassForSize(2048, &Class));
  MiniHeap *MH = G.allocMiniHeapForClass(Class);
  ASSERT_EQ(MH->spanPages(), 4u);
  char *Span = G.arenaBase() + pagesToBytes(MH->physicalSpanOffset());
  memset(Span, 0xEE, pagesToBytes(MH->spanPages()));
  G.releaseMiniHeap(MH); // Empty: destroyed, span cached dirty.

  // Dirty spans are class-local (arena shard per size class): a 16 KiB
  // large allocation also needs a 4-page span, but it must NOT poach
  // the class's dirty span — it draws from the shared clean reserve /
  // frontier and stays demand-zero.
  void *B = G.largeAllocZeroed(16 * 1024, &Zeroed);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(B, Span) << "dirty spans never cross size-class shards";
  EXPECT_TRUE(Zeroed) << "clean-reserve span is demand-zero";

  // The class itself reuses its dirty span — the recycling the shard
  // exists for — and the stale bytes prove no punch happened.
  MiniHeap *MH2 = G.allocMiniHeapForClass(Class);
  ASSERT_NE(MH2, nullptr);
  EXPECT_EQ(G.arenaBase() + pagesToBytes(MH2->physicalSpanOffset()), Span)
      << "class-local dirty reuse";
  EXPECT_EQ(Span[0], static_cast<char>(0xEE)) << "span kept its stale bytes";
  G.releaseMiniHeap(MH2);
  G.free(A);
  G.free(B);
}

TEST(GlobalHeapTest, FreeOfDetachedObjectRebins) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(0);
  // Simulate two allocations through a shuffle vector.
  Rng R(1);
  ShuffleVector V;
  V.init(&R, true);
  V.attach(MH, G.arenaBase());
  void *A = V.malloc();
  void *B = V.malloc();
  V.detach();
  G.releaseMiniHeap(MH);
  ASSERT_EQ(MH->inUseCount(), 2u);

  G.free(A);
  EXPECT_EQ(MH->inUseCount(), 1u);
  EXPECT_EQ(G.binnedCount(0), 1u);
  G.free(B); // empty now: destroyed
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(GlobalHeapTest, InvalidFreesAreDiscarded) {
  GlobalHeap G(testOptions());
  // Paper Section 4.4.4: invalid frees are "easily discovered and
  // discarded". None of these may crash or corrupt state.
  int Stack = 0;
  G.free(&Stack);                 // outside the arena
  G.free(G.arenaBase() + 12345);  // inside arena, unallocated page
  void *P = G.largeAlloc(50000);
  G.free(static_cast<char *>(P) + 1); // interior pointer
  G.free(P);
  G.free(P); // double free of a stale pointer
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(GlobalHeapTest, DoubleFreeOfSmallObjectDetected) {
  GlobalHeap G(testOptions());
  MiniHeap *MH = G.allocMiniHeapForClass(0);
  Rng R(1);
  ShuffleVector V;
  V.init(&R, true);
  V.attach(MH, G.arenaBase());
  void *A = V.malloc();
  void *B = V.malloc();
  V.detach();
  G.releaseMiniHeap(MH);
  G.free(A);
  G.free(A); // double free: must be discarded, not corrupt the bin
  EXPECT_EQ(MH->inUseCount(), 1u);
  G.free(B);
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(GlobalHeapTest, UsableSizeForUnknownPointerIsZero) {
  GlobalHeap G(testOptions());
  int Stack;
  EXPECT_EQ(G.usableSize(&Stack), 0u);
  EXPECT_EQ(G.usableSize(nullptr), 0u);
}

TEST(GlobalHeapTest, MeshNowConsolidatesComplementarySpans) {
  GlobalHeap G(testOptions());
  // Build two half-full spans with complementary offsets by driving
  // the bitmaps directly.
  MiniHeap *A = G.allocMiniHeapForClass(0);
  MiniHeap *B = G.allocMiniHeapForClass(0);
  char *Base = G.arenaBase();
  for (uint32_t I = 0; I < 128; ++I) {
    A->bitmap().tryToSet(I);        // low half
    B->bitmap().tryToSet(128 + I);  // high half
  }
  // Write recognizable contents through the virtual spans.
  char *ASpan = Base + pagesToBytes(A->physicalSpanOffset());
  char *BSpan = Base + pagesToBytes(B->physicalSpanOffset());
  for (uint32_t I = 0; I < 128; ++I) {
    memset(ASpan + I * 16, 'a', 16);
    memset(BSpan + (128 + I) * 16, 'b', 16);
  }
  G.releaseMiniHeap(A);
  G.releaseMiniHeap(B);
  ASSERT_EQ(G.committedBytes(), 2 * kPageSize);

  const size_t Freed = G.meshNow();
  EXPECT_EQ(Freed, kPageSize) << "one physical page released";
  EXPECT_EQ(G.committedBytes(), kPageSize);
  EXPECT_EQ(G.stats().MeshCount.load(), 1u);

  // Virtual addresses are preserved: both spans still show their data.
  for (uint32_t I = 0; I < 128; ++I) {
    ASSERT_EQ(ASpan[I * 16], 'a');
    ASSERT_EQ(BSpan[(128 + I) * 16], 'b');
  }
  // Both virtual spans now resolve to the same (merged) MiniHeap.
  {
    Epoch::Section Guard(G.miniheapEpoch());
    EXPECT_EQ(G.miniheapFor(ASpan), G.miniheapFor(BSpan));
  }
}

TEST(GlobalHeapTest, MeshRateLimitRespected) {
  MeshOptions Opts = testOptions();
  Opts.MeshPeriodMs = 1000 * 1000; // effectively never
  GlobalHeap G(Opts);
  MiniHeap *A = G.allocMiniHeapForClass(0);
  MiniHeap *B = G.allocMiniHeapForClass(0);
  A->bitmap().tryToSet(0);
  B->bitmap().tryToSet(1);
  G.releaseMiniHeap(A);
  G.releaseMiniHeap(B);
  G.maybeMesh();
  EXPECT_EQ(G.stats().MeshPasses.load(), 0u)
      << "rate limiter must suppress meshing";
  EXPECT_EQ(G.meshNow(), kPageSize) << "explicit meshNow bypasses the limit";
}

TEST(GlobalHeapTest, NonMeshableClassesAreSkipped) {
  GlobalHeap G(testOptions());
  // 4096-byte class (index 21) is excluded from meshing (Section 4).
  MiniHeap *A = G.allocMiniHeapForClass(21);
  MiniHeap *B = G.allocMiniHeapForClass(21);
  A->bitmap().tryToSet(0);
  B->bitmap().tryToSet(1);
  G.releaseMiniHeap(A);
  G.releaseMiniHeap(B);
  EXPECT_EQ(G.meshNow(), 0u);
  EXPECT_EQ(G.stats().MeshCount.load(), 0u);
}

TEST(GlobalHeapTest, PeakCommittedTracksHighWater) {
  GlobalHeap G(testOptions());
  std::vector<void *> Ptrs;
  for (int I = 0; I < 16; ++I)
    Ptrs.push_back(G.largeAlloc(64 * 1024));
  const size_t Peak =
      pagesToBytes(G.stats().PeakCommittedPages.load());
  EXPECT_GE(Peak, size_t{16} * 64 * 1024);
  for (void *P : Ptrs)
    G.free(P);
  EXPECT_EQ(G.committedBytes(), 0u);
  EXPECT_GE(pagesToBytes(G.stats().PeakCommittedPages.load()), Peak)
      << "peak never decreases";
}

} // namespace
} // namespace mesh
