//===- MallctlLeavesTest.cpp - mallctl registry/docs sync ------------------===//
///
/// The mallctl name space is documented in one place users see
/// (api/mesh/mesh.h) and implemented in another (core/Runtime.cpp).
/// Those drifted once already — leaves shipped that the header never
/// mentioned. This suite pins them together mechanically:
///
///   - version.leaves enumerates the registry (size query + read);
///   - every enumerated leaf actually resolves (!= ENOENT);
///   - the set of quoted dotted names in mesh.h's doc comment equals
///     the registry, both directions (MESH_API_HEADER is injected by
///     the build so the test reads the header source itself);
///   - the faults.reset and telemetry.reset write leaves really zero
///     their counter families, enabling per-phase delta assertions.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"
#include "support/Sys.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

namespace mesh {
namespace {

std::vector<std::string> enumerateLeaves(Runtime &R) {
  size_t Needed = 0;
  EXPECT_EQ(R.mallctl("version.leaves", nullptr, &Needed, nullptr, 0), 0);
  EXPECT_GT(Needed, 0u);
  std::string Buf(Needed, '\0');
  size_t Len = Needed;
  EXPECT_EQ(R.mallctl("version.leaves", Buf.data(), &Len, nullptr, 0), 0);
  EXPECT_EQ(Len, Needed);
  std::vector<std::string> Leaves;
  std::string Cur;
  for (size_t I = 0; I < Buf.size() && Buf[I] != '\0'; ++I) {
    if (Buf[I] == '\n') {
      if (!Cur.empty())
        Leaves.push_back(Cur);
      Cur.clear();
    } else {
      Cur += Buf[I];
    }
  }
  if (!Cur.empty())
    Leaves.push_back(Cur);
  return Leaves;
}

/// Every "quoted.dotted_name" in the public header's doc text: the
/// documented mallctl surface.
std::set<std::string> documentedLeaves() {
  std::set<std::string> Names;
  FILE *F = fopen(MESH_API_HEADER, "r");
  EXPECT_NE(F, nullptr) << "cannot open " << MESH_API_HEADER;
  if (F == nullptr)
    return Names;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  fclose(F);

  size_t Pos = 0;
  while ((Pos = Text.find('"', Pos)) != std::string::npos) {
    const size_t End = Text.find('"', Pos + 1);
    if (End == std::string::npos)
      break;
    const std::string Token = Text.substr(Pos + 1, End - Pos - 1);
    const bool Dotted =
        Token.find('.') != std::string::npos &&
        std::all_of(Token.begin(), Token.end(), [](unsigned char C) {
          return std::islower(C) || std::isdigit(C) || C == '_' || C == '.';
        });
    if (Dotted)
      Names.insert(Token);
    Pos = End + 1;
  }
  return Names;
}

TEST(MallctlLeaves, EnumerationIsNonEmptyAndSorted) {
  Runtime R(testOptions());
  const std::vector<std::string> Leaves = enumerateLeaves(R);
  ASSERT_FALSE(Leaves.empty());
  const std::set<std::string> Unique(Leaves.begin(), Leaves.end());
  EXPECT_EQ(Unique.size(), Leaves.size()) << "duplicate leaf registered";
  // Spot anchors across the families.
  EXPECT_TRUE(Unique.count("mesh.enabled"));
  EXPECT_TRUE(Unique.count("stats.committed_bytes"));
  EXPECT_TRUE(Unique.count("faults.reset"));
  EXPECT_TRUE(Unique.count("telemetry.hist.mesh_pass"));
  EXPECT_TRUE(Unique.count("version.leaves"));
}

TEST(MallctlLeaves, SizeQueryContract) {
  Runtime R(testOptions());
  size_t Needed = 0;
  ASSERT_EQ(R.mallctl("version.leaves", nullptr, &Needed, nullptr, 0), 0);
  // A too-small buffer is rejected, not truncated.
  std::string Buf(Needed - 1, '\0');
  size_t Len = Buf.size();
  EXPECT_EQ(R.mallctl("version.leaves", Buf.data(), &Len, nullptr, 0),
            EINVAL);
  EXPECT_EQ(R.mallctl("version.leaves", nullptr, nullptr, nullptr, 0),
            EINVAL);
}

TEST(MallctlLeaves, EveryRegisteredLeafResolves) {
  Runtime R(testOptions());
  for (const std::string &Leaf : enumerateLeaves(R)) {
    // A plain u64 read attempt: pure-write leaves may answer EINVAL
    // (wrong shape), but only an unregistered name answers ENOENT.
    uint64_t Value = 0;
    size_t Len = sizeof(Value);
    const int Rc = R.mallctl(Leaf.c_str(), &Value, &Len, nullptr, 0);
    EXPECT_NE(Rc, ENOENT) << Leaf << " is enumerated but unresolvable";
  }
}

TEST(MallctlLeaves, HeaderDocsMatchRegistry) {
  Runtime R(testOptions());
  const std::vector<std::string> Registered = enumerateLeaves(R);
  const std::set<std::string> RegisteredSet(Registered.begin(),
                                            Registered.end());
  const std::set<std::string> Documented = documentedLeaves();
  ASSERT_FALSE(Documented.empty());
  for (const std::string &Name : Documented)
    EXPECT_TRUE(RegisteredSet.count(Name))
        << "mesh.h documents '" << Name
        << "' but Runtime::mallctl does not register it";
  for (const std::string &Name : RegisteredSet)
    EXPECT_TRUE(Documented.count(Name))
        << "Runtime::mallctl registers '" << Name
        << "' but mesh.h does not document it";
}

TEST(MallctlLeaves, FaultsResetZeroesTheFamily) {
  sys::clearFaults();
  Runtime R(testOptions());
  auto Read = [&](const char *Name) {
    uint64_t Value = 0;
    size_t Len = sizeof(Value);
    EXPECT_EQ(R.mallctl(Name, &Value, &Len, nullptr, 0), 0) << Name;
    return Value;
  };
  // A total commit-refusal storm: every large malloc degrades to a
  // clean nullptr and ticks injected + oom_returns.
  ASSERT_TRUE(sys::configureFaults("commit:ENOMEM:every=1"));
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(R.malloc(size_t{1} << 20), nullptr);
  sys::clearFaults();
  EXPECT_GT(Read("faults.injected"), 0u);
  EXPECT_GT(Read("faults.oom_returns"), 0u);

  ASSERT_EQ(R.mallctl("faults.reset", nullptr, nullptr, nullptr, 0), 0);
  EXPECT_EQ(Read("faults.injected"), 0u);
  EXPECT_EQ(Read("faults.retried"), 0u);
  EXPECT_EQ(Read("faults.oom_returns"), 0u);
  EXPECT_EQ(Read("faults.mesh_rollbacks"), 0u);
  EXPECT_EQ(Read("faults.punch_fallbacks"), 0u);
  // And the heap still serves requests after the reset.
  void *P = R.malloc(size_t{1} << 20);
  EXPECT_NE(P, nullptr);
  R.free(P);
}

TEST(MallctlLeaves, TelemetryResetAndRoundTrip) {
  Runtime R(testOptions());
  auto Read = [&](const char *Name) {
    uint64_t Value = 0;
    size_t Len = sizeof(Value);
    EXPECT_EQ(R.mallctl(Name, &Value, &Len, nullptr, 0), 0) << Name;
    return Value;
  };
  bool On = true;
  ASSERT_EQ(R.mallctl("telemetry.enabled", nullptr, nullptr, &On,
                      sizeof(On)),
            0);
  EXPECT_EQ(Read("telemetry.enabled"), 1u);
  R.meshNow(); // records at least the kMeshPass event + histogram
  EXPECT_GT(Read("telemetry.events"), 0u);
  uint64_t Buckets[telemetry::kHistBuckets] = {};
  size_t Len = sizeof(Buckets);
  ASSERT_EQ(R.mallctl("telemetry.hist.mesh_pass", Buckets, &Len, nullptr,
                      0),
            0);
  EXPECT_EQ(Len, sizeof(Buckets));
  uint64_t Samples = 0;
  for (uint64_t B : Buckets)
    Samples += B;
  EXPECT_GT(Samples, 0u);

  ASSERT_EQ(R.mallctl("telemetry.reset", nullptr, nullptr, nullptr, 0), 0);
  EXPECT_EQ(Read("telemetry.events"), 0u);
  EXPECT_EQ(Read("telemetry.overflow_events"), 0u);
  Len = sizeof(Buckets);
  ASSERT_EQ(R.mallctl("telemetry.hist.mesh_pass", Buckets, &Len, nullptr,
                      0),
            0);
  for (uint64_t B : Buckets)
    EXPECT_EQ(B, 0u);

  // Unknown histogram names are ENOENT, not a crash or silent zero.
  Len = sizeof(Buckets);
  EXPECT_EQ(R.mallctl("telemetry.hist.bogus", Buckets, &Len, nullptr, 0),
            ENOENT);
  On = false;
  ASSERT_EQ(R.mallctl("telemetry.enabled", nullptr, nullptr, &On,
                      sizeof(On)),
            0);
  EXPECT_EQ(Read("telemetry.enabled"), 0u);
}

} // namespace
} // namespace mesh
