//===- MeshEndToEndTest.cpp - Whole-allocator meshing tests ----------------===//
///
/// Drives the full malloc/free surface and verifies the paper's core
/// promises end to end: compaction happens, virtual addresses and
/// object contents survive it, and physical memory really returns to
/// the OS (checked against kernel file-block counts).
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace mesh {
namespace {

/// Allocates \p Total objects of \p Size bytes, then frees all but
/// every \p KeepEvery-th. This produces many sparse spans — the
/// fragmentation regime where meshing shines.
std::vector<char *> fragmentedLiveSet(Runtime &R, size_t Size, int Total,
                                      int KeepEvery) {
  std::vector<char *> All;
  All.reserve(Total);
  for (int I = 0; I < Total; ++I) {
    auto *P = static_cast<char *>(R.malloc(Size));
    snprintf(P, Size, "obj-%d", I);
    All.push_back(P);
  }
  std::vector<char *> Kept;
  for (int I = 0; I < Total; ++I) {
    if (I % KeepEvery == 0)
      Kept.push_back(All[I]);
    else
      R.free(All[I]);
  }
  return Kept;
}

TEST(MeshEndToEndTest, MeshingReclaimsFragmentedHeap) {
  Runtime R(testOptions());
  // 64 spans of 256-object 16-byte slots; keep 1 in 8 objects.
  auto Kept = fragmentedLiveSet(R, 16, 64 * 256, 8);
  // Detach the allocating thread's spans so they become candidates.
  R.localHeap().releaseAll();

  const size_t Before = R.committedBytes();
  const size_t Freed = R.meshNow();
  const size_t After = R.committedBytes();
  EXPECT_GT(Freed, 0u);
  EXPECT_EQ(Before - Freed, After);
  // A single SplitMesher pass matches ~(1-e^-2tq)/4 of spans; the
  // deployed system meshes periodically, so iterate toward the
  // fixpoint. At 1/8 occupancy (32 random objects in 256 slots) the
  // pairwise mesh probability is only ~1%, so merged spans rarely mesh
  // again: expect a solid but not dramatic reduction.
  for (int Pass = 0; Pass < 16 && R.meshNow() > 0; ++Pass)
    ;
  // Lemma 5.3's one-pass guarantee at k = tq ~ 0.6 is ~11 of 64 spans;
  // require a conservative 6 pages so seed variation cannot flake.
  EXPECT_LE(R.committedBytes(), Before - 6 * kPageSize)
      << "iterated meshing should keep reclaiming a sparse heap";

  // Every surviving object still reads its original contents at its
  // original address (compaction without relocation).
  int Idx = 0;
  for (char *P : Kept) {
    char Want[16];
    snprintf(Want, sizeof(Want), "obj-%d", Idx * 8);
    ASSERT_STREQ(P, Want) << "object " << Idx;
    ++Idx;
  }
  // The freed memory is really gone at the OS level too.
  for (char *P : Kept)
    R.free(P);
}

TEST(MeshEndToEndTest, VerySparseHeapReclaimsMostMemory) {
  // At 1-in-32 survival (8 random objects per 256-slot span) the
  // pairwise mesh probability is ~78%, and merged spans keep meshing:
  // iterated passes should fold the heap several times over.
  Runtime R(testOptions(11));
  auto Kept = fragmentedLiveSet(R, 16, 64 * 256, 32);
  R.localHeap().releaseAll();
  const size_t Before = R.committedBytes();
  for (int Pass = 0; Pass < 16 && R.meshNow() > 0; ++Pass)
    ;
  EXPECT_LT(R.committedBytes(), Before / 3)
      << "a very sparse heap should fold to a fraction of its size";
  int Idx = 0;
  for (char *P : Kept) {
    char Want[16];
    snprintf(Want, sizeof(Want), "obj-%d", Idx * 32);
    ASSERT_STREQ(P, Want);
    ++Idx;
  }
  for (char *P : Kept)
    R.free(P);
}

TEST(MeshEndToEndTest, ObjectsWritableAfterMeshing) {
  Runtime R(testOptions());
  auto Kept = fragmentedLiveSet(R, 64, 8 * 64, 4);
  R.localHeap().releaseAll();
  R.meshNow();
  // Post-mesh writes through original pointers must be visible.
  for (size_t I = 0; I < Kept.size(); ++I)
    snprintf(Kept[I], 64, "rewritten-%zu", I);
  for (size_t I = 0; I < Kept.size(); ++I) {
    char Want[64];
    snprintf(Want, sizeof(Want), "rewritten-%zu", I);
    ASSERT_STREQ(Kept[I], Want);
  }
  for (char *P : Kept)
    R.free(P);
}

TEST(MeshEndToEndTest, FreeAfterMeshingViaOldPointers) {
  Runtime R(testOptions());
  auto Kept = fragmentedLiveSet(R, 32, 16 * 128, 2);
  R.localHeap().releaseAll();
  R.meshNow();
  // Freeing through pre-mesh pointers must find the merged MiniHeaps.
  for (char *P : Kept)
    R.free(P);
  R.localHeap().releaseAll();
  EXPECT_EQ(R.committedBytes(), 0u)
      << "all physical memory returns once every object dies";
}

TEST(MeshEndToEndTest, KernelAgreesPhysicalMemoryWasFreed) {
  Runtime R(testOptions());
  auto Kept = fragmentedLiveSet(R, 16, 32 * 256, 16);
  R.localHeap().releaseAll();
  const size_t KernelBefore = R.global().committedBytes();
  R.meshNow();
  // Our accounting and the kernel's file-block count move together.
  // (testOptions sets MaxDirtyBytes=0 so no dirty pages linger.)
  EXPECT_LT(R.global().committedBytes(), KernelBefore);
  for (char *P : Kept)
    R.free(P);
}

TEST(MeshEndToEndTest, RepeatedMeshCyclesStayCorrect) {
  Runtime R(testOptions(7));
  Rng Driver(99);
  std::vector<std::pair<char *, uint32_t>> Live; // ptr, stamp
  for (int Cycle = 0; Cycle < 10; ++Cycle) {
    // Allocate a few thousand stamped objects.
    for (int I = 0; I < 4000; ++I) {
      auto *P = static_cast<char *>(R.malloc(48));
      const uint32_t Stamp = Driver.next() & 0xFFFFFFFF;
      memcpy(P, &Stamp, sizeof(Stamp));
      Live.push_back({P, Stamp});
    }
    // Free a random 70%.
    for (size_t I = 0; I < Live.size();) {
      if (Driver.withProbability(0.7)) {
        R.free(Live[I].first);
        Live[I] = Live.back();
        Live.pop_back();
      } else {
        ++I;
      }
    }
    R.localHeap().releaseAll();
    R.meshNow();
    // Validate every survivor after each mesh pass.
    for (auto &[P, Stamp] : Live) {
      uint32_t Got;
      memcpy(&Got, P, sizeof(Got));
      ASSERT_EQ(Got, Stamp) << "corruption after mesh cycle " << Cycle;
    }
  }
  for (auto &[P, Stamp] : Live)
    R.free(P);
}

TEST(MeshEndToEndTest, MeshingDisabledReclaimsNothing) {
  MeshOptions Opts = testOptions();
  Opts.MeshingEnabled = false;
  Runtime R(Opts);
  auto Kept = fragmentedLiveSet(R, 16, 32 * 256, 8);
  R.localHeap().releaseAll();
  EXPECT_EQ(R.meshNow(), 0u) << "meshNow on a disabled heap is a no-op";
  for (char *P : Kept)
    R.free(P);
}

TEST(MeshEndToEndTest, MultiGenerationMeshing) {
  // Mesh A+B, then mesh the result with C: exercises multi-span
  // MiniHeaps as both keeper and victim.
  Runtime R(testOptions());
  auto Kept = fragmentedLiveSet(R, 16, 96 * 256, 24);
  R.localHeap().releaseAll();
  size_t FirstPass = R.meshNow();
  EXPECT_GT(FirstPass, 0u);
  // Second pass finds pairs among already-meshed spans.
  R.meshNow();
  int Idx = 0;
  for (char *P : Kept) {
    char Want[16];
    snprintf(Want, sizeof(Want), "obj-%d", Idx * 24);
    ASSERT_STREQ(P, Want);
    ++Idx;
  }
  for (char *P : Kept)
    R.free(P);
}

} // namespace
} // namespace mesh
