//===- MeshQuotaTest.cpp - Pause-bounding mesh quota tests -----------------===//

#include "core/Runtime.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

#include <vector>

namespace mesh {
namespace {

std::vector<void *> fragment(Runtime &R, int Spans) {
  std::vector<void *> Kept;
  std::vector<void *> Toss;
  for (int I = 0; I < Spans * 256; ++I) {
    void *P = R.malloc(16);
    (I % 32 == 0 ? Kept : Toss).push_back(P);
  }
  for (void *P : Toss)
    R.free(P);
  R.localHeap().releaseAll();
  return Kept;
}

TEST(MeshQuotaTest, QuotaBoundsPagesFreedPerPass) {
  MeshOptions Opts = testOptions();
  Opts.MaxMeshesPerPass = 4;
  Runtime R(Opts);
  auto Kept = fragment(R, 64);
  const size_t Freed = R.meshNow();
  EXPECT_LE(Freed, 4 * kPageSize) << "a pass may mesh at most 4 pairs";
  EXPECT_GT(Freed, 0u);
  EXPECT_EQ(R.global().stats().MeshCount.load(), 4u);
  for (void *P : Kept)
    R.free(P);
}

TEST(MeshQuotaTest, SubsequentPassesFinishTheJob) {
  MeshOptions Opts = testOptions();
  Opts.MaxMeshesPerPass = 8;
  Runtime R(Opts);
  auto Kept = fragment(R, 64);
  const size_t Before = R.committedBytes();

  // Unlimited reference heap with the same image.
  MeshOptions RefOpts = testOptions();
  RefOpts.MaxMeshesPerPass = 0;
  Runtime Ref(RefOpts);
  auto RefKept = fragment(Ref, 64);
  for (int Pass = 0; Pass < 64 && Ref.meshNow() > 0; ++Pass)
    ;

  for (int Pass = 0; Pass < 64 && R.meshNow() > 0; ++Pass)
    ;
  EXPECT_LT(R.committedBytes(), Before);
  // Quota only spreads the work; the fixpoint is as good (within one
  // quota of slack for pass-boundary effects).
  EXPECT_LE(R.committedBytes(),
            Ref.committedBytes() + 8 * kPageSize);
  for (void *P : Kept)
    R.free(P);
  for (void *P : RefKept)
    Ref.free(P);
}

TEST(MeshQuotaTest, ZeroMeansUnlimited) {
  MeshOptions Opts = testOptions();
  Opts.MaxMeshesPerPass = 0;
  Runtime R(Opts);
  auto Kept = fragment(R, 64);
  const size_t Freed = R.meshNow();
  EXPECT_GT(Freed, 8 * kPageSize)
      << "an unlimited pass meshes everything it finds";
  for (void *P : Kept)
    R.free(P);
}

TEST(MeshQuotaTest, MallctlRoundTrip) {
  Runtime R(testOptions());
  uint64_t Value = 0;
  size_t Len = sizeof(Value);
  ASSERT_EQ(R.mallctl("mesh.max_per_pass", &Value, &Len, nullptr, 0), 0);
  EXPECT_EQ(Value, 256u) << "default quota";
  uint64_t NewMax = 17;
  ASSERT_EQ(R.mallctl("mesh.max_per_pass", nullptr, nullptr, &NewMax,
                      sizeof(NewMax)),
            0);
  Len = sizeof(Value);
  ASSERT_EQ(R.mallctl("mesh.max_per_pass", &Value, &Len, nullptr, 0), 0);
  EXPECT_EQ(Value, 17u);
}

TEST(MeshQuotaTest, NewMallctlStats) {
  Runtime R(testOptions());
  auto Kept = fragment(R, 16);
  R.meshNow();
  uint64_t Copied = 0, Passes = 0, Dirty = 0;
  size_t Len = sizeof(uint64_t);
  ASSERT_EQ(R.mallctl("stats.bytes_copied", &Copied, &Len, nullptr, 0), 0);
  EXPECT_GT(Copied, 0u);
  Len = sizeof(uint64_t);
  ASSERT_EQ(R.mallctl("stats.mesh_passes", &Passes, &Len, nullptr, 0), 0);
  EXPECT_EQ(Passes, 1u);
  Len = sizeof(uint64_t);
  ASSERT_EQ(R.mallctl("stats.dirty_bytes", &Dirty, &Len, nullptr, 0), 0);
  uint64_t Flushed = 0;
  Len = sizeof(uint64_t);
  ASSERT_EQ(R.mallctl("heap.flush_dirty", &Flushed, &Len, nullptr, 0), 0);
  for (void *P : Kept)
    R.free(P);
}

} // namespace
} // namespace mesh
