//===- MeshableArenaTest.cpp - Span manager tests -------------------------===//

#include "core/MeshableArena.h"

#include "core/MiniHeap.h"

#include <gtest/gtest.h>

#include <cstring>

namespace mesh {
namespace {

constexpr size_t kArenaBytes = 256 * 1024 * 1024;
constexpr size_t kSmallDirtyBudget = 16 * kPageSize;

TEST(MeshableArenaTest, FreshSpansComeFromBumpFrontier) {
  MeshableArena A(kArenaBytes, kMaxDirtyBytes);
  bool Clean = false;
  const uint32_t S0 = A.allocLargeSpan(1, &Clean);
  EXPECT_TRUE(Clean);
  const uint32_t S1 = A.allocLargeSpan(1, &Clean);
  EXPECT_NE(S0, S1);
  EXPECT_EQ(A.committedPages(), 2u);
  EXPECT_EQ(A.frontierPages(), 2u);
}

TEST(MeshableArenaTest, DirtySpanReusedFirst) {
  MeshableArena A(kArenaBytes, kMaxDirtyBytes);
  bool Clean = false;
  const uint32_t S0 = A.allocLargeSpan(2, &Clean);
  memset(A.arenaBase() + pagesToBytes(S0), 0x77, pagesToBytes(2));
  A.freeDirtyLargeSpan(S0, 2);
  EXPECT_EQ(A.dirtyPages(), 2u);
  const uint32_t S1 = A.allocLargeSpan(2, &Clean);
  EXPECT_EQ(S1, S0) << "dirty spans are preferred for reuse";
  EXPECT_FALSE(Clean) << "reused dirty spans keep stale bytes";
  EXPECT_EQ(A.dirtyPages(), 0u);
  // Stale contents really are there (malloc semantics, not calloc).
  EXPECT_EQ(A.arenaBase()[pagesToBytes(S1)], 0x77);
}

TEST(MeshableArenaTest, DirtyBudgetTriggersFlush) {
  MeshableArena A(kArenaBytes, kSmallDirtyBudget);
  bool Clean = false;
  uint32_t Spans[20];
  for (auto &S : Spans) {
    S = A.allocLargeSpan(1, &Clean);
    memset(A.arenaBase() + pagesToBytes(S), 1, kPageSize);
  }
  ASSERT_EQ(A.committedPages(), 20u);
  // Freeing up to the budget keeps pages dirty...
  for (int I = 0; I < 16; ++I)
    A.freeDirtyLargeSpan(Spans[I], 1);
  EXPECT_EQ(A.dirtyPages(), 16u);
  EXPECT_EQ(A.committedPages(), 20u);
  // ...one more crosses it and everything dirty is punched.
  A.freeDirtyLargeSpan(Spans[16], 1);
  EXPECT_EQ(A.dirtyPages(), 0u);
  EXPECT_EQ(A.committedPages(), 3u);
  EXPECT_EQ(A.vm().kernelFilePages(), 3u) << "kernel agrees after flush";
}

TEST(MeshableArenaTest, ReleasedSpanIsCleanOnReuse) {
  MeshableArena A(kArenaBytes, kMaxDirtyBytes);
  bool Clean = false;
  const uint32_t S = A.allocLargeSpan(4, &Clean);
  memset(A.arenaBase() + pagesToBytes(S), 0x42, pagesToBytes(4));
  A.freeReleasedLargeSpan(S, 4);
  EXPECT_EQ(A.committedPages(), 0u);
  const uint32_t S2 = A.allocLargeSpan(4, &Clean);
  EXPECT_EQ(S2, S);
  EXPECT_TRUE(Clean);
  for (size_t I = 0; I < pagesToBytes(4); ++I)
    ASSERT_EQ(A.arenaBase()[pagesToBytes(S2) + I], 0);
}

TEST(MeshableArenaTest, OddLengthSpansExactFitReuse) {
  MeshableArena A(kArenaBytes, kMaxDirtyBytes);
  bool Clean = false;
  const uint32_t S = A.allocLargeSpan(5, &Clean); // odd length: large object
  A.freeReleasedLargeSpan(S, 5);
  const uint32_t S2 = A.allocLargeSpan(5, &Clean);
  EXPECT_EQ(S2, S);
  const uint32_t S3 = A.allocLargeSpan(3, &Clean);
  EXPECT_NE(S3, S) << "no splitting of recycled odd spans";
}

TEST(MeshableArenaTest, PageTableOwnership) {
  MeshableArena A(kArenaBytes, kMaxDirtyBytes);
  bool Clean = false;
  const uint32_t S = A.allocLargeSpan(2, &Clean);
  MiniHeap MH(S, 2, 1024, 8, 19, true);
  A.setOwner(S, 2, &MH);
  char *P = A.arenaBase() + pagesToBytes(S);
  EXPECT_EQ(A.ownerOf(P), &MH);
  EXPECT_EQ(A.ownerOf(P + kPageSize + 5), &MH);
  EXPECT_EQ(A.ownerOf(P + 2 * kPageSize), nullptr);
  int Stack;
  EXPECT_EQ(A.ownerOf(&Stack), nullptr) << "non-arena pointers have no owner";
  A.setOwner(S, 2, nullptr);
  EXPECT_EQ(A.ownerOf(P), nullptr);
}

TEST(MeshableArenaTest, AliasSpanRecycling) {
  MeshableArena A(kArenaBytes, kMaxDirtyBytes);
  bool Clean = false;
  const uint32_t Keeper = A.allocLargeSpan(1, &Clean);
  const uint32_t Victim = A.allocLargeSpan(1, &Clean);
  char *KeeperPtr = A.arenaBase() + pagesToBytes(Keeper);
  char *VictimPtr = A.arenaBase() + pagesToBytes(Victim);
  strcpy(KeeperPtr, "keeper");
  strcpy(VictimPtr, "victim");
  // Mesh: remap victim onto keeper, release victim's physical pages.
  ASSERT_TRUE(A.vm().alias(Victim, Keeper, 1));
  ASSERT_TRUE(A.vm().release(Victim, 1));
  EXPECT_STREQ(VictimPtr, "keeper");
  EXPECT_EQ(A.committedPages(), 1u);
  // Later the merged MiniHeap dies; the alias span is recycled clean.
  // The shard index mirrors the owning size class; any shard gives the
  // same recycling behavior, so class 0 stands in here.
  A.freeAliasSpan(/*Class=*/0, Victim, 1);
  const uint32_t Fresh = A.allocLargeSpan(1, &Clean);
  EXPECT_EQ(Fresh, Victim);
  EXPECT_TRUE(Clean);
  EXPECT_EQ(VictimPtr[0], 0) << "recycled alias span reads zero";
  strcpy(VictimPtr, "fresh");
  EXPECT_STREQ(KeeperPtr, "keeper") << "identity restored: no aliasing";
}

TEST(MeshableArenaTest, CommittedMatchesKernelAfterChurn) {
  MeshableArena A(kArenaBytes, kSmallDirtyBudget);
  bool Clean = false;
  uint32_t Spans[64];
  for (auto &S : Spans) {
    S = A.allocLargeSpan(1, &Clean);
    A.arenaBase()[pagesToBytes(S)] = 1; // touch
  }
  for (int I = 0; I < 64; I += 2)
    A.freeDirtyLargeSpan(Spans[I], 1);
  A.flushDirty();
  EXPECT_EQ(A.committedPages(), 32u);
  EXPECT_EQ(A.vm().kernelFilePages(), 32u);
}

} // namespace
} // namespace mesh
