//===- MesherTest.cpp - SplitMesher pair-finding tests ---------------------===//

#include "core/Mesher.h"

#include "core/MiniHeap.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

namespace mesh {
namespace {

// Builds a detached MiniHeap with the given allocated offsets.
std::unique_ptr<MiniHeap> makeSpan(uint32_t PageOff,
                                   std::initializer_list<uint32_t> Bits,
                                   uint32_t ObjCount = 16) {
  auto MH = std::make_unique<MiniHeap>(PageOff, 1, 256, ObjCount, 11, true);
  for (uint32_t B : Bits)
    MH->bitmap().tryToSet(B);
  return MH;
}

TEST(MesherTest, CanMeshDisjointPair) {
  auto A = makeSpan(0, {0, 1});
  auto B = makeSpan(1, {2, 3});
  EXPECT_TRUE(canMeshPair(A.get(), B.get()));
}

TEST(MesherTest, CannotMeshOverlappingPair) {
  auto A = makeSpan(0, {0, 1});
  auto B = makeSpan(1, {1, 2});
  EXPECT_FALSE(canMeshPair(A.get(), B.get()));
}

TEST(MesherTest, CannotMeshWithSelfOrNull) {
  auto A = makeSpan(0, {0});
  EXPECT_FALSE(canMeshPair(A.get(), A.get()));
  EXPECT_FALSE(canMeshPair(A.get(), nullptr));
  EXPECT_FALSE(canMeshPair(nullptr, A.get()));
}

TEST(MesherTest, CannotMeshAcrossSizeClasses) {
  auto A = makeSpan(0, {0});
  MiniHeap B(1, 1, 128, 32, 7, true);
  B.bitmap().tryToSet(5);
  EXPECT_FALSE(canMeshPair(A.get(), &B));
}

TEST(MesherTest, CannotMeshAttachedSpan) {
  auto A = makeSpan(0, {0});
  auto B = makeSpan(1, {1});
  B->setAttached(true);
  EXPECT_FALSE(canMeshPair(A.get(), B.get()));
}

TEST(MesherTest, CannotMeshEmptyOrFullSpans) {
  auto Empty = makeSpan(0, {});
  auto Partial = makeSpan(1, {1});
  EXPECT_FALSE(canMeshPair(Empty.get(), Partial.get()))
      << "empty spans are freed directly, not meshed";
  auto Full = makeSpan(2, {}, 4);
  for (uint32_t I = 0; I < 4; ++I)
    Full->bitmap().tryToSet(I);
  auto Partial2 = makeSpan(3, {}, 4);
  Partial2->bitmap().tryToSet(0);
  EXPECT_FALSE(canMeshPair(Full.get(), Partial2.get()));
}

TEST(MesherTest, SplitMesherFindsPerfectMatchingOnComplementPairs) {
  // 32 spans in 16 complementary couples: optimal matching meshes all.
  std::vector<std::unique_ptr<MiniHeap>> Owners;
  InternalVector<MiniHeap *> Candidates;
  for (uint32_t I = 0; I < 16; ++I) {
    auto A = makeSpan(2 * I, {0, 1, 2, 3, 4, 5, 6, 7});
    auto B = makeSpan(2 * I + 1, {8, 9, 10, 11, 12, 13, 14, 15});
    Candidates.push_back(A.get());
    Candidates.push_back(B.get());
    Owners.push_back(std::move(A));
    Owners.push_back(std::move(B));
  }
  Rng R(1);
  InternalVector<MeshPair> Pairs;
  uint64_t Probes = 0;
  splitMesher(Candidates, /*T=*/64, R, Pairs, &Probes);
  EXPECT_EQ(Pairs.size(), 16u) << "every span can be matched";
  EXPECT_GT(Probes, 0u);
  // Pairs must be disjoint and genuinely meshable.
  std::set<MiniHeap *> Used;
  for (auto &[A, B] : Pairs) {
    EXPECT_TRUE(A->bitmap().isMeshableWith(B->bitmap()));
    EXPECT_TRUE(Used.insert(A).second);
    EXPECT_TRUE(Used.insert(B).second);
  }
}

TEST(MesherTest, SplitMesherFindsNothingWhenNothingMeshes) {
  // Every span occupies offset 0: the adversarial layout from paper
  // Section 2.2. No pair can mesh.
  std::vector<std::unique_ptr<MiniHeap>> Owners;
  InternalVector<MiniHeap *> Candidates;
  for (uint32_t I = 0; I < 32; ++I) {
    Owners.push_back(makeSpan(I, {0}));
    Candidates.push_back(Owners.back().get());
  }
  Rng R(2);
  InternalVector<MeshPair> Pairs;
  splitMesher(Candidates, 64, R, Pairs);
  EXPECT_TRUE(Pairs.empty());
}

TEST(MesherTest, ProbeBudgetBoundsWork) {
  // With t probes, SplitMesher performs at most t * n/2 meshability
  // tests (Section 5.3: "the algorithm checks nk/2q pairs").
  std::vector<std::unique_ptr<MiniHeap>> Owners;
  InternalVector<MiniHeap *> Candidates;
  for (uint32_t I = 0; I < 64; ++I) {
    Owners.push_back(makeSpan(I, {0})); // unmeshable: max probing
    Candidates.push_back(Owners.back().get());
  }
  Rng R(3);
  InternalVector<MeshPair> Pairs;
  uint64_t Probes = 0;
  const uint32_t T = 7;
  splitMesher(Candidates, T, R, Pairs, &Probes);
  EXPECT_LE(Probes, uint64_t{T} * 32);
  EXPECT_EQ(Probes, uint64_t{T} * 32) << "unmeshable input probes fully";
}

TEST(MesherTest, HandlesTinyCandidateLists) {
  Rng R(4);
  InternalVector<MiniHeap *> None;
  InternalVector<MeshPair> Pairs;
  splitMesher(None, 64, R, Pairs);
  EXPECT_TRUE(Pairs.empty());

  auto A = makeSpan(0, {1});
  InternalVector<MiniHeap *> One;
  One.push_back(A.get());
  splitMesher(One, 64, R, Pairs);
  EXPECT_TRUE(Pairs.empty());

  auto B = makeSpan(1, {2});
  InternalVector<MiniHeap *> Two;
  Two.push_back(A.get());
  Two.push_back(B.get());
  splitMesher(Two, 64, R, Pairs);
  EXPECT_EQ(Pairs.size(), 1u);
}

TEST(MesherTest, RespectsMaxMeshesBudget) {
  // A span already holding kMaxMeshes-1 extra virtual spans can absorb
  // exactly one more single-span partner; one holding kMaxMeshes
  // cannot.
  auto A = makeSpan(0, {1});
  for (uint32_t I = 1; I + 1 < kMaxMeshes; ++I) {
    MiniHeap Extra(100 + I, 1, 256, 16, 11, true);
    A->takeSpansFrom(Extra);
  }
  auto B = makeSpan(50, {2});
  EXPECT_TRUE(canMeshPair(A.get(), B.get()));
  MiniHeap Extra(99, 1, 256, 16, 11, true);
  A->takeSpansFrom(Extra);
  EXPECT_FALSE(canMeshPair(A.get(), B.get()));
}

} // namespace
} // namespace mesh
