//===- MiniHeapTest.cpp - Span metadata tests ----------------------------===//

#include "core/MiniHeap.h"

#include "core/SizeClass.h"

#include <gtest/gtest.h>

namespace mesh {
namespace {

// MiniHeap address math only needs a base pointer; no real arena
// required for these tests.
char *fakeBase() { return reinterpret_cast<char *>(0x100000000ULL); }

TEST(MiniHeapTest, FreshSpanState) {
  MiniHeap MH(/*SpanPageOff=*/4, /*SpanPages=*/1, /*ObjSize=*/128,
              /*ObjCount=*/32, /*SizeClass=*/7, /*Meshable=*/true);
  EXPECT_EQ(MH.spans().size(), 1u);
  EXPECT_EQ(MH.physicalSpanOffset(), 4u);
  EXPECT_TRUE(MH.isEmpty());
  EXPECT_FALSE(MH.isFull());
  EXPECT_FALSE(MH.isAttached());
  EXPECT_FALSE(MH.isLargeAlloc());
  EXPECT_EQ(MH.occupancy(), 0.0);
  EXPECT_FALSE(MH.isMeshingCandidate()) << "empty spans are not candidates";
}

TEST(MiniHeapTest, LargeAllocSingleton) {
  MiniHeap MH(/*SpanPageOff=*/10, /*SpanPages=*/5, /*RequestedBytes=*/17000);
  EXPECT_TRUE(MH.isLargeAlloc());
  EXPECT_EQ(MH.objectCount(), 1u);
  EXPECT_EQ(MH.objectSize(), 5 * kPageSize);
  EXPECT_TRUE(MH.isFull());
  EXPECT_FALSE(MH.isMeshingCandidate());
}

TEST(MiniHeapTest, OccupancyTracksBitmap) {
  MiniHeap MH(0, 1, 256, 16, 11, true);
  for (uint32_t I = 0; I < 8; ++I)
    MH.bitmap().tryToSet(I);
  EXPECT_EQ(MH.inUseCount(), 8u);
  EXPECT_DOUBLE_EQ(MH.occupancy(), 0.5);
  EXPECT_TRUE(MH.isMeshingCandidate());
}

TEST(MiniHeapTest, AttachedSpansAreNotCandidates) {
  MiniHeap MH(0, 1, 256, 16, 11, true);
  MH.bitmap().tryToSet(0);
  EXPECT_TRUE(MH.isMeshingCandidate());
  MH.setAttached(true);
  EXPECT_FALSE(MH.isMeshingCandidate());
}

TEST(MiniHeapTest, NonMeshableClassNeverCandidate) {
  MiniHeap MH(0, 8, 4096, 8, 21, /*Meshable=*/false);
  MH.bitmap().tryToSet(2);
  EXPECT_FALSE(MH.isMeshingCandidate());
}

TEST(MiniHeapTest, PointerMath) {
  char *Base = fakeBase();
  MiniHeap MH(/*SpanPageOff=*/2, /*SpanPages=*/1, /*ObjSize=*/64,
              /*ObjCount=*/64, 3, true);
  char *SpanStart = Base + 2 * kPageSize;
  EXPECT_TRUE(MH.contains(SpanStart, Base));
  EXPECT_TRUE(MH.contains(SpanStart + kPageSize - 1, Base));
  EXPECT_FALSE(MH.contains(SpanStart + kPageSize, Base));
  EXPECT_FALSE(MH.contains(SpanStart - 1, Base));

  EXPECT_EQ(MH.offsetOf(SpanStart, Base), 0u);
  EXPECT_EQ(MH.offsetOf(SpanStart + 64, Base), 1u);
  EXPECT_EQ(MH.offsetOf(SpanStart + 65, Base), 1u) << "interior resolves";
  EXPECT_TRUE(MH.isAligned(SpanStart + 128, Base));
  EXPECT_FALSE(MH.isAligned(SpanStart + 129, Base));
  EXPECT_EQ(MH.ptrForOffset(3, Base), SpanStart + 192);
}

TEST(MiniHeapTest, OffsetOfAlignedMatchesDivisionForEveryClass) {
  // The free hot path computes object offsets with a shift for
  // power-of-two classes and a division otherwise; both must agree
  // with the reference math for every byte delta in the span.
  for (int Class = 0; Class < kNumSizeClasses; ++Class) {
    const SizeClassInfo &Info = sizeClassInfo(Class);
    MiniHeap MH(/*SpanPageOff=*/0, Info.SpanPages, Info.ObjectSize,
                Info.ObjectCount, static_cast<int8_t>(Class),
                Info.Meshable);
    char *Base = fakeBase();
    const size_t Coverage =
        static_cast<size_t>(Info.ObjectSize) * Info.ObjectCount;
    for (size_t Delta = 0; Delta < Coverage; Delta += 8) {
      uint32_t Off = ~0u;
      const bool Aligned = MH.offsetOfAligned(Base + Delta, Base, &Off);
      ASSERT_EQ(Aligned, Delta % Info.ObjectSize == 0)
          << "class " << Class << " delta " << Delta;
      if (Aligned) {
        ASSERT_EQ(Off, Delta / Info.ObjectSize)
            << "class " << Class << " delta " << Delta;
      }
    }
  }
}

TEST(MiniHeapTest, TakeSpansFromMergesLists) {
  char *Base = fakeBase();
  MiniHeap Keeper(0, 1, 64, 64, 3, true);
  MiniHeap Victim(5, 1, 64, 64, 3, true);
  Keeper.takeSpansFrom(Victim);
  ASSERT_EQ(Keeper.spans().size(), 2u);
  EXPECT_EQ(Keeper.spans()[1], 5u);
  EXPECT_EQ(Victim.spans().size(), 0u);
  // Pointers in the absorbed virtual span now resolve via the keeper.
  char *VictimSpan = Base + 5 * kPageSize;
  EXPECT_TRUE(Keeper.contains(VictimSpan + 64, Base));
  EXPECT_EQ(Keeper.offsetOf(VictimSpan + 64, Base), 1u);
  // And the canonical storage address is in the keeper's physical span.
  EXPECT_EQ(Keeper.ptrForOffset(1, Base), Base + 64);
}

TEST(MiniHeapTest, CandidateRespectsMaxMeshes) {
  MiniHeap Keeper(0, 1, 64, 64, 3, true);
  Keeper.bitmap().tryToSet(1);
  for (uint32_t I = 1; I < kMaxMeshes; ++I) {
    MiniHeap Victim(I * 2, 1, 64, 64, 3, true);
    Keeper.takeSpansFrom(Victim);
  }
  EXPECT_EQ(Keeper.spans().size(), kMaxMeshes);
  EXPECT_FALSE(Keeper.isMeshingCandidate())
      << "a MiniHeap holding kMaxMeshes spans cannot absorb more";
}

TEST(MiniHeapTest, BinBookkeeping) {
  MiniHeap MH(0, 1, 64, 64, 3, true);
  EXPECT_FALSE(MH.isInBin());
  MH.setBin(2, 17);
  EXPECT_TRUE(MH.isInBin());
  EXPECT_EQ(MH.binIndex(), 2);
  EXPECT_EQ(MH.binSlot(), 17u);
  MH.clearBin();
  EXPECT_FALSE(MH.isInBin());
}

} // namespace
} // namespace mesh
