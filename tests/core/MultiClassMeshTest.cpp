//===- MultiClassMeshTest.cpp - Meshing across size classes ----------------===//

#include "core/Runtime.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace mesh {
namespace {

TEST(MultiClassMeshTest, OnePassCoversAllMeshableClasses) {
  // Fragment several classes at once; a single pass (unlimited quota)
  // must reclaim from each meshable class independently.
  MeshOptions Opts = testOptions(21);
  Opts.MaxMeshesPerPass = 0;
  Runtime R(Opts);
  const size_t Sizes[] = {16, 64, 256, 1024, 2048};
  std::vector<void *> Kept;
  for (size_t Size : Sizes) {
    int Class = -1;
    ASSERT_TRUE(sizeClassForSize(Size, &Class));
    const uint32_t PerSpan = sizeClassInfo(Class).ObjectCount;
    std::vector<void *> All;
    for (uint32_t I = 0; I < 24 * PerSpan; ++I)
      All.push_back(R.malloc(Size));
    for (size_t I = 0; I < All.size(); ++I) {
      if (I % 16 == 0)
        Kept.push_back(All[I]);
      else
        R.free(All[I]);
    }
  }
  R.localHeap().releaseAll();

  const uint64_t MeshesBefore = R.global().stats().MeshCount.load();
  const size_t Freed = R.meshNow();
  EXPECT_GT(Freed, 0u);
  // Count per-class meshing by checking committed shrank notably for a
  // multi-class image (each class contributes candidates).
  EXPECT_GT(R.global().stats().MeshCount.load(), MeshesBefore + 4)
      << "a multi-class image should produce meshes in several classes";
  for (void *P : Kept)
    R.free(P);
}

TEST(MultiClassMeshTest, DifferentSpanLengthsMeshIndependently) {
  // 1024-byte class uses 2-page spans: meshing must remap and release
  // multi-page spans correctly (all page-table entries, both pages).
  Runtime R(testOptions(22));
  std::vector<char *> Kept;
  std::vector<char *> Toss;
  for (int I = 0; I < 64 * 8; ++I) {
    auto *P = static_cast<char *>(R.malloc(1024));
    snprintf(P, 1024, "obj-%d", I);
    (I % 8 == 0 ? Kept : Toss).push_back(P);
  }
  for (char *P : Toss)
    R.free(P);
  R.localHeap().releaseAll();
  size_t Freed = 0;
  for (int Pass = 0; Pass < 8; ++Pass)
    Freed += R.meshNow();
  EXPECT_GT(Freed, 0u);
  EXPECT_EQ(Freed % (2 * kPageSize), 0u)
      << "1024-class meshes release whole 2-page spans";
  int Idx = 0;
  for (char *P : Kept) {
    char Want[16];
    snprintf(Want, sizeof(Want), "obj-%d", Idx * 8);
    ASSERT_STREQ(P, Want);
    ++Idx;
  }
  // Free through (possibly remapped) pointers; heap must drain.
  for (char *P : Kept)
    R.free(P);
  R.localHeap().releaseAll();
  EXPECT_EQ(R.committedBytes(), 0u);
}

TEST(MultiClassMeshTest, MeshingInvokedFlushesDirtyPages) {
  // Section 4.4.1: "or whenever meshing is invoked" — a mesh pass also
  // returns accumulated dirty pages to the OS.
  MeshOptions Opts = testOptions(23);
  Opts.MaxDirtyBytes = kMaxDirtyBytes; // large budget: no auto-flush
  Runtime R(Opts);
  // Create dirty spans: allocate and fully free several spans.
  std::vector<void *> Block;
  for (int I = 0; I < 8 * 256; ++I)
    Block.push_back(R.malloc(16));
  for (void *P : Block)
    R.free(P);
  R.localHeap().releaseAll();
  EXPECT_GT(R.global().dirtyBytes(), 0u) << "spans should sit dirty";
  R.meshNow(); // nothing to mesh, but the flush must still happen
  EXPECT_EQ(R.global().dirtyBytes(), 0u)
      << "meshing pass must return dirty pages to the OS";
  EXPECT_EQ(R.committedBytes(), 0u);
}

} // namespace
} // namespace mesh
