//===- ReallocSweepTest.cpp - realloc/memalign parameter sweeps ------------===//

#include "core/Runtime.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

namespace mesh {
namespace {

class ReallocSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ReallocSweep, ContentsSurviveResize) {
  const auto [From, To] = GetParam();
  Runtime R(testOptions());
  auto *P = static_cast<unsigned char *>(R.malloc(From));
  ASSERT_NE(P, nullptr);
  for (size_t I = 0; I < From; ++I)
    P[I] = static_cast<unsigned char>(I * 31 + 7);
  auto *Q = static_cast<unsigned char *>(R.realloc(P, To));
  ASSERT_NE(Q, nullptr);
  const size_t Preserved = From < To ? From : To;
  for (size_t I = 0; I < Preserved; ++I)
    ASSERT_EQ(Q[I], static_cast<unsigned char>(I * 31 + 7))
        << "byte " << I << " lost in realloc " << From << " -> " << To;
  EXPECT_GE(R.usableSize(Q), To);
  R.free(Q);
}

INSTANTIATE_TEST_SUITE_P(
    SizePairs, ReallocSweep,
    ::testing::Values(std::tuple{1u, 16u}, std::tuple{16u, 17u},
                      std::tuple{48u, 4000u}, std::tuple{4000u, 48u},
                      std::tuple{1024u, 1025u}, std::tuple{16384u, 16385u},
                      std::tuple{16385u, 16384u}, std::tuple{100000u, 50u},
                      std::tuple{50u, 100000u},
                      std::tuple{300000u, 600000u}),
    [](const auto &Info) {
      return "from" + std::to_string(std::get<0>(Info.param)) + "_to" +
             std::to_string(std::get<1>(Info.param));
    });

class MemalignSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MemalignSweep, AlignmentAndUsability) {
  const auto [Alignment, Size] = GetParam();
  Runtime R(testOptions());
  void *P = nullptr;
  ASSERT_EQ(R.posixMemalign(&P, Alignment, Size), 0)
      << "align " << Alignment << " size " << Size;
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Alignment, 0u);
  memset(P, 0x44, Size);
  EXPECT_GE(R.usableSize(P), Size);
  R.free(P);
}

INSTANTIATE_TEST_SUITE_P(
    AlignSizePairs, MemalignSweep,
    ::testing::Combine(::testing::Values(size_t{16}, size_t{32}, size_t{128},
                                         size_t{512}, size_t{4096}),
                       ::testing::Values(size_t{1}, size_t{100}, size_t{4096},
                                         size_t{20000})),
    [](const auto &Info) {
      return "a" + std::to_string(std::get<0>(Info.param)) + "_s" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(ReallocEdgeTest, GrowShrinkChainPreservesPrefix) {
  Runtime R(testOptions());
  const char *Tag = "prefix-must-survive";
  auto *P = static_cast<char *>(R.malloc(32));
  strcpy(P, Tag);
  // A long chain of grows and shrinks across classes and into large
  // objects and back.
  for (size_t Size : {64u, 33u, 4096u, 120u, 70000u, 24u, 16384u, 20u}) {
    P = static_cast<char *>(R.realloc(P, Size));
    ASSERT_NE(P, nullptr);
    ASSERT_EQ(strncmp(P, Tag, Size < 20 ? Size : 20), 0)
        << "prefix lost at size " << Size;
  }
  R.free(P);
}

} // namespace
} // namespace mesh
