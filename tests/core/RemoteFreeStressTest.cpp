//===- RemoteFreeStressTest.cpp - Cross-thread free vs. meshing stress ------===//
///
/// Integration stress for the epoch-protected remote-free path:
/// allocator threads hand every pointer to freeing threads over rings
/// while a meshing thread runs continuous passes. This is the exact
/// lookup/mesh/destroy interleaving DESIGN.md describes — a remote
/// free resolves a MiniHeap through the page table while a concurrent
/// pass consolidates or destroys it — and must survive ASan and TSan
/// with no lost frees, no metadata use-after-free, and no data races.
///
/// Two size regimes share one scaffolding: a small-band mix (the PR 2
/// lock-free hot-path pin) and a striped multi-class mix where every
/// producer works a disjoint stripe of the 24 size classes, so
/// concurrent remote frees land on *different* per-class shards of the
/// global heap (the shard/pending-stash split pin).
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "core/SizeClass.h"

#include "TestConfig.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

namespace mesh {
namespace {

/// Minimal SPSC pointer ring (one producer, one consumer).
class Ring {
public:
  static constexpr size_t kSlots = 1024;

  bool tryPush(void *Ptr) {
    const size_t Tail = TailIdx.load(std::memory_order_relaxed);
    if (Tail - HeadIdx.load(std::memory_order_acquire) == kSlots)
      return false;
    Slots[Tail % kSlots].store(Ptr, std::memory_order_relaxed);
    TailIdx.store(Tail + 1, std::memory_order_release);
    return true;
  }

  void *tryPop() {
    const size_t Head = HeadIdx.load(std::memory_order_relaxed);
    if (Head == TailIdx.load(std::memory_order_acquire))
      return nullptr;
    void *Ptr = Slots[Head % kSlots].load(std::memory_order_relaxed);
    HeadIdx.store(Head + 1, std::memory_order_release);
    return Ptr;
  }

private:
  std::atomic<void *> Slots[kSlots] = {};
  alignas(64) std::atomic<size_t> HeadIdx{0};
  alignas(64) std::atomic<size_t> TailIdx{0};
};

/// Shared scaffolding for the ring-handoff stress tests: producers
/// allocate, stamp, detach spans periodically (so meshing has detached
/// candidates), and hand every pointer across threads; consumers
/// validate the producer-indexed stamp and free remotely; a mesher
/// thread runs continuous passes against both. \p SizeFor picks each
/// allocation's size from (driver RNG, producer index). Asserts that
/// every object is freed exactly once and that the heap drains back to
/// (nearly) nothing committed.
template <typename SizeFn>
void runRingHandoffStress(size_t ItemsPerProducer, SizeFn SizeFor) {
  MeshOptions Opts = testOptions();
  Opts.MeshPeriodMs = 0; // Mesh whenever asked, and on free triggers.
  Runtime R(Opts);

  constexpr int kProducers = 4;

  Ring Rings[kProducers];
  std::atomic<int> ProducersDone{0};
  std::atomic<uint64_t> Freed{0};

  std::vector<std::thread> Producers;
  for (int T = 0; T < kProducers; ++T)
    Producers.emplace_back([&, T] {
      Rng Driver(7000 + T);
      for (size_t I = 0; I < ItemsPerProducer; ++I) {
        const size_t Size = SizeFor(Driver, T);
        auto *P = static_cast<unsigned char *>(R.malloc(Size));
        ASSERT_NE(P, nullptr);
        P[0] = static_cast<unsigned char>(0xA0 + T);
        P[Size - 1] = 0x5C;
        while (!Rings[T].tryPush(P))
          std::this_thread::yield();
        if (I % 1024 == 0)
          R.localHeap().releaseAll();
      }
      R.localHeap().releaseAll();
      ProducersDone.fetch_add(1);
    });

  std::vector<std::thread> Consumers;
  for (int T = 0; T < 2; ++T)
    Consumers.emplace_back([&, T] {
      // Exit protocol: a producer's final push can land between our
      // scan of its ring and the done check, and each ring has only
      // one consumer — so after first observing every producer done,
      // run one more full sweep and only stop once it comes up empty.
      bool DoneSeen = false;
      for (;;) {
        bool Idle = true;
        for (int Src = T; Src < kProducers; Src += 2) {
          while (void *P = Rings[Src].tryPop()) {
            Idle = false;
            ASSERT_EQ(static_cast<unsigned char *>(P)[0],
                      static_cast<unsigned char>(0xA0 + Src))
                << "object corrupted in cross-thread handoff";
            R.free(P);
            Freed.fetch_add(1);
          }
        }
        if (!Idle)
          continue;
        if (DoneSeen)
          break;
        if (ProducersDone.load() == kProducers)
          DoneSeen = true;
        else
          std::this_thread::yield();
      }
    });

  // Mesher: continuous passes racing the remote frees.
  std::atomic<bool> StopMesher{false};
  std::thread Mesher([&] {
    while (!StopMesher.load())
      R.meshNow();
  });

  for (auto &Th : Producers)
    Th.join();
  for (auto &Th : Consumers)
    Th.join();
  StopMesher.store(true);
  Mesher.join();

  EXPECT_EQ(Freed.load(),
            static_cast<uint64_t>(kProducers) * ItemsPerProducer);

  // Every object went through the remote path and every span was
  // detached: after a final drain (any allocation drains its shard;
  // empty transitions drained inline) and a pass, the heap should be
  // back to (nearly) nothing committed.
  R.free(R.malloc(16));
  R.localHeap().releaseAll();
  R.meshNow();
  const size_t Committed = R.committedBytes();
  EXPECT_LT(Committed, size_t{4} * 1024 * 1024)
      << "remote frees leaked spans";
}

TEST(RemoteFreeStressTest, RingHandoffWhileMeshing) {
  // Small-band sizes (16B-256B): dense spans, maximal meshing churn.
  runRingHandoffStress(stressScaled(40000), [](Rng &Driver, int) {
    return size_t{16} << Driver.inRange(0, 4);
  });
}

TEST(RemoteFreeStressTest, MultiClassShardedRemoteFrees) {
  // Producer T draws only size classes congruent to T mod 4: the
  // stripes are disjoint, so concurrent remote frees always target
  // different shards' stashes and bins, while the mesher walks every
  // shard in order. Guards the shard/pending-stash split: a free
  // pushed onto the wrong shard's stash, or a drain re-binning into
  // another class's bins, corrupts the heap or trips the stamp check.
  runRingHandoffStress(stressScaled(30000), [](Rng &Driver, int T) {
    const int Class = T + 4 * static_cast<int>(
                              Driver.inRange(0, kNumSizeClasses / 4 - 1));
    return size_t{objectSizeForClass(Class)};
  });
}

TEST(RemoteFreeStressTest, ConcurrentRemoteFreesSameSpan) {
  // Many threads free objects from the *same* spans concurrently:
  // maximal contention on single bitmaps and the pending stash.
  Runtime R(testOptions());
  constexpr int kRounds = 200;
  constexpr int kThreads = 8;

  for (int Round = 0; Round < kRounds; ++Round) {
    std::vector<void *> Ptrs;
    for (int I = 0; I < 512; ++I)
      Ptrs.push_back(R.malloc(32));
    R.localHeap().releaseAll(); // Everything detached: all frees global.

    std::atomic<size_t> NextIdx{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T < kThreads; ++T)
      Threads.emplace_back([&] {
        for (;;) {
          const size_t I = NextIdx.fetch_add(1);
          if (I >= Ptrs.size())
            return;
          R.free(Ptrs[I]);
        }
      });
    for (auto &Th : Threads)
      Th.join();
  }
  // All spans emptied remotely; nothing may survive the final drain.
  R.free(R.malloc(16)); // Drains the pending stash via alloc.
  R.localHeap().releaseAll();
  EXPECT_LT(R.committedBytes(), size_t{4} * 1024 * 1024);
}

} // namespace
} // namespace mesh
