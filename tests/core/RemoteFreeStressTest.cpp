//===- RemoteFreeStressTest.cpp - Cross-thread free vs. meshing stress ------===//
///
/// Integration stress for the epoch-protected remote-free path:
/// allocator threads hand every pointer to freeing threads over rings
/// while a meshing thread runs continuous passes. This is the exact
/// lookup/mesh/destroy interleaving DESIGN.md describes — a remote
/// free resolves a MiniHeap through the page table while a concurrent
/// pass consolidates or destroys it — and must survive ASan and TSan
/// with no lost frees, no metadata use-after-free, and no data races.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

namespace mesh {
namespace {

/// Minimal SPSC pointer ring (one producer, one consumer).
class Ring {
public:
  static constexpr size_t kSlots = 1024;

  bool tryPush(void *Ptr) {
    const size_t Tail = TailIdx.load(std::memory_order_relaxed);
    if (Tail - HeadIdx.load(std::memory_order_acquire) == kSlots)
      return false;
    Slots[Tail % kSlots].store(Ptr, std::memory_order_relaxed);
    TailIdx.store(Tail + 1, std::memory_order_release);
    return true;
  }

  void *tryPop() {
    const size_t Head = HeadIdx.load(std::memory_order_relaxed);
    if (Head == TailIdx.load(std::memory_order_acquire))
      return nullptr;
    void *Ptr = Slots[Head % kSlots].load(std::memory_order_relaxed);
    HeadIdx.store(Head + 1, std::memory_order_release);
    return Ptr;
  }

private:
  std::atomic<void *> Slots[kSlots] = {};
  alignas(64) std::atomic<size_t> HeadIdx{0};
  alignas(64) std::atomic<size_t> TailIdx{0};
};

TEST(RemoteFreeStressTest, RingHandoffWhileMeshing) {
  MeshOptions Opts = testOptions();
  Opts.MeshPeriodMs = 0; // Mesh whenever asked, and on free triggers.
  Runtime R(Opts);

  constexpr int kProducers = 4;
  constexpr int kItemsPerProducer = 40000;

  Ring Rings[kProducers];
  std::atomic<int> ProducersDone{0};
  std::atomic<uint64_t> Freed{0};

  // Producers: allocate, stamp, detach spans periodically (so meshing
  // has detached candidates), and hand every pointer across threads.
  std::vector<std::thread> Producers;
  for (int T = 0; T < kProducers; ++T)
    Producers.emplace_back([&, T] {
      Rng Driver(7000 + T);
      for (int I = 0; I < kItemsPerProducer; ++I) {
        const size_t Size = 16 << Driver.inRange(0, 4);
        auto *P = static_cast<unsigned char *>(R.malloc(Size));
        ASSERT_NE(P, nullptr);
        P[0] = 0xC5;
        P[Size - 1] = 0x5C;
        while (!Rings[T].tryPush(P))
          std::this_thread::yield();
        if (I % 1024 == 0)
          R.localHeap().releaseAll();
      }
      R.localHeap().releaseAll();
      ProducersDone.fetch_add(1);
    });

  // Consumers: validate the stamp and free remotely.
  std::vector<std::thread> Consumers;
  for (int T = 0; T < 2; ++T)
    Consumers.emplace_back([&, T] {
      for (;;) {
        bool Idle = true;
        for (int Src = T; Src < kProducers; Src += 2) {
          while (void *P = Rings[Src].tryPop()) {
            Idle = false;
            ASSERT_EQ(static_cast<unsigned char *>(P)[0], 0xC5)
                << "object corrupted in cross-thread handoff";
            R.free(P);
            Freed.fetch_add(1);
          }
        }
        if (Idle) {
          if (ProducersDone.load() == kProducers)
            break;
          std::this_thread::yield();
        }
      }
    });

  // Mesher: continuous passes racing the remote frees.
  std::atomic<bool> StopMesher{false};
  std::thread Mesher([&] {
    while (!StopMesher.load())
      R.meshNow();
  });

  for (auto &Th : Producers)
    Th.join();
  for (auto &Th : Consumers)
    Th.join();
  StopMesher.store(true);
  Mesher.join();

  EXPECT_EQ(Freed.load(),
            static_cast<uint64_t>(kProducers) * kItemsPerProducer);

  // Every object went through the remote path and every span was
  // detached: after a final drain (any allocation drains) and flush,
  // the heap should be back to (nearly) nothing committed.
  R.free(R.malloc(16));
  R.localHeap().releaseAll();
  R.meshNow();
  const size_t Committed = R.committedBytes();
  EXPECT_LT(Committed, size_t{4} * 1024 * 1024)
      << "remote frees leaked spans";
}

TEST(RemoteFreeStressTest, ConcurrentRemoteFreesSameSpan) {
  // Many threads free objects from the *same* spans concurrently:
  // maximal contention on single bitmaps and the pending stash.
  Runtime R(testOptions());
  constexpr int kRounds = 200;
  constexpr int kThreads = 8;

  for (int Round = 0; Round < kRounds; ++Round) {
    std::vector<void *> Ptrs;
    for (int I = 0; I < 512; ++I)
      Ptrs.push_back(R.malloc(32));
    R.localHeap().releaseAll(); // Everything detached: all frees global.

    std::atomic<size_t> NextIdx{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T < kThreads; ++T)
      Threads.emplace_back([&] {
        for (;;) {
          const size_t I = NextIdx.fetch_add(1);
          if (I >= Ptrs.size())
            return;
          R.free(Ptrs[I]);
        }
      });
    for (auto &Th : Threads)
      Th.join();
  }
  // All spans emptied remotely; nothing may survive the final drain.
  R.free(R.malloc(16)); // Drains the pending stash via alloc.
  R.localHeap().releaseAll();
  EXPECT_LT(R.committedBytes(), size_t{4} * 1024 * 1024);
}

} // namespace
} // namespace mesh
