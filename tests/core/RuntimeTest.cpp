//===- RuntimeTest.cpp - Runtime facade tests ------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

namespace mesh {
namespace {

TEST(RuntimeTest, MallocFreeRoundTrip) {
  Runtime R(testOptions());
  void *P = R.malloc(100);
  ASSERT_NE(P, nullptr);
  memset(P, 1, 100);
  R.free(P);
  R.free(nullptr); // must be a no-op
}

TEST(RuntimeTest, CallocZeroesAndChecksOverflow) {
  Runtime R(testOptions());
  auto *P = static_cast<unsigned char *>(R.calloc(100, 7));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 700; ++I)
    ASSERT_EQ(P[I], 0);
  R.free(P);
  EXPECT_EQ(R.calloc(SIZE_MAX / 2, 3), nullptr);
}

TEST(RuntimeTest, CallocZeroesRecycledDirtyMemory) {
  Runtime R(testOptions());
  // Dirty a slot, free it, calloc the same class: must read zero.
  auto *P = static_cast<unsigned char *>(R.malloc(64));
  memset(P, 0xFF, 64);
  R.free(P);
  auto *Q = static_cast<unsigned char *>(R.calloc(1, 64));
  for (int I = 0; I < 64; ++I)
    ASSERT_EQ(Q[I], 0);
  R.free(Q);
}

TEST(RuntimeTest, CallocLargeIsZeroOnPristineSpans) {
  // Large callocs served by freshly committed memfd pages skip the
  // memset; the pages must still read as zero.
  Runtime R(testOptions());
  constexpr size_t kBytes = 128 * 1024;
  auto *P = static_cast<unsigned char *>(R.calloc(1, kBytes));
  ASSERT_NE(P, nullptr);
  for (size_t I = 0; I < kBytes; ++I)
    ASSERT_EQ(P[I], 0) << "byte " << I << " not zeroed";
  R.free(P);
}

TEST(RuntimeTest, CallocLargeIsZeroOnRecycledSpans) {
  // Large frees punch their pages immediately, so a recycled large
  // span is demand-zero again; the zero-skip must still hold after the
  // span has been dirtied, freed, and reused.
  Runtime R(testOptions());
  constexpr size_t kBytes = 16 * kPageSize; // Binnable power-of-two span.
  auto *P = static_cast<unsigned char *>(R.malloc(kBytes));
  ASSERT_NE(P, nullptr);
  memset(P, 0xAB, kBytes);
  R.free(P);
  auto *Q = static_cast<unsigned char *>(R.calloc(1, kBytes));
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q, P) << "expected the punched span to be recycled in place";
  for (size_t I = 0; I < kBytes; ++I)
    ASSERT_EQ(Q[I], 0) << "recycled byte " << I << " not zeroed";
  R.free(Q);
}

TEST(RuntimeTest, ReallocSemantics) {
  Runtime R(testOptions());
  auto *P = static_cast<char *>(R.malloc(32));
  strcpy(P, "hello realloc");
  // Grow within the class: pointer may stay.
  auto *Q = static_cast<char *>(R.realloc(P, 40));
  EXPECT_STREQ(Q, "hello realloc");
  // Grow across classes: contents preserved.
  auto *S = static_cast<char *>(R.realloc(Q, 4000));
  EXPECT_STREQ(S, "hello realloc");
  // Grow to large-object territory.
  auto *L = static_cast<char *>(R.realloc(S, 200 * 1024));
  EXPECT_STREQ(L, "hello realloc");
  // Shrink back down.
  auto *T = static_cast<char *>(R.realloc(L, 16));
  EXPECT_EQ(strncmp(T, "hello realloc", 13), 0)
      << "first 13 bytes survive the shrink to a 16-byte slot";
  R.free(T);
  // realloc(nullptr) behaves like malloc; realloc(p, 0) frees.
  void *M = R.realloc(nullptr, 50);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(R.realloc(M, 0), nullptr);
}

TEST(RuntimeTest, PosixMemalign) {
  Runtime R(testOptions());
  for (size_t Align : {16u, 64u, 256u, 1024u, 4096u}) {
    void *P = nullptr;
    ASSERT_EQ(R.posixMemalign(&P, Align, 100), 0) << "align " << Align;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u);
    R.free(P);
  }
  void *P = nullptr;
  EXPECT_EQ(R.posixMemalign(&P, 3, 100), EINVAL) << "non-power-of-two";
  EXPECT_EQ(R.posixMemalign(&P, 8192, 1 << 20), EINVAL)
      << "page-exceeding alignment unsupported";
}

TEST(RuntimeTest, UsableSizeMatchesClassRounding) {
  Runtime R(testOptions());
  void *P = R.malloc(33);
  EXPECT_EQ(R.usableSize(P), 48u);
  R.free(P);
  void *L = R.malloc(20000);
  EXPECT_EQ(R.usableSize(L), bytesToPages(20000) * kPageSize);
  R.free(L);
  EXPECT_EQ(R.usableSize(nullptr), 0u);
}

TEST(RuntimeTest, MallctlControlsAndStats) {
  Runtime R(testOptions());
  uint64_t Value = 0;
  size_t Len = sizeof(Value);
  ASSERT_EQ(R.mallctl("mesh.enabled", &Value, &Len, nullptr, 0), 0);
  EXPECT_EQ(Value, 1u);

  bool Off = false;
  ASSERT_EQ(R.mallctl("mesh.enabled", nullptr, nullptr, &Off, sizeof(Off)),
            0);
  Len = sizeof(Value);
  ASSERT_EQ(R.mallctl("mesh.enabled", &Value, &Len, nullptr, 0), 0);
  EXPECT_EQ(Value, 0u);

  uint64_t Period = 0;
  ASSERT_EQ(R.mallctl("mesh.period_ms", nullptr, nullptr, &Period,
                      sizeof(Period)),
            0);

  Len = sizeof(Value);
  ASSERT_EQ(R.mallctl("stats.committed_bytes", &Value, &Len, nullptr, 0), 0);
  EXPECT_EQ(Value, R.committedBytes());

  EXPECT_EQ(R.mallctl("no.such.knob", &Value, &Len, nullptr, 0), ENOENT);
  EXPECT_EQ(R.mallctl("mesh.enabled", &Value, nullptr, nullptr, 0), EINVAL);
}

TEST(RuntimeTest, ManyThreadsAllocateIndependently) {
  Runtime R(testOptions());
  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&R, T] {
      std::vector<void *> Mine;
      for (int I = 0; I < 2000; ++I) {
        void *P = R.malloc(16 + (T * 16) % 128);
        ASSERT_NE(P, nullptr);
        memset(P, T, 16);
        Mine.push_back(P);
      }
      for (void *P : Mine)
        R.free(P);
    });
  for (auto &Th : Threads)
    Th.join();
}

TEST(RuntimeTest, CrossThreadFreeIsSafe) {
  Runtime R(testOptions());
  std::vector<void *> Ptrs(4000);
  std::thread Producer([&] {
    for (auto &P : Ptrs) {
      P = R.malloc(64);
      memset(P, 0xAB, 64);
    }
  });
  Producer.join();
  std::thread Consumer([&] {
    for (void *P : Ptrs)
      R.free(P);
  });
  Consumer.join();
}

} // namespace
} // namespace mesh
