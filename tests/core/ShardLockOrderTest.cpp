//===- ShardLockOrderTest.cpp - Shard lock discipline death tests ----------===//
///
/// The sharded global heap's deadlock-freedom argument rests on one
/// rule: shard locks are only ever acquired in ascending index order
/// (the mesh-pass rendezvous walks shards 0..N and must never meet a
/// thread holding a higher shard while wanting a lower one). Debug
/// builds enforce the rule with a per-thread held-shard mask; these
/// death tests pin the diagnostic so a refactor that silently drops the
/// check — or a code path that violates the order — fails CI in the
/// sanitizer (Debug) jobs rather than deadlocking in production.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

namespace mesh {
namespace {

TEST(ShardLockOrderTest, AscendingAcquisitionIsAllowed) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  // Ascending, including the large-object shard last: the discipline
  // the mesh pass follows. Must not trip any diagnostic.
  G.lockShardForTest(0);
  G.lockShardForTest(5);
  G.lockShardForTest(GlobalHeap::kLargeShard);
  G.unlockShardForTest(GlobalHeap::kLargeShard);
  G.unlockShardForTest(5);
  G.unlockShardForTest(0);
  // Re-acquiring a lower shard after fully releasing is fine too.
  G.lockShardForTest(3);
  G.unlockShardForTest(3);
  G.lockShardForTest(1);
  G.unlockShardForTest(1);
}

#ifndef NDEBUG

TEST(ShardLockOrderDeathTest, DescendingAcquisitionAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  EXPECT_DEATH(
      {
        G.lockShardForTest(7);
        G.lockShardForTest(2);
      },
      "ascending index order");
}

TEST(ShardLockOrderDeathTest, RecursiveAcquisitionAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  EXPECT_DEATH(
      {
        G.lockShardForTest(4);
        G.lockShardForTest(4);
      },
      "ascending index order");
}

TEST(ShardLockOrderDeathTest, LargeShardBeforeClassShardAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  // The large-object shard has the highest rank; taking any class
  // shard after it is the exact inversion a large-free path bug would
  // produce.
  EXPECT_DEATH(
      {
        G.lockShardForTest(GlobalHeap::kLargeShard);
        G.lockShardForTest(0);
      },
      "ascending index order");
}

TEST(ShardLockOrderDeathTest, UnlockingUnheldShardAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  EXPECT_DEATH(G.unlockShardForTest(6), "does not hold");
}

#else

TEST(ShardLockOrderDeathTest, DiagnosticsCompileAwayInRelease) {
  GTEST_SKIP() << "lock-order diagnostics are assert-based and only "
                  "live in Debug (e.g. the MESH_SANITIZE CI jobs)";
}

#endif // NDEBUG

} // namespace
} // namespace mesh
