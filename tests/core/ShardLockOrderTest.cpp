//===- ShardLockOrderTest.cpp - Shard lock discipline death tests ----------===//
///
/// The sharded global heap's deadlock-freedom argument rests on one
/// rule: shard locks are only ever acquired in ascending index order
/// (the mesh-pass rendezvous walks shards 0..N and must never meet a
/// thread holding a higher shard while wanting a lower one), and the
/// arena's own lock tier sits strictly below every heap shard:
/// heap shards -> arena shards ascending -> ArenaLock (LockRank.h).
/// Debug builds enforce the full rank with per-thread held masks;
/// these death tests pin the diagnostics so a refactor that silently
/// drops a check — or a code path that violates the order — fails CI
/// in the sanitizer (Debug) jobs rather than deadlocking in
/// production.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"

#include <gtest/gtest.h>

namespace mesh {
namespace {

TEST(ShardLockOrderTest, AscendingAcquisitionIsAllowed) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  // Ascending, including the large-object shard last: the discipline
  // the mesh pass follows. Must not trip any diagnostic.
  G.lockShardForTest(0);
  G.lockShardForTest(5);
  G.lockShardForTest(GlobalHeap::kLargeShard);
  G.unlockShardForTest(GlobalHeap::kLargeShard);
  G.unlockShardForTest(5);
  G.unlockShardForTest(0);
  // Re-acquiring a lower shard after fully releasing is fine too.
  G.lockShardForTest(3);
  G.unlockShardForTest(3);
  G.lockShardForTest(1);
  G.unlockShardForTest(1);
}

TEST(ShardLockOrderTest, FullRankDescentIsAllowed) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  MeshableArena &A = G.arenaForTest();
  // The deepest legal nesting any operation produces: a heap shard,
  // then arena shards ascending, then ArenaLock (a refill miss under a
  // destroy's rebin). Must not trip any diagnostic.
  G.lockShardForTest(2);
  A.lockShardForTest(2);
  A.lockShardForTest(MeshableArena::kLargeArenaShard);
  A.lockArenaForTest();
  A.unlockArenaForTest();
  A.unlockShardForTest(MeshableArena::kLargeArenaShard);
  A.unlockShardForTest(2);
  G.unlockShardForTest(2);
  // An arena shard with no heap shard held (direct arena traffic) is
  // fine too, as is re-descending after a full release.
  A.lockShardForTest(0);
  A.unlockShardForTest(0);
  A.lockArenaForTest();
  A.unlockArenaForTest();
}

#ifndef NDEBUG

TEST(ShardLockOrderDeathTest, DescendingAcquisitionAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  EXPECT_DEATH(
      {
        G.lockShardForTest(7);
        G.lockShardForTest(2);
      },
      "ascending index order");
}

TEST(ShardLockOrderDeathTest, RecursiveAcquisitionAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  EXPECT_DEATH(
      {
        G.lockShardForTest(4);
        G.lockShardForTest(4);
      },
      "ascending index order");
}

TEST(ShardLockOrderDeathTest, LargeShardBeforeClassShardAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  // The large-object shard has the highest rank; taking any class
  // shard after it is the exact inversion a large-free path bug would
  // produce.
  EXPECT_DEATH(
      {
        G.lockShardForTest(GlobalHeap::kLargeShard);
        G.lockShardForTest(0);
      },
      "ascending index order");
}

TEST(ShardLockOrderDeathTest, UnlockingUnheldShardAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  EXPECT_DEATH(G.unlockShardForTest(6), "does not hold");
}

TEST(ShardLockOrderDeathTest, ArenaShardDescendingAborts) {
  Runtime R(testOptions());
  MeshableArena &A = R.global().arenaForTest();
  EXPECT_DEATH(
      {
        A.lockShardForTest(7);
        A.lockShardForTest(2);
      },
      "ascending index order");
}

TEST(ShardLockOrderDeathTest, HeapShardAfterArenaShardAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  MeshableArena &A = G.arenaForTest();
  // The inversion a destroy-path bug would produce: calling back up
  // into the heap tier while holding arena state.
  EXPECT_DEATH(
      {
        A.lockShardForTest(3);
        G.lockShardForTest(3);
      },
      "before any arena lock");
}

TEST(ShardLockOrderDeathTest, HeapShardAfterArenaLockAborts) {
  Runtime R(testOptions());
  GlobalHeap &G = R.global();
  MeshableArena &A = G.arenaForTest();
  EXPECT_DEATH(
      {
        A.lockArenaForTest();
        G.lockShardForTest(0);
      },
      "before any arena lock");
}

TEST(ShardLockOrderDeathTest, ArenaShardAfterArenaLockAborts) {
  Runtime R(testOptions());
  MeshableArena &A = R.global().arenaForTest();
  // ArenaLock is the innermost arena rank; a shard acquired under it
  // is the refill-miss path run backwards.
  EXPECT_DEATH(
      {
        A.lockArenaForTest();
        A.lockShardForTest(0);
      },
      "before ArenaLock");
}

TEST(ShardLockOrderDeathTest, RecursiveArenaLockAborts) {
  Runtime R(testOptions());
  MeshableArena &A = R.global().arenaForTest();
  EXPECT_DEATH(
      {
        A.lockArenaForTest();
        A.lockArenaForTest();
      },
      "not recursive");
}

TEST(ShardLockOrderDeathTest, UnlockingUnheldArenaShardAborts) {
  Runtime R(testOptions());
  MeshableArena &A = R.global().arenaForTest();
  EXPECT_DEATH(A.unlockShardForTest(6), "does not hold");
}

#else

TEST(ShardLockOrderDeathTest, DiagnosticsCompileAwayInRelease) {
  GTEST_SKIP() << "lock-order diagnostics are assert-based and only "
                  "live in Debug (e.g. the MESH_SANITIZE CI jobs)";
}

#endif // NDEBUG

} // namespace
} // namespace mesh
