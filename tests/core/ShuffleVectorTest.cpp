//===- ShuffleVectorTest.cpp - Randomized freelist tests ------------------===//

#include "core/ShuffleVector.h"

#include "core/MiniHeap.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mesh {
namespace {

// The shuffle vector only does address arithmetic relative to the
// arena base, so tests can run against a plain buffer.
class ShuffleVectorTest : public ::testing::Test {
protected:
  ShuffleVectorTest() : Random(42) {
    Buffer.resize(64 * kPageSize);
    Base = Buffer.data();
  }

  MiniHeap makeMiniHeap(uint32_t PageOff = 0, uint32_t ObjSize = 16,
                        uint32_t ObjCount = 256) {
    return MiniHeap(PageOff, 1, ObjSize, ObjCount, 0, true);
  }

  Rng Random;
  std::vector<char> Buffer;
  char *Base;
};

TEST_F(ShuffleVectorTest, AttachPullsAllFreeOffsets) {
  MiniHeap MH = makeMiniHeap();
  ShuffleVector V;
  V.init(&Random, true);
  EXPECT_EQ(V.attach(&MH, Base), 256u);
  EXPECT_EQ(V.length(), 256u);
  EXPECT_FALSE(V.isExhausted());
  EXPECT_EQ(MH.inUseCount(), 256u) << "attach reserves every slot";
}

TEST_F(ShuffleVectorTest, AttachSkipsAllocatedOffsets) {
  MiniHeap MH = makeMiniHeap();
  MH.bitmap().tryToSet(3);
  MH.bitmap().tryToSet(200);
  ShuffleVector V;
  V.init(&Random, true);
  EXPECT_EQ(V.attach(&MH, Base), 254u);
}

TEST_F(ShuffleVectorTest, MallocReturnsEachSlotExactlyOnce) {
  MiniHeap MH = makeMiniHeap();
  ShuffleVector V;
  V.init(&Random, true);
  V.attach(&MH, Base);
  std::set<void *> Seen;
  while (!V.isExhausted())
    ASSERT_TRUE(Seen.insert(V.malloc()).second) << "duplicate slot";
  EXPECT_EQ(Seen.size(), 256u);
  // All pointers lie in the span at distinct 16-byte offsets.
  for (void *P : Seen) {
    const auto Delta = static_cast<char *>(P) - Base;
    ASSERT_GE(Delta, 0);
    ASSERT_LT(Delta, static_cast<ptrdiff_t>(kPageSize));
    ASSERT_EQ(Delta % 16, 0);
  }
}

TEST_F(ShuffleVectorTest, RandomizedOrderIsNotSequential) {
  MiniHeap MH = makeMiniHeap();
  ShuffleVector V;
  V.init(&Random, true);
  V.attach(&MH, Base);
  std::vector<void *> Order;
  while (!V.isExhausted())
    Order.push_back(V.malloc());
  std::vector<void *> Sorted = Order;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_NE(Order, Sorted) << "randomized allocation must not be sorted";
}

TEST_F(ShuffleVectorTest, NoRandModeIsBumpPointer) {
  MiniHeap MH = makeMiniHeap();
  ShuffleVector V;
  V.init(&Random, /*Randomized=*/false);
  V.attach(&MH, Base);
  char *Prev = nullptr;
  while (!V.isExhausted()) {
    char *P = static_cast<char *>(V.malloc());
    if (Prev != nullptr) {
      ASSERT_EQ(P, Prev + 16) << "no-rand mode must allocate sequentially";
    }
    Prev = P;
  }
}

TEST_F(ShuffleVectorTest, FreeMakesSlotReusable) {
  MiniHeap MH = makeMiniHeap();
  ShuffleVector V;
  V.init(&Random, true);
  V.attach(&MH, Base);
  std::vector<void *> Ptrs;
  while (!V.isExhausted())
    Ptrs.push_back(V.malloc());
  EXPECT_TRUE(V.isExhausted());
  V.free(Ptrs[100]);
  EXPECT_FALSE(V.isExhausted());
  EXPECT_EQ(V.length(), 1u);
  EXPECT_EQ(V.malloc(), Ptrs[100]);
}

TEST_F(ShuffleVectorTest, DetachReturnsLeftoverOffsets) {
  MiniHeap MH = makeMiniHeap();
  ShuffleVector V;
  V.init(&Random, true);
  V.attach(&MH, Base);
  for (int I = 0; I < 100; ++I)
    V.malloc();
  EXPECT_EQ(MH.inUseCount(), 256u);
  MiniHeap *Out = V.detach();
  EXPECT_EQ(Out, &MH);
  EXPECT_FALSE(V.isAttached());
  EXPECT_EQ(MH.inUseCount(), 100u)
      << "detach must surrender unallocated slots to the bitmap";
}

TEST_F(ShuffleVectorTest, ContainsTracksAttachedSpanOnly) {
  MiniHeap MH = makeMiniHeap(/*PageOff=*/2);
  ShuffleVector V;
  V.init(&Random, true);
  EXPECT_FALSE(V.contains(Base + 2 * kPageSize));
  V.attach(&MH, Base);
  EXPECT_TRUE(V.contains(Base + 2 * kPageSize));
  EXPECT_TRUE(V.contains(Base + 3 * kPageSize - 1));
  EXPECT_FALSE(V.contains(Base + 3 * kPageSize));
  EXPECT_FALSE(V.contains(Base));
}

TEST_F(ShuffleVectorTest, MallocFreeChurnPreservesSlotUniqueness) {
  MiniHeap MH = makeMiniHeap(0, 64, 64);
  ShuffleVector V;
  V.init(&Random, true);
  V.attach(&MH, Base);
  std::set<void *> Live;
  Rng Driver(7);
  for (int Step = 0; Step < 10000; ++Step) {
    const bool DoAlloc = Live.empty() ||
                         (!V.isExhausted() && Driver.withProbability(0.55));
    if (DoAlloc) {
      void *P = V.malloc();
      ASSERT_TRUE(Live.insert(P).second) << "slot handed out twice";
    } else {
      auto It = Live.begin();
      std::advance(It, Driver.inRange(0, Live.size() - 1));
      V.free(*It);
      Live.erase(It);
    }
  }
}

TEST_F(ShuffleVectorTest, SmallObjectCountSpan) {
  // 1024-byte class: two pages, 8 objects.
  MiniHeap MH(0, 2, 1024, 8, 19, true);
  ShuffleVector V;
  V.init(&Random, true);
  EXPECT_EQ(V.attach(&MH, Base), 8u);
  std::set<void *> Seen;
  while (!V.isExhausted())
    Seen.insert(V.malloc());
  EXPECT_EQ(Seen.size(), 8u);
}

} // namespace
} // namespace mesh
