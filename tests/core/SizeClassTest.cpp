//===- SizeClassTest.cpp - Size-class table tests ------------------------===//

#include "core/SizeClass.h"

#include <gtest/gtest.h>

namespace mesh {
namespace {

TEST(SizeClassTest, TableShape) {
  // 24 classes (paper Section 4.2), ascending, 16-byte aligned sizes.
  uint32_t Prev = 0;
  for (int C = 0; C < kNumSizeClasses; ++C) {
    const SizeClassInfo &I = sizeClassInfo(C);
    EXPECT_GT(I.ObjectSize, Prev) << "sizes must ascend";
    EXPECT_EQ(I.ObjectSize % 16, 0u);
    Prev = I.ObjectSize;
  }
  EXPECT_EQ(sizeClassInfo(0).ObjectSize, 16u);
  EXPECT_EQ(sizeClassInfo(kNumSizeClasses - 1).ObjectSize, 16384u);
}

TEST(SizeClassTest, SpanGeometryBounds) {
  // Paper Section 4: spans contain between 8 and 256 objects of a
  // fixed size and are whole pages.
  for (int C = 0; C < kNumSizeClasses; ++C) {
    const SizeClassInfo &I = sizeClassInfo(C);
    EXPECT_GE(I.ObjectCount, kMinObjectsPerSpan) << "class " << C;
    EXPECT_LE(I.ObjectCount, kMaxObjectsPerSpan) << "class " << C;
    EXPECT_LE(static_cast<size_t>(I.ObjectCount) * I.ObjectSize,
              pagesToBytes(I.SpanPages))
        << "objects must fit in the span, class " << C;
    // No more than one object's worth of tail waste.
    EXPECT_GT(static_cast<size_t>(I.ObjectCount + 1) * I.ObjectSize,
              pagesToBytes(I.SpanPages))
        << "span should not waste a whole extra slot, class " << C;
  }
}

TEST(SizeClassTest, MeshabilityCutoff) {
  // Objects of 4 KiB and larger are not meshing candidates (Section 4).
  for (int C = 0; C < kNumSizeClasses; ++C) {
    const SizeClassInfo &I = sizeClassInfo(C);
    EXPECT_EQ(I.Meshable, I.ObjectSize < 4096u) << "class " << C;
  }
}

TEST(SizeClassTest, SmallestClassFillsOnePageExactly) {
  const SizeClassInfo &I = sizeClassInfo(0);
  EXPECT_EQ(I.SpanPages, 1u);
  EXPECT_EQ(I.ObjectCount, 256u);
  EXPECT_EQ(I.ObjectCount * I.ObjectSize, kPageSize);
}

TEST(SizeClassTest, LookupSmallestFit) {
  // Paper: "objects of size 33-48 bytes are served from the 48-byte
  // size class".
  int Class = -1;
  ASSERT_TRUE(sizeClassForSize(33, &Class));
  EXPECT_EQ(objectSizeForClass(Class), 48u);
  ASSERT_TRUE(sizeClassForSize(48, &Class));
  EXPECT_EQ(objectSizeForClass(Class), 48u);
  ASSERT_TRUE(sizeClassForSize(49, &Class));
  EXPECT_EQ(objectSizeForClass(Class), 64u);
}

TEST(SizeClassTest, LookupEdgeCases) {
  int Class = -1;
  ASSERT_TRUE(sizeClassForSize(0, &Class));
  EXPECT_EQ(objectSizeForClass(Class), 16u);
  ASSERT_TRUE(sizeClassForSize(1, &Class));
  EXPECT_EQ(objectSizeForClass(Class), 16u);
  ASSERT_TRUE(sizeClassForSize(1024, &Class));
  EXPECT_EQ(objectSizeForClass(Class), 1024u);
  ASSERT_TRUE(sizeClassForSize(1025, &Class));
  EXPECT_EQ(objectSizeForClass(Class), 2048u);
  ASSERT_TRUE(sizeClassForSize(16384, &Class));
  EXPECT_EQ(objectSizeForClass(Class), 16384u);
}

TEST(SizeClassTest, LargeObjectsRejected) {
  int Class = -1;
  EXPECT_FALSE(sizeClassForSize(16385, &Class));
  EXPECT_FALSE(sizeClassForSize(1 << 20, &Class));
}

class SizeClassSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SizeClassSweep, EverySizeMapsToSmallestFittingClass) {
  const size_t Size = GetParam();
  int Class = -1;
  ASSERT_TRUE(sizeClassForSize(Size, &Class));
  const SizeClassInfo &I = sizeClassInfo(Class);
  EXPECT_GE(I.ObjectSize, Size);
  if (Class > 0) {
    EXPECT_LT(sizeClassInfo(Class - 1).ObjectSize, Size)
        << "a smaller class would also fit size " << Size;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallSizes, SizeClassSweep,
                         ::testing::Range(size_t{1}, size_t{16385},
                                          size_t{7}));

} // namespace
} // namespace mesh
