//===- TestConfig.h - Shared test helpers ----------------------*- C++ -*-===//

#ifndef MESH_TESTS_CORE_TESTCONFIG_H
#define MESH_TESTS_CORE_TESTCONFIG_H

#include "core/Options.h"

#include <cstdlib>

namespace mesh {

/// Deterministic, test-sized options: small arena, no rate limiting
/// (meshing only happens when tests ask for it via meshNow), eager
/// dirty-page return so committed-byte assertions are exact.
inline MeshOptions testOptions(uint64_t Seed = 42) {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{512} * 1024 * 1024;
  Opts.Seed = Seed;
  Opts.MeshPeriodMs = ~uint64_t{0}; // never auto-mesh
  Opts.MaxDirtyBytes = 0;           // free spans go straight to the OS
  return Opts;
}

/// Iteration scaling for the concurrency stress tests: the CI stress
/// soak exports MESH_STRESS_MULTIPLIER (e.g. 2) to run the same tests
/// with proportionally more work; local runs keep the base count.
inline size_t stressScaled(size_t Base) {
  const char *Env = std::getenv("MESH_STRESS_MULTIPLIER");
  if (Env == nullptr)
    return Base;
  const long Mult = std::strtol(Env, nullptr, 10);
  return Mult > 1 ? Base * static_cast<size_t>(Mult) : Base;
}

} // namespace mesh

#endif // MESH_TESTS_CORE_TESTCONFIG_H
