//===- ThreadLocalHeapTest.cpp - Thread-local heap tests -------------------===//

#include "core/ThreadLocalHeap.h"

#include "TestConfig.h"
#include "support/Epoch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace mesh {
namespace {

TEST(ThreadLocalHeapTest, SmallAllocationBasics) {
  GlobalHeap G(testOptions());
  {
    ThreadLocalHeap H(&G, 42);
    void *P = H.malloc(100);
    ASSERT_NE(P, nullptr);
    memset(P, 0xEE, 100);
    EXPECT_EQ(G.usableSize(P), 112u) << "100 bytes lands in the 112 class";
    H.free(P);
  }
  EXPECT_EQ(G.committedBytes(), 0u) << "heap drains fully on destruction";
}

TEST(ThreadLocalHeapTest, DistinctPointersUnderChurn) {
  GlobalHeap G(testOptions());
  ThreadLocalHeap H(&G, 42);
  std::set<void *> Live;
  std::vector<void *> Order;
  for (int I = 0; I < 5000; ++I) {
    void *P = H.malloc(48);
    ASSERT_TRUE(Live.insert(P).second);
    Order.push_back(P);
    if (I % 3 == 0) {
      H.free(Order.back());
      Live.erase(Order.back());
      Order.pop_back();
    }
  }
  for (void *P : Order)
    H.free(P);
  H.releaseAll();
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(ThreadLocalHeapTest, ExhaustedVectorRefillsFromFreshSpan) {
  GlobalHeap G(testOptions());
  ThreadLocalHeap H(&G, 42);
  // The 16-byte class holds 256 objects per span: allocating 600 spans
  // three spans.
  std::vector<void *> Ptrs;
  for (int I = 0; I < 600; ++I)
    Ptrs.push_back(H.malloc(16));
  std::set<void *> Unique(Ptrs.begin(), Ptrs.end());
  EXPECT_EQ(Unique.size(), 600u);
  for (void *P : Ptrs)
    H.free(P);
  H.releaseAll();
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(ThreadLocalHeapTest, LargeRequestsForwardToGlobal) {
  GlobalHeap G(testOptions());
  ThreadLocalHeap H(&G, 42);
  void *P = H.malloc(1 << 20);
  ASSERT_NE(P, nullptr);
  memset(P, 1, 1 << 20);
  EXPECT_EQ(G.usableSize(P), size_t{1} << 20);
  H.free(P);
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(ThreadLocalHeapTest, AttachedOwnerTagTracksAttachment) {
  // The O(1) free dispatch recognizes "my span" via the MiniHeap's
  // attachedOwner tag; it must be set while attached and cleared once
  // the span returns to the global heap.
  GlobalHeap G(testOptions());
  ThreadLocalHeap Alice(&G, 1);
  ThreadLocalHeap Bob(&G, 2);
  void *P = Alice.malloc(64);
  {
    Epoch::Section Guard(G.miniheapEpoch());
    MiniHeap *MH = G.miniheapFor(P);
    ASSERT_NE(MH, nullptr);
    EXPECT_EQ(MH->attachedOwner(), &Alice);
    EXPECT_NE(MH->attachedOwner(), &Bob);
  }
  Alice.free(P);
  Alice.releaseAll();
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(ThreadLocalHeapTest, FreeDispatchAcrossManyClasses) {
  // Interleaved frees across every size class land in the right
  // shuffle vector through the page-table dispatch (no per-class scan
  // to fall back on anymore).
  GlobalHeap G(testOptions());
  ThreadLocalHeap H(&G, 42);
  std::vector<std::pair<void *, size_t>> Ptrs;
  for (int Round = 0; Round < 64; ++Round)
    for (size_t Size = 16; Size <= 16384; Size *= 2) {
      void *P = H.malloc(Size);
      memset(P, 0x3C, Size);
      Ptrs.push_back({P, Size});
    }
  // Free in a different order than allocation (by class, descending).
  for (auto It = Ptrs.rbegin(); It != Ptrs.rend(); ++It)
    H.free(It->first);
  H.releaseAll();
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(ThreadLocalHeapTest, NonLocalFreeFallsThroughToGlobal) {
  GlobalHeap G(testOptions());
  ThreadLocalHeap Alice(&G, 1);
  ThreadLocalHeap Bob(&G, 2);
  void *P = Alice.malloc(64);
  // Bob frees Alice's pointer: remote free via the global heap, which
  // clears the bitmap bit but leaves Alice's shuffle vector alone.
  Bob.free(P);
  {
    Epoch::Section Guard(G.miniheapEpoch());
    MiniHeap *MH = G.miniheapFor(P);
    ASSERT_NE(MH, nullptr);
    EXPECT_TRUE(MH->isAttached()) << "span remains attached to Alice";
  }
  Alice.releaseAll();
  Bob.releaseAll();
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(ThreadLocalHeapTest, RemoteFreedSlotIsReusedOnReattach) {
  GlobalHeap G(testOptions());
  ThreadLocalHeap Alice(&G, 1);
  ThreadLocalHeap Bob(&G, 2);
  // Fill one full span.
  std::vector<void *> Ptrs;
  for (int I = 0; I < 256; ++I)
    Ptrs.push_back(Alice.malloc(16));
  // Bob remote-frees half of them.
  for (int I = 0; I < 256; I += 2)
    Bob.free(Ptrs[I]);
  // Alice keeps allocating: after her current vector refills, the
  // remote-freed slots come back.
  std::set<void *> Freed(Ptrs.begin(), Ptrs.end());
  int Recycled = 0;
  for (int I = 0; I < 512; ++I) {
    void *P = Alice.malloc(16);
    if (Freed.count(P))
      ++Recycled;
  }
  EXPECT_GT(Recycled, 0) << "remote-freed slots must be recycled";
}

TEST(ThreadLocalHeapTest, EverySizeClassRoundTrips) {
  GlobalHeap G(testOptions());
  ThreadLocalHeap H(&G, 42);
  for (int C = 0; C < kNumSizeClasses; ++C) {
    const size_t Size = sizeClassInfo(C).ObjectSize;
    void *P = H.malloc(Size);
    ASSERT_NE(P, nullptr) << "class " << C;
    memset(P, 0x3C, Size);
    EXPECT_EQ(G.usableSize(P), Size);
    H.free(P);
  }
  H.releaseAll();
  EXPECT_EQ(G.committedBytes(), 0u);
}

TEST(ThreadLocalHeapTest, WritesLandInDistinctMemory) {
  GlobalHeap G(testOptions());
  ThreadLocalHeap H(&G, 42);
  constexpr int N = 500;
  std::vector<uint64_t *> Ptrs;
  for (int I = 0; I < N; ++I) {
    auto *P = static_cast<uint64_t *>(H.malloc(sizeof(uint64_t)));
    *P = I;
    Ptrs.push_back(P);
  }
  for (int I = 0; I < N; ++I)
    ASSERT_EQ(*Ptrs[I], static_cast<uint64_t>(I));
  for (auto *P : Ptrs)
    H.free(P);
}

} // namespace
} // namespace mesh
