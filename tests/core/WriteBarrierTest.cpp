//===- WriteBarrierTest.cpp - Write barrier unit tests ---------------------===//

#include "core/WriteBarrier.h"

#include "arena/MemfdArena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

namespace mesh {
namespace {

TEST(WriteBarrierTest, EpochLifecycle) {
  WriteBarrier &WB = WriteBarrier::instance();
  EXPECT_FALSE(WB.epochActive());
  WB.beginEpoch();
  EXPECT_TRUE(WB.epochActive());
  WB.endEpoch();
  EXPECT_FALSE(WB.epochActive());
}

TEST(WriteBarrierTest, FaultOutsideArenasIsNotOurs) {
  WriteBarrier &WB = WriteBarrier::instance();
  int Stack = 0;
  EXPECT_FALSE(WB.handleFault(&Stack))
      << "faults outside registered arenas must be forwarded";
  EXPECT_FALSE(WB.handleFault(nullptr));
}

TEST(WriteBarrierTest, WriterBlocksUntilEpochEnds) {
  // Protect a page, start a writer that faults into the handler, then
  // end the epoch after remapping the page writable: the write must
  // complete and land.
  WriteBarrier &WB = WriteBarrier::instance();
  WB.ensureHandlerInstalled();
  MemfdArena Arena(16 * 1024 * 1024);
  WB.registerArena(Arena.base(), Arena.arenaBytes());

  char *Page = Arena.ptrForPage(0);
  Page[0] = 1;

  WB.beginEpoch();
  WB.addProtectedRange(Page, kPageSize);
  ASSERT_TRUE(Arena.protect(0, 1, /*ReadOnly=*/true));

  std::atomic<bool> WriterDone{false};
  std::thread Writer([&] {
    Page[0] = 42; // faults; handler waits for the epoch
    WriterDone.store(true);
  });

  // Give the writer time to fault and block.
  for (int I = 0; I < 50 && !WriterDone.load(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(WriterDone.load()) << "writer must be stalled by the barrier";

  ASSERT_TRUE(Arena.protect(0, 1, /*ReadOnly=*/false));
  WB.endEpoch();
  Writer.join();
  EXPECT_TRUE(WriterDone.load());
  EXPECT_EQ(Page[0], 42) << "blocked write must land after the epoch";

  WB.unregisterArena(Arena.base());
}

TEST(WriteBarrierTest, ReadsSucceedDuringEpoch) {
  WriteBarrier &WB = WriteBarrier::instance();
  WB.ensureHandlerInstalled();
  MemfdArena Arena(16 * 1024 * 1024);
  WB.registerArena(Arena.base(), Arena.arenaBytes());
  char *Page = Arena.ptrForPage(0);
  strcpy(Page, "readable");

  WB.beginEpoch();
  WB.addProtectedRange(Page, kPageSize);
  ASSERT_TRUE(Arena.protect(0, 1, true));
  EXPECT_STREQ(Page, "readable") << "reads proceed during relocation";
  ASSERT_TRUE(Arena.protect(0, 1, false));
  WB.endEpoch();
  WB.unregisterArena(Arena.base());
}

TEST(WriteBarrierTest, ArenaRegistrationLookup) {
  WriteBarrier &WB = WriteBarrier::instance();
  MemfdArena Arena(8 * 1024 * 1024);
  WB.registerArena(Arena.base(), Arena.arenaBytes());
  // No epoch active: handleFault on an arena address succeeds benignly
  // (treated as the epoch-just-ended race) rather than crashing.
  EXPECT_TRUE(WB.handleFault(Arena.base()));
  WB.unregisterArena(Arena.base());
  EXPECT_FALSE(WB.handleFault(Arena.base()))
      << "after unregistration the fault is foreign again";
}

} // namespace
} // namespace mesh
