//===- FaultInjectionTest.cpp - Syscall fault-storm integration tests ------===//
///
/// Drives the sys:: injection seam against the full allocator and pins
/// the three degradation layers end to end:
///
///   - allocation: a commit-refusal storm makes malloc return nullptr
///     (never crash, never corrupt), and the heap recovers completely
///     once the storm clears;
///   - meshing: a remap failure mid-pass rolls the pair back to two
///     valid unmeshed spans with every object's contents intact;
///   - give-back: a hole-punch failure degrades to deferred retry, and
///     the deferred pages really reach the kernel after the fault
///     clears.
///
/// The injector state is process-global, so every test disarms it on
/// entry and exit; a Runtime is always constructed *before* arming so
/// arena bring-up (which deliberately aborts on failure) is never in
/// the blast radius except where a test targets it on purpose
/// (ForkUnderFaultChildAborts).
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"
#include "support/Sys.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace mesh {
namespace {

/// Disarm on construction and destruction so a failing test cannot
/// leak an armed injector into its neighbors.
struct FaultGuard {
  FaultGuard() { sys::clearFaults(); }
  ~FaultGuard() { sys::clearFaults(); }
};

uint64_t readFaultStat(Runtime &R, const char *Name) {
  uint64_t Value = 0;
  size_t Len = sizeof(Value);
  EXPECT_EQ(R.mallctl(Name, &Value, &Len, nullptr, 0), 0) << Name;
  return Value;
}

/// The shadow model for storm tests: every successful allocation is
/// recorded with its fill pattern and later verified byte for byte.
struct ShadowEntry {
  char *Ptr;
  size_t Bytes;
  char Pattern;
};

/// Allocates \p Count large-ish spans (each needs a fresh commit, so a
/// commit storm bites on nearly every call), recording survivors in
/// the shadow model. Returns the number of nullptr returns.
size_t stormAllocate(Runtime &R, int Count, char Salt,
                     std::vector<ShadowEntry> &Shadow) {
  size_t Nulls = 0;
  for (int I = 0; I < Count; ++I) {
    // 16 KiB: a 4-page large allocation — every one commits pages.
    const size_t Bytes = 4 * kPageSize;
    auto *P = static_cast<char *>(R.malloc(Bytes));
    if (P == nullptr) {
      ++Nulls;
      continue;
    }
    const char Pattern = static_cast<char>((I * 131) ^ Salt);
    memset(P, Pattern, Bytes);
    Shadow.push_back({P, Bytes, Pattern});
  }
  return Nulls;
}

int countShadowMismatches(const std::vector<ShadowEntry> &Shadow) {
  int Bad = 0;
  for (const ShadowEntry &E : Shadow) {
    for (size_t B = 0; B < E.Bytes; ++B)
      if (E.Ptr[B] != E.Pattern) {
        ++Bad;
        break;
      }
  }
  return Bad;
}

TEST(FaultInjectionTest, CommitStormDegradesToNullAndRecovers) {
  FaultGuard Guard;
  Runtime R(testOptions());
  // Warm-up proves the heap works before the storm.
  void *Warm = R.malloc(64);
  ASSERT_NE(Warm, nullptr);

  const uint64_t InjectedBefore = readFaultStat(R, "faults.injected");
  const uint64_t OomBefore = readFaultStat(R, "faults.oom_returns");
  ASSERT_TRUE(sys::configureFaults("commit:ENOMEM:every=3"));

  constexpr int kThreads = 4;
  const int PerThread = static_cast<int>(stressScaled(300));
  std::vector<std::vector<ShadowEntry>> Shadows(kThreads);
  std::vector<size_t> Nulls(kThreads, 0);
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&, T] {
      Nulls[T] = stormAllocate(R, PerThread, static_cast<char>('A' + T),
                               Shadows[T]);
    });
  for (auto &Th : Threads)
    Th.join();

  size_t TotalNulls = 0, TotalLive = 0;
  for (int T = 0; T < kThreads; ++T) {
    TotalNulls += Nulls[T];
    TotalLive += Shadows[T].size();
    EXPECT_EQ(countShadowMismatches(Shadows[T]), 0)
        << "corruption in thread " << T << "'s survivors under the storm";
  }
  EXPECT_GT(TotalNulls, 0u) << "storm never bit: the test proved nothing";
  EXPECT_GT(TotalLive, 0u) << "no allocation survived a 1-in-3 storm";
  EXPECT_GT(readFaultStat(R, "faults.injected"), InjectedBefore);
  EXPECT_GT(readFaultStat(R, "faults.oom_returns"), OomBefore);

  // Full recovery: once the injector disarms, allocation never fails.
  sys::clearFaults();
  for (int I = 0; I < 100; ++I) {
    void *P = R.malloc(4 * kPageSize);
    ASSERT_NE(P, nullptr) << "heap did not recover after the storm";
    R.free(P);
  }
  for (auto &Shadow : Shadows)
    for (const ShadowEntry &E : Shadow)
      R.free(E.Ptr);
  R.free(Warm);
}

TEST(FaultInjectionTest, SeededRateStormMatchesShadowModel) {
  FaultGuard Guard;
  Runtime R(testOptions());
  ASSERT_TRUE(sys::configureFaults("commit:ENOMEM:rate=5,seed=42"));

  constexpr int kThreads = 4;
  const int PerThread = static_cast<int>(stressScaled(300));
  std::vector<std::vector<ShadowEntry>> Shadows(kThreads);
  std::vector<size_t> Nulls(kThreads, 0);
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&, T] {
      Nulls[T] = stormAllocate(R, PerThread, static_cast<char>('R' + T),
                               Shadows[T]);
    });
  for (auto &Th : Threads)
    Th.join();

  size_t TotalNulls = 0;
  for (int T = 0; T < kThreads; ++T) {
    TotalNulls += Nulls[T];
    EXPECT_EQ(countShadowMismatches(Shadows[T]), 0);
  }
  EXPECT_GT(TotalNulls, 0u)
      << "a 1-in-5 seeded storm over 1200 commits never fired";

  sys::clearFaults();
  void *P = R.malloc(4 * kPageSize);
  EXPECT_NE(P, nullptr);
  R.free(P);
  for (auto &Shadow : Shadows)
    for (const ShadowEntry &E : Shadow)
      R.free(E.Ptr);
}

TEST(FaultInjectionTest, TransientFaultsAreRetriedNotSurfaced) {
  FaultGuard Guard;
  Runtime R(testOptions());
  const uint64_t RetriedBefore = sys::faultsRetried();
  // EINTR on every second wrapped call of every op: the seam's bounded
  // retry must absorb all of it — the heap never sees a failure.
  ASSERT_TRUE(sys::configureFaults("all:EINTR:every=2"));
  std::vector<void *> Ptrs;
  for (int I = 0; I < 64; ++I) {
    void *P = R.malloc((I % 2) ? 4 * kPageSize : 64);
    ASSERT_NE(P, nullptr) << "transient fault leaked through as failure";
    Ptrs.push_back(P);
  }
  for (void *P : Ptrs)
    R.free(P); // punches go through fallocate: more retried EINTRs
  sys::clearFaults();
  EXPECT_GT(sys::faultsRetried(), RetriedBefore)
      << "the storm never exercised the retry path";
}

TEST(FaultInjectionTest, MeshRemapFailureRollsBackPair) {
  FaultGuard Guard;
  Runtime R(testOptions());
  // The MeshEndToEnd recipe: many sparse 16-byte spans so a mesh pass
  // has plenty of candidate pairs.
  const int Total = 64 * 256;
  std::vector<char *> All;
  for (int I = 0; I < Total; ++I) {
    auto *P = static_cast<char *>(R.malloc(16));
    ASSERT_NE(P, nullptr);
    snprintf(P, 16, "obj-%d", I);
    All.push_back(P);
  }
  std::vector<char *> Kept;
  for (int I = 0; I < Total; ++I) {
    if (I % 8 == 0)
      Kept.push_back(All[I]);
    else
      R.free(All[I]);
  }
  R.localHeap().releaseAll();

  const uint64_t MeshesBefore = readFaultStat(R, "stats.mesh_count");
  const uint64_t RollbacksBefore = readFaultStat(R, "faults.mesh_rollbacks");

  // Every remap attempt fails: each candidate pair must roll back to
  // two valid unmeshed spans and the pass must reclaim nothing.
  ASSERT_TRUE(sys::configureFaults("mmap:ENOMEM:every=1"));
  EXPECT_EQ(R.meshNow(), 0u) << "a fully-failing pass reclaimed memory";
  sys::clearFaults();

  EXPECT_EQ(readFaultStat(R, "stats.mesh_count"), MeshesBefore)
      << "a rolled-back pair was counted as meshed";
  EXPECT_GT(readFaultStat(R, "faults.mesh_rollbacks"), RollbacksBefore)
      << "no rollback was recorded: the storm never hit a pair";

  // Rollback is content-verifiable: every survivor still reads its
  // original bytes, and remains writable (the barrier was undone).
  int Idx = 0;
  for (char *P : Kept) {
    char Want[16];
    snprintf(Want, sizeof(Want), "obj-%d", Idx * 8);
    ASSERT_STREQ(P, Want) << "rollback corrupted object " << Idx;
    P[15] = 'w';
    ++Idx;
  }

  // With the injector clear the same candidates mesh for real, and the
  // contents still survive.
  EXPECT_GT(R.meshNow(), 0u) << "heap did not recover meshing ability";
  EXPECT_GT(readFaultStat(R, "stats.mesh_count"), MeshesBefore);
  Idx = 0;
  for (char *P : Kept) {
    char Want[16];
    snprintf(Want, sizeof(Want), "obj-%d", Idx * 8);
    ASSERT_STREQ(P, Want) << "post-recovery mesh lost contents";
    ASSERT_EQ(P[15], 'w') << "post-rollback write lost by the real mesh";
    ++Idx;
  }
  for (char *P : Kept)
    R.free(P);
}

TEST(FaultInjectionTest, PunchFailureDegradesAndLaterDrains) {
  FaultGuard Guard;
  Runtime R(testOptions());
  const uint64_t FallbacksBefore = readFaultStat(R, "faults.punch_fallbacks");

  // One binnable (power-of-two) span and one odd span, freed while
  // every hole punch fails: both degrade (MADV_DONTNEED + deferred
  // retry) instead of erroring or leaking.
  auto *Pow2 = static_cast<char *>(R.malloc(16 * kPageSize));
  auto *Odd = static_cast<char *>(R.malloc(5 * kPageSize));
  ASSERT_NE(Pow2, nullptr);
  ASSERT_NE(Odd, nullptr);
  memset(Pow2, 0xAB, 16 * kPageSize);
  memset(Odd, 0xCD, 5 * kPageSize);
  ASSERT_TRUE(sys::configureFaults("fallocate:ENOSPC:every=1"));
  R.free(Pow2);
  R.free(Odd);
  EXPECT_GT(readFaultStat(R, "faults.punch_fallbacks"), FallbacksBefore);

  // The un-punched pages must never surface through the demand-zero
  // (memset-skipping) calloc path still dirty.
  auto *Z = static_cast<unsigned char *>(R.calloc(1, 16 * kPageSize));
  ASSERT_NE(Z, nullptr);
  for (size_t B = 0; B < 16 * kPageSize; ++B)
    ASSERT_EQ(Z[B], 0) << "calloc returned a punch-fallback page dirty";
  R.free(Z); // punch also fails; parked again
  sys::clearFaults();

  // Once the fault clears, a flush drains the deferred spans and the
  // kernel's file charge agrees with our committed accounting again.
  R.global().flushDirtyPages();
  EXPECT_LE(pagesToBytes(R.global().kernelFilePages()), R.committedBytes())
      << "deferred punches did not reach the kernel after recovery";
}

TEST(FaultInjectionTest, ForkUnderFaultChildAborts) {
  FaultGuard Guard;
  Runtime R(testOptions());
  std::vector<void *> PreFork;
  for (int I = 0; I < 100; ++I) {
    void *P = R.malloc(128);
    ASSERT_NE(P, nullptr);
    memset(P, 0x5A, 128);
    PreFork.push_back(P);
  }

  // The documented abort-vs-degrade boundary (DESIGN.md "Failure
  // policy", fork-child exception): a child whose copy-to-fresh-memfd
  // rebuild fails cannot degrade — it still shares physical pages with
  // the parent, and continuing would reintroduce the fork-corruption
  // bug. It must abort, and the parent must be untouched.
  ASSERT_TRUE(sys::configureFaults("memfd_create:ENOMEM:every=1"));
  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // The atfork child handler aborts before this runs; reaching here
    // means the rebuild silently succeeded (or worse, was skipped).
    _exit(7);
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  EXPECT_TRUE(WIFSIGNALED(Status))
      << "child must die by signal, not exit (status " << Status << ")";
  if (WIFSIGNALED(Status)) {
    EXPECT_EQ(WTERMSIG(Status), SIGABRT);
  }
  sys::clearFaults();

  // Parent: fully functional, contents intact.
  for (void *P : PreFork) {
    const auto *C = static_cast<const unsigned char *>(P);
    for (int B = 0; B < 128; ++B)
      ASSERT_EQ(C[B], 0x5A) << "parent data damaged by the aborted fork";
  }
  void *After = R.malloc(4 * kPageSize);
  EXPECT_NE(After, nullptr);
  R.free(After);
  for (void *P : PreFork)
    R.free(P);
}

TEST(FaultInjectionTest, GarbageSpecsAreRejectedAndStayOff) {
  FaultGuard Guard;
  Runtime R(testOptions());
  const uint64_t InjectedBefore = sys::faultsInjected();
  // Same warn-and-keep-default contract as the other MESH_* env knobs.
  EXPECT_FALSE(sys::configureFaults("garbage"));
  EXPECT_FALSE(sys::configureFaults("commit:NOTANERRNO:every=3"));
  EXPECT_FALSE(sys::configureFaults("commit:ENOMEM:every=0"));
  EXPECT_FALSE(sys::configureFaults("notanop:ENOMEM:every=3"));
  EXPECT_FALSE(sys::configureFaults("commit:ENOMEM"));
  for (int I = 0; I < 50; ++I) {
    void *P = R.malloc(4 * kPageSize);
    ASSERT_NE(P, nullptr) << "rejected spec armed the injector anyway";
    R.free(P);
  }
  EXPECT_EQ(sys::faultsInjected(), InjectedBefore);
  // A valid spec still arms after the rejections (the failed parses
  // must not have latched a poisoned state). 64 pages is firmly on the
  // large-alloc path, where every span grab needs a commit — a
  // size-class request could be served commit-free from a span still
  // attached to this thread.
  EXPECT_TRUE(sys::configureFaults("commit:ENOMEM:every=1"));
  EXPECT_EQ(R.malloc(64 * kPageSize), nullptr);
  EXPECT_GT(sys::faultsInjected(), InjectedBefore);
  sys::clearFaults();
}

} // namespace
} // namespace mesh
