//===- InterposeTest.cpp - malloc interposition integration test -----------===//
///
/// This binary links the static shim, so *its* malloc/free/new/delete —
/// including every allocation gtest and libstdc++ make — are served by
/// Mesh. The tests verify the interposed functions behave like libc's
/// and that the default runtime is live underneath.
///
//===----------------------------------------------------------------------===//

#include "mesh/mesh.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

TEST(InterposeTest, MallocIsMesh) {
  // A pointer from the global malloc must be recognized by the Mesh
  // introspection API.
  void *P = malloc(100);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(mesh_malloc_usable_size(P), 112u)
      << "malloc is not routing through Mesh";
  free(P);
}

TEST(InterposeTest, CallocIsZeroed) {
  auto *P = static_cast<unsigned char *>(calloc(333, 3));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 999; ++I)
    ASSERT_EQ(P[I], 0);
  free(P);
}

TEST(InterposeTest, ReallocPreservesData) {
  auto *P = static_cast<char *>(malloc(32));
  strcpy(P, "interpose");
  P = static_cast<char *>(realloc(P, 100000));
  ASSERT_NE(P, nullptr);
  EXPECT_STREQ(P, "interpose");
  free(P);
}

TEST(InterposeTest, AlignedVariants) {
  void *P = nullptr;
  ASSERT_EQ(posix_memalign(&P, 256, 1000), 0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 256, 0u);
  free(P);
  P = aligned_alloc(1024, 2048);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 1024, 0u);
  free(P);
  P = valloc(100);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 4096, 0u);
  free(P);
}

TEST(InterposeTest, OperatorNewRoutesThroughMesh) {
  auto *P = new int(42);
  EXPECT_GE(malloc_usable_size(P), sizeof(int))
      << "operator new should bottom out in the interposed malloc";
  delete P;
}

TEST(InterposeTest, StdContainersWork) {
  std::vector<std::string> V;
  for (int I = 0; I < 10000; ++I)
    V.push_back("string-" + std::to_string(I));
  for (int I = 0; I < 10000; ++I)
    ASSERT_EQ(V[I], "string-" + std::to_string(I));
  V.clear();
  V.shrink_to_fit();
}

TEST(InterposeTest, ThreadsAllocateThroughShim) {
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([T] {
      std::vector<std::unique_ptr<char[]>> Keep;
      for (int I = 0; I < 1000; ++I) {
        auto Buf = std::make_unique<char[]>(64 + T);
        memset(Buf.get(), T, 64);
        Keep.push_back(std::move(Buf));
      }
      for (auto &Buf : Keep)
        ASSERT_EQ(Buf[0], static_cast<char>(Keep.size() ? T : T));
    });
  for (auto &Th : Threads)
    Th.join();
}

TEST(InterposeTest, MeshNowWorksOnDefaultHeap) {
  // Build fragmentation on the default heap, then trigger compaction
  // through the public API.
  std::vector<void *> Block;
  for (int I = 0; I < 16 * 256; ++I)
    Block.push_back(malloc(16));
  for (size_t I = 0; I < Block.size(); ++I)
    if (I % 8 != 0)
      free(Block[I]);
  const size_t Freed = mesh_mesh_now();
  // Spans may still be attached to this thread (the shim has no test
  // hook to rotate them), so do not require progress — only sanity.
  EXPECT_GE(Freed, 0u);
  EXPECT_GT(mesh_committed_bytes(), 0u);
  for (size_t I = 0; I < Block.size(); I += 8)
    free(Block[I]);
}

TEST(InterposeTest, MallctlReachable) {
  uint64_t Enabled = 0;
  size_t Len = sizeof(Enabled);
  ASSERT_EQ(mesh_mallctl("mesh.enabled", &Enabled, &Len, nullptr, 0), 0);
  EXPECT_EQ(Enabled, 1u);
}

} // namespace
