//===- InterposeTest.cpp - malloc interposition integration test -----------===//
///
/// This binary links the static shim, so *its* malloc/free/new/delete —
/// including every allocation gtest and libstdc++ make — are served by
/// Mesh. The tests verify the interposed functions behave like libc's
/// and that the default runtime is live underneath.
///
//===----------------------------------------------------------------------===//

#include "mesh/mesh.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

namespace {

TEST(InterposeTest, MallocIsMesh) {
  // A pointer from the global malloc must be recognized by the Mesh
  // introspection API.
  void *P = malloc(100);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(mesh_malloc_usable_size(P), 112u)
      << "malloc is not routing through Mesh";
  free(P);
}

TEST(InterposeTest, CallocIsZeroed) {
  auto *P = static_cast<unsigned char *>(calloc(333, 3));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 999; ++I)
    ASSERT_EQ(P[I], 0);
  free(P);
}

TEST(InterposeTest, ReallocPreservesData) {
  auto *P = static_cast<char *>(malloc(32));
  strcpy(P, "interpose");
  P = static_cast<char *>(realloc(P, 100000));
  ASSERT_NE(P, nullptr);
  EXPECT_STREQ(P, "interpose");
  free(P);
}

TEST(InterposeTest, AlignedVariants) {
  void *P = nullptr;
  ASSERT_EQ(posix_memalign(&P, 256, 1000), 0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 256, 0u);
  free(P);
  P = aligned_alloc(1024, 2048);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 1024, 0u);
  free(P);
  P = valloc(100);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 4096, 0u);
  free(P);
}

TEST(InterposeTest, AlignedAllocSmallAndBadAlignments) {
  // C11 allows alignments below sizeof(void*); posix_memalign does not.
  void *P = aligned_alloc(4, 64);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 4, 0u);
  free(P);
  // Non-power-of-two must fail cleanly with errno, not crash.
  errno = 0;
  EXPECT_EQ(aligned_alloc(24, 100), nullptr);
  EXPECT_EQ(errno, EINVAL);
  P = memalign(32, 100);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 32, 0u);
  free(P);
}

TEST(InterposeTest, PvallocRoundsToWholePages) {
  void *P = pvalloc(100);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 4096, 0u);
  EXPECT_GE(malloc_usable_size(P), 4096u);
  free(P);
}

TEST(InterposeTest, ReallocarrayChecksOverflow) {
  auto *P = static_cast<char *>(reallocarray(nullptr, 16, 8));
  ASSERT_NE(P, nullptr);
  memset(P, 7, 128);
  P = static_cast<char *>(reallocarray(P, 1000, 8));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P[100], 7);
  // nmemb * size overflow must fail with ENOMEM and leave the old
  // block untouched. (volatile so -Walloc-size-larger-than can't prove
  // the overflow at compile time — the runtime check is the test.)
  volatile size_t Huge = SIZE_MAX / 2;
  errno = 0;
  EXPECT_EQ(reallocarray(P, Huge, 16), nullptr);
  EXPECT_EQ(errno, ENOMEM);
  EXPECT_EQ(P[100], 7) << "failed reallocarray clobbered the block";
  free(P);
}

TEST(InterposeTest, FailedAllocationsSetErrno) {
  // The POSIX malloc contract at the libc surface: a failed allocation
  // returns nullptr *and* sets errno to ENOMEM. The runtime layers
  // only return nullptr; the shim owns errno. (volatile sizes so
  // -Walloc-size-larger-than cannot flag the intentionally-huge
  // requests at compile time.)
  volatile size_t Huge = SIZE_MAX / 2;
  errno = 0;
  EXPECT_EQ(malloc(Huge), nullptr);
  EXPECT_EQ(errno, ENOMEM);

  // calloc: both the count*size overflow path and the plain too-big
  // path.
  volatile size_t Count = SIZE_MAX / 2;
  errno = 0;
  EXPECT_EQ(calloc(Count, 3), nullptr);
  EXPECT_EQ(errno, ENOMEM);
  errno = 0;
  EXPECT_EQ(calloc(1, Huge), nullptr);
  EXPECT_EQ(errno, ENOMEM);

  // realloc: failure sets errno and leaves the old block intact. The
  // pointer is laundered through a volatile integer: gcc otherwise
  // assumes any realloc'd pointer is dead and flags the (intentional)
  // post-failure read as use-after-free.
  auto *P = static_cast<char *>(malloc(64));
  ASSERT_NE(P, nullptr);
  strcpy(P, "survives");
  volatile uintptr_t Saved = reinterpret_cast<uintptr_t>(P);
  errno = 0;
  EXPECT_EQ(realloc(P, Huge), nullptr);
  EXPECT_EQ(errno, ENOMEM);
  auto *Alias = reinterpret_cast<char *>(Saved);
  EXPECT_STREQ(Alias, "survives") << "failed realloc clobbered the block";
  free(Alias);

  // posix_memalign reports through its return value, not errno.
  void *Out = nullptr;
  errno = 0;
  EXPECT_EQ(posix_memalign(&Out, 64, Huge), ENOMEM);
  EXPECT_EQ(errno, 0) << "posix_memalign must not touch errno";
}

TEST(InterposeTest, MallocTrimRuns) {
  // Build some dirty pages (freed spans under the dirty budget), then
  // trim. The contract is "no crash, sane return"; whether pages were
  // actually released depends on what the rest of the suite left
  // dirty.
  std::vector<void *> Block;
  for (int I = 0; I < 8 * 256; ++I)
    Block.push_back(malloc(16));
  for (void *P : Block)
    free(P);
  const int Rc = malloc_trim(0);
  EXPECT_TRUE(Rc == 0 || Rc == 1);
}

TEST(InterposeTest, BackgroundRuntimeLiveUnderShim) {
  // The static shim's default runtime starts the background mesher
  // (MESH_BACKGROUND defaults on). If the environment disabled it,
  // the counters must still read cleanly as zero.
  uint64_t Enabled = 0;
  size_t Len = sizeof(Enabled);
  ASSERT_EQ(mesh_mallctl("background.enabled", &Enabled, &Len, nullptr, 0),
            0);
  uint64_t Wakeups = 0;
  Len = sizeof(Wakeups);
  ASSERT_EQ(mesh_mallctl("background.wakeups", &Wakeups, &Len, nullptr, 0),
            0);
  uint64_t Rss = 0;
  Len = sizeof(Rss);
  ASSERT_EQ(mesh_mallctl("pressure.rss_bytes", &Rss, &Len, nullptr, 0), 0);
  EXPECT_GT(Rss, 0u);
  if (Enabled == 0)
    GTEST_SKIP() << "background meshing disabled in this environment";
  // Give the 100 ms default wake interval a little room.
  for (int I = 0; I < 100 && Wakeups == 0; ++I) {
    usleep(10 * 1000);
    Len = sizeof(Wakeups);
    ASSERT_EQ(
        mesh_mallctl("background.wakeups", &Wakeups, &Len, nullptr, 0), 0);
  }
  EXPECT_GT(Wakeups, 0u);
}

TEST(InterposeTest, OperatorNewRoutesThroughMesh) {
  auto *P = new int(42);
  EXPECT_GE(malloc_usable_size(P), sizeof(int))
      << "operator new should bottom out in the interposed malloc";
  delete P;
}

TEST(InterposeTest, StdContainersWork) {
  std::vector<std::string> V;
  for (int I = 0; I < 10000; ++I)
    V.push_back("string-" + std::to_string(I));
  for (int I = 0; I < 10000; ++I)
    ASSERT_EQ(V[I], "string-" + std::to_string(I));
  V.clear();
  V.shrink_to_fit();
}

TEST(InterposeTest, ThreadsAllocateThroughShim) {
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([T] {
      std::vector<std::unique_ptr<char[]>> Keep;
      for (int I = 0; I < 1000; ++I) {
        auto Buf = std::make_unique<char[]>(64 + T);
        memset(Buf.get(), T, 64);
        Keep.push_back(std::move(Buf));
      }
      for (auto &Buf : Keep)
        ASSERT_EQ(Buf[0], static_cast<char>(Keep.size() ? T : T));
    });
  for (auto &Th : Threads)
    Th.join();
}

TEST(InterposeTest, MeshNowWorksOnDefaultHeap) {
  // Build fragmentation on the default heap, then trigger compaction
  // through the public API.
  std::vector<void *> Block;
  for (int I = 0; I < 16 * 256; ++I)
    Block.push_back(malloc(16));
  for (size_t I = 0; I < Block.size(); ++I)
    if (I % 8 != 0)
      free(Block[I]);
  const size_t Freed = mesh_mesh_now();
  // Spans may still be attached to this thread (the shim has no test
  // hook to rotate them), so do not require progress — only sanity.
  EXPECT_GE(Freed, 0u);
  EXPECT_GT(mesh_committed_bytes(), 0u);
  for (size_t I = 0; I < Block.size(); I += 8)
    free(Block[I]);
}

TEST(InterposeTest, MallctlReachable) {
  uint64_t Enabled = 0;
  size_t Len = sizeof(Enabled);
  ASSERT_EQ(mesh_mallctl("mesh.enabled", &Enabled, &Len, nullptr, 0), 0);
  EXPECT_EQ(Enabled, 1u);
}

} // namespace
