//===- AllocatorFuzzTest.cpp - Randomized differential fuzzing -------------===//
///
/// Drives random malloc/free/realloc sequences against a shadow model
/// (size -> fill pattern) across several heap configurations, with
/// periodic forced meshing. Any divergence means heap corruption.
///
/// Two layers: a single-threaded parameterized sweep over the heap's
/// configuration axes, and a multi-threaded differential fuzz that
/// drives malloc/calloc/realloc/free across *all 24 size classes* from
/// N threads at once — every per-class shard of the global heap sees
/// concurrent refills, remote frees, and mesh passes. Runs in the ASan
/// and TSan CI jobs; the shadow model (exact size + fill pattern per
/// live object) turns any cross-shard bookkeeping bug into a visible
/// divergence.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "core/SizeClass.h"

#include "../core/TestConfig.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

namespace mesh {
namespace {

struct Shadow {
  char *Ptr;
  size_t Size;
  unsigned char Pattern;
};

void fill(Shadow &S) { memset(S.Ptr, S.Pattern, S.Size); }

void check(const Shadow &S) {
  for (size_t I = 0; I < S.Size; ++I)
    ASSERT_EQ(static_cast<unsigned char>(S.Ptr[I]), S.Pattern)
        << "byte " << I << " of " << S.Size << "-byte object corrupted";
}

struct FuzzConfig {
  const char *Name;
  bool Meshing;
  bool Randomized;
};

class AllocatorFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(AllocatorFuzz, DifferentialAgainstShadowModel) {
  const FuzzConfig &Cfg = GetParam();
  MeshOptions Opts = testOptions(0xF00D + Cfg.Meshing * 2 + Cfg.Randomized);
  Opts.MeshingEnabled = Cfg.Meshing;
  Opts.Randomized = Cfg.Randomized;
  Runtime R(Opts);
  Rng Driver(20240611);

  std::vector<Shadow> Live;
  unsigned char NextPattern = 1;
  for (int Step = 0; Step < 60000; ++Step) {
    const uint32_t Op = Driver.inRange(0, 99);
    if (Live.empty() || Op < 45) {
      // malloc: sizes biased small, occasionally large.
      size_t Size;
      const uint32_t Kind = Driver.inRange(0, 9);
      if (Kind < 7)
        Size = 1 + Driver.inRange(0, 1023);
      else if (Kind < 9)
        Size = 1024 + Driver.inRange(0, 15360);
      else
        Size = 16385 + Driver.inRange(0, 100000);
      auto *P = static_cast<char *>(R.malloc(Size));
      ASSERT_NE(P, nullptr);
      Shadow S{P, Size, NextPattern};
      NextPattern = NextPattern == 255 ? 1 : NextPattern + 1;
      fill(S);
      Live.push_back(S);
    } else if (Op < 80) {
      // free a random object (after verifying it).
      const size_t Idx = Driver.inRange(0, Live.size() - 1);
      check(Live[Idx]);
      R.free(Live[Idx].Ptr);
      Live[Idx] = Live.back();
      Live.pop_back();
    } else if (Op < 90) {
      // realloc a random object.
      const size_t Idx = Driver.inRange(0, Live.size() - 1);
      check(Live[Idx]);
      const size_t NewSize = 1 + Driver.inRange(0, 4095);
      auto *P = static_cast<char *>(R.realloc(Live[Idx].Ptr, NewSize));
      ASSERT_NE(P, nullptr);
      const size_t Preserved =
          NewSize < Live[Idx].Size ? NewSize : Live[Idx].Size;
      for (size_t I = 0; I < Preserved; ++I)
        ASSERT_EQ(static_cast<unsigned char>(P[I]), Live[Idx].Pattern);
      Live[Idx].Ptr = P;
      Live[Idx].Size = NewSize;
      fill(Live[Idx]);
    } else if (Op < 98) {
      // verify a random survivor.
      check(Live[Driver.inRange(0, Live.size() - 1)]);
    } else {
      // rotate spans to the global heap and force a mesh pass.
      R.localHeap().releaseAll();
      R.meshNow();
    }
  }
  for (auto &S : Live) {
    check(S);
    R.free(S.Ptr);
  }
  R.localHeap().releaseAll();
  EXPECT_EQ(R.committedBytes(), 0u)
      << "all memory must return when every object is freed";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AllocatorFuzz,
    ::testing::Values(FuzzConfig{"full", true, true},
                      FuzzConfig{"nomesh", false, true},
                      FuzzConfig{"norand", true, false},
                      FuzzConfig{"neither", false, false}),
    [](const ::testing::TestParamInfo<FuzzConfig> &Info) {
      return Info.param.Name;
    });

/// Cross-thread handoff pool: objects (with their shadow state) posted
/// by one thread and later verified + freed by another, so remote
/// frees land on every shard from every thread. A plain mutex is fine
/// here — the pool is test scaffolding, not the system under test.
class HandoffPool {
public:
  void post(const Shadow &S) {
    std::lock_guard<std::mutex> Guard(Mu);
    Pool.push_back(S);
  }

  bool take(Rng &Driver, Shadow *Out) {
    std::lock_guard<std::mutex> Guard(Mu);
    if (Pool.empty())
      return false;
    const size_t Idx = Driver.inRange(0, Pool.size() - 1);
    *Out = Pool[Idx];
    Pool[Idx] = Pool.back();
    Pool.pop_back();
    return true;
  }

  std::vector<Shadow> drain() {
    std::lock_guard<std::mutex> Guard(Mu);
    std::vector<Shadow> Rest;
    Rest.swap(Pool);
    return Rest;
  }

private:
  std::mutex Mu;
  std::vector<Shadow> Pool;
};

/// The multi-threaded differential fuzz: every thread works all 24
/// size classes (exact class sizes, so each shard's bins, stash, and
/// refill path are exercised by name) plus occasional large objects,
/// through malloc, calloc (zero-check before filling), realloc, local
/// frees, and remote frees of objects another thread allocated. One
/// thread doubles as the mesher, forcing passes while the others run.
TEST(AllocatorFuzzMT, AllClassesAcrossThreads) {
  MeshOptions Opts = testOptions(0x5A4D);
  Runtime R(Opts);

  constexpr int kThreads = 4;
  // Acceptance floor is 10k ops/thread; the CI stress soak doubles it.
  const size_t OpsPerThread = stressScaled(12000);

  HandoffPool Pool;
  std::atomic<uint64_t> RemoteVerified{0};
  // Object *contents* vs. forced mesh passes: during a pass the
  // consolidation memcpy races application reads/writes by design —
  // the mprotect write barrier serializes them physically, which TSan
  // cannot see (tsan.supp covers the copy only when its stack
  // restores, and this test's deep histories often lose it). So
  // content access (fill/check/realloc/calloc, which read or write
  // object bytes) takes this lock shared and the forced pass takes it
  // exclusive. Allocator *metadata* — refills, drains, remote frees,
  // shard locks, bitmap claims — stays completely unserialized: that
  // concurrency is what this test exists to break.
  std::shared_mutex ContentMu;

  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&, T] {
      Rng Driver(0xFA220000 + T);
      std::vector<Shadow> Live;
      unsigned char NextPattern = static_cast<unsigned char>(1 + T * 60);
      auto BumpPattern = [&] {
        NextPattern = NextPattern >= 250 ? static_cast<unsigned char>(1)
                                         : static_cast<unsigned char>(
                                               NextPattern + 1);
      };
      for (size_t Step = 0; Step < OpsPerThread; ++Step) {
        const uint32_t Op = Driver.inRange(0, 99);
        if (Live.empty() || Op < 40) {
          // Allocate: usually an exact size-class size (uniform over
          // all 24 classes), sometimes an odd intra-class size, rarely
          // large. Every shard's refill path gets continuous traffic.
          size_t Size;
          const uint32_t Kind = Driver.inRange(0, 19);
          if (Kind < 16) {
            const int Class =
                static_cast<int>(Driver.inRange(0, kNumSizeClasses - 1));
            Size = objectSizeForClass(Class);
            if (Kind >= 12 && Size > 1) // interior size, same class
              Size -= Driver.inRange(1, static_cast<uint32_t>(
                                            Size > 16 ? 15 : Size - 1));
          } else if (Kind < 19) {
            Size = 1 + Driver.inRange(0, 16383);
          } else {
            Size = 16385 + Driver.inRange(0, 65536);
          }
          std::shared_lock<std::shared_mutex> Content(ContentMu);
          char *P;
          if (Driver.inRange(0, 3) == 0) {
            // calloc lane: returned memory must read back zero before
            // the shadow pattern goes in (pins the zero-skip path for
            // recycled vs pristine spans).
            P = static_cast<char *>(R.calloc(1, Size));
            ASSERT_NE(P, nullptr);
            for (size_t I = 0; I < Size; ++I)
              ASSERT_EQ(P[I], 0) << "calloc returned dirty memory at "
                                 << I << " of " << Size;
          } else {
            P = static_cast<char *>(R.malloc(Size));
            ASSERT_NE(P, nullptr);
          }
          ASSERT_GE(R.usableSize(P), Size);
          Shadow S{P, Size, NextPattern};
          BumpPattern();
          fill(S);
          Live.push_back(S);
        } else if (Op < 65) {
          // Free one of our own (verify first).
          const size_t Idx = Driver.inRange(0, Live.size() - 1);
          {
            std::shared_lock<std::shared_mutex> Content(ContentMu);
            check(Live[Idx]);
          }
          R.free(Live[Idx].Ptr);
          Live[Idx] = Live.back();
          Live.pop_back();
        } else if (Op < 75) {
          // Hand one of ours to the pool for another thread to free.
          const size_t Idx = Driver.inRange(0, Live.size() - 1);
          Pool.post(Live[Idx]);
          Live[Idx] = Live.back();
          Live.pop_back();
        } else if (Op < 85) {
          // Verify + remote-free an object some other thread made.
          Shadow S;
          if (Pool.take(Driver, &S)) {
            {
              std::shared_lock<std::shared_mutex> Content(ContentMu);
              check(S);
            }
            R.free(S.Ptr);
            RemoteVerified.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (Op < 93) {
          // realloc one of ours across class boundaries (the shared
          // lock also covers realloc's internal object copy).
          const size_t Idx = Driver.inRange(0, Live.size() - 1);
          std::shared_lock<std::shared_mutex> Content(ContentMu);
          check(Live[Idx]);
          const size_t NewSize =
              1 + Driver.inRange(0, 2 * kMaxSizeClassedObject);
          auto *P =
              static_cast<char *>(R.realloc(Live[Idx].Ptr, NewSize));
          ASSERT_NE(P, nullptr);
          const size_t Preserved =
              NewSize < Live[Idx].Size ? NewSize : Live[Idx].Size;
          for (size_t I = 0; I < Preserved; ++I)
            ASSERT_EQ(static_cast<unsigned char>(P[I]), Live[Idx].Pattern);
          Live[Idx].Ptr = P;
          Live[Idx].Size = NewSize;
          fill(Live[Idx]);
        } else if (Op < 98) {
          std::shared_lock<std::shared_mutex> Content(ContentMu);
          check(Live[Driver.inRange(0, Live.size() - 1)]);
        } else {
          // Rotate spans to the global heap; thread 0 also forces a
          // mesh pass so consolidation races the other threads'
          // metadata work (and, under the exclusive content lock,
          // relocates their live objects out from under later checks).
          R.localHeap().releaseAll();
          if (T == 0) {
            std::unique_lock<std::shared_mutex> Content(ContentMu);
            R.meshNow();
          }
        }
      }
      for (auto &S : Live) {
        {
          std::shared_lock<std::shared_mutex> Content(ContentMu);
          check(S);
        }
        R.free(S.Ptr);
      }
      R.localHeap().releaseAll();
    });
  for (auto &Th : Threads)
    Th.join();

  // Whatever is still parked in the pool is live and must be intact.
  for (auto &S : Pool.drain()) {
    check(S);
    R.free(S.Ptr);
  }
  EXPECT_GT(RemoteVerified.load(), 0u)
      << "the cross-thread lane never exercised a remote free";

  // Everything was freed; the forced pass visits and drains every
  // shard (empty transitions already drained inline), after which the
  // heap must be back to (nearly) nothing committed.
  R.free(R.malloc(16));
  R.localHeap().releaseAll();
  R.meshNow();
  EXPECT_LT(R.committedBytes(), size_t{4} * 1024 * 1024)
      << "multi-threaded fuzz leaked spans";
}

} // namespace
} // namespace mesh
