//===- AllocatorFuzzTest.cpp - Randomized differential fuzzing -------------===//
///
/// Drives random malloc/free/realloc sequences against a shadow model
/// (size -> fill pattern) across several heap configurations, with
/// periodic forced meshing. Any divergence means heap corruption.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "../core/TestConfig.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace mesh {
namespace {

struct Shadow {
  char *Ptr;
  size_t Size;
  unsigned char Pattern;
};

void fill(Shadow &S) { memset(S.Ptr, S.Pattern, S.Size); }

void check(const Shadow &S) {
  for (size_t I = 0; I < S.Size; ++I)
    ASSERT_EQ(static_cast<unsigned char>(S.Ptr[I]), S.Pattern)
        << "byte " << I << " of " << S.Size << "-byte object corrupted";
}

struct FuzzConfig {
  const char *Name;
  bool Meshing;
  bool Randomized;
};

class AllocatorFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(AllocatorFuzz, DifferentialAgainstShadowModel) {
  const FuzzConfig &Cfg = GetParam();
  MeshOptions Opts = testOptions(0xF00D + Cfg.Meshing * 2 + Cfg.Randomized);
  Opts.MeshingEnabled = Cfg.Meshing;
  Opts.Randomized = Cfg.Randomized;
  Runtime R(Opts);
  Rng Driver(20240611);

  std::vector<Shadow> Live;
  unsigned char NextPattern = 1;
  for (int Step = 0; Step < 60000; ++Step) {
    const uint32_t Op = Driver.inRange(0, 99);
    if (Live.empty() || Op < 45) {
      // malloc: sizes biased small, occasionally large.
      size_t Size;
      const uint32_t Kind = Driver.inRange(0, 9);
      if (Kind < 7)
        Size = 1 + Driver.inRange(0, 1023);
      else if (Kind < 9)
        Size = 1024 + Driver.inRange(0, 15360);
      else
        Size = 16385 + Driver.inRange(0, 100000);
      auto *P = static_cast<char *>(R.malloc(Size));
      ASSERT_NE(P, nullptr);
      Shadow S{P, Size, NextPattern};
      NextPattern = NextPattern == 255 ? 1 : NextPattern + 1;
      fill(S);
      Live.push_back(S);
    } else if (Op < 80) {
      // free a random object (after verifying it).
      const size_t Idx = Driver.inRange(0, Live.size() - 1);
      check(Live[Idx]);
      R.free(Live[Idx].Ptr);
      Live[Idx] = Live.back();
      Live.pop_back();
    } else if (Op < 90) {
      // realloc a random object.
      const size_t Idx = Driver.inRange(0, Live.size() - 1);
      check(Live[Idx]);
      const size_t NewSize = 1 + Driver.inRange(0, 4095);
      auto *P = static_cast<char *>(R.realloc(Live[Idx].Ptr, NewSize));
      ASSERT_NE(P, nullptr);
      const size_t Preserved =
          NewSize < Live[Idx].Size ? NewSize : Live[Idx].Size;
      for (size_t I = 0; I < Preserved; ++I)
        ASSERT_EQ(static_cast<unsigned char>(P[I]), Live[Idx].Pattern);
      Live[Idx].Ptr = P;
      Live[Idx].Size = NewSize;
      fill(Live[Idx]);
    } else if (Op < 98) {
      // verify a random survivor.
      check(Live[Driver.inRange(0, Live.size() - 1)]);
    } else {
      // rotate spans to the global heap and force a mesh pass.
      R.localHeap().releaseAll();
      R.meshNow();
    }
  }
  for (auto &S : Live) {
    check(S);
    R.free(S.Ptr);
  }
  R.localHeap().releaseAll();
  EXPECT_EQ(R.committedBytes(), 0u)
      << "all memory must return when every object is freed";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AllocatorFuzz,
    ::testing::Values(FuzzConfig{"full", true, true},
                      FuzzConfig{"nomesh", false, true},
                      FuzzConfig{"norand", true, false},
                      FuzzConfig{"neither", false, false}),
    [](const ::testing::TestParamInfo<FuzzConfig> &Info) {
      return Info.param.Name;
    });

} // namespace
} // namespace mesh
