//===- ArenaPropertyTest.cpp - Span-manager accounting properties ----------===//
///
/// Differential test of MeshableArena against a reference model: after
/// any random sequence of span allocations and frees, the arena's
/// committed-page accounting must equal the model's, and — after
/// flushing dirty pages — the kernel's file-block count must agree
/// exactly with both.
///
//===----------------------------------------------------------------------===//

#include "core/MeshableArena.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

namespace mesh {
namespace {

struct LiveSpan {
  uint32_t Off;
  uint32_t Pages;
};

class ArenaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArenaProperty, AccountingMatchesModelAndKernel) {
  MeshableArena Arena(256 * 1024 * 1024, /*MaxDirtyBytes=*/64 * kPageSize);
  Rng Driver(GetParam());
  std::vector<LiveSpan> Live;
  size_t ModelLivePages = 0;

  const uint32_t Lengths[] = {1, 2, 4, 8, 16, 32, 5, 11};
  for (int Step = 0; Step < 4000; ++Step) {
    const bool DoAlloc = Live.empty() || Driver.withProbability(0.55);
    if (DoAlloc) {
      const uint32_t Pages = Lengths[Driver.inRange(0, 7)];
      bool Clean = false;
      const uint32_t Off = Arena.allocLargeSpan(Pages, &Clean);
      // Touch every page so kernel blocks match our commit accounting.
      memset(Arena.arenaBase() + pagesToBytes(Off), 0x5A,
             pagesToBytes(Pages));
      if (Clean) {
        // Clean spans must read zero before the touch; verify on the
        // next allocation instead (cheap spot check): here just track.
      }
      Live.push_back(LiveSpan{Off, Pages});
      ModelLivePages += Pages;
    } else {
      const size_t Idx = Driver.inRange(0, Live.size() - 1);
      const LiveSpan S = Live[Idx];
      Live[Idx] = Live.back();
      Live.pop_back();
      ModelLivePages -= S.Pages;
      if (Driver.withProbability(0.5))
        Arena.freeDirtyLargeSpan(S.Off, S.Pages);
      else
        Arena.freeReleasedLargeSpan(S.Off, S.Pages);
    }
    // Invariant: committed = live + dirty-cached.
    ASSERT_EQ(Arena.committedPages(), ModelLivePages + Arena.dirtyPages())
        << "step " << Step;
  }

  Arena.flushDirty();
  EXPECT_EQ(Arena.committedPages(), ModelLivePages);
  EXPECT_EQ(Arena.vm().kernelFilePages(), ModelLivePages)
      << "kernel ground truth must agree after the flush";

  for (const LiveSpan &S : Live)
    Arena.freeReleasedLargeSpan(S.Off, S.Pages);
  EXPECT_EQ(Arena.committedPages(), 0u);
  EXPECT_EQ(Arena.vm().kernelFilePages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ArenaPropertyTest, CleanSpansAlwaysReadZero) {
  MeshableArena Arena(64 * 1024 * 1024, 0);
  Rng Driver(77);
  for (int Round = 0; Round < 200; ++Round) {
    bool Clean = false;
    const uint32_t Pages = 1u << Driver.inRange(0, 4);
    const uint32_t Off = Arena.allocLargeSpan(Pages, &Clean);
    char *P = Arena.arenaBase() + pagesToBytes(Off);
    if (Clean) {
      for (size_t I = 0; I < pagesToBytes(Pages); I += 509)
        ASSERT_EQ(P[I], 0) << "clean span has stale bytes";
    }
    memset(P, 0xEE, pagesToBytes(Pages));
    Arena.freeReleasedLargeSpan(Off, Pages); // punched: must be zero on reuse
  }
}

} // namespace
} // namespace mesh
