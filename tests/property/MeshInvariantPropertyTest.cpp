//===- MeshInvariantPropertyTest.cpp - Whole-heap invariant sweeps ---------===//
///
/// Parameterized end-to-end sweeps: for every (size class, survival
/// rate) combination, meshing must preserve contents and addresses and
/// release a predictable amount of physical memory.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "../core/TestConfig.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

namespace mesh {
namespace {

using Params = std::tuple<size_t /*ObjSize*/, int /*KeepOneIn*/>;

class MeshInvariantSweep : public ::testing::TestWithParam<Params> {};

TEST_P(MeshInvariantSweep, ContentsSurviveAndMemoryShrinks) {
  const auto [ObjSize, KeepOneIn] = GetParam();
  Runtime R(testOptions(static_cast<uint64_t>(ObjSize * 31 + KeepOneIn)));

  // Fill ~48 spans of this class, then keep 1-in-KeepOneIn objects.
  int Class = -1;
  ASSERT_TRUE(sizeClassForSize(ObjSize, &Class));
  const uint32_t PerSpan = sizeClassInfo(Class).ObjectCount;
  const int Total = static_cast<int>(48 * PerSpan);

  std::vector<std::pair<char *, uint64_t>> Kept;
  std::vector<char *> All;
  Rng Stamps(9);
  for (int I = 0; I < Total; ++I) {
    auto *P = static_cast<char *>(R.malloc(ObjSize));
    ASSERT_NE(P, nullptr);
    const uint64_t Stamp = Stamps.next();
    memcpy(P, &Stamp, sizeof(Stamp));
    // Also stamp the tail byte to catch short/misdirected copies.
    P[ObjSize - 1] = static_cast<char>(Stamp >> 56);
    All.push_back(P);
    if (I % KeepOneIn == 0)
      Kept.push_back({P, Stamp});
  }
  for (int I = 0; I < Total; ++I)
    if (I % KeepOneIn != 0)
      R.free(All[I]);
  R.localHeap().releaseAll();

  const size_t Before = R.committedBytes();
  const size_t Freed = R.meshNow();
  EXPECT_EQ(R.committedBytes(), Before - Freed);

  for (auto &[P, Stamp] : Kept) {
    uint64_t Got;
    memcpy(&Got, P, sizeof(Got));
    ASSERT_EQ(Got, Stamp) << "header corrupted (size " << ObjSize << ")";
    ASSERT_EQ(P[ObjSize - 1], static_cast<char>(Stamp >> 56))
        << "tail corrupted (size " << ObjSize << ")";
  }
  // Sparse heaps must reclaim something; nearly-full ones may not.
  if (KeepOneIn >= 8) {
    EXPECT_GT(Freed, 0u) << "no meshing on a sparse heap (size " << ObjSize
                         << ", keep 1/" << KeepOneIn << ")";
  }
  for (auto &[P, Stamp] : Kept)
    R.free(P);
  R.localHeap().releaseAll();
  EXPECT_EQ(R.committedBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ClassAndSurvival, MeshInvariantSweep,
    ::testing::Combine(::testing::Values(size_t{16}, size_t{48}, size_t{128},
                                         size_t{256}, size_t{1024},
                                         size_t{2048}),
                       ::testing::Values(2, 8, 32)),
    [](const ::testing::TestParamInfo<Params> &Info) {
      return "size" + std::to_string(std::get<0>(Info.param)) + "_keep1in" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(MeshInvariantProperty, RobsonStyleAdversaryIsContained) {
  // A Robson-style fragmentation adversary: allocate a dense block of
  // small objects, free everything except one survivor per span-sized
  // stride, repeat at growing sizes. Without compaction the heap keeps
  // every span alive; with meshing the survivors consolidate.
  Runtime R(testOptions(4242));
  std::vector<char *> Survivors;
  for (int Round = 0; Round < 6; ++Round) {
    std::vector<char *> Block;
    for (int I = 0; I < 32 * 256; ++I)
      Block.push_back(static_cast<char *>(R.malloc(16)));
    for (size_t I = 0; I < Block.size(); ++I) {
      if (I % 256 == 17)
        Survivors.push_back(Block[I]);
      else
        R.free(Block[I]);
    }
    R.localHeap().releaseAll();
    R.meshNow();
  }
  // 6 rounds x 32 survivors of 16B = ~3 KiB live. Un-meshed this pins
  // 6*32 pages = 768 KiB; meshing must do much better.
  EXPECT_LT(R.committedBytes(), 300u * 1024)
      << "adversarial survivors should consolidate onto few pages";
  for (char *P : Survivors)
    R.free(P);
}

} // namespace
} // namespace mesh
