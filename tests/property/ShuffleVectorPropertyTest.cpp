//===- ShuffleVectorPropertyTest.cpp - Randomness property tests ----------===//
///
/// Statistical properties behind Section 4.2/5: allocation order out of
/// a shuffle vector is a uniform random permutation, and the
/// free-then-swap maintenance step preserves uniformity. These are the
/// properties the meshing probability analysis depends on.
///
//===----------------------------------------------------------------------===//

#include "core/MiniHeap.h"
#include "core/ShuffleVector.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace mesh {
namespace {

class ShuffleUniformity : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShuffleUniformity, FirstAllocationIsUniformOverOffsets) {
  // Attach repeatedly and record which offset pops first; a chi-squared
  // test checks uniformity across all slots.
  const uint32_t ObjCount = GetParam();
  const uint32_t ObjSize = kPageSize / ObjCount;
  std::vector<char> Buffer(kPageSize);
  Rng Random(GetParam() * 7919 + 3);
  std::vector<int> Counts(ObjCount, 0);
  const int Trials = 2000 * ObjCount / 16;
  for (int T = 0; T < Trials; ++T) {
    MiniHeap MH(0, 1, ObjSize, ObjCount, 0, true);
    ShuffleVector V;
    V.init(&Random, true);
    V.attach(&MH, Buffer.data());
    char *P = static_cast<char *>(V.malloc());
    ++Counts[(P - Buffer.data()) / ObjSize];
    V.detach();
  }
  const double Expected = static_cast<double>(Trials) / ObjCount;
  double Chi2 = 0;
  for (int C : Counts) {
    const double D = C - Expected;
    Chi2 += D * D / Expected;
  }
  // 99.9% critical values are ~2.6x dof for the sizes used here; use a
  // generous 3x bound to keep flake probability negligible.
  EXPECT_LT(Chi2, 3.0 * ObjCount)
      << "first-allocation offsets not uniform for count " << ObjCount;
}

INSTANTIATE_TEST_SUITE_P(SpanSizes, ShuffleUniformity,
                         ::testing::Values(16u, 32u, 64u, 128u, 256u));

TEST(ShuffleVectorProperty, PermutationUniformityOverSmallSpan) {
  // For a 4-slot span there are 24 permutations; each should appear
  // with probability ~1/24.
  std::vector<char> Buffer(kPageSize);
  Rng Random(1234);
  std::array<int, 256> PermCounts{}; // index = base-4 encoding
  const int Trials = 48000;
  for (int T = 0; T < Trials; ++T) {
    MiniHeap MH(0, 1, 1024, 4, 19, true);
    ShuffleVector V;
    V.init(&Random, true);
    V.attach(&MH, Buffer.data());
    int Code = 0;
    for (int I = 0; I < 4; ++I) {
      char *P = static_cast<char *>(V.malloc());
      Code = Code * 4 + static_cast<int>((P - Buffer.data()) / 1024);
    }
    ++PermCounts[Code];
  }
  int NonZero = 0;
  double Chi2 = 0;
  const double Expected = Trials / 24.0;
  for (int Code = 0; Code < 256; ++Code) {
    if (PermCounts[Code] == 0)
      continue;
    ++NonZero;
    const double D = PermCounts[Code] - Expected;
    Chi2 += D * D / Expected;
  }
  EXPECT_EQ(NonZero, 24) << "exactly the 24 valid permutations occur";
  EXPECT_LT(Chi2, 2.0 * 23) << "permutations roughly equiprobable";
}

TEST(ShuffleVectorProperty, FreeSwapPreservesUniformity) {
  // After a malloc/free churn phase, the *next* allocation must still
  // be uniform over the free slots (the incremental Fisher-Yates step
  // in free() is what guarantees this).
  std::vector<char> Buffer(kPageSize);
  Rng Random(777);
  Rng Driver(888);
  constexpr uint32_t ObjCount = 16;
  constexpr uint32_t ObjSize = 256;
  std::vector<int> Counts(ObjCount, 0);
  const int Trials = 40000;
  for (int T = 0; T < Trials; ++T) {
    MiniHeap MH(0, 1, ObjSize, ObjCount, 11, true);
    ShuffleVector V;
    V.init(&Random, true);
    V.attach(&MH, Buffer.data());
    // Allocate everything, then free everything in a fixed order.
    std::vector<void *> Ptrs;
    while (!V.isExhausted())
      Ptrs.push_back(V.malloc());
    for (void *P : Ptrs)
      V.free(P);
    // Churn a little more.
    for (int I = 0; I < 8; ++I)
      V.free(V.malloc());
    char *P = static_cast<char *>(V.malloc());
    ++Counts[(P - Buffer.data()) / ObjSize];
    V.detach();
  }
  const double Expected = static_cast<double>(Trials) / ObjCount;
  double Chi2 = 0;
  for (int C : Counts) {
    const double D = C - Expected;
    Chi2 += D * D / Expected;
  }
  EXPECT_LT(Chi2, 45.0) << "chi2(15 dof) 99.9% critical value is 37.7; "
                           "allow slack for the churn pattern";
}

TEST(ShuffleVectorProperty, TwoSpansMeshWithExpectedProbability) {
  // Section 2.2: two spans with n/2 random objects each mesh with a
  // computable probability. For 16-slot spans with 4 objects each:
  //   q = C(12,4)/C(16,4) = 495/1820 ~= 0.272.
  std::vector<char> Buffer(2 * kPageSize);
  Rng Random(31415);
  const int Trials = 20000;
  int Meshable = 0;
  for (int T = 0; T < Trials; ++T) {
    MiniHeap A(0, 1, 256, 16, 11, true);
    MiniHeap B(1, 1, 256, 16, 11, true);
    for (MiniHeap *MH : {&A, &B}) {
      ShuffleVector V;
      V.init(&Random, true);
      V.attach(MH, Buffer.data());
      // Allocate 4 random slots, then return the rest via detach.
      for (int I = 0; I < 4; ++I)
        V.malloc();
      V.detach();
    }
    Meshable += A.bitmap().isMeshableWith(B.bitmap());
  }
  const double Rate = static_cast<double>(Meshable) / Trials;
  EXPECT_NEAR(Rate, 495.0 / 1820.0, 0.02)
      << "empirical mesh probability must match the combinatorial value";
}

} // namespace
} // namespace mesh
