//===- SplitMesherPropertyTest.cpp - Lemma 5.3 statistical checks ----------===//
///
/// Lemma 5.3: with t = k/q probes, SplitMesher finds a matching of size
/// at least n(1-e^-2k)/4 with probability approaching 1. We check the
/// bound empirically across occupancies and candidate-set sizes.
///
//===----------------------------------------------------------------------===//

#include "core/Mesher.h"

#include "core/MiniHeap.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

namespace mesh {
namespace {

/// Probability two random r-occupied b-slot spans mesh:
/// q = C(b-r, r) / C(b, r).
double pairMeshProbability(int B, int R) {
  double Q = 1.0;
  for (int I = 0; I < R; ++I)
    Q *= static_cast<double>(B - R - I) / (B - I);
  return Q;
}

std::vector<std::unique_ptr<MiniHeap>>
randomSpans(int N, int B, int R, Rng &Random) {
  std::vector<std::unique_ptr<MiniHeap>> Spans;
  for (int I = 0; I < N; ++I) {
    auto MH = std::make_unique<MiniHeap>(static_cast<uint32_t>(I), 1,
                                         kPageSize / B, B, 0, true);
    // Choose R distinct random offsets.
    int Placed = 0;
    while (Placed < R)
      Placed += MH->bitmap().tryToSet(Random.inRange(0, B - 1));
    Spans.push_back(std::move(MH));
  }
  return Spans;
}

using Params = std::tuple<int /*N*/, int /*B*/, int /*R*/>;

class SplitMesherBound : public ::testing::TestWithParam<Params> {};

TEST_P(SplitMesherBound, FindsLemmaSizedMatching) {
  const auto [N, B, R] = GetParam();
  const double Q = pairMeshProbability(B, R);
  ASSERT_GT(Q, 0.0);
  // t = k/q with k = 1.5 (so the lemma bound is n(1-e^-3)/4 ~ 0.237 n).
  const double K = 1.5;
  ASSERT_GE(N, 2.0 * K / Q)
      << "parameter set violates the lemma precondition n >= 2k/q";
  const auto T = static_cast<uint32_t>(std::ceil(K / Q));
  const double LemmaBound = N * (1.0 - std::exp(-2.0 * K)) / 4.0;

  Rng Random(N * 1000003 + B * 101 + R);
  int Failures = 0;
  constexpr int Trials = 10;
  for (int Trial = 0; Trial < Trials; ++Trial) {
    auto Spans = randomSpans(N, B, R, Random);
    InternalVector<MiniHeap *> Candidates;
    for (auto &S : Spans)
      Candidates.push_back(S.get());
    InternalVector<MeshPair> Pairs;
    uint64_t Probes = 0;
    splitMesher(Candidates, T, Random, Pairs, &Probes);
    EXPECT_LE(Probes, static_cast<uint64_t>(T) * (N / 2))
        << "probe budget exceeded";
    if (static_cast<double>(Pairs.size()) < LemmaBound)
      ++Failures;
  }
  // "With high probability": allow at most 2/10 trials below the bound
  // (the lemma is asymptotic in n; these n are modest).
  EXPECT_LE(Failures, 2) << "n=" << N << " b=" << B << " r=" << R
                         << " q=" << Q << " bound=" << LemmaBound;
}

INSTANTIATE_TEST_SUITE_P(
    OccupancySweep, SplitMesherBound,
    ::testing::Values(Params{64, 32, 4}, Params{128, 32, 4},
                      Params{256, 32, 4}, Params{128, 64, 8},
                      Params{128, 128, 16}, Params{256, 256, 16},
                      Params{256, 64, 8}),
    [](const ::testing::TestParamInfo<Params> &Info) {
      return "n" + std::to_string(std::get<0>(Info.param)) + "_b" +
             std::to_string(std::get<1>(Info.param)) + "_r" +
             std::to_string(std::get<2>(Info.param));
    });

TEST(SplitMesherProperty, MatchQualityDegradesGracefullyWithOccupancy) {
  // As occupancy rises past 50%, q -> 0 and matchings shrink; the
  // algorithm must keep its probe budget and never pair overlapping
  // spans regardless.
  Rng Random(5150);
  for (int R : {2, 6, 10, 14}) {
    auto Spans = randomSpans(128, 32, R, Random);
    InternalVector<MiniHeap *> Candidates;
    for (auto &S : Spans)
      Candidates.push_back(S.get());
    InternalVector<MeshPair> Pairs;
    splitMesher(Candidates, 64, Random, Pairs);
    for (auto &[A, B] : Pairs)
      ASSERT_TRUE(A->bitmap().isMeshableWith(B->bitmap()));
  }
}

TEST(SplitMesherProperty, RuntimeScalesLinearlyInCandidates) {
  // Section 5.3: O(n/q) — for fixed occupancy the probe count grows
  // linearly with n, not quadratically.
  Rng Random(2718);
  uint64_t ProbesSmall = 0, ProbesLarge = 0;
  for (int Rep = 0; Rep < 5; ++Rep) {
    auto Small = randomSpans(100, 32, 10, Random);
    InternalVector<MiniHeap *> C1;
    for (auto &S : Small)
      C1.push_back(S.get());
    InternalVector<MeshPair> P1;
    uint64_t Probes = 0;
    splitMesher(C1, 16, Random, P1, &Probes);
    ProbesSmall += Probes;

    auto Large = randomSpans(400, 32, 10, Random);
    InternalVector<MiniHeap *> C2;
    for (auto &S : Large)
      C2.push_back(S.get());
    InternalVector<MeshPair> P2;
    splitMesher(C2, 16, Random, P2, &Probes);
    ProbesLarge += Probes;
  }
  // 4x the candidates => at most ~4x the probes (both capped by t*n/2).
  EXPECT_LT(ProbesLarge, 6 * ProbesSmall)
      << "probe growth should be linear in n";
}

} // namespace
} // namespace mesh
