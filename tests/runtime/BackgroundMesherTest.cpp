//===- BackgroundMesherTest.cpp - Background meshing runtime tests ----------===//
///
/// Pins the background runtime's contract:
///   - thread lifecycle: start with the Runtime, observable wakeups,
///     clean stop/join on teardown (repeatedly);
///   - the poke path: allocation triggers execute on the mesher thread,
///     never on the mutator;
///   - the acceptance scenario: an idle, fragmented heap — allocate,
///     free most objects, then stop calling the allocator entirely —
///     releases pages via a pressure-triggered background pass;
///   - the fork protocol: quiesce before fork, restart in parent and
///     child, child can keep allocating.
///
//===----------------------------------------------------------------------===//

#include "runtime/BackgroundMesher.h"

#include "core/Runtime.h"
#include "core/ThreadLocalHeap.h"
#include "TestConfig.h"

#include <gtest/gtest.h>

#include <cstring>
#include <ctime>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace mesh;

namespace {

void sleepMs(uint64_t Ms) {
  timespec Ts;
  Ts.tv_sec = static_cast<time_t>(Ms / 1000);
  Ts.tv_nsec = static_cast<long>((Ms % 1000) * 1000000ULL);
  nanosleep(&Ts, nullptr);
}

uint64_t readCounter(Runtime &R, const char *Name) {
  uint64_t Value = 0;
  size_t Len = sizeof(Value);
  EXPECT_EQ(R.mallctl(Name, &Value, &Len, nullptr, 0), 0) << Name;
  return Value;
}

/// Polls \p Name (allocation-free: mallctl counter reads touch only
/// atomics) until it reaches \p Target or \p DeadlineMs expires.
bool waitForCounter(Runtime &R, const char *Name, uint64_t Target,
                    uint64_t DeadlineMs) {
  for (uint64_t Waited = 0; Waited < DeadlineMs; Waited += 5) {
    if (readCounter(R, Name) >= Target)
      return true;
    sleepMs(5);
  }
  return readCounter(R, Name) >= Target;
}

MeshOptions backgroundOptions() {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{1} << 30;
  Opts.BackgroundMeshing = true;
  Opts.BackgroundWakeMs = 5;
  return Opts;
}

/// The standard fragmented image: \p Spans one-page spans of 16-byte
/// objects, 1-in-8 random-offset survivors, everything detached from
/// the local heap. After this, ~87% of committed span bytes are dead.
std::vector<void *> fragmentHeap(Runtime &R, int Spans) {
  std::vector<void *> Kept, Toss;
  for (int I = 0; I < Spans * 256; ++I) {
    void *P = R.malloc(16);
    EXPECT_NE(P, nullptr) << "arena exhausted";
    if (P == nullptr)
      break;
    (I % 8 == 0 ? Kept : Toss).push_back(P);
  }
  R.localHeap().releaseAll();
  for (void *P : Toss)
    R.free(P);
  return Kept;
}

TEST(BackgroundMesherTest, StartStopJoinRepeatedly) {
  for (int Round = 0; Round < 3; ++Round) {
    Runtime R(backgroundOptions());
    ASSERT_NE(R.backgroundMesher(), nullptr);
    EXPECT_TRUE(R.backgroundMesher()->running());
    EXPECT_EQ(readCounter(R, "background.enabled"), 1u);
    // The timer must tick without any allocator traffic.
    EXPECT_TRUE(waitForCounter(R, "background.wakeups", 2, 2000))
        << "mesher thread never woke";
    // Destruction stops and joins; a wedged join would hang the test.
  }
}

TEST(BackgroundMesherTest, SynchronousFallbackWhenDisabled) {
  MeshOptions Opts = backgroundOptions();
  Opts.BackgroundMeshing = false;
  Runtime R(Opts);
  EXPECT_EQ(R.backgroundMesher(), nullptr);
  EXPECT_EQ(readCounter(R, "background.enabled"), 0u);
  EXPECT_EQ(readCounter(R, "background.passes"), 0u);
  // Passes still happen — synchronously, attributed to the foreground.
  auto Kept = fragmentHeap(R, 16);
  EXPECT_GE(R.meshNow(), 0u);
  EXPECT_GE(readCounter(R, "stats.mesh_passes_foreground"), 1u);
  EXPECT_EQ(readCounter(R, "stats.mesh_passes_background"), 0u);
  for (void *P : Kept)
    R.free(P);
}

TEST(BackgroundMesherTest, PokesExecuteOnMesherThread) {
  MeshOptions Opts = backgroundOptions();
  Opts.BackgroundWakeMs = 1000;     // timer effectively off
  Opts.PressureFragThresholdPct = 0; // pressure off: pokes only
  Opts.MeshPeriodMs = 0;             // every trigger eligible
  Runtime R(Opts);

  // Refill-heavy churn: spans fill and detach, remote-style frees land
  // through the global heap, and each refill pokes the mesher.
  const int Rounds = stressScaled(20);
  for (int Round = 0; Round < Rounds; ++Round) {
    std::vector<void *> Block;
    for (int I = 0; I < 4 * 256; ++I)
      Block.push_back(R.malloc(16));
    R.localHeap().releaseAll();
    for (void *P : Block)
      R.free(P);
    if (readCounter(R, "background.passes") >= 1)
      break;
    sleepMs(5);
  }
  EXPECT_GE(readCounter(R, "background.requests"), 1u);
  EXPECT_TRUE(waitForCounter(R, "background.passes", 1, 5000))
      << "no pass ever ran on the mesher thread";
  // The whole point: the mutator executed none of them.
  EXPECT_EQ(readCounter(R, "stats.mesh_passes_foreground"), 0u);
  EXPECT_EQ(readCounter(R, "stats.max_pause_foreground_ns"), 0u);
}

// The acceptance scenario (ISSUE 4): allocate, free most objects, stop
// allocating. Nothing ever pokes again, yet the heap must shrink via a
// background pressure pass, observable through background.* counters.
TEST(BackgroundMesherTest, PressureCompactsIdleFragmentedHeap) {
  MeshOptions Opts = backgroundOptions();
  Opts.MeshPeriodMs = ~uint64_t{0}; // pokes can never pass the gate
  Opts.PressureFragThresholdPct = 10;
  Opts.PressureMinCommittedBytes = 128 * 1024;
  Runtime R(Opts);

  // Hold compaction off while the fragmented image is built — under
  // TSan the build takes long enough that timer wakes would otherwise
  // legitimately compact it mid-construction. The mesh.enabled switch
  // is atomic precisely so this toggle is race-free against the
  // running mesher thread.
  bool Enabled = false;
  ASSERT_EQ(R.mallctl("mesh.enabled", nullptr, nullptr, &Enabled,
                      sizeof(Enabled)),
            0);
  auto Kept = fragmentHeap(R, 256); // ~1 MiB committed, ~7/8 dead
  const size_t CommittedBefore = R.committedBytes();
  ASSERT_GE(CommittedBefore, Opts.PressureMinCommittedBytes);
  ASSERT_EQ(readCounter(R, "background.passes"), 0u);
  Enabled = true;
  ASSERT_EQ(R.mallctl("mesh.enabled", nullptr, nullptr, &Enabled,
                      sizeof(Enabled)),
            0);

  // From here on: no allocator calls. Counter polls read atomics and
  // the sleep is nanosleep — the heap is genuinely idle.
  EXPECT_TRUE(waitForCounter(R, "background.pressure_passes", 1, 10000))
      << "idle fragmented heap was never compacted";
  EXPECT_GE(readCounter(R, "background.passes"), 1u);
  EXPECT_EQ(readCounter(R, "stats.mesh_passes_foreground"), 0u);
  const size_t CommittedAfter = R.committedBytes();
  EXPECT_LT(CommittedAfter, CommittedBefore)
      << "pressure pass released no pages";

  // The monitor's published signals are coherent with what happened.
  // (<=, not ==: the mesher is still running and a further pass may
  // release more pages between these two reads.)
  EXPECT_GE(readCounter(R, "pressure.rss_bytes"), kPageSize);
  const uint64_t SampledCommitted =
      readCounter(R, "pressure.committed_bytes");
  EXPECT_GT(SampledCommitted, 0u);
  EXPECT_LE(SampledCommitted, CommittedAfter);

  for (void *P : Kept)
    R.free(P);
}

TEST(BackgroundMesherTest, ForkQuiescesAndRestartsBothSides) {
  Runtime R(backgroundOptions());
  ASSERT_TRUE(waitForCounter(R, "background.wakeups", 1, 2000));

  std::vector<void *> Pre;
  for (int I = 0; I < 512; ++I)
    Pre.push_back(R.malloc(32 + (I % 7) * 16));

  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0) << "fork failed";
  if (Pid == 0) {
    // Child: the atfork protocol must have restarted a fresh mesher,
    // and the heap must be fully usable (fork-then-allocate).
    int Failures = 0;
    if (R.backgroundMesher() == nullptr || !R.backgroundMesher()->running())
      ++Failures;
    for (int I = 0; I < 2000 && Failures == 0; ++I) {
      void *P = R.malloc(16 + (I % 64) * 8);
      if (P == nullptr) {
        ++Failures;
        break;
      }
      memset(P, 0x5A, 8);
      R.free(P);
    }
    R.meshNow(); // a full pass must not wedge on inherited state
    uint64_t Wakes = 0;
    size_t Len = sizeof(Wakes);
    if (R.mallctl("background.wakeups", &Wakes, &Len, nullptr, 0) != 0)
      ++Failures;
    _exit(Failures == 0 ? 0 : 42);
  }

  // Parent: child exits clean, and our own mesher keeps ticking.
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0) << "child-side failure";
  ASSERT_NE(R.backgroundMesher(), nullptr);
  EXPECT_TRUE(R.backgroundMesher()->running());
  const uint64_t WakesAfterFork = readCounter(R, "background.wakeups");
  EXPECT_TRUE(
      waitForCounter(R, "background.wakeups", WakesAfterFork + 2, 2000))
      << "parent mesher did not keep running after fork";
  for (void *P : Pre)
    R.free(P);
}

} // namespace
