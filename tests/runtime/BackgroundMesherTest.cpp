//===- BackgroundMesherTest.cpp - Background meshing runtime tests ----------===//
///
/// Pins the background runtime's contract:
///   - thread lifecycle: start with the Runtime, observable wakeups,
///     clean stop/join on teardown (repeatedly);
///   - the poke path: allocation triggers execute on the mesher thread,
///     never on the mutator;
///   - the acceptance scenario: an idle, fragmented heap — allocate,
///     free most objects, then stop calling the allocator entirely —
///     releases pages via a pressure-triggered background pass;
///   - the fork protocol: quiesce before fork, restart in parent and
///     child, child can keep allocating.
///
//===----------------------------------------------------------------------===//

#include "runtime/BackgroundMesher.h"

#include "core/Runtime.h"
#include "core/ThreadLocalHeap.h"
#include "TestConfig.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <ctime>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define MESH_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MESH_TEST_TSAN 1
#endif
#endif

using namespace mesh;

namespace {

void sleepMs(uint64_t Ms) {
  timespec Ts;
  Ts.tv_sec = static_cast<time_t>(Ms / 1000);
  Ts.tv_nsec = static_cast<long>((Ms % 1000) * 1000000ULL);
  nanosleep(&Ts, nullptr);
}

uint64_t readCounter(Runtime &R, const char *Name) {
  uint64_t Value = 0;
  size_t Len = sizeof(Value);
  EXPECT_EQ(R.mallctl(Name, &Value, &Len, nullptr, 0), 0) << Name;
  return Value;
}

/// Polls \p Name (allocation-free: mallctl counter reads touch only
/// atomics) until it reaches \p Target or \p DeadlineMs expires.
bool waitForCounter(Runtime &R, const char *Name, uint64_t Target,
                    uint64_t DeadlineMs) {
  for (uint64_t Waited = 0; Waited < DeadlineMs; Waited += 5) {
    if (readCounter(R, Name) >= Target)
      return true;
    sleepMs(5);
  }
  return readCounter(R, Name) >= Target;
}

MeshOptions backgroundOptions() {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{1} << 30;
  Opts.BackgroundMeshing = true;
  Opts.BackgroundWakeMs = 5;
  return Opts;
}

/// The standard fragmented image: \p Spans one-page spans of 16-byte
/// objects, 1-in-8 random-offset survivors, everything detached from
/// the local heap. After this, ~87% of committed span bytes are dead.
std::vector<void *> fragmentHeap(Runtime &R, int Spans) {
  std::vector<void *> Kept, Toss;
  for (int I = 0; I < Spans * 256; ++I) {
    void *P = R.malloc(16);
    EXPECT_NE(P, nullptr) << "arena exhausted";
    if (P == nullptr)
      break;
    (I % 8 == 0 ? Kept : Toss).push_back(P);
  }
  R.localHeap().releaseAll();
  for (void *P : Toss)
    R.free(P);
  return Kept;
}

TEST(BackgroundMesherTest, StartStopJoinRepeatedly) {
  for (int Round = 0; Round < 3; ++Round) {
    Runtime R(backgroundOptions());
    ASSERT_NE(R.backgroundMesher(), nullptr);
    EXPECT_TRUE(R.backgroundMesher()->running());
    EXPECT_EQ(readCounter(R, "background.enabled"), 1u);
    // The timer must tick without any allocator traffic.
    EXPECT_TRUE(waitForCounter(R, "background.wakeups", 2, 2000))
        << "mesher thread never woke";
    // Destruction stops and joins; a wedged join would hang the test.
  }
}

TEST(BackgroundMesherTest, SynchronousFallbackWhenDisabled) {
  MeshOptions Opts = backgroundOptions();
  Opts.BackgroundMeshing = false;
  Runtime R(Opts);
  EXPECT_EQ(R.backgroundMesher(), nullptr);
  EXPECT_EQ(readCounter(R, "background.enabled"), 0u);
  EXPECT_EQ(readCounter(R, "background.passes"), 0u);
  // Passes still happen — synchronously, attributed to the foreground.
  auto Kept = fragmentHeap(R, 16);
  EXPECT_GE(R.meshNow(), 0u);
  EXPECT_GE(readCounter(R, "stats.mesh_passes_foreground"), 1u);
  EXPECT_EQ(readCounter(R, "stats.mesh_passes_background"), 0u);
  for (void *P : Kept)
    R.free(P);
}

TEST(BackgroundMesherTest, PokesExecuteOnMesherThread) {
  MeshOptions Opts = backgroundOptions();
  Opts.BackgroundWakeMs = 1000;     // timer effectively off
  Opts.PressureFragThresholdPct = 0; // pressure off: pokes only
  Opts.MeshPeriodMs = 0;             // every trigger eligible
  Runtime R(Opts);

  // Refill-heavy churn: spans fill and detach, remote-style frees land
  // through the global heap, and each refill pokes the mesher.
  const int Rounds = stressScaled(20);
  for (int Round = 0; Round < Rounds; ++Round) {
    std::vector<void *> Block;
    for (int I = 0; I < 4 * 256; ++I)
      Block.push_back(R.malloc(16));
    R.localHeap().releaseAll();
    for (void *P : Block)
      R.free(P);
    if (readCounter(R, "background.passes") >= 1)
      break;
    sleepMs(5);
  }
  EXPECT_GE(readCounter(R, "background.requests"), 1u);
  EXPECT_TRUE(waitForCounter(R, "background.passes", 1, 5000))
      << "no pass ever ran on the mesher thread";
  // The whole point: the mutator executed none of them.
  EXPECT_EQ(readCounter(R, "stats.mesh_passes_foreground"), 0u);
  EXPECT_EQ(readCounter(R, "stats.max_pause_foreground_ns"), 0u);
}

// The acceptance scenario (ISSUE 4): allocate, free most objects, stop
// allocating. Nothing ever pokes again, yet the heap must shrink via a
// background pressure pass, observable through background.* counters.
TEST(BackgroundMesherTest, PressureCompactsIdleFragmentedHeap) {
  MeshOptions Opts = backgroundOptions();
  Opts.MeshPeriodMs = ~uint64_t{0}; // pokes can never pass the gate
  Opts.PressureFragThresholdPct = 10;
  Opts.PressureMinCommittedBytes = 128 * 1024;
  Runtime R(Opts);

  // Hold compaction off while the fragmented image is built — under
  // TSan the build takes long enough that timer wakes would otherwise
  // legitimately compact it mid-construction. The mesh.enabled switch
  // is atomic precisely so this toggle is race-free against the
  // running mesher thread.
  bool Enabled = false;
  ASSERT_EQ(R.mallctl("mesh.enabled", nullptr, nullptr, &Enabled,
                      sizeof(Enabled)),
            0);
  auto Kept = fragmentHeap(R, 256); // ~1 MiB committed, ~7/8 dead
  const size_t CommittedBefore = R.committedBytes();
  ASSERT_GE(CommittedBefore, Opts.PressureMinCommittedBytes);
  ASSERT_EQ(readCounter(R, "background.passes"), 0u);
  Enabled = true;
  ASSERT_EQ(R.mallctl("mesh.enabled", nullptr, nullptr, &Enabled,
                      sizeof(Enabled)),
            0);

  // From here on: no allocator calls. Counter polls read atomics and
  // the sleep is nanosleep — the heap is genuinely idle.
  EXPECT_TRUE(waitForCounter(R, "background.pressure_passes", 1, 10000))
      << "idle fragmented heap was never compacted";
  EXPECT_GE(readCounter(R, "background.passes"), 1u);
  EXPECT_EQ(readCounter(R, "stats.mesh_passes_foreground"), 0u);
  const size_t CommittedAfter = R.committedBytes();
  EXPECT_LT(CommittedAfter, CommittedBefore)
      << "pressure pass released no pages";

  // The monitor's published signals are coherent with what happened.
  // (<=, not ==: the mesher is still running and a further pass may
  // release more pages between these two reads.)
  EXPECT_GE(readCounter(R, "pressure.rss_bytes"), kPageSize);
  const uint64_t SampledCommitted =
      readCounter(R, "pressure.committed_bytes");
  EXPECT_GT(SampledCommitted, 0u);
  EXPECT_LE(SampledCommitted, CommittedAfter);

  for (void *P : Kept)
    R.free(P);
}

TEST(BackgroundMesherTest, ForkQuiescesAndRestartsBothSides) {
  Runtime R(backgroundOptions());
  ASSERT_TRUE(waitForCounter(R, "background.wakeups", 1, 2000));

  std::vector<void *> Pre;
  for (int I = 0; I < 512; ++I)
    Pre.push_back(R.malloc(32 + (I % 7) * 16));

  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0) << "fork failed";
  if (Pid == 0) {
    // Child: the heap must be fully usable (fork-then-allocate). The
    // mesher restarts *lazily* — pthread_create is not
    // async-signal-safe inside the atfork child handler, so the
    // handler only re-arms the mesher and the first post-fork poke
    // spawns the thread.
    BackgroundMesher *BM = R.backgroundMesher();
    if (BM == nullptr)
      _exit(40);
    if (BM->running())
      _exit(41); // restarted inside the handler — the unsafe path
    // Open the poke gate so the very first refill restarts the thread.
    uint64_t Zero = 0;
    if (R.mallctl("mesh.period_ms", nullptr, nullptr, &Zero,
                  sizeof(Zero)) != 0)
      _exit(42);
    for (int I = 0; I < 2000; ++I) {
      void *P = R.malloc(16 + (I % 64) * 8);
      if (P == nullptr)
        _exit(43);
      memset(P, 0x5A, 8);
      R.free(P);
    }
    if (!BM->running())
      _exit(44); // allocation churn never poked the mesher back up
    R.meshNow(); // a full pass must not wedge on inherited state
    uint64_t Wakes = 0;
    size_t Len = sizeof(Wakes);
    if (R.mallctl("background.wakeups", &Wakes, &Len, nullptr, 0) != 0)
      _exit(45);
    _exit(0);
  }

  // Parent: child exits clean, and our own mesher keeps ticking.
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0) << "child-side failure";
  ASSERT_NE(R.backgroundMesher(), nullptr);
  EXPECT_TRUE(R.backgroundMesher()->running());
  const uint64_t WakesAfterFork = readCounter(R, "background.wakeups");
  EXPECT_TRUE(
      waitForCounter(R, "background.wakeups", WakesAfterFork + 2, 2000))
      << "parent mesher did not keep running after fork";
  for (void *P : Pre)
    R.free(P);
}

// Regression for the fork/wake-mutex race: a mutator can be *inside*
// requestMeshPass() — owning the mesher's wake mutex — at the fork
// instant (quiescing joins only the mesher thread; pokers are
// application threads the atfork protocol does not stop). The child
// must re-initialize the mutex rather than inherit it locked by a
// thread that does not exist there; before that fix, the child's first
// poke deadlocked. Fork repeatedly under continuous poke traffic and
// require every child to allocate and exit; a bounded wait turns the
// historical deadlock into a test failure instead of a suite hang.
TEST(BackgroundMesherTest, ForkWhileMutatorsPokeConcurrently) {
#ifdef MESH_TEST_TSAN
  GTEST_SKIP() << "TSan does not support spawning threads in the child "
                  "of a multi-threaded fork (the lazy mesher restart "
                  "does exactly that)";
#else
  MeshOptions Opts = backgroundOptions();
  Opts.MeshPeriodMs = 0;             // every refill pokes: maximal mutex traffic
  Opts.PressureFragThresholdPct = 0; // pressure off: pokes only
  Runtime R(Opts);

  std::atomic<bool> Stop{false};
  auto Churn = [&R, &Stop] {
    std::vector<void *> Block;
    while (!Stop.load(std::memory_order_relaxed)) {
      for (int I = 0; I < 256; ++I)
        Block.push_back(R.malloc(16 + (I % 16) * 32));
      R.localHeap().releaseAll();
      for (void *P : Block)
        R.free(P);
      Block.clear();
    }
  };
  std::thread T1(Churn), T2(Churn);

  const int Forks = static_cast<int>(stressScaled(8));
  for (int F = 0; F < Forks; ++F) {
    const pid_t Pid = fork();
    if (Pid < 0)
      break; // out of processes: the rounds already run stand
    if (Pid == 0) {
      // Child: single-threaded here. Allocating takes the heap locks
      // the handlers released and pokes through the re-initialized
      // wake mutex (which also lazily restarts the mesher). The alarm
      // converts any child-side wedge into a signal death the parent's
      // status check reports — it must stay below the parent's 20 s
      // bounded wait so the SIGALRM attribution wins over SIGKILL.
      alarm(10);
      for (int I = 0; I < 512; ++I) {
        void *P = R.malloc(64);
        if (P == nullptr)
          _exit(43);
        memset(P, 0x6B, 8);
        R.free(P);
      }
      // Fork again (bash subshell chains do): the quiesce protocol
      // must also hold when this process's own mesher was lazily
      // restarted moments ago.
      const pid_t GPid = fork();
      if (GPid == 0) {
        alarm(10); // fork clears the inherited alarm; re-arm our own
        for (int I = 0; I < 256; ++I) {
          void *P = R.malloc(64);
          if (P == nullptr)
            _exit(45);
          R.free(P);
        }
        _exit(0);
      }
      if (GPid > 0) {
        int GSt = 0;
        if (waitpid(GPid, &GSt, 0) != GPid || !WIFEXITED(GSt) ||
            WEXITSTATUS(GSt) != 0)
          _exit(44);
      }
      _exit(0);
    }
    int Status = 0;
    pid_t Got = 0;
    for (uint64_t Waited = 0; Waited < 20000 && Got != Pid; Waited += 10) {
      Got = waitpid(Pid, &Status, WNOHANG);
      if (Got == 0)
        sleepMs(10);
    }
    if (Got != Pid) {
      kill(Pid, SIGKILL);
      waitpid(Pid, &Status, 0);
      Stop.store(true);
      T1.join();
      T2.join();
      FAIL() << "forked child wedged on inherited mesher state";
    }
    if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0) {
      Stop.store(true);
      T1.join();
      T2.join();
      FAIL() << "child-side failure (status " << Status << ")";
    }
  }
  Stop.store(true);
  T1.join();
  T2.join();
#endif
}

} // namespace
