//===- ForkCorruptionTest.cpp - Fork isolation integration tests -----------===//
///
/// Pins the copy-to-fresh-memfd fork protocol. Before it landed, the
/// measurement these tests encode was the bug: parent and child fork
/// with identical COW-private allocator metadata over a MAP_SHARED
/// arena, hand out the same slots, and each side's post-fork writes
/// corrupt the other (~85% of 50k parent objects in the PR 4
/// measurement). The protocol rebuilds the child's arena on a private
/// memfd inside the atfork child handler, so:
///
///   - parent and child each allocate/free 50k filled objects across
///     size classes post-fork with full content verification on both
///     sides — zero tolerated mismatches;
///   - meshed (aliased) spans survive the rebuild: contents readable
///     through every virtual span, alias pairs still physically
///     shared, and the child's committed-page accounting agrees with
///     what the kernel actually charges its fresh file;
///   - fork chains (grandchildren) keep working — every generation
///     repeats the rebuild;
///   - no fd leaks: the child closes the inherited memfd, so a
///     prefork-server pattern cannot accumulate one arena fd per
///     generation.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "TestConfig.h"
#include "core/MiniHeap.h"
#include "core/ThreadLocalHeap.h"
#include "support/Epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <dirent.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define MESH_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MESH_TEST_TSAN 1
#endif
#endif

using namespace mesh;

namespace {

/// The size-class spread used throughout: small, mid, and large-ish
/// classed objects plus a page-crossing one.
constexpr size_t kSizes[] = {16, 48, 128, 512, 2048};
constexpr int kNumSizes = sizeof(kSizes) / sizeof(kSizes[0]);

size_t sizeFor(int I) { return kSizes[I % kNumSizes]; }
char patternFor(int I, char Salt) {
  return static_cast<char>((I * 131) ^ Salt);
}

/// Allocates \p Count objects across the size-class spread, filling
/// each completely with a content pattern derived from its index and
/// \p Salt.
std::vector<void *> allocFilled(Runtime &R, int Count, char Salt) {
  std::vector<void *> Ptrs;
  Ptrs.reserve(Count);
  for (int I = 0; I < Count; ++I) {
    void *P = R.malloc(sizeFor(I));
    EXPECT_NE(P, nullptr);
    memset(P, patternFor(I, Salt), sizeFor(I));
    Ptrs.push_back(P);
  }
  return Ptrs;
}

/// Full content verification; returns the number of corrupted objects.
int countMismatches(const std::vector<void *> &Ptrs, char Salt) {
  int Bad = 0;
  for (int I = 0; I < static_cast<int>(Ptrs.size()); ++I) {
    const char Want = patternFor(I, Salt);
    const char *P = static_cast<const char *>(Ptrs[I]);
    for (size_t B = 0; B < sizeFor(I); ++B) {
      if (P[B] != Want) {
        ++Bad;
        break;
      }
    }
  }
  return Bad;
}

/// One side's post-fork workload: allocate/free a full churn set (the
/// writes that used to land in the other process's live objects) and
/// verify the pre-fork set. Returns mismatches.
int churnAndVerify(Runtime &R, const std::vector<void *> &PreFork,
                   char PreForkSalt, int ChurnCount, char ChurnSalt) {
  std::vector<void *> Churn = allocFilled(R, ChurnCount, ChurnSalt);
  int Bad = countMismatches(Churn, ChurnSalt);
  for (void *P : Churn)
    R.free(P);
  Bad += countMismatches(PreFork, PreForkSalt);
  return Bad;
}

/// Open fds in this process, via /proc/self/fd.
int countOpenFds() {
  DIR *D = opendir("/proc/self/fd");
  if (D == nullptr)
    return -1;
  int N = 0;
  while (readdir(D) != nullptr)
    ++N;
  closedir(D);
  // Subtract ".", "..", and the dirfd itself.
  return N - 3;
}

MeshOptions forkTestOptions(bool Background = false) {
  MeshOptions Opts = testOptions();
  Opts.BackgroundMeshing = Background;
  if (Background)
    Opts.BackgroundWakeMs = 5;
  return Opts;
}

/// The PR 4 measurement, inverted into an assertion. Parent and child
/// each run the full churn concurrently — this is the exact schedule
/// that corrupted ~85% of the parent's objects pre-protocol.
TEST(ForkCorruptionTest, ParentAndChildHeapsStayIsolated) {
  Runtime R(forkTestOptions());
  const int Count = static_cast<int>(stressScaled(50000));
  std::vector<void *> PreFork = allocFilled(R, Count, 'P');
  ASSERT_EQ(countMismatches(PreFork, 'P'), 0);

  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // Child: verify the fork-instant snapshot, churn, verify again.
    int Bad = countMismatches(PreFork, 'P');
    Bad += churnAndVerify(R, PreFork, 'P', Count, 'C');
    _exit(Bad == 0 ? 0 : (Bad > 250 ? 250 : Bad));
  }
  // Parent: churn concurrently with the child, then verify.
  const int ParentBad = churnAndVerify(R, PreFork, 'P', Count, 'Q');
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status)) << "child crashed (status " << Status << ")";
  EXPECT_EQ(WEXITSTATUS(Status), 0) << "child saw corrupted objects";
  EXPECT_EQ(ParentBad, 0) << "parent objects corrupted by the child";
  for (void *P : PreFork)
    R.free(P);
}

/// Meshes first, forks second: the child's arena rebuild must replay
/// not just identity mappings but every meshed alias, and its
/// committed accounting must agree with the fresh file.
TEST(ForkCorruptionTest, ForkAfterMeshingPreservesAliasedSpans) {
  Runtime R(forkTestOptions());
  // The MeshEndToEnd recipe: many sparse 16-byte spans, then iterate
  // meshNow toward the fixpoint so a healthy set of spans holds >1
  // virtual span.
  const int Total = 64 * 256;
  std::vector<void *> All;
  for (int I = 0; I < Total; ++I) {
    char *P = static_cast<char *>(R.malloc(16));
    ASSERT_NE(P, nullptr);
    memset(P, patternFor(I, 'M'), 16);
    All.push_back(P);
  }
  std::vector<void *> Kept;
  std::vector<char> KeptPattern;
  for (int I = 0; I < Total; ++I) {
    if (I % 8 == 0) {
      Kept.push_back(All[I]);
      KeptPattern.push_back(patternFor(I, 'M'));
    } else {
      R.free(All[I]);
    }
  }
  R.localHeap().releaseAll();
  ASSERT_GT(R.meshNow(), 0u) << "test precondition: meshing must occur";
  for (int Pass = 0; Pass < 16 && R.meshNow() > 0; ++Pass)
    ;

  // Find an object whose MiniHeap holds meshed aliases and precompute
  // its twin address through another virtual span.
  char *AliasA = nullptr, *AliasB = nullptr;
  {
    // Scoped: the section must NOT be held across the fork() below — a
    // reader count inherited by the child (or held by the parent while
    // it allocates post-fork) could stall a later epoch synchronize.
    Epoch::Section PeekGuard(R.global().miniheapEpoch());
    for (void *P : Kept) {
      MiniHeap *MH = R.global().miniheapFor(P);
      ASSERT_NE(MH, nullptr);
      if (MH->spans().size() < 2)
        continue;
      const char *Base = R.global().arenaBase();
      const uintptr_t Span0 =
          reinterpret_cast<uintptr_t>(Base + pagesToBytes(MH->spans()[0]));
      const uintptr_t Span1 =
          reinterpret_cast<uintptr_t>(Base + pagesToBytes(MH->spans()[1]));
      const uint32_t Off = MH->offsetOf(P, Base);
      AliasA = reinterpret_cast<char *>(Span0 + Off * MH->objectSize());
      AliasB = reinterpret_cast<char *>(Span1 + Off * MH->objectSize());
      break;
    }
  }
  ASSERT_NE(AliasA, nullptr) << "test precondition: no meshed span found";

  const size_t CommittedAtFork = R.global().committedBytes();
  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    int Bad = 0;
    // Every kept object reads its pre-fork pattern — including ones
    // living in spans reached through replayed aliases.
    for (size_t I = 0; I < Kept.size(); ++I) {
      const char *P = static_cast<const char *>(Kept[I]);
      for (int B = 0; B < 16; ++B)
        if (P[B] != KeptPattern[I]) {
          ++Bad;
          break;
        }
    }
    // The alias pair is still physically shared in the fresh file.
    AliasA[1] = 'x';
    if (AliasB[1] != 'x')
      ++Bad;
    AliasB[1] = 'y';
    if (AliasA[1] != 'y')
      ++Bad;
    // Accounting agreement: the fresh file can never hold more pages
    // than the child's committed count claims (the hole replay is what
    // guarantees this; copying holes as data would break it), and with
    // MaxDirtyBytes=0 no dirty bins existed to drop, so the committed
    // count itself must ride through the rebuild unchanged.
    if (R.global().committedBytes() != CommittedAtFork)
      ++Bad;
    if (pagesToBytes(R.global().kernelFilePages()) >
        R.global().committedBytes())
      ++Bad;
    _exit(Bad == 0 ? 0 : (Bad > 250 ? 250 : Bad));
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status)) << "child crashed (status " << Status << ")";
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  // The child's alias writes must not have reached the parent.
  for (size_t I = 0; I < Kept.size(); ++I) {
    const char *P = static_cast<const char *>(Kept[I]);
    for (int B = 0; B < 16; ++B)
      ASSERT_EQ(P[B], KeptPattern[I]) << "child meshing write leaked in";
  }
  for (void *P : Kept)
    R.free(P);
}

/// Fork-from-fork: every generation repeats the copy, so a grandchild
/// must be as isolated from the child as the child is from the parent.
TEST(ForkCorruptionTest, DoubleForkChainsGrandchild) {
  Runtime R(forkTestOptions());
  const int Count = static_cast<int>(stressScaled(10000));
  std::vector<void *> PreFork = allocFilled(R, Count, 'G');

  const pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    int Bad = countMismatches(PreFork, 'G');
    std::vector<void *> ChildSet = allocFilled(R, Count, 'H');
    const pid_t Grand = fork();
    if (Grand < 0)
      _exit(200);
    if (Grand == 0) {
      int GBad = countMismatches(PreFork, 'G');
      GBad += countMismatches(ChildSet, 'H');
      GBad += churnAndVerify(R, ChildSet, 'H', Count, 'I');
      _exit(GBad == 0 ? 0 : 201);
    }
    Bad += churnAndVerify(R, ChildSet, 'H', Count, 'J');
    int GStatus = 0;
    if (waitpid(Grand, &GStatus, 0) != Grand || !WIFEXITED(GStatus) ||
        WEXITSTATUS(GStatus) != 0)
      _exit(202);
    Bad += countMismatches(PreFork, 'G');
    _exit(Bad == 0 ? 0 : 203);
  }
  const int ParentBad = churnAndVerify(R, PreFork, 'G', Count, 'K');
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0) << "child/grandchild chain failed";
  EXPECT_EQ(ParentBad, 0);
  for (void *P : PreFork)
    R.free(P);
}

/// fd hygiene: the rebuild closes the inherited memfd, so the open-fd
/// count is identical in every fork generation. A leak of even one fd
/// per generation would break prefork servers.
TEST(ForkCorruptionTest, FdCountStableAcrossForkGenerations) {
  Runtime R(forkTestOptions());
  std::vector<void *> Warm = allocFilled(R, 1000, 'F');
  const int BaselineFds = countOpenFds();
  ASSERT_GT(BaselineFds, 0);

  // 4 chained generations, each reporting its fd count through its
  // exit status (offset so 0 stays "impossible").
  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    int Depth = 0;
    while (Depth < 3) {
      // Allocate in each generation so the rebuilt arena is exercised
      // before the next fork.
      std::vector<void *> Gen = allocFilled(R, 500, 'f');
      for (void *P : Gen)
        R.free(P);
      const pid_t Next = fork();
      if (Next < 0)
        _exit(240);
      if (Next != 0) {
        int St = 0;
        if (waitpid(Next, &St, 0) != Next || !WIFEXITED(St))
          _exit(241);
        _exit(WEXITSTATUS(St)); // propagate the deepest report
      }
      ++Depth;
    }
    const int Fds = countOpenFds();
    _exit(Fds == BaselineFds ? 0 : (Fds < BaselineFds ? 242 : 243));
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0)
      << "fd count drifted across fork generations (243 = leak)";
  for (void *P : Warm)
    R.free(P);
}

/// Forks while multiple threads storm the per-class arena shards —
/// refill misses and span frees in flight on several shard locks at
/// the fork instant. The quiesce must rendezvous with every arena
/// shard (not just ArenaLock, as before the split), or the child
/// inherits a shard lock mid-critical-section and deadlocks or
/// corrupts span state on its first refill.
TEST(ForkCorruptionTest, ForkUnderArenaShardContentionStaysCoherent) {
#ifdef MESH_TEST_TSAN
  GTEST_SKIP() << "forking while sibling threads run trips TSan's "
                  "internal deadlock detection, not the allocator's";
#endif
  Runtime R(forkTestOptions());
  const int Count = static_cast<int>(stressScaled(5000));
  std::vector<void *> PreFork = allocFilled(R, Count, 'S');

  // Churn threads, one per size class in the spread: with
  // MaxDirtyBytes=0 every batch free flushes its own arena shard, so
  // each thread continuously cycles its shard's lock through
  // alloc/free/flush while the main thread forks.
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Churners;
  for (int T = 0; T < kNumSizes; ++T) {
    Churners.emplace_back([&R, &Stop, T] {
      while (!Stop.load(std::memory_order_relaxed)) {
        std::vector<void *> Batch;
        for (int I = 0; I < 64; ++I) {
          void *P = R.malloc(sizeFor(T));
          if (P != nullptr) {
            memset(P, patternFor(I, 'T'), sizeFor(T));
            Batch.push_back(P);
          }
        }
        for (void *P : Batch)
          R.free(P);
        R.localHeap().releaseAll();
      }
    });
  }

  // A handful of forks mid-storm; each child verifies the pre-fork
  // set, reconciles accounting against the kernel, and proves its
  // rebuilt arena still serves every class.
  for (int Round = 0; Round < 3; ++Round) {
    const pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      int Bad = countMismatches(PreFork, 'S');
      if (R.global().dirtyBytes() != 0)
        ++Bad; // pre-fork flush must have emptied every shard
      if (pagesToBytes(R.global().kernelFilePages()) >
          R.global().committedBytes())
        ++Bad;
      std::vector<void *> ChildSet = allocFilled(R, Count, 'U');
      Bad += countMismatches(ChildSet, 'U');
      for (void *P : ChildSet)
        R.free(P);
      _exit(Bad == 0 ? 0 : (Bad > 250 ? 250 : Bad));
    }
    int Status = 0;
    ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
    ASSERT_TRUE(WIFEXITED(Status))
        << "child crashed under shard contention (status " << Status << ")";
    EXPECT_EQ(WEXITSTATUS(Status), 0) << "round " << Round;
  }

  Stop.store(true);
  for (auto &T : Churners)
    T.join();
  EXPECT_EQ(countMismatches(PreFork, 'S'), 0)
      << "storm or fork corrupted the parent's objects";
  for (void *P : PreFork)
    R.free(P);
}

/// The full protocol with the background mesher attached: quiesce,
/// copy, deferred child restart — and still no cross-process writes.
TEST(ForkCorruptionTest, ForkWithBackgroundMesherStaysIsolated) {
#ifdef MESH_TEST_TSAN
  GTEST_SKIP() << "TSan does not support the child's deferred "
                  "pthread_create after a multithreaded fork";
#endif
  Runtime R(forkTestOptions(/*Background=*/true));
  ASSERT_NE(R.backgroundMesher(), nullptr);
  const int Count = static_cast<int>(stressScaled(20000));
  std::vector<void *> PreFork = allocFilled(R, Count, 'B');

  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // The first allocation consumes the deferred mesher restart; the
    // churn must still be fully isolated from the parent.
    int Bad = churnAndVerify(R, PreFork, 'B', Count, 'D');
    _exit(Bad == 0 ? 0 : 1);
  }
  const int ParentBad = churnAndVerify(R, PreFork, 'B', Count, 'E');
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status)) << "child crashed (status " << Status << ")";
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  EXPECT_EQ(ParentBad, 0);
  for (void *P : PreFork)
    R.free(P);
}

} // namespace
