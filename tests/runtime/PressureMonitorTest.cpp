//===- PressureMonitorTest.cpp - Pressure policy unit tests -----------------===//
///
/// The monitor's policy is exercised against a fake FootprintSource
/// (threshold boundaries, the committed floor, the disable switch, the
/// clamp) and the production adapter is sanity-checked against a real
/// heap: the invariants committed >= span >= in-use must hold on any
/// live footprint sample.
///
//===----------------------------------------------------------------------===//

#include "runtime/PressureMonitor.h"

#include "core/Runtime.h"
#include "core/ThreadLocalHeap.h"

#include <gtest/gtest.h>

#include <vector>

using namespace mesh;

namespace {

/// A FootprintSource the test scripts directly.
class FakeSource final : public FootprintSource {
public:
  HeapFootprint Next;
  HeapFootprint sampleFootprint() const override { return Next; }
};

constexpr size_t kMiB = 1024 * 1024;

TEST(PressureMonitorTest, FragPpmMath) {
  EXPECT_EQ(PressureMonitor::fragPpm(0, 0), 0u);
  EXPECT_EQ(PressureMonitor::fragPpm(100, 100), 0u);
  EXPECT_EQ(PressureMonitor::fragPpm(100, 50), 500000u);
  EXPECT_EQ(PressureMonitor::fragPpm(100, 0), 1000000u);
  EXPECT_EQ(PressureMonitor::fragPpm(4 * kMiB, 3 * kMiB), 250000u);
  // InUse above committed (attached-span overcount racing a commit
  // update) clamps to "no pressure", never wraps.
  EXPECT_EQ(PressureMonitor::fragPpm(100, 200), 0u);
}

TEST(PressureMonitorTest, ThresholdBoundary) {
  FakeSource Src;
  PressureConfig Cfg;
  Cfg.FragThresholdPct = 30;
  Cfg.MinCommittedBytes = kMiB;
  PressureMonitor Mon(Src, Cfg);

  Src.Next.CommittedBytes = 10 * kMiB;
  Src.Next.InUseBytes = 7 * kMiB; // exactly 30% slack
  EXPECT_TRUE(Mon.underPressure(Mon.sample()));

  Src.Next.InUseBytes = 7 * kMiB + 64 * 1024; // just under threshold
  EXPECT_FALSE(Mon.underPressure(Mon.sample()));

  Src.Next.InUseBytes = 0; // fully fragmented
  EXPECT_TRUE(Mon.underPressure(Mon.sample()));
}

TEST(PressureMonitorTest, CommittedFloorSuppressesSmallHeaps) {
  FakeSource Src;
  PressureConfig Cfg;
  Cfg.FragThresholdPct = 10;
  Cfg.MinCommittedBytes = 8 * kMiB;
  PressureMonitor Mon(Src, Cfg);

  Src.Next.CommittedBytes = 8 * kMiB - 1; // fragmented but tiny
  Src.Next.InUseBytes = 0;
  EXPECT_FALSE(Mon.underPressure(Mon.sample()));

  Src.Next.CommittedBytes = 8 * kMiB; // at the floor
  EXPECT_TRUE(Mon.underPressure(Mon.sample()));
}

TEST(PressureMonitorTest, ZeroThresholdDisables) {
  FakeSource Src;
  PressureConfig Cfg;
  Cfg.FragThresholdPct = 0;
  Cfg.MinCommittedBytes = 0;
  PressureMonitor Mon(Src, Cfg);
  Src.Next.CommittedBytes = 100 * kMiB;
  Src.Next.InUseBytes = 0;
  EXPECT_FALSE(Mon.underPressure(Mon.sample()));
}

TEST(PressureMonitorTest, RssReadableOnLinux) {
  const size_t Rss = PressureMonitor::readRssBytes();
  // Any live process is resident; require at least one page so a
  // silently-broken parse (returning 0) fails here.
  EXPECT_GE(Rss, kPageSize);
  // And it lands in the sample.
  FakeSource Src;
  PressureMonitor Mon(Src, PressureConfig{});
  EXPECT_GE(Mon.sample().RssBytes, kPageSize);
}

TEST(PressureMonitorTest, GlobalHeapAdapterInvariants) {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{1} << 30;
  Runtime R(Opts);
  std::vector<void *> Kept;
  for (int I = 0; I < 4 * 256; ++I)
    Kept.push_back(R.malloc(64));

  GlobalHeapFootprintSource Src(R.global());
  const HeapFootprint F = Src.sampleFootprint();
  EXPECT_GT(F.InUseBytes, 0u);
  EXPECT_GT(F.SpanBytes, 0u);
  EXPECT_LE(F.InUseBytes, F.SpanBytes);
  EXPECT_LE(F.SpanBytes, F.CommittedBytes);
  EXPECT_EQ(F.CommittedBytes, R.committedBytes());

  // Freeing most objects through the global path (detached spans) must
  // raise the fragmentation ratio.
  const uint32_t Before =
      PressureMonitor::fragPpm(F.CommittedBytes, F.InUseBytes);
  R.localHeap().releaseAll();
  for (size_t I = 0; I < Kept.size(); ++I)
    if (I % 8 != 0)
      R.free(Kept[I]);
  const HeapFootprint After = Src.sampleFootprint();
  const uint32_t AfterPpm =
      PressureMonitor::fragPpm(After.CommittedBytes, After.InUseBytes);
  EXPECT_GT(AfterPpm, Before);

  for (size_t I = 0; I < Kept.size(); I += 8)
    R.free(Kept[I]);
}

} // namespace
