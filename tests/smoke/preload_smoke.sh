#!/bin/sh
#===------------------------------------------------------------------------===#
# LD_PRELOAD smoke harness: runs ordinary processes with libmesh.so
# interposed as their allocator. This is a regression fence for the
# shim + runtime bring-up path (early TLS setup, fork, exec, atexit),
# not a correctness suite — the binaries just have to run and produce
# their normal output.
#
# Usage: preload_smoke.sh <path-to-libmesh.so> <repo-source-dir>
#
# Two cases are *known* failures recorded as XFAIL so the day they
# start passing — or the day ls/git/bash regress — shows up in CI
# immediately: python3 segfaults during interpreter startup, and a
# forked bash child that never execs corrupts the parent through the
# MAP_SHARED arena (both tracked as ROADMAP.md open items).
#===------------------------------------------------------------------------===#
set -u

LIB="$1"
SRCDIR="$2"
FAILURES=0

if [ ! -r "$LIB" ]; then
  echo "FAIL: libmesh.so not found at $LIB"
  exit 1
fi

run_case() {
  NAME="$1"
  shift
  if LD_PRELOAD="$LIB" "$@" >/dev/null 2>&1; then
    echo "PASS: $NAME"
  else
    echo "FAIL: $NAME (exit $? under LD_PRELOAD=$LIB)"
    FAILURES=$((FAILURES + 1))
  fi
}

run_case "ls"         ls /
run_case "bash -c"    bash -c 'echo preload-ok && true'
if command -v git >/dev/null 2>&1 && [ -d "$SRCDIR/.git" ]; then
  run_case "git status" git -C "$SRCDIR" status --porcelain
else
  echo "SKIP: git status (no git or no repo at $SRCDIR)"
fi

# Known failure: a forked bash child that never execs (subshell,
# command substitution, pipe-to-builtin). Parent and child fork with
# identical allocator metadata over a MAP_SHARED arena, hand out the
# same slots, and the child's writes corrupt the parent (ROADMAP.md
# "Fork gap"; fix is copy-to-fresh-memfd in the atfork child handler).
# Fork-then-exec — the run_case lines above — is unaffected.
if timeout 30 env LD_PRELOAD="$LIB" bash -c 'x=$(echo hi); test "$x" = hi' >/dev/null 2>&1; then
  echo "XPASS: bash fork-without-exec unexpectedly survives the" \
       "shared-arena gap — update the ROADMAP.md open item"
else
  echo "XFAIL: bash fork-without-exec (known shared-arena gap," \
       "tracked in ROADMAP.md)"
fi

# Known failure: python3 startup (ROADMAP.md open item). Expected to
# crash; treated as XFAIL. If it ever passes, say so loudly (and go
# check the ROADMAP item off) without failing the fence.
if command -v python3 >/dev/null 2>&1; then
  if LD_PRELOAD="$LIB" python3 -c 'print("ok")' >/dev/null 2>&1; then
    echo "XPASS: python3 unexpectedly runs under the preload —" \
         "update the ROADMAP.md open item"
  else
    echo "XFAIL: python3 startup (known, tracked in ROADMAP.md)"
  fi
else
  echo "SKIP: python3 (not installed)"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES preload smoke case(s) regressed"
  exit 1
fi
echo "preload smoke green (bash fork-without-exec and python3 remain" \
     "expected-fail)"
exit 0
