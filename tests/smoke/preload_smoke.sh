#!/bin/sh
#===------------------------------------------------------------------------===#
# LD_PRELOAD smoke harness: runs ordinary processes with libmesh.so
# interposed as their allocator. This is a regression fence for the
# shim + runtime bring-up path (early TLS setup, fork, exec, atexit),
# not a correctness suite — the binaries just have to run and produce
# their normal output.
#
# Usage: preload_smoke.sh <path-to-libmesh.so> <repo-source-dir>
#
# Everything here is a hard expected-pass. Fork-without-exec
# (subshells, command substitution, pipelines to builtins) and python3
# — whose historical startup segfault was the fork gap in disguise —
# are requirements since the copy-to-fresh-memfd fork protocol landed.
#===------------------------------------------------------------------------===#
set -u

LIB="$1"
SRCDIR="$2"
FAILURES=0

if [ ! -r "$LIB" ]; then
  echo "FAIL: libmesh.so not found at $LIB"
  exit 1
fi

run_case() {
  NAME="$1"
  shift
  if LD_PRELOAD="$LIB" "$@" >/dev/null 2>&1; then
    echo "PASS: $NAME"
  else
    echo "FAIL: $NAME (exit $? under LD_PRELOAD=$LIB)"
    FAILURES=$((FAILURES + 1))
  fi
}

# Like run_case, but bounded by timeout(1): these cases' historical
# failure mode is cross-process heap corruption, which can hang (a
# wedged lock in the corrupted parent) rather than crash.
run_case_bounded() {
  NAME="$1"
  shift
  if timeout 30 env LD_PRELOAD="$LIB" "$@" >/dev/null 2>&1; then
    echo "PASS: $NAME"
  else
    echo "FAIL: $NAME (exit $? under LD_PRELOAD=$LIB)"
    FAILURES=$((FAILURES + 1))
  fi
}

run_case "ls"         ls /
run_case "bash -c"    bash -c 'echo preload-ok && true'
if command -v git >/dev/null 2>&1 && [ -d "$SRCDIR/.git" ]; then
  run_case "git status" git -C "$SRCDIR" status --porcelain
else
  echo "SKIP: git status (no git or no repo at $SRCDIR)"
fi

# Fork-without-exec (subshell, command substitution, pipe-to-builtin):
# hard expected-pass since the copy-to-fresh-memfd fork protocol. The
# child's atfork handler rebuilds the arena on a private memfd, so a
# forked bash child that keeps allocating no longer shares (and
# corrupts) the parent's span pages. Historically these corrupted the
# *parent* bash — any regression here is a fork-protocol regression.
run_case_bounded "bash fork-without-exec: subshell" \
  bash -c '(echo hi)'
run_case_bounded "bash fork-without-exec: comsub" \
  bash -c 'x=$(echo hi); test "$x" = hi'
run_case_bounded "bash fork-without-exec: pipeline" \
  bash -c 'echo hi | { read x; test "$x" = hi; }'
run_case_bounded "bash fork-without-exec: nested chain" \
  bash -c 'for i in 1 2 3; do x=$( (echo hi | { read y; echo "$y"; }) ); test "$x" = hi || exit 1; done'

# python3: a hard expected-pass since the fork protocol landed. The
# long-standing "python3 startup segfault" turned out to be the fork
# gap wearing a different hat: interpreter startup forks (the
# MESH_DEBUG_SHIM trace plus a fork-logging preload pinned it), and
# those children allocate between fork and exec, which corrupted the
# parent through the shared arena. Bounded like the bash fork cases —
# the historical failure mode can hang, not just crash.
if command -v python3 >/dev/null 2>&1; then
  run_case_bounded "python3 startup" python3 -c 'print("ok")'
  run_case_bounded "python3 fork-without-exec" \
    python3 -c 'import os,sys; pid=os.fork()
if pid == 0:
    data=[bytes([i % 251]) * 64 for i in range(20000)]
    os._exit(0 if all(b[0] == i % 251 for i, b in enumerate(data)) else 1)
st=os.waitpid(pid, 0)[1]
junk=[bytearray(64) for _ in range(20000)]
sys.exit(0 if st == 0 else 1)'
else
  echo "SKIP: python3 (not installed)"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES preload smoke case(s) regressed"
  exit 1
fi
echo "preload smoke green"
exit 0
