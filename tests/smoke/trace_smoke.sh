#!/bin/sh
#===------------------------------------------------------------------------===#
# MESH_TRACE smoke: the telemetry layer's end-to-end dump pipeline must
# work on a real interposed process, not just in-process harnesses.
#
# Runs a bash fork/pipeline chain (the hardest preload shape: subshell
# children inherit the armed recorder and dump on their own exits; the
# parent exits last, so its complete dump wins the file) under
# LD_PRELOAD=libmesh.so with MESH_TRACE set, then validates the dump
# twice: python3 -m json.tool for well-formedness, tools/mesh-top.py
# --check for the schema (event taxonomy, histogram shapes, sidecar
# counters).
#
# Usage: trace_smoke.sh <path-to-libmesh.so> <repo-source-dir>
#===------------------------------------------------------------------------===#
set -u

LIB="$1"
SRCDIR="$2"

if [ ! -r "$LIB" ]; then
  echo "FAIL: libmesh.so not found at $LIB"
  exit 1
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not installed; cannot validate the dump"
  exit 0
fi

TRACE="$(mktemp /tmp/mesh-trace-smoke.XXXXXX.json)"
trap 'rm -f "$TRACE"' EXIT

# Enough churn to exercise malloc, fork-without-exec, and exec paths;
# meshing itself is not required for a valid (possibly event-light)
# trace — the schema check is about the dump contract.
if ! timeout 60 env LD_PRELOAD="$LIB" MESH_TRACE="$TRACE" \
    bash -c 'for i in 1 2 3 4; do
               x=$( (echo hi | { read y; echo "$y"; }) ) || exit 1
               test "$x" = hi || exit 1
             done
             ls / >/dev/null'; then
  echo "FAIL: traced bash chain did not run clean under LD_PRELOAD"
  exit 1
fi

if [ ! -s "$TRACE" ]; then
  echo "FAIL: MESH_TRACE produced no dump at $TRACE"
  exit 1
fi
if ! python3 -m json.tool "$TRACE" >/dev/null; then
  echo "FAIL: dump is not well-formed JSON"
  exit 1
fi
if ! python3 "$SRCDIR/tools/mesh-top.py" --check "$TRACE"; then
  echo "FAIL: dump violates the mesh-top schema"
  exit 1
fi
echo "trace smoke green"
exit 0
