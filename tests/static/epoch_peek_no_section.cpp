//===- epoch_peek_no_section.cpp - MUST NOT COMPILE ------------------------===//
///
/// Contract under test: GlobalHeap::miniheapFor() is the dereferencable
/// page-table lookup and carries MESH_REQUIRES_SHARED(MiniHeapEpoch) —
/// an epoch-free peek is exactly the use-after-retire window the epoch
/// exists to close, and must not build. Expected diagnostic:
///   calling function 'miniheapFor' requires holding epoch ...
///
/// (The epoch-free form that only compares identities is
/// miniheapIdentityFor(), which positive_control.cpp exercises.)
///
//===----------------------------------------------------------------------===//

#include "core/GlobalHeap.h"

namespace {

// VIOLATION: page-table peek with no Epoch::Section on the miniheap
// epoch; the returned metadata could be retired mid-use.
mesh::MiniHeap *peekLockless(mesh::GlobalHeap &Heap, const void *Ptr) {
  return Heap.miniheapFor(Ptr);
}

void *Use = reinterpret_cast<void *>(&peekLockless);

} // namespace
