//===- excludes_self_deadlock.cpp - MUST NOT COMPILE -----------------------===//
///
/// Contract under test: Epoch::synchronize() carries MESH_EXCLUDES on
/// its own epoch — a thread that synchronizes while inside one of its
/// reader sections waits for itself forever. Expected diagnostic:
///   cannot call function 'synchronize' while epoch ... is held
///
/// This is the annotated form of the lock-order discipline: EXCLUDES
/// on the entry points (meshNow, epochSynchronize, synchronize) turns
/// "never re-enter the hierarchy from inside it" into a compile error.
///
//===----------------------------------------------------------------------===//

#include "support/Epoch.h"

namespace {

// VIOLATION: synchronize() from inside a reader section of the same
// epoch — the writer waits for a reader count this thread holds.
void drainWhileReading(mesh::Epoch &E) {
  mesh::Epoch::Section Guard(E);
  E.synchronize();
}

void *Use = reinterpret_cast<void *>(&drainWhileReading);

} // namespace
