//===- guarded_field_no_lock.cpp - MUST NOT COMPILE ------------------------===//
///
/// Contract under test: a MESH_GUARDED_BY field cannot be touched
/// without its SpinLock held. Expected diagnostic:
///   writing variable 'Counter' requires holding mutex 'Lock'
///
//===----------------------------------------------------------------------===//

#include "support/SpinLock.h"

namespace {

struct Counters {
  mesh::SpinLock Lock;
  unsigned long Counter MESH_GUARDED_BY(Lock) = 0;
};

// VIOLATION: bumps the guarded field with the lock not held.
void bumpLockless(Counters &C) { ++C.Counter; }

// Silence -Wunused-function without main()/linking.
void *Use = reinterpret_cast<void *>(&bumpLockless);

} // namespace
