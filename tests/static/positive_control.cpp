//===- positive_control.cpp - MUST COMPILE CLEAN ---------------------------===//
///
/// The same surfaces the negative cases abuse, used correctly: scoped
/// guards, an epoch section around the dereferencable page-table peek,
/// the identity-only accessor outside any section, and try-lock with
/// the adopt guard. If this TU ever warns under -Werror=thread-safety,
/// the annotation plumbing itself broke (e.g. a macro expanding to
/// nothing under Clang) — and every negative case would be passing for
/// the wrong reason, which is why this control exists.
///
//===----------------------------------------------------------------------===//

#include "core/GlobalHeap.h"
#include "support/Epoch.h"
#include "support/SpinLock.h"

namespace {

struct Counters {
  mesh::SpinLock Lock;
  unsigned long Counter MESH_GUARDED_BY(Lock) = 0;
};

void bumpGuarded(Counters &C) {
  mesh::SpinLockGuard Guard(C.Lock);
  ++C.Counter;
}

bool bumpIfUncontended(Counters &C) {
  if (!C.Lock.try_lock())
    return false;
  mesh::SpinLockGuard Guard(C.Lock, mesh::AdoptLock);
  ++C.Counter;
  return true;
}

mesh::MiniHeap *peekUnderEpoch(mesh::GlobalHeap &Heap, const void *Ptr) {
  mesh::Epoch::Section Guard(Heap.miniheapEpoch());
  return Heap.miniheapFor(Ptr);
}

bool sameOwner(mesh::GlobalHeap &Heap, const void *A, const void *B) {
  // Identity-only comparison: no epoch needed, nothing dereferenced.
  return Heap.miniheapIdentityFor(A) == Heap.miniheapIdentityFor(B);
}

void drainOutsideSection(mesh::Epoch &E) { E.synchronize(); }

void *Uses[] = {
    reinterpret_cast<void *>(&bumpGuarded),
    reinterpret_cast<void *>(&bumpIfUncontended),
    reinterpret_cast<void *>(&peekUnderEpoch),
    reinterpret_cast<void *>(&sameOwner),
    reinterpret_cast<void *>(&drainOutsideSection),
};

} // namespace
