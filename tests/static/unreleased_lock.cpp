//===- unreleased_lock.cpp - MUST NOT COMPILE ------------------------------===//
///
/// Contract under test: a bare lock() with an early return that skips
/// the unlock leaks the capability — the classic bug SpinLockGuard
/// exists to make unwritable. Expected diagnostic:
///   mutex 'L' is still held at the end of function
///
//===----------------------------------------------------------------------===//

#include "support/SpinLock.h"

namespace {

// VIOLATION: the Value==0 path returns with L held.
int takeAndMaybeLeak(mesh::SpinLock &L, int Value) {
  L.lock();
  if (Value == 0)
    return -1;
  L.unlock();
  return Value;
}

void *Use = reinterpret_cast<void *>(&takeAndMaybeLeak);

} // namespace
