//===- BenchJsonSchemaTest.cpp - bench JSON emission contract ----------------===//
///
/// The bench harnesses' --json lines are machine-consumed twice over:
/// by tools/bench_compare.py (the CI regression gate) and by the
/// committed BENCH_*.json trajectory files. This test pins the
/// emission side of that contract: every shape the benches produce —
/// the flat all-numeric benchReportJson lines (bench_mt et al.) and
/// the string/series-bearing BenchJsonWriter documents (bench_soak) —
/// must parse as strict JSON, carry the schema-version field, and type
/// every required key correctly. A minimal strict JSON parser lives in
/// the test so the contract is "valid JSON", not "whatever this
/// emitter printed".
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace mesh {
namespace {

//===----------------------------------------------------------------------===//
// Minimal strict JSON parser: objects, arrays, strings (no escapes —
// the emitter never produces them), numbers, true/false. Parse errors
// fail the calling test via ADD_FAILURE and a null result.
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum Kind { Null, Number, String, Bool, Array, Object } K = Null;
  double Num = 0;
  bool B = false;
  std::string Str;
  std::vector<JsonValue> Elements;
  std::map<std::string, JsonValue> Members;

  bool isNumber() const { return K == Number; }
  bool isString() const { return K == String; }

  const JsonValue *member(const std::string &Key) const {
    auto It = Members.find(Key);
    return It == Members.end() ? nullptr : &It->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  bool parse(JsonValue &Out) {
    const bool Ok = parseValue(Out) && (skipWs(), Pos == Text.size());
    if (!Ok)
      ADD_FAILURE() << "JSON parse error at offset " << Pos << " in:\n"
                    << Text;
    return Ok;
  }

private:
  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool parseValue(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return false;
    const char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"')
      return parseString(Out);
    if (C == 't' || C == 'f')
      return parseBool(Out);
    return parseNumber(Out);
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue Key;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"' || !parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return false;
      ++Pos;
      JsonValue Value;
      if (!parseValue(Value))
        return false;
      if (!Out.Members.emplace(Key.Str, std::move(Value)).second)
        return false; // Duplicate key: also a contract violation.
      skipWs();
      if (Pos >= Text.size())
        return false;
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue Element;
      if (!parseValue(Element))
        return false;
      Out.Elements.push_back(std::move(Element));
      skipWs();
      if (Pos >= Text.size())
        return false;
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool parseString(JsonValue &Out) {
    Out.K = JsonValue::String;
    ++Pos; // '"'
    const size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        return false; // Emitter contract: no escapes needed or produced.
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    Out.Str = Text.substr(Start, Pos - Start);
    ++Pos; // closing '"'
    return true;
  }

  bool parseBool(JsonValue &Out) {
    Out.K = JsonValue::Bool;
    if (Text.compare(Pos, 4, "true") == 0) {
      Out.B = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Out.B = false;
      Pos += 5;
      return true;
    }
    return false;
  }

  bool parseNumber(JsonValue &Out) {
    Out.K = JsonValue::Number;
    const char *Begin = Text.c_str() + Pos;
    char *End = nullptr;
    Out.Num = std::strtod(Begin, &End);
    if (End == Begin)
      return false;
    Pos += static_cast<size_t>(End - Begin);
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
};

void expectNumberKey(const JsonValue &Doc, const char *Key) {
  const JsonValue *V = Doc.member(Key);
  ASSERT_NE(V, nullptr) << "missing required key: " << Key;
  EXPECT_TRUE(V->isNumber()) << "key not numeric: " << Key;
}

void expectStringKey(const JsonValue &Doc, const char *Key,
                     const char *Expected = nullptr) {
  const JsonValue *V = Doc.member(Key);
  ASSERT_NE(V, nullptr) << "missing required key: " << Key;
  ASSERT_TRUE(V->isString()) << "key not a string: " << Key;
  if (Expected != nullptr) {
    EXPECT_EQ(V->Str, Expected) << "key: " << Key;
  }
}

/// RAII guard: forces smoke mode off (or on) and restores it, since
/// benchSmokeMode() is process-global state shared across tests.
class SmokeModeGuard {
public:
  explicit SmokeModeGuard(bool Value) : Saved(benchSmokeMode()) {
    benchSmokeMode() = Value;
  }
  ~SmokeModeGuard() { benchSmokeMode() = Saved; }

private:
  bool Saved;
};

//===----------------------------------------------------------------------===//
// The flat all-numeric shape (benchReportJson: bench_mt, bench_redis,
// bench_firefox, ...).
//===----------------------------------------------------------------------===//

TEST(BenchJsonSchemaTest, FlatMetricLineParsesWithSchemaAndTypes) {
  SmokeModeGuard Smoke(false);
  // The bench_mt emission shape, via the same writer benchReportJson
  // uses (benchReportJson itself is gated on --json and prints to
  // stdout; finish() hands the test the identical document).
  BenchJsonWriter W("bench_mt", "cross");
  W.number("alloc_threads", 4);
  W.number("free_threads", 4);
  W.number("ops_per_sec", 12345678.25);
  W.number("p99_malloc_ns", 512.5);
  W.number("p99_free_ns", 347);
  W.number("samples_n_malloc", 31250);
  W.number("samples_n_free", 31250);
  W.number("max_pause_foreground_ns", 1.5e6);

  JsonValue Doc;
  ASSERT_TRUE(JsonParser(W.finish()).parse(Doc));
  ASSERT_EQ(Doc.K, JsonValue::Object);

  const JsonValue *Schema = Doc.member("schema");
  ASSERT_NE(Schema, nullptr) << "every line must carry a schema version";
  ASSERT_TRUE(Schema->isNumber());
  EXPECT_EQ(Schema->Num, kBenchJsonSchemaVersion);

  expectStringKey(Doc, "bench", "bench_mt");
  expectStringKey(Doc, "config", "cross");
  EXPECT_EQ(Doc.member("smoke"), nullptr)
      << "smoke flag must be absent outside --smoke";
  for (const char *Key :
       {"alloc_threads", "free_threads", "ops_per_sec", "p99_malloc_ns",
        "p99_free_ns", "samples_n_malloc", "samples_n_free",
        "max_pause_foreground_ns"})
    expectNumberKey(Doc, Key);
  EXPECT_EQ(Doc.member("ops_per_sec")->Num, 12345678.25)
      << "numbers must round-trip exactly through the emitter";
}

TEST(BenchJsonSchemaTest, SmokeModeIsFlaggedOnTheLine) {
  SmokeModeGuard Smoke(true);
  BenchJsonWriter W("bench_mt", "local");
  W.number("ops_per_sec", 1);
  JsonValue Doc;
  ASSERT_TRUE(JsonParser(W.finish()).parse(Doc));
  const JsonValue *Flag = Doc.member("smoke");
  ASSERT_NE(Flag, nullptr)
      << "smoke runs must be marked: their numbers are not comparable";
  EXPECT_EQ(Flag->K, JsonValue::Bool);
  EXPECT_TRUE(Flag->B);
}

TEST(BenchJsonSchemaTest, EmptyConfigOmitsTheKey) {
  SmokeModeGuard Smoke(false);
  BenchJsonWriter W("bench_analysis", "");
  W.number("x", 0);
  JsonValue Doc;
  ASSERT_TRUE(JsonParser(W.finish()).parse(Doc));
  EXPECT_EQ(Doc.member("config"), nullptr);
  expectStringKey(Doc, "bench", "bench_analysis");
}

//===----------------------------------------------------------------------===//
// The series-bearing soak shape (bench_soak).
//===----------------------------------------------------------------------===//

TEST(BenchJsonSchemaTest, SoakLineWithSeriesParsesWithTypedRows) {
  SmokeModeGuard Smoke(false);
  // The bench_soak emission shape: strings, the full metric set, and
  // a nested [op, seconds, mib] series.
  BenchJsonWriter W("bench_soak", "kvstore-mesh");
  W.string("workload", "kvstore");
  W.string("allocator", "mesh");
  W.string("profile", "ci");
  for (const char *Key :
       {"ops", "threads", "forks", "seconds", "ops_per_sec", "p50_op_ns",
        "p99_op_ns", "p999_op_ns", "samples_n", "max_pause_fg_ns",
        "max_pause_bg_ns", "mesh_passes_fg", "mesh_passes_bg",
        "rss_mean_mib", "rss_peak_mib", "rss_final_mib", "committed_mib",
        "in_use_mib", "kernel_file_mib", "meshed_away_pct", "frag_pct",
        "evictions", "defrag_passes", "defrag_moved_mib", "get_mismatches"})
    W.number(Key, 1.0);
  W.beginArray("rss_series");
  W.arrayRow({0, 0.0, 0.0});
  W.arrayRow({100000, 1.25, 24.5});
  W.arrayRow({200000, 2.5, 23.75});
  W.endArray();

  JsonValue Doc;
  ASSERT_TRUE(JsonParser(W.finish()).parse(Doc));

  const JsonValue *Schema = Doc.member("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->Num, kBenchJsonSchemaVersion);
  expectStringKey(Doc, "bench", "bench_soak");
  expectStringKey(Doc, "config", "kvstore-mesh");
  expectStringKey(Doc, "workload", "kvstore");
  expectStringKey(Doc, "allocator", "mesh");
  expectStringKey(Doc, "profile", "ci");
  for (const char *Key :
       {"ops", "threads", "forks", "seconds", "ops_per_sec", "p50_op_ns",
        "p99_op_ns", "p999_op_ns", "samples_n", "max_pause_fg_ns",
        "max_pause_bg_ns", "mesh_passes_fg", "mesh_passes_bg",
        "rss_mean_mib", "rss_peak_mib", "rss_final_mib", "committed_mib",
        "in_use_mib", "kernel_file_mib", "meshed_away_pct", "frag_pct",
        "evictions", "defrag_passes", "defrag_moved_mib", "get_mismatches"})
    expectNumberKey(Doc, Key);

  const JsonValue *Series = Doc.member("rss_series");
  ASSERT_NE(Series, nullptr);
  ASSERT_EQ(Series->K, JsonValue::Array);
  ASSERT_EQ(Series->Elements.size(), 3u);
  for (const JsonValue &Row : Series->Elements) {
    ASSERT_EQ(Row.K, JsonValue::Array);
    ASSERT_EQ(Row.Elements.size(), 3u)
        << "series rows are [op_index, elapsed_seconds, committed_mib]";
    for (const JsonValue &Cell : Row.Elements)
      EXPECT_TRUE(Cell.isNumber());
  }
  EXPECT_EQ(Series->Elements[1].Elements[2].Num, 24.5);
}

TEST(BenchJsonSchemaTest, EmptyArrayIsValid) {
  SmokeModeGuard Smoke(false);
  BenchJsonWriter W("bench_soak", "redis-glibc");
  W.beginArray("rss_series");
  W.endArray();
  JsonValue Doc;
  ASSERT_TRUE(JsonParser(W.finish()).parse(Doc));
  const JsonValue *Series = Doc.member("rss_series");
  ASSERT_NE(Series, nullptr);
  EXPECT_EQ(Series->K, JsonValue::Array);
  EXPECT_TRUE(Series->Elements.empty());
}

//===----------------------------------------------------------------------===//
// The shared quantile helper both emitters report from.
//===----------------------------------------------------------------------===//

TEST(BenchJsonSchemaTest, QuantileInterpolatesInsteadOfReturningMax) {
  // The regression benchQuantile fixed: nearest-rank size()*99/100 on
  // a 10-sample set returned index 9 — the maximum — making small-run
  // p99s pure noise.
  std::vector<uint64_t> Samples = {10, 20, 30, 40, 50, 60, 70, 80, 90, 1000};
  const double P99 = benchQuantile(Samples, 0.99);
  EXPECT_LT(P99, 1000.0) << "p99 over 10 samples must not be the max";
  EXPECT_NEAR(P99, 90 + 0.91 * (1000 - 90), 1e-9);

  const double P50 = benchQuantile(Samples, 0.50);
  EXPECT_NEAR(P50, 55.0, 1e-9);

  std::vector<uint64_t> One = {42};
  EXPECT_EQ(benchQuantile(One, 0.99), 42.0);
  std::vector<uint64_t> None;
  EXPECT_EQ(benchQuantile(None, 0.99), 0.0);
}

} // namespace
} // namespace mesh
