//===- BitmapTest.cpp - Atomic bitmap unit tests -------------------------===//

#include "support/Bitmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <thread>
#include <vector>

namespace mesh {
namespace {

TEST(BitmapTest, StartsEmpty) {
  Bitmap B(256);
  EXPECT_EQ(B.inUseCount(), 0u);
  for (uint32_t I = 0; I < 256; ++I)
    EXPECT_FALSE(B.isSet(I));
}

TEST(BitmapTest, TryToSetReportsTransition) {
  Bitmap B(64);
  EXPECT_TRUE(B.tryToSet(3));
  EXPECT_FALSE(B.tryToSet(3)) << "second set of the same bit must fail";
  EXPECT_TRUE(B.isSet(3));
  EXPECT_EQ(B.inUseCount(), 1u);
}

TEST(BitmapTest, UnsetReportsTransition) {
  Bitmap B(64);
  B.tryToSet(10);
  EXPECT_TRUE(B.unset(10));
  EXPECT_FALSE(B.unset(10)) << "double free must be detectable";
  EXPECT_EQ(B.inUseCount(), 0u);
}

TEST(BitmapTest, WordBoundaries) {
  Bitmap B(256);
  for (uint32_t I : {0u, 63u, 64u, 127u, 128u, 191u, 192u, 255u}) {
    EXPECT_TRUE(B.tryToSet(I));
    EXPECT_TRUE(B.isSet(I));
  }
  EXPECT_EQ(B.inUseCount(), 8u);
}

TEST(BitmapTest, ClearAllResets) {
  Bitmap B(128);
  for (uint32_t I = 0; I < 128; I += 3)
    B.tryToSet(I);
  B.clearAll();
  EXPECT_EQ(B.inUseCount(), 0u);
}

TEST(BitmapTest, MeshableIffDisjoint) {
  Bitmap A(16), B(16);
  A.tryToSet(0);
  A.tryToSet(5);
  B.tryToSet(1);
  B.tryToSet(6);
  EXPECT_TRUE(A.isMeshableWith(B));
  EXPECT_TRUE(B.isMeshableWith(A));
  B.tryToSet(5); // now overlapping
  EXPECT_FALSE(A.isMeshableWith(B));
}

TEST(BitmapTest, EmptyMeshesWithAnything) {
  Bitmap Empty(256), Full(256);
  for (uint32_t I = 0; I < 256; ++I)
    Full.tryToSet(I);
  EXPECT_TRUE(Empty.isMeshableWith(Full));
}

TEST(BitmapTest, MergeFromIsUnion) {
  Bitmap A(32), B(32);
  A.tryToSet(1);
  A.tryToSet(2);
  B.tryToSet(8);
  B.tryToSet(9);
  A.mergeFrom(B);
  EXPECT_EQ(A.inUseCount(), 4u);
  EXPECT_TRUE(A.isSet(8));
  EXPECT_TRUE(A.isSet(9));
  EXPECT_TRUE(A.isSet(1));
}

TEST(BitmapTest, ForEachSetVisitsInOrder) {
  Bitmap B(256);
  std::vector<uint32_t> Want = {0, 7, 63, 64, 100, 255};
  for (uint32_t I : Want)
    B.tryToSet(I);
  std::vector<uint32_t> Got;
  B.forEachSet([&](uint32_t I) { Got.push_back(I); });
  EXPECT_EQ(Got, Want);
}

TEST(BitmapTest, ConcurrentTryToSetIsLinearizable) {
  // 8 threads race to set all 256 bits; every bit must be won exactly
  // once in total.
  Bitmap B(256);
  std::atomic<int> Wins{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&] {
      int Local = 0;
      for (uint32_t I = 0; I < 256; ++I)
        Local += B.tryToSet(I);
      Wins += Local;
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Wins.load(), 256);
  EXPECT_EQ(B.inUseCount(), 256u);
}

TEST(BitmapTest, SetFirstUnsetClaimsAscending) {
  Bitmap B(130); // Spans three words, last one partial.
  uint32_t Idx = ~0u;
  for (uint32_t Expected = 0; Expected < 130; ++Expected) {
    ASSERT_TRUE(B.setFirstUnset(&Idx));
    EXPECT_EQ(Idx, Expected);
  }
  EXPECT_FALSE(B.setFirstUnset(&Idx)) << "full bitmap claimed a bit";
  EXPECT_EQ(B.inUseCount(), 130u);
}

TEST(BitmapTest, SetFirstUnsetSkipsSetBitsAndHonorsFrom) {
  Bitmap B(256);
  for (uint32_t I = 0; I < 256; I += 2)
    B.tryToSet(I); // Even bits taken.
  uint32_t Idx = 0;
  ASSERT_TRUE(B.setFirstUnset(&Idx));
  EXPECT_EQ(Idx, 1u);
  ASSERT_TRUE(B.setFirstUnset(&Idx, 100));
  EXPECT_EQ(Idx, 101u);
  ASSERT_TRUE(B.setFirstUnset(&Idx, 101)); // 101 now set; next odd is 103.
  EXPECT_EQ(Idx, 103u);
  ASSERT_TRUE(B.setFirstUnset(&Idx, 255));
  EXPECT_EQ(Idx, 255u);
  EXPECT_FALSE(B.setFirstUnset(&Idx, 255));
}

TEST(BitmapTest, ClaimUnsetBitsTakesEverythingFreeInOrder) {
  Bitmap B(200);
  B.tryToSet(0);
  B.tryToSet(63);
  B.tryToSet(64);
  B.tryToSet(199);
  std::vector<uint32_t> Got;
  const uint32_t N = B.claimUnsetBits([&](uint32_t I) { Got.push_back(I); });
  EXPECT_EQ(N, 196u);
  EXPECT_EQ(Got.size(), 196u);
  EXPECT_TRUE(std::is_sorted(Got.begin(), Got.end()));
  EXPECT_EQ(Got.front(), 1u);
  EXPECT_EQ(Got.back(), 198u);
  EXPECT_EQ(B.inUseCount(), 200u);
  // A second claim finds nothing.
  EXPECT_EQ(B.claimUnsetBits([](uint32_t) {}), 0u);
}

TEST(BitmapTest, ClaimUnsetBitsRespectsCapacity) {
  Bitmap B(10);
  uint32_t Claimed = 0;
  B.claimUnsetBits([&](uint32_t I) {
    EXPECT_LT(I, 10u);
    ++Claimed;
  });
  EXPECT_EQ(Claimed, 10u);
  // Out-of-range bits must stay zero (the meshability predicate relies
  // on it).
  EXPECT_EQ(B.word(0) >> 10, 0u);
}

TEST(BitmapTest, ConcurrentSetFirstUnsetNeverDoubleClaims) {
  Bitmap B(256);
  std::atomic<int> Claims{0};
  std::array<std::atomic<int>, 256> PerBit{};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&] {
      uint32_t Idx;
      while (B.setFirstUnset(&Idx)) {
        PerBit[Idx].fetch_add(1);
        Claims.fetch_add(1);
      }
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Claims.load(), 256);
  for (uint32_t I = 0; I < 256; ++I)
    EXPECT_EQ(PerBit[I].load(), 1) << "bit " << I << " double-claimed";
}

TEST(BitmapTest, ConcurrentSetUnsetBalance) {
  Bitmap B(64);
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      for (int Round = 0; Round < 10000; ++Round) {
        const uint32_t Bit = (T * 16 + Round) % 64;
        if (B.tryToSet(Bit)) {
          ASSERT_TRUE(B.unset(Bit));
        }
      }
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(B.inUseCount(), 0u);
}

} // namespace
} // namespace mesh
