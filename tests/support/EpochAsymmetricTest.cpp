//===- EpochAsymmetricTest.cpp - Asymmetric epoch fence-protocol tests ------===//
///
/// Pins the asymmetric epoch contract from the sharding PR:
///
///   - the reader fast path (enter/exit on an exclusive slot in
///     kAsymmetric mode) contains zero fence instructions — no lock
///     prefix, no mfence, no xchg — verified by disassembling this
///     binary's own instantiation of the inline path;
///   - the membarrier-backed protocol and the forced seq-cst fallback
///     (MESH_MEMBARRIER=0, or kernels without the syscall) are
///     behaviourally identical: same reclamation guarantees, same
///     synchronize() blocking behaviour, differentially exercised in
///     one process via the test mode hook;
///   - a failing expedited membarrier (fault-injected through the
///     Sys.h seam) degrades the process to the seq-cst protocol
///     mid-run instead of corrupting reclamation;
///   - fork: the child re-registers the expedited command and its
///     epoch resets clean — the first post-fork synchronize() must not
///     wedge on reader counts orphaned by parent threads, in either
///     fence mode.
///
//===----------------------------------------------------------------------===//

#include "support/Epoch.h"

#include "TestConfig.h"
#include "core/Runtime.h"
#include "support/Sys.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mesh;

// The probes the disassembly test inspects: force the inline reader
// path to be instantiated out-of-line under known unmangled names.
// "used" keeps them alive past -O2 dead-code elimination.
extern "C" __attribute__((noinline, used)) void
meshEpochReaderProbe(Epoch *E) {
  Epoch::Guard G = E->enter();
  E->exit(G);
}

namespace {

/// Restores the real (hardware-decided) fence mode around every test:
/// the mode is process-global and these tests deliberately force it.
class EpochAsymmetricTest : public ::testing::Test {
protected:
  void SetUp() override { Decided = Epoch::decideFenceMode(); }
  void TearDown() override {
    sys::clearFaults();
    Epoch::setFenceModeForTest(Decided);
  }
  EpochFenceMode Decided;
};

// Only the optimized x86_64 non-sanitizer build runs the
// instruction-level pin below; elsewhere the helper would be unused
// and -Werror objects.
#if defined(__x86_64__) && defined(__OPTIMIZE__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
/// Disassembles one symbol of this binary via objdump; empty string if
/// the tooling is unavailable.
std::string disassembleSymbol(const char *Symbol) {
  char Cmd[512];
  snprintf(Cmd, sizeof(Cmd), "objdump -d --no-show-raw-insn /proc/%d/exe",
           getpid());
  FILE *P = popen(Cmd, "r");
  if (P == nullptr)
    return "";
  std::string Out;
  std::string Needle = std::string("<") + Symbol + ">:";
  char Line[512];
  bool In = false;
  while (fgets(Line, sizeof(Line), P) != nullptr) {
    if (!In) {
      if (strstr(Line, Needle.c_str()) != nullptr)
        In = true;
      continue;
    }
    if (Line[0] == '\n') // blank line ends the symbol's listing
      break;
    Out += Line;
  }
  pclose(P);
  return Out;
}
#endif // x86_64 optimized non-sanitizer

/// The acceptance criterion of the asymmetric design, pinned at the
/// instruction level: the remote-free fast path's epoch section
/// compiles to plain loads and stores. Any fence that sneaks back in
/// (a seq_cst store becoming xchg, an increment becoming lock add)
/// fails here before it can cost a cycle in production.
TEST_F(EpochAsymmetricTest, ReaderPathHasNoFenceInstructions) {
#if !defined(__x86_64__)
  GTEST_SKIP() << "instruction-level pin is x86_64-specific";
#elif !defined(__OPTIMIZE__)
  GTEST_SKIP() << "-O0 outlines Epoch::enter; nothing to inspect here";
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "sanitizer instrumentation rewrites the atomics";
#else
  const std::string Disasm = disassembleSymbol("meshEpochReaderProbe");
  if (Disasm.empty())
    GTEST_SKIP() << "objdump unavailable";
  // The probe must contain real code (the inlined fast path), not just
  // a tail call — otherwise the assertions below pass vacuously.
  ASSERT_GT(Disasm.size(), 64u) << Disasm;
  EXPECT_EQ(Disasm.find("lock"), std::string::npos) << Disasm;
  EXPECT_EQ(Disasm.find("mfence"), std::string::npos) << Disasm;
  // xchg with memory is implicitly locked (how seq_cst stores compile);
  // xchg of a register with itself is just multi-byte NOP padding.
  size_t At = 0;
  while ((At = Disasm.find("xchg", At)) != std::string::npos) {
    const size_t Eol = Disasm.find('\n', At);
    const std::string Operands = Disasm.substr(At + 4, Eol - At - 4);
    EXPECT_EQ(Operands.find('('), std::string::npos)
        << "memory-operand xchg in the reader path: " << Operands;
    At = Eol;
  }
#endif
}

/// One reclamation round: readers repeatedly enter, read a published
/// pointer, and verify the pointed-to value; the writer unpublishes,
/// synchronizes, then poisons. Any reader observing the poison means
/// synchronize() returned while a reader still held the old pointer.
void reclamationRound(Epoch &E, int Flips) {
  struct Node {
    std::atomic<int> Value{42};
  };
  std::atomic<Node *> Published{new Node};
  std::atomic<bool> Stop{false};
  std::atomic<int> Bad{0};

  std::vector<std::thread> Readers;
  for (int T = 0; T < 3; ++T) {
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        Epoch::Section S(E);
        Node *N = Published.load(std::memory_order_acquire);
        if (N != nullptr && N->Value.load(std::memory_order_relaxed) != 42)
          Bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int I = 0; I < Flips; ++I) {
    Node *Old = Published.exchange(new Node, std::memory_order_acq_rel);
    E.synchronize();
    Old->Value.store(-1, std::memory_order_relaxed); // poison
    delete Old;
  }
  Stop.store(true, std::memory_order_release);
  for (auto &T : Readers)
    T.join();
  delete Published.load();
  EXPECT_EQ(Bad.load(), 0);
}

/// Differential run: the same reclamation workload must hold under the
/// asymmetric protocol (when the kernel offers it) and under the
/// forced seq-cst fallback — the MESH_MEMBARRIER=0 configuration.
TEST_F(EpochAsymmetricTest, ReclamationHoldsInBothFenceModes) {
  const int Flips = static_cast<int>(stressScaled(300));
  if (Decided == EpochFenceMode::kAsymmetric) {
    Epoch E;
    reclamationRound(E, Flips);
  }
  Epoch::setFenceModeForTest(EpochFenceMode::kSeqCst);
  {
    Epoch E;
    reclamationRound(E, Flips);
  }
}

/// Reader-store visibility: synchronize() must observe a plain-store
/// increment and block until the matching exit, in asymmetric mode.
TEST_F(EpochAsymmetricTest, SynchronizeWaitsOutPlainStoreReader) {
  if (Decided != EpochFenceMode::kAsymmetric)
    GTEST_SKIP() << "membarrier unavailable; fallback covered elsewhere";
  Epoch E;
  std::atomic<bool> Entered{false};
  std::atomic<bool> Release{false};
  std::atomic<bool> Synced{false};
  std::thread Reader([&] {
    Epoch::Guard G = E.enter();
    Entered.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
    E.exit(G);
  });
  while (!Entered.load(std::memory_order_acquire))
    std::this_thread::yield();
  std::thread Writer([&] {
    E.synchronize();
    Synced.store(true, std::memory_order_release);
  });
  // The reader is parked inside the section; its plain-store increment
  // must be visible to the writer's post-membarrier scan.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(Synced.load(std::memory_order_acquire))
      << "synchronize() returned with a reader still inside";
  Release.store(true, std::memory_order_release);
  Writer.join();
  Reader.join();
  EXPECT_TRUE(Synced.load(std::memory_order_acquire));
}

/// A hard membarrier failure mid-run (only reachable through the
/// injection seam once registration succeeded) must flip the process
/// to the seq-cst protocol — visibly, permanently — and the epoch must
/// keep its guarantees through and after the transition.
TEST_F(EpochAsymmetricTest, InjectedMembarrierFailureDegradesToSeqCst) {
  if (Decided != EpochFenceMode::kAsymmetric)
    GTEST_SKIP() << "membarrier unavailable; nothing to degrade from";
  Epoch E;
  { Epoch::Section S(E); } // settle the thread's slot assignment
  ASSERT_TRUE(sys::configureFaults("membarrier:ENOSYS:every=1"));
  E.synchronize();
  EXPECT_EQ(Epoch::fenceMode(), EpochFenceMode::kSeqCst)
      << "a failed expedited membarrier must demote the fence mode";
  sys::clearFaults();
  // Degraded, compensating mode still reclaims correctly.
  reclamationRound(E, static_cast<int>(stressScaled(100)));
  EXPECT_EQ(Epoch::fenceMode(), EpochFenceMode::kSeqCst)
      << "degradation is one-way in the parent";
}

/// With injection armed from the start, the mode decision itself must
/// land on the fallback (the pre-4.14-kernel / seccomp-deny path).
TEST_F(EpochAsymmetricTest, UnavailableSyscallDecidesFallback) {
  Epoch::setFenceModeForTest(EpochFenceMode::kUndecided);
  ASSERT_TRUE(sys::configureFaults("membarrier:ENOSYS:every=1"));
  EXPECT_EQ(Epoch::decideFenceMode(), EpochFenceMode::kSeqCst);
  sys::clearFaults();
  // Re-deciding after clearFaults must not resurrect the stale mode:
  // the decision is once-per-process until a test (or fork) re-arms it.
  EXPECT_EQ(Epoch::fenceMode(), EpochFenceMode::kSeqCst);
}

/// Fork regression: the child's first synchronize() must complete even
/// though the parent forked with reader sections in flight, and the
/// child must end up in a sound registered mode (the atfork child
/// handler redoes the expedited registration). Exercised through a
/// full Runtime so the real fork protocol runs.
TEST_F(EpochAsymmetricTest, ForkThenSynchronizeRunsCleanInChild) {
  Runtime R(testOptions());
  // Surround the fork with live allocator traffic from a second
  // thread: its frees keep entering epoch sections, so the fork
  // snapshot very likely carries nonzero reader counts.
  std::atomic<bool> Stop{false};
  std::thread Churn([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      void *P = R.malloc(64);
      R.free(P);
    }
  });
  const pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // Child: epoch counters were reset and registration redone; a
    // synchronize-bearing operation must terminate promptly, and the
    // fence mode must match the parent's decision (re-registration
    // succeeded) — not have silently degraded.
    uint64_t Mode = 0;
    size_t Len = sizeof(Mode);
    int Bad = 0;
    if (R.mallctl("epoch.fence_mode", &Mode, &Len, nullptr, 0) != 0)
      ++Bad;
    const auto Expect = static_cast<uint64_t>(Epoch::fenceMode());
    if (Mode != Expect)
      ++Bad;
    R.meshNow(); // epochSynchronize under the hood; must not wedge
    void *P = R.malloc(128);
    if (P == nullptr)
      ++Bad;
    R.free(P);
    _exit(Bad);
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  Stop.store(true, std::memory_order_release);
  Churn.join();
  ASSERT_TRUE(WIFEXITED(Status)) << "child crashed (status " << Status << ")";
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}

} // namespace
