//===- EpochTest.cpp - Epoch reclamation guard tests ------------------------===//

#include "support/Epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mesh {
namespace {

TEST(EpochTest, EnterExitBalances) {
  Epoch E;
  auto G = E.enter();
  E.exit(G);
  // With no readers, synchronize must not block.
  E.synchronize();
  E.synchronize();
}

TEST(EpochTest, SectionIsReentrantPerThread) {
  Epoch E;
  Epoch::Section Outer(E);
  {
    Epoch::Section Inner(E);
  }
  // Still inside Outer; nothing to assert beyond not deadlocking on
  // exit order.
}

TEST(EpochTest, SynchronizeWaitsOutReaders) {
  Epoch E;
  std::atomic<bool> ReaderIn{false};
  std::atomic<bool> ReaderMayLeave{false};
  std::atomic<bool> SyncDone{false};

  std::thread Reader([&] {
    auto G = E.enter();
    ReaderIn.store(true);
    while (!ReaderMayLeave.load())
      std::this_thread::yield();
    E.exit(G);
  });

  while (!ReaderIn.load())
    std::this_thread::yield();

  std::thread Writer([&] {
    E.synchronize();
    SyncDone.store(true);
  });

  // The reader is still inside: synchronize must not have returned.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(SyncDone.load())
      << "synchronize returned while a reader was inside";

  ReaderMayLeave.store(true);
  Writer.join();
  Reader.join();
  EXPECT_TRUE(SyncDone.load());
}

TEST(EpochTest, GuardsReclamation) {
  // The allocator's usage pattern: readers dereference an object found
  // through a shared pointer; the writer retires the object, waits out
  // the epoch, then poisons it. A reader observing the poison value
  // after validating its epoch entry would be the use-after-free this
  // primitive exists to prevent.
  Epoch E;
  struct Node {
    std::atomic<uint64_t> Value{0x600D600D600D600DULL};
  };
  Node Nodes[2];
  std::atomic<Node *> Shared{&Nodes[0]};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Reads{0};

  std::vector<std::thread> Readers;
  for (int T = 0; T < 4; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load()) {
        Epoch::Section S(E);
        Node *N = Shared.load(std::memory_order_acquire);
        const uint64_t V = N->Value.load(std::memory_order_relaxed);
        ASSERT_EQ(V, 0x600D600D600D600DULL) << "read a retired node";
        Reads.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Don't start retiring until the readers are actually reading, or a
  // single-CPU machine can finish every flip before the first read.
  while (Reads.load() == 0)
    std::this_thread::yield();

  for (int Flip = 0; Flip < 2000; ++Flip) {
    Node *Old = Shared.load();
    Node *Fresh = Old == &Nodes[0] ? &Nodes[1] : &Nodes[0];
    Fresh->Value.store(0x600D600D600D600DULL, std::memory_order_relaxed);
    Shared.store(Fresh, std::memory_order_release);
    E.synchronize();
    // No reader may still hold Old: poisoning it must be invisible.
    Old->Value.store(0xDEADDEADDEADDEADULL, std::memory_order_relaxed);
  }

  Stop.store(true);
  for (auto &Th : Readers)
    Th.join();
  EXPECT_GT(Reads.load(), 0u);
}

} // namespace
} // namespace mesh
