//===- InternalHeapTest.cpp - Metadata allocator tests -------------------===//

#include "support/InternalHeap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace mesh {
namespace {

TEST(InternalHeapTest, AllocAndFreeSmall) {
  InternalHeap Heap;
  void *P = Heap.alloc(24);
  ASSERT_NE(P, nullptr);
  memset(P, 0xAB, 24);
  EXPECT_EQ(Heap.liveBytes(), 32u) << "24 rounds to the 32-byte class";
  Heap.free(P, 24);
  EXPECT_EQ(Heap.liveBytes(), 0u);
}

TEST(InternalHeapTest, ReusesFreedBlocks) {
  InternalHeap Heap;
  void *A = Heap.alloc(64);
  Heap.free(A, 64);
  void *B = Heap.alloc(64);
  EXPECT_EQ(A, B) << "LIFO free list should hand back the same block";
  Heap.free(B, 64);
}

TEST(InternalHeapTest, DistinctLiveAllocations) {
  InternalHeap Heap;
  std::set<void *> Seen;
  std::vector<void *> Ptrs;
  for (int I = 0; I < 1000; ++I) {
    void *P = Heap.alloc(48);
    ASSERT_TRUE(Seen.insert(P).second) << "duplicate live pointer";
    Ptrs.push_back(P);
  }
  for (void *P : Ptrs)
    Heap.free(P, 48);
  EXPECT_EQ(Heap.liveBytes(), 0u);
}

TEST(InternalHeapTest, LargeAllocationsUseDedicatedMappings) {
  InternalHeap Heap;
  void *P = Heap.alloc(100 * 1024);
  ASSERT_NE(P, nullptr);
  memset(P, 0, 100 * 1024);
  EXPECT_GE(Heap.liveBytes(), 100u * 1024);
  Heap.free(P, 100 * 1024);
  EXPECT_EQ(Heap.liveBytes(), 0u);
}

TEST(InternalHeapTest, MakeNewRunsConstructorAndDestructor) {
  struct Probe {
    explicit Probe(int *Flag) : Flag(Flag) { *Flag = 1; }
    ~Probe() { *Flag = 2; }
    int *Flag;
  };
  InternalHeap Heap;
  int Flag = 0;
  Probe *P = Heap.makeNew<Probe>(&Flag);
  EXPECT_EQ(Flag, 1);
  Heap.deleteObj(P);
  EXPECT_EQ(Flag, 2);
}

TEST(InternalHeapTest, SixteenByteAlignment) {
  InternalHeap Heap;
  for (size_t Size : {1u, 17u, 100u, 4000u, 8192u}) {
    void *P = Heap.alloc(Size);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 16, 0u)
        << "size " << Size << " not 16-byte aligned";
    Heap.free(P, Size);
  }
}

TEST(InternalHeapTest, ThreadSafety) {
  InternalHeap Heap;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&Heap] {
      std::vector<void *> Mine;
      for (int I = 0; I < 2000; ++I) {
        void *P = Heap.alloc(40);
        memset(P, 0x5A, 40);
        Mine.push_back(P);
      }
      for (void *P : Mine)
        Heap.free(P, 40);
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Heap.liveBytes(), 0u);
}

} // namespace
} // namespace mesh
