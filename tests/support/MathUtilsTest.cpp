//===- MathUtilsTest.cpp - Arithmetic helper tests -----------------------===//

#include "support/MathUtils.h"

#include "support/Common.h"

#include <gtest/gtest.h>

#include <vector>

namespace mesh {
namespace {

TEST(MathUtilsTest, IsPowerOfTwo) {
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_TRUE(isPowerOfTwo(4096));
  EXPECT_FALSE(isPowerOfTwo(4097));
  EXPECT_TRUE(isPowerOfTwo(size_t{1} << 63));
}

TEST(MathUtilsTest, RoundUpPow2Multiple) {
  EXPECT_EQ(roundUpPow2Multiple(0, 16), 0u);
  EXPECT_EQ(roundUpPow2Multiple(1, 16), 16u);
  EXPECT_EQ(roundUpPow2Multiple(16, 16), 16u);
  EXPECT_EQ(roundUpPow2Multiple(17, 16), 32u);
  EXPECT_EQ(roundUpPow2Multiple(4095, 4096), 4096u);
  EXPECT_EQ(roundUpPow2Multiple(4097, 4096), 8192u);
}

TEST(MathUtilsTest, RoundUpToPowerOfTwo) {
  EXPECT_EQ(roundUpToPowerOfTwo(0), 1u);
  EXPECT_EQ(roundUpToPowerOfTwo(1), 1u);
  EXPECT_EQ(roundUpToPowerOfTwo(2), 2u);
  EXPECT_EQ(roundUpToPowerOfTwo(3), 4u);
  EXPECT_EQ(roundUpToPowerOfTwo(1000), 1024u);
  EXPECT_EQ(roundUpToPowerOfTwo(1024), 1024u);
  EXPECT_EQ(roundUpToPowerOfTwo(1025), 2048u);
}

TEST(MathUtilsTest, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(4), 2u);
  EXPECT_EQ(log2Floor(4096), 12u);
}

TEST(MathUtilsTest, PageConversionsRoundTrip) {
  EXPECT_EQ(bytesToPages(0), 0u);
  EXPECT_EQ(bytesToPages(1), 1u);
  EXPECT_EQ(bytesToPages(4096), 1u);
  EXPECT_EQ(bytesToPages(4097), 2u);
  EXPECT_EQ(pagesToBytes(3), size_t{3} * 4096);
}

TEST(MathUtilsTest, GeometricMean) {
  std::vector<double> V = {1.0, 4.0};
  EXPECT_NEAR(geometricMean(V), 2.0, 1e-12);
  std::vector<double> Identity = {5.0};
  EXPECT_NEAR(geometricMean(Identity), 5.0, 1e-12);
  std::vector<double> Empty;
  EXPECT_EQ(geometricMean(Empty), 0.0);
}

} // namespace
} // namespace mesh
