//===- RngTest.cpp - PRNG unit tests -----------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mesh {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 1000; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 5);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng A(77);
  std::vector<uint64_t> First;
  for (int I = 0; I < 16; ++I)
    First.push_back(A.next());
  A.seed(77);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(A.next(), First[I]);
}

TEST(RngTest, InRangeStaysInRange) {
  Rng R(99);
  for (int I = 0; I < 100000; ++I) {
    const uint32_t V = R.inRange(10, 20);
    ASSERT_GE(V, 10u);
    ASSERT_LE(V, 20u);
  }
}

TEST(RngTest, InRangeSingletonRange) {
  Rng R(5);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.inRange(7, 7), 7u);
}

TEST(RngTest, InRangeCoversAllValues) {
  Rng R(42);
  std::set<uint32_t> Seen;
  for (int I = 0; I < 10000; ++I)
    Seen.insert(R.inRange(0, 15));
  EXPECT_EQ(Seen.size(), 16u);
}

TEST(RngTest, InRangeRoughlyUniform) {
  // Chi-squared test over 256 buckets; 99.9% critical value for 255
  // degrees of freedom is ~330.5.
  Rng R(1234);
  constexpr int kBuckets = 256;
  constexpr int kDraws = 256 * 1000;
  std::vector<int> Counts(kBuckets, 0);
  for (int I = 0; I < kDraws; ++I)
    ++Counts[R.inRange(0, kBuckets - 1)];
  const double Expected = static_cast<double>(kDraws) / kBuckets;
  double Chi2 = 0;
  for (int C : Counts) {
    const double D = C - Expected;
    Chi2 += D * D / Expected;
  }
  EXPECT_LT(Chi2, 330.5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 100000; ++I) {
    const double D = R.nextDouble();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
  }
}

TEST(RngTest, WithProbabilityMatchesRate) {
  Rng R(8);
  int Hits = 0;
  constexpr int kDraws = 100000;
  for (int I = 0; I < kDraws; ++I)
    Hits += R.withProbability(0.25);
  EXPECT_NEAR(static_cast<double>(Hits) / kDraws, 0.25, 0.01);
}

} // namespace
} // namespace mesh
