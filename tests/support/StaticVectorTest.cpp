//===- StaticVectorTest.cpp - Fixed-capacity vector tests ----------------===//

#include "support/StaticVector.h"

#include <gtest/gtest.h>

namespace mesh {
namespace {

TEST(StaticVectorTest, PushPopBasics) {
  StaticVector<int, 4> V;
  EXPECT_TRUE(V.empty());
  V.push_back(1);
  V.push_back(2);
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V.back(), 2);
  V.pop_back();
  EXPECT_EQ(V.size(), 1u);
}

TEST(StaticVectorTest, FullAndClear) {
  StaticVector<int, 3> V;
  V.push_back(1);
  V.push_back(2);
  V.push_back(3);
  EXPECT_TRUE(V.full());
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(StaticVectorTest, SwapRemove) {
  StaticVector<int, 8> V;
  for (int I = 0; I < 5; ++I)
    V.push_back(I);
  V.swapRemove(1); // moves 4 into slot 1
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V[1], 4);
  V.swapRemove(3); // removes last element
  EXPECT_EQ(V.size(), 3u);
}

TEST(StaticVectorTest, RangeBasedIteration) {
  StaticVector<int, 8> V;
  int Sum = 0;
  for (int I = 1; I <= 4; ++I)
    V.push_back(I);
  for (int X : V)
    Sum += X;
  EXPECT_EQ(Sum, 10);
}

} // namespace
} // namespace mesh
